open Helpers
module R = Mineq.Render
module Perm = Mineq_perm.Perm

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_stage_table () =
  let s = R.stage_table (Mineq.Baseline.network 3) in
  check_true "headers" (contains ~needle:"stage 1" s && contains ~needle:"stage 3" s);
  check_true "first-stage arcs" (contains ~needle:"00->00,10" s);
  check_int "one line per node plus header" 5 (List.length (String.split_on_char '\n' (String.trim s)))

let test_gap_matrix () =
  let g = Mineq.Baseline.network 3 in
  let m = R.gap_matrix g 1 in
  check_true "header" (contains ~needle:"gap 1 -> 2" m);
  check_true "arcs marked" (contains ~needle:"#" m);
  (* A degenerate stage renders double links as '2'. *)
  let dbl =
    Mineq.Link_spec.network_of_thetas ~n:3
      [ Perm.identity 3; Mineq_perm.Pipid_family.perfect_shuffle ~width:3 ]
  in
  check_true "double links marked" (contains ~needle:"2" (R.gap_matrix dbl 1))

let test_wiring_diagram () =
  let d = R.wiring_diagram (Mineq.Baseline.network 3) in
  check_true "stages listed" (contains ~needle:"stage 3" d);
  check_true "cells boxed" (contains ~needle:"[00]" d);
  check_true "links listed" (contains ~needle:"00:0 -> 00" d)

let test_network_summary () =
  let s = R.network_summary (Mineq.Classical.network Omega ~n:4) in
  check_true "banyan shown" (contains ~needle:"Banyan: true" s);
  check_true "independence shown" (contains ~needle:"independent=true" s);
  check_true "PIPID recognized" (contains ~needle:"PIPID theta" s);
  let rng = rng_of 90 in
  let g = Mineq.Counterexample.relabelled_equivalent rng (Mineq.Classical.network Omega ~n:4) in
  let s = R.network_summary g in
  check_true "non-PIPID flagged after relabelling" (contains ~needle:"not PIPID" s)

let test_recognize_gap_on_classical () =
  let n = 5 in
  List.iter
    (fun kind ->
      let g = Mineq.Classical.network kind ~n in
      let thetas = Mineq.Classical.thetas kind ~n in
      List.iteri
        (fun i expected ->
          match R.recognize_gap g (i + 1) with
          | None -> Alcotest.fail (Mineq.Classical.name kind ^ ": gap not recognized")
          | Some t ->
              check_true
                (Printf.sprintf "%s gap %d theta recovered" (Mineq.Classical.name kind) (i + 1))
                (Mineq.Connection.equal_graph
                   (Mineq.Pipid_net.connection ~n t)
                   (Mineq.Pipid_net.connection ~n expected)))
        thetas)
    Mineq.Classical.all_kinds

let test_recognize_gap_rejects_non_pipid () =
  let rng = rng_of 91 in
  let g = Mineq.Counterexample.random_buddy_network rng ~n:4 in
  (* Buddy stages are almost never PIPID; accept either but require no
     false positive: when recognized, it must reproduce the gap. *)
  for i = 1 to 3 do
    match R.recognize_gap g i with
    | None -> ()
    | Some t ->
        check_true "recognition is sound"
          (Mineq.Connection.equal_graph
             (Mineq.Pipid_net.connection ~n:4 t)
             (Mineq.Mi_digraph.connection g i))
  done

let test_labels_figure () =
  let s = R.labels_figure ~width:3 in
  check_true "first label" (contains ~needle:"(0,0,0)" s);
  check_true "last label" (contains ~needle:"(1,1,1)" s);
  check_int "eight labels" 8 (List.length (String.split_on_char '\n' (String.trim s)))

let suite =
  [ quick "stage table" test_stage_table;
    quick "gap matrix" test_gap_matrix;
    quick "wiring diagram" test_wiring_diagram;
    quick "network summary" test_network_summary;
    quick "recognize classical gaps" test_recognize_gap_on_classical;
    quick "recognition soundness" test_recognize_gap_rejects_non_pipid;
    quick "labels figure (Figure 2)" test_labels_figure
  ]
