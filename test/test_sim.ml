open Helpers
module Sim = Mineq_sim.Network_sim
module Traffic = Mineq_sim.Traffic

let omega n = Mineq.Classical.network Omega ~n

let run ?config seed g = Sim.run ?config (rng_of seed) g

let test_conservation () =
  (* Over warmup + measurement no packet is created or destroyed:
     delivered + dropped <= injected (+ in-flight remainder). *)
  let stats = run 120 (omega 4) in
  check_true "accounting sane"
    (stats.delivered + stats.dropped <= stats.injected + (stats.terminals * Sim.default_config.warmup));
  check_true "offered >= injected" (stats.offered >= stats.injected);
  check_int "offered split" stats.offered (stats.injected + stats.refused)

let test_low_load_delivers_everything () =
  let config = { Sim.default_config with injection_rate = 0.05; cycles = 2000 } in
  let stats = run 121 ~config (omega 4) in
  let thr = Sim.throughput stats in
  check_true "throughput tracks offered load" (thr > 0.03 && thr < 0.07);
  check_int "nothing refused at low load" 0 stats.refused;
  check_int "nothing dropped" 0 stats.dropped

let test_latency_at_least_stages () =
  (* A packet needs at least one cycle per stage. *)
  let config = { Sim.default_config with injection_rate = 0.05 } in
  let stats = run 122 ~config (omega 4) in
  check_true "mean latency >= n" (Sim.mean_latency stats >= 4.0)

let test_saturation_below_one () =
  (* Uniform traffic saturates a 2x2 MIN well below full load. *)
  let config = { Sim.default_config with injection_rate = 1.0; cycles = 2000 } in
  let stats = run 123 ~config (omega 4) in
  let thr = Sim.throughput stats in
  check_true "saturation throughput below 0.9" (thr < 0.9);
  check_true "still delivering" (thr > 0.3)

let test_throughput_monotone_until_saturation () =
  let sweep =
    Sim.saturation_sweep (rng_of 124) (omega 4) ~rates:[ 0.1; 0.3; 0.5 ]
  in
  match sweep with
  | [ (_, t1, l1); (_, t2, l2); (_, t3, l3) ] ->
      check_true "throughput increases" (t1 < t2 && t2 < t3);
      check_true "latency increases" (l1 <= l2 && l2 <= l3)
  | _ -> Alcotest.fail "sweep shape"

let test_permutation_traffic_deterministic_paths () =
  (* A fixed permutation with rate 1 and deep buffers delivers
     steadily; destinations never vary so per-packet words are fixed. *)
  let n = 4 in
  let p = Mineq_perm.Perm.random (rng_of 125) 16 in
  let config =
    { Sim.default_config with
      injection_rate = 1.0;
      pattern = Traffic.permutation p;
      buffer_capacity = 8;
      cycles = 1000
    }
  in
  let stats = run 126 ~config (omega n) in
  check_true "positive throughput" (Sim.throughput stats > 0.2)

let test_drop_mode () =
  let config =
    { Sim.default_config with injection_rate = 1.0; drop_on_full = true; buffer_capacity = 1 }
  in
  let stats = run 127 ~config (omega 4) in
  check_true "drops occur under overload" (stats.dropped > 0)

let test_backpressure_mode_never_drops () =
  let config = { Sim.default_config with injection_rate = 1.0; drop_on_full = false } in
  let stats = run 128 ~config (omega 4) in
  check_int "no drops with backpressure" 0 stats.dropped

let test_capacity_validation () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Network_sim.run: capacity must be >= 1")
    (fun () ->
      ignore (run 129 ~config:{ Sim.default_config with buffer_capacity = 0 } (omega 3)))

let test_non_banyan_rejected () =
  let g =
    Mineq.Link_spec.network_of_thetas ~n:3
      [ Mineq_perm.Perm.identity 3; Mineq_perm.Pipid_family.perfect_shuffle ~width:3 ]
  in
  match run 130 g with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "non-Banyan network must be rejected"

let test_equivalent_networks_same_saturation () =
  (* X3: topologically equivalent networks show the same saturation
     throughput under uniform traffic (within noise). *)
  let c = { Sim.default_config with injection_rate = 1.0; cycles = 3000 } in
  let t_omega = Sim.throughput (run 131 ~config:c (omega 5)) in
  let t_base = Sim.throughput (run 131 ~config:c (Mineq.Baseline.network 5)) in
  let t_cube =
    Sim.throughput (run 131 ~config:c (Mineq.Classical.network Indirect_binary_cube ~n:5))
  in
  check_true "omega ~ baseline saturation" (Float.abs (t_omega -. t_base) < 0.05);
  check_true "omega ~ cube saturation" (Float.abs (t_omega -. t_cube) < 0.05)

let props =
  [ qcheck "same seed, same stats (determinism)" ~count:10
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let config = { Sim.default_config with cycles = 300; warmup = 50 } in
        let a = run seed ~config (omega 3) in
        let b = run seed ~config (omega 3) in
        a = b);
    qcheck "throughput never exceeds offered load" ~count:10
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let config = { Sim.default_config with injection_rate = 0.4; cycles = 500 } in
        let stats = run seed ~config (omega 4) in
        Sim.throughput stats <= 0.4 +. 0.1)
  ]

let suite =
  [ quick "packet accounting" test_conservation;
    quick "low load" test_low_load_delivers_everything;
    quick "latency floor" test_latency_at_least_stages;
    quick "saturation below 1" test_saturation_below_one;
    quick "load sweep monotone" test_throughput_monotone_until_saturation;
    quick "permutation traffic" test_permutation_traffic_deterministic_paths;
    quick "drop mode" test_drop_mode;
    quick "backpressure mode" test_backpressure_mode_never_drops;
    quick "capacity validation" test_capacity_validation;
    quick "non-Banyan rejected" test_non_banyan_rejected;
    slow "equivalent networks saturate alike (X3)" test_equivalent_networks_same_saturation
  ]
  @ props
