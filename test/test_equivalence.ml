open Helpers
module E = Mineq.Equivalence
module M = Mineq.Mi_digraph

let baseline = Mineq.Baseline.network

let test_method_inventory () =
  check_int "three methods" 3 (List.length E.all_methods);
  Alcotest.(check (list string)) "names"
    [ "independence"; "characterization"; "isomorphism" ]
    (List.map E.method_name E.all_methods)

let test_baseline_passes_everything () =
  for n = 2 to 5 do
    let g = baseline n in
    List.iter
      (fun m ->
        let v = E.decide m g in
        check_true (Printf.sprintf "baseline %d via %s" n (E.method_name m)) v.equivalent;
        check_true "banyan flag" v.banyan)
      E.all_methods
  done

let test_classical_survey () =
  (* The paper's main corollary: the six classical networks are all
     Baseline-equivalent (Wu-Feng's result, one decider call each). *)
  List.iter
    (fun (name, g) ->
      List.iter
        (fun m ->
          check_true (name ^ " via " ^ E.method_name m) (E.decide m g).equivalent)
        E.all_methods)
    (all_classical ~n:4)

let test_non_banyan_fails_all () =
  let n = 3 in
  let g =
    Mineq.Link_spec.network_of_thetas ~n
      [ Mineq_perm.Perm.identity n; Mineq_perm.Pipid_family.perfect_shuffle ~width:n ]
  in
  List.iter
    (fun m ->
      let v = E.decide m g in
      check_false ("degenerate via " ^ E.method_name m) v.equivalent)
    E.all_methods;
  let v = E.by_independence g in
  check_false "banyan flag is false" v.banyan;
  check_true "detail mentions Banyan"
    (String.length v.detail >= 10 && String.sub v.detail 0 10 = "not Banyan")

let test_independence_is_only_sufficient () =
  (* Relabelling destroys independence but not equivalence: the
     independence decider must answer false (with a caveat in the
     detail) while the complete deciders answer true. *)
  let rng = rng_of 60 in
  let g = Mineq.Counterexample.relabelled_equivalent rng (Mineq.Classical.network Omega ~n:4) in
  let vi = E.by_independence g in
  let vc = E.by_characterization g in
  let viso = E.by_isomorphism g in
  check_true "still banyan" vi.banyan;
  check_false "independence says no" vi.equivalent;
  check_true "characterization says yes" vc.equivalent;
  check_true "isomorphism says yes" viso.equivalent

let test_non_equivalent_banyan_detected () =
  (* A deterministic buddy-Banyan non-equivalent instance found by
     seeded search; all complete deciders must reject it. *)
  let rng = rng_of 7 in
  match Mineq.Counterexample.find_non_equivalent rng ~n:4 ~attempts:5000 ~require_buddy:true with
  | None -> Alcotest.fail "seeded search must find the known instance"
  | Some g ->
      check_true "banyan" (Mineq.Banyan.is_banyan g);
      check_true "buddy" (Mineq.Properties.has_buddy_property g);
      check_false "characterization rejects" (E.by_characterization g).equivalent;
      check_false "isomorphism rejects" (E.by_isomorphism g).equivalent;
      check_false "independence does not claim it" (E.by_independence g).equivalent

let test_detail_strings () =
  let v = E.by_characterization (baseline 3) in
  check_true "detail non-empty" (String.length v.detail > 0);
  let rng = rng_of 61 in
  match Mineq.Counterexample.find_non_equivalent rng ~n:3 ~attempts:5000 ~require_buddy:false with
  | None -> Alcotest.fail "search must find a non-equivalent banyan"
  | Some g ->
      let v = E.by_characterization g in
      check_true "failure names a P property"
        (String.length v.detail >= 2 && String.sub v.detail 0 2 = "P(")

let test_any_split_decider () =
  (* The reverse of Omega: stored splits are arbitrary, so the plain
     independence decider typically fails, while the split-insensitive
     variant must succeed (Proposition 1 guarantees independent
     decompositions exist). *)
  let g = M.reverse (Mineq.Classical.network Omega ~n:4) in
  let plain = E.by_independence g in
  let canonical = E.by_independence_any_split g in
  check_true "canonical split decider passes on the reverse" canonical.equivalent;
  (* Not asserting plain fails -- reverse_any may occasionally pick an
     independent split -- but when it does fail, canonical must still
     pass, which is the point. *)
  ignore plain;
  (* Relabelled networks admit no independent decomposition: both
     variants say no, the characterization says yes (X5 stands). *)
  let rng = rng_of 62 in
  let h = Mineq.Counterexample.relabelled_equivalent rng (Mineq.Classical.network Omega ~n:4) in
  check_false "any-split also fails on relabelled" (E.by_independence_any_split h).equivalent;
  check_true "characterization still proves it" (E.by_characterization h).equivalent

let test_equivalent_networks () =
  let omega = Mineq.Classical.network Omega ~n:3 in
  let flip = Mineq.Classical.network Flip ~n:3 in
  List.iter
    (fun m ->
      check_true
        ("omega ~ flip via " ^ E.method_name m)
        (E.equivalent_networks m omega flip))
    E.all_methods

let props =
  [ qcheck "Theorem 3 against ground truth on random PIPID Banyans" ~count:40 n_and_seed
      (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        let vi = (E.by_independence g).equivalent in
        let vc = (E.by_characterization g).equivalent in
        vi && vc
        && if n <= 4 then (E.by_isomorphism g).equivalent else true);
    qcheck "deciders agree on non-Banyan networks" ~count:40 n_and_seed (fun (n, seed) ->
        let g = Mineq.Link_spec.random_network (rng_of seed) ~n in
        if Mineq.Banyan.is_banyan g then true
        else
          (not (E.by_independence g).equivalent)
          && not (E.by_characterization g).equivalent);
    qcheck "characterization = isomorphism on arbitrary Banyans (small n)" ~count:30
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 4) (int_bound 100000)))
      (fun (n, seed) ->
        match Mineq.Counterexample.random_banyan (rng_of seed) ~n ~attempts:500 with
        | None -> true
        | Some g ->
            (E.by_characterization g).equivalent = (E.by_isomorphism g).equivalent);
    qcheck "equivalence invariant under reversal" ~count:30 n_and_seed (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        (E.by_characterization (M.reverse g)).equivalent)
  ]

let suite =
  [ quick "method inventory" test_method_inventory;
    quick "baseline passes everything" test_baseline_passes_everything;
    quick "classical survey (main corollary)" test_classical_survey;
    quick "non-Banyan fails all" test_non_banyan_fails_all;
    quick "independence is only sufficient (X5)" test_independence_is_only_sufficient;
    quick "non-equivalent Banyan detected (X2)" test_non_equivalent_banyan_detected;
    quick "detail strings" test_detail_strings;
    quick "split-insensitive decider" test_any_split_decider;
    quick "equivalent_networks" test_equivalent_networks
  ]
  @ props
