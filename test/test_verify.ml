(* The static verification layer: CDG deadlock analysis, affine
   blocking certificates, plan soundness and the route lint. *)

open Helpers
module F = Mineq_route.Fabric
module Plan = Mineq_route.Plan
module Loop = Mineq_route.Loop
module BF = Mineq_route.Bit_follow
module Cdg = Mineq_route_verify.Cdg
module Certify = Mineq_route_verify.Certify
module Plan_check = Mineq_route_verify.Plan_check
module Route_lint = Mineq_route_verify.Route_lint
module Gf2 = Mineq_bitvec.Gf2_matrix
module D = Mineq_analysis.Diagnostics

let router_of net = Option.get (BF.of_network net)

let shuffle rng img =
  let n = Array.length img in
  for i = 0 to n - 1 do
    img.(i) <- i
  done;
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = img.(i) in
    img.(i) <- img.(j);
    img.(j) <- tmp
  done

(* Reference implementations ------------------------------------------ *)

(* Exhaustive cycle search over the CDG successor relation, the
   O(V+E) textbook three-colour DFS — the oracle the Tarjan pass must
   agree with. *)
let has_cycle_dfs cdg =
  let v = Cdg.links cdg in
  let colour = Array.make v 0 in
  let found = ref false in
  let rec visit u =
    colour.(u) <- 1;
    Cdg.iter_succ cdg u (fun w ->
        if colour.(w) = 1 then found := true
        else if colour.(w) = 0 then visit w);
    colour.(u) <- 2
  in
  for u = 0 to v - 1 do
    if colour.(u) = 0 then visit u
  done;
  !found

(* The link (cell, digit) input [x] occupies at each gap, walked over
   the raw tables — independent of both Cdg and Certify. *)
let links_of_walk router ~input ~output =
  let fab = BF.fabric router in
  let cell = ref (input / 2) in
  Array.init fab.F.stages (fun s ->
      let d = BF.control router ~stage:s ~output in
      let link = (s, !cell, d) in
      if s < fab.F.stages - 1 then cell := fab.F.child.(s).((2 * !cell) + d);
      link)

let apply_traffic (tr : Certify.traffic) x = Gf2.apply tr.Certify.map x lxor tr.Certify.offset

(* First gap where some nonzero difference [d] makes inputs 0 and [d]
   collide, with the least such [d] — Certify's refutation must land
   exactly here. *)
let brute_refutation router tr =
  let fab = BF.fabric router in
  let n = F.terminals fab in
  let walk x = links_of_walk router ~input:x ~output:(apply_traffic tr x) in
  let zero = walk 0 in
  let answer = ref None in
  for s = 0 to fab.F.stages - 1 do
    if !answer = None then
      for d = 1 to n - 1 do
        if !answer = None && (walk d).(s) = zero.(s) then answer := Some (s, d)
      done
  done;
  !answer

(* Whether routing the whole class concretely hits a conflict. *)
let concretely_blocks router tr =
  let fab = BF.fabric router in
  let n = F.terminals fab in
  let plan = Plan.create fab in
  let blocked = ref false in
  for x = 0 to n - 1 do
    if not (BF.try_route router plan ~input:x ~output:(apply_traffic tr x)) then
      blocked := true
  done;
  !blocked

(* Cdg ---------------------------------------------------------------- *)

let test_cdg_forward_classical () =
  for n = 2 to 4 do
    List.iter
      (fun (name, net) ->
        let router = router_of net in
        let fab = BF.fabric router in
        let cdg = Cdg.of_router router in
        check_false (name ^ " forward") (Cdg.recirculating cdg);
        check_int (name ^ " links") (fab.F.stages * fab.F.per * 2) (Cdg.links cdg);
        check_true (name ^ " deadlock-free") (Cdg.deadlock_free cdg);
        check_int (name ^ " trivial SCCs") (Cdg.links cdg) (Cdg.scc_count cdg);
        check_true (name ^ " verdict") (Cdg.verdict cdg = Cdg.Deadlock_free);
        (* every admitted turn steps exactly one stage forward *)
        for v = 0 to Cdg.links cdg - 1 do
          let s, _, _ = Cdg.describe cdg v in
          Cdg.iter_succ cdg v (fun w ->
              let s', _, _ = Cdg.describe cdg w in
              check_int (name ^ " leveled") (s + 1) s')
        done)
      (all_classical ~n)
  done

let test_cdg_agreement_exhaustive () =
  for n = 2 to 4 do
    List.iter
      (fun (name, net) ->
        let router = router_of net in
        List.iter
          (fun recirculate ->
            let cdg = Cdg.of_router ~recirculate router in
            check_bool
              (Printf.sprintf "%s n=%d recirc=%b agrees with DFS" name n recirculate)
              (not (has_cycle_dfs cdg))
              (Cdg.deadlock_free cdg))
          [ false; true ])
      (all_classical ~n)
  done

let test_cdg_recirc_cycle_witness () =
  List.iter
    (fun (name, net) ->
      let router = router_of net in
      let cdg = Cdg.of_router ~recirculate:true router in
      check_true (name ^ " recirculating") (Cdg.recirculating cdg);
      match Cdg.verdict cdg with
      | Cdg.Deadlock_free -> Alcotest.fail (name ^ ": single-lane recirculation must cycle")
      | Cdg.Deadlock { cycle } ->
          let k = Array.length cycle in
          check_true (name ^ " nonempty cycle") (k >= 1);
          Array.iteri
            (fun i v ->
              let next = cycle.((i + 1) mod k) in
              let admitted = ref false in
              Cdg.iter_succ cdg v (fun w -> if w = next then admitted := true);
              check_true
                (Format.asprintf "%s: %a depends on %a" name (Cdg.pp_link cdg) v
                   (Cdg.pp_link cdg) next)
                !admitted)
            cycle)
    (all_classical ~n:3)

let test_cdg_edge_count () =
  let router = router_of (Mineq.Classical.network Omega ~n:3) in
  let cdg = Cdg.of_router router in
  let counted = ref 0 in
  for v = 0 to Cdg.links cdg - 1 do
    Cdg.iter_succ cdg v (fun _ -> incr counted)
  done;
  check_int "edge_count matches iter_succ" !counted (Cdg.edge_count cdg);
  (* forward graphs gain edges when recirculated *)
  let rc = Cdg.of_router ~recirculate:true router in
  check_true "recirculation adds turns" (Cdg.edge_count rc > Cdg.edge_count cdg)

let prop_cdg_random_banyan =
  qcheck ~count:40 "random banyan PIPID forward CDG is acyclic" n_and_seed
    (fun (n, seed) ->
      let rng = rng_of seed in
      let g = random_banyan_pipid rng ~n:(min n 4) in
      match BF.of_network g with
      | None -> true
      | Some router -> Cdg.deadlock_free (Cdg.of_router router))

(* Certify ------------------------------------------------------------ *)

let test_certify_agreement () =
  for n = 2 to 4 do
    List.iter
      (fun (name, net) ->
        let router = router_of net in
        List.iter
          (fun (tr : Certify.traffic) ->
            let label = Printf.sprintf "%s n=%d %s" name n tr.Certify.name in
            match Certify.analyze router tr with
            | Certify.Unsupported _ -> Alcotest.fail (label ^ ": unexpectedly unsupported")
            | Certify.Free mats ->
                check_int (label ^ " certificate size") n (Array.length mats);
                Array.iter
                  (fun m -> check_true (label ^ " invertible") (Gf2.is_invertible m))
                  mats;
                check_false (label ^ " concrete agreement") (concretely_blocks router tr);
                check_true (label ^ " no refutation") (brute_refutation router tr = None)
            | Certify.Blocked c ->
                check_true (label ^ " concrete agreement") (concretely_blocks router tr);
                check_true (label ^ " confirmed") (Certify.confirm router c);
                (match brute_refutation router tr with
                | None -> Alcotest.fail (label ^ ": symbolic refutation, concrete none")
                | Some (gap, d) ->
                    check_int (label ^ " first gap") gap c.Certify.gap;
                    check_int (label ^ " minimal pair") d c.Certify.input_b);
                check_int (label ^ " input_a") 0 c.Certify.input_a;
                check_int (label ^ " output_a") (apply_traffic tr 0) c.Certify.output_a;
                check_int (label ^ " output_b")
                  (apply_traffic tr c.Certify.input_b)
                  c.Certify.output_b)
          (Certify.classical_classes ~bits:n))
      (all_classical ~n)
  done

let test_certify_survey_shape () =
  let router = router_of (Mineq.Classical.network Baseline_net ~n:4) in
  let survey = Certify.survey_classes router in
  check_int "five classes at even bits" 5 (List.length survey);
  List.iter
    (fun ((tr : Certify.traffic), result) ->
      check_int "bits" 4 tr.Certify.bits;
      match result with
      | Certify.Unsupported _ ->
          Alcotest.fail (tr.Certify.name ^ ": classical fabric must be supported")
      | _ -> ())
    survey

let test_certify_unsupported_shape () =
  (* The Benes cascade is rectangular (2n-1 stages over n-1 label
     digits): outside the banyan certificate regime. *)
  let fab = F.of_cascade (Mineq.Benes.network 3) in
  let router = BF.of_fabric fab ~schedule:(Array.init 8 Fun.id) in
  (match Certify.analyze router (Certify.identity ~bits:3) with
  | Certify.Unsupported Certify.Shape -> ()
  | _ -> Alcotest.fail "expected Unsupported Shape");
  check_true "pp_result renders"
    (String.length
       (Format.asprintf "%a" Certify.pp_result (Certify.Unsupported Certify.Shape))
    > 0)

let test_certify_bad_inputs () =
  (match Certify.bpc [| 0; 0; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bpc must reject non-permutations");
  (match Certify.transpose ~bits:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "transpose must reject odd widths");
  let router = router_of (Mineq.Classical.network Omega ~n:3) in
  match Certify.analyze router (Certify.identity ~bits:4) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "analyze must reject mismatched widths"

let test_certify_bpc_class () =
  let tr = Certify.bpc ~name:"swap" ~complement:0b101 [| 1; 0; 2 |] in
  check_int "bits" 3 tr.Certify.bits;
  (* destination bit i is source bit perm.(i), xor the complement *)
  check_int "apply" (0b010 lxor 0b101) (apply_traffic tr 0b001);
  let router = router_of (Mineq.Classical.network Omega ~n:3) in
  match Certify.analyze router tr with
  | Certify.Unsupported _ -> Alcotest.fail "bpc on omega must be supported"
  | Certify.Free _ -> check_false "agreement" (concretely_blocks router tr)
  | Certify.Blocked c ->
      check_true "agreement" (concretely_blocks router tr);
      check_true "confirmed" (Certify.confirm router c)

(* Plan_check --------------------------------------------------------- *)

let prop_plan_check_accepts_loop =
  qcheck ~count:60 "Plan_check accepts every looping-routed plan"
    (QCheck.pair (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 4)) seed_gen)
    (fun (n, seed) ->
      let rng = rng_of seed in
      let router = Loop.create n in
      let plan = Loop.plan router in
      let image = Array.make (Loop.terminals router) 0 in
      shuffle rng image;
      Loop.route router plan image;
      Plan_check.is_sound ~image plan)

let prop_plan_check_accepts_bit_follow =
  qcheck ~count:60 "Plan_check accepts every Bit_follow plan (partial too)"
    (QCheck.pair n_and_seed (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 5)))
    (fun ((n, seed), pick) ->
      let kinds = Mineq.Classical.all_kinds in
      let kind = List.nth kinds (pick mod List.length kinds) in
      let rng = rng_of seed in
      let router = router_of (Mineq.Classical.network kind ~n) in
      let fab = BF.fabric router in
      let terminals = F.terminals fab in
      let want = Array.make terminals 0 in
      shuffle rng want;
      let plan = Plan.create fab in
      let image = Array.make terminals (-1) in
      for i = 0 to terminals - 1 do
        if BF.try_route router plan ~input:i ~output:want.(i) then image.(i) <- want.(i)
      done;
      Plan_check.is_sound ~image plan)

let test_plan_check_flags_partial_path () =
  let router = router_of (Mineq.Classical.network Omega ~n:3) in
  let fab = BF.fabric router in
  let plan = Plan.create fab in
  (* a single interior claim is not a union of complete paths *)
  (match Plan.claim plan ~stage:1 ~cell:0 ~in_port:0 ~out_port:0 with
  | Plan.Claimed -> ()
  | _ -> Alcotest.fail "claim must succeed on an empty plan");
  let findings = Plan_check.check plan in
  let codes = List.map (fun f -> f.D.code) findings in
  check_true "stage-count skew" (List.mem "MINEQ-R005" codes);
  check_true "dangles forward" (List.mem "MINEQ-R006" codes);
  check_true "orphan (nothing drives it)" (List.mem "MINEQ-R007" codes);
  List.iter (fun f -> check_true "severity" (f.D.severity = D.Error)) findings;
  check_false "not sound" (Plan_check.is_sound plan)

let test_plan_check_realizes_mismatch () =
  (* the rearrangeable Benes router realizes any permutation in full *)
  let router = Loop.create 3 in
  let plan = Loop.plan router in
  let n = Loop.terminals router in
  let image = Array.init n Fun.id in
  Loop.route router plan image;
  check_true "correct image accepted" (Plan_check.is_sound ~image plan);
  image.(0) <- 1;
  let codes = List.map (fun f -> f.D.code) (Plan_check.check ~image plan) in
  check_true "realizes mismatch" (List.mem "MINEQ-R009" codes);
  (match Plan_check.check ~image:[| 0 |] plan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong image length must be rejected");
  (* don't-care entries are fine *)
  let dontcare = Array.make n (-1) in
  check_true "don't-care image" (Plan_check.is_sound ~image:dontcare plan)

(* Bit_follow unwind invariant ---------------------------------------- *)

let test_unwind_bit_identical () =
  let router = router_of (Mineq.Classical.network Omega ~n:3) in
  let fab = BF.fabric router in
  let plan = Plan.create fab in
  (* find a concrete blocked pair by brute force *)
  let n = F.terminals fab in
  let found = ref false in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if (not !found) && a <> b then begin
        Plan.reset plan;
        check_true "first routes" (BF.try_route router plan ~input:0 ~output:a);
        let before = Plan.snapshot plan in
        if not (BF.try_route router plan ~input:1 ~output:b) then begin
          found := true;
          check_true "words bit-identical after unwind" (Plan.snapshot plan = before);
          check_int "set_count restored" fab.F.stages (Plan.set_count plan)
        end
      end
    done
  done;
  check_true "a blocked pair exists at n=3" !found

let prop_unwind_bit_identical =
  qcheck ~count:120 "blocked try_route leaves plan words bit-identical"
    (QCheck.pair n_and_seed (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 5)))
    (fun ((n, seed), pick) ->
      let kinds = Mineq.Classical.all_kinds in
      let kind = List.nth kinds (pick mod List.length kinds) in
      let rng = rng_of seed in
      let router = router_of (Mineq.Classical.network kind ~n) in
      let fab = BF.fabric router in
      let terminals = F.terminals fab in
      let want = Array.make terminals 0 in
      shuffle rng want;
      let plan = Plan.create fab in
      let ok = ref true in
      for i = 0 to terminals - 1 do
        let before = Plan.snapshot plan in
        if not (BF.try_route router plan ~input:i ~output:want.(i)) then
          (* blocked: the plan must be word-for-word what it was *)
          if Plan.snapshot plan <> before then ok := false
      done;
      !ok)

(* Route_lint --------------------------------------------------------- *)

let test_route_lint_classical () =
  List.iter
    (fun (name, net) ->
      let r = Route_lint.run net in
      check_true (name ^ " delta") r.Route_lint.delta;
      check_bool (name ^ " forward free") true (r.Route_lint.forward_free = Some true);
      check_bool (name ^ " recirc cycles") true (r.Route_lint.recirc_free = Some false);
      check_int (name ^ " no errors") 0 (Route_lint.errors r);
      check_int (name ^ " no warnings") 0 (Route_lint.warnings r);
      check_true (name ^ " clean") (Route_lint.clean r);
      check_int (name ^ " exit 0") 0 (Route_lint.exit_code r);
      check_true (name ^ " smoke routed") (r.Route_lint.routed_smoke > 0);
      let codes = List.map (fun f -> f.D.code) r.Route_lint.findings in
      check_true (name ^ " R110") (List.mem "MINEQ-R110" codes);
      check_true (name ^ " R111") (List.mem "MINEQ-R111" codes);
      check_true (name ^ " certificates ran")
        (List.mem "MINEQ-R113" codes || List.mem "MINEQ-R103" codes))
    (all_classical ~n:3)

let test_route_lint_not_delta () =
  let rng = rng_of 80 in
  let rec find attempts =
    if attempts = 0 then None
    else
      match Mineq.Counterexample.random_buddy_banyan rng ~n:4 ~attempts:2000 with
      | None -> None
      | Some g -> if Mineq.Routing.is_delta g then find (attempts - 1) else Some g
  in
  match find 20 with
  | None -> Alcotest.fail "expected a non-delta Banyan instance"
  | Some g ->
      let r = Route_lint.run g in
      check_false "not delta" r.Route_lint.delta;
      check_true "no CDG verdict" (r.Route_lint.forward_free = None);
      check_int "one warning" 1 (Route_lint.warnings r);
      check_int "exit 1" 1 (Route_lint.exit_code r);
      let codes = List.map (fun f -> f.D.code) r.Route_lint.findings in
      check_true "R101" (codes = [ "MINEQ-R101" ])

let test_route_lint_renderers () =
  let r = Route_lint.run (Mineq.Classical.network Omega ~n:3) in
  let text = Route_lint.to_text r in
  check_true "text header" (String.length text > 0);
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "text has verdict" (contains text "MINEQ-R110");
  let json = Route_lint.to_json r in
  check_true "json schema" (contains json "\"schema\": \"mineq-route-lint/1\"");
  check_true "json findings" (contains json "\"MINEQ-R110\"");
  check_true "json cdg" (contains json "\"cdg\"")

let test_route_lint_strings () =
  (match Route_lint.lint_string "gap garbage\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed spec must fail to parse");
  let omega_n3 = "mineq-spec 1\nstages 3\ngap theta 2 0 1\ngap theta 2 0 1\n" in
  match Route_lint.lint_string omega_n3 with
  | Error e -> Alcotest.fail ("spec should parse: " ^ e.Mineq.Spec_io.reason)
  | Ok r ->
      check_true "delta" r.Route_lint.delta;
      check_int "exit 0" 0 (Route_lint.exit_code r)

let suite =
  [ quick "cdg: forward classical fabrics are leveled and free" test_cdg_forward_classical;
    quick "cdg: Tarjan agrees with exhaustive DFS (n <= 4)" test_cdg_agreement_exhaustive;
    quick "cdg: recirculation yields a validated cycle witness" test_cdg_recirc_cycle_witness;
    quick "cdg: edge counts and recirculation growth" test_cdg_edge_count;
    prop_cdg_random_banyan;
    quick "certify: symbolic verdicts match brute force (n <= 4)" test_certify_agreement;
    quick "certify: survey covers the classical classes" test_certify_survey_shape;
    quick "certify: rectangular cascades are unsupported" test_certify_unsupported_shape;
    quick "certify: invalid inputs rejected" test_certify_bad_inputs;
    quick "certify: bpc classes analyze" test_certify_bpc_class;
    prop_plan_check_accepts_loop;
    prop_plan_check_accepts_bit_follow;
    quick "plan_check: partial paths are flagged" test_plan_check_flags_partial_path;
    quick "plan_check: realizes mismatches are flagged" test_plan_check_realizes_mismatch;
    quick "bit_follow: unwind leaves words bit-identical" test_unwind_bit_identical;
    prop_unwind_bit_identical;
    quick "route_lint: classical networks verify clean" test_route_lint_classical;
    quick "route_lint: non-delta networks warn" test_route_lint_not_delta;
    quick "route_lint: text and JSON renderers" test_route_lint_renderers;
    quick "route_lint: spec parsing round-trip" test_route_lint_strings
  ]
