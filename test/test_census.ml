open Helpers
module C = Mineq.Census

let test_classify_classical () =
  (* All six classical networks land in a single class. *)
  let tagged = List.map (fun (name, g) -> (g, name)) (all_classical ~n:3) in
  let classes = C.classify tagged in
  check_int "one class" 1 (List.length classes);
  let cls = List.hd classes in
  check_int "six members" 6 (List.length cls.C.members);
  check_true "it is the baseline class" (C.contains_baseline cls)

let test_classify_mixed () =
  let rng = rng_of 800 in
  let baselineish = Mineq.Classical.network Omega ~n:3 in
  match Mineq.Counterexample.find_non_equivalent rng ~n:3 ~attempts:5000 ~require_buddy:false with
  | None -> Alcotest.fail "need a non-equivalent instance"
  | Some other ->
      let classes =
        C.classify [ (baselineish, "omega"); (other, "other"); (baselineish, "omega2") ]
      in
      check_int "two classes" 2 (List.length classes);
      let with_baseline = List.filter C.contains_baseline classes in
      check_int "exactly one baseline class" 1 (List.length with_baseline);
      check_int "baseline class has both omegas" 2
        (List.length (List.hd with_baseline).C.members)

let test_class_count () =
  check_int "identical networks collapse" 1
    (C.class_count [ Mineq.Baseline.network 3; Mineq.Baseline.network 3 ]);
  check_int "empty input" 0 (C.class_count [])

let test_sample_census () =
  let rng = rng_of 801 in
  let classes = C.sample_banyan_census rng ~n:3 ~samples:40 ~attempts:300 in
  let total = List.fold_left (fun acc c -> acc + List.length c.C.members) 0 classes in
  check_true "samples were drawn" (total > 10);
  check_true "several classes exist at n=3" (List.length classes >= 2);
  check_int "at most one baseline class" 1
    (max 1 (List.length (List.filter C.contains_baseline classes)));
  (* Tags are the sample indices, all distinct. *)
  let tags = List.concat_map (fun c -> c.C.members) classes in
  check_int "tags unique" total (List.length (List.sort_uniq compare tags))

let test_signature_invariance () =
  let rng = rng_of 802 in
  let g = Mineq.Classical.network Omega ~n:4 in
  let h = Mineq.Counterexample.relabelled_equivalent rng g in
  Alcotest.(check string) "signature invariant under relabelling" (C.signature g)
    (C.signature h);
  match Mineq.Counterexample.find_non_equivalent rng ~n:4 ~attempts:5000 ~require_buddy:true with
  | None -> Alcotest.fail "need a non-equivalent instance"
  | Some other ->
      check_true "non-equivalent networks get different signatures here"
        (C.signature g <> C.signature other)

let props =
  [ qcheck "classification is stable under duplication" ~count:10
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let g = random_banyan_pipid (rng_of seed) ~n:3 in
        C.class_count [ g; g; g ] = 1);
    qcheck "relabelled copies share a class" ~count:10
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let rng = rng_of seed in
        let g = random_banyan_pipid rng ~n:3 in
        let h = Mineq.Counterexample.relabelled_equivalent rng g in
        C.class_count [ g; h ] = 1)
  ]

let suite =
  [ quick "classical networks form one class" test_classify_classical;
    quick "mixed classification" test_classify_mixed;
    quick "class count" test_class_count;
    quick "sampled census at n=3 (X15)" test_sample_census;
    quick "signature invariance" test_signature_invariance
  ]
  @ props
