open Helpers
module T = Mineq_sim.Traffic
module Perm = Mineq_perm.Perm

let test_uniform_in_range () =
  let rng = rng_of 110 in
  for _ = 1 to 200 do
    let d = T.draw T.uniform rng ~terminals:16 ~src:3 in
    check_true "in range" (d >= 0 && d < 16)
  done

let test_permutation_fixed () =
  let rng = rng_of 111 in
  let p = Perm.of_array [| 2; 0; 3; 1 |] in
  let t = T.permutation p in
  for src = 0 to 3 do
    check_int "permutation destination" (Perm.apply p src) (T.draw t rng ~terminals:4 ~src)
  done

let test_hotspot_bias () =
  let rng = rng_of 112 in
  let t = T.hotspot ~fraction:0.9 ~target:5 in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if T.draw t rng ~terminals:16 ~src:0 = 5 then incr hits
  done;
  (* 90% direct plus 1/16 of the uniform remainder: expect ~906. *)
  check_true "strong bias" (!hits > 800);
  Alcotest.check_raises "bad fraction" (Invalid_argument "Traffic.hotspot: bad fraction")
    (fun () -> ignore (T.hotspot ~fraction:1.5 ~target:0))

let test_bit_reversal () =
  let rng = rng_of 113 in
  let t = T.bit_reversal ~n:4 in
  check_int "0001 -> 1000" 0b1000 (T.draw t rng ~terminals:16 ~src:0b0001);
  check_int "1011 -> 1101" 0b1101 (T.draw t rng ~terminals:16 ~src:0b1011);
  check_int "palindrome fixed" 0b1001 (T.draw t rng ~terminals:16 ~src:0b1001)

let test_transpose () =
  let rng = rng_of 114 in
  let t = T.transpose ~n:4 in
  check_int "rotate by n/2" 0b0100 (T.draw t rng ~terminals:16 ~src:0b0001);
  check_int "high bits wrap" 0b0001 (T.draw t rng ~terminals:16 ~src:0b0100)

let test_names () =
  check_true "uniform name" (T.name T.uniform = "uniform");
  check_true "bit-reversal name" (T.name (T.bit_reversal ~n:3) = "bit-reversal")

let props =
  [ qcheck "bit reversal is an involution" (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let rng = rng_of seed in
        let t = T.bit_reversal ~n:5 in
        let src = Random.State.int rng 32 in
        let once = T.draw t rng ~terminals:32 ~src in
        T.draw t rng ~terminals:32 ~src:once = src);
    qcheck "transpose twice is the identity for even n"
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let rng = rng_of seed in
        let t = T.transpose ~n:4 in
        let src = Random.State.int rng 16 in
        let once = T.draw t rng ~terminals:16 ~src in
        T.draw t rng ~terminals:16 ~src:once = src)
  ]

let suite =
  [ quick "uniform in range" test_uniform_in_range;
    quick "permutation" test_permutation_fixed;
    quick "hotspot bias" test_hotspot_bias;
    quick "bit reversal" test_bit_reversal;
    quick "transpose" test_transpose;
    quick "names" test_names
  ]
  @ props
