open Helpers
module Rv = Mineq_radix.Rv
module Rc = Mineq_radix.Rconnection
module Rn = Mineq_radix.Rnetwork
module Rb = Mineq_radix.Rbuild
module M = Mineq.Mi_digraph
module P = Mineq.Packed

(* Agreement gates for the stride-r packed kernels: the packed census,
   path-count DP and characterization must coincide with the boxed
   closure pipeline they replaced, and the r = 2 packing must coincide
   with the binary library's own packing on the classical inventory. *)

let random_any_network rng ~radix ~n =
  Rn.create
    (List.init (n - 1) (fun _ -> Rc.random_any rng (Rv.context ~radix ~width:(n - 1))))

let test_packed_shape () =
  let g = Rb.omega ~radix:3 3 in
  let p = Rn.packed g in
  check_int "radix" 3 (P.radix p);
  check_int "stages" 3 (P.stages p);
  check_int "width" 2 (P.width p);
  check_int "cells per stage" 9 (P.nodes_per_stage p);
  check_int "total nodes" 27 (P.total_nodes p);
  (* Child tables agree with the boxed connection, port for port. *)
  for gap = 1 to 2 do
    let c = Rn.connection g gap in
    for x = 0 to 8 do
      List.iteri
        (fun j y -> check_int "child" y (P.child p ~gap ~port:j x))
        (Rc.children c x)
    done;
    (* Predecessor slots hold each cell's parent multiset. *)
    for y = 0 to 8 do
      Alcotest.(check (list int))
        "parents"
        (List.sort compare (Rc.parents c y))
        (List.sort compare (List.init 3 (fun j -> P.parent p ~gap ~port:j y)))
    done
  done

let test_packed_cache_identity () =
  let g = Rb.baseline ~radix:4 3 in
  check_true "cached" (Rn.packed g == Rn.packed g)

let test_census_agreement_baseline () =
  (* Every window of the radix-3 Baseline: packed flat-DSU census =
     boxed subgraph-BFS census = the closed-form expected count. *)
  let g = Rb.baseline ~radix:3 4 in
  let n = Rn.stages g in
  for lo = 1 to n do
    for hi = lo to n do
      let packed = Rn.component_count g ~lo ~hi in
      let boxed = Rn.component_count_subgraph g ~lo ~hi in
      check_int (Printf.sprintf "census window %d-%d" lo hi) boxed packed;
      check_int
        (Printf.sprintf "expected window %d-%d" lo hi)
        (Rn.expected_components g ~lo ~hi)
        packed
    done
  done

let test_banyan_agreement_inventory () =
  (* All six constructions at several radixes: packed DP verdict =
     boxed DP verdict (all Banyan), and both characterizations
     agree. *)
  List.iter
    (fun (radix, n) ->
      List.iter
        (fun (name, g) ->
          let tag = Printf.sprintf "%s r=%d n=%d" name radix n in
          check_true (tag ^ " packed banyan") (Rn.is_banyan g);
          check_true (tag ^ " boxed banyan") (Rn.is_banyan_list g);
          check_true (tag ^ " packed characterization") (Rn.by_characterization g);
          check_true (tag ^ " boxed characterization") (Rn.by_characterization_list g))
        (Rb.all_networks ~radix ~n))
    [ (2, 4); (3, 3); (4, 3) ]

let test_path_count_matrix_rows () =
  (* On a Banyan network every path-count row is all ones; on a
     degenerate stack the packed matrix still totals r^(n-1) paths
     per source (mass conservation of the DP). *)
  let g = Rb.omega ~radix:3 3 in
  let m = Rn.path_count_matrix g in
  Array.iter (fun row -> Array.iter (fun v -> check_int "banyan entry" 1 v) row) m;
  let deg =
    Rn.create
      [ Rb.pipid_connection ~radix:3 ~n:3 (Mineq_perm.Perm.identity 3);
        Rb.pipid_connection ~radix:3 ~n:3 (Mineq_perm.Pipid_family.perfect_shuffle ~width:3)
      ]
  in
  let dm = Rn.path_count_matrix deg in
  Array.iter
    (fun row -> check_int "total paths" 9 (Array.fold_left ( + ) 0 row))
    dm

let test_radix2_matches_binary_packed () =
  (* r = 2 packed radix kernels = the binary library's own Packed
     results, across the classical inventory: same path-count
     matrices, same censuses on every window, agreeing equivalence
     verdicts. *)
  List.iter
    (fun n ->
      List.iter
        (fun (name, rg) ->
          let kind =
            match Mineq.Classical.of_name name with
            | Some k -> k
            | None -> Alcotest.fail ("unknown classical name " ^ name)
          in
          let bg = Mineq.Classical.network kind ~n in
          let tag = Printf.sprintf "%s n=%d" name n in
          check_true
            (tag ^ " same digraph")
            (Mineq_graph.Digraph.equal (Rn.to_digraph rg) (M.to_digraph bg));
          Alcotest.(check (array (array int)))
            (tag ^ " path-count matrix")
            (Mineq.Banyan.path_count_matrix bg)
            (Rn.path_count_matrix rg);
          for lo = 1 to n do
            for hi = lo to n do
              check_int
                (Printf.sprintf "%s census %d-%d" tag lo hi)
                (Mineq.Properties.component_count bg ~lo ~hi)
                (Rn.component_count rg ~lo ~hi)
            done
          done;
          check_bool
            (tag ^ " equivalence verdict")
            (Mineq.Equivalence.equivalent_enum bg)
            (Rn.by_characterization rg))
        (Rb.all_networks ~radix:2 ~n))
    [ 3; 4 ]

let test_downstream_tables_radix () =
  (* Radix downstream tables: every entry names the right child cell,
     and the r input ports of every next-stage cell are each claimed
     by exactly one (source, out-port) link. *)
  let g = Rb.omega ~radix:3 3 in
  let p = Rn.packed g in
  let r = P.radix p in
  let per = P.nodes_per_stage p in
  let down = P.downstream p in
  check_int "one table per gap" (P.stages p - 1) (Array.length down);
  Array.iteri
    (fun k table ->
      let gap = k + 1 in
      check_int "table length" (r * per) (Array.length table);
      let claimed = Array.make (r * per) false in
      Array.iteri
        (fun i entry ->
          let x = i / r and j = i mod r in
          let cell = entry / r in
          check_int "child cell" (P.child p ~gap ~port:j x) cell;
          check_false "port claimed once" claimed.(entry);
          claimed.(entry) <- true)
        table;
      Array.iteri (fun _ c -> check_true "every port claimed" c) claimed)
    down

let test_radix_validation () =
  let raises_invalid name f =
    match f () with
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
    | exception Invalid_argument _ -> ()
  in
  raises_invalid "baseline r=1" (fun () -> Rb.baseline ~radix:1 3);
  raises_invalid "baseline r=0" (fun () -> Rb.baseline ~radix:0 3);
  raises_invalid "omega r=1" (fun () -> Rb.omega ~radix:1 3);
  raises_invalid "flip r=-2" (fun () -> Rb.flip ~radix:(-2) 3);
  raises_invalid "pipid_connection r=1" (fun () ->
      Rb.pipid_connection ~radix:1 ~n:3 (Mineq_perm.Perm.identity 3));
  raises_invalid "connection_of_link_perm r=1" (fun () ->
      Rb.connection_of_link_perm ~radix:1 ~n:2 (Mineq_perm.Perm.identity 2));
  raises_invalid "random_network r=1" (fun () ->
      Rb.random_network (rng_of 7) ~radix:1 ~n:3);
  raises_invalid "pack_tables r=1" (fun () ->
      M.pack_tables ~stages:3 ~radix:1 ~width:2 ~child:(fun ~gap:_ ~port:_ x -> x));
  raises_invalid "pack_tables r=0" (fun () ->
      M.pack_tables ~stages:2 ~radix:0 ~width:1 ~child:(fun ~gap:_ ~port:_ x -> x));
  (* The message names the offending function, not a deep helper. *)
  (match Rb.baseline ~radix:1 3 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      check_true "message names Rbuild.baseline"
        (String.length msg >= 15 && String.sub msg 0 15 = "Rbuild.baseline"))

let props =
  let gen =
    QCheck.make
      ~print:(fun (r, n, s) -> Printf.sprintf "r=%d n=%d seed=%d" r n s)
      QCheck.Gen.(triple (int_range 2 4) (int_range 2 4) (int_bound 100000))
  in
  [ qcheck "packed radix census = boxed census (random windows)" ~count:60 gen
      (fun (radix, n, seed) ->
        let g = random_any_network (rng_of seed) ~radix ~n in
        List.for_all
          (fun (lo, hi) ->
            Rn.component_count g ~lo ~hi = Rn.component_count_subgraph g ~lo ~hi)
          (List.concat
             (List.init n (fun i ->
                  List.init (n - i) (fun k -> (i + 1, i + 1 + k))))));
    qcheck "packed radix DP = boxed closure Banyan check" ~count:80 gen
      (fun (radix, n, seed) ->
        let rng = rng_of seed in
        (* Mix PIPID stacks (often Banyan) with arbitrary stages
           (rarely Banyan) so both verdicts are exercised. *)
        let g =
          if Random.State.bool rng then Rb.random_pipid_network rng ~radix ~n
          else random_any_network rng ~radix ~n
        in
        Rn.is_banyan g = Rn.is_banyan_list g);
    qcheck "packed characterization = boxed characterization" ~count:40 gen
      (fun (radix, n, seed) ->
        let rng = rng_of seed in
        let g =
          if Random.State.bool rng then Rb.random_pipid_network rng ~radix ~n
          else random_any_network rng ~radix ~n
        in
        Rn.by_characterization g = Rn.by_characterization_list g);
    qcheck "r=2 random networks: radix packed = binary packed" ~count:40
      (QCheck.make ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 4) (int_bound 100000)))
      (fun (n, seed) ->
        let g = random_any_network (rng_of seed) ~radix:2 ~n in
        let p = Rn.packed g in
        (* Rebuild a binary Mi_digraph from the same child tables and
           compare verdicts through the binary pipeline. *)
        let conns =
          List.init (n - 1) (fun k ->
              Mineq.Connection.make ~width:(n - 1)
                ~f:(fun x -> P.child p ~gap:(k + 1) ~port:0 x)
                ~g:(fun x -> P.child p ~gap:(k + 1) ~port:1 x))
        in
        let bg = M.create conns in
        Rn.is_banyan g = Result.is_ok (Mineq.Banyan.check bg)
        && Rn.component_count g ~lo:1 ~hi:n
           = Mineq.Properties.component_count bg ~lo:1 ~hi:n)
  ]

let suite =
  [ quick "packed shape and tables" test_packed_shape;
    quick "packed cache identity" test_packed_cache_identity;
    quick "census agreement on baseline windows" test_census_agreement_baseline;
    quick "banyan agreement on the inventory" test_banyan_agreement_inventory;
    quick "path-count matrix rows" test_path_count_matrix_rows;
    quick "r=2 packed = binary packed (classical inventory)" test_radix2_matches_binary_packed;
    quick "radix downstream tables" test_downstream_tables_radix;
    quick "radix >= 2 validation" test_radix_validation
  ]
  @ props
