open Helpers
module C = Mineq.Cascade
module M = Mineq.Mi_digraph

let baseline_cascade n = C.of_mi_digraph (Mineq.Baseline.network n)

let test_of_mi_digraph () =
  let c = baseline_cascade 4 in
  check_int "stages" 4 (C.stages c);
  check_int "width" 3 (C.width c);
  check_int "cells" 8 (C.cells_per_stage c);
  check_int "terminals" 16 (C.terminals c);
  match C.to_mi_digraph c with
  | Some g -> check_true "round trip" (M.equal g (Mineq.Baseline.network 4))
  | None -> Alcotest.fail "square cascade converts back"

let test_concat () =
  let a = baseline_cascade 3 in
  let b = C.of_mi_digraph (Mineq.Baseline.reverse 3) in
  let glued = C.concat a b in
  check_int "glued stages" 5 (C.stages glued);
  check_true "non-square has no MI-digraph" (Option.is_none (C.to_mi_digraph glued));
  check_int "gap 1 from first part" 0
    (if Mineq.Connection.equal_graph (C.connection glued 1) (C.connection a 1) then 0 else 1);
  Alcotest.check_raises "width mismatch" (Invalid_argument "Cascade.concat: width mismatch")
    (fun () -> ignore (C.concat a (baseline_cascade 4)))

let test_path_counts () =
  let c = baseline_cascade 3 in
  let counts = C.path_counts c in
  Array.iter (Array.iter (fun w -> check_int "banyan counts" 1 w)) counts;
  check_true "square baseline cascade banyan" (C.is_banyan c);
  (* Benes: exactly 2^(n-1) paths between any terminal pair. *)
  let benes = Mineq.Benes.network 3 in
  let counts = C.path_counts benes in
  Array.iter (Array.iter (fun w -> check_int "benes path diversity" 4 w)) counts;
  check_false "benes not banyan" (C.is_banyan benes)

let test_reverse () =
  let c = baseline_cascade 4 in
  let r = C.reverse c in
  check_int "same stages" 4 (C.stages r);
  (* Reverse of the cascade equals the cascade of the reverse. *)
  match C.to_mi_digraph r with
  | Some g -> check_true "matches Mi_digraph.reverse" (M.equal g (Mineq.Baseline.reverse 4))
  | None -> Alcotest.fail "square"

let test_route_validity () =
  let c = baseline_cascade 3 in
  (match Mineq.Routing.route (Mineq.Baseline.network 3) ~input:2 ~output:5 with
  | None -> Alcotest.fail "route exists"
  | Some p ->
      let r = { C.input = 2; output = 5; cells = p.Mineq.Routing.cells } in
      check_true "converted route valid" (C.route_is_valid c r));
  let bogus = { C.input = 0; output = 0; cells = [| 0; 3; 0 |] } in
  check_false "non-arc hop rejected" (C.route_is_valid c bogus);
  let wrong_start = { C.input = 7; output = 0; cells = [| 0; 0; 0 |] } in
  check_false "wrong attachment rejected" (C.route_is_valid c wrong_start)

let test_link_disjoint () =
  let c = baseline_cascade 3 in
  let route input output =
    match Mineq.Routing.route (Mineq.Baseline.network 3) ~input ~output with
    | Some p -> { C.input; output; cells = p.Mineq.Routing.cells }
    | None -> Alcotest.fail "route exists"
  in
  (* 0->0 and 1->1 share every link (co-located pair). *)
  check_false "conflicting pair" (C.link_disjoint c [ route 0 0; route 1 1 ]);
  (* 0->0 and 1->4: same first cell, disjoint onward. *)
  check_true "disjoint pair" (C.link_disjoint c [ route 0 0; route 1 4 ]);
  check_true "empty set" (C.link_disjoint c []);
  (* Same output link used twice. *)
  check_false "output collision" (C.link_disjoint c [ route 0 3; route 0 3 ])

let test_create_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Cascade.create: empty connection list")
    (fun () -> ignore (C.create []))

let test_unrolled_shuffle_exchange_is_omega () =
  (* Parker's recirculating shuffle-exchange: one shuffle stage passed
     n-1 times.  Unrolling the recirculation yields exactly the Omega
     MI-digraph. *)
  let n = 4 in
  let gap =
    Mineq.Link_spec.connection_of_link_perm ~n
      (Mineq_perm.Index_perm.induce ~width:n (Mineq_perm.Pipid_family.perfect_shuffle ~width:n))
  in
  let unrolled =
    List.fold_left
      (fun acc c -> C.concat acc c)
      (C.create [ gap ])
      (List.init (n - 2) (fun _ -> C.create [ gap ]))
  in
  match C.to_mi_digraph unrolled with
  | Some g ->
      check_true "unrolled recirculation = omega"
        (M.equal g (Mineq.Classical.network Omega ~n))
  | None -> Alcotest.fail "unrolled network is square"

let props =
  [ qcheck "extra-stage cascades multiply path counts" ~count:20 n_and_seed (fun (n, seed) ->
        (* Gluing a Banyan network with the reverse of another Banyan
           of the same size gives exactly 2^(n-1) paths per pair:
           counts compose as matrix products of all-ones rows. *)
        let rng = rng_of seed in
        let a = C.of_mi_digraph (random_banyan_pipid rng ~n) in
        let b = C.of_mi_digraph (Mineq.Mi_digraph.reverse (random_banyan_pipid rng ~n)) in
        let counts = C.path_counts (C.concat a b) in
        let expected = 1 lsl (n - 1) in
        Array.for_all (Array.for_all (fun w -> w = expected)) counts);
    qcheck "square cascades round trip" ~count:20 n_and_seed (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        match C.to_mi_digraph (C.of_mi_digraph g) with
        | Some h -> M.equal g h
        | None -> false)
  ]

let suite =
  [ quick "of/to MI-digraph" test_of_mi_digraph;
    quick "concat" test_concat;
    quick "path counts" test_path_counts;
    quick "reverse" test_reverse;
    quick "route validity" test_route_validity;
    quick "link disjointness" test_link_disjoint;
    quick "create validation" test_create_validation;
    quick "unrolled shuffle-exchange = omega" test_unrolled_shuffle_exchange_is_omega
  ]
  @ props
