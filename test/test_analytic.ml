open Helpers
module A = Mineq_sim.Analytic

let feq ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let test_recurrence () =
  feq "full load one stage" 0.75 (A.stage_recurrence 1.0);
  feq "zero stays zero" 0.0 (A.stage_recurrence 0.0);
  (* p = 0.5: 1 - 0.75^2 = 0.4375. *)
  feq "half load" 0.4375 (A.stage_recurrence 0.5)

let test_acceptance_boundaries () =
  feq "zero stages accept all" 1.0 (A.acceptance ~n:0 ~offered:0.7);
  feq "zero load accepted" 1.0 (A.acceptance ~n:5 ~offered:0.0);
  Alcotest.check_raises "bad load" (Invalid_argument "Analytic.acceptance: offered in [0,1]")
    (fun () -> ignore (A.acceptance ~n:3 ~offered:1.5))

let test_monotonicity () =
  (* Throughput decreases with stage count and increases with load. *)
  let rec stages n acc =
    if n > 10 then ()
    else begin
      let t = A.saturation ~n in
      check_true "decreasing in n" (t <= acc +. 1e-12);
      stages (n + 1) t
    end
  in
  stages 1 1.0;
  let t1 = A.throughput ~n:4 ~offered:0.3 in
  let t2 = A.throughput ~n:4 ~offered:0.6 in
  check_true "increasing in offered load" (t1 < t2)

let test_asymptotic_shape () =
  (* Exact small cases of the recurrence... *)
  feq "saturation n=1" 0.75 (A.saturation ~n:1);
  feq "saturation n=2" 0.609375 (A.saturation ~n:2);
  (* ...and the classical O(4/n) asymptotic: the relative error of
     4/(n+3) shrinks monotonically (slowly — it is still ~10% at
     n = 32; the recurrence has logarithmic corrections). *)
  let relerr n =
    let exact = A.saturation ~n in
    Float.abs (exact -. (4.0 /. float_of_int (n + 3))) /. exact
  in
  let errs = List.map relerr [ 4; 8; 16; 32 ] in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check_true "approximation error decreases in n" (decreasing errs);
  check_true "within 15% by n=32" (relerr 32 < 0.15)

let test_against_simulator () =
  (* X14: the drop-on-full capacity-1 simulator lands near (a little
     above) the analytic unbuffered model -- its queues retain
     arbitration losers for a retry, which the memoryless model does
     not credit.  Accept 25%. *)
  let n = 5 in
  let g = Mineq.Classical.network Omega ~n in
  let config =
    { Mineq_sim.Network_sim.default_config with
      injection_rate = 1.0;
      cycles = 3000;
      buffer_capacity = 1;
      drop_on_full = true
    }
  in
  let sim = Mineq_sim.Network_sim.throughput (Mineq_sim.Network_sim.run ~config (rng_of 700) g) in
  let model = A.saturation ~n in
  check_true
    (Printf.sprintf "simulated %.3f within 25%% of analytic %.3f" sim model)
    (Float.abs (sim -. model) /. model < 0.25)

let props =
  [ qcheck "acceptance in (0, 1]" (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let rng = rng_of seed in
        let n = Random.State.int rng 12 in
        let offered = Random.State.float rng 1.0 in
        let a = A.acceptance ~n ~offered in
        a > 0.0 && a <= 1.0 +. 1e-12);
    qcheck "recurrence maps [0,1] into [0,1]"
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let p = Random.State.float (rng_of seed) 1.0 in
        let q = A.stage_recurrence p in
        q >= 0.0 && q <= 1.0 && q <= p)
  ]

let suite =
  [ quick "recurrence values" test_recurrence;
    quick "acceptance boundaries" test_acceptance_boundaries;
    quick "monotonicity" test_monotonicity;
    quick "asymptotic 4/(n+3)" test_asymptotic_shape;
    slow "matches the simulator (X14)" test_against_simulator
  ]
  @ props
