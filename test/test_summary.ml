open Helpers
module S = Mineq_sim.Summary

let feq ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let test_empty () =
  let t = S.create () in
  check_int "count" 0 (S.count t);
  check_true "mean nan" (Float.is_nan (S.mean t));
  check_true "variance nan" (Float.is_nan (S.variance t));
  check_true "half width nan" (Float.is_nan (S.half_width_95 t))

let test_single () =
  let t = S.of_samples [ 2.5 ] in
  feq "mean" 2.5 (S.mean t);
  check_true "variance nan with one sample" (Float.is_nan (S.variance t))

let test_known_values () =
  let t = S.of_samples [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  feq "mean" 5.0 (S.mean t);
  feq "variance (unbiased)" (32.0 /. 7.0) (S.variance t);
  feq "min" 2.0 (S.min_value t);
  feq "max" 9.0 (S.max_value t);
  check_int "count" 8 (S.count t)

let test_welford_matches_naive () =
  let rng = rng_of 600 in
  let xs = List.init 500 (fun _ -> Random.State.float rng 100.0) in
  let t = S.of_samples xs in
  let n = float_of_int (List.length xs) in
  let mean = List.fold_left ( +. ) 0.0 xs /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
  in
  feq ~eps:1e-6 "mean matches" mean (S.mean t);
  feq ~eps:1e-6 "variance matches" var (S.variance t)

let test_pp () =
  let t = S.of_samples [ 1.0; 2.0; 3.0 ] in
  let s = Format.asprintf "%a" S.pp t in
  check_true "pp mentions n" (String.length s > 0 && String.contains s 'n')

let test_histogram () =
  let h = S.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (S.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; 100.0; -5.0 ];
  let counts = S.Histogram.counts h in
  check_int "bucket 0 gets 0.5 and the clamped -5" 2 counts.(0);
  check_int "bucket 1" 2 counts.(1);
  check_int "last bucket gets 9.9 and the clamped 100" 2 counts.(9);
  check_int "total" 6 (S.Histogram.total h)

let test_quantile () =
  let h = S.Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:100 in
  for i = 1 to 100 do
    S.Histogram.add h (float_of_int i -. 0.5)
  done;
  let median = S.Histogram.quantile h 0.5 in
  check_true "median near 50" (median > 45.0 && median < 55.0);
  let p99 = S.Histogram.quantile h 0.99 in
  check_true "p99 near 99" (p99 > 95.0);
  check_true "empty quantile nan"
    (Float.is_nan (S.Histogram.quantile (S.Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:2) 0.5))

let test_histogram_validation () =
  Alcotest.check_raises "bad shape" (Invalid_argument "Histogram.create: bad shape") (fun () ->
      ignore (S.Histogram.create ~lo:1.0 ~hi:0.0 ~buckets:4))

let test_replicate () =
  let t = S.replicate ~seeds:[ 1; 2; 3; 4; 5 ] (fun rng -> Random.State.float rng 1.0) in
  check_int "five runs" 5 (S.count t);
  check_true "values in range" (S.min_value t >= 0.0 && S.max_value t <= 1.0);
  (* Same seeds, same summary: determinism. *)
  let t' = S.replicate ~seeds:[ 1; 2; 3; 4; 5 ] (fun rng -> Random.State.float rng 1.0) in
  feq "deterministic" (S.mean t) (S.mean t')

let props =
  [ qcheck "mean within min/max" (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let rng = rng_of seed in
        let xs = List.init (2 + Random.State.int rng 50) (fun _ -> Random.State.float rng 10.0) in
        let t = S.of_samples xs in
        S.mean t >= S.min_value t -. 1e-9 && S.mean t <= S.max_value t +. 1e-9);
    qcheck "variance non-negative" (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let rng = rng_of seed in
        let xs = List.init (2 + Random.State.int rng 50) (fun _ -> Random.State.float rng 10.0) in
        S.variance (S.of_samples xs) >= -1e-9);
    qcheck "histogram conserves samples"
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let rng = rng_of seed in
        let h = S.Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:8 in
        let k = 1 + Random.State.int rng 100 in
        for _ = 1 to k do
          S.Histogram.add h (Random.State.float rng 2.0 -. 0.5)
        done;
        Array.fold_left ( + ) 0 (S.Histogram.counts h) = k)
  ]

let suite =
  [ quick "empty" test_empty;
    quick "single sample" test_single;
    quick "known values" test_known_values;
    quick "welford matches naive" test_welford_matches_naive;
    quick "pretty printing" test_pp;
    quick "histogram buckets" test_histogram;
    quick "quantiles" test_quantile;
    quick "histogram validation" test_histogram_validation;
    quick "replicate" test_replicate
  ]
  @ props
