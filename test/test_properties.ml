open Helpers
module P = Mineq.Properties
module M = Mineq.Mi_digraph

let baseline = Mineq.Baseline.network

let test_expected_counts () =
  let g = baseline 4 in
  check_int "whole graph: 1 component expected" 1 (P.expected_components g ~lo:1 ~hi:4);
  check_int "single stage: 2^(n-1) components" 8 (P.expected_components g ~lo:2 ~hi:2);
  check_int "two stages: 2^(n-2)" 4 (P.expected_components g ~lo:2 ~hi:3)

let test_baseline_all_p () =
  for n = 2 to 6 do
    let g = baseline n in
    check_true (Printf.sprintf "baseline %d satisfies P(1,j) for all j" n) (P.p_one_star g);
    check_true (Printf.sprintf "baseline %d satisfies P(i,n) for all i" n) (P.p_star_n g);
    check_true (Printf.sprintf "baseline %d satisfies every P(i,j)" n) (P.satisfies_all g)
  done

let test_single_stage_components () =
  let g = baseline 4 in
  (* A single stage has no arcs: components = isolated nodes. *)
  for s = 1 to 4 do
    check_int "isolated nodes" 8 (P.component_count g ~lo:s ~hi:s)
  done

let test_full_matrix_shape () =
  let g = baseline 3 in
  let m = P.full_matrix g in
  check_int "n(n+1)/2 windows" 6 (List.length m);
  List.iter
    (fun (lo, hi, found, expected) ->
      check_true "window bounds ordered" (lo <= hi);
      check_int (Printf.sprintf "baseline window %d..%d" lo hi) expected found)
    m

let test_classical_p_properties () =
  List.iter
    (fun (name, g) ->
      check_true (name ^ " P(1,j) for all j") (P.p_one_star g);
      check_true (name ^ " P(i,n) for all i") (P.p_star_n g))
    (all_classical ~n:5)

let test_buddy_properties () =
  List.iter
    (fun (name, g) -> check_true (name ^ " buddy") (P.has_buddy_property g))
    (all_classical ~n:4);
  (* A network with a non-buddy stage: crossbar-ish irregular wiring.
     width 2: f = id, g = +1 mod 4 — children sets {x, x+1} overlap
     without being equal. *)
  let c =
    Mineq.Connection.make ~width:2 ~f:(fun x -> x) ~g:(fun x -> (x + 1) land 3)
  in
  let c2 = Mineq.Connection.make ~width:2 ~f:(fun x -> x) ~g:(fun x -> x lxor 2) in
  let g = M.create [ c; c2 ] in
  check_false "ring stage breaks output buddy" (P.output_buddy_stage g 1);
  check_false "ring stage breaks input buddy" (P.input_buddy_stage g 1);
  check_false "network buddy fails" (P.has_buddy_property g)

let test_buddy_by_construction () =
  let rng = rng_of 21 in
  for _ = 1 to 10 do
    let g = Mineq.Counterexample.random_buddy_network rng ~n:4 in
    check_true "generator output has buddy property" (P.has_buddy_property g)
  done

let test_component_profile () =
  let g = baseline 4 in
  let profile = P.component_profile g ~lo:2 ~hi:4 in
  check_int "two components for stages 2..4" 2 (Array.length profile.components);
  Array.iter
    (fun slices ->
      check_int "three stage slices" 3 (Array.length slices);
      Array.iter (fun slice -> check_int "slice size 2^(n-j)" 4 (List.length slice)) slices)
    profile.components

let test_lemma2_structure_on_classical () =
  List.iter
    (fun (name, g) ->
      check_true (name ^ " satisfies Lemma 2's invariant") (P.lemma2_translate_structure g))
    (all_classical ~n:5)

let test_bad_range_rejected () =
  Alcotest.check_raises "bad range" (Invalid_argument "Properties: bad stage range") (fun () ->
      ignore (P.expected_components (baseline 3) ~lo:0 ~hi:2))

let props =
  [ qcheck "Lemma 2: Banyan + independent implies P(i,n) for all i" ~count:60 n_and_seed
      (fun (n, seed) ->
        P.p_star_n (random_banyan_pipid (rng_of seed) ~n));
    qcheck "dual of Lemma 2: P(1,j) for all j holds too (via Prop 1)" ~count:60 n_and_seed
      (fun (n, seed) ->
        P.p_one_star (random_banyan_pipid (rng_of seed) ~n));
    qcheck "Lemma 2 translate structure on random PIPID Banyans" ~count:40 n_and_seed
      (fun (n, seed) ->
        P.lemma2_translate_structure (random_banyan_pipid (rng_of seed) ~n));
    qcheck "P properties invariant under relabelling" ~count:40 n_and_seed (fun (n, seed) ->
        let rng = rng_of seed in
        let g = random_banyan_pipid rng ~n in
        let h = Mineq.Counterexample.relabelled_equivalent rng g in
        P.p_one_star h && P.p_star_n h);
    qcheck "P(i,j) symmetric under reversal" ~count:40 n_and_seed (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        let r = M.reverse g in
        P.p_one_star r && P.p_star_n r);
    qcheck "widening a window can only merge components" ~count:40 n_and_seed
      (fun (n, seed) ->
        (* Every node of the added stage has two parents inside the
           window, so extending (G)_{1..j} to (G)_{1..j+1} never
           increases the component count. *)
        let g = Mineq.Link_spec.random_network (rng_of seed) ~n in
        let counts = List.init n (fun j -> P.component_count g ~lo:1 ~hi:(j + 1)) in
        let rec monotone = function
          | a :: (b :: _ as rest) -> a >= b && monotone rest
          | _ -> true
        in
        monotone counts)
  ]

let suite =
  [ quick "expected component counts" test_expected_counts;
    quick "baseline satisfies all P" test_baseline_all_p;
    quick "single-stage windows" test_single_stage_components;
    quick "full matrix" test_full_matrix_shape;
    quick "classical networks satisfy P" test_classical_p_properties;
    quick "buddy properties" test_buddy_properties;
    quick "buddy generator" test_buddy_by_construction;
    quick "component profile" test_component_profile;
    quick "Lemma 2 structure on classical networks" test_lemma2_structure_on_classical;
    quick "bad range rejected" test_bad_range_rejected
  ]
  @ props
