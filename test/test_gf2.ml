open Helpers
module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix

let m_of_rows cols rows = Gf2.of_rows ~cols (Array.of_list rows)

let test_identity () =
  let i3 = Gf2.identity 3 in
  check_int "rows" 3 (Gf2.rows i3);
  check_int "cols" 3 (Gf2.cols i3);
  for x = 0 to 7 do
    check_int "identity acts trivially" x (Gf2.apply i3 x)
  done;
  check_int "identity rank" 3 (Gf2.rank i3);
  check_true "identity invertible" (Gf2.is_invertible i3)

let test_entry_row_column () =
  let m = m_of_rows 3 [ 0b101; 0b010 ] in
  check_true "entry 0 0" (Gf2.entry m 0 0);
  check_false "entry 0 1" (Gf2.entry m 0 1);
  check_int "row 1" 0b010 (Gf2.row m 1);
  check_int "column 0 = rows' bit 0" 0b01 (Gf2.column m 0);
  check_int "column 1" 0b10 (Gf2.column m 1);
  check_int "column 2" 0b01 (Gf2.column m 2)

let test_apply () =
  (* Matrix [[1 0 1]; [0 1 0]]: y0 = x0 xor x2, y1 = x1. *)
  let m = m_of_rows 3 [ 0b101; 0b010 ] in
  check_int "apply 101" 0b00 (Gf2.apply m 0b101);
  check_int "apply 100" 0b01 (Gf2.apply m 0b100);
  check_int "apply 010" 0b10 (Gf2.apply m 0b010)

let test_mul () =
  let a = m_of_rows 2 [ 0b01; 0b11 ] in
  let b = m_of_rows 2 [ 0b10; 0b01 ] in
  let ab = Gf2.mul a b in
  for x = 0 to 3 do
    check_int "mul = composed apply" (Gf2.apply a (Gf2.apply b x)) (Gf2.apply ab x)
  done

let test_transpose () =
  let m = m_of_rows 3 [ 0b101; 0b010 ] in
  let t = Gf2.transpose m in
  check_int "transpose rows" 3 (Gf2.rows t);
  check_int "transpose cols" 2 (Gf2.cols t);
  check_true "transpose entry" (Gf2.entry t 0 0);
  check_true "double transpose" (Gf2.equal m (Gf2.transpose t))

let test_rank_singular () =
  let singular = m_of_rows 3 [ 0b101; 0b101; 0b010 ] in
  check_int "rank with repeated row" 2 (Gf2.rank singular);
  check_false "singular not invertible" (Gf2.is_invertible singular);
  check_true "inverse of singular is None" (Option.is_none (Gf2.inverse singular));
  check_int "zero matrix rank" 0 (Gf2.rank (Gf2.zero ~rows:3 ~cols:3))

let test_inverse () =
  let m = m_of_rows 3 [ 0b011; 0b110; 0b001 ] in
  match Gf2.inverse m with
  | None -> Alcotest.fail "expected invertible"
  | Some inv ->
      check_true "m * inv = I" (Gf2.equal (Gf2.mul m inv) (Gf2.identity 3));
      check_true "inv * m = I" (Gf2.equal (Gf2.mul inv m) (Gf2.identity 3))

let test_kernel () =
  let m = m_of_rows 3 [ 0b101; 0b010 ] in
  let kernel = Gf2.kernel_basis m in
  check_int "kernel dim" 1 (List.length kernel);
  List.iter (fun v -> check_int "kernel vector maps to 0" 0 (Gf2.apply m v)) kernel;
  check_int "full-rank kernel trivial" 0 (List.length (Gf2.kernel_basis (Gf2.identity 4)))

let test_solve () =
  let m = m_of_rows 3 [ 0b101; 0b010 ] in
  (match Gf2.solve m 0b11 with
  | None -> Alcotest.fail "expected solvable"
  | Some x -> check_int "solution checks" 0b11 (Gf2.apply m x));
  (* Inconsistent system: row 0 = row 1 but different rhs bits. *)
  let m2 = m_of_rows 2 [ 0b11; 0b11 ] in
  check_true "inconsistent detected" (Option.is_none (Gf2.solve m2 0b01))

let test_of_linear_map () =
  let f x = ((x lsl 1) lor (x lsr 2)) land 7 in
  (* Rotation is linear. *)
  check_true "rotation is linear" (Gf2.is_linear ~width:3 f);
  let m = Gf2.of_linear_map ~width:3 f in
  for x = 0 to 7 do
    check_int "matrix matches map" (f x) (Gf2.apply m x)
  done;
  check_false "xor-with-constant not linear" (Gf2.is_linear ~width:3 (fun x -> x lxor 1));
  check_false "and-shift not linear" (Gf2.is_linear ~width:3 (fun x -> if x = 3 then 1 else 0))

let test_add () =
  let a = m_of_rows 2 [ 0b01; 0b11 ] in
  check_true "a + a = 0" (Gf2.equal (Gf2.add a a) (Gf2.zero ~rows:2 ~cols:2))

let test_row_space () =
  let m = m_of_rows 3 [ 0b101; 0b101; 0b010; 0b111 ] in
  check_int "row space dim" 2 (List.length (Gf2.row_space_basis m))

let props =
  let random_matrix_gen =
    QCheck.make
      ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
      QCheck.Gen.(pair (int_range 1 6) (int_bound 100000))
  in
  [ qcheck "random invertible is invertible" random_matrix_gen (fun (n, seed) ->
        Gf2.is_invertible (Gf2.random_invertible (rng_of seed) n));
    qcheck "inverse round trip" random_matrix_gen (fun (n, seed) ->
        let m = Gf2.random_invertible (rng_of seed) n in
        match Gf2.inverse m with
        | None -> false
        | Some inv -> Gf2.equal (Gf2.mul m inv) (Gf2.identity n));
    qcheck "apply distributes over xor" random_matrix_gen (fun (n, seed) ->
        let rng = rng_of seed in
        let m = Gf2.random_invertible rng n in
        let bound = Bv.universe_size ~width:n in
        let x = Random.State.int rng bound and y = Random.State.int rng bound in
        Gf2.apply m (x lxor y) = Gf2.apply m x lxor Gf2.apply m y);
    qcheck "rank of product bounded" random_matrix_gen (fun (n, seed) ->
        let rng = rng_of seed in
        let a = Gf2.random_invertible rng n in
        let rows = Array.init n (fun _ -> Random.State.int rng (1 lsl n)) in
        let b = Gf2.of_rows ~cols:n rows in
        Gf2.rank (Gf2.mul a b) = Gf2.rank b);
    qcheck "kernel dim + rank = cols" random_matrix_gen (fun (n, seed) ->
        let rng = rng_of seed in
        let rows = Array.init n (fun _ -> Random.State.int rng (1 lsl n)) in
        let m = Gf2.of_rows ~cols:n rows in
        List.length (Gf2.kernel_basis m) + Gf2.rank m = n);
    qcheck "solve finds preimages of applied vectors" random_matrix_gen (fun (n, seed) ->
        let rng = rng_of seed in
        let rows = Array.init n (fun _ -> Random.State.int rng (1 lsl n)) in
        let m = Gf2.of_rows ~cols:n rows in
        let x = Random.State.int rng (1 lsl n) in
        let b = Gf2.apply m x in
        match Gf2.solve m b with None -> false | Some y -> Gf2.apply m y = b)
  ]

let suite =
  [ quick "identity" test_identity;
    quick "entry/row/column" test_entry_row_column;
    quick "apply" test_apply;
    quick "mul" test_mul;
    quick "transpose" test_transpose;
    quick "rank of singular" test_rank_singular;
    quick "inverse" test_inverse;
    quick "kernel" test_kernel;
    quick "solve" test_solve;
    quick "of_linear_map / is_linear" test_of_linear_map;
    quick "add" test_add;
    quick "row space basis" test_row_space
  ]
  @ props
