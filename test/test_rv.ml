open Helpers
module Rv = Mineq_radix.Rv

let c3 = Rv.context ~radix:3 ~width:4

let test_context_validation () =
  Alcotest.check_raises "radix 1" (Invalid_argument "Rv.context: radix must be >= 2") (fun () ->
      ignore (Rv.context ~radix:1 ~width:2));
  Alcotest.check_raises "negative width" (Invalid_argument "Rv.context: width must be >= 0")
    (fun () -> ignore (Rv.context ~radix:3 ~width:(-1)));
  Alcotest.check_raises "overflow" (Invalid_argument "Rv.context: radix^width overflows")
    (fun () -> ignore (Rv.context ~radix:10 ~width:30))

let test_basics () =
  check_int "radix" 3 (Rv.radix c3);
  check_int "width" 4 (Rv.width c3);
  check_int "universe" 81 (Rv.universe_size c3);
  check_true "valid" (Rv.is_valid c3 80);
  check_false "invalid" (Rv.is_valid c3 81)

let test_digits () =
  (* 50 in base 3 is 1212. *)
  check_int "digit 0" 2 (Rv.digit c3 50 0);
  check_int "digit 1" 1 (Rv.digit c3 50 1);
  check_int "digit 2" 2 (Rv.digit c3 50 2);
  check_int "digit 3" 1 (Rv.digit c3 50 3);
  Alcotest.(check (list int)) "to_digits" [ 1; 2; 1; 2 ] (Rv.to_digits c3 50);
  check_int "of_digits round trip" 50 (Rv.of_digits c3 [ 1; 2; 1; 2 ]);
  check_int "set digit" 50 (Rv.set_digit c3 (50 - 2) 0 2);
  Alcotest.(check string) "to_string" "1212" (Rv.to_string c3 50)

let test_group_ops () =
  (* (1212) + (0121) digit-wise mod 3 = (1000+...): 1+0,2+1,1+2,2+1 =
     1,0,0,0 -> 1000_3 = 27. *)
  let y = Rv.of_digits c3 [ 0; 1; 2; 1 ] in
  check_int "add" 27 (Rv.add c3 50 y);
  check_int "zero is identity" 50 (Rv.add c3 50 0);
  check_int "neg cancels" 0 (Rv.add c3 50 (Rv.neg c3 50));
  check_int "sub" 50 (Rv.sub c3 (Rv.add c3 50 y) y)

let test_units () =
  check_int "unit 0" 1 (Rv.unit c3 0);
  check_int "unit 2" 9 (Rv.unit c3 2);
  check_int "scale unit" 18 (Rv.scale_unit c3 2 2);
  check_int "generator count" 4 (List.length (Rv.generators c3))

let test_binary_case_matches_bv () =
  let c2 = Rv.context ~radix:2 ~width:5 in
  for x = 0 to 31 do
    for y = 0 to 31 do
      check_int "add = xor at radix 2" (x lxor y) (Rv.add c2 x y)
    done;
    check_int "neg is identity at radix 2" x (Rv.neg c2 x)
  done

let test_iter_fold () =
  check_int "fold counts" 81 (Rv.fold_universe c3 ~init:0 ~f:(fun a _ -> a + 1));
  let seen = ref 0 in
  Rv.iter_universe c3 (fun _ -> incr seen);
  check_int "iter covers" 81 !seen

let props =
  let gen =
    QCheck.make
      ~print:(fun (r, s) -> Printf.sprintf "r=%d seed=%d" r s)
      QCheck.Gen.(pair (int_range 2 6) (int_bound 100000))
  in
  [ qcheck "add is commutative and associative" gen (fun (r, seed) ->
        let c = Rv.context ~radix:r ~width:3 in
        let rng = rng_of seed in
        let u = Rv.universe_size c in
        let x = Random.State.int rng u and y = Random.State.int rng u
        and z = Random.State.int rng u in
        Rv.add c x y = Rv.add c y x && Rv.add c (Rv.add c x y) z = Rv.add c x (Rv.add c y z));
    qcheck "digits round trip" gen (fun (r, seed) ->
        let c = Rv.context ~radix:r ~width:4 in
        let x = Random.State.int (rng_of seed) (Rv.universe_size c) in
        Rv.of_digits c (Rv.to_digits c x) = x);
    qcheck "every element has order dividing r" gen (fun (r, seed) ->
        let c = Rv.context ~radix:r ~width:3 in
        let x = Random.State.int (rng_of seed) (Rv.universe_size c) in
        let rec times k acc = if k = 0 then acc else times (k - 1) (Rv.add c acc x) in
        times r 0 = 0)
  ]

let suite =
  [ quick "context validation" test_context_validation;
    quick "basics" test_basics;
    quick "digits" test_digits;
    quick "group operations" test_group_ops;
    quick "units" test_units;
    quick "radix 2 = Bv" test_binary_case_matches_bv;
    quick "iter and fold" test_iter_fold
  ]
  @ props
