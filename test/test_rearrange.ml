(* Incremental rearrangement engine: unit semantics, equivalence with
   from-scratch looping compiles, batch netting, plan adoption. *)

open Helpers
module Plan = Mineq_route.Plan
module Loop = Mineq_route.Loop
module Rearrange = Mineq_route.Rearrange
module Survey = Mineq_route.Survey
module Pool = Mineq_engine.Pool

let is_done = function Rearrange.Done -> true | _ -> false

(* The survey's toggle policy: disconnect a live input, connect an
   idle one to a uniform free output (which must exist: an idle input
   means live < 2^n). *)
let rec free_output rng rr nt =
  let o = Random.State.int rng nt in
  if Rearrange.input_of rr o < 0 then o else free_output rng rr nt

let toggle rng rr nt =
  let i = Random.State.int rng nt in
  if Rearrange.output_of rr i >= 0 then ignore (Rearrange.disconnect rr ~input:i)
  else ignore (Rearrange.connect rr ~input:i ~output:(free_output rng rr nt))

let test_connect_basics () =
  let rr = Rearrange.create 3 in
  check_true "connect 0->5" (is_done (Rearrange.connect rr ~input:0 ~output:5));
  check_int "live" 1 (Rearrange.live rr);
  check_int "output_of" 5 (Rearrange.output_of rr 0);
  check_int "input_of" 0 (Rearrange.input_of rr 5);
  check_int "propagates" 5 (Plan.propagate (Rearrange.plan rr) 0);
  check_true "busy input" (Rearrange.connect rr ~input:0 ~output:2 = Rearrange.Input_busy);
  check_true "busy output" (Rearrange.connect rr ~input:3 ~output:5 = Rearrange.Output_busy);
  check_false "disconnect idle" (Rearrange.disconnect rr ~input:4);
  check_true "consistent" (Rearrange.consistent rr);
  check_true "disconnect live" (Rearrange.disconnect rr ~input:0);
  check_int "live after" 0 (Rearrange.live rr);
  check_int "unrouted" (-1) (Plan.propagate (Rearrange.plan rr) 0);
  check_true "consistent after" (Rearrange.consistent rr)

let test_full_permutation () =
  let rng = rng_of 0x9e21 in
  let n = 4 in
  let rr = Rearrange.create n in
  let nt = Rearrange.terminals rr in
  let img = Array.init nt Fun.id in
  for i = nt - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = img.(i) in
    img.(i) <- img.(j);
    img.(j) <- t
  done;
  Array.iteri
    (fun i o -> check_true "connects" (is_done (Rearrange.connect rr ~input:i ~output:o)))
    img;
  check_int "full" nt (Rearrange.live rr);
  check_true "realizes" (Plan.realizes (Rearrange.plan rr) img);
  check_true "consistent" (Rearrange.consistent rr)

let test_rearrangement_observed () =
  let rng = rng_of 0x51ce in
  let rr = Rearrange.create 4 in
  let nt = Rearrange.terminals rr in
  for _ = 1 to 400 do
    toggle rng rr nt
  done;
  check_true "connects counted" (Rearrange.connects rr > 0);
  check_true "disconnects counted" (Rearrange.disconnects rr > 0);
  (* 400 random toggles at n=4 cannot all drop into free subnetworks *)
  check_true "some connect rearranged" (Rearrange.moved_total rr > 0);
  check_true "consistent" (Rearrange.consistent rr)

let test_reset () =
  let rr = Rearrange.create 3 in
  ignore (Rearrange.connect rr ~input:1 ~output:6);
  ignore (Rearrange.connect rr ~input:2 ~output:0);
  Rearrange.reset rr;
  check_int "live" 0 (Rearrange.live rr);
  check_int "set_count" 0 (Plan.set_count (Rearrange.plan rr));
  check_int "connects counter" 0 (Rearrange.connects rr);
  check_true "consistent" (Rearrange.consistent rr);
  check_true "reusable" (is_done (Rearrange.connect rr ~input:1 ~output:6))

let test_rescan_adopts () =
  let rng = rng_of 0x77aa in
  let n = 4 in
  let loop = Loop.create n in
  let rr = Rearrange.of_loop loop in
  let nt = Rearrange.terminals rr in
  let img = Array.init nt Fun.id in
  for i = nt - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = img.(i) in
    img.(i) <- img.(j);
    img.(j) <- t
  done;
  (* idle a few inputs so adoption covers partial plans too *)
  img.(3) <- -1;
  img.(10) <- -1;
  Loop.route loop (Rearrange.plan rr) img;
  Rearrange.rescan rr;
  check_int "live" (nt - 2) (Rearrange.live rr);
  check_int "idle input" (-1) (Rearrange.output_of rr 3);
  check_true "consistent" (Rearrange.consistent rr);
  (* the adopted state must be churnable *)
  for _ = 1 to 200 do
    toggle rng rr nt
  done;
  check_true "consistent after churn" (Rearrange.consistent rr)

let test_rescan_rejects_dangling () =
  let rr = Rearrange.create 3 in
  (* a mid-network claim no input feeds *)
  ignore (Plan.claim (Rearrange.plan rr) ~stage:2 ~cell:1 ~in_port:0 ~out_port:1);
  Alcotest.check_raises "dangling"
    (Invalid_argument "Rearrange.rescan: dangling mid-path assignment") (fun () ->
      Rearrange.rescan rr)

let test_apply_moves_netting () =
  let rr = Rearrange.create 3 in
  ignore (Rearrange.connect rr ~input:0 ~output:1);
  (* disconnect + identical reconnect nets to nothing *)
  let nop =
    [| Rearrange.Disconnect { input = 0 }; Rearrange.Connect { input = 0; output = 1 } |]
  in
  check_int "net no-op" 0 (Rearrange.apply_moves rr nop);
  check_int "still connected" 1 (Rearrange.output_of rr 0);
  (* swap two connections through a shared-output handover *)
  ignore (Rearrange.connect rr ~input:5 ~output:2);
  let swap =
    [| Rearrange.Disconnect { input = 0 };
       Rearrange.Disconnect { input = 5 };
       Rearrange.Connect { input = 0; output = 2 };
       Rearrange.Connect { input = 5; output = 1 }
    |]
  in
  check_true "swap applied" (Rearrange.apply_moves rr swap <= 4);
  check_int "swapped 0" 2 (Rearrange.output_of rr 0);
  check_int "swapped 5" 1 (Rearrange.output_of rr 5);
  check_true "consistent" (Rearrange.consistent rr)

let test_apply_moves_validates () =
  let rr = Rearrange.create 3 in
  ignore (Rearrange.connect rr ~input:0 ~output:1);
  Alcotest.check_raises "busy input"
    (Invalid_argument "Rearrange.apply_moves: connect on a busy input") (fun () ->
      ignore (Rearrange.apply_moves rr [| Rearrange.Connect { input = 0; output = 3 } |]));
  Alcotest.check_raises "busy output"
    (Invalid_argument "Rearrange.apply_moves: connect on a busy output") (fun () ->
      ignore (Rearrange.apply_moves rr [| Rearrange.Connect { input = 2; output = 1 } |]));
  Alcotest.check_raises "idle disconnect"
    (Invalid_argument "Rearrange.apply_moves: disconnect on an idle input") (fun () ->
      ignore (Rearrange.apply_moves rr [| Rearrange.Disconnect { input = 7 } |]));
  (* a batch that fails mid-validation must not have touched anything *)
  Alcotest.check_raises "atomic"
    (Invalid_argument "Rearrange.apply_moves: connect on a busy output") (fun () ->
      ignore
        (Rearrange.apply_moves rr
           [| Rearrange.Connect { input = 4; output = 6 };
              Rearrange.Connect { input = 5; output = 1 }
           |]));
  check_int "untouched" (-1) (Rearrange.output_of rr 4);
  check_int "kept" 1 (Rearrange.output_of rr 0);
  check_true "consistent" (Rearrange.consistent rr)

(* qcheck (a): after any toggle sequence the engine's plan realizes
   the same partial image a from-scratch looping compile produces. *)
let prop_matches_scratch (n, seed) =
  let rng = rng_of seed in
  let loop = Loop.create n in
  let rr = Rearrange.of_loop loop in
  let nt = Rearrange.terminals rr in
  let ok = ref true in
  for _ = 1 to 120 do
    toggle rng rr nt;
    if not (Rearrange.consistent rr) then ok := false
  done;
  let img = Rearrange.image rr in
  let scratch = Loop.plan loop in
  Loop.route loop scratch img;
  !ok
  && Plan.realizes (Rearrange.plan rr) img
  && Plan.realizes scratch img
  && Plan.to_array (Rearrange.plan rr) = Plan.to_array scratch

(* qcheck (b): a move list applied as one batch or as any chunking of
   consecutive sub-batches lands in the same configuration. *)
let prop_chunking_invariant (n, seed) =
  let rng = rng_of seed in
  let nt = 1 lsl n in
  let sh_out = Array.make nt (-1) in
  let sh_in = Array.make nt (-1) in
  let moves =
    Array.init 60 (fun _ ->
        let i = Random.State.int rng nt in
        if sh_out.(i) >= 0 then begin
          sh_in.(sh_out.(i)) <- -1;
          sh_out.(i) <- -1;
          Rearrange.Disconnect { input = i }
        end
        else begin
          let rec free () =
            let o = Random.State.int rng nt in
            if sh_in.(o) < 0 then o else free ()
          in
          let o = free () in
          sh_out.(i) <- o;
          sh_in.(o) <- i;
          Rearrange.Connect { input = i; output = o }
        end)
  in
  let a = Rearrange.create n in
  ignore (Rearrange.apply_moves a moves);
  let b = Rearrange.create n in
  let pos = ref 0 in
  while !pos < Array.length moves do
    let len = 1 + Random.State.int rng (Array.length moves - !pos) in
    ignore (Rearrange.apply_moves b (Array.sub moves !pos len));
    pos := !pos + len
  done;
  Rearrange.consistent a
  && Rearrange.consistent b
  && Rearrange.image a = Rearrange.image b
  && Plan.to_array (Rearrange.plan a) = Plan.to_array (Rearrange.plan b)
  && Rearrange.live a = Rearrange.live b

(* one-at-a-time application is yet another chunking *)
let prop_batch_matches_singles (n, seed) =
  let rng = rng_of seed in
  let loop = Loop.create n in
  let rr = Rearrange.of_loop loop in
  let nt = Rearrange.terminals rr in
  for _ = 1 to 80 do
    toggle rng rr nt
  done;
  let img = Rearrange.image rr in
  let moves =
    Array.of_list
      (List.filter_map
         (fun i ->
           if img.(i) >= 0 then Some (Rearrange.Connect { input = i; output = img.(i) })
           else None)
         (List.init nt Fun.id))
  in
  let fresh = Rearrange.create n in
  let applied = Rearrange.apply_moves fresh moves in
  applied = Array.length moves
  && Rearrange.consistent fresh
  && Rearrange.image fresh = img

let prop_churn_survey_jobs_invariant (n, seed) =
  let row ~jobs = Survey.churn ~jobs ~seed ~n ~ops:40 ~trials:3 () in
  let a = row ~jobs:1 in
  let b = row ~jobs:3 in
  a.Survey.failures = 0 && a = b

let suite =
  [ quick "connect/disconnect basics" test_connect_basics;
    quick "full permutation via connects" test_full_permutation;
    quick "random churn rearranges and stays sound" test_rearrangement_observed;
    quick "reset clears engine and plan" test_reset;
    quick "rescan adopts a loop-compiled plan" test_rescan_adopts;
    quick "rescan rejects dangling claims" test_rescan_rejects_dangling;
    quick "apply_moves nets opposing ops" test_apply_moves_netting;
    quick "apply_moves validates atomically" test_apply_moves_validates;
    qcheck ~count:60 "incremental matches from-scratch route" n_and_seed
      prop_matches_scratch;
    qcheck ~count:60 "apply_moves chunking invariance" n_and_seed prop_chunking_invariant;
    qcheck ~count:40 "batch connect equals incremental state" n_and_seed
      prop_batch_matches_singles;
    qcheck ~count:8 "churn survey is jobs-invariant"
      (QCheck.pair (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 4)) seed_gen)
      prop_churn_survey_jobs_invariant
  ]
