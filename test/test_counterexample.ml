open Helpers
module Cx = Mineq.Counterexample
module E = Mineq.Equivalence

let test_random_banyan () =
  let rng = rng_of 100 in
  match Cx.random_banyan rng ~n:3 ~attempts:500 with
  | None -> Alcotest.fail "expected a random Banyan at n=3"
  | Some g -> check_true "banyan" (Mineq.Banyan.is_banyan g)

let test_random_buddy_banyan () =
  let rng = rng_of 101 in
  match Cx.random_buddy_banyan rng ~n:4 ~attempts:2000 with
  | None -> Alcotest.fail "expected a buddy Banyan at n=4"
  | Some g ->
      check_true "banyan" (Mineq.Banyan.is_banyan g);
      check_true "buddy" (Mineq.Properties.has_buddy_property g)

let test_agrawal_gap () =
  (* The fact the paper leans on: buddy properties do NOT characterize
     equivalence. *)
  let rng = rng_of 102 in
  match Cx.find_non_equivalent rng ~n:4 ~attempts:5000 ~require_buddy:true with
  | None -> Alcotest.fail "expected Agrawal-gap instance at n=4"
  | Some g ->
      check_true "banyan" (Mineq.Banyan.is_banyan g);
      check_true "buddy everywhere" (Mineq.Properties.has_buddy_property g);
      check_false "but not equivalent" (E.by_characterization g).equivalent;
      check_false "ground truth agrees" (E.by_isomorphism g).equivalent

let test_attempt_exhaustion () =
  let rng = rng_of 103 in
  (* attempts = 0 must return None immediately. *)
  check_true "zero attempts" (Option.is_none (Cx.random_banyan rng ~n:3 ~attempts:0))

let test_relabelled_equivalent () =
  let rng = rng_of 104 in
  let g = Mineq.Baseline.network 4 in
  let h = Cx.relabelled_equivalent rng g in
  check_true "still valid" (Mineq.Mi_digraph.is_valid h);
  check_true "still banyan" (Mineq.Banyan.is_banyan h);
  check_true "still equivalent" (E.by_characterization h).equivalent;
  check_true "isomorphic to original"
    (Option.is_some (Mineq.Iso_min.find g h))

let props =
  [ qcheck "buddy generator always satisfies buddy" ~count:40 n_and_seed (fun (n, seed) ->
        Mineq.Properties.has_buddy_property
          (Cx.random_buddy_network (rng_of seed) ~n));
    qcheck "non-equivalent finds are never false positives" ~count:10
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 3 4) (int_bound 100000)))
      (fun (n, seed) ->
        match
          Cx.find_non_equivalent (rng_of seed) ~n ~attempts:800 ~require_buddy:false
        with
        | None -> true
        | Some g ->
            Mineq.Banyan.is_banyan g && not (E.by_isomorphism g).equivalent);
    qcheck "relabelling is an equivalence-class operation" ~count:20 n_and_seed
      (fun (n, seed) ->
        let rng = rng_of seed in
        let g = random_banyan_pipid rng ~n in
        let h = Cx.relabelled_equivalent rng g in
        (E.by_characterization g).equivalent = (E.by_characterization h).equivalent)
  ]

let suite =
  [ quick "random banyan generator" test_random_banyan;
    quick "buddy banyan generator" test_random_buddy_banyan;
    quick "Agrawal gap (X2)" test_agrawal_gap;
    quick "attempt exhaustion" test_attempt_exhaustion;
    quick "relabelled equivalent" test_relabelled_equivalent
  ]
  @ props
