open Helpers
module B = Mineq.Banyan
module C = Mineq.Connection
module M = Mineq.Mi_digraph

let test_baseline_banyan () =
  for n = 2 to 6 do
    check_true (Printf.sprintf "baseline %d is Banyan" n)
      (B.is_banyan (Mineq.Baseline.network n))
  done

let test_classical_banyan () =
  List.iter
    (fun (name, g) -> check_true (name ^ " is Banyan") (B.is_banyan g))
    (all_classical ~n:5)

let test_path_count_matrix_baseline () =
  let g = Mineq.Baseline.network 4 in
  let m = B.path_count_matrix g in
  Array.iter (fun row -> Array.iter (fun c -> check_int "every count 1" 1 c) row) m

let test_degenerate_stage_not_banyan () =
  (* Identity link permutation: double links (Figure 5). *)
  let n = 3 in
  let thetas =
    [ Mineq_perm.Perm.identity n; Mineq_perm.Pipid_family.perfect_shuffle ~width:n ]
  in
  let g = Mineq.Link_spec.network_of_thetas ~n thetas in
  check_false "degenerate stage breaks Banyan" (B.is_banyan g);
  match B.check g with
  | Ok () -> Alcotest.fail "expected a violation"
  | Error v -> check_true "violation shows multiple or zero paths" (v.paths <> 1)

let test_repeated_butterfly_not_banyan () =
  (* Two identical butterfly stages create parallel paths even though
     no single stage is degenerate. *)
  let n = 3 in
  let b1 = Mineq_perm.Pipid_family.butterfly ~width:n 1 in
  let g = Mineq.Link_spec.network_of_thetas ~n [ b1; b1 ] in
  check_false "repeated butterfly not Banyan" (B.is_banyan g);
  match B.check g with
  | Ok () -> Alcotest.fail "expected a violation"
  | Error v ->
      check_int "exactly two parallel paths" 2 v.paths

let test_violation_reporting () =
  let n = 3 in
  let thetas = [ Mineq_perm.Perm.identity n; Mineq_perm.Perm.identity n ] in
  let g = Mineq.Link_spec.network_of_thetas ~n thetas in
  match B.check g with
  | Ok () -> Alcotest.fail "identity stack is not Banyan"
  | Error v ->
      check_true "violation fields in range"
        (v.source >= 0 && v.source < M.nodes_per_stage g && v.sink >= 0
        && v.sink < M.nodes_per_stage g);
      (* With identity stages, node x reaches only x, by 4 paths. *)
      check_int "first violation is 0 -/-> 1" 0 v.source;
      check_true "zero paths to a different node or 4 to itself"
        ((v.sink <> v.source && v.paths = 0) || (v.sink = v.source && v.paths = 4))

let test_two_stage_networks () =
  (* n = 2: a single connection; Banyan iff the two children of each
     node differ and the stage is a perfect matching of pairs. *)
  let good = C.make ~width:1 ~f:(fun x -> x) ~g:(fun x -> x lxor 1) in
  check_true "crossbar stage is Banyan" (B.is_banyan (M.create [ good ]));
  let double = C.make ~width:1 ~f:(fun x -> x) ~g:(fun x -> x) in
  check_false "double link stage is not Banyan" (B.is_banyan (M.create [ double ]))

let props =
  [ qcheck "helper generator really yields Banyan networks" n_and_seed (fun (n, seed) ->
        B.is_banyan (random_banyan_pipid (rng_of seed) ~n));
    qcheck "Banyan is invariant under relabelling" n_and_seed (fun (n, seed) ->
        let rng = rng_of seed in
        let g = random_banyan_pipid rng ~n in
        B.is_banyan (Mineq.Counterexample.relabelled_equivalent rng g));
    qcheck "Banyan is invariant under reversal" n_and_seed (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        B.is_banyan (M.reverse g));
    qcheck "path counts sum to 2^(2(n-1)) overall" n_and_seed (fun (n, seed) ->
        (* Every network routes 2^(n-1) port words from each of the
           2^(n-1) sources, Banyan or not. *)
        let g = Mineq.Link_spec.random_network (rng_of seed) ~n in
        let m = B.path_count_matrix g in
        let total = Array.fold_left (Array.fold_left ( + )) 0 m in
        total = 1 lsl (2 * (n - 1)))
  ]

let suite =
  [ quick "baseline is Banyan" test_baseline_banyan;
    quick "classical networks are Banyan" test_classical_banyan;
    quick "path count matrix all ones" test_path_count_matrix_baseline;
    quick "degenerate stage (Figure 5)" test_degenerate_stage_not_banyan;
    quick "repeated butterfly" test_repeated_butterfly_not_banyan;
    quick "violation reporting" test_violation_reporting;
    quick "two-stage networks" test_two_stage_networks
  ]
  @ props
