open Helpers
module Rv = Mineq_radix.Rv
module Rc = Mineq_radix.Rconnection
module Rn = Mineq_radix.Rnetwork
module Rb = Mineq_radix.Rbuild
module Perm = Mineq_perm.Perm

let ctx3 = Rv.context ~radix:3 ~width:2

let shift3 =
  (* Radix-3 analogue of the Baseline first stage: child j of x is
     (x / 3) + j * 3. *)
  Rc.make ctx3 (fun j x -> (x / 3) + (j * 3))

let test_connection_basics () =
  check_int "radix" 3 (Rc.radix shift3);
  check_int "half" 9 (Rc.half shift3);
  Alcotest.(check (list int)) "children of 7" [ 2; 5; 8 ] (Rc.children shift3 7);
  Alcotest.(check (list int)) "parents of 2" [ 6; 7; 8 ] (List.sort compare (Rc.parents shift3 2));
  check_true "valid stage" (Rc.is_mi_stage shift3)

let test_connection_independence () =
  check_true "shift stage independent" (Rc.is_independent shift3);
  check_true "definitional agrees" (Rc.is_independent_definitional shift3);
  (* Witness of alpha = 3 (digit-1 unit): children shift digits down,
     so beta = 1. *)
  (match Rc.witness shift3 3 with
  | Some beta -> check_int "beta of e_1" 1 beta
  | None -> Alcotest.fail "expected witness");
  match Rc.additive_form shift3 with
  | None -> Alcotest.fail "expected additive form"
  | Some (images, offsets) ->
      Alcotest.(check (array int)) "B images" [| 0; 1 |] images;
      Alcotest.(check (array int)) "offsets" [| 0; 3; 6 |] offsets

let test_dependent_stage_detected () =
  (* Swap two images of one child function: breaks independence but
     keeps degrees. *)
  let tweaked =
    Rc.make ctx3 (fun j x ->
        let base = (x / 3) + (j * 3) in
        if j = 0 && x = 0 then 1 else if j = 0 && x = 3 then 0 else base)
  in
  check_true "still a valid stage" (Rc.is_mi_stage tweaked);
  check_false "dependence detected" (Rc.is_independent tweaked);
  check_false "definitional agrees" (Rc.is_independent_definitional tweaked)

let test_reverse_any () =
  let r = Rc.reverse_any shift3 in
  check_true "reverse valid" (Rc.is_mi_stage r);
  check_true "double reverse has original arcs" (Rc.equal_graph (Rc.reverse_any r) shift3)

let test_baseline_structure () =
  let g = Rb.baseline ~radix:3 3 in
  check_int "stages" 3 (Rn.stages g);
  check_int "cells per stage" 9 (Rn.cells_per_stage g);
  check_int "terminals" 27 (Rn.terminals g);
  check_true "banyan" (Rn.is_banyan g);
  check_true "characterization" (Rn.by_characterization g);
  check_true "independence" (Rn.by_independence g)

let test_radix2_matches_binary_library () =
  for n = 2 to 5 do
    let r2 = Rb.baseline ~radix:2 n in
    let bin = Mineq.Baseline.network n in
    check_true
      (Printf.sprintf "radix-2 baseline n=%d" n)
      (Mineq_graph.Digraph.equal (Rn.to_digraph r2) (Mineq.Mi_digraph.to_digraph bin))
  done

let test_omega_equivalent () =
  List.iter
    (fun (radix, n) ->
      let om = Rb.omega ~radix n in
      let base = Rb.baseline ~radix n in
      check_true "omega banyan" (Rn.is_banyan om);
      check_true "omega characterization" (Rn.by_characterization om);
      check_true "omega independence" (Rn.by_independence om);
      check_true "ground truth isomorphism" (Rn.isomorphic om base))
    [ (3, 3); (4, 3); (3, 4); (5, 2) ]

let test_degenerate_radix_stage () =
  let n = 3 in
  let g =
    Rn.create
      [ Rb.pipid_connection ~radix:3 ~n (Perm.identity n);
        Rb.pipid_connection ~radix:3 ~n (Mineq_perm.Pipid_family.perfect_shuffle ~width:n)
      ]
  in
  check_false "degenerate stage breaks banyan" (Rn.is_banyan g);
  check_true "is_degenerate flags it" (Rb.is_degenerate ~n (Perm.identity n))

let test_pipid_closed_form () =
  let rng = rng_of 200 in
  for _ = 1 to 10 do
    let n = 3 in
    let radix = 3 in
    let theta = Perm.random rng n in
    let via_closed = Rb.pipid_connection ~radix ~n theta in
    (* Build the link permutation explicitly and compare. *)
    let link_ctx = Rv.context ~radix ~width:n in
    let p =
      Perm.of_fun ~size:(Rv.universe_size link_ctx) (fun y ->
          let rec build d acc =
            if d = n then acc
            else build (d + 1) (Rv.set_digit link_ctx acc d (Rv.digit link_ctx y (Perm.apply theta d)))
          in
          build 0 0)
    in
    let via_links = Rb.connection_of_link_perm ~radix ~n p in
    check_true "closed form = link permutation" (Rc.equal_graph via_closed via_links)
  done

let test_six_networks_at_radix_3 () =
  (* The main corollary, generalized: all six classical constructions
     at radix 3 are Banyan, independent, satisfy the characterization
     and are mutually isomorphic. *)
  let nets = Rb.all_networks ~radix:3 ~n:3 in
  check_int "six networks" 6 (List.length nets);
  let base = Rb.baseline ~radix:3 3 in
  List.iter
    (fun (name, g) ->
      check_true (name ^ " banyan") (Rn.is_banyan g);
      check_true (name ^ " independence") (Rn.by_independence g);
      check_true (name ^ " characterization") (Rn.by_characterization g);
      check_true (name ^ " isomorphic to baseline") (Rn.isomorphic g base))
    nets

let test_all_networks_degree_invariants () =
  (* all_networks at several (radix, n): six constructions, each with
     n - 1 valid stages of uniform in/out-degree = radix. *)
  List.iter
    (fun (radix, n) ->
      let nets = Rb.all_networks ~radix ~n in
      check_int (Printf.sprintf "six networks r=%d n=%d" radix n) 6 (List.length nets);
      List.iter
        (fun (name, g) ->
          check_int (name ^ " stages") n (Rn.stages g);
          check_int (name ^ " radix") radix (Rn.radix g);
          check_int (name ^ " gaps") (n - 1) (List.length (Rn.connections g));
          List.iter
            (fun c ->
              check_true (name ^ " valid stage") (Rc.is_mi_stage c);
              for x = 0 to Rc.half c - 1 do
                check_int (name ^ " out-degree") radix (List.length (Rc.children c x));
                check_int (name ^ " in-degree") radix (List.length (Rc.parents c x))
              done)
            (Rn.connections g))
        nets)
    [ (2, 4); (3, 3); (4, 2) ]

let test_baseline_equals_subshuffle_stack () =
  List.iter
    (fun (radix, n) ->
      check_true
        (Printf.sprintf "r=%d n=%d recursive = sub-rotation stack" radix n)
        (Rn.equal (Rb.baseline ~radix n) (Rb.baseline_by_subshuffles ~radix n)))
    [ (2, 4); (3, 3); (4, 3); (3, 4) ]

let test_flip_reverses_omega () =
  check_true "flip = reverse omega (radix 3)"
    (Rn.equal (Rb.flip ~radix:3 3) (Rn.reverse (Rb.omega ~radix:3 3)))

let test_routing () =
  let g = Rb.omega ~radix:3 3 in
  (* Route every pair; endpoints must attach correctly. *)
  let terminals = Rn.terminals g in
  for input = 0 to terminals - 1 do
    for output = 0 to terminals - 1 do
      match Mineq_radix.Rrouting.route g ~input ~output with
      | None -> Alcotest.fail "banyan routes every pair"
      | Some p ->
          check_int "starts at input cell" (input / 3) p.Mineq_radix.Rrouting.cells.(0);
          check_int "ends at output cell" (output / 3) p.Mineq_radix.Rrouting.cells.(2)
    done
  done;
  check_true "radix omega is digit-directed" (Mineq_radix.Rrouting.is_delta g)

let test_routing_rejects_non_banyan () =
  let g =
    Rn.create
      [ Rb.pipid_connection ~radix:3 ~n:3 (Perm.identity 3);
        Rb.pipid_connection ~radix:3 ~n:3 (Mineq_perm.Pipid_family.perfect_shuffle ~width:3)
      ]
  in
  match Mineq_radix.Rrouting.route g ~input:0 ~output:0 with
  | exception Failure _ -> ()
  | Some _ -> Alcotest.fail "multiple paths must be flagged"
  | None -> Alcotest.fail "path exists (several, in fact)"

let test_subgraph_and_reverse () =
  let g = Rb.baseline ~radix:3 3 in
  check_int "window components" 3 (Rn.component_count g ~lo:2 ~hi:3);
  check_int "expected" 3 (Rn.expected_components g ~lo:2 ~hi:3);
  let r = Rn.reverse g in
  check_true "reverse banyan" (Rn.is_banyan r);
  check_true "reverse characterization" (Rn.by_characterization r);
  check_true "double reverse equal" (Rn.equal g (Rn.reverse r))

let props =
  let gen =
    QCheck.make
      ~print:(fun (r, s) -> Printf.sprintf "r=%d seed=%d" r s)
      QCheck.Gen.(pair (int_range 2 4) (int_bound 100000))
  in
  [ qcheck "generator independence check = definitional (radix)" ~count:60 gen
      (fun (radix, seed) ->
        let rng = rng_of seed in
        let ctx = Rv.context ~radix ~width:2 in
        let c =
          if Random.State.bool rng then Rb.pipid_connection ~radix ~n:3 (Perm.random rng 3)
          else Rc.random_any rng ctx
        in
        Rc.is_independent c = Rc.is_independent_definitional c);
    qcheck "radix PIPID stages always independent" ~count:40 gen (fun (radix, seed) ->
        Rc.is_independent (Rb.pipid_connection ~radix ~n:3 (Perm.random (rng_of seed) 3)));
    qcheck "X6: independence decider = characterization on Banyan PIPID stacks" ~count:40
      gen (fun (radix, seed) ->
        let rng = rng_of seed in
        let rec banyan_stack attempts =
          if attempts = 0 then None
          else begin
            let g = Rb.random_pipid_network rng ~radix ~n:3 in
            if Rn.is_banyan g then Some g else banyan_stack (attempts - 1)
          end
        in
        match banyan_stack 100 with
        | None -> true
        | Some g -> Rn.by_independence g && Rn.by_characterization g);
    qcheck "random stages are valid" ~count:40 gen (fun (radix, seed) ->
        Rc.is_mi_stage (Rc.random_any (rng_of seed) (Rv.context ~radix ~width:2)))
  ]

let suite =
  [ quick "connection basics" test_connection_basics;
    quick "independence" test_connection_independence;
    quick "dependence detected" test_dependent_stage_detected;
    quick "reverse_any" test_reverse_any;
    quick "radix baseline" test_baseline_structure;
    quick "radix 2 = binary library" test_radix2_matches_binary_library;
    quick "radix omega equivalent (X6)" test_omega_equivalent;
    quick "degenerate radix stage" test_degenerate_radix_stage;
    quick "pipid closed form" test_pipid_closed_form;
    quick "six networks at radix 3 (X6)" test_six_networks_at_radix_3;
    quick "all_networks degree invariants" test_all_networks_degree_invariants;
    quick "baseline = sub-rotation stack" test_baseline_equals_subshuffle_stack;
    quick "flip reverses omega" test_flip_reverses_omega;
    quick "digit-directed routing" test_routing;
    quick "routing rejects non-Banyan" test_routing_rejects_non_banyan;
    quick "subgraph and reverse" test_subgraph_and_reverse
  ]
  @ props
