open Helpers
module Perm = Mineq_perm.Perm
module Ip = Mineq_perm.Index_perm
module Family = Mineq_perm.Pipid_family

let test_identity_induces_identity () =
  check_true "identity theta"
    (Perm.is_identity (Ip.induce ~width:4 (Perm.identity 4)))

let test_shuffle_example () =
  (* Perfect shuffle at width 3: (x2,x1,x0) -> (x1,x0,x2): 5 = 101 ->
     011 = 3. *)
  let sigma = Family.perfect_shuffle ~width:3 in
  let a = Ip.induce ~width:3 sigma in
  check_int "shuffle of 101" 0b011 (Perm.apply a 0b101);
  check_int "shuffle of 100" 0b001 (Perm.apply a 0b100);
  check_int "shuffle of 001" 0b010 (Perm.apply a 0b001);
  check_int "shuffle fixes 0" 0 (Perm.apply a 0);
  check_int "shuffle fixes all-ones" 0b111 (Perm.apply a 0b111)

let test_apply_theta_matches_induce () =
  let rng = rng_of 3 in
  for _ = 1 to 20 do
    let theta = Perm.random rng 5 in
    let a = Ip.induce ~width:5 theta in
    for x = 0 to 31 do
      check_int "pointwise agreement" (Perm.apply a x) (Ip.apply_theta ~width:5 theta x)
    done
  done

let test_recognize () =
  let rng = rng_of 4 in
  for _ = 1 to 20 do
    let theta = Perm.random rng 4 in
    match Ip.recognize ~width:4 (Ip.induce ~width:4 theta) with
    | None -> Alcotest.fail "induced permutation not recognized"
    | Some t -> check_true "theta recovered" (Perm.equal t theta)
  done

let test_recognize_rejects () =
  (* xor-with-1 is a bijection fixing no basis structure: not PIPID. *)
  let p = Perm.of_fun ~size:16 (fun x -> x lxor 1) in
  check_false "xor translation is not PIPID" (Ip.is_pipid ~width:4 p);
  (* A transposition of two arbitrary points. *)
  let q = Perm.transposition ~size:16 3 5 in
  check_false "point swap is not PIPID" (Ip.is_pipid ~width:4 q);
  (* A linear but non-monomial map: x -> (x0 xor x1, x1): images of
     units are not all units. *)
  let lin = Perm.of_fun ~size:4 (fun x -> ((x lxor (x lsr 1)) land 1) lor (x land 2)) in
  check_false "non-monomial linear map is not PIPID" (Ip.is_pipid ~width:2 lin)

let test_compose_law () =
  let rng = rng_of 5 in
  for _ = 1 to 10 do
    let t1 = Perm.random rng 4 and t2 = Perm.random rng 4 in
    check_true "contravariant composition" (Ip.compose_law ~width:4 t1 t2)
  done

let props =
  let gen =
    QCheck.make
      ~print:(fun (w, s) -> Printf.sprintf "w=%d seed=%d" w s)
      QCheck.Gen.(pair (int_range 1 8) (int_bound 100000))
  in
  [ qcheck "induced permutation is linear" gen (fun (w, seed) ->
        let theta = Perm.random (rng_of seed) w in
        let a = Ip.induce ~width:w theta in
        Mineq_bitvec.Gf2_matrix.is_linear ~width:w (Perm.apply a));
    qcheck "induce of inverse is inverse of induce" gen (fun (w, seed) ->
        let theta = Perm.random (rng_of seed) w in
        Perm.equal
          (Ip.induce ~width:w (Perm.inverse theta))
          (Perm.inverse (Ip.induce ~width:w theta)));
    qcheck "recognition round trip" gen (fun (w, seed) ->
        let theta = Perm.random (rng_of seed) w in
        match Ip.recognize ~width:w (Ip.induce ~width:w theta) with
        | None -> false
        | Some t -> Perm.equal t theta);
    qcheck "induced permutation preserves popcount" gen (fun (w, seed) ->
        let rng = rng_of seed in
        let theta = Perm.random rng w in
        let a = Ip.induce ~width:w theta in
        let x = Random.State.int rng (1 lsl w) in
        Mineq_bitvec.Bv.popcount (Perm.apply a x) = Mineq_bitvec.Bv.popcount x)
  ]

let suite =
  [ quick "identity induces identity" test_identity_induces_identity;
    quick "perfect shuffle example" test_shuffle_example;
    quick "apply_theta matches induce" test_apply_theta_matches_induce;
    quick "recognize recovers theta" test_recognize;
    quick "recognize rejects non-PIPID" test_recognize_rejects;
    quick "composition law" test_compose_law
  ]
  @ props
