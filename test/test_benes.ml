open Helpers
module B = Mineq.Benes
module C = Mineq.Cascade
module Perm = Mineq_perm.Perm

let test_structure () =
  for n = 2 to 5 do
    let net = B.network n in
    check_int "stages" ((2 * n) - 1) (C.stages net);
    check_int "width" (n - 1) (C.width net);
    check_false "not banyan (path diversity)" (C.is_banyan net)
  done;
  Alcotest.check_raises "n=1 rejected" (Invalid_argument "Benes.network: need n >= 2")
    (fun () -> ignore (B.network 1))

let test_identity_routes () =
  let n = 3 in
  let net = B.network n in
  let routes = B.route_permutation (Some net) ~n (Perm.identity 8) in
  check_int "one route per terminal" 8 (List.length routes);
  List.iter
    (fun r ->
      check_int "identity endpoint" r.C.input r.C.output;
      check_true "valid" (C.route_is_valid net r))
    routes;
  check_true "identity link-disjoint (unlike single Banyans!)" (C.link_disjoint net routes)

let test_reversal_permutation () =
  let n = 3 in
  let net = B.network n in
  let p = Perm.of_fun ~size:8 (fun i -> 7 - i) in
  let routes = B.route_permutation (Some net) ~n p in
  check_true "reversal realized" (C.link_disjoint net routes)

let test_all_permutations_n2 () =
  (* Exhaustive: all 24 permutations of 4 terminals route on B(2). *)
  let net = B.network 2 in
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun rest -> x :: rest) (perms (List.filter (( <> ) x) l)))
          l
  in
  let all = perms [ 0; 1; 2; 3 ] in
  check_int "4! permutations" 24 (List.length all);
  List.iter
    (fun img ->
      let p = Perm.of_array (Array.of_list img) in
      let routes = B.route_permutation (Some net) ~n:2 p in
      check_true "every permutation of 4 routes" (C.link_disjoint net routes))
    all

let test_levels_structure () =
  for n = 2 to 6 do
    let levels = B.levels ~n in
    check_int "one level per recursion depth" (n - 1) (List.length levels);
    List.iteri
      (fun d lv ->
        check_int "depth recorded" d lv.B.depth;
        check_int "left stage" (d + 1) lv.B.left_stage;
        check_int "right stage" ((2 * n) - 1 - d) lv.B.right_stage;
        check_int "block count" (1 lsl d) lv.B.blocks;
        check_int "block terminals" (1 lsl (n - d)) lv.B.block_terminals;
        check_int "select bit" (n - 2 - d) lv.B.select_bit;
        check_int "blocks cover all terminals" (1 lsl n) (lv.B.blocks * lv.B.block_terminals))
      levels
  done;
  let last = List.nth (B.levels ~n:4) 2 in
  check_int "deepest level pairs terminals" 4 last.B.block_terminals;
  Alcotest.check_raises "n=1 rejected" (Invalid_argument "Benes.levels: need n >= 2")
    (fun () -> ignore (B.levels ~n:1))

let test_looping_colours () =
  let terminals = 8 in
  let rng = rng_of 17 in
  for _ = 1 to 20 do
    let perm = Perm.to_array (Perm.random rng terminals) in
    let colours = B.looping_colours ~terminals perm in
    check_int "one colour per terminal" terminals (Array.length colours);
    Array.iter (fun c -> check_true "colour is 0 or 1" (c = 0 || c = 1)) colours;
    for i = 0 to (terminals / 2) - 1 do
      check_true "input-switch mates split"
        (colours.(2 * i) <> colours.((2 * i) + 1))
    done;
    (* output-switch mates: positions whose images share a cell *)
    for i = 0 to terminals - 1 do
      for j = i + 1 to terminals - 1 do
        if perm.(i) / 2 = perm.(j) / 2 then
          check_true "output-switch mates split" (colours.(i) <> colours.(j))
      done
    done
  done

let test_rearrangeable_check () =
  check_true "n=4 sample check" (B.rearrangeable_check (rng_of 300) ~n:4 ~samples:30)

let test_route_shape () =
  let n = 4 in
  let net = B.network n in
  let p = Perm.random (rng_of 301) 16 in
  List.iter
    (fun r ->
      check_int "route length 2n-1" ((2 * n) - 1) (Array.length r.C.cells);
      check_int "starts at input switch" (r.C.input / 2) r.C.cells.(0);
      check_int "ends at output switch" (r.C.output / 2) r.C.cells.((2 * n) - 2))
    (B.route_permutation (Some net) ~n p)

let test_wrong_size_rejected () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Benes.route_permutation: permutation size") (fun () ->
      ignore (B.route_permutation None ~n:3 (Perm.identity 4)))

let props =
  [ qcheck "rearrangeability on random permutations" ~count:30
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 5) (int_bound 100000)))
      (fun (n, seed) ->
        let net = B.network n in
        let p = Perm.random (rng_of seed) (1 lsl n) in
        let routes = B.route_permutation (Some net) ~n p in
        C.link_disjoint net routes);
    qcheck "routes always touch both outer stages correctly" ~count:20
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 4) (int_bound 100000)))
      (fun (n, seed) ->
        let net = B.network n in
        let p = Perm.random (rng_of seed) (1 lsl n) in
        List.for_all
          (fun r -> C.route_is_valid net r && r.C.output = Perm.apply p r.C.input)
          (B.route_permutation (Some net) ~n p))
  ]

let suite =
  [ quick "structure" test_structure;
    quick "recursion levels" test_levels_structure;
    quick "looping colours split both mates" test_looping_colours;
    quick "identity routes" test_identity_routes;
    quick "reversal permutation" test_reversal_permutation;
    quick "all permutations at n=2" test_all_permutations_n2;
    quick "rearrangeable sample check" test_rearrangeable_check;
    quick "route shape" test_route_shape;
    quick "wrong size rejected" test_wrong_size_rejected
  ]
  @ props
