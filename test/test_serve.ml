(* The mineq_serve layer: wire protocol round trips, snapshot
   durability (checksums, version gates, torn writes), service
   semantics against the underlying library verdicts, and the daemon
   end to end over a real Unix socket — including the overload and
   deadline error paths. *)

open Helpers
module Serve = Mineq_serve
module Proto = Serve.Proto
module Snapshot = Serve.Snapshot
module Service = Serve.Service
module Server = Serve.Server
module Memo = Mineq_engine.Memo

(* proto --------------------------------------------------------------- *)

let rec json_equal a b =
  match (a, b) with
  | Proto.Null, Proto.Null -> true
  | Proto.Bool x, Proto.Bool y -> x = y
  | Proto.Int x, Proto.Int y -> x = y
  | Proto.Float x, Proto.Float y -> Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x)
  | Proto.Str x, Proto.Str y -> String.equal x y
  | Proto.Arr x, Proto.Arr y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Proto.Obj x, Proto.Obj y ->
      List.length x = List.length y
      && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && json_equal v v') x y
  | _ -> false

let roundtrips v =
  match Proto.json_of_string (Proto.json_to_string v) with
  | Ok v' -> json_equal v v'
  | Error _ -> false

let test_json_roundtrip () =
  let v =
    Proto.Obj
      [ ("op", Proto.Str "equiv");
        ("id", Proto.Int 7);
        ("nested", Proto.Arr [ Proto.Null; Proto.Bool false; Proto.Float 2.5 ]);
        ("text", Proto.Str "line\nbreak \"quoted\" tab\t backslash \\ unicode \xc3\xa9");
        ("empty_obj", Proto.Obj []);
        ("empty_arr", Proto.Arr []);
        ("neg", Proto.Int (-42))
      ]
  in
  check_true "nested object round-trips" (roundtrips v)

let test_json_parse () =
  let ok s v =
    match Proto.json_of_string s with
    | Ok v' -> check_true (Printf.sprintf "parse %S" s) (json_equal v v')
    | Error m -> Alcotest.failf "parse %S: %s" s m
  in
  ok "null" Proto.Null;
  ok " [ 1 , -2.5e1 , true ] " (Proto.Arr [ Proto.Int 1; Proto.Float (-25.0); Proto.Bool true ]);
  ok {|"a\nbA\\"|} (Proto.Str "a\nbA\\");
  ok {|{"k": {"kk": []}}|} (Proto.Obj [ ("k", Proto.Obj [ ("kk", Proto.Arr []) ]) ]);
  List.iter
    (fun s ->
      check_true
        (Printf.sprintf "reject %S" s)
        (match Proto.json_of_string s with Error _ -> true | Ok _ -> false))
    [ ""; "{"; "[1,"; "tru"; "{\"k\":}"; "\"unterminated"; "1 2"; "{'k':1}" ]

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Proto.Null;
        map (fun b -> Proto.Bool b) bool;
        map (fun i -> Proto.Int i) (int_range (-1000000) 1000000);
        map (fun f -> Proto.Float f) (float_range (-1e6) 1e6);
        map (fun s -> Proto.Str s) (string_size ~gen:printable (int_bound 12))
      ]
  in
  let rec tree depth =
    if depth = 0 then scalar
    else
      frequency
        [ (3, scalar);
          (1, map (fun l -> Proto.Arr l) (list_size (int_bound 4) (tree (depth - 1))));
          ( 1,
            map
              (fun kvs -> Proto.Obj kvs)
              (list_size (int_bound 4)
                 (pair (string_size ~gen:printable (int_bound 6)) (tree (depth - 1)))) )
        ]
  in
  QCheck.make ~print:Proto.json_to_string (tree 3)

let proto_props =
  [ qcheck "printer and parser are inverse" ~count:200 json_gen roundtrips ]

let test_frames () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload = String.init 300 (fun i -> Char.chr (33 + (i mod 90))) in
  Proto.write_frame a payload;
  Proto.write_frame a "";
  (match Proto.read_frame b with
  | Ok got -> check_true "frame payload intact" (String.equal got payload)
  | Error _ -> Alcotest.fail "first frame did not arrive");
  (match Proto.read_frame b with
  | Ok got -> check_true "empty frame allowed" (String.equal got "")
  | Error _ -> Alcotest.fail "empty frame did not arrive");
  Proto.write_frame a (String.make 100 'x');
  (match Proto.read_frame ~max_frame:10 b with
  | Error (Proto.Oversized n) -> check_int "oversized reports declared length" 100 n
  | Ok _ | Error Proto.Closed -> Alcotest.fail "oversized frame was accepted");
  Unix.close a;
  (* [a]'s unread oversized bytes then EOF: whatever remains cannot
     form a full frame. *)
  Unix.close b

let test_request_codec () =
  let r : Proto.request =
    { id = Proto.Int 3; op = "equiv"; network = Some "omega"; spec = None; n = 5;
      method_ = Some "isomorphism"; deadline_ms = Some 120.0
    }
  in
  match Proto.request_of_json (Proto.request_to_json r) with
  | Ok r' ->
      check_true "request codec round-trips" (r = r')
  | Error m -> Alcotest.failf "request codec: %s" m

let test_request_n_bounds () =
  let req n =
    Proto.Obj
      [ ("op", Proto.Str "equiv"); ("network", Proto.Str "omega"); ("n", Proto.Int n) ]
  in
  let rejected n =
    match Proto.request_of_json (req n) with Error _ -> true | Ok _ -> false
  in
  check_true "n below 2 is rejected" (rejected 1);
  check_true "n above the limit is rejected" (rejected (Proto.n_limit + 1));
  check_true "n at the limit is accepted" (not (rejected Proto.n_limit));
  check_true "n = 2 is accepted" (not (rejected 2));
  (* Ops that ignore n still parse without one. *)
  match Proto.request_of_json (Proto.Obj [ ("op", Proto.Str "stats") ]) with
  | Ok r -> check_int "absent n defaults in range" 4 r.Proto.n
  | Error m -> Alcotest.failf "stats without n: %s" m

let proto_suite =
  [ quick "json round trip" test_json_roundtrip;
    quick "json parse cases" test_json_parse;
    quick "frame round trip and oversize" test_frames;
    quick "request codec" test_request_codec;
    quick "request n bounds" test_request_n_bounds
  ]
  @ proto_props

(* snapshot ------------------------------------------------------------ *)

let request ?(id = Proto.Null) ?network ?spec ?(n = 4) ?method_ ?deadline_ms op :
    Proto.request =
  { id; op; network; spec; n; method_; deadline_ms }

(* A service warmed with a few verdicts of every kind, so snapshots
   exercise all three caches. *)
let warmed_service () =
  let s = Service.create () in
  List.iter
    (fun (op, network) -> ignore (Service.handle s (request op ~network)))
    [ ("equiv", "omega"); ("equiv", "flip"); ("banyan", "baseline");
      ("lint", "random:5"); ("blocking", "omega")
    ];
  s

let temp_snapshot () = Filename.temp_file "mineq_test" ".snap"

let test_snapshot_roundtrip () =
  let s = warmed_service () in
  let payload = Service.to_payload s in
  check_true "warmed caches are non-empty" (Snapshot.entry_count payload > 0);
  let path = temp_snapshot () in
  Snapshot.save ~path payload;
  (match Snapshot.load ~path with
  | Ok p ->
      check_int "entry count preserved" (Snapshot.entry_count payload)
        (Snapshot.entry_count p);
      let fresh = Service.create () in
      check_int "fresh service adopts every entry" (Snapshot.entry_count payload)
        (Service.adopt fresh p);
      (* The hottest query must now be a pure cache hit. *)
      let resp = Service.handle fresh (request "equiv" ~network:"omega") in
      check_true "adopted verdict answers" (Proto.response_ok resp);
      check_true "equivalent field preserved"
        (json_equal (Proto.member "equivalent" resp) (Proto.Bool true))
  | Error e -> Alcotest.failf "load: %s" (Snapshot.error_to_string e));
  Sys.remove path

let mangle path f =
  let ic = open_in_bin path in
  let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  let s = f s in
  let oc = open_out_bin path in
  output_bytes oc s;
  close_out oc

let test_snapshot_rejections () =
  let payload = Service.to_payload (warmed_service ()) in
  let path = temp_snapshot () in
  let expect name want =
    match (Snapshot.load ~path, want) with
    | Error got, expected when got = expected -> check_true name true
    | got, _ ->
        Alcotest.failf "%s: got %s" name
          (match got with
          | Ok _ -> "Ok"
          | Error e -> Snapshot.error_to_string e)
  in
  (* Corrupted payload byte: checksum must catch it. *)
  Snapshot.save ~path payload;
  mangle path (fun s ->
      let i = Bytes.length s - 1 in
      Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 1));
      s);
  expect "flipped payload bit is Bad_checksum" Snapshot.Bad_checksum;
  (* Bumped version header: rejected before unmarshal. *)
  Snapshot.save ~path ~version:(Snapshot.version + 1) payload;
  expect "future version is Stale_version"
    (Snapshot.Stale_version (Snapshot.version + 1));
  (* Truncation below the declared payload length. *)
  Snapshot.save ~path payload;
  mangle path (fun s -> Bytes.sub s 0 (Bytes.length s - 7));
  expect "short file is Truncated" Snapshot.Truncated;
  (* Wrong magic: not a snapshot at all. *)
  Snapshot.save ~path payload;
  mangle path (fun s ->
      Bytes.set s 0 'X';
      s);
  expect "wrong magic is Bad_magic" Snapshot.Bad_magic;
  Sys.remove path;
  expect "no file is Missing" Snapshot.Missing

let test_snapshot_torn_write () =
  let s = warmed_service () in
  let first = Service.to_payload s in
  let path = temp_snapshot () in
  Snapshot.save ~path first;
  (* Grow the cache, then die mid-way through the next save: the
     completed snapshot must survive untouched. *)
  ignore (Service.handle s (request "equiv" ~network:"pipid:9"));
  let second = Service.to_payload s in
  check_true "second payload is larger"
    (Snapshot.entry_count second > Snapshot.entry_count first);
  (match Snapshot.save ~path ~crash_after:20 second with
  | () -> Alcotest.fail "crash_after did not raise"
  | exception Snapshot.Injected_crash -> ());
  (match Snapshot.load ~path with
  | Ok p ->
      check_int "previous snapshot intact after torn write"
        (Snapshot.entry_count first) (Snapshot.entry_count p)
  | Error e -> Alcotest.failf "load after torn write: %s" (Snapshot.error_to_string e));
  Sys.remove path;
  if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp")

let test_snapshot_permissions () =
  let payload = Service.to_payload (warmed_service ()) in
  let path = temp_snapshot () in
  Snapshot.save ~path payload;
  (* Marshal data is trusted once the checksum matches, so nobody
     else may write (or read) the file. *)
  check_int "snapshot file is private (0o600)" 0o600
    ((Unix.stat path).Unix.st_perm land 0o777);
  Sys.remove path

let snapshot_suite =
  [ quick "round trip through disk" test_snapshot_roundtrip;
    quick "typed rejection of bad files" test_snapshot_rejections;
    quick "torn write keeps the last snapshot" test_snapshot_torn_write;
    quick "saved file is private" test_snapshot_permissions
  ]

(* service ------------------------------------------------------------- *)

let code resp = Option.value (Proto.error_code resp) ~default:"-"

let test_service_verdicts () =
  let s = Service.create () in
  let omega = Mineq.Classical.network Mineq.Classical.Omega ~n:4 in
  let direct = Mineq.Equivalence.by_characterization omega in
  let resp = Service.handle s (request "equiv" ~network:"omega" ~id:(Proto.Int 9)) in
  check_true "equiv ok" (Proto.response_ok resp);
  check_true "id echoed" (json_equal (Proto.member "id" resp) (Proto.Int 9));
  check_true "equivalent matches the library"
    (json_equal (Proto.member "equivalent" resp)
       (Proto.Bool direct.Mineq.Equivalence.equivalent));
  check_true "banyan matches the library"
    (json_equal (Proto.member "banyan" resp) (Proto.Bool direct.Mineq.Equivalence.banyan));
  let resp = Service.handle s (request "banyan" ~network:"omega") in
  check_true "banyan op agrees"
    (json_equal (Proto.member "banyan" resp) (Proto.Bool direct.Mineq.Equivalence.banyan));
  let report = Mineq_analysis.Lint.run omega in
  let resp = Service.handle s (request "lint" ~network:"omega") in
  check_true "lint errors match"
    (json_equal (Proto.member "errors" resp)
       (Proto.Int (Mineq_analysis.Lint.errors report)));
  check_true "lint warnings match"
    (json_equal (Proto.member "warnings" resp)
       (Proto.Int (Mineq_analysis.Lint.warnings report)));
  let resp = Service.handle s (request "blocking" ~network:"omega") in
  check_true "omega has a destination-tag router"
    (json_equal (Proto.member "delta" resp) (Proto.Bool true));
  check_true "blocking lists traffic classes"
    (match Proto.member "classes" resp with Proto.Arr (_ :: _) -> true | _ -> false)

let test_service_warm_hits () =
  let s = Service.create () in
  ignore (Service.handle s (request "equiv" ~network:"omega"));
  ignore (Service.handle s (request "equiv" ~network:"omega"));
  (* Fingerprint keying: a different member of the same class also
     hits the single cached entry. *)
  ignore (Service.handle s (request "equiv" ~network:"flip"));
  let stats = Service.handle s (request "stats") in
  let equiv = Proto.member "equiv" (Proto.member "caches" stats) in
  check_true "repeat and relabelled probes hit"
    (json_equal (Proto.member "hits" equiv) (Proto.Int 2));
  check_true "one stored entry for the class"
    (json_equal (Proto.member "size" equiv) (Proto.Int 1));
  check_true "keying is advertised"
    (json_equal (Proto.member "keying" equiv) (Proto.Str "fingerprint"))

let test_service_errors () =
  let s = Service.create () in
  check_true "unknown op is MINEQ-S002"
    (String.equal (code (Service.handle s (request "frobnicate"))) "MINEQ-S002");
  check_true "unknown network is MINEQ-S003"
    (String.equal (code (Service.handle s (request "equiv" ~network:"nonesuch"))) "MINEQ-S003");
  check_true "seedless random is MINEQ-S003"
    (String.equal (code (Service.handle s (request "equiv" ~network:"random:x"))) "MINEQ-S003");
  check_true "missing network is MINEQ-S003"
    (String.equal (code (Service.handle s (request "equiv"))) "MINEQ-S003");
  check_true "bad inline spec is MINEQ-S003"
    (String.equal (code (Service.handle s (request "equiv" ~spec:"not a spec"))) "MINEQ-S003");
  check_true "unknown method is MINEQ-S003"
    (String.equal
       (code (Service.handle s (request "equiv" ~network:"omega" ~method_:"oracle")))
       "MINEQ-S003")

let test_service_inline_spec () =
  let s = Service.create () in
  let text = Mineq.Spec_io.to_string (Mineq.Classical.network Mineq.Classical.Omega ~n:3) in
  let resp = Service.handle s (request "equiv" ~spec:text) in
  check_true "inline spec evaluates" (Proto.response_ok resp);
  check_true "inline omega is equivalent"
    (json_equal (Proto.member "equivalent" resp) (Proto.Bool true))

let test_service_internal_error () =
  let s = Service.create () in
  (* n = 1 bypasses the protocol bound (the record is built directly,
     as a future admission bug might): the classical constructors
     raise Invalid_argument, and the barrier must turn that into a
     response instead of letting it cross the pool. *)
  let resp = Service.handle s (request "banyan" ~network:"omega" ~n:1) in
  check_true "kernel exception becomes MINEQ-S007" (code resp = "MINEQ-S007");
  check_true "internal error is not ok" (not (Proto.response_ok resp));
  let resp = Service.handle s (request "banyan" ~network:"omega") in
  check_true "service keeps answering afterwards" (Proto.response_ok resp)

let service_suite =
  [ quick "verdicts match the library" test_service_verdicts;
    quick "warm hits across the iso class" test_service_warm_hits;
    quick "typed request errors" test_service_errors;
    quick "inline spec text" test_service_inline_spec;
    quick "exception barrier" test_service_internal_error
  ]

(* server -------------------------------------------------------------- *)

let temp_socket () =
  let path = Filename.temp_file "mineq_test" ".sock" in
  Sys.remove path;
  path

let with_server ?(configure = fun c -> c) f =
  let path = temp_socket () in
  let config =
    configure
      { (Server.default_config ~socket_path:path) with jobs = 1; handle_signals = false }
  in
  let service = Service.create () in
  let thread = Thread.create (fun () -> Server.run config service) () in
  let result =
    match Server.connect ~retries:100 ~path () with
    | Error m -> Alcotest.failf "connect: %s" m
    | Ok fd -> Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () -> f path fd)
  in
  (* A shutdown frame on a fresh connection stops the loop even if the
     test's own connection died mid-scenario. *)
  (match Server.connect ~retries:10 ~path () with
  | Ok fd ->
      ignore (Server.call fd (Proto.Obj [ ("op", Proto.Str "shutdown") ]));
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | Error _ -> ());
  Thread.join thread;
  result

let call_exn fd v =
  match Server.call fd v with Ok resp -> resp | Error m -> Alcotest.failf "call: %s" m

let req_json ?deadline_ms op network =
  Proto.request_to_json (request op ~network ?deadline_ms)

let test_server_session () =
  with_server (fun _path fd ->
      let pong = call_exn fd (Proto.Obj [ ("op", Proto.Str "ping") ]) in
      check_true "ping pongs" (json_equal (Proto.member "pong" pong) (Proto.Bool true));
      let v1 = call_exn fd (req_json "equiv" "omega") in
      check_true "equiv over the wire" (Proto.response_ok v1);
      let v2 = call_exn fd (req_json "equiv" "omega") in
      check_true "verdicts agree" (json_equal v1 v2);
      let stats = call_exn fd (Proto.Obj [ ("op", Proto.Str "stats") ]) in
      let equiv = Proto.member "equiv" (Proto.member "caches" stats) in
      check_true "second query was a warm hit"
        (json_equal (Proto.member "hits" equiv) (Proto.Int 1));
      (* Pipelining: several frames before any read, answered in order. *)
      Proto.write_frame fd (Proto.json_to_string (req_json "banyan" "flip"));
      Proto.write_frame fd (Proto.json_to_string (req_json "lint" "baseline"));
      (match (Proto.read_frame fd, Proto.read_frame fd) with
      | Ok a, Ok b ->
          let op v =
            match Proto.json_of_string v with
            | Ok j -> Proto.to_string_opt (Proto.member "op" j)
            | Error _ -> None
          in
          check_true "pipelined responses in order"
            (op a = Some "banyan" && op b = Some "lint")
      | _ -> Alcotest.fail "pipelined frames lost"))

let test_server_malformed () =
  with_server (fun _path fd ->
      Proto.write_frame fd "{\"op\": ";
      (match Proto.read_frame fd with
      | Ok resp -> (
          match Proto.json_of_string resp with
          | Ok v -> check_true "malformed JSON is MINEQ-S001" (code v = "MINEQ-S001")
          | Error m -> Alcotest.failf "unparseable error response: %s" m)
      | Error _ -> Alcotest.fail "no response to the malformed frame");
      (* A syntactically valid frame that is not a request object. *)
      Proto.write_frame fd "[1,2,3]";
      match Proto.read_frame fd with
      | Ok resp -> (
          match Proto.json_of_string resp with
          | Ok v -> check_true "non-object request is MINEQ-S001" (code v = "MINEQ-S001")
          | Error m -> Alcotest.failf "unparseable error response: %s" m)
      | Error _ -> Alcotest.fail "no response to the non-object frame")

let test_server_oversized () =
  with_server
    ~configure:(fun c -> { c with max_frame = 64 })
    (fun _path fd ->
      Proto.write_frame fd (String.make 200 ' ');
      (match Proto.read_frame fd with
      | Ok resp -> (
          match Proto.json_of_string resp with
          | Ok v -> check_true "oversized frame is MINEQ-S006" (code v = "MINEQ-S006")
          | Error m -> Alcotest.failf "unparseable error response: %s" m)
      | Error _ -> Alcotest.fail "no response to the oversized frame");
      (* The stream is unframeable, so the server hangs up after the
         error. *)
      match Proto.read_frame fd with
      | Error Proto.Closed -> check_true "connection closed after S006" true
      | Ok _ | Error (Proto.Oversized _) -> Alcotest.fail "connection survived S006")

let test_server_deadline () =
  with_server (fun _path fd ->
      let resp = call_exn fd (req_json ~deadline_ms:0.0 "equiv" "omega") in
      check_true "zero deadline is MINEQ-S004" (code resp = "MINEQ-S004"))

let test_server_shed () =
  with_server
    ~configure:(fun c -> { c with queue_cap = 0 })
    (fun _path fd ->
      let resp = call_exn fd (req_json "equiv" "omega") in
      check_true "full queue sheds with MINEQ-S005" (code resp = "MINEQ-S005");
      (* Shutdown bypasses the queue, so the daemon stays stoppable
         even while shedding everything — with_server's final shutdown
         below exercises exactly that. *)
      let resp = call_exn fd (Proto.Obj [ ("op", Proto.Str "ping") ]) in
      check_true "ping is shed too" (code resp = "MINEQ-S005"))

let test_server_snapshot_restart () =
  let snap = Filename.temp_file "mineq_test" ".snap" in
  Sys.remove snap;
  let configure (c : Server.config) =
    { c with snapshot_path = Some snap; snapshot_every_s = 3600.0 }
  in
  (* First life: answer queries, then shut down (which saves). *)
  with_server ~configure (fun _path fd ->
      ignore (call_exn fd (req_json "equiv" "omega"));
      ignore (call_exn fd (req_json "lint" "baseline")));
  check_true "shutdown wrote a snapshot" (Sys.file_exists snap);
  (* Second life: boots warm and answers the same query from cache. *)
  with_server ~configure (fun _path fd ->
      let stats = call_exn fd (Proto.Obj [ ("op", Proto.Str "stats") ]) in
      check_true "snapshot note reports the load"
        (match Proto.to_string_opt (Proto.member "snapshot" stats) with
        | Some note ->
            String.length note >= 6 && String.equal (String.sub note 0 6) "loaded"
        | None -> false);
      ignore (call_exn fd (req_json "equiv" "omega"));
      let stats = call_exn fd (Proto.Obj [ ("op", Proto.Str "stats") ]) in
      let equiv = Proto.member "equiv" (Proto.member "caches" stats) in
      check_true "first query after restart is a warm hit"
        (json_equal (Proto.member "hits" equiv) (Proto.Int 1)));
  Sys.remove snap

let test_server_bad_n () =
  with_server (fun _path fd ->
      (* Before the n bound and the service's exception barrier, this
         request crashed the daemon outright (Classical.thetas
         requires n >= 2). *)
      Proto.write_frame fd {|{"op":"banyan","network":"omega","n":1}|};
      (match Proto.read_frame fd with
      | Ok resp -> (
          match Proto.json_of_string resp with
          | Ok v -> check_true "out-of-range n is MINEQ-S001" (code v = "MINEQ-S001")
          | Error m -> Alcotest.failf "unparseable error response: %s" m)
      | Error _ -> Alcotest.fail "no response to the bad-n request");
      let pong = call_exn fd (Proto.Obj [ ("op", Proto.Str "ping") ]) in
      check_true "daemon survives the bad-n request"
        (json_equal (Proto.member "pong" pong) (Proto.Bool true)))

let test_server_slow_reader () =
  with_server
    ~configure:(fun c -> { c with max_out_buf = 4096; queue_cap = 8 })
    (fun path fd ->
      (* [fd] floods requests without ever reading a response.  Once
         the kernel buffer back to it fills, responses park in the
         per-connection buffer until the 4 KiB cap sheds the
         connection — the event loop must never block in a write. *)
      let ping = Proto.json_to_string (Proto.Obj [ ("op", Proto.Str "ping") ]) in
      (try
         for _ = 1 to 20_000 do
           Proto.write_frame fd ping
         done
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      (* A well-behaved client on a fresh connection is still served. *)
      match Server.connect ~retries:10 ~path () with
      | Error m -> Alcotest.failf "connect during the flood: %s" m
      | Ok fd2 ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
            (fun () ->
              let pong = call_exn fd2 (Proto.Obj [ ("op", Proto.Str "ping") ]) in
              check_true "daemon serves other clients past a slow reader"
                (json_equal (Proto.member "pong" pong) (Proto.Bool true))))

let test_server_conn_cap () =
  with_server
    ~configure:(fun c -> { c with max_conns = 2 })
    (fun path _fd ->
      (* The harness connection occupies slot 1. *)
      let fd2 =
        match Server.connect ~retries:10 ~path () with
        | Ok fd -> fd
        | Error m -> Alcotest.failf "second connect: %s" m
      in
      let fd3 =
        match Server.connect ~path () with
        | Ok fd -> fd
        | Error m -> Alcotest.failf "third connect: %s" m
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ fd2; fd3 ])
        (fun () ->
          (* At the cap the daemon stops accepting: the third client's
             request waits in the kernel backlog, unanswered. *)
          Proto.write_frame fd3 (Proto.json_to_string (Proto.Obj [ ("op", Proto.Str "ping") ]));
          (match Unix.select [ fd3 ] [] [] 0.5 with
          | [], _, _ -> check_true "no response while at the connection cap" true
          | _ -> Alcotest.fail "served past max_conns");
          (* Freeing a slot lets the backlogged client in. *)
          Unix.close fd2;
          match Proto.read_frame fd3 with
          | Ok resp -> (
              match Proto.json_of_string resp with
              | Ok v ->
                  check_true "backlogged client served once a slot frees"
                    (json_equal (Proto.member "pong" v) (Proto.Bool true))
              | Error m -> Alcotest.failf "bad response after the cap lifted: %s" m)
          | Error _ -> Alcotest.fail "backlogged client never served"))

let server_suite =
  [ quick "scripted session" test_server_session;
    quick "malformed frames" test_server_malformed;
    quick "oversized frame closes" test_server_oversized;
    quick "expired deadline" test_server_deadline;
    quick "overload sheds" test_server_shed;
    quick "out-of-range n is typed, not fatal" test_server_bad_n;
    quick "slow reader cannot stall the loop" test_server_slow_reader;
    quick "connection cap pauses accepts" test_server_conn_cap;
    quick "snapshot warms a restart" test_server_snapshot_restart
  ]
