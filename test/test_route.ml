(* The lib/route subsystem: fabrics, switch-state plans, Benes looping,
   destination-tag setup, expansion planes and the blocking survey. *)

open Helpers
module F = Mineq_route.Fabric
module Plan = Mineq_route.Plan
module Loop = Mineq_route.Loop
module BF = Mineq_route.Bit_follow
module Planes = Mineq_route.Planes
module Survey = Mineq_route.Survey
module M = Mineq.Mi_digraph
module Perm = Mineq_perm.Perm

let shuffle rng img =
  let n = Array.length img in
  for i = 0 to n - 1 do
    img.(i) <- i
  done;
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = img.(i) in
    img.(i) <- img.(j);
    img.(j) <- tmp
  done

(* Fabric ------------------------------------------------------------- *)

let test_fabric_of_network () =
  let g = Mineq.Classical.network Omega ~n:4 in
  let fab = F.of_network g in
  check_int "stages" 4 fab.F.stages;
  check_int "radix" 2 fab.F.radix;
  check_int "per" 8 fab.F.per;
  check_int "terminals" 16 (F.terminals fab);
  check_int "cells" 32 (F.cell_count fab);
  for s = 0 to 2 do
    for x = 0 to 7 do
      let cf, cg = M.children g ~stage:(s + 1) x in
      check_int "child port 0" cf fab.F.child.(s).((2 * x) + 0);
      check_int "child port 1" cg fab.F.child.(s).((2 * x) + 1)
    done;
    (* each child cell's two in-ports are claimed exactly once *)
    let seen = Array.make 16 false in
    Array.iteri
      (fun a y ->
        let slot = fab.F.in_port.(s).(a) in
        let key = (2 * y) + slot in
        check_false "in-port used once" seen.(key);
        seen.(key) <- true)
      fab.F.child.(s);
    check_true "all in-ports covered" (Array.for_all Fun.id seen)
  done

let test_fabric_of_cascade () =
  let n = 3 in
  let net = Mineq.Benes.network n in
  let fab = F.of_cascade net in
  check_int "stages" 5 fab.F.stages;
  check_int "per" 4 fab.F.per;
  check_int "terminals" 8 (F.terminals fab);
  for s = 0 to 3 do
    let conn = Mineq.Cascade.connection net (s + 1) in
    for x = 0 to 3 do
      let cf, cg = Mineq.Connection.children conn x in
      check_int "cascade child 0" cf fab.F.child.(s).(2 * x);
      check_int "cascade child 1" cg fab.F.child.(s).((2 * x) + 1)
    done
  done

(* Plan --------------------------------------------------------------- *)

let test_plan_claims () =
  let fab = F.of_network (Mineq.Classical.network Baseline_net ~n:3) in
  let plan = Plan.create fab in
  check_int "empty" 0 (Plan.set_count plan);
  check_true "claim free"
    (Plan.claim plan ~stage:1 ~cell:2 ~in_port:0 ~out_port:1 = Plan.Claimed);
  check_int "one assignment" 1 (Plan.set_count plan);
  check_true "identical re-claim ok"
    (Plan.claim plan ~stage:1 ~cell:2 ~in_port:0 ~out_port:1 = Plan.Claimed);
  check_int "re-claim adds nothing" 1 (Plan.set_count plan);
  check_true "busy input port"
    (Plan.claim plan ~stage:1 ~cell:2 ~in_port:0 ~out_port:0 = Plan.In_busy);
  check_true "busy output link"
    (Plan.claim plan ~stage:1 ~cell:2 ~in_port:1 ~out_port:1 = Plan.Out_busy);
  check_int "port recorded" 1 (Plan.port_of plan ~stage:1 ~cell:2 ~in_port:0);
  check_int "other port unset" (-1) (Plan.port_of plan ~stage:1 ~cell:2 ~in_port:1);
  check_true "out taken" (Plan.out_taken plan ~stage:1 ~cell:2 ~out_port:1);
  check_false "out free" (Plan.out_taken plan ~stage:1 ~cell:2 ~out_port:0);
  Plan.release plan ~stage:1 ~cell:2 ~in_port:0;
  check_int "released" 0 (Plan.set_count plan);
  check_int "port cleared" (-1) (Plan.port_of plan ~stage:1 ~cell:2 ~in_port:0);
  check_false "out released" (Plan.out_taken plan ~stage:1 ~cell:2 ~out_port:1);
  check_true "claim after release"
    (Plan.claim plan ~stage:1 ~cell:2 ~in_port:1 ~out_port:0 = Plan.Claimed);
  Plan.reset plan;
  check_int "reset" 0 (Plan.set_count plan)

let test_plan_radix_cap () =
  (* radix 16 needs 2*16 + 16*4 = 96 state bits: over one word. *)
  let fab = F.of_rnetwork (Mineq_radix.Rbuild.baseline ~radix:16 2) in
  Alcotest.check_raises "radix too large"
    (Invalid_argument "Plan.create: radix too large for one-word cell states") (fun () ->
      ignore (Plan.create fab))

(* Loop --------------------------------------------------------------- *)

let realize_on_benes router plan img =
  Plan.reset plan;
  Loop.route router plan img;
  Plan.realizes plan img

let test_loop_identity_and_bitrev () =
  for n = 2 to 5 do
    let router = Loop.create n in
    let plan = Loop.plan router in
    let nt = Loop.terminals router in
    let identity = Array.init nt Fun.id in
    check_true "identity realizes" (realize_on_benes router plan identity);
    let bitrev =
      Array.init nt (fun i ->
          let r = ref 0 in
          for b = 0 to n - 1 do
            if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (n - 1 - b))
          done;
          !r)
    in
    check_true "bit reversal realizes" (realize_on_benes router plan bitrev);
    check_int "every cell fully used" (nt * ((2 * n) - 1)) (Plan.set_count plan)
  done

let test_loop_exhaustive_n2 () =
  let router = Loop.create 2 in
  let plan = Loop.plan router in
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun rest -> x :: rest) (perms (List.filter (( <> ) x) l)))
          l
  in
  let all = perms [ 0; 1; 2; 3 ] in
  check_int "4! permutations" 24 (List.length all);
  List.iter
    (fun img ->
      check_true "every permutation of 4 compiles"
        (realize_on_benes router plan (Array.of_list img)))
    all

let test_loop_rejects () =
  let router = Loop.create 3 in
  let plan = Loop.plan router in
  Alcotest.check_raises "size" (Invalid_argument "Loop.route: image size mismatch")
    (fun () -> Loop.route router plan [| 0; 1 |]);
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Loop.route: image is not a permutation") (fun () ->
      Loop.route router plan [| 0; 0; 1; 2; 3; 4; 5; 6 |]);
  Alcotest.check_raises "range" (Invalid_argument "Loop.route: image entry out of range")
    (fun () -> Loop.route router plan [| 0; 1; 2; 3; 4; 5; 6; 8 |]);
  Alcotest.check_raises "below idle marker"
    (Invalid_argument "Loop.route: image entry out of range") (fun () ->
      Loop.route router plan [| 0; 1; 2; 3; 4; 5; 6; -2 |]);
  Alcotest.check_raises "live entries must not repeat"
    (Invalid_argument "Loop.route: image is not a permutation") (fun () ->
      Loop.route router plan [| 3; -1; 3; -1; -1; -1; -1; -1 |]);
  let other = Loop.create 4 in
  Alcotest.check_raises "foreign plan"
    (Invalid_argument "Loop.route: plan built for another fabric") (fun () ->
      Loop.route other plan (Array.init 16 Fun.id));
  Alcotest.check_raises "n too small" (Invalid_argument "Loop.create: need n >= 2")
    (fun () -> ignore (Loop.create 1))

let test_loop_partial () =
  let router = Loop.create 3 in
  let plan = Loop.plan router in
  (* route half the inputs, idle the rest *)
  let img = [| 5; -1; 0; -1; 7; -1; 2; -1 |] in
  Loop.route router plan img;
  check_true "partial image realizes" (Plan.realizes plan img);
  check_int "idle input stays unrouted" (-1) (Plan.propagate plan 1);
  check_int "only live paths claim cells" (4 * 5) (Plan.set_count plan);
  let back = Array.make 8 0 in
  Plan.fill_image plan back;
  check_true "fill_image reads the partial map back" (back = img);
  Alcotest.check_raises "fill_image checks length"
    (Invalid_argument "Plan.fill_image: image size mismatch") (fun () ->
      Plan.fill_image plan (Array.make 4 0));
  (* a reset plan takes a total permutation again *)
  Plan.reset plan;
  let total = [| 1; 0; 3; 2; 5; 4; 7; 6 |] in
  Loop.route router plan total;
  check_true "total after partial" (Plan.realizes plan total);
  (* the empty image is the empty plan *)
  Plan.reset plan;
  Loop.route router plan (Array.make 8 (-1));
  check_int "empty image claims nothing" 0 (Plan.set_count plan)

(* Bit_follow --------------------------------------------------------- *)

let test_bit_follow_matches_routing () =
  let g = Mineq.Classical.network Omega ~n:4 in
  let bf = Option.get (BF.of_network g) in
  let plan = Plan.create (BF.fabric bf) in
  for input = 0 to 15 do
    for output = 0 to 15 do
      (match Mineq.Routing.route g ~input ~output with
      | None -> Alcotest.fail "omega routes every pair"
      | Some p ->
          (* the control table is exactly the path's port choices *)
          Array.iteri
            (fun s port -> check_int "control digit" port (BF.control bf ~stage:s ~output))
            p.Mineq.Routing.ports);
      Plan.reset plan;
      check_true "single path routes" (BF.try_route bf plan ~input ~output);
      check_int "path delivers" output (Plan.propagate plan input)
    done
  done

let test_bit_follow_matches_rrouting () =
  let g = Mineq_radix.Rbuild.omega ~radix:3 2 in
  let bf = Option.get (BF.of_rnetwork g) in
  let plan = Plan.create (BF.fabric bf) in
  for input = 0 to 8 do
    for output = 0 to 8 do
      (match Mineq_radix.Rrouting.route g ~input ~output with
      | None -> Alcotest.fail "radix omega routes every pair"
      | Some p ->
          Array.iteri
            (fun s port ->
              check_int "radix control digit" port (BF.control bf ~stage:s ~output))
            p.Mineq_radix.Rrouting.ports);
      Plan.reset plan;
      check_true "radix path routes" (BF.try_route bf plan ~input ~output);
      check_int "radix path delivers" output (Plan.propagate plan input)
    done
  done

let test_bit_follow_blocked () =
  (* On Baseline the tag spells the address, so inputs 0 and 1 both
     need out-port 0 of cell 0 at stage 1 for outputs 0 and 1. *)
  let g = Mineq.Classical.network Baseline_net ~n:4 in
  let bf = Option.get (BF.of_network g) in
  let plan = Plan.create (BF.fabric bf) in
  check_true "first path routes" (BF.try_route bf plan ~input:0 ~output:0);
  let count = Plan.set_count plan in
  check_int "one assignment per stage" 4 count;
  (match BF.route bf plan ~input:1 ~output:1 with
  | BF.Routed -> Alcotest.fail "expected a blocked path"
  | BF.Blocked b ->
      check_int "blocked input" 1 b.BF.input;
      check_int "blocked output" 1 b.BF.output;
      check_int "contested stage" 0 b.BF.stage;
      check_int "contested cell" 0 b.BF.cell;
      check_int "contested port" 0 b.BF.port);
  check_int "blocked attempt unwound" count (Plan.set_count plan);
  check_int "first path intact" 0 (Plan.propagate plan 0);
  check_false "try_route agrees" (BF.try_route bf plan ~input:1 ~output:1);
  check_int "still unwound" count (Plan.set_count plan)

let test_non_delta_rejected () =
  let rng = rng_of 80 in
  let rec find attempts =
    if attempts = 0 then None
    else
      match Mineq.Counterexample.random_buddy_banyan rng ~n:4 ~attempts:2000 with
      | None -> None
      | Some g -> if Mineq.Routing.is_delta g then find (attempts - 1) else Some g
  in
  match find 20 with
  | None -> Alcotest.fail "expected a non-delta Banyan instance"
  | Some g -> check_true "no router for non-delta" (Option.is_none (BF.of_network g))

(* Planes ------------------------------------------------------------- *)

let test_planes_recover_blocked_pair () =
  let g = Mineq.Classical.network Baseline_net ~n:4 in
  let bf = Option.get (BF.of_network g) in
  let ens = Planes.create bf ~planes:2 in
  check_int "first pair on plane 0" 0 (Planes.try_connect ens ~input:0 ~output:0);
  check_int "conflicting pair escapes to plane 1" 1
    (Planes.try_connect ens ~input:1 ~output:1);
  check_int "plane recorded" 1 (Planes.plane_of ens 1);
  check_int "delivery on plane 0" 0 (Plan.propagate (Planes.plan ens 0) 0);
  check_int "delivery on plane 1" 1 (Plan.propagate (Planes.plan ens 1) 1);
  check_int "idempotent reconnect" 1 (Planes.try_connect ens ~input:1 ~output:1);
  check_int "diverted input rejected" (-1) (Planes.try_connect ens ~input:1 ~output:2);
  Planes.reset ens;
  check_int "reset clears assignment" (-1) (Planes.plane_of ens 0)

let test_planes_monotone () =
  let g = Mineq.Classical.network Omega ~n:4 in
  let bf = Option.get (BF.of_network g) in
  let img = Array.make 16 0 in
  shuffle (rng_of 7) img;
  let routed k =
    let ens = Planes.create bf ~planes:k in
    Planes.connect_all ens img
  in
  let r1 = routed 1 in
  let r2 = routed 2 in
  let r16 = routed 16 in
  check_true "more planes, no fewer connections" (r1 <= r2 && r2 <= r16);
  check_int "enough planes connect everything" 16 r16

(* Survey ------------------------------------------------------------- *)

let test_survey_jobs_invariant () =
  let run jobs = Survey.run ~jobs ~seed:99 ~n:3 ~planes:2 ~trials:30 () in
  let rows = run 1 in
  check_int "all classical networks are delta" 6 (List.length rows);
  check_true "jobs=3 tallies bit-identical" (List.for_all2 ( = ) rows (run 3));
  List.iter
    (fun r ->
      check_int "pairs total" (30 * 8) r.Survey.pairs_total;
      check_true "fractions in range"
        (Survey.routed_fraction r >= 0.0
        && Survey.routed_fraction r <= 1.0
        && Survey.full_fraction r <= 1.0);
      check_true "full permutations need all pairs"
        (r.Survey.pairs_routed >= 8 * r.Survey.full))
    rows

(* Properties --------------------------------------------------------- *)

let props =
  [ qcheck "looping realizes every random permutation" ~count:40
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 6) (int_bound 100_000)))
      (fun (n, seed) ->
        let router = Loop.create n in
        let plan = Loop.plan router in
        let img = Array.make (Loop.terminals router) 0 in
        shuffle (rng_of seed) img;
        Plan.reset plan;
        Loop.route router plan img;
        Plan.realizes plan img);
    qcheck "looping realizes every random partial image" ~count:40
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 6) (int_bound 100_000)))
      (fun (n, seed) ->
        let rng = rng_of seed in
        let router = Loop.create n in
        let plan = Loop.plan router in
        let nt = Loop.terminals router in
        let perm = Array.make nt 0 in
        shuffle rng perm;
        (* keep each pair of the permutation with probability 1/2 *)
        let img = Array.map (fun o -> if Random.State.bool rng then o else -1) perm in
        Plan.reset plan;
        Loop.route router plan img;
        let stages = (2 * n) - 1 in
        let live = Array.fold_left (fun acc o -> if o >= 0 then acc + 1 else acc) 0 img in
        Plan.realizes plan img
        && Plan.set_count plan = live * stages
        && Array.for_all Fun.id
             (Array.init nt (fun i -> img.(i) >= 0 || Plan.propagate plan i = -1)));
    qcheck "looping agrees with Benes.route_permutation endpoints" ~count:20
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 4) (int_bound 100_000)))
      (fun (n, seed) ->
        let router = Loop.create n in
        let plan = Loop.plan router in
        let p = Perm.random (rng_of seed) (1 lsl n) in
        Plan.reset plan;
        Loop.route_perm router plan p;
        Array.for_all2 ( = ) (Plan.to_array plan) (Perm.to_array p));
    qcheck "enough planes realize any permutation on any classical network" ~count:25
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 5) (int_bound 100_000)))
      (fun (n, seed) ->
        let rng = rng_of seed in
        let nt = 1 lsl n in
        let img = Array.make nt 0 in
        shuffle rng img;
        List.for_all
          (fun (_name, g) ->
            let bf = Option.get (BF.of_network g) in
            let ens = Planes.create bf ~planes:nt in
            Planes.connect_all ens img = nt
            && Array.for_all Fun.id
                 (Array.init nt (fun i ->
                      Plan.propagate (Planes.plan ens (Planes.plane_of ens i)) i = img.(i))))
          (all_classical ~n));
    qcheck "greedy plane assignment is deterministic" ~count:20
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 5) (int_bound 100_000)))
      (fun (n, seed) ->
        (* first-fit has no randomness: two fresh ensembles fed the
           same permutation agree on every plane choice *)
        let rng = rng_of seed in
        let nt = 1 lsl n in
        let img = Array.make nt 0 in
        shuffle rng img;
        let g = Mineq.Classical.network Omega ~n in
        let bf = Option.get (BF.of_network g) in
        let a = Planes.create bf ~planes:4 in
        let b = Planes.create bf ~planes:4 in
        let ra = Planes.connect_all a img in
        let rb = Planes.connect_all b img in
        ra = rb
        && Array.for_all Fun.id
             (Array.init nt (fun i -> Planes.plane_of a i = Planes.plane_of b i)))
  ]

let suite =
  [ quick "fabric from a packed network" test_fabric_of_network;
    quick "fabric from the Benes cascade" test_fabric_of_cascade;
    quick "plan claim/release semantics" test_plan_claims;
    quick "plan rejects wide radix" test_plan_radix_cap;
    quick "looping: identity and bit reversal" test_loop_identity_and_bitrev;
    quick "looping: all permutations at n=2" test_loop_exhaustive_n2;
    quick "looping: bad inputs rejected" test_loop_rejects;
    quick "looping: partial images route" test_loop_partial;
    quick "bit_follow matches Routing.route" test_bit_follow_matches_routing;
    quick "bit_follow matches Rrouting.route" test_bit_follow_matches_rrouting;
    quick "bit_follow reports the contested link" test_bit_follow_blocked;
    quick "non-delta networks have no router" test_non_delta_rejected;
    quick "planes recover a blocked pair" test_planes_recover_blocked_pair;
    quick "planes are monotone in k" test_planes_monotone;
    quick "survey is jobs-invariant" test_survey_jobs_invariant
  ]
  @ props
