open Helpers
module Circuit = Mineq_sim.Circuit
module Perm = Mineq_perm.Perm

let omega n = Mineq.Classical.network Omega ~n

let test_identity_inadmissible () =
  (* Structural fact of the straight-wired model: co-located inputs
     to co-located outputs always collide. *)
  List.iter
    (fun (name, g) ->
      check_false (name ^ " identity inadmissible") (Circuit.identity_is_admissible g))
    (all_classical ~n:4)

let test_schedule_covers_all_pairs () =
  let g = omega 4 in
  let p = Perm.random (rng_of 140) 16 in
  let pairs = List.init 16 (fun i -> (i, Perm.apply p i)) in
  let s = Circuit.greedy_schedule g pairs in
  check_int "rounds counted" (List.length s.rounds) s.round_count;
  let scheduled = List.concat s.rounds in
  check_int "all pairs placed" 16 (List.length scheduled);
  Alcotest.(check (list (pair int int)))
    "exactly the input pairs"
    (List.sort compare pairs)
    (List.sort compare scheduled)

let test_rounds_are_admissible () =
  let g = omega 4 in
  let p = Perm.random (rng_of 141) 16 in
  let pairs = List.init 16 (fun i -> (i, Perm.apply p i)) in
  let s = Circuit.greedy_schedule g pairs in
  List.iter
    (fun round -> check_true "round is conflict-free" (Mineq.Routing.is_admissible g round))
    s.rounds

let test_rounds_bounds () =
  let g = omega 4 in
  let p = Perm.random (rng_of 142) 16 in
  let r = Circuit.rounds_needed g p in
  check_true "at least one round" (r >= 1);
  check_true "at most N rounds" (r <= 16)

let test_average_rounds_reasonable () =
  let avg = Circuit.average_rounds (rng_of 143) (omega 4) ~samples:30 in
  (* Random permutations on a 16-terminal Omega need a handful of
     passes; the greedy schedule lands between 2 and 6 on average. *)
  check_true "average in plausible band" (avg >= 1.5 && avg <= 6.0)

let test_size_validation () =
  Alcotest.check_raises "wrong permutation size"
    (Invalid_argument "Circuit.rounds_needed: permutation size") (fun () ->
      ignore (Circuit.rounds_needed (omega 3) (Perm.identity 4)))

let props =
  [ qcheck "greedy never needs more rounds than pairs" ~count:15
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let g = omega 3 in
        let p = Perm.random (rng_of seed) 8 in
        let r = Circuit.rounds_needed g p in
        r >= 1 && r <= 8);
    qcheck "equivalent networks need statistically similar rounds" ~count:5
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        (* Not a per-permutation invariant (labelling matters for a
           specific permutation), but averages over many random
           permutations must be close. *)
        let a = Circuit.average_rounds (rng_of seed) (omega 4) ~samples:40 in
        let b =
          Circuit.average_rounds (rng_of (seed + 1)) (Mineq.Baseline.network 4) ~samples:40
        in
        Float.abs (a -. b) < 1.0)
  ]

let suite =
  [ quick "identity inadmissible (model property)" test_identity_inadmissible;
    quick "schedule covers all pairs" test_schedule_covers_all_pairs;
    quick "rounds are admissible" test_rounds_are_admissible;
    quick "round bounds" test_rounds_bounds;
    quick "average rounds plausible" test_average_rounds_reasonable;
    quick "size validation" test_size_validation
  ]
  @ props
