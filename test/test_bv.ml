open Helpers
module Bv = Mineq_bitvec.Bv

let test_zero_and_units () =
  check_int "zero is 0" 0 Bv.zero;
  check_int "unit 0" 1 (Bv.unit 0);
  check_int "unit 3" 8 (Bv.unit 3);
  check_int "units count" 5 (List.length (Bv.units ~width:5));
  List.iteri (fun i u -> check_int "unit order" (1 lsl i) u) (Bv.units ~width:6)

let test_validity () =
  check_true "0 valid at width 0" (Bv.is_valid ~width:0 0);
  check_false "1 invalid at width 0" (Bv.is_valid ~width:0 1);
  check_true "7 valid at width 3" (Bv.is_valid ~width:3 7);
  check_false "8 invalid at width 3" (Bv.is_valid ~width:3 8);
  check_false "negative invalid" (Bv.is_valid ~width:3 (-1));
  check_false "too-large width invalid" (Bv.is_valid ~width:(Bv.max_width + 1) 0)

let test_universe_size () =
  check_int "2^0" 1 (Bv.universe_size ~width:0);
  check_int "2^10" 1024 (Bv.universe_size ~width:10);
  Alcotest.check_raises "negative width rejected"
    (Invalid_argument "Bv.universe_size: width out of range") (fun () ->
      ignore (Bv.universe_size ~width:(-1)))

let test_bits () =
  check_true "bit 0 of 5" (Bv.bit 5 0);
  check_false "bit 1 of 5" (Bv.bit 5 1);
  check_true "bit 2 of 5" (Bv.bit 5 2);
  check_int "set bit" 7 (Bv.set_bit 5 1 true);
  check_int "clear bit" 4 (Bv.set_bit 5 0 false);
  check_int "set already-set bit" 5 (Bv.set_bit 5 0 true)

let popcount_naive x =
  let rec count acc x = if x = 0 then acc else count (acc + (x land 1)) (x lsr 1) in
  count 0 x

let test_popcount_parity () =
  check_int "popcount 0" 0 (Bv.popcount 0);
  check_int "popcount 255" 8 (Bv.popcount 255);
  check_int "popcount 5" 2 (Bv.popcount 5);
  check_int "popcount max_int" (Sys.int_size - 1) (Bv.popcount max_int);
  check_int "popcount -1 (full word)" Sys.int_size (Bv.popcount (-1));
  check_int "popcount min_int (sign bit)" 1 (Bv.popcount min_int);
  check_false "parity 5" (Bv.parity 5);
  check_true "parity 7" (Bv.parity 7)

let test_dot () =
  check_false "dot orthogonal" (Bv.dot 0b101 0b010);
  check_true "dot overlapping once" (Bv.dot 0b101 0b100);
  check_false "dot overlapping twice" (Bv.dot 0b101 0b101)

let test_strings () =
  check_int "of_bit_string" 5 (Bv.of_bit_string "101");
  Alcotest.(check string) "to_bit_string" "0101" (Bv.to_bit_string ~width:4 5);
  Alcotest.(check string) "tuple string" "(1,0,1)" (Bv.to_tuple_string ~width:3 5);
  Alcotest.check_raises "bad char" (Invalid_argument "Bv.of_bit_string: expected '0' or '1'")
    (fun () -> ignore (Bv.of_bit_string "10x"))

let test_bits_lists () =
  Alcotest.(check (list bool)) "to_bits" [ true; false; true ] (Bv.to_bits ~width:3 5);
  check_int "of_bits" 5 (Bv.of_bits [ true; false; true ]);
  check_int "of_bits empty" 0 (Bv.of_bits [])

let test_fold_iter () =
  check_int "fold counts universe" 8 (Bv.fold_universe ~width:3 ~init:0 ~f:(fun a _ -> a + 1));
  check_int "fold sums universe" 28 (Bv.fold_universe ~width:3 ~init:0 ~f:( + ));
  let seen = ref [] in
  Bv.iter_universe ~width:2 ~f:(fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "iter order" [ 0; 1; 2; 3 ] (List.rev !seen)

let props =
  [ qcheck "xor is associative"
      QCheck.(triple (int_bound 1023) (int_bound 1023) (int_bound 1023))
      (fun (a, b, c) -> Bv.xor (Bv.xor a b) c = Bv.xor a (Bv.xor b c));
    qcheck "xor self-inverse" QCheck.(pair (int_bound 1023) (int_bound 1023)) (fun (a, b) ->
        Bv.xor (Bv.xor a b) b = a);
    qcheck "string round trip" QCheck.(int_bound 4095) (fun x ->
        Bv.of_bit_string (Bv.to_bit_string ~width:12 x) = x);
    qcheck "bits round trip" QCheck.(int_bound 4095) (fun x ->
        Bv.of_bits (Bv.to_bits ~width:12 x) = x);
    qcheck "dot is bilinear" QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
      (fun (a, b, c) ->
        Bv.dot (Bv.xor a b) c = (Bv.dot a c <> Bv.dot b c));
    qcheck "popcount after set_bit" QCheck.(pair (int_bound 255) (int_bound 7)) (fun (x, i) ->
        let set = Bv.popcount (Bv.set_bit x i true) in
        let cleared = Bv.popcount (Bv.set_bit x i false) in
        set - cleared = 1);
    (* Full-range agreement of the branchless SWAR popcount with the
       naive bit loop, negatives included (lsr exposes the whole
       63-bit pattern in both). *)
    qcheck "SWAR popcount = naive bit loop" QCheck.int (fun x ->
        Bv.popcount x = popcount_naive x)
  ]

let suite =
  [ quick "zero and units" test_zero_and_units;
    quick "validity" test_validity;
    quick "universe size" test_universe_size;
    quick "bit get/set" test_bits;
    quick "popcount and parity" test_popcount_parity;
    quick "gf2 inner product" test_dot;
    quick "string conversions" test_strings;
    quick "bit list conversions" test_bits_lists;
    quick "fold and iter" test_fold_iter
  ]
  @ props
