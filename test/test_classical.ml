open Helpers
module Cl = Mineq.Classical
module M = Mineq.Mi_digraph
module Perm = Mineq_perm.Perm

let test_inventory () =
  check_int "six networks" 6 (List.length Cl.all_kinds);
  check_int "all_networks matches" 6 (List.length (Cl.all_networks ~n:3));
  List.iter
    (fun k ->
      match Cl.of_name (Cl.name k) with
      | Some k' -> check_true "name round trip" (k = k')
      | None -> Alcotest.fail ("name not parsed: " ^ Cl.name k))
    Cl.all_kinds

let test_aliases () =
  check_true "cube alias" (Cl.of_name "cube" = Some Cl.Indirect_binary_cube);
  check_true "mdm alias" (Cl.of_name "MDM" = Some Cl.Modified_data_manipulator);
  check_true "case insensitive" (Cl.of_name "OMEGA" = Some Cl.Omega);
  check_true "unknown rejected" (Cl.of_name "banana" = None)

let test_theta_counts () =
  List.iter
    (fun k -> check_int (Cl.name k ^ " gap count") 4 (List.length (Cl.thetas k ~n:5)))
    Cl.all_kinds

let test_omega_is_uniform_shuffle () =
  let thetas = Cl.thetas Cl.Omega ~n:5 in
  let sigma = Mineq_perm.Pipid_family.perfect_shuffle ~width:5 in
  List.iter (fun t -> check_true "every gap is sigma" (Perm.equal t sigma)) thetas

let test_flip_is_reverse_omega () =
  for n = 3 to 6 do
    check_true
      (Printf.sprintf "flip = reverse of omega (n=%d)" n)
      (M.equal (Cl.network Cl.Flip ~n) (M.reverse (Cl.network Cl.Omega ~n)))
  done

let test_mdm_is_reverse_cube () =
  for n = 3 to 6 do
    check_true
      (Printf.sprintf "mdm = reverse of cube (n=%d)" n)
      (M.equal
         (Cl.network Cl.Modified_data_manipulator ~n)
         (M.reverse (Cl.network Cl.Indirect_binary_cube ~n)))
  done

let test_all_distinct_as_labelled_graphs () =
  (* The six constructions give six distinct labelled digraphs for
     n >= 3 (they are isomorphic but not equal). *)
  let nets = Cl.all_networks ~n:4 in
  List.iteri
    (fun i (name_i, gi) ->
      List.iteri
        (fun j (name_j, gj) ->
          if i < j then
            check_false (Printf.sprintf "%s <> %s" name_i name_j) (M.equal gi gj))
        nets)
    nets

let test_all_banyan_and_independent () =
  List.iter
    (fun (name, g) ->
      check_true (name ^ " Banyan") (Mineq.Banyan.is_banyan g);
      List.iter
        (fun c ->
          check_true (name ^ " stages independent") (Mineq.Connection.is_independent c))
        (M.connections g))
    (Cl.all_networks ~n:5)

let test_cube_stage_structure () =
  (* Gap i of the cube uses butterfly beta_i: the routing bit lands at
     node-label position i - 1... verified through the PIPID slot. *)
  let n = 5 in
  List.iteri
    (fun idx theta ->
      let gap = idx + 1 in
      match Mineq.Pipid_net.routing_bit_slot ~n theta with
      | None -> Alcotest.fail "cube stages are not degenerate"
      | Some slot -> check_int (Printf.sprintf "cube gap %d slot" gap) (gap - 1) slot)
    (Cl.thetas Cl.Indirect_binary_cube ~n)

let test_degree_invariants () =
  (* all_networks delivers, at every size, six n-stage networks whose
     every gap is a valid 2-in 2-out MI stage. *)
  List.iter
    (fun n ->
      let nets = Cl.all_networks ~n in
      check_int (Printf.sprintf "six networks at n=%d" n) 6 (List.length nets);
      List.iter
        (fun (name, g) ->
          check_int (name ^ " stages") n (M.stages g);
          check_int (name ^ " gap count") (n - 1) (List.length (M.connections g));
          check_true (name ^ " valid") (M.is_valid g);
          List.iter
            (fun c -> check_true (name ^ " in-degree 2") (Mineq.Connection.is_mi_stage c))
            (M.connections g))
        nets)
    [ 2; 3; 4; 6 ]

let test_spec_io_round_trip () =
  (* Every classical construction survives save/reload through the
     textual spec format, label for label. *)
  List.iter
    (fun (name, g) ->
      match Mineq.Spec_io.of_string (Mineq.Spec_io.to_string g) with
      | Ok h -> check_true (name ^ " spec round trip") (M.equal g h)
      | Error e -> Alcotest.fail (name ^ ": " ^ Mineq.Spec_io.error_to_string e))
    (Cl.all_networks ~n:5)

let test_n2_collapse () =
  (* At n = 2 all six networks coincide: one crossbar gap. *)
  let nets = Cl.all_networks ~n:2 in
  match nets with
  | (_, first) :: rest ->
      List.iter (fun (name, g) -> check_true ("n=2 " ^ name) (M.equal first g)) rest
  | [] -> Alcotest.fail "no networks"

let test_thetas_requires_n2 () =
  Alcotest.check_raises "n=1 rejected" (Invalid_argument "Classical.thetas: need n >= 2")
    (fun () -> ignore (Cl.thetas Cl.Omega ~n:1))

let props =
  let kind_gen =
    QCheck.make
      ~print:(fun (k, n) -> Printf.sprintf "%s n=%d" (Cl.name k) n)
      QCheck.Gen.(
        pair (oneofl Cl.all_kinds) (int_range 2 6))
  in
  [ qcheck "every classical network passes every decider" ~count:40 kind_gen (fun (k, n) ->
        let g = Cl.network k ~n in
        (Mineq.Equivalence.by_independence g).equivalent
        && (Mineq.Equivalence.by_characterization g).equivalent);
    qcheck "classical networks are delta" ~count:20 kind_gen (fun (k, n) ->
        Mineq.Routing.is_delta (Cl.network k ~n));
    qcheck "classical networks satisfy the buddy properties" ~count:20 kind_gen
      (fun (k, n) -> Mineq.Properties.has_buddy_property (Cl.network k ~n))
  ]

let suite =
  [ quick "inventory" test_inventory;
    quick "name aliases" test_aliases;
    quick "theta counts" test_theta_counts;
    quick "omega = shuffle stack" test_omega_is_uniform_shuffle;
    quick "flip reverses omega" test_flip_is_reverse_omega;
    quick "mdm reverses cube" test_mdm_is_reverse_cube;
    quick "six distinct labelled graphs" test_all_distinct_as_labelled_graphs;
    quick "degree invariants across sizes" test_degree_invariants;
    quick "spec round trip" test_spec_io_round_trip;
    quick "all Banyan with independent stages" test_all_banyan_and_independent;
    quick "cube stage slots" test_cube_stage_structure;
    quick "n=2 collapse" test_n2_collapse;
    quick "n bounds" test_thetas_requires_n2
  ]
  @ props
