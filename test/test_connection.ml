open Helpers
module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix
module C = Mineq.Connection

let shift_conn width =
  (* The Baseline-style first stage: f x = x >> 1, g sets the top bit. *)
  C.make ~width ~f:(fun x -> x lsr 1) ~g:(fun x -> (x lsr 1) lor (1 lsl (width - 1)))

let test_basic_accessors () =
  let c = shift_conn 3 in
  check_int "width" 3 (C.width c);
  check_int "half" 8 (C.half c);
  check_int "f" 0b010 (C.f c 0b101);
  check_int "g" 0b110 (C.g c 0b101);
  let cf, cg = C.children c 0b101 in
  check_int "children f" 0b010 cf;
  check_int "children g" 0b110 cg

let test_parents () =
  let c = shift_conn 3 in
  Alcotest.(check (list int)) "parents of 010" [ 0b100; 0b101 ] (List.sort compare (C.parents c 0b010));
  Alcotest.(check (list int)) "parents of 110" [ 0b100; 0b101 ] (List.sort compare (C.parents c 0b110))

let test_double_link_parents () =
  let c = C.make ~width:2 ~f:(fun x -> x) ~g:(fun x -> x) in
  Alcotest.(check (list int)) "double link parent listed twice" [ 1; 1 ] (C.parents c 1)

let test_swap_equal_graph () =
  let c = shift_conn 4 in
  check_true "swap preserves the graph" (C.equal_graph c (C.swap c));
  check_false "different graphs differ"
    (C.equal_graph c (C.make ~width:4 ~f:(fun x -> x) ~g:(fun x -> x lxor 1)))

let test_is_mi_stage () =
  check_true "shift stage valid" (C.is_mi_stage (shift_conn 4));
  check_true "identity double-link stage valid"
    (C.is_mi_stage (C.make ~width:3 ~f:(fun x -> x) ~g:(fun x -> x)));
  check_false "constant stage invalid"
    (C.is_mi_stage (C.make ~width:3 ~f:(fun _ -> 0) ~g:(fun _ -> 1)));
  let degs = C.in_degrees (C.make ~width:2 ~f:(fun _ -> 0) ~g:(fun _ -> 1)) in
  Alcotest.(check (array int)) "in degrees" [| 4; 4; 0; 0 |] degs

let test_witness_shift () =
  let c = shift_conn 3 in
  (* f (x xor alpha) = (x xor alpha) >> 1 = f x xor (alpha >> 1). *)
  (match C.witness c 0b100 with
  | Some beta -> check_int "beta of 100" 0b010 beta
  | None -> Alcotest.fail "shift stage is independent");
  (match C.witness c 0b001 with
  | Some beta -> check_int "beta of 001 is 0" 0 beta
  | None -> Alcotest.fail "alpha = 001 has witness 0")

let test_witness_rejects () =
  (* A valid MI stage that is not independent: swap two f-images of a
     linear stage.  width 3: f = id except 0 <-> 1 swapped. *)
  let f x = if x = 0 then 1 else if x = 1 then 0 else x in
  let c = C.make ~width:3 ~f ~g:(fun x -> x lxor 0b100) in
  check_true "still a valid stage" (C.is_mi_stage c);
  check_false "not independent" (C.is_independent c);
  check_false "definitional agrees" (C.is_independent_definitional c)

let test_zero_alpha_rejected () =
  Alcotest.check_raises "alpha = 0" (Invalid_argument "Connection.witness: alpha must be non-zero")
    (fun () -> ignore (C.witness (shift_conn 3) 0))

let test_independence_shift () =
  let c = shift_conn 5 in
  check_true "shift stage independent" (C.is_independent c);
  check_true "definitional agrees" (C.is_independent_definitional c)

let test_linear_form () =
  let c = shift_conn 4 in
  match C.linear_form c with
  | None -> Alcotest.fail "expected linear form"
  | Some (b, cf, cg) ->
      check_int "cf" 0 cf;
      check_int "cg" 0b1000 cg;
      Bv.iter_universe ~width:4 ~f:(fun x ->
          check_int "f matches B x xor cf" (C.f c x) (Gf2.apply b x lxor cf);
          check_int "g matches B x xor cg" (C.g c x) (Gf2.apply b x lxor cg))

let test_of_linear_round_trip () =
  let rng = rng_of 42 in
  for _ = 1 to 20 do
    let b = Gf2.random_invertible rng 4 in
    let cf = Random.State.int rng 16 and cg = Random.State.int rng 16 in
    let c = C.of_linear ~width:4 b ~cf ~cg in
    check_true "linear connection independent" (C.is_independent c);
    match C.linear_form c with
    | None -> Alcotest.fail "linear form must exist"
    | Some (b', cf', cg') ->
        check_true "matrix recovered" (Gf2.equal b b');
        check_int "cf recovered" cf cf';
        check_int "cg recovered" cg cg'
  done

let test_random_independent_valid () =
  let rng = rng_of 43 in
  for width = 1 to 6 do
    for _ = 1 to 10 do
      let c = C.random_independent rng ~width in
      check_true "independent" (C.is_independent c);
      check_true "valid MI stage" (C.is_mi_stage c)
    done
  done

let test_random_any_valid () =
  let rng = rng_of 44 in
  for width = 1 to 6 do
    for _ = 1 to 10 do
      check_true "valid MI stage" (C.is_mi_stage (C.random_any rng ~width))
    done
  done

let test_reverse_any () =
  let c = shift_conn 4 in
  let r = C.reverse_any c in
  check_true "reverse is a valid stage" (C.is_mi_stage r);
  (* Reversing the arcs: child y of x in c means x is child of y in r. *)
  Bv.iter_universe ~width:4 ~f:(fun x ->
      let cf, cg = C.children c x in
      List.iter
        (fun y -> check_true "arc reversed" (List.mem x (C.children r y |> fun (a, b) -> [ a; b ])))
        [ cf; cg ])

let test_reverse_independent_case1 () =
  (* Invertible B: both f and g are bijections. *)
  let rng = rng_of 45 in
  let b = Gf2.random_invertible rng 4 in
  let c = C.of_linear ~width:4 b ~cf:3 ~cg:9 in
  match C.reverse_independent c with
  | None -> Alcotest.fail "reverse must exist"
  | Some r ->
      check_true "reverse independent" (C.is_independent r);
      check_true "reverse valid" (C.is_mi_stage r);
      (* equal_graph compares arc multisets, so the f/g split chosen
         by either construction is immaterial. *)
      check_true "reverse has the reversed arcs" (C.equal_graph (C.reverse_any c) r)

let test_reverse_independent_case2 () =
  (* Corank-1 B built deterministically: project out the top bit then
     permute; cf xor cg outside the image. *)
  let width = 4 in
  let b =
    Gf2.create ~rows:width ~cols:width (fun i j -> i = j && i < width - 1)
  in
  let c = C.of_linear ~width b ~cf:0 ~cg:(1 lsl (width - 1)) in
  check_true "case-2 stage is valid" (C.is_mi_stage c);
  check_true "case-2 stage is independent" (C.is_independent c);
  match C.reverse_independent c with
  | None -> Alcotest.fail "Proposition 1 guarantees a reverse"
  | Some r ->
      check_true "reverse is independent (Proposition 1)" (C.is_independent r);
      check_true "reverse is a valid stage" (C.is_mi_stage r)

let test_reverse_independent_rejects_dependent () =
  let f x = if x = 0 then 1 else if x = 1 then 0 else x in
  let c = C.make ~width:3 ~f ~g:(fun x -> x lxor 0b100) in
  check_true "input not independent gives None" (Option.is_none (C.reverse_independent c))

let test_reverse_any_preserves_independence () =
  (* Pleasant surprise, kept as a regression: reverse_any's
     first-seen pairing IS independent whenever the input is.  Its
     min-of-the-two-parents choice clears the top bit in which the two
     parents differ — a linear projection — so the resulting split is
     affine; in the corank-1 case this coincides exactly with
     Proposition 1's subspace construction. *)
  let rng = rng_of 46 in
  for _ = 1 to 50 do
    let c = C.random_independent rng ~width:5 in
    check_true "reverse_any split is independent" (C.is_independent (C.reverse_any c))
  done

let test_independent_split () =
  (* An unlucky split of an independent graph: swap the f/g roles at
     a single point.  The graph is unchanged; the stored split is no
     longer affine. *)
  let rng = rng_of 47 in
  let found_unlucky = ref false in
  for _ = 1 to 30 do
    let c = C.random_independent rng ~width:4 in
    if C.f c 0 <> C.g c 0 then begin
      let swapped =
        C.make ~width:4
          ~f:(fun x -> if x = 0 then C.g c 0 else C.f c x)
          ~g:(fun x -> if x = 0 then C.f c 0 else C.g c x)
      in
      check_true "same graph after the point swap" (C.equal_graph c swapped);
      if not (C.is_independent swapped) then begin
        found_unlucky := true;
        match C.independent_split swapped with
        | None -> Alcotest.fail "the graph does admit an independent split"
        | Some r' ->
            check_true "re-split is independent" (C.is_independent r');
            check_true "same graph" (C.equal_graph swapped r')
      end
    end
  done;
  check_true "unlucky splits occur (otherwise this test is vacuous)" !found_unlucky;
  (* A graph with no independent decomposition at all. *)
  let f x = if x = 0 then 1 else if x = 1 then 0 else x in
  let dependent = C.make ~width:3 ~f ~g:(fun x -> x lxor 0b100) in
  check_true "dependent graph has no split" (Option.is_none (C.independent_split dependent));
  (* Splits of already-independent connections are found. *)
  let c = shift_conn 4 in
  (match C.independent_split c with
  | Some c' -> check_true "found and equal as a graph" (C.equal_graph c c')
  | None -> Alcotest.fail "independent connection must admit a split")

let test_to_arcs () =
  let c = shift_conn 2 in
  let arcs = C.to_arcs c in
  check_int "arc count" 8 (List.length arcs);
  check_true "contains f arc" (List.mem (0b11, 0b01) arcs);
  check_true "contains g arc" (List.mem (0b11, 0b11) arcs)

(* Properties ------------------------------------------------------- *)

let props =
  let gen =
    QCheck.make
      ~print:(fun (w, s) -> Printf.sprintf "w=%d seed=%d" w s)
      QCheck.Gen.(pair (int_range 1 6) (int_bound 100000))
  in
  [ qcheck "basis independence check equals definitional check" ~count:200 gen
      (fun (w, seed) ->
        let rng = rng_of seed in
        (* Mix independent and arbitrary stages to exercise both
           outcomes. *)
        let c =
          if Random.State.bool rng then C.random_independent rng ~width:w
          else C.random_any rng ~width:w
        in
        C.is_independent c = C.is_independent_definitional c);
    qcheck "witness map is linear (beta of xor = xor of betas)" gen (fun (w, seed) ->
        let rng = rng_of seed in
        let c = C.random_independent rng ~width:w in
        let a1 = 1 + Random.State.int rng ((1 lsl w) - 1) in
        let a2 = 1 + Random.State.int rng ((1 lsl w) - 1) in
        if a1 = a2 then true
        else
          match (C.witness c a1, C.witness c a2, C.witness c (a1 lxor a2)) with
          | Some b1, Some b2, Some b12 -> b12 = b1 lxor b2
          | _ -> false);
    qcheck "linear form reproduces the connection" gen (fun (w, seed) ->
        let c = C.random_independent (rng_of seed) ~width:w in
        match C.linear_form c with
        | None -> false
        | Some (b, cf, cg) ->
            Bv.fold_universe ~width:w ~init:true ~f:(fun acc x ->
                acc && C.f c x = Gf2.apply b x lxor cf && C.g c x = Gf2.apply b x lxor cg));
    qcheck "independent stage: B invertible or corank 1 with offset outside image" gen
      (fun (w, seed) ->
        let c = C.random_independent (rng_of seed) ~width:w in
        match C.linear_form c with
        | None -> false
        | Some (b, cf, cg) ->
            let rank = Gf2.rank b in
            if rank = w then true
            else
              rank = w - 1
              && Option.is_none (Gf2.solve b (cf lxor cg)));
    qcheck "reverse of reverse has the original arcs" gen (fun (w, seed) ->
        let c = C.random_any (rng_of seed) ~width:w in
        C.equal_graph c (C.reverse_any (C.reverse_any c)));
    qcheck "Proposition 1: reverse of independent is independent" ~count:200 gen
      (fun (w, seed) ->
        let c = C.random_independent (rng_of seed) ~width:w in
        match C.reverse_independent c with
        | None -> false
        | Some r ->
            C.is_independent r && C.is_mi_stage r
            (* r must carry exactly the reversed arcs: reversing it
               again gives back c's arc multiset. *)
            && C.equal_graph (C.reverse_any r) c);
    qcheck "independent_split succeeds on any reverse of an independent stage" ~count:100
      gen (fun (w, seed) ->
        (* Proposition 1 in split-insensitive form: the reversed graph
           always admits an independent decomposition. *)
        let c = C.random_independent (rng_of seed) ~width:w in
        match C.independent_split (C.reverse_any c) with
        | Some r -> C.is_independent r
        | None -> false);
    qcheck "independent_split is sound" ~count:100 gen (fun (w, seed) ->
        let rng = rng_of seed in
        let c =
          if Random.State.bool rng then C.random_independent rng ~width:w
          else C.random_any rng ~width:w
        in
        match C.independent_split c with
        | Some c' -> C.is_independent c' && C.equal_graph c c'
        | None -> not (C.is_independent c));
    qcheck "random_any stages are rarely independent at width >= 3" ~count:50
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        (* Statistical sanity: over 50 samples at width 4 we expect
           none independent; accept the run if fewer than 3 are. *)
        let rng = rng_of seed in
        let independent = ref 0 in
        for _ = 1 to 10 do
          if C.is_independent (C.random_any rng ~width:4) then incr independent
        done;
        !independent <= 1)
  ]

let suite =
  [ quick "accessors" test_basic_accessors;
    quick "parents" test_parents;
    quick "double link parents" test_double_link_parents;
    quick "swap and graph equality" test_swap_equal_graph;
    quick "MI stage validity" test_is_mi_stage;
    quick "witness on shift stage" test_witness_shift;
    quick "witness rejects dependent stage" test_witness_rejects;
    quick "zero alpha rejected" test_zero_alpha_rejected;
    quick "independence of shift stage" test_independence_shift;
    quick "linear form" test_linear_form;
    quick "of_linear round trip" test_of_linear_round_trip;
    quick "random independent stages valid" test_random_independent_valid;
    quick "random stages valid" test_random_any_valid;
    quick "reverse_any" test_reverse_any;
    quick "reverse_any preserves independence" test_reverse_any_preserves_independence;
    quick "independent_split (canonical re-split)" test_independent_split;
    quick "Proposition 1 case 1" test_reverse_independent_case1;
    quick "Proposition 1 case 2" test_reverse_independent_case2;
    quick "reverse_independent rejects dependent" test_reverse_independent_rejects_dependent;
    quick "to_arcs" test_to_arcs
  ]
  @ props
