open Helpers
module C = Mineq.Connection
module M = Mineq.Mi_digraph
module D = Mineq_graph.Digraph

let baseline n = Mineq.Baseline.network n

let test_shape () =
  let g = baseline 4 in
  check_int "stages" 4 (M.stages g);
  check_int "width" 3 (M.width g);
  check_int "nodes per stage" 8 (M.nodes_per_stage g);
  check_int "total nodes" 32 (M.total_nodes g);
  check_int "terminals" 16 (M.inputs g);
  check_true "valid" (M.is_valid g)

let test_create_validation () =
  let good = C.make ~width:1 ~f:(fun x -> x) ~g:(fun x -> x lxor 1) in
  check_int "2-stage network" 2 (M.stages (M.create [ good ]));
  Alcotest.check_raises "empty list"
    (Invalid_argument "Mi_digraph.create: empty connection list (use single_stage)") (fun () ->
      ignore (M.create []));
  let bad_width = C.make ~width:2 ~f:(fun x -> x) ~g:(fun x -> x lxor 1) in
  check_true "width mismatch rejected"
    (match M.create [ bad_width ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let invalid = C.make ~width:1 ~f:(fun _ -> 0) ~g:(fun _ -> 0) in
  check_true "degree violation rejected"
    (match M.create [ invalid ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_children_parents () =
  let g = baseline 3 in
  let cf, cg = M.children g ~stage:1 0b11 in
  check_int "first-stage f child" 0b01 cf;
  check_int "first-stage g child" 0b11 cg;
  Alcotest.(check (list int)) "parents" [ 0b10; 0b11 ]
    (List.sort compare (M.parents g ~stage:2 0b01));
  Alcotest.check_raises "children of last stage rejected"
    (Invalid_argument "Mi_digraph.children: bad stage") (fun () ->
      ignore (M.children g ~stage:3 0));
  Alcotest.check_raises "parents of first stage rejected"
    (Invalid_argument "Mi_digraph.parents: bad stage") (fun () ->
      ignore (M.parents g ~stage:1 0))

let test_node_ids () =
  let g = baseline 4 in
  check_int "node id" 11 (M.node_id g ~stage:2 3);
  let stage, label = M.node_of_id g 11 in
  check_int "round trip stage" 2 stage;
  check_int "round trip label" 3 label

let test_to_digraph () =
  let g = baseline 3 in
  let d = M.to_digraph g in
  check_int "digraph vertices" 12 (D.vertices d);
  check_int "digraph arcs" 16 (D.arc_count d);
  (* Every stage-2 node has in-degree 2 and out-degree 2. *)
  for x = 0 to 3 do
    let v = M.node_id g ~stage:2 x in
    check_int "mid in-degree" 2 (D.in_degree d v);
    check_int "mid out-degree" 2 (D.out_degree d v)
  done;
  for x = 0 to 3 do
    check_int "first stage in-degree 0" 0 (D.in_degree d (M.node_id g ~stage:1 x));
    check_int "last stage out-degree 0" 0 (D.out_degree d (M.node_id g ~stage:3 x))
  done

let test_subgraph () =
  let g = baseline 4 in
  let sub = M.subgraph g ~lo:2 ~hi:3 in
  check_int "window vertices" 16 (D.vertices sub);
  check_int "window arcs" 16 (D.arc_count sub);
  Alcotest.check_raises "bad range" (Invalid_argument "Mi_digraph.subgraph: bad stage range")
    (fun () -> ignore (M.subgraph g ~lo:3 ~hi:2))

let test_reverse () =
  let g = baseline 4 in
  let r = M.reverse g in
  check_int "same stages" 4 (M.stages r);
  check_true "valid" (M.is_valid r);
  check_true "double reverse equal" (M.equal g (M.reverse r));
  (* Arcs flipped: children of x at stage 1 of r = parents of x at
     stage 4 of g. *)
  for x = 0 to 7 do
    let cf, cg = M.children r ~stage:1 x in
    Alcotest.(check (list int)) "reverse adjacency"
      (List.sort compare (M.parents g ~stage:4 x))
      (List.sort compare [ cf; cg ])
  done

let test_equal () =
  check_true "baseline equal to itself" (M.equal (baseline 4) (baseline 4));
  check_false "baseline differs from omega"
    (M.equal (baseline 4) (Mineq.Classical.network Omega ~n:4));
  check_false "different sizes" (M.equal (baseline 3) (baseline 4))

let test_relabel () =
  let g = baseline 3 in
  (* Identity relabelling. *)
  check_true "identity relabel" (M.equal g (M.relabel g (fun ~stage:_ x -> x)));
  (* Swap two labels in stage 2 only: graph changes but stays valid. *)
  let swap ~stage x = if stage = 2 then (if x = 0 then 1 else if x = 1 then 0 else x) else x in
  let h = M.relabel g swap in
  check_true "relabelled valid" (M.is_valid h);
  check_false "relabelled differs" (M.equal g h);
  check_true "relabel twice restores" (M.equal g (M.relabel h swap));
  Alcotest.check_raises "non-bijection rejected"
    (Invalid_argument "Mi_digraph.relabel: not a bijection on a stage") (fun () ->
      ignore (M.relabel g (fun ~stage:_ _ -> 0)))

let test_relabel_preserves_isomorphism () =
  let g = baseline 3 in
  let rng = rng_of 9 in
  let h = Mineq.Counterexample.relabelled_equivalent rng g in
  check_true "relabelled is isomorphic"
    (Mineq_graph.Iso.are_isomorphic (M.to_digraph g) (M.to_digraph h))

let test_map_gaps () =
  let g = baseline 3 in
  let h = M.map_gaps g (fun _ c -> C.swap c) in
  check_true "swapping f/g preserves the graph" (M.equal g h)

let test_single_stage () =
  let s = M.single_stage ~width:0 in
  check_int "one stage" 1 (M.stages s);
  check_int "one node" 1 (M.nodes_per_stage s);
  check_int "two terminals" 2 (M.inputs s);
  check_true "valid" (M.is_valid s);
  Alcotest.(check (list pass)) "no connections" [] (M.connections s);
  check_int "wide single stage" 8 (M.nodes_per_stage (M.single_stage ~width:3));
  Alcotest.check_raises "negative width rejected"
    (Invalid_argument "Mi_digraph.single_stage: negative width") (fun () ->
      ignore (M.single_stage ~width:(-1)))

let props =
  [ qcheck "arc count is 2 (n-1) 2^(n-1)" n_and_seed (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        D.arc_count (M.to_digraph g) = 2 * (n - 1) * M.nodes_per_stage g);
    qcheck "reverse twice is the identity" n_and_seed (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        M.equal g (M.reverse (M.reverse g)));
    qcheck "subgraph of full window equals to_digraph" n_and_seed (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        D.equal (M.to_digraph g) (M.subgraph g ~lo:1 ~hi:n));
    qcheck "random relabelling preserves validity" n_and_seed (fun (n, seed) ->
        let rng = rng_of seed in
        let g = random_banyan_pipid rng ~n in
        M.is_valid (Mineq.Counterexample.relabelled_equivalent rng g))
  ]

let suite =
  [ quick "shape" test_shape;
    quick "create validation" test_create_validation;
    quick "children and parents" test_children_parents;
    quick "node ids" test_node_ids;
    quick "to_digraph" test_to_digraph;
    quick "subgraph windows" test_subgraph;
    quick "reverse" test_reverse;
    quick "equality" test_equal;
    quick "relabel" test_relabel;
    quick "relabel preserves isomorphism" test_relabel_preserves_isomorphism;
    quick "map_gaps swap" test_map_gaps;
    quick "single stage" test_single_stage
  ]
  @ props
