open Helpers
module M = Mineq.Mi_digraph
module P = Mineq.Packed
module C = Mineq.Connection
module Banyan = Mineq.Banyan
module Properties = Mineq.Properties

(* A random network that need not be Banyan (arbitrary valid MI
   stages), to exercise the kernels on violating inputs too. *)
let random_any_network rng ~n =
  M.create (List.init (n - 1) (fun _ -> C.random_any rng ~width:(n - 1)))

let test_shape_accessors () =
  let g = Mineq.Baseline.network 4 in
  let p = P.of_network g in
  check_int "stages" 4 (P.stages p);
  check_int "width" 3 (P.width p);
  check_int "nodes per stage" 8 (P.nodes_per_stage p);
  check_int "total nodes" 32 (P.total_nodes p);
  check_int "node id" (M.node_id g ~stage:3 5) (P.node_id p ~stage:3 5);
  let stage, label = P.node_of_id p 21 in
  check_int "node_of_id stage" 3 stage;
  check_int "node_of_id label" 5 label

let test_cache_identity () =
  (* Packing is lazy and cached on the network record: both accessors
     return the same physical tables. *)
  let g = Mineq.Classical.network Omega ~n:5 in
  check_true "cached" (P.of_network g == M.packed g)

let test_adjacency_round_trip () =
  let g = Mineq.Classical.network Omega ~n:5 in
  let p = P.of_network g in
  let per = P.nodes_per_stage p in
  for gap = 1 to 4 do
    for x = 0 to per - 1 do
      let cf, cg = M.children g ~stage:gap x in
      check_int "f child" cf (P.child_f p ~gap x);
      check_int "g child" cg (P.child_g p ~gap x)
    done;
    for y = 0 to per - 1 do
      Alcotest.(check (list int))
        "parents"
        (List.sort compare (M.parents g ~stage:(gap + 1) y))
        (List.sort compare [ P.parent_a p ~gap y; P.parent_b p ~gap y ])
    done
  done

let test_downstream_tables () =
  (* Every downstream entry names the right child cell, and the two
     input ports of every next-stage cell are each claimed by exactly
     one (source, out-port) link. *)
  let g = Mineq.Classical.network Flip ~n:5 in
  let p = P.of_network g in
  let per = P.nodes_per_stage p in
  let down = P.downstream p in
  check_int "one table per gap" (P.stages p - 1) (Array.length down);
  Array.iteri
    (fun k table ->
      let gap = k + 1 in
      let claimed = Array.make (2 * per) 0 in
      for x = 0 to per - 1 do
        List.iter
          (fun (port, child) ->
            let hop = table.((2 * x) + port) in
            let y = hop lsr 1 and in_port = hop land 1 in
            check_int "downstream cell" child y;
            claimed.((2 * y) + in_port) <- claimed.((2 * y) + in_port) + 1)
          [ (0, P.child_f p ~gap x); (1, P.child_g p ~gap x) ]
      done;
      Array.iteri (fun _ c -> check_int "input port claimed once" 1 c) claimed)
    down

let test_component_labels_numbering () =
  (* Components are numbered by minimal member in dense-id order:
     label c's first occurrence (scanning the window ascending) must
     come after that of label c - 1. *)
  let g = Mineq.Baseline.network 5 in
  let p = P.of_network g in
  let comp, count = P.component_labels p ~lo:2 ~hi:4 in
  check_int "count matches census" (P.component_count p ~lo:2 ~hi:4) count;
  let next = ref 0 in
  Array.iter
    (fun c ->
      check_true "labels in range" (c >= 0 && c < count);
      if c = !next then incr next else check_true "first occurrences ascend" (c < !next))
    comp;
  check_int "every label occurs" count !next

let test_scratch_reuse () =
  (* One scratch across every window of a network and across both
     kernels: results must match scratch-free queries. *)
  let g = Mineq.Classical.network Omega ~n:6 in
  let p = P.of_network g in
  let scratch = P.scratch p in
  let n = P.stages p in
  for lo = 1 to n do
    for hi = lo to n do
      check_int
        (Printf.sprintf "census %d..%d" lo hi)
        (P.component_count p ~lo ~hi)
        (P.component_count ~scratch p ~lo ~hi)
    done
  done;
  check_true "violation query agrees"
    (P.first_violation p = P.first_violation ~scratch p)

let test_first_violation_witness () =
  (* Two identical butterfly gaps: 2 paths 0 -> 0, and (0, 0, 2) is
     the row-major first violation. *)
  let beta = C.make ~width:2 ~f:(fun x -> x land 0b10) ~g:(fun x -> x lor 0b01) in
  let g = M.create [ beta; beta ] in
  (match P.first_violation (P.of_network g) with
  | Some (0, 0, 2) -> ()
  | Some (u, v, k) -> Alcotest.failf "wrong witness (%d, %d, %d)" u v k
  | None -> Alcotest.fail "violation expected");
  check_true "baseline has none"
    (P.first_violation (P.of_network (Mineq.Baseline.network 4)) = None)

let props =
  [ qcheck "census agrees with the subgraph-BFS and boxed-DSU pipelines" n_and_seed
      (fun (n, seed) ->
        let rng = rng_of seed in
        let g = random_any_network rng ~n in
        let lo = 1 + Random.State.int rng n in
        let hi = lo + Random.State.int rng (n - lo + 1) in
        let packed = Properties.component_count g ~lo ~hi in
        packed = Properties.component_count_subgraph g ~lo ~hi
        && packed = Properties.component_count_dsu g ~lo ~hi);
    qcheck "path-count DP agrees with the boxed-row DP" n_and_seed (fun (n, seed) ->
        let g = random_any_network (rng_of seed) ~n in
        Banyan.path_count_matrix g = Banyan.path_count_matrix_list g);
    qcheck "Banyan witness agrees with the list-era checker" n_and_seed (fun (n, seed) ->
        let g = random_any_network (rng_of seed) ~n in
        Banyan.check g = Banyan.check_list g);
    qcheck "packed enumeration = symbolic characterization (agreement gate)" n_and_seed
      (fun (n, seed) ->
        let rng = rng_of seed in
        let g =
          if Random.State.bool rng then random_banyan_pipid rng ~n
          else random_any_network rng ~n
        in
        Mineq.Equivalence.equivalent_enum g
        = (Mineq.Equivalence.by_characterization g).equivalent);
    qcheck "succ and pred tables are mutually consistent" n_and_seed (fun (n, seed) ->
        let g = random_any_network (rng_of seed) ~n in
        let p = P.of_network g in
        let per = P.nodes_per_stage p in
        let ok = ref true in
        for gap = 1 to n - 1 do
          for x = 0 to per - 1 do
            List.iter
              (fun child ->
                let a = P.parent_a p ~gap child and b = P.parent_b p ~gap child in
                if a <> x && b <> x then ok := false)
              [ P.child_f p ~gap x; P.child_g p ~gap x ]
          done
        done;
        !ok)
  ]

let suite =
  [ quick "shape accessors" test_shape_accessors;
    quick "pack cache identity" test_cache_identity;
    quick "adjacency round trip" test_adjacency_round_trip;
    quick "downstream routing tables" test_downstream_tables;
    quick "component label numbering" test_component_labels_numbering;
    quick "scratch reuse" test_scratch_reuse;
    quick "first violation witness" test_first_violation_witness
  ]
  @ props
