open Helpers
module B = Mineq.Baseline
module M = Mineq.Mi_digraph

let test_small_cases () =
  let g2 = B.network 2 in
  check_int "n=2 stages" 2 (M.stages g2);
  (* The 2-stage Baseline: node x of stage 1 connects to 0 and 1. *)
  let cf, cg = M.children g2 ~stage:1 0 in
  check_int "f child" 0 cf;
  check_int "g child" 1 cg;
  let cf, cg = M.children g2 ~stage:1 1 in
  check_int "f child of 1" 0 cf;
  check_int "g child of 1" 1 cg

let test_left_recursive_structure () =
  (* Stage-1 nodes 2i and 2i+1 both connect to node i of the two
     subnetworks (upper half = labels with top bit 0). *)
  for n = 3 to 6 do
    let g = B.network n in
    let per = M.nodes_per_stage g in
    let top = 1 lsl (n - 2) in
    for i = 0 to (per / 2) - 1 do
      let cf0, cg0 = M.children g ~stage:1 (2 * i) in
      let cf1, cg1 = M.children g ~stage:1 ((2 * i) + 1) in
      check_int "even node, upper subnetwork node i" i cf0;
      check_int "even node, lower subnetwork node i" (i + top) cg0;
      check_int "odd node, same upper child" i cf1;
      check_int "odd node, same lower child" (i + top) cg1
    done
  done

let test_matches_link_perm_definition () =
  for n = 2 to 7 do
    check_true
      (Printf.sprintf "recursive = sub-shuffle stack at n=%d" n)
      (M.equal (B.network n) (Mineq.Classical.network Baseline_net ~n))
  done

let test_stage_connection_closed_form () =
  for n = 2 to 6 do
    let g = B.network n in
    for i = 1 to n - 1 do
      check_true
        (Printf.sprintf "closed form stage %d/%d" i n)
        (Mineq.Connection.equal_graph (M.connection g i) (B.stage_connection ~n i))
    done
  done

let test_last_stage_is_straight_pairs () =
  let n = 5 in
  let g = B.network n in
  let per = M.nodes_per_stage g in
  for x = 0 to per - 1 do
    let cf, cg = M.children g ~stage:(n - 1) x in
    check_int "f clears bit 0" (x land lnot 1) cf;
    check_int "g sets bit 0" (x lor 1) cg
  done

let test_reverse_network () =
  for n = 2 to 5 do
    check_true "reverse = Mi_digraph.reverse" (M.equal (B.reverse n) (M.reverse (B.network n)))
  done

let test_is_baseline () =
  check_true "baseline recognized" (B.is_baseline (B.network 4));
  check_false "omega is not label-identical to baseline"
    (B.is_baseline (Mineq.Classical.network Omega ~n:4))

let test_stage_connection_bounds () =
  Alcotest.check_raises "stage 0 rejected"
    (Invalid_argument "Baseline.stage_connection: bad stage") (fun () ->
      ignore (B.stage_connection ~n:4 0));
  Alcotest.check_raises "stage n rejected"
    (Invalid_argument "Baseline.stage_connection: bad stage") (fun () ->
      ignore (B.stage_connection ~n:4 4))

let test_independence_of_baseline_stages () =
  for n = 2 to 7 do
    let g = B.network n in
    List.iter
      (fun c -> check_true "baseline stage independent" (Mineq.Connection.is_independent c))
      (M.connections g)
  done

let props =
  [ qcheck "baseline is its own mirror class: reverse is equivalent"
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 6))
      (fun n ->
        (Mineq.Equivalence.by_characterization (B.reverse n)).equivalent);
    qcheck "subnetworks of the baseline are baselines"
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 3 6))
      (fun n ->
        (* Drop stage 1 and restrict to the upper half: must equal the
           (n-1)-stage baseline. *)
        let g = B.network n in
        let top = 1 lsl (n - 2) in
        let sub_conns =
          List.map
            (fun gap ->
              let c = M.connection g gap in
              Mineq.Connection.make ~width:(n - 2)
                ~f:(fun x ->
                  let y = Mineq.Connection.f c x in
                  assert (y < top);
                  y)
                ~g:(fun x ->
                  let y = Mineq.Connection.g c x in
                  assert (y < top);
                  y))
            (List.init (n - 2) (fun i -> i + 2))
        in
        M.equal (M.create sub_conns) (B.network (n - 1)))
  ]

let suite =
  [ quick "small cases" test_small_cases;
    quick "left-recursive structure" test_left_recursive_structure;
    quick "matches Wu-Feng link permutations" test_matches_link_perm_definition;
    quick "closed-form stage connections" test_stage_connection_closed_form;
    quick "last stage pairs" test_last_stage_is_straight_pairs;
    quick "reverse network" test_reverse_network;
    quick "is_baseline" test_is_baseline;
    quick "stage bounds" test_stage_connection_bounds;
    quick "stage independence" test_independence_of_baseline_stages
  ]
  @ props
