open Helpers
module F = Mineq.Fingerprint
module C = Mineq.Census
module Cx = Mineq.Counterexample
module L = Mineq.Link_spec

let fp = F.of_network

let test_classical_one_fingerprint () =
  (* The six classical networks are pairwise isomorphic (the paper's
     point), so they must share one fingerprint at every n — and
     different n must not share it. *)
  let per_n =
    List.map
      (fun n ->
        let fps = List.map (fun (_, g) -> fp g) (all_classical ~n) in
        let first = List.hd fps in
        check_true
          (Printf.sprintf "classical inventory shares a fingerprint at n=%d" n)
          (List.for_all (F.equal first) fps);
        first)
      [ 2; 3; 4; 5; 6 ]
  in
  let rec distinct = function
    | [] -> true
    | x :: rest -> (not (List.exists (F.equal x) rest)) && distinct rest
  in
  check_true "fingerprints differ across n" (distinct per_n)

let test_discriminates () =
  (* Networks Iso_min refutes get different fingerprints in practice:
     the known counterexample families against the Baseline. *)
  let rng = rng_of 900 in
  let base = Mineq.Baseline.network 4 in
  match Cx.find_non_equivalent rng ~n:4 ~attempts:5000 ~require_buddy:true with
  | None -> Alcotest.fail "need a non-equivalent instance"
  | Some other ->
      check_false "non-equivalent banyan fingerprints apart" (F.equal (fp base) (fp other));
      check_true "matching verdict from the prefiltered decider"
        (not (Mineq.Equivalence.by_isomorphism other).Mineq.Equivalence.equivalent)

let test_scratch_reuse () =
  let g1 = Mineq.Classical.network Omega ~n:5 in
  let g2 = Mineq.Baseline.network 5 in
  let p1 = Mineq.Mi_digraph.packed g1 and p2 = Mineq.Mi_digraph.packed g2 in
  let scratch = F.scratch_for p1 in
  let a = F.of_packed ~scratch p1 in
  let b = F.of_packed ~scratch p2 in
  let a' = F.of_packed p1 and b' = F.of_packed p2 in
  check_true "scratch reuse does not change fingerprints" (F.equal a a' && F.equal b b');
  F.into scratch p2;
  check_true "into/result matches of_packed" (F.equal (F.result scratch) b');
  let p3 = Mineq.Mi_digraph.packed (Mineq.Classical.network Omega ~n:3) in
  Alcotest.check_raises "shape mismatch rejected"
    (Invalid_argument "Fingerprint.run: scratch was built for a different network shape")
    (fun () -> F.into scratch p3)

let test_hex_and_hash () =
  let a = fp (Mineq.Classical.network Omega ~n:4) in
  let b = fp (Mineq.Baseline.network 5) in
  check_int "hex is 32 chars" 32 (String.length (F.to_hex a));
  check_true "hash is non-negative" (F.hash a >= 0 && F.hash b >= 0);
  check_true "equal implies same hex/hash on self"
    (F.to_hex a = F.to_hex a && F.hash a = F.hash a);
  check_true "distinct fingerprints render distinct hex" (F.to_hex a <> F.to_hex b)

let test_colour_classes () =
  let g = Mineq.Classical.network Omega ~n:4 in
  let p = Mineq.Mi_digraph.packed g in
  let k = F.colour_classes p in
  (* Stages are always separated (seeded by stage index), so at least
     n classes; never more than the node count. *)
  check_true "colour classes within [stages, nodes]"
    (k >= 4 && k <= Mineq.Mi_digraph.total_nodes g)

let test_collision_corpus () =
  (* Deliberate near-miss corpus: small-n random-link networks are
     where WL fingerprints actually collide (distinct iso classes,
     one bucket).  The bucketed classify must still agree exactly
     with the pairwise baseline — the collision path falls back to
     Iso_min.  Scan seeds until a corpus with a real collision shows
     up, so the fallback is genuinely exercised. *)
  let rec corpus_with_collision seed =
    if seed > 40 then Alcotest.fail "no colliding corpus found in 40 seeds"
    else begin
      let rng = rng_of seed in
      let tagged = List.init 60 (fun i -> (L.random_network rng ~n:3, i)) in
      let buckets, classes = C.bucket_stats tagged in
      if classes > buckets then (tagged, classes - buckets) else corpus_with_collision (seed + 1)
    end
  in
  let tagged, collisions = corpus_with_collision 0 in
  check_true "corpus has a genuine fingerprint collision" (collisions > 0);
  let bucketed = C.classify tagged in
  let pairwise = C.classify_pairwise tagged in
  check_int "same class count through the collision path" (List.length pairwise)
    (List.length bucketed);
  List.iter2
    (fun (a : _ C.classified) (b : _ C.classified) ->
      check_true "same members in the same order" (a.C.members = b.C.members);
      check_true "representatives isomorphic"
        (Option.is_some (Mineq.Iso_min.find a.C.representative b.C.representative)))
    pairwise bucketed

let gen_kind_gen =
  QCheck.make
    ~print:(fun k -> k)
    QCheck.Gen.(oneofl [ "pipid"; "random"; "affine"; "banyan" ])

let network_of_kind rng ~n = function
  | "pipid" -> L.random_pipid_network rng ~n
  | "random" -> L.random_network rng ~n
  | "affine" ->
      Mineq.Mi_digraph.create
        (List.init (n - 1) (fun _ -> Mineq.Connection.random_independent rng ~width:(n - 1)))
  | _ -> ( match Cx.random_banyan rng ~n ~attempts:100 with Some g -> g | None -> L.random_pipid_network rng ~n)

let props =
  [ qcheck "soundness: isomorphic networks share a fingerprint (relabel)" ~count:60
      (QCheck.triple small_n_gen seed_gen gen_kind_gen)
      (fun (n, seed, kind) ->
        let n = max 2 n in
        let rng = rng_of seed in
        let g = network_of_kind rng ~n kind in
        let h = Cx.relabelled_equivalent rng g in
        F.equal (fp g) (fp h));
    qcheck "soundness: Iso_min-isomorphic pairs share a fingerprint" ~count:40
      (QCheck.pair seed_gen seed_gen)
      (fun (s1, s2) ->
        (* Independent draws from the small n=3 PIPID space collide
           into the same class often enough to exercise the
           isomorphic-pair direction without relabelling. *)
        let a = random_banyan_pipid (rng_of s1) ~n:3 in
        let b = random_banyan_pipid (rng_of s2) ~n:3 in
        match Mineq.Iso_min.find a b with
        | Some _ -> F.equal (fp a) (fp b)
        | None -> true);
    qcheck "fast negative: distinct fingerprints refute isomorphism" ~count:30
      (QCheck.pair seed_gen seed_gen)
      (fun (s1, s2) ->
        let a = L.random_network (rng_of s1) ~n:4 in
        let b = L.random_network (rng_of s2) ~n:4 in
        F.equal (fp a) (fp b) || Mineq.Iso_min.find a b = None);
    qcheck "classify agrees with classify_pairwise" ~count:15
      (QCheck.pair small_n_gen seed_gen)
      (fun (n, seed) ->
        let n = min 4 (max 2 n) in
        let rng = rng_of seed in
        let tagged =
          List.init 14 (fun i ->
              let g =
                if i mod 3 = 0 then L.random_pipid_network rng ~n else L.random_network rng ~n
              in
              (g, i))
        in
        let a = C.classify tagged and b = C.classify_pairwise tagged in
        List.length a = List.length b
        && List.for_all2 (fun (x : _ C.classified) y -> x.C.members = y.C.members) a b);
    qcheck "equivalence prefilter: by_isomorphism agrees with by_characterization" ~count:25
      (QCheck.pair seed_gen seed_gen)
      (fun (s1, s2) ->
        let n = 3 + (s2 mod 2) in
        let g = random_banyan_pipid (rng_of s1) ~n in
        let iso = (Mineq.Equivalence.by_isomorphism g).Mineq.Equivalence.equivalent in
        let chr = (Mineq.Equivalence.by_characterization g).Mineq.Equivalence.equivalent in
        iso = chr)
  ]

let suite =
  [ quick "classical inventory: one fingerprint per n" test_classical_one_fingerprint;
    quick "counterexamples fingerprint apart" test_discriminates;
    quick "scratch reuse and shape validation" test_scratch_reuse;
    quick "hex rendering and hashing" test_hex_and_hash;
    quick "colour class diagnostics" test_colour_classes;
    quick "collision corpus falls back to Iso_min" test_collision_corpus
  ]
  @ props
