open Helpers
module D = Mineq_graph.Digraph
module T = Mineq_graph.Traverse

let path_graph n = D.create ~vertices:n (List.init (n - 1) (fun i -> (i, i + 1)))

let test_bfs_directed () =
  let g = path_graph 4 in
  Alcotest.(check (array int)) "distances from 0" [| 0; 1; 2; 3 |] (T.bfs_distances g 0);
  Alcotest.(check (array int)) "unreachable marked" [| -1; -1; 0; 1 |] (T.bfs_distances g 2)

let test_bfs_undirected () =
  let g = path_graph 4 in
  Alcotest.(check (array int)) "undirected from middle" [| 2; 1; 0; 1 |]
    (T.bfs_undirected_distances g 2)

let test_components () =
  let g = D.create ~vertices:6 [ (0, 1); (1, 2); (4, 3) ] in
  let comp, count = T.connected_components g in
  check_int "three components" 3 count;
  check_int "0 and 2 together" comp.(0) comp.(2);
  check_int "3 and 4 together" comp.(3) comp.(4);
  check_true "5 isolated" (comp.(5) <> comp.(0) && comp.(5) <> comp.(3));
  check_int "component_count agrees" 3 (T.component_count g)

let test_component_members () =
  let g = D.create ~vertices:5 [ (0, 2); (3, 4) ] in
  let members = T.component_members g in
  check_int "component count" 3 (Array.length members);
  Alcotest.(check (list int)) "first component" [ 0; 2 ] members.(0);
  check_true "partition covers all"
    (List.sort compare (List.concat (Array.to_list members)) = [ 0; 1; 2; 3; 4 ])

let test_reachability () =
  let g = D.create ~vertices:4 [ (0, 1); (1, 2) ] in
  Alcotest.(check (array bool)) "reachable" [| true; true; true; false |] (T.reachable_from g 0);
  Alcotest.(check (array bool)) "only self" [| false; false; false; true |]
    (T.reachable_from g 3)

let test_topological () =
  let g = D.create ~vertices:4 [ (3, 1); (1, 0); (3, 0); (0, 2) ] in
  (match T.topological_order g with
  | None -> Alcotest.fail "acyclic graph has an order"
  | Some order ->
      let pos = Array.make 4 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      List.iter
        (fun (u, v) -> check_true "order respects arcs" (pos.(u) < pos.(v)))
        (D.arcs g));
  let cyclic = D.create ~vertices:3 [ (0, 1); (1, 2); (2, 0) ] in
  check_true "cycle detected" (Option.is_none (T.topological_order cyclic));
  check_false "is_acyclic on cycle" (T.is_acyclic cyclic);
  check_true "self loop is a cycle" (Option.is_none (T.topological_order (D.create ~vertices:1 [ (0, 0) ])))

let test_count_paths () =
  (* Two diamonds chained: 4 paths 0 -> 5. *)
  let g =
    D.create ~vertices:6 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 5); (4, 5) ]
  in
  check_int "path count through chained branches" 4 (T.count_paths g 0 5);
  check_int "single path" 1 (T.count_paths g 1 3);
  check_int "no path" 0 (T.count_paths g 5 0);
  check_int "trivial path to self" 1 (T.count_paths g 0 0)

let test_count_paths_parallel_arcs () =
  let g = D.create ~vertices:2 [ (0, 1); (0, 1) ] in
  check_int "parallel arcs are distinct paths" 2 (T.count_paths g 0 1)

let test_count_paths_matrix () =
  let g = D.create ~vertices:4 [ (0, 2); (1, 2); (2, 3) ] in
  let m = T.count_paths_matrix g ~sources:[ 0; 1 ] ~sinks:[ 2; 3 ] in
  Alcotest.(check (array (array int))) "matrix" [| [| 1; 1 |]; [| 1; 1 |] |] m;
  Alcotest.check_raises "cyclic rejected"
    (Invalid_argument "Traverse.count_paths_matrix: digraph has a cycle") (fun () ->
      ignore
        (T.count_paths_matrix
           (D.create ~vertices:2 [ (0, 1); (1, 0) ])
           ~sources:[ 0 ] ~sinks:[ 1 ]))

let props =
  let gen =
    QCheck.make
      ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
      QCheck.Gen.(pair (int_range 2 25) (int_bound 100000))
  in
  let random_dag (n, seed) =
    (* Arcs only from lower to higher ids: always acyclic. *)
    let rng = rng_of seed in
    let m = Random.State.int rng (2 * n) in
    D.create ~vertices:n
      (List.init m (fun _ ->
           let u = Random.State.int rng (n - 1) in
           let v = u + 1 + Random.State.int rng (n - u - 1) in
           (u, v)))
  in
  [ qcheck "random dag is acyclic" gen (fun p -> T.is_acyclic (random_dag p));
    qcheck "components cover all vertices" gen (fun p ->
        let g = random_dag p in
        let comp, count = T.connected_components g in
        Array.for_all (fun c -> c >= 0 && c < count) comp);
    qcheck "undirected bfs symmetric reachability" gen (fun (n, seed) ->
        let g = random_dag (n, seed) in
        let rng = rng_of (seed + 7) in
        let u = Random.State.int rng n and v = Random.State.int rng n in
        let du = T.bfs_undirected_distances g u in
        let dv = T.bfs_undirected_distances g v in
        du.(v) = dv.(u));
    qcheck "path counts match explicit DFS enumeration" gen (fun (n, seed) ->
        let g = random_dag (n, seed) in
        let rng = rng_of (seed + 13) in
        let u = Random.State.int rng n and v = Random.State.int rng n in
        let rec dfs x = if x = v then 1 else List.fold_left (fun a y -> a + dfs y) 0 (D.succ g x) in
        T.count_paths g u v = dfs u)
  ]

let suite =
  [ quick "directed bfs" test_bfs_directed;
    quick "undirected bfs" test_bfs_undirected;
    quick "connected components" test_components;
    quick "component members" test_component_members;
    quick "reachability" test_reachability;
    quick "topological order" test_topological;
    quick "count paths" test_count_paths;
    quick "parallel arcs count" test_count_paths_parallel_arcs;
    quick "path count matrix" test_count_paths_matrix
  ]
  @ props
