open Helpers
module F = Mineq.Faults
module C = Mineq.Cascade

let baseline_cascade n = C.of_mi_digraph (Mineq.Baseline.network n)

let test_banyan_zero_tolerance () =
  (* Any single link fault in a Banyan disconnects pairs. *)
  let c = baseline_cascade 3 in
  check_false "baseline not fault tolerant" (F.is_single_fault_tolerant c);
  let total_links = (C.stages c - 1) * C.cells_per_stage c * 2 in
  check_int "every link is critical" total_links (F.critical_fault_count c)

let test_benes_tolerance () =
  let benes = Mineq.Benes.network 3 in
  check_true "benes single-fault tolerant" (F.is_single_fault_tolerant benes);
  check_int "no critical links" 0 (F.critical_fault_count benes)

let test_link_impact_counts () =
  (* A stage-s link of an n-stage Banyan carries the paths of
     2^(s-1) sources to 2^(n-s-1) sinks. *)
  let n = 4 in
  let c = baseline_cascade n in
  let check_gap gap =
    let i = F.impact c [ F.Link { gap; cell = 0; port = 0 } ] in
    let expected = (1 lsl (gap - 1)) * (1 lsl (n - gap - 1)) in
    check_int (Printf.sprintf "gap %d disconnects 2^(s-1) * 2^(n-s-1)" gap) expected
      i.disconnected_pairs;
    check_int "no degradation in a banyan" 0 i.degraded_pairs
  in
  List.iter check_gap [ 1; 2; 3 ]

let test_cell_fault () =
  let c = baseline_cascade 3 in
  (* Killing a stage-1 cell severs its whole reachability cone: the
     source itself reaches nothing. *)
  let i = F.impact c [ F.Cell { stage = 1; cell = 0 } ] in
  check_int "source loses all sinks" (C.cells_per_stage c) i.disconnected_pairs;
  (* Killing a middle cell hurts several sources. *)
  let i = F.impact c [ F.Cell { stage = 2; cell = 0 } ] in
  check_true "middle cell hurts more than one pair" (i.disconnected_pairs > 1)

let test_benes_degradation () =
  (* In the Benes network a link fault degrades (removes paths) but
     never disconnects. *)
  let benes = Mineq.Benes.network 3 in
  let i = F.impact benes [ F.Link { gap = 3; cell = 0; port = 0 } ] in
  check_int "nothing disconnected" 0 i.disconnected_pairs;
  check_true "some pairs degraded" (i.degraded_pairs > 0)

let test_multiple_faults () =
  let benes = Mineq.Benes.network 2 in
  (* B(2) has path diversity 2: killing both stage-1 out-links of a
     cell disconnects it. *)
  let faults = [ F.Link { gap = 1; cell = 0; port = 0 }; F.Link { gap = 1; cell = 0; port = 1 } ] in
  let i = F.impact benes faults in
  check_true "double fault disconnects" (i.disconnected_pairs > 0)

let test_validation () =
  let c = baseline_cascade 3 in
  Alcotest.check_raises "bad gap" (Invalid_argument "Faults: bad gap") (fun () ->
      ignore (F.impact c [ F.Link { gap = 3; cell = 0; port = 0 } ]));
  Alcotest.check_raises "bad port" (Invalid_argument "Faults: bad port") (fun () ->
      ignore (F.impact c [ F.Link { gap = 1; cell = 0; port = 2 } ]));
  Alcotest.check_raises "bad stage" (Invalid_argument "Faults: bad stage") (fun () ->
      ignore (F.impact c [ F.Cell { stage = 0; cell = 0 } ]))

let test_single_link_report_shape () =
  let c = baseline_cascade 3 in
  let report = F.single_link_impacts c in
  check_int "one entry per link" ((C.stages c - 1) * C.cells_per_stage c * 2)
    (List.length report)

let test_survival_probability () =
  let rng = rng_of 850 in
  let c = baseline_cascade 3 in
  Alcotest.(check (float 1e-9)) "no faults always survive" 1.0
    (F.survival_probability rng c ~faults:0 ~samples:20);
  Alcotest.(check (float 1e-9)) "banyan never survives one fault" 0.0
    (F.survival_probability rng c ~faults:1 ~samples:50);
  let benes = Mineq.Benes.network 3 in
  Alcotest.(check (float 1e-9)) "benes always survives one fault" 1.0
    (F.survival_probability rng benes ~faults:1 ~samples:50);
  let p2 = F.survival_probability rng benes ~faults:2 ~samples:100 in
  let p6 = F.survival_probability rng benes ~faults:6 ~samples:100 in
  check_true "survival decreases with fault count" (p2 >= p6);
  Alcotest.check_raises "too many faults"
    (Invalid_argument "Faults.survival_probability: fault count") (fun () ->
      ignore (F.survival_probability rng c ~faults:1000 ~samples:1))

let test_route_around () =
  let benes = Mineq.Benes.network 3 in
  let fault = F.Link { gap = 2; cell = 0; port = 0 } in
  (* Every pair still routes around a single fault in the Benes. *)
  for input = 0 to 7 do
    for output = 0 to 7 do
      match F.route_around benes [ fault ] ~input ~output with
      | None -> Alcotest.fail "benes routes around any single fault"
      | Some r ->
          check_true "route valid on the cascade" (C.route_is_valid benes r);
          (* The dead link is the f-link of cell 0 at gap 2: a route
             through cell 0 at stage 2 must continue to the g-child
             (distinct from the f-child in the Benes). *)
          let cf, cg = Mineq.Connection.children (C.connection benes 2) 0 in
          check_true "distinct children" (cf <> cg);
          check_true "avoids the fault" (not (r.C.cells.(1) = 0 && r.C.cells.(2) = cf))
    done
  done;
  (* A Banyan pair severed by its unique path's fault gets None. *)
  let c = baseline_cascade 3 in
  (match Mineq.Routing.route (Mineq.Baseline.network 3) ~input:0 ~output:7 with
  | None -> Alcotest.fail "path exists"
  | Some p ->
      let gap = 1 in
      let fault = F.Link { gap; cell = p.Mineq.Routing.cells.(0); port = p.Mineq.Routing.ports.(0) } in
      check_true "severed pair unroutable"
        (Option.is_none (F.route_around c [ fault ] ~input:0 ~output:7));
      check_true "other pairs still route"
        (Option.is_some (F.route_around c [ fault ] ~input:4 ~output:0)))

let props =
  [ qcheck "every single link fault in a Banyan disconnects exactly its cone" ~count:20
      n_and_seed (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        let c = C.of_mi_digraph g in
        List.for_all
          (fun (f, i) ->
            match f with
            | F.Link { gap; _ } ->
                i.F.disconnected_pairs = (1 lsl (gap - 1)) * (1 lsl (n - gap - 1))
            | F.Cell _ -> true)
          (F.single_link_impacts c));
    qcheck "no fault means no impact" ~count:10 n_and_seed (fun (n, seed) ->
        let c = C.of_mi_digraph (random_banyan_pipid (rng_of seed) ~n) in
        let i = F.impact c [] in
        i.F.disconnected_pairs = 0 && i.F.degraded_pairs = 0)
  ]

let suite =
  [ quick "banyan zero tolerance" test_banyan_zero_tolerance;
    quick "benes tolerance" test_benes_tolerance;
    quick "link impact cone sizes" test_link_impact_counts;
    quick "cell faults" test_cell_fault;
    quick "benes degradation" test_benes_degradation;
    quick "multiple faults" test_multiple_faults;
    quick "survival probability" test_survival_probability;
    quick "route around faults" test_route_around;
    quick "validation" test_validation;
    quick "report shape" test_single_link_report_shape
  ]
  @ props
