(* The symbolic analyzer and lint pass (lib/analysis).

   The load-bearing agreements: symbolic verdicts (independence,
   Banyan, P-properties, equivalence) must match the brute-force
   enumeration deciders on random networks of every flavour, and
   every diagnostic code must fire on a hand-built bad spec. *)

open Helpers
module A = Mineq_analysis
module Affine = A.Affine
module Symbolic = A.Symbolic
module D = A.Diagnostics
module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix
module Perm = Mineq_perm.Perm
open Mineq

(* Affine inference --------------------------------------------------- *)

let test_classify_independent () =
  let rng = rng_of 11 in
  for _ = 1 to 20 do
    let c = Connection.random_independent rng ~width:3 in
    match Affine.classify c with
    | Affine.Independent form ->
        let af, ag = Affine.child_maps form in
        Bv.iter_universe ~width:3 ~f:(fun x ->
            check_int "f agrees" (Connection.f c x) (Affine.apply af x);
            check_int "g agrees" (Connection.g c x) (Affine.apply ag x))
    | _ -> Alcotest.fail "random_independent must classify as Independent"
  done

let test_classify_split () =
  (* f linear with B = I, g linear with a different matrix: affine but
     not independent. *)
  let c = Connection.make ~width:2 ~f:(fun x -> x) ~g:(fun x -> ((x lsl 1) lor (x lsr 1)) land 3) in
  match Affine.classify c with
  | Affine.Affine_split (af, ag) -> check_false "linear parts differ" (Gf2.equal af.Affine.m ag.Affine.m)
  | _ -> Alcotest.fail "expected Affine_split"

let test_classify_opaque () =
  let c = Connection.make ~width:2 ~f:(fun x -> if x = 3 then 2 else x) ~g:(fun x -> x lxor 1) in
  check_true "non-affine f is Opaque" (Affine.classify c = Affine.Opaque)

let test_of_theta_agrees () =
  let rng = rng_of 7 in
  for n = 2 to 5 do
    for _ = 1 to 10 do
      let theta = Perm.random rng n in
      let closed = Affine.of_theta ~n theta in
      match Affine.classify (Pipid_net.connection ~n theta) with
      | Affine.Independent inferred ->
          check_true "B agrees" (Gf2.equal closed.Affine.b inferred.Affine.b);
          check_int "cf agrees" inferred.Affine.cf closed.Affine.cf;
          check_int "cg agrees" inferred.Affine.cg closed.Affine.cg
      | _ -> Alcotest.fail "PIPID stages are independent"
    done
  done

let test_of_theta_degenerate () =
  (* theta = identity fixes digit 0: Figure 5's f = g stage. *)
  let form = Affine.of_theta ~n:3 (Perm.identity 3) in
  check_true "identity theta is degenerate" (Affine.is_degenerate form);
  check_true "non-degenerate witness"
    (not (Affine.is_degenerate (Affine.of_theta ~n:3 (Perm.rotation ~size:3 1))))

(* Symbolic deciders vs brute force ----------------------------------- *)

let analyze_of g = Symbolic.analyze g

let check_verdicts name g =
  let a = analyze_of g in
  let n = Mi_digraph.stages g in
  let _, b = Symbolic.banyan a in
  check_bool (name ^ ": banyan agrees") (Result.is_ok (Banyan.check g)) (Result.is_ok b);
  for lo = 1 to n do
    for hi = lo to n do
      let _, c = Symbolic.component_count a ~lo ~hi in
      check_int
        (Printf.sprintf "%s: components (%d,%d)" name lo hi)
        (Properties.component_count g ~lo ~hi)
        c
    done
  done;
  let _, eq = Symbolic.equivalent a in
  check_bool (name ^ ": equivalence agrees") (Equivalence.by_characterization g).equivalent eq;
  Array.iter
    (fun (gap : Symbolic.gap) ->
      let indep = Connection.is_independent gap.conn in
      match Symbolic.independence a gap.index with
      | Symbolic.Indep _ -> check_true (name ^ ": symbolic indep") indep
      | Symbolic.Not_indep { alpha; _ } ->
          check_false (name ^ ": symbolic non-indep") indep;
          check_true (name ^ ": refuting alpha") (Option.is_none (Connection.witness gap.conn alpha)))
    (Symbolic.gaps a)

let prop_pipid_agrees (n, seed) =
  check_verdicts "pipid" (random_banyan_pipid (rng_of seed) ~n);
  true

let prop_random_agrees (n, seed) =
  check_verdicts "random" (Link_spec.random_network (rng_of seed) ~n);
  true

let prop_affine_agrees (n, seed) =
  let rng = rng_of seed in
  let g =
    Mi_digraph.create (List.init (n - 1) (fun _ -> Connection.random_independent rng ~width:(n - 1)))
  in
  let a = analyze_of g in
  check_int "all gaps symbolic" (n - 1) (Symbolic.symbolic_gap_count a);
  check_verdicts "affine" g;
  true

let prop_refutation_concrete (n, seed) =
  (* On non-independent gaps the (alpha, x) witness must concretely
     break the only candidate beta. *)
  let g = Link_spec.random_network (rng_of seed) ~n in
  let a = analyze_of g in
  Array.iter
    (fun (gap : Symbolic.gap) ->
      match Symbolic.independence a gap.index with
      | Symbolic.Indep _ -> ()
      | Symbolic.Not_indep { alpha; x; _ } ->
          let c = gap.conn in
          let beta_f = Connection.f c alpha lxor Connection.f c 0 in
          let beta_g = Connection.g c alpha lxor Connection.g c 0 in
          check_true "x breaks the pinned candidate"
            (beta_f <> beta_g
            || Connection.f c (x lxor alpha) <> beta_f lxor Connection.f c x
            || Connection.g c (x lxor alpha) <> beta_g lxor Connection.g c x))
    (Symbolic.gaps a);
  true

let test_double_link_symbolic () =
  let rng = rng_of 23 in
  for n = 2 to 5 do
    for _ = 1 to 10 do
      let g = Link_spec.random_network rng ~n in
      let a = analyze_of g in
      Array.iter
        (fun (gap : Symbolic.gap) ->
          let brute =
            let found = ref None in
            for x = Connection.half gap.conn - 1 downto 0 do
              let cf, cg = Connection.children gap.conn x in
              if cf = cg then found := Some x
            done;
            !found
          in
          match (Symbolic.double_link a gap.index, brute) with
          | None, None -> ()
          | Some x, Some _ ->
              let cf, cg = Connection.children gap.conn x in
              check_int "witness is a double link" cf cg
          | Some _, None -> Alcotest.fail "double link where none exists"
          | None, Some _ -> Alcotest.fail "missed a double link")
        (Symbolic.gaps a)
    done
  done

(* Diagnostics on hand-built specs ------------------------------------ *)

let codes report = List.map (fun (f : D.finding) -> f.D.code) report.A.Lint.findings

let lint_ok text =
  match A.Spec_lint.lint_string text with
  | Ok r -> r
  | Error e -> Alcotest.fail (Spec_io.error_to_string e)

let has code report = List.mem code (codes report)

let test_clean_classical () =
  List.iter
    (fun (name, g) ->
      let r = A.Lint.run g in
      check_true (name ^ " lints clean") (A.Lint.clean r);
      check_int (name ^ " exit code") 0 (A.Lint.exit_code r);
      check_int (name ^ " fully symbolic") 0 r.A.Lint.enumerated_gaps;
      check_true (name ^ " I001") (has "MINEQ-I001" r))
    (all_classical ~n:4)

let test_clean_classical_spec_path () =
  (* Through the spec parser the gaps arrive declared as theta lines,
     so the closed form is used and the verdict stays symbolic. *)
  List.iter
    (fun (name, g) ->
      let r = lint_ok (Spec_io.to_string g) in
      check_true (name ^ " spec lints clean") (A.Lint.clean r);
      check_int (name ^ " spec fully symbolic") 0 r.A.Lint.enumerated_gaps;
      let a = Symbolic.analyze g in
      ignore a;
      check_true (name ^ " spec I001") (has "MINEQ-I001" r))
    (all_classical ~n:4)

let degenerate_spec = "mineq-spec 1\nstages 3\ngap theta 0 1 2\ngap theta 2 0 1\n"

let test_degenerate_spec () =
  (* Figure 5: theta^-1(0) = 0 makes f = g — the double-link finding
     must fire, alongside the degeneracy warning and not-Banyan. *)
  let r = lint_ok degenerate_spec in
  check_true "W001 double link" (has "MINEQ-W001" r);
  check_true "W002 degenerate stage" (has "MINEQ-W002" r);
  check_true "E001 not banyan" (has "MINEQ-E001" r);
  check_true "E002 P(1,j)" (has "MINEQ-E002" r);
  check_int "exit 1" 1 (A.Lint.exit_code r);
  check_false "not clean" (A.Lint.clean r)

let test_non_independent_spec () =
  (* A raw gap that swaps children on one node only: still a valid MI
     stage, no longer affine. *)
  let c =
    Connection.make ~width:2
      ~f:(fun x -> if x = 0 then 1 else x)
      ~g:(fun x -> if x = 0 then 0 else x lxor 1)
  in
  check_true "fixture is an MI stage" (Connection.is_mi_stage c);
  check_false "fixture is non-independent" (Connection.is_independent c);
  let g =
    Mi_digraph.create [ c; Pipid_net.connection ~n:3 (Perm.rotation ~size:3 1) ]
  in
  let r = A.Lint.run g in
  check_true "W003 non-independent" (has "MINEQ-W003" r);
  check_true "W004 non-affine" (has "MINEQ-W004" r);
  check_int "one enumerated gap" 1 r.A.Lint.enumerated_gaps

let test_affine_split_diagnostic () =
  (* Both children affine with different linear parts: W003 without
     W004. *)
  let c = Connection.make ~width:2 ~f:(fun x -> x) ~g:(fun x -> ((x lsl 1) lor (x lsr 1)) land 3) in
  check_true "fixture is an MI stage" (Connection.is_mi_stage c);
  let g = Mi_digraph.create [ c; Pipid_net.connection ~n:3 (Perm.rotation ~size:3 1) ] in
  let r = A.Lint.run g in
  check_true "W003 fires" (has "MINEQ-W003" r);
  check_false "W004 does not fire" (has "MINEQ-W004" r)

let test_e003_fires () =
  (* A network failing P(i,n) for some i > 1: search small seeds. *)
  let rec find seed =
    if seed > 500 then Alcotest.fail "no P(i,n)-violating sample found"
    else
      let g = Link_spec.random_network (rng_of seed) ~n:4 in
      let n = Mi_digraph.stages g in
      let bad_pin =
        List.exists
          (fun i -> Properties.component_count g ~lo:i ~hi:n <> Properties.expected_components g ~lo:i ~hi:n)
          (List.init (n - 1) (fun i -> i + 2))
      in
      if bad_pin then g else find (seed + 1)
  in
  let r = A.Lint.run (find 0) in
  check_true "E003 fires" (has "MINEQ-E003" r)

let test_equivalent_enumerated_info () =
  (* Relabelling an equivalent network usually destroys independence
     but never equivalence: the verdict must then come from
     enumeration (I002).  A random relabelling can happen to stay
     affine, so search for a seed that actually breaks it. *)
  let rec find seed =
    if seed > 50 then Alcotest.fail "no independence-destroying relabelling found"
    else
      let g =
        Counterexample.relabelled_equivalent (rng_of seed) (Classical.network Classical.Omega ~n:4)
      in
      let r = A.Lint.run g in
      check_true "relabelled network stays equivalent" r.A.Lint.equivalent;
      if r.A.Lint.enumerated_gaps > 0 || has "MINEQ-W003" r then r else find (seed + 1)
  in
  let r = find 0 in
  check_true "I002 fires" (has "MINEQ-I002" r);
  check_false "not I001" (has "MINEQ-I001" r)

let test_parse_error_reports () =
  (match A.Spec_lint.lint_string "mineq-spec 1\nstages 3\ngap theta 9 9 9\n" with
  | Error e -> check_bool "line is 3" true (e.Spec_io.line = Some 3)
  | Ok _ -> Alcotest.fail "expected parse error");
  match A.Spec_lint.lint_file "/nonexistent/spec.min" with
  | Error e -> check_bool "io error has no line" true (e.Spec_io.line = None)
  | Ok _ -> Alcotest.fail "expected io error"

(* Report rendering ---------------------------------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_json_shape () =
  let r = lint_ok degenerate_spec in
  let json = A.Report.to_json r in
  List.iter
    (fun needle ->
      check_true (Printf.sprintf "json contains %s" needle) (contains json needle))
    [ "\"schema\": \"mineq-lint/1\""; "\"findings\""; "MINEQ-W002"; "\"severity\": \"warning\"" ]

let suite =
  [
    quick "classify recovers independent forms" test_classify_independent;
    quick "classify detects affine splits" test_classify_split;
    quick "classify detects non-affine children" test_classify_opaque;
    quick "of_theta matches enumerated inference" test_of_theta_agrees;
    quick "of_theta degeneracy" test_of_theta_degenerate;
    qcheck ~count:40 "symbolic verdicts agree on random PIPID" n_and_seed prop_pipid_agrees;
    qcheck ~count:40 "symbolic verdicts agree on random networks" n_and_seed prop_random_agrees;
    qcheck ~count:40 "symbolic verdicts agree on random affine networks" n_and_seed
      prop_affine_agrees;
    qcheck ~count:40 "refutations are concrete" n_and_seed prop_refutation_concrete;
    quick "double links found symbolically" test_double_link_symbolic;
    quick "classical networks lint clean" test_clean_classical;
    quick "classical specs stay on the affine fast path" test_clean_classical_spec_path;
    quick "Figure-5 degenerate stage fires W001/W002/E001/E002" test_degenerate_spec;
    quick "non-affine stage fires W003/W004" test_non_independent_spec;
    quick "affine split fires W003 only" test_affine_split_diagnostic;
    quick "P(i,n) violation fires E003" test_e003_fires;
    quick "relabelled equivalent network reports I002" test_equivalent_enumerated_info;
    quick "parse errors carry line numbers" test_parse_error_reports;
    quick "json report shape" test_json_shape;
  ]
