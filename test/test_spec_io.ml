open Helpers
module S = Mineq.Spec_io
module M = Mineq.Mi_digraph

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_round_trip_classical () =
  List.iter
    (fun (name, g) ->
      let text = S.to_string g in
      check_true (name ^ " serialized as PIPID") (contains ~needle:"gap theta" text);
      match S.of_string text with
      | Ok h -> check_true (name ^ " round trips") (M.equal g h)
      | Error e -> Alcotest.fail (name ^ ": " ^ S.error_to_string e))
    (all_classical ~n:4)

let test_round_trip_raw () =
  (* A relabelled network is not PIPID: falls back to raw lines. *)
  let rng = rng_of 500 in
  let g = Mineq.Counterexample.relabelled_equivalent rng (Mineq.Baseline.network 3) in
  let text = S.to_string g in
  check_true "raw fallback used" (contains ~needle:"gap raw" text);
  match S.of_string text with
  | Ok h -> check_true "raw round trips" (M.equal g h)
  | Error e -> Alcotest.fail (S.error_to_string e)

let test_comments_and_blanks () =
  let text =
    "# a comment\nmineq-spec 1\n\nstages 3   # three stages\ngap theta 2 0 1\ngap theta 1 2 0\n"
  in
  match S.of_string text with
  | Ok g -> check_int "parsed" 3 (M.stages g)
  | Error e -> Alcotest.fail (S.error_to_string e)

let expect_error text fragment =
  match S.of_string text with
  | Ok _ -> Alcotest.fail ("expected parse error mentioning " ^ fragment)
  | Error e ->
      check_true ("error mentions " ^ fragment)
        (contains ~needle:fragment (S.error_to_string e))

let test_parse_errors () =
  expect_error "nonsense\n" "header";
  expect_error "mineq-spec 1\nstages x\n" "integer";
  expect_error "mineq-spec 1\nstages 3\ngap theta 0 1\n" "theta needs n images";
  expect_error "mineq-spec 1\nstages 3\ngap theta 0 0 1\ngap theta 0 1 2\n" "repeated";
  expect_error "mineq-spec 1\nstages 3\ngap raw 0 1 2 3\n" "separator";
  expect_error "mineq-spec 1\nstages 3\ngap theta 2 0 1\n" "expected 2 gap lines";
  (* Degree violation caught at build time: constant raw gap. *)
  expect_error "mineq-spec 1\nstages 2\ngap raw 0 0 | 0 0\n" "in-degree"

let test_typed_error_lines () =
  (* The typed error carries the 1-based line of the offending input
     line; whole-file problems (gap-count mismatch, in-degree
     violations caught at build time) carry no line. *)
  let line_of text =
    match S.of_string text with
    | Ok _ -> Alcotest.fail "expected a parse error"
    | Error e -> e.S.line
  in
  Alcotest.(check (option int)) "header error on line 1" (Some 1) (line_of "nonsense\n");
  Alcotest.(check (option int))
    "stages error on line 3" (Some 3)
    (line_of "# comment\nmineq-spec 1\nstages x\n");
  Alcotest.(check (option int))
    "theta error on line 4" (Some 4)
    (line_of "mineq-spec 1\nstages 3\ngap theta 2 0 1\ngap theta 0 1\n");
  Alcotest.(check (option int))
    "gap-count mismatch has no line" None
    (line_of "mineq-spec 1\nstages 3\ngap theta 2 0 1\n");
  Alcotest.(check (option int))
    "in-degree violation has no line" None
    (line_of "mineq-spec 1\nstages 2\ngap raw 0 0 | 0 0\n")

let test_save_load () =
  let g = Mineq.Classical.network Flip ~n:4 in
  let path = Filename.temp_file "mineq" ".spec" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.save path g;
      match S.load path with
      | Ok h -> check_true "file round trip" (M.equal g h)
      | Error e -> Alcotest.fail (S.error_to_string e));
  match S.load "/nonexistent/mineq.spec" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must error"

let props =
  [ qcheck "round trip on random PIPID networks" ~count:30 n_and_seed (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        match S.of_string (S.to_string g) with Ok h -> M.equal g h | Error _ -> false);
    qcheck "round trip on random raw networks" ~count:20 n_and_seed (fun (n, seed) ->
        let g = Mineq.Link_spec.random_network (rng_of seed) ~n in
        match S.of_string (S.to_string g) with Ok h -> M.equal g h | Error _ -> false)
  ]

let suite =
  [ quick "classical round trip" test_round_trip_classical;
    quick "raw round trip" test_round_trip_raw;
    quick "comments and blanks" test_comments_and_blanks;
    quick "parse errors" test_parse_errors;
    quick "typed error line numbers" test_typed_error_lines;
    quick "save and load" test_save_load
  ]
  @ props
