(* Smoke coverage for the pretty-printers: they must produce
   non-empty, well-formed text (exact layouts are not contractual). *)
open Helpers

let render fmt_fn = Format.asprintf "%a" fmt_fn

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_bv () =
  Alcotest.(check string) "bv pp" "0101" (render (fun ppf -> Mineq_bitvec.Bv.pp ~width:4 ppf) 5)

let test_gf2 () =
  let m = Mineq_bitvec.Gf2_matrix.identity 3 in
  let s = render Mineq_bitvec.Gf2_matrix.pp m in
  check_true "rows rendered" (contains ~needle:"100" s && contains ~needle:"001" s)

let test_subspace () =
  let s = Mineq_bitvec.Subspace.of_generators ~width:3 [ 0b110 ] in
  let text = render Mineq_bitvec.Subspace.pp s in
  check_true "span shown" (contains ~needle:"span" text && contains ~needle:"110" text)

let test_perm () =
  let p = Mineq_perm.Perm.of_array [| 1; 2; 0 |] in
  check_true "image list" (contains ~needle:"[1 2 0]" (render Mineq_perm.Perm.pp p));
  check_true "cycle notation" (contains ~needle:"(0 1 2)" (render Mineq_perm.Perm.pp_cycles p))

let test_digraph () =
  let g = Mineq_graph.Digraph.create ~vertices:2 [ (0, 1) ] in
  let s = render Mineq_graph.Digraph.pp g in
  check_true "vertex count shown" (contains ~needle:"2 vertices" s);
  check_true "arc shown" (contains ~needle:"0 -> [1]" s)

let test_connection () =
  let c = Mineq.Connection.make ~width:2 ~f:(fun x -> x) ~g:(fun x -> x lxor 1) in
  let s = render Mineq.Connection.pp c in
  check_true "width shown" (contains ~needle:"width 2" s);
  check_true "arcs shown" (contains ~needle:"00 -> 00, 01" s)

let test_mi_digraph () =
  let s = render Mineq.Mi_digraph.pp (Mineq.Baseline.network 3) in
  check_true "stage count shown" (contains ~needle:"3 stages" s);
  check_true "gaps listed" (contains ~needle:"gap 2 -> 3" s)

let test_banyan_violation () =
  let g =
    Mineq.Link_spec.network_of_thetas ~n:3
      [ Mineq_perm.Perm.identity 3; Mineq_perm.Pipid_family.perfect_shuffle ~width:3 ]
  in
  match Mineq.Banyan.check g with
  | Ok () -> Alcotest.fail "expected a violation"
  | Error v ->
      let s = render Mineq.Banyan.pp_violation v in
      check_true "explains the count" (contains ~needle:"paths (expected 1)" s)

let test_fault_pp () =
  check_true "link fault"
    (contains ~needle:"link(gap 1"
       (render Mineq.Faults.pp_fault (Mineq.Faults.Link { gap = 1; cell = 2; port = 0 })));
  check_true "cell fault"
    (contains ~needle:"cell(stage 2"
       (render Mineq.Faults.pp_fault (Mineq.Faults.Cell { stage = 2; cell = 1 })))

let test_summary_pp () =
  let t = Mineq_sim.Summary.of_samples [ 1.0; 3.0 ] in
  check_true "mean and n shown"
    (contains ~needle:"n=2" (render Mineq_sim.Summary.pp t))

let test_histogram_pp () =
  let h = Mineq_sim.Summary.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  Mineq_sim.Summary.Histogram.add h 1.0;
  Mineq_sim.Summary.Histogram.add h 1.5;
  let s = render Mineq_sim.Summary.Histogram.pp h in
  check_true "bars drawn" (contains ~needle:"#" s)

let test_dot_render () =
  let s = Mineq.Render.to_dot ~name:"g" (Mineq.Baseline.network 3) in
  check_true "digraph header" (contains ~needle:"digraph g" s);
  check_true "ranked stages" (contains ~needle:"rank=same" s);
  (* 2 gaps x 4 cells x 2 arcs = 16 edges. *)
  let count_edges =
    List.length
      (List.filter
         (fun line -> contains ~needle:" -> " line)
         (String.split_on_char '\n' s))
  in
  check_int "all arcs emitted" 16 count_edges

let suite =
  [ quick "Bv.pp" test_bv;
    quick "Gf2_matrix.pp" test_gf2;
    quick "Subspace.pp" test_subspace;
    quick "Perm printers" test_perm;
    quick "Digraph.pp" test_digraph;
    quick "Connection.pp" test_connection;
    quick "Mi_digraph.pp" test_mi_digraph;
    quick "Banyan violation printer" test_banyan_violation;
    quick "Faults printer" test_fault_pp;
    quick "Summary printer" test_summary_pp;
    quick "Histogram printer" test_histogram_pp;
    quick "DOT rendering" test_dot_render
  ]
