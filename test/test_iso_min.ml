open Helpers
module I = Mineq.Iso_min
module M = Mineq.Mi_digraph

let baseline = Mineq.Baseline.network

let test_identity_mapping () =
  let g = baseline 3 in
  match I.find g g with
  | None -> Alcotest.fail "self isomorphism exists"
  | Some m -> check_true "verifies" (I.verify g g m)

let test_classical_to_baseline () =
  List.iter
    (fun (name, g) ->
      match I.to_baseline g with
      | None -> Alcotest.fail (name ^ ": Theorem 3 guarantees an isomorphism")
      | Some m ->
          check_true (name ^ " certificate verifies") (I.verify g (baseline 5) m);
          check_true (name ^ " apply reproduces baseline")
            (M.equal (I.apply g m) (baseline 5)))
    (all_classical ~n:5)

let test_non_isomorphic_rejected () =
  let rng = rng_of 70 in
  match Mineq.Counterexample.find_non_equivalent rng ~n:3 ~attempts:5000 ~require_buddy:false with
  | None -> Alcotest.fail "search must find a non-equivalent banyan"
  | Some g -> check_true "no mapping found" (Option.is_none (I.to_baseline g))

let test_size_mismatch () =
  check_true "different n" (Option.is_none (I.find (baseline 3) (baseline 4)))

let test_verify_rejects_garbage () =
  let g = baseline 3 in
  let bad = Array.init 3 (fun _ -> Array.make 4 0) in
  check_false "constant map rejected" (I.verify g g bad);
  let id = Array.init 3 (fun _ -> Array.init 4 (fun x -> x)) in
  check_true "identity verifies on baseline" (I.verify g g id);
  (* Swap two labels at one stage only: adjacency must break. *)
  let tweaked = Array.map Array.copy id in
  tweaked.(1).(0) <- 1;
  tweaked.(1).(1) <- 0;
  check_false "stage-local swap rejected" (I.verify g g tweaked)

let test_mapping_respects_stage_structure () =
  let g = Mineq.Classical.network Omega ~n:4 in
  match I.to_baseline g with
  | None -> Alcotest.fail "omega maps to baseline"
  | Some m ->
      check_int "one map per stage" 4 (Array.length m);
      Array.iter
        (fun stage_map ->
          check_int "stage map size" 8 (Array.length stage_map);
          Alcotest.(check (list int)) "bijection"
            (List.init 8 (fun i -> i))
            (List.sort compare (Array.to_list stage_map)))
        m

let test_automorphism_counts () =
  (* Exhaustive enumeration gives |Aut(Baseline(n))| = 2^(2^n - 2):
     n=2 -> 4, n=3 -> 64, n=4 -> 16384 (equivalently the recurrence
     a(n) = 4 a(n-1)^2 with a(1) = 1).  Recorded as a regression
     oracle; see EXPERIMENTS.md X10 for the discussion. *)
  let expected n = 1 lsl ((1 lsl n) - 2) in
  check_int "n=2 automorphisms" (expected 2) (I.automorphism_count (baseline 2));
  check_int "n=3 automorphisms" (expected 3) (I.automorphism_count (baseline 3));
  check_int "n=4 automorphisms" (expected 4) (I.automorphism_count (baseline 4))

let test_limit () =
  let g = baseline 4 in
  let h = Mineq.Classical.network Omega ~n:4 in
  match I.find ~limit:3 h g with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected node-limit failure"

let test_agreement_with_generic_iso () =
  (* The specialized search and the generic digraph search agree. *)
  let rng = rng_of 71 in
  for _ = 1 to 5 do
    let g = random_banyan_pipid rng ~n:3 in
    let h = random_banyan_pipid rng ~n:3 in
    let specialized = Option.is_some (I.find g h) in
    let generic =
      Mineq_graph.Iso.are_isomorphic (M.to_digraph g) (M.to_digraph h)
    in
    check_bool "same verdict" generic specialized
  done

let props =
  [ qcheck "Theorem 3 constructively: PIPID Banyans map onto the baseline" ~count:30
      n_and_seed (fun (n, seed) ->
        let g = random_banyan_pipid (rng_of seed) ~n in
        match I.to_baseline g with
        | None -> false
        | Some m -> I.verify g (baseline n) m);
    qcheck "apply through a found mapping gives the target" ~count:20 n_and_seed
      (fun (n, seed) ->
        let rng = rng_of seed in
        let g = random_banyan_pipid rng ~n in
        let h = Mineq.Counterexample.relabelled_equivalent rng g in
        match I.find g h with
        | None -> false
        | Some m -> M.equal (I.apply g m) h);
    qcheck "mapping existence is symmetric" ~count:20
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 4) (int_bound 100000)))
      (fun (n, seed) ->
        let rng = rng_of seed in
        let g = random_banyan_pipid rng ~n in
        let h =
          match Mineq.Counterexample.random_banyan rng ~n ~attempts:200 with
          | Some h -> h
          | None -> g
        in
        Option.is_some (I.find g h) = Option.is_some (I.find h g))
  ]

let suite =
  [ quick "identity mapping" test_identity_mapping;
    quick "classical networks map to baseline" test_classical_to_baseline;
    quick "non-isomorphic rejected" test_non_isomorphic_rejected;
    quick "size mismatch" test_size_mismatch;
    quick "verify rejects garbage" test_verify_rejects_garbage;
    quick "stage structure respected" test_mapping_respects_stage_structure;
    quick "baseline automorphism counts" test_automorphism_counts;
    quick "node limit" test_limit;
    quick "agreement with generic isomorphism" test_agreement_with_generic_iso
  ]
  @ props
