open Helpers
module Perm = Mineq_perm.Perm
module Ip = Mineq_perm.Index_perm
module Family = Mineq_perm.Pipid_family

let induce = Ip.induce

let test_shuffle_is_rotation () =
  (* sigma^width is the identity (full cycle). *)
  let s = Family.perfect_shuffle ~width:5 in
  check_int "shuffle order" 5 (Perm.order s);
  check_true "inverse shuffle is the inverse"
    (Perm.equal (Family.inverse_shuffle ~width:5) (Perm.inverse s))

let test_sub_shuffle_limits () =
  check_true "sub-shuffle at full width is the shuffle"
    (Perm.equal (Family.sub_shuffle ~width:5 5) (Family.perfect_shuffle ~width:5));
  check_true "1-sub-shuffle is identity" (Perm.is_identity (Family.sub_shuffle ~width:5 1));
  Alcotest.check_raises "k = 0 rejected"
    (Invalid_argument "Pipid_family.sub_shuffle: need 1 <= k <= width") (fun () ->
      ignore (Family.sub_shuffle ~width:5 0))

let test_sub_shuffle_fixes_high_bits () =
  let s = induce ~width:5 (Family.sub_shuffle ~width:5 3) in
  for x = 0 to 31 do
    check_int "high bits fixed" (x lsr 3) (Perm.apply s x lsr 3)
  done

let test_butterfly () =
  let b = Family.butterfly ~width:4 2 in
  check_true "butterfly is an involution" (Perm.is_identity (Perm.compose b b));
  let a = induce ~width:4 b in
  (* Swap bits 0 and 2: 0b0001 <-> 0b0100. *)
  check_int "butterfly swaps" 0b0100 (Perm.apply a 0b0001);
  check_int "butterfly swaps back" 0b0001 (Perm.apply a 0b0100);
  check_int "butterfly fixes bit 1" 0b0010 (Perm.apply a 0b0010);
  Alcotest.check_raises "k = width rejected"
    (Invalid_argument "Pipid_family.butterfly: need 1 <= k <= width - 1") (fun () ->
      ignore (Family.butterfly ~width:4 4))

let test_bit_reversal () =
  let r = Family.bit_reversal ~width:4 in
  check_true "reversal is an involution" (Perm.is_identity (Perm.compose r r));
  let a = induce ~width:4 r in
  check_int "reverse 0001" 0b1000 (Perm.apply a 0b0001);
  check_int "reverse 0011" 0b1100 (Perm.apply a 0b0011);
  check_int "reverse palindrome" 0b1001 (Perm.apply a 0b1001)

let test_shuffle_via_doubling () =
  (* The perfect shuffle on card decks: position i of 2^w goes to
     2i mod (2^w - 1) (except the last).  Check the induced map
     matches the doubling formula. *)
  let w = 4 in
  let n = 1 lsl w in
  let a = induce ~width:w (Family.perfect_shuffle ~width:w) in
  for x = 0 to n - 2 do
    check_int "doubling formula" (2 * x mod (n - 1)) (Perm.apply a x)
  done;
  check_int "top element fixed" (n - 1) (Perm.apply a (n - 1))

let test_all_named () =
  let named = Family.all_named ~width:4 in
  check_true "contains sigma" (List.mem_assoc "sigma" named);
  check_true "contains rho" (List.mem_assoc "rho" named);
  check_true "contains beta_2" (List.mem_assoc "beta_2" named);
  check_true "contains sigma_3^-1" (List.mem_assoc "sigma_3^-1" named);
  List.iter
    (fun (name, p) ->
      check_int ("size of " ^ name) 4 (Perm.size p))
    named

let props =
  let gen =
    QCheck.make
      ~print:(fun (w, k) -> Printf.sprintf "w=%d k=%d" w k)
      QCheck.Gen.(int_range 2 8 >>= fun w -> map (fun k -> (w, k)) (int_range 1 (w - 1)))
  in
  [ qcheck "sub-shuffle order is k" gen (fun (w, k) ->
        Perm.order (Family.sub_shuffle ~width:w k) = max k 1);
    qcheck "butterfly self-inverse" gen (fun (w, k) ->
        let b = Family.butterfly ~width:w k in
        Perm.equal b (Perm.inverse b));
    qcheck "induced maps agree with tuple semantics" gen (fun (w, k) ->
        (* bit j of induced image = bit theta(j) of argument. *)
        let theta = Family.sub_shuffle ~width:w k in
        let a = induce ~width:w theta in
        let ok = ref true in
        for x = 0 to (1 lsl w) - 1 do
          let y = Perm.apply a x in
          for j = 0 to w - 1 do
            if Mineq_bitvec.Bv.bit y j <> Mineq_bitvec.Bv.bit x (Perm.apply theta j) then
              ok := false
          done
        done;
        !ok)
  ]

let suite =
  [ quick "shuffle rotation structure" test_shuffle_is_rotation;
    quick "sub-shuffle limit cases" test_sub_shuffle_limits;
    quick "sub-shuffle fixes high bits" test_sub_shuffle_fixes_high_bits;
    quick "butterfly" test_butterfly;
    quick "bit reversal" test_bit_reversal;
    quick "shuffle doubling formula" test_shuffle_via_doubling;
    quick "all_named inventory" test_all_named
  ]
  @ props
