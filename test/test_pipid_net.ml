open Helpers
module Pn = Mineq.Pipid_net
module C = Mineq.Connection
module Perm = Mineq_perm.Perm
module Ip = Mineq_perm.Index_perm
module Family = Mineq_perm.Pipid_family

let test_degenerate_detection () =
  let n = 4 in
  check_true "identity theta degenerate" (Pn.is_degenerate ~n (Perm.identity n));
  check_false "shuffle not degenerate" (Pn.is_degenerate ~n (Family.perfect_shuffle ~width:n));
  check_true "no slot when degenerate"
    (Option.is_none (Pn.routing_bit_slot ~n (Perm.identity n)));
  (* theta fixing 0 but moving others is still degenerate. *)
  let t = Perm.transposition ~size:n 1 3 in
  check_true "0-fixing theta degenerate" (Pn.is_degenerate ~n t)

let test_closed_form_equals_link_perm () =
  let rng = rng_of 50 in
  for n = 2 to 6 do
    for _ = 1 to 15 do
      let theta = Perm.random rng n in
      let closed = Pn.connection ~n theta in
      let via_links =
        Mineq.Link_spec.connection_of_link_perm ~n (Ip.induce ~width:n theta)
      in
      check_true
        (Printf.sprintf "closed form matches (n=%d)" n)
        (C.equal_graph closed via_links)
    done
  done

let test_degenerate_double_links () =
  (* Figure 5: theta^-1 0 = 0 makes f = g. *)
  let n = 4 in
  let theta = Perm.transposition ~size:n 1 2 in
  check_true "degenerate" (Pn.is_degenerate ~n theta);
  let c = Pn.connection ~n theta in
  Mineq_bitvec.Bv.iter_universe ~width:(n - 1) ~f:(fun x ->
      check_int "double link" (C.f c x) (C.g c x))

let test_nondegenerate_children_differ () =
  let n = 4 in
  let theta = Family.perfect_shuffle ~width:n in
  let c = Pn.connection ~n theta in
  Mineq_bitvec.Bv.iter_universe ~width:(n - 1) ~f:(fun x ->
      check_true "distinct children" (C.f c x <> C.g c x))

let test_children_differ_exactly_at_slot () =
  let rng = rng_of 51 in
  let n = 5 in
  for _ = 1 to 20 do
    let theta = Perm.random rng n in
    match Pn.routing_bit_slot ~n theta with
    | None -> ()
    | Some slot ->
        let c = Pn.connection ~n theta in
        Mineq_bitvec.Bv.iter_universe ~width:(n - 1) ~f:(fun x ->
            check_int "f and g differ exactly at the routing slot"
              (1 lsl slot)
              (C.f c x lxor C.g c x))
  done

let test_beta_is_the_witness () =
  let rng = rng_of 52 in
  let n = 5 in
  for _ = 1 to 20 do
    let theta = Perm.random rng n in
    let c = Pn.connection ~n theta in
    for alpha = 1 to (1 lsl (n - 1)) - 1 do
      match C.witness c alpha with
      | None -> Alcotest.fail "PIPID connections are independent"
      | Some beta -> check_int "paper's beta formula" beta (Pn.beta ~n theta alpha)
    done
  done

let test_connection_always_independent () =
  (* Independence holds even for degenerate stages (f = g). *)
  let rng = rng_of 53 in
  for n = 2 to 6 do
    for _ = 1 to 10 do
      let theta = Perm.random rng n in
      check_true "PIPID connection independent" (C.is_independent (Pn.connection ~n theta))
    done
  done

let test_affine_connection () =
  let rng = rng_of 54 in
  let n = 4 in
  for _ = 1 to 20 do
    let theta = Perm.random rng n in
    let offset = Random.State.int rng (1 lsl n) in
    let c = Pn.affine_connection ~n theta ~offset in
    check_true "affine stage valid" (C.is_mi_stage c);
    check_true "affine stage independent (extension)" (C.is_independent c)
  done;
  (* Zero offset reduces to the plain PIPID connection. *)
  let theta = Family.perfect_shuffle ~width:n in
  check_true "offset 0 = plain PIPID"
    (C.equal_graph (Pn.affine_connection ~n theta ~offset:0) (Pn.connection ~n theta))

let test_affine_network_equivalent () =
  (* An "exchange-omega": shuffle xor constant at every gap is still
     Baseline-equivalent when Banyan. *)
  let n = 4 in
  let theta = Family.perfect_shuffle ~width:n in
  let conns =
    List.init (n - 1) (fun i -> Pn.affine_connection ~n theta ~offset:((2 * i) + 3))
  in
  let g = Mineq.Mi_digraph.create conns in
  check_true "exchange-omega banyan" (Mineq.Banyan.is_banyan g);
  check_true "Theorem 3 applies" (Mineq.Equivalence.by_independence g).equivalent;
  check_true "characterization agrees" (Mineq.Equivalence.by_characterization g).equivalent

let test_theta_size_checked () =
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Pipid_net: theta must be a permutation of size n") (fun () ->
      ignore (Pn.connection ~n:4 (Perm.identity 3)))

let props =
  let gen =
    QCheck.make
      ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
      QCheck.Gen.(pair (int_range 2 7) (int_bound 100000))
  in
  [ qcheck "PIPID stage is a valid MI stage" gen (fun (n, seed) ->
        C.is_mi_stage (Pn.connection ~n (Perm.random (rng_of seed) n)));
    qcheck "linear part of a PIPID stage has corank <= 1" gen (fun (n, seed) ->
        let c = Pn.connection ~n (Perm.random (rng_of seed) n) in
        match C.linear_form c with
        | None -> false
        | Some (b, _, _) -> Mineq_bitvec.Gf2_matrix.rank b >= n - 2);
    qcheck "degenerate iff theta fixes digit 0" gen (fun (n, seed) ->
        let theta = Perm.random (rng_of seed) n in
        Pn.is_degenerate ~n theta = (Perm.apply theta 0 = 0));
    qcheck "recognize_gap inverts the construction" gen (fun (n, seed) ->
        let theta = Perm.random (rng_of seed) n in
        if Pn.is_degenerate ~n theta then true
        else begin
          (* Build a network carrying this connection at every gap and
             ask Render.recognize_gap for the theta back. *)
          let g =
            Mineq.Link_spec.network_of_thetas ~n
              (List.init (n - 1) (fun _ -> theta))
          in
          match Mineq.Render.recognize_gap g 1 with
          | None -> false
          | Some t -> C.equal_graph (Pn.connection ~n t) (Pn.connection ~n theta)
        end)
  ]

let suite =
  [ quick "degenerate detection" test_degenerate_detection;
    quick "closed form = link permutation" test_closed_form_equals_link_perm;
    quick "Figure 5 double links" test_degenerate_double_links;
    quick "non-degenerate children differ" test_nondegenerate_children_differ;
    quick "difference localized at routing slot" test_children_differ_exactly_at_slot;
    quick "paper's beta is the witness" test_beta_is_the_witness;
    quick "always independent" test_connection_always_independent;
    quick "affine link permutations (extension)" test_affine_connection;
    quick "affine network equivalent" test_affine_network_equivalent;
    quick "theta size checked" test_theta_size_checked
  ]
  @ props
