(* Shared test utilities. *)

let rng_of seed = Random.State.make [| seed; 0x6d696e65; 0x71 |]

let check_bool name expected actual = Alcotest.(check bool) name expected actual

let check_int name expected actual = Alcotest.(check int) name expected actual

let check_true name actual = check_bool name true actual

let check_false name actual = check_bool name false actual

let quick name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Generators --------------------------------------------------------- *)

(* A deterministic seed per generated case, so qcheck shrinking stays
   reproducible: generate an int seed, derive everything from it. *)
let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

let small_n_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 6)

let n_and_seed =
  QCheck.pair small_n_gen seed_gen

let random_theta rng n = Mineq_perm.Perm.random rng n

(* A random Banyan PIPID network.  A degenerate stage (theta^-1 0 = 0)
   always breaks the Banyan property, but avoiding those is not
   sufficient (e.g. two identical butterfly stages create parallel
   paths), so rejection-sample on the Banyan check itself. *)
let random_banyan_pipid rng ~n =
  let stage () =
    let rec pick () =
      let theta = random_theta rng n in
      if Mineq.Pipid_net.is_degenerate ~n theta then pick () else theta
    in
    pick ()
  in
  let rec attempt () =
    let g = Mineq.Link_spec.network_of_thetas ~n (List.init (n - 1) (fun _ -> stage ())) in
    if Mineq.Banyan.is_banyan g then g else attempt ()
  in
  attempt ()

let all_classical ~n = Mineq.Classical.all_networks ~n
