(* The mineq_engine subsystem: worker pool semantics, deterministic
   seed splitting, memo cache coherence, and the headline batch
   guarantee — results bit-identical across jobs counts and (for
   classify) to the sequential oracle. *)

open Helpers
module Pool = Mineq_engine.Pool
module Seeds = Mineq_engine.Seeds
module Memo = Mineq_engine.Memo
module Batch = Mineq_engine.Batch

(* pool ----------------------------------------------------------------

   Parallel pool tests pass ~clamp:false so real worker domains spawn
   even on a single-core host (the default clamp would silently turn
   them into sequential runs there). *)

let test_map_order () =
  List.iter
    (fun jobs ->
      let got =
        Pool.run ~clamp:false ~jobs (fun p ->
            Pool.map_list p (fun x -> x * x) (List.init 50 Fun.id))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "squares in order at jobs=%d" jobs)
        (List.init 50 (fun x -> x * x))
        got)
    [ 1; 2; 4 ]

let test_map_chunked () =
  List.iter
    (fun chunk ->
      let got =
        Pool.run ~clamp:false ~jobs:3 (fun p ->
            Pool.map_list ~chunk p (fun x -> x + 1) (List.init 23 Fun.id))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "chunk=%d preserves order" chunk)
        (List.init 23 (fun x -> x + 1))
        got)
    [ 1; 4; 7; 100 ]

let test_map_array () =
  Pool.run ~clamp:false ~jobs:4 (fun p ->
      Alcotest.(check (array int))
        "map_array preserves slots"
        (Array.init 100 (fun i -> 2 * i))
        (Pool.map_array p (fun x -> 2 * x) (Array.init 100 Fun.id));
      Alcotest.(check (array int)) "empty array" [||] (Pool.map_array p (fun x -> x) [||]);
      Alcotest.(check (array int))
        "singleton array" [| 9 |]
        (Pool.map_array p (fun x -> x * x) [| 3 |]))

let test_exception_propagation () =
  (* The surfaced exception must be the lowest-index failure — the one
     a sequential run hits first — at every jobs value and chunking. *)
  List.iter
    (fun jobs ->
      match
        Pool.run ~clamp:false ~jobs (fun p ->
            Pool.map_list ~chunk:2 p
              (fun x -> if x >= 3 then failwith (Printf.sprintf "task-boom-%d" x) else x)
              (List.init 24 Fun.id))
      with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "earliest exception surfaces at jobs=%d" jobs)
            "task-boom-3" msg)
    [ 1; 4 ]

let test_uneven_load_stealing () =
  (* Work concentrated in a few heavy items: stealing must rebalance
     without perturbing slot order. *)
  let spin x =
    let rounds = if x mod 16 = 0 then 20_000 else 10 in
    let acc = ref x in
    for i = 1 to rounds do
      acc := (!acc * 31) + i
    done;
    !acc
  in
  let xs = Array.init 256 Fun.id in
  let expected = Array.map spin xs in
  Pool.run ~clamp:false ~jobs:4 (fun p ->
      Alcotest.(check (array int))
        "uneven load keeps slots" expected
        (Pool.map_array p spin xs))

let test_jobs_validation () =
  (match Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "expected Invalid_argument for jobs=0"
  | exception Invalid_argument _ -> ());
  (match Pool.create ~jobs:(-3) () with
  | _ -> Alcotest.fail "expected Invalid_argument for negative jobs"
  | exception Invalid_argument _ -> ());
  let p = Pool.create ~jobs:64 () in
  check_true "default clamps to recommended width" (Pool.jobs p <= Pool.default_jobs ());
  Pool.shutdown p;
  let q = Pool.create ~clamp:false ~jobs:3 () in
  check_int "clamp:false keeps the requested width" 3 (Pool.jobs q);
  Pool.shutdown q

let test_map_after_shutdown () =
  List.iter
    (fun jobs ->
      let p = Pool.create ~clamp:false ~jobs () in
      Pool.shutdown p;
      match Pool.map_list p (fun x -> x) [ 1; 2 ] with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ 1; 2 ]

let pool_suite =
  [ quick "map_list preserves order" test_map_order;
    quick "chunked map_list preserves order" test_map_chunked;
    quick "map_array primitive" test_map_array;
    quick "earliest exception re-raises in the submitter" test_exception_propagation;
    quick "stealing rebalances uneven loads" test_uneven_load_stealing;
    quick "jobs rejected below 1, clamped above cores" test_jobs_validation;
    quick "map after shutdown rejected" test_map_after_shutdown
  ]

(* seeds --------------------------------------------------------------- *)

let draws rng = List.init 8 (fun _ -> Random.State.bits rng)

let test_derive_deterministic () =
  Alcotest.(check (list int))
    "same (root, index) gives the same stream"
    (draws (Seeds.derive ~root:42 7))
    (draws (Seeds.derive ~root:42 7))

let test_derive_distinct () =
  let streams = List.init 20 (fun i -> draws (Seeds.derive ~root:42 i)) in
  check_int "20 indices give 20 distinct streams" 20
    (List.length (List.sort_uniq compare streams))

let test_fold_mixes () =
  let roots = List.init 20 (fun label -> Seeds.fold 42 label) in
  check_int "20 labels give 20 distinct roots" 20
    (List.length (List.sort_uniq compare roots));
  List.iter (fun r -> check_true "folded roots stay non-negative" (r >= 0)) roots

let seeds_suite =
  [ quick "derivation is deterministic" test_derive_deterministic;
    quick "indices decorrelate" test_derive_distinct;
    quick "fold separates stream families" test_fold_mixes
  ]

(* memo ---------------------------------------------------------------- *)

let test_memo_verdicts () =
  let m = Memo.create () in
  let g = Mineq.Classical.network Omega ~n:4 in
  let fresh = Mineq.Equivalence.by_characterization g in
  let v1 = Memo.find_or_compute m g Mineq.Equivalence.by_characterization in
  let v2 = Memo.find_or_compute m g Mineq.Equivalence.by_characterization in
  check_bool "cached verdict equals fresh" true (v1 = fresh && v2 = fresh);
  check_int "one miss" 1 (Memo.misses m);
  check_int "one hit" 1 (Memo.hits m);
  check_int "one entry" 1 (Memo.size m);
  (* A structurally different network gets its own entry. *)
  let h = Mineq.Baseline.network 4 in
  ignore (Memo.find_or_compute m h Mineq.Equivalence.by_characterization);
  check_int "two entries" 2 (Memo.size m);
  Memo.reset m;
  check_int "reset clears entries" 0 (Memo.size m);
  check_int "reset clears hits" 0 (Memo.hits m)

let test_memo_key_structural () =
  (* Two independently built copies share hash and equality, so they
     share a cache entry. *)
  let a = Mineq.Baseline.network 4 and b = Mineq.Baseline.network 4 in
  check_true "independent builds are structurally equal" (Memo.structural_equal a b);
  check_int "and hash alike" (Memo.structural_hash a) (Memo.structural_hash b);
  (* The (f, g) decomposition is not canonical: swapping it changes
     the spec text (and possibly the digest) but never the digraph,
     so the structural key must not see it. *)
  let swapped =
    Mineq.Mi_digraph.map_gaps a (fun i c -> if i = 1 then Mineq.Connection.swap c else c)
  in
  check_true "decomposition swap keeps structural equality"
    (Memo.structural_equal a swapped);
  check_int "and the hash" (Memo.structural_hash a) (Memo.structural_hash swapped)

let memo_key_props =
  (* Agreement with the retired Digest-of-spec key: equal specs key
     equally under both schemes, distinct ones under neither. *)
  let net seed ~n = Mineq.Link_spec.random_network (Seeds.derive ~root:seed 0) ~n in
  [ qcheck "structural key agrees with the digest key" ~count:40 seed_gen (fun seed ->
        let a = net seed ~n:3 in
        let again = net seed ~n:3 in
        let other = net seed ~n:4 in
        (* equal pair: same build, both keys agree *)
        Memo.structural_equal a again
        && Memo.structural_hash a = Memo.structural_hash again
        && Memo.digest_key a = Memo.digest_key again
        (* unequal pair (different stage counts): both keys separate *)
        && (not (Memo.structural_equal a other))
        && Memo.digest_key a <> Memo.digest_key other);
    qcheck "classical networks key distinctly" ~count:8
      QCheck.(make ~print:string_of_int Gen.(int_range 3 5))
      (fun n ->
        let nets = List.map snd (all_classical ~n) in
        let rec pairs = function
          | [] -> true
          | g :: rest ->
              List.for_all
                (fun h ->
                  Mineq.Mi_digraph.equal g h = Memo.structural_equal g h
                  && ((not (Memo.structural_equal g h))
                     || Memo.structural_hash g = Memo.structural_hash h))
                rest
              && pairs rest
        in
        pairs nets)
  ]

let test_memo_parallel () =
  let m = Memo.create () in
  let nets = all_classical ~n:4 in
  let table = Batch.pairwise ~jobs:4 ~memo:m nets in
  check_int "full table" 36 (List.length table);
  check_true "every cell equivalent" (List.for_all (fun (_, _, e) -> e) table);
  check_int "six distinct networks computed once each" 6 (Memo.misses m);
  check_true "the other 66 probes hit" (Memo.hits m = 66)

let test_memo_fingerprint_keying () =
  (* The fingerprint keying identifies the whole isomorphism class:
     the six classical networks at a given n are pairwise isomorphic,
     so one miss computes for all of them, where the structural
     keying misses once per network. *)
  let nets = List.map snd (all_classical ~n:4) in
  let mf = Memo.create ~keying:Memo.Fingerprint () in
  List.iter
    (fun g -> ignore (Memo.find_or_compute mf g Mineq.Equivalence.by_characterization))
    nets;
  check_int "one miss for the whole class" 1 (Memo.misses mf);
  check_int "the other five probes hit" 5 (Memo.hits mf);
  check_int "one stored entry" 1 (Memo.size mf);
  check_bool "keying is reported" true (Memo.keying mf = Memo.Fingerprint);
  check_bool "default keying is structural" true (Memo.keying (Memo.create ()) = Memo.Structural)

let memo_keying_props =
  [ qcheck "keyings agree on iso-invariant verdicts" ~count:15 seed_gen (fun seed ->
        (* The same probe mix — random draws plus a relabelled copy of
           each — through both keyings: every returned verdict must be
           identical (by_characterization is iso-invariant), and the
           fingerprint keying must hit at least as often (its key
           identifies strictly coarser classes). *)
        let rng = rng_of seed in
        let draws = List.init 6 (fun _ -> Mineq.Link_spec.random_pipid_network rng ~n:3) in
        let probes =
          draws @ List.map (fun g -> Mineq.Counterexample.relabelled_equivalent rng g) draws
        in
        let run keying =
          let m = Memo.create ~keying () in
          let vs =
            List.map
              (fun g -> Memo.find_or_compute m g Mineq.Equivalence.by_characterization)
              probes
          in
          (vs, Memo.hits m)
        in
        let vs_s, hits_s = run Memo.Structural in
        let vs_f, hits_f = run Memo.Fingerprint in
        List.for_all2
          (fun (a : Mineq.Equivalence.verdict) b ->
            a.Mineq.Equivalence.equivalent = b.Mineq.Equivalence.equivalent
            && a.Mineq.Equivalence.banyan = b.Mineq.Equivalence.banyan)
          vs_s vs_f
        && hits_f >= hits_s)
  ]

let memo_export_props =
  [ qcheck "export/fold/import agree with the shard counters" ~count:20 seed_gen
      (fun seed ->
        (* Warm a cache of either keying, then check the consistent
           cut: export length and fold count equal the per-shard size
           sum, a fresh same-keying cache adopts every entry (and then
           serves them without recomputation), re-import is a no-op
           (resident entries win), and a mismatched keying adopts
           nothing. *)
        let rng = rng_of seed in
        let keying = if seed land 1 = 0 then Memo.Structural else Memo.Fingerprint in
        let other =
          match keying with
          | Memo.Structural -> Memo.Fingerprint
          | Memo.Fingerprint -> Memo.Structural
        in
        let m = Memo.create ~keying () in
        let nets = List.init 8 (fun _ -> Mineq.Link_spec.random_pipid_network rng ~n:3) in
        List.iter
          (fun g -> ignore (Memo.find_or_compute m g Mineq.Equivalence.by_characterization))
          nets;
        let entries = Memo.export m in
        let folded = Memo.fold (fun acc _ -> acc + 1) 0 m in
        let fresh = Memo.create ~keying () in
        let adopted = Memo.import fresh entries in
        let reprobed =
          List.for_all
            (fun g ->
              let direct = Mineq.Equivalence.by_characterization g in
              let cached =
                Memo.find_or_compute fresh g (fun _ -> Alcotest.fail "recomputed")
              in
              cached.Mineq.Equivalence.equivalent = direct.Mineq.Equivalence.equivalent
              && cached.Mineq.Equivalence.banyan = direct.Mineq.Equivalence.banyan)
            nets
        in
        Array.length entries = Memo.size m
        && folded = Memo.size m
        && adopted = Memo.size m
        && Memo.size fresh = Memo.size m
        && reprobed
        && Memo.import fresh entries = 0
        && Memo.import (Memo.create ~keying:other ()) entries = 0)
  ]

let memo_suite =
  [ quick "verdict caching" test_memo_verdicts;
    quick "structural keys" test_memo_key_structural;
    quick "shared across parallel workers" test_memo_parallel;
    quick "fingerprint keying collapses iso classes" test_memo_fingerprint_keying
  ]
  @ memo_key_props @ memo_keying_props @ memo_export_props

(* batch --------------------------------------------------------------- *)

let classified_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         x.Mineq.Census.members = y.Mineq.Census.members
         && Mineq.Mi_digraph.equal x.Mineq.Census.representative
              y.Mineq.Census.representative)
       a b

let random_tagged_networks seed =
  (* A mix of Banyans, classical networks and duplicates, tagged by
     position — enough class structure to exercise the grouping. *)
  let rng = rng_of seed in
  let nets =
    List.filter_map Fun.id
      (List.init 14 (fun _ -> Mineq.Counterexample.random_banyan rng ~n:3 ~attempts:200))
    @ [ Mineq.Classical.network Omega ~n:3; Mineq.Baseline.network 3 ]
  in
  List.mapi (fun i g -> (g, i)) nets

let test_survey_matches_serial () =
  Alcotest.(check bool)
    "survey rows identical at jobs 1 vs 4" true
    (Batch.survey ~jobs:1 ~n:4 = Batch.survey ~jobs:4 ~n:4)

let batch_props =
  [ qcheck "classify matches the sequential Census oracle" ~count:6 seed_gen (fun seed ->
        let tagged = random_tagged_networks seed in
        classified_equal (Mineq.Census.classify tagged) (Batch.classify ~jobs:4 tagged));
    qcheck "sample_census is jobs-invariant" ~count:4 seed_gen (fun seed ->
        let census jobs = Batch.sample_census ~jobs ~root:seed ~n:3 ~samples:25 ~attempts:200 in
        classified_equal (census 1) (census 4)
        && List.for_all2
             (fun a b -> a.Mineq.Census.members = b.Mineq.Census.members)
             (census 1) (census 2));
    qcheck "census and sweep are stealing-invariant on real domains" ~count:3 seed_gen
      (fun seed ->
        (* The ~jobs wrappers clamp to the recommended width, which on
           a single-core host means no domains at all — so drive the
           _in variants through an unclamped 4-domain pool to pin the
           bit-identical guarantee under actual stealing anywhere. *)
        let census_seq = Batch.sample_census ~jobs:1 ~root:seed ~n:3 ~samples:25 ~attempts:200 in
        let c = Mineq.Cascade.of_mi_digraph (Mineq.Baseline.network 4) in
        let sweep_seq = Batch.fault_survival ~jobs:1 ~root:seed c ~faults:[ 1; 2 ] ~samples:120 in
        Pool.run ~clamp:false ~jobs:4 (fun pool ->
            classified_equal census_seq
              (Batch.sample_census_in pool ~root:seed ~n:3 ~samples:25 ~attempts:200)
            && sweep_seq
               = Batch.fault_survival_in pool ~root:seed c ~faults:[ 1; 2 ] ~samples:120));
    qcheck "fault survival is jobs-invariant" ~count:4 seed_gen (fun seed ->
        let c = Mineq.Cascade.of_mi_digraph (Mineq.Baseline.network 4) in
        let sweep jobs =
          Batch.fault_survival ~jobs ~root:seed c ~faults:[ 0; 1; 2; 4 ] ~samples:150
        in
        sweep 1 = sweep 2 && sweep 1 = sweep 4);
    qcheck "simulator replications are jobs-invariant" ~count:4 seed_gen (fun seed ->
        let g = Mineq.Classical.network Omega ~n:4 in
        let runs jobs = Batch.simulate_runs ~jobs ~root:seed ~replications:5 g in
        runs 1 = runs 4);
    qcheck "replicate summarizes identically across jobs" ~count:4 seed_gen (fun seed ->
        let g = Mineq.Classical.network Omega ~n:4 in
        let metric rng =
          Mineq_sim.Network_sim.throughput (Mineq_sim.Network_sim.run rng g)
        in
        let summary jobs = Batch.replicate ~jobs ~root:seed ~replications:5 metric in
        Mineq_sim.Summary.mean (summary 1) = Mineq_sim.Summary.mean (summary 4)
        && Mineq_sim.Summary.stddev (summary 1) = Mineq_sim.Summary.stddev (summary 4))
  ;
    qcheck "tally is jobs-invariant" ~count:6 seed_gen (fun seed ->
        (* each task throws 40 seeded darts at 8 bins; totals must not
           depend on the worker count *)
        let body rng bins =
          for _ = 1 to 40 do
            let k = Random.State.int rng (Array.length bins) in
            bins.(k) <- bins.(k) + 1
          done
        in
        let run jobs = Batch.tally ~jobs ~root:seed ~tasks:7 ~bins:8 body in
        let a = run 1 in
        a = run 3
        && a = run 4
        && Array.fold_left ( + ) 0 a = 7 * 40)
  ]

let batch_suite = quick "survey parallel = survey serial" test_survey_matches_serial :: batch_props

(* stream census ------------------------------------------------------- *)

module Stream = Mineq_engine.Stream_census

let summary_equal (a : Stream.summary) (b : Stream.summary) =
  a.Stream.specs = b.Stream.specs
  && a.Stream.buckets = b.Stream.buckets
  && a.Stream.collisions = b.Stream.collisions
  && List.length a.Stream.classes = List.length b.Stream.classes
  && List.for_all2
       (fun (x : Stream.class_row) (y : Stream.class_row) ->
         x.Stream.first_index = y.Stream.first_index
         && x.Stream.count = y.Stream.count
         && x.Stream.baseline = y.Stream.baseline
         && Option.is_some (Mineq.Iso_min.find x.Stream.representative y.Stream.representative))
       a.Stream.classes b.Stream.classes

let test_stream_generators () =
  List.iter
    (fun gen ->
      let s = Stream.run ~jobs:1 ~root:11 ~n:3 ~specs:120 ~generator:gen in
      let counted =
        List.fold_left (fun acc (c : Stream.class_row) -> acc + c.Stream.count) 0
          s.Stream.classes
      in
      check_int
        (Printf.sprintf "every %s spec lands in a class" (Stream.generator_name gen))
        s.Stream.specs counted;
      check_true "buckets never exceed classes"
        (s.Stream.buckets <= List.length s.Stream.classes);
      check_int "collisions are the bucket deficit"
        (List.length s.Stream.classes - s.Stream.buckets)
        s.Stream.collisions;
      (* first_index strictly increases: first-appearance order. *)
      let rec increasing = function
        | (a : Stream.class_row) :: (b : Stream.class_row) :: rest ->
            a.Stream.first_index < b.Stream.first_index && increasing (b :: rest)
        | _ -> true
      in
      check_true "classes in first-appearance order" (increasing s.Stream.classes))
    Stream.all_generators

let test_stream_affine_baseline () =
  (* Affine (independent-connection) Banyans are the paper's Theorem 3
     territory: the Baseline class must show up in a modest stream. *)
  let s = Stream.run ~jobs:1 ~root:3 ~n:3 ~specs:60 ~generator:Stream.Affine in
  check_true "baseline class present in an affine stream"
    (List.exists (fun (c : Stream.class_row) -> c.Stream.baseline) s.Stream.classes)

let test_stream_generator_names () =
  List.iter
    (fun gen ->
      check_bool
        (Printf.sprintf "generator name %S round-trips" (Stream.generator_name gen))
        true
        (Stream.generator_of_string (Stream.generator_name gen) = Some gen))
    Stream.all_generators;
  check_bool "unknown generator rejected" true (Stream.generator_of_string "oops" = None)

let stream_props =
  [ qcheck "stream census is jobs-invariant" ~count:5 seed_gen (fun seed ->
        let run jobs = Stream.run ~jobs ~root:seed ~n:3 ~specs:150 ~generator:Stream.Pipid in
        summary_equal (run 1) (run 2) && summary_equal (run 1) (run 4));
    qcheck "stream census is stealing-invariant on real domains" ~count:3 seed_gen
      (fun seed ->
        let serial = Stream.run ~jobs:1 ~root:seed ~n:3 ~specs:150 ~generator:Stream.Random_links in
        Pool.run ~clamp:false ~jobs:4 (fun pool ->
            summary_equal serial
              (Stream.run_in pool ~root:seed ~n:3 ~specs:150 ~generator:Stream.Random_links)));
    qcheck "stream agrees with the serial bucketed classify" ~count:4 seed_gen (fun seed ->
        (* Regenerate the identical spec stream and classify it through
           Census.classify: class count and member counts must match. *)
        let specs = 80 in
        let tagged =
          List.init specs (fun i ->
              (Mineq.Link_spec.random_pipid_network (Seeds.derive ~root:seed i) ~n:3, i))
        in
        let serial = Mineq.Census.classify tagged in
        let s = Stream.run ~jobs:1 ~root:seed ~n:3 ~specs ~generator:Stream.Pipid in
        List.length serial = List.length s.Stream.classes
        && List.for_all2
             (fun (c : _ Mineq.Census.classified) (r : Stream.class_row) ->
               List.length c.Mineq.Census.members = r.Stream.count
               && List.hd c.Mineq.Census.members = r.Stream.first_index)
             serial s.Stream.classes)
  ]

let stream_suite =
  [ quick "generators stream and count consistently" test_stream_generators;
    quick "affine stream finds the baseline class" test_stream_affine_baseline;
    quick "generator names round-trip" test_stream_generator_names
  ]
  @ stream_props
