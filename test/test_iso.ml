open Helpers
module D = Mineq_graph.Digraph
module Iso = Mineq_graph.Iso
module Perm = Mineq_perm.Perm

let cycle n = D.create ~vertices:n (List.init n (fun i -> (i, (i + 1) mod n)))

let test_trivial () =
  let g = cycle 5 in
  check_true "graph isomorphic to itself" (Iso.are_isomorphic g g);
  (match Iso.find_isomorphism g g with
  | None -> Alcotest.fail "self isomorphism must exist"
  | Some m -> check_true "certificate verifies" (Iso.is_isomorphism g g m))

let test_relabelled () =
  let g = D.create ~vertices:5 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ] in
  let p = Perm.of_array [| 4; 2; 0; 1; 3 |] in
  let h = D.map_vertices g (Perm.apply p) in
  match Iso.find_isomorphism g h with
  | None -> Alcotest.fail "relabelled graph must be isomorphic"
  | Some m -> check_true "certificate verifies" (Iso.is_isomorphism g h m)

let test_non_isomorphic () =
  check_false "cycle vs path"
    (Iso.are_isomorphic (cycle 4) (D.create ~vertices:4 [ (0, 1); (1, 2); (2, 3) ]));
  check_false "different sizes" (Iso.are_isomorphic (cycle 3) (cycle 4));
  (* Same degree sequences, different structure: two directed
     triangles vs one directed hexagon. *)
  let two_triangles =
    D.create ~vertices:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]
  in
  check_false "2C3 vs C6" (Iso.are_isomorphic two_triangles (cycle 6))

let test_orientation_matters () =
  (* A path in each direction: isomorphic (map reverses), but a
     "source-sink" pair is not isomorphic to "two sources". *)
  let fork = D.create ~vertices:3 [ (0, 1); (0, 2) ] in
  let merge = D.create ~vertices:3 [ (1, 0); (2, 0) ] in
  check_false "fork vs merge" (Iso.are_isomorphic fork merge)

let test_parallel_arc_multiplicity () =
  let double = D.create ~vertices:2 [ (0, 1); (0, 1) ] in
  let plus_loopless = D.create ~vertices:2 [ (0, 1) ] in
  check_false "multiplicity distinguishes" (Iso.are_isomorphic double plus_loopless);
  let double2 = D.create ~vertices:2 [ (0, 1); (0, 1) ] in
  check_true "equal multigraphs isomorphic" (Iso.are_isomorphic double double2)

let test_refinement_invariant () =
  let g = cycle 6 in
  let hist = Iso.colour_histogram g in
  (* A directed cycle is vertex-transitive: single colour class. *)
  check_int "one colour class" 1 (List.length hist);
  let fork = D.create ~vertices:3 [ (0, 1); (0, 2) ] in
  check_int "fork has two classes" 2 (List.length (Iso.colour_histogram fork))

let test_automorphisms () =
  check_int "directed cycle has n rotations" 5 (Iso.count_automorphisms (cycle 5));
  let fork = D.create ~vertices:3 [ (0, 1); (0, 2) ] in
  check_int "fork has leaf swap" 2 (Iso.count_automorphisms fork);
  let rigid = D.create ~vertices:3 [ (0, 1); (1, 2) ] in
  check_int "directed path is rigid" 1 (Iso.count_automorphisms rigid)

let test_limit () =
  (* With a tiny node limit the search must bail out with Failure. *)
  let g = cycle 12 in
  let h = D.map_vertices g (fun v -> (v + 5) mod 12) in
  match Iso.find_isomorphism ~limit:2 g h with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected node-limit failure"

let props =
  let gen =
    QCheck.make
      ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
      QCheck.Gen.(pair (int_range 2 12) (int_bound 100000))
  in
  let random_graph (n, seed) =
    let rng = rng_of seed in
    let m = Random.State.int rng (2 * n) in
    D.create ~vertices:n
      (List.init m (fun _ -> (Random.State.int rng n, Random.State.int rng n)))
  in
  [ qcheck "relabelling preserves isomorphism" gen (fun (n, seed) ->
        let g = random_graph (n, seed) in
        let p = Perm.random (rng_of (seed + 1)) n in
        let h = D.map_vertices g (Perm.apply p) in
        match Iso.find_isomorphism g h with
        | None -> false
        | Some m -> Iso.is_isomorphism g h m);
    qcheck "adding an arc breaks isomorphism" gen (fun (n, seed) ->
        let g = random_graph (n, seed) in
        let rng = rng_of (seed + 2) in
        let u = Random.State.int rng n and v = Random.State.int rng n in
        let h = D.union g (D.create ~vertices:n [ (u, v) ]) in
        not (Iso.are_isomorphic g h));
    qcheck "isomorphism is symmetric" gen (fun (n, seed) ->
        let g = random_graph (n, seed) in
        let h = random_graph (n, seed + 3) in
        Iso.are_isomorphic g h = Iso.are_isomorphic h g)
  ]

let suite =
  [ quick "self isomorphism" test_trivial;
    quick "relabelled graphs" test_relabelled;
    quick "non-isomorphic graphs" test_non_isomorphic;
    quick "orientation matters" test_orientation_matters;
    quick "parallel arc multiplicity" test_parallel_arc_multiplicity;
    quick "colour refinement" test_refinement_invariant;
    quick "automorphism counting" test_automorphisms;
    quick "node limit" test_limit
  ]
  @ props
