open Helpers
module R = Mineq.Routing
module M = Mineq.Mi_digraph

let baseline = Mineq.Baseline.network

let test_route_endpoints () =
  let g = baseline 4 in
  match R.route g ~input:5 ~output:11 with
  | None -> Alcotest.fail "banyan network routes every pair"
  | Some p ->
      check_int "input recorded" 5 p.R.input;
      check_int "output recorded" 11 p.R.output;
      check_int "path length" 4 (Array.length p.R.cells);
      check_int "starts at input cell" 2 p.R.cells.(0);
      check_int "ends at output cell" 5 p.R.cells.(3);
      check_int "last port is output parity" 1 p.R.ports.(3)

let test_route_follows_arcs () =
  let g = Mineq.Classical.network Omega ~n:4 in
  for input = 0 to 15 do
    for output = 0 to 15 do
      match R.route g ~input ~output with
      | None -> Alcotest.fail "omega routes every pair"
      | Some p ->
          for s = 0 to 2 do
            let cf, cg = M.children g ~stage:(s + 1) p.R.cells.(s) in
            let expected = if p.R.ports.(s) = 0 then cf else cg in
            check_int "step follows chosen port" expected p.R.cells.(s + 1)
          done
    done
  done

let test_route_all_from_consistent () =
  let g = Mineq.Classical.network Flip ~n:4 in
  for input = 0 to 15 do
    let all = R.route_all_from g ~input in
    check_int "one path per output" 16 (Array.length all);
    Array.iteri
      (fun output p ->
        match (p, R.route g ~input ~output) with
        | Some p1, Some p2 ->
            Alcotest.(check (array int)) "same cells" p2.R.cells p1.R.cells;
            Alcotest.(check (array int)) "same ports" p2.R.ports p1.R.ports
        | None, None -> ()
        | _ -> Alcotest.fail "route and route_all_from disagree")
      all
  done

let test_port_word_is_destination_tag () =
  (* On a delta network the port word depends only on the output. *)
  let g = Mineq.Classical.network Omega ~n:4 in
  match R.delta_schedule g with
  | None -> Alcotest.fail "omega is delta"
  | Some schedule ->
      for output = 0 to 15 do
        for input = 0 to 15 do
          match R.route g ~input ~output with
          | None -> Alcotest.fail "route exists"
          | Some p -> check_int "schedule matches" schedule.(output) (R.port_word p)
        done
      done

let test_classical_delta_bidelta () =
  List.iter
    (fun (name, g) ->
      check_true (name ^ " delta") (R.is_delta g);
      check_true (name ^ " bidelta") (R.is_bidelta g))
    (all_classical ~n:4)

let test_baseline_tag_is_destination_address () =
  (* In the Baseline network the port word spells the destination
     terminal: stage-i choice = destination bit n-i. *)
  let n = 4 in
  let g = baseline n in
  match R.delta_schedule g with
  | None -> Alcotest.fail "baseline is delta"
  | Some schedule ->
      for output = 0 to (1 lsl n) - 1 do
        check_int "port word = output address" output schedule.(output)
      done

let test_destination_tag_table () =
  let g = baseline 3 in
  match R.destination_tag_table g with
  | None -> Alcotest.fail "baseline has a tag table"
  | Some table ->
      check_int "one row per stage" 3 (Array.length table);
      for output = 0 to 7 do
        (* Walk the table and confirm delivery. *)
        match R.route g ~input:0 ~output with
        | None -> Alcotest.fail "route exists"
        | Some p ->
            Array.iteri
              (fun s port -> check_int "table entry matches path" port table.(s).(output))
              p.R.ports
      done

let test_non_delta_network () =
  (* A Banyan network that is not delta: found by seeded search over
     buddy networks (buddy does not imply delta). *)
  let rng = rng_of 80 in
  let rec find attempts =
    if attempts = 0 then None
    else
      match Mineq.Counterexample.random_buddy_banyan rng ~n:4 ~attempts:2000 with
      | None -> None
      | Some g -> if R.is_delta g then find (attempts - 1) else Some g
  in
  match find 20 with
  | None -> Alcotest.fail "expected a non-delta Banyan instance"
  | Some g ->
      check_true "banyan but not delta" (Mineq.Banyan.is_banyan g && not (R.is_delta g));
      check_true "no schedule" (Option.is_none (R.delta_schedule g))

let test_link_loads_single_path () =
  let g = baseline 3 in
  let report = R.link_loads g [ (0, 7) ] in
  check_int "one path routed" 1 report.paths_routed;
  check_int "load 1" 1 report.max_link_load;
  check_int "no conflicts" 0 report.conflicted_links

let test_link_loads_conflict () =
  (* Inputs 0 and 1 share the first cell; outputs 0 and 1 share the
     last cell: their paths coincide on every inter-stage link. *)
  let g = baseline 4 in
  let report = R.link_loads g [ (0, 0); (1, 1) ] in
  check_int "both routed" 2 report.paths_routed;
  check_int "overlap" 2 report.max_link_load;
  check_true "conflicted links" (report.conflicted_links > 0);
  check_false "not admissible" (R.is_admissible g [ (0, 0); (1, 1) ])

let test_admissible_pairs () =
  let g = baseline 4 in
  (* Route two paths that provably diverge at stage 1: outputs in
     different halves... inputs in different first cells and outputs in
     different last cells with distinct port words. *)
  check_true "disjoint pair admissible" (R.is_admissible g [ (0, 0); (15, 15) ])

let test_identity_smallest_widths () =
  (* Edge widths n = 2 and 3: identity pairs route with the expected
     endpoints on every classical network. *)
  List.iter
    (fun n ->
      List.iter
        (fun (name, g) ->
          let terminals = M.inputs g in
          for i = 0 to terminals - 1 do
            match R.route g ~input:i ~output:i with
            | None -> Alcotest.fail (name ^ ": identity pair must route")
            | Some p ->
                check_int (name ^ " identity starts") (i / 2) p.R.cells.(0);
                check_int (name ^ " identity ends") (i / 2) p.R.cells.(n - 1);
                check_int (name ^ " exit parity") (i land 1) p.R.ports.(n - 1)
          done)
        (all_classical ~n))
    [ 2; 3 ]

let test_bit_reversal_smallest_widths () =
  List.iter
    (fun n ->
      let terminals = 1 lsl n in
      let bitrev i =
        let r = ref 0 in
        for b = 0 to n - 1 do
          if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (n - 1 - b))
        done;
        !r
      in
      List.iter
        (fun (name, g) ->
          for i = 0 to terminals - 1 do
            match R.route g ~input:i ~output:(bitrev i) with
            | None -> Alcotest.fail (name ^ ": bit-reversal pair must route")
            | Some p ->
                check_int (name ^ " reaches reversed address") (bitrev i) p.R.output;
                check_int (name ^ " lands on reversed cell") (bitrev i / 2)
                  p.R.cells.(n - 1)
          done)
        (all_classical ~n))
    [ 2; 3 ]

let test_bad_terminals () =
  let g = baseline 3 in
  Alcotest.check_raises "bad input" (Invalid_argument "Routing: bad input") (fun () ->
      ignore (R.route g ~input:8 ~output:0));
  Alcotest.check_raises "bad output" (Invalid_argument "Routing: bad output") (fun () ->
      ignore (R.route g ~input:0 ~output:(-1)))

let props =
  [ qcheck "every pair routes on Banyan PIPID networks" ~count:30 n_and_seed
      (fun (n, seed) ->
        let rng = rng_of seed in
        let g = random_banyan_pipid rng ~n in
        let terminals = M.inputs g in
        let input = Random.State.int rng terminals in
        let output = Random.State.int rng terminals in
        match R.route g ~input ~output with
        | None -> false
        | Some p ->
            p.R.cells.(0) = input / 2 && p.R.cells.(n - 1) = output / 2);
    qcheck "PIPID Banyan networks are delta (bit-directed routing)" ~count:30 n_and_seed
      (fun (n, seed) ->
        R.is_delta (random_banyan_pipid (rng_of seed) ~n));
    qcheck "PIPID Banyan networks are bidelta" ~count:15
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 2 5) (int_bound 100000)))
      (fun (n, seed) -> R.is_bidelta (random_banyan_pipid (rng_of seed) ~n));
    qcheck "route in the reverse network retraces the cells" ~count:25 n_and_seed
      (fun (n, seed) ->
        let rng = rng_of seed in
        let nets = all_classical ~n in
        let name, g = List.nth nets (Random.State.int rng (List.length nets)) in
        let terminals = M.inputs g in
        let input = Random.State.int rng terminals in
        let output = Random.State.int rng terminals in
        match (R.route g ~input ~output, R.route (M.reverse g) ~input:output ~output:input)
        with
        | Some p, Some q ->
            (* stage k of G^-1 is stage n+1-k of G: the cell sequence
               comes back reversed *)
            Array.for_all2 ( = ) q.R.cells
              (Array.init n (fun s -> p.R.cells.(n - 1 - s)))
        | _ -> QCheck.Test.fail_reportf "%s: both directions must route" name);
    qcheck "link loads of a full permutation: every path routed" ~count:20 n_and_seed
      (fun (n, seed) ->
        let rng = rng_of seed in
        let g = random_banyan_pipid rng ~n in
        let terminals = M.inputs g in
        let p = Mineq_perm.Perm.random rng terminals in
        let pairs = List.init terminals (fun i -> (i, Mineq_perm.Perm.apply p i)) in
        (R.link_loads g pairs).paths_routed = terminals)
  ]

let suite =
  [ quick "route endpoints" test_route_endpoints;
    quick "route follows arcs" test_route_follows_arcs;
    quick "route_all_from consistency" test_route_all_from_consistent;
    quick "port word is a destination tag" test_port_word_is_destination_tag;
    quick "classical delta/bidelta" test_classical_delta_bidelta;
    quick "baseline tag spells the address" test_baseline_tag_is_destination_address;
    quick "destination tag table" test_destination_tag_table;
    quick "non-delta Banyan exists" test_non_delta_network;
    quick "link loads single path" test_link_loads_single_path;
    quick "link loads conflict" test_link_loads_conflict;
    quick "admissible pairs" test_admissible_pairs;
    quick "identity at smallest widths" test_identity_smallest_widths;
    quick "bit reversal at smallest widths" test_bit_reversal_smallest_widths;
    quick "bad terminals rejected" test_bad_terminals
  ]
  @ props
