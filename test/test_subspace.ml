open Helpers
module Bv = Mineq_bitvec.Bv
module S = Mineq_bitvec.Subspace

let test_zero_full () =
  let z = S.zero ~width:4 in
  check_int "zero dim" 0 (S.dim z);
  check_int "zero cardinal" 1 (S.cardinal z);
  check_true "zero contains 0" (S.mem z 0);
  check_false "zero excludes 1" (S.mem z 1);
  let f = S.full ~width:4 in
  check_int "full dim" 4 (S.dim f);
  check_int "full cardinal" 16 (S.cardinal f);
  check_true "full contains all" (List.for_all (S.mem f) (List.init 16 (fun i -> i)))

let test_span () =
  let s = S.of_generators ~width:4 [ 0b0011; 0b0110; 0b0101 ] in
  (* Third generator is the sum of the first two. *)
  check_int "dependent generators collapse" 2 (S.dim s);
  check_true "member" (S.mem s 0b0101);
  check_false "non-member" (S.mem s 0b1000);
  check_int "elements count" 4 (List.length (S.elements s));
  Alcotest.(check (list int)) "elements sorted" [ 0; 0b0011; 0b0101; 0b0110 ] (S.elements s)

let test_equal_canonical () =
  let a = S.of_generators ~width:3 [ 0b011; 0b101 ] in
  let b = S.of_generators ~width:3 [ 0b110; 0b011 ] in
  check_true "same span, same representation" (S.equal a b);
  check_false "different spans differ" (S.equal a (S.of_generators ~width:3 [ 0b001 ]))

let test_subset_sum_intersection () =
  let a = S.of_generators ~width:4 [ 0b0001 ] in
  let b = S.of_generators ~width:4 [ 0b0001; 0b0010 ] in
  check_true "subset" (S.subset a b);
  check_false "not subset" (S.subset b a);
  check_true "sum" (S.equal (S.sum a b) b);
  check_true "intersection" (S.equal (S.intersection a b) a);
  let c = S.of_generators ~width:4 [ 0b0010; 0b0100 ] in
  check_int "intersection dim" 1 (S.dim (S.intersection b c));
  check_true "intersection member" (S.mem (S.intersection b c) 0b0010)

let test_complement () =
  let s = S.of_generators ~width:4 [ 0b0011; 0b0110 ] in
  let comp = S.complement_basis s in
  check_int "complement size" 2 (List.length comp);
  let full = S.sum s (S.of_generators ~width:4 comp) in
  check_int "together they span" 4 (S.dim full)

let test_cosets () =
  let s = S.of_generators ~width:3 [ 0b011 ] in
  check_true "same coset" (S.same_coset s 0b100 0b111);
  check_false "different coset" (S.same_coset s 0b100 0b101);
  check_int "coset representative is canonical"
    (S.coset_of s 0b100) (S.coset_of s 0b111)

let test_is_translate () =
  let s = S.of_generators ~width:3 [ 0b011 ] in
  check_true "coset is translate" (S.is_translate s [ 0b100; 0b111 ]);
  check_true "subspace itself is translate" (S.is_translate s [ 0b000; 0b011 ]);
  check_false "wrong size" (S.is_translate s [ 0b100 ]);
  check_false "not a coset" (S.is_translate s [ 0b100; 0b101 ]);
  check_false "empty set" (S.is_translate s [])

let test_translate_of_set () =
  let a = [ 0b000; 0b011 ] and b = [ 0b100; 0b111 ] in
  (match S.translate_of_set ~width:3 a b with
  | Some v ->
      check_true "offset translates a onto b"
        (List.sort compare (List.map (fun x -> x lxor v) a) = List.sort compare b)
  | None -> Alcotest.fail "expected a translate");
  check_true "non-translate detected"
    (Option.is_none (S.translate_of_set ~width:3 [ 0b000; 0b011 ] [ 0b100; 0b101 ]));
  check_true "size mismatch detected"
    (Option.is_none (S.translate_of_set ~width:3 [ 0b000 ] [ 0b100; 0b101 ]));
  (match S.translate_of_set ~width:3 [] [] with
  | Some 0 -> ()
  | _ -> Alcotest.fail "empty sets translate by 0")

let test_add_vector () =
  let s = S.zero ~width:4 in
  let s1 = S.add_vector s 0b0101 in
  check_int "grown" 1 (S.dim s1);
  check_true "vector added" (S.mem s1 0b0101);
  check_int "adding member is no-op" 1 (S.dim (S.add_vector s1 0b0101))

let props =
  let gen =
    QCheck.make
      ~print:(fun (w, s) -> Printf.sprintf "w=%d seed=%d" w s)
      QCheck.Gen.(pair (int_range 1 6) (int_bound 100000))
  in
  [ qcheck "span contains generators" gen (fun (w, seed) ->
        let rng = rng_of seed in
        let gens = List.init 3 (fun _ -> Random.State.int rng (1 lsl w)) in
        let s = S.of_generators ~width:w gens in
        List.for_all (S.mem s) gens);
    qcheck "membership closed under xor" gen (fun (w, seed) ->
        let rng = rng_of seed in
        let gens = List.init 3 (fun _ -> Random.State.int rng (1 lsl w)) in
        let s = S.of_generators ~width:w gens in
        let els = S.elements s in
        List.for_all (fun a -> List.for_all (fun b -> S.mem s (a lxor b)) els) els);
    qcheck "cardinal = elements length" gen (fun (w, seed) ->
        let rng = rng_of seed in
        let gens = List.init 2 (fun _ -> Random.State.int rng (1 lsl w)) in
        let s = S.of_generators ~width:w gens in
        S.cardinal s = List.length (S.elements s));
    qcheck "complement is complement" gen (fun (w, seed) ->
        let rng = rng_of seed in
        let gens = List.init 2 (fun _ -> Random.State.int rng (1 lsl w)) in
        let s = S.of_generators ~width:w gens in
        let comp = S.complement_basis s in
        S.dim s + List.length comp = w
        && S.dim (S.sum s (S.of_generators ~width:w comp)) = w);
    qcheck "every coset is a translate" gen (fun (w, seed) ->
        let rng = rng_of seed in
        let gens = List.init 2 (fun _ -> Random.State.int rng (1 lsl w)) in
        let s = S.of_generators ~width:w gens in
        let v = Random.State.int rng (1 lsl w) in
        S.is_translate s (List.map (fun x -> x lxor v) (S.elements s)))
  ]

let suite =
  [ quick "zero and full" test_zero_full;
    quick "span and elements" test_span;
    quick "canonical equality" test_equal_canonical;
    quick "subset/sum/intersection" test_subset_sum_intersection;
    quick "complement basis" test_complement;
    quick "cosets" test_cosets;
    quick "is_translate" test_is_translate;
    quick "translate_of_set" test_translate_of_set;
    quick "add_vector" test_add_vector
  ]
  @ props
