open Helpers
module Dsu = Mineq_graph.Dsu
module D = Mineq_graph.Digraph

let test_initial () =
  let t = Dsu.create 5 in
  check_int "initial sets" 5 (Dsu.set_count t);
  check_false "initially separate" (Dsu.same t 0 4);
  check_int "singleton size" 1 (Dsu.set_size t 3)

let test_union () =
  let t = Dsu.create 5 in
  check_true "first union merges" (Dsu.union t 0 1);
  check_false "repeat union is no-op" (Dsu.union t 1 0);
  check_true "same after union" (Dsu.same t 0 1);
  check_int "sets decreased" 4 (Dsu.set_count t);
  check_int "merged size" 2 (Dsu.set_size t 0);
  ignore (Dsu.union t 2 3);
  ignore (Dsu.union t 0 3);
  check_int "chained size" 4 (Dsu.set_size t 1);
  check_true "transitivity" (Dsu.same t 1 2)

let test_find_canonical () =
  let t = Dsu.create 6 in
  ignore (Dsu.union t 0 1);
  ignore (Dsu.union t 1 2);
  ignore (Dsu.union t 2 3);
  let r = Dsu.find t 0 in
  List.iter (fun x -> check_int "same representative" r (Dsu.find t x)) [ 1; 2; 3 ]

let test_components_of_digraph () =
  let g = D.create ~vertices:6 [ (0, 1); (1, 2); (4, 3) ] in
  let t = Dsu.components_of_digraph g in
  check_int "three components" 3 (Dsu.set_count t);
  check_true "0 with 2" (Dsu.same t 0 2);
  check_true "3 with 4" (Dsu.same t 3 4);
  check_false "5 isolated" (Dsu.same t 5 0)

let props =
  [ qcheck "agrees with BFS component count"
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 1 30) (int_bound 100000)))
      (fun (n, seed) ->
        let rng = rng_of seed in
        let m = Random.State.int rng (2 * n) in
        let g =
          D.create ~vertices:n
            (List.init m (fun _ -> (Random.State.int rng n, Random.State.int rng n)))
        in
        Dsu.set_count (Dsu.components_of_digraph g) = Mineq_graph.Traverse.component_count g);
    qcheck "window component counts: DSU = BFS" ~count:40 n_and_seed (fun (n, seed) ->
        let rng = rng_of seed in
        let g = Mineq.Link_spec.random_network rng ~n in
        let lo = 1 + Random.State.int rng n in
        let hi = lo + Random.State.int rng (n - lo + 1) in
        Mineq.Properties.component_count g ~lo ~hi
        = Mineq.Properties.component_count_dsu g ~lo ~hi);
    qcheck "set sizes sum to n"
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let rng = rng_of seed in
        let n = 2 + Random.State.int rng 30 in
        let t = Dsu.create n in
        for _ = 1 to n do
          ignore (Dsu.union t (Random.State.int rng n) (Random.State.int rng n))
        done;
        let reps = List.sort_uniq compare (List.init n (Dsu.find t)) in
        List.length reps = Dsu.set_count t
        && List.fold_left (fun acc r -> acc + Dsu.set_size t r) 0 reps = n)
  ]

let suite =
  [ quick "initial state" test_initial;
    quick "union" test_union;
    quick "canonical find" test_find_canonical;
    quick "digraph components" test_components_of_digraph
  ]
  @ props
