open Helpers
module R = Mineq.Realizable
module Perm = Mineq_perm.Perm

let omega n = Mineq.Classical.network Omega ~n

let test_setting_gives_permutation () =
  let g = omega 3 in
  let rng = rng_of 400 in
  for _ = 1 to 50 do
    let setting = Array.init 3 (fun _ -> Array.init 4 (fun _ -> Random.State.bool rng)) in
    (* of_fun validates bijectivity internally; no exception = pass. *)
    ignore (R.permutation_of_setting g setting)
  done

let test_all_bar_setting () =
  (* All-bar on the Baseline: terminal t exits at the port word equal
     to... simply check it is some fixed permutation and that flipping
     one switch changes exactly the terminals crossing it. *)
  let g = Mineq.Baseline.network 3 in
  let bar = Array.make_matrix 3 4 false in
  let p = R.permutation_of_setting g bar in
  let one_cross = Array.map Array.copy bar in
  one_cross.(2).(0) <- true;
  let q = R.permutation_of_setting g one_cross in
  let diffs = List.filter (fun t -> Perm.apply p t <> Perm.apply q t) (List.init 8 (fun t -> t)) in
  check_int "a last-stage switch affects exactly its two terminals" 2 (List.length diffs)

let test_count_exact_n2 () =
  (* n=2: 4 switches, 16 settings; the crossbar-ish 2-stage network
     realizes exactly... the count must be at most 16 and at least
     4. *)
  let g = omega 2 in
  let count = R.count_exact g in
  check_true "bounded" (count >= 4 && count <= 16);
  check_int "exact equals set size" count (List.length (R.realizable_exact g))

let test_counts_equal_across_equivalent () =
  (* X8: the realizable count is an isomorphism invariant. *)
  let counts =
    List.map (fun (_, g) -> R.count_exact g) (Mineq.Classical.all_networks ~n:3)
  in
  match counts with
  | c0 :: rest -> List.iter (fun c -> check_int "same count across the class" c0 c) rest
  | [] -> Alcotest.fail "no networks"

let test_count_invariant_under_relabelling () =
  let rng = rng_of 401 in
  let g = omega 3 in
  let h = Mineq.Counterexample.relabelled_equivalent rng g in
  check_int "relabelling preserves the count" (R.count_exact g) (R.count_exact h)

let test_realizes_matches_enumeration () =
  let g = omega 3 in
  let set = R.realizable_exact g in
  let member p = List.exists (Perm.equal p) set in
  let rng = rng_of 402 in
  for _ = 1 to 30 do
    let p = Perm.random rng 8 in
    check_bool "realizes = enumerated membership" (member p) (R.realizes g p)
  done;
  (* Every enumerated permutation must be admissible. *)
  List.iter (fun p -> check_true "enumerated is admissible" (R.realizes g p)) set

let test_estimate_converges () =
  let g = omega 3 in
  let exact = R.count_exact g in
  let est = R.estimate (rng_of 403) g ~samples:20_000 in
  check_true "estimate within the exact count" (est <= exact);
  check_true "estimate close (settings cover quickly)" (est > exact * 9 / 10)

let test_identity_never_realizable () =
  (* Same structural fact as in the circuit scheduler: co-located
     inputs to co-located outputs conflict. *)
  List.iter
    (fun (name, g) ->
      check_false (name ^ " cannot realize the identity")
        (R.realizes g (Perm.identity (Mineq.Mi_digraph.inputs g))))
    (Mineq.Classical.all_networks ~n:3)

let test_injectivity_is_a_banyan_signature () =
  (* Banyan => every setting realizes a distinct permutation (each
     switch carries exactly two unique paths); non-Banyan collapses. *)
  let g = omega 3 in
  check_int "banyan realizes all settings distinctly" 4096 (R.count_exact g);
  let degenerate =
    Mineq.Link_spec.network_of_thetas ~n:3
      [ Perm.identity 3; Mineq_perm.Pipid_family.perfect_shuffle ~width:3 ]
  in
  check_true "non-banyan collapses settings" (R.count_exact degenerate < 4096)

let test_switch_count_guard () =
  Alcotest.check_raises "n=4 too large for exact enumeration"
    (Invalid_argument "Realizable: too many switches for exact enumeration") (fun () ->
      ignore (R.count_exact (omega 4)))

let props =
  [ qcheck "realizable count bounded by settings and factorial" ~count:10
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let g = random_banyan_pipid (rng_of seed) ~n:3 in
        let count = R.count_exact g in
        count >= 1 && count <= 4096);
    qcheck "settings always yield valid permutations" ~count:20
      (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let rng = rng_of seed in
        let g = random_banyan_pipid rng ~n:4 in
        let setting = Array.init 4 (fun _ -> Array.init 8 (fun _ -> Random.State.bool rng)) in
        Perm.size (R.permutation_of_setting g setting) = 16)
  ]

let suite =
  [ quick "settings give permutations" test_setting_gives_permutation;
    quick "switch locality" test_all_bar_setting;
    quick "exact count n=2" test_count_exact_n2;
    quick "count invariant across the class (X8)" test_counts_equal_across_equivalent;
    quick "count invariant under relabelling" test_count_invariant_under_relabelling;
    quick "realizes = enumeration" test_realizes_matches_enumeration;
    quick "estimate converges" test_estimate_converges;
    quick "identity never realizable" test_identity_never_realizable;
    quick "injectivity = Banyan signature (X8)" test_injectivity_is_a_banyan_signature;
    quick "switch count guard" test_switch_count_guard
  ]
  @ props
