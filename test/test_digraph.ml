open Helpers
module D = Mineq_graph.Digraph

let diamond () = D.create ~vertices:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_create_and_degrees () =
  let g = diamond () in
  check_int "vertices" 4 (D.vertices g);
  check_int "arcs" 4 (D.arc_count g);
  check_int "out degree" 2 (D.out_degree g 0);
  check_int "in degree" 2 (D.in_degree g 3);
  check_int "in degree of source" 0 (D.in_degree g 0);
  Alcotest.(check (list int)) "succ" [ 1; 2 ] (List.sort compare (D.succ g 0));
  Alcotest.(check (list int)) "pred" [ 1; 2 ] (List.sort compare (D.pred g 3))

let test_bad_arcs () =
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Digraph.create: arc endpoint out of range") (fun () ->
      ignore (D.create ~vertices:2 [ (0, 2) ]))

let test_parallel_arcs () =
  let g = D.create ~vertices:2 [ (0, 1); (0, 1) ] in
  check_int "multiplicity" 2 (D.arc_multiplicity g 0 1);
  check_int "arc count" 2 (D.arc_count g);
  check_int "out degree counts both" 2 (D.out_degree g 0);
  check_int "in degree counts both" 2 (D.in_degree g 1);
  check_true "has_arc" (D.has_arc g 0 1);
  check_false "no reverse arc" (D.has_arc g 1 0)

let test_reverse () =
  let g = diamond () in
  let r = D.reverse g in
  check_true "reversed arc" (D.has_arc r 1 0);
  check_false "original direction gone" (D.has_arc r 0 1);
  check_true "double reverse is original" (D.equal g (D.reverse r))

let test_of_succ () =
  let g = D.of_succ [| [| 1 |]; [| 0; 0 |] |] in
  check_int "parallel from succ" 2 (D.arc_multiplicity g 1 0);
  check_int "arcs" 3 (D.arc_count g)

let test_map_vertices () =
  let g = diamond () in
  let m = D.map_vertices g (fun v -> 3 - v) in
  check_true "arc mapped" (D.has_arc m 3 2);
  check_true "arc mapped 2" (D.has_arc m 1 0);
  check_false "old arcs gone" (D.has_arc m 0 1);
  Alcotest.check_raises "non-bijection rejected"
    (Invalid_argument "Digraph.map_vertices: not a bijection") (fun () ->
      ignore (D.map_vertices g (fun _ -> 0)))

let test_equal () =
  let g1 = D.create ~vertices:3 [ (0, 1); (1, 2) ] in
  let g2 = D.create ~vertices:3 [ (1, 2); (0, 1) ] in
  check_true "arc order irrelevant" (D.equal g1 g2);
  check_false "different arcs" (D.equal g1 (D.create ~vertices:3 [ (0, 1); (2, 1) ]));
  check_false "different sizes" (D.equal g1 (D.create ~vertices:4 [ (0, 1); (1, 2) ]))

let test_union () =
  let g1 = D.create ~vertices:3 [ (0, 1) ] in
  let g2 = D.create ~vertices:3 [ (1, 2) ] in
  let u = D.union g1 g2 in
  check_int "union arcs" 2 (D.arc_count u);
  check_true "arc from g1" (D.has_arc u 0 1);
  check_true "arc from g2" (D.has_arc u 1 2)

let test_induced () =
  let g = diamond () in
  let sub, back = D.induced g [ 0; 1; 3 ] in
  check_int "induced vertices" 3 (D.vertices sub);
  check_int "induced arcs" 2 (D.arc_count sub);
  check_true "kept arc" (D.has_arc sub 0 1);
  check_true "kept arc via back map" (back.(2) = 3);
  check_false "arc through removed vertex gone" (D.has_arc sub 0 2)

let test_arcs_listing () =
  let g = diamond () in
  check_int "arcs list length" 4 (List.length (D.arcs g));
  List.iter (fun (u, v) -> check_true "listed arcs exist" (D.has_arc g u v)) (D.arcs g)

let test_iterators () =
  (* The allocation-free iterators must see exactly the list views,
     multiplicity and order included. *)
  let g = D.create ~vertices:3 [ (0, 1); (0, 1); (1, 2); (2, 0) ] in
  for u = 0 to 2 do
    let collect iter = List.rev (iter (fun acc v -> v :: acc) []) in
    let via_succ =
      collect (fun f init ->
          let acc = ref init in
          D.iter_succ g u (fun v -> acc := f !acc v);
          !acc)
    in
    Alcotest.(check (list int)) (Printf.sprintf "iter_succ %d" u) (D.succ g u) via_succ;
    let via_pred =
      collect (fun f init ->
          let acc = ref init in
          D.iter_pred g u (fun v -> acc := f !acc v);
          !acc)
    in
    Alcotest.(check (list int)) (Printf.sprintf "iter_pred %d" u) (D.pred g u) via_pred
  done;
  let arcs = ref [] in
  D.iter_arcs g (fun u v -> arcs := (u, v) :: !arcs);
  Alcotest.(check (list (pair int int))) "iter_arcs = arcs" (D.arcs g) (List.rev !arcs)

let props =
  let gen =
    QCheck.make
      ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
      QCheck.Gen.(pair (int_range 1 30) (int_bound 100000))
  in
  let random_graph (n, seed) =
    let rng = rng_of seed in
    let m = Random.State.int rng (3 * n) in
    D.create ~vertices:n
      (List.init m (fun _ -> (Random.State.int rng n, Random.State.int rng n)))
  in
  [ qcheck "reverse preserves arc count" gen (fun p ->
        let g = random_graph p in
        D.arc_count g = D.arc_count (D.reverse g));
    qcheck "degree sums equal arc count" gen (fun p ->
        let g = random_graph p in
        let n = D.vertices g in
        let outs = List.init n (fun v -> D.out_degree g v) in
        let ins = List.init n (fun v -> D.in_degree g v) in
        List.fold_left ( + ) 0 outs = D.arc_count g
        && List.fold_left ( + ) 0 ins = D.arc_count g);
    qcheck "map by identity is equal" gen (fun p ->
        let g = random_graph p in
        D.equal g (D.map_vertices g (fun v -> v)));
    qcheck "map round trip" gen (fun (n, seed) ->
        let g = random_graph (n, seed) in
        let perm = Mineq_perm.Perm.random (rng_of (seed + 1)) (D.vertices g) in
        let mapped = D.map_vertices g (Mineq_perm.Perm.apply perm) in
        let back = D.map_vertices mapped (Mineq_perm.Perm.apply (Mineq_perm.Perm.inverse perm)) in
        D.equal g back)
  ]

let suite =
  [ quick "create and degrees" test_create_and_degrees;
    quick "bad arcs rejected" test_bad_arcs;
    quick "parallel arcs" test_parallel_arcs;
    quick "reverse" test_reverse;
    quick "of_succ" test_of_succ;
    quick "map_vertices" test_map_vertices;
    quick "equal" test_equal;
    quick "union" test_union;
    quick "induced subgraph" test_induced;
    quick "arcs listing" test_arcs_listing;
    quick "allocation-free iterators" test_iterators
  ]
  @ props
