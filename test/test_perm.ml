open Helpers
module Perm = Mineq_perm.Perm

let test_identity () =
  let id = Perm.identity 5 in
  check_true "is identity" (Perm.is_identity id);
  check_int "size" 5 (Perm.size id);
  for i = 0 to 4 do
    check_int "fixes all" i (Perm.apply id i)
  done

let test_of_array_validation () =
  check_int "valid perm applies" 2 (Perm.apply (Perm.of_array [| 1; 2; 0 |]) 1);
  Alcotest.check_raises "repeated image" (Invalid_argument "Perm.of_array: image repeated")
    (fun () -> ignore (Perm.of_array [| 0; 0; 1 |]));
  Alcotest.check_raises "out of range" (Invalid_argument "Perm.of_array: image out of range")
    (fun () -> ignore (Perm.of_array [| 0; 3; 1 |]))

let test_compose_inverse () =
  let p = Perm.of_array [| 1; 2; 0 |] in
  let q = Perm.of_array [| 2; 1; 0 |] in
  (* compose p q applies q first. *)
  check_int "compose order" (Perm.apply p (Perm.apply q 0)) (Perm.apply (Perm.compose p q) 0);
  check_true "inverse cancels" (Perm.is_identity (Perm.compose p (Perm.inverse p)));
  check_true "inverse cancels other side" (Perm.is_identity (Perm.compose (Perm.inverse p) p))

let test_power_order () =
  let p = Perm.of_array [| 1; 2; 0; 4; 3 |] in
  (* 3-cycle and a transposition: order lcm(3,2) = 6. *)
  check_int "order" 6 (Perm.order p);
  check_true "power order = id" (Perm.is_identity (Perm.power p 6));
  check_false "power below order" (Perm.is_identity (Perm.power p 3));
  check_true "negative power" (Perm.equal (Perm.power p (-1)) (Perm.inverse p));
  check_true "power 0" (Perm.is_identity (Perm.power p 0))

let test_cycles () =
  let p = Perm.of_array [| 1; 2; 0; 4; 3; 5 |] in
  Alcotest.(check (list (list int)))
    "cycle decomposition"
    [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Perm.cycles p);
  check_true "odd permutation (one transposition)" (Perm.parity_odd (Perm.transposition ~size:4 1 3));
  check_false "3-cycle is even" (Perm.parity_odd (Perm.of_array [| 1; 2; 0 |]))

let test_fixed_points () =
  let p = Perm.of_array [| 0; 2; 1; 3 |] in
  Alcotest.(check (list int)) "fixed points" [ 0; 3 ] (Perm.fixed_points p)

let test_transposition_rotation () =
  let t = Perm.transposition ~size:5 1 3 in
  check_int "swaps forward" 3 (Perm.apply t 1);
  check_int "swaps backward" 1 (Perm.apply t 3);
  check_int "fixes others" 2 (Perm.apply t 2);
  let r = Perm.rotation ~size:5 2 in
  check_int "rotation" 2 (Perm.apply r 0);
  check_int "rotation wraps" 1 (Perm.apply r 4);
  check_true "negative rotation" (Perm.equal (Perm.rotation ~size:5 (-2)) (Perm.rotation ~size:5 3))

let test_orbit () =
  let p = Perm.of_array [| 1; 2; 0; 3 |] in
  Alcotest.(check (list int)) "orbit of 0" [ 0; 1; 2 ] (Perm.orbit p 0);
  Alcotest.(check (list int)) "orbit of fixed point" [ 3 ] (Perm.orbit p 3)

let test_generate () =
  check_int "trivial group" 1 (Perm.group_order ~size:4 []);
  check_int "one transposition generates C2" 2
    (Perm.group_order ~size:4 [ Perm.transposition ~size:4 0 1 ]);
  (* Rotation generates the cyclic group. *)
  check_int "rotation generates C5" 5 (Perm.group_order ~size:5 [ Perm.rotation ~size:5 1 ]);
  (* n-cycle + adjacent transposition generate the full symmetric
     group: the PIPID generators sigma and beta_1 do exactly this on
     digit indices. *)
  let sigma = Mineq_perm.Pipid_family.perfect_shuffle ~width:4 in
  let beta1 = Mineq_perm.Pipid_family.butterfly ~width:4 1 in
  check_int "shuffle + butterfly generate S4" 24 (Perm.group_order ~size:4 [ sigma; beta1 ]);
  let sigma5 = Mineq_perm.Pipid_family.perfect_shuffle ~width:5 in
  let beta1_5 = Mineq_perm.Pipid_family.butterfly ~width:5 1 in
  check_int "shuffle + butterfly generate S5" 120
    (Perm.group_order ~size:5 [ sigma5; beta1_5 ]);
  (* Closure is a group: closed under composition. *)
  let group = Perm.generate ~size:4 [ sigma; beta1 ] in
  check_true "closed under composition"
    (List.for_all
       (fun p -> List.for_all (fun q -> List.mem (Perm.compose p q) group) group)
       group);
  (* The limit guard. *)
  match Perm.generate ~limit:3 ~size:5 [ sigma5; beta1_5 ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected limit failure"

let props =
  let perm_gen =
    QCheck.make
      ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
      QCheck.Gen.(pair (int_range 1 40) (int_bound 100000))
  in
  [ qcheck "random is a permutation" perm_gen (fun (n, seed) ->
        let p = Perm.random (rng_of seed) n in
        let img = Perm.to_array p in
        List.sort compare (Array.to_list img) = List.init n (fun i -> i));
    qcheck "inverse involutive" perm_gen (fun (n, seed) ->
        let p = Perm.random (rng_of seed) n in
        Perm.equal p (Perm.inverse (Perm.inverse p)));
    qcheck "compose associative" perm_gen (fun (n, seed) ->
        let rng = rng_of seed in
        let p = Perm.random rng n and q = Perm.random rng n and r = Perm.random rng n in
        Perm.equal (Perm.compose (Perm.compose p q) r) (Perm.compose p (Perm.compose q r)));
    qcheck "order divides factorial-ish: power order is id" perm_gen (fun (n, seed) ->
        let p = Perm.random (rng_of seed) n in
        Perm.is_identity (Perm.power p (Perm.order p)));
    qcheck "cycles partition the domain" perm_gen (fun (n, seed) ->
        let p = Perm.random (rng_of seed) n in
        let all = List.concat (Perm.cycles p) in
        List.sort compare all = List.init n (fun i -> i));
    qcheck "parity is a homomorphism" perm_gen (fun (n, seed) ->
        let rng = rng_of seed in
        let p = Perm.random rng n and q = Perm.random rng n in
        Perm.parity_odd (Perm.compose p q) = (Perm.parity_odd p <> Perm.parity_odd q))
  ]

let suite =
  [ quick "identity" test_identity;
    quick "of_array validation" test_of_array_validation;
    quick "compose and inverse" test_compose_inverse;
    quick "power and order" test_power_order;
    quick "cycles and parity" test_cycles;
    quick "fixed points" test_fixed_points;
    quick "transposition and rotation" test_transposition_rotation;
    quick "orbit" test_orbit;
    quick "subgroup generation" test_generate
  ]
  @ props
