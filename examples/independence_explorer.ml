(* Exploring the boundary of the paper's characterization:

   1. how common is independence among arbitrary valid stages?
   2. the Agrawal gap: Banyan + buddy properties without equivalence;
   3. independence is sufficient, not necessary: relabelling an
      equivalent network destroys it.

   Run with: dune exec examples/independence_explorer.exe *)

open Mineq

let rng = Mineq_engine.Seeds.state 0x1dea

let () =
  (* 1. Independence is a thin (affine) slice of all valid stages:
     there are (2^w)! / ... valid 2-in/2-out stages but only
     |GL(w,2)|-scale independent ones. *)
  print_endline "1. How rare is independence among random valid stages?";
  List.iter
    (fun width ->
      let independent = ref 0 in
      let trials = 2000 in
      for _ = 1 to trials do
        if Connection.is_independent (Connection.random_any rng ~width) then incr independent
      done;
      Printf.printf "   width %d: %d / %d random stages independent\n" width !independent trials)
    [ 1; 2; 3; 4 ];

  (* 2. The Agrawal gap. *)
  print_endline "\n2. Banyan + buddy properties without Baseline-equivalence:";
  (match Counterexample.find_non_equivalent rng ~n:4 ~attempts:10_000 ~require_buddy:true with
  | None -> print_endline "   (no instance found - unexpected)"
  | Some g ->
      Printf.printf "   found an n=4 instance: banyan=%b buddy=%b equivalent=%b\n"
        (Banyan.is_banyan g)
        (Properties.has_buddy_property g)
        (Equivalence.by_characterization g).equivalent;
      print_endline "   its P(i,j) component counts (found vs expected):";
      List.iter
        (fun (lo, hi, found, expected) ->
          if found <> expected then
            Printf.printf "     P(%d,%d): %d components, expected %d   <- failure\n" lo hi found
              expected)
        (Properties.full_matrix g));

  (* At n = 3 the gap closes: buddy + Banyan networks appear to be
     always equivalent (exhaustive-ish sampling). *)
  let equivalent = ref 0 and banyans = ref 0 in
  for _ = 1 to 3000 do
    let g = Counterexample.random_buddy_network rng ~n:3 in
    if Banyan.is_banyan g then begin
      incr banyans;
      if (Equivalence.by_characterization g).equivalent then incr equivalent
    end
  done;
  Printf.printf "   at n=3: %d / %d sampled buddy Banyans equivalent (gap closed)\n" !equivalent
    !banyans;

  (* 3. Sufficient, not necessary. *)
  print_endline "\n3. Relabelling preserves equivalence but destroys independence:";
  let g = Classical.network Indirect_binary_cube ~n:4 in
  let h = Counterexample.relabelled_equivalent rng g in
  Printf.printf "   cube n=4:            independent=%b equivalent=%b\n"
    (List.for_all Connection.is_independent (Mi_digraph.connections g))
    (Equivalence.by_characterization g).equivalent;
  Printf.printf "   relabelled cube n=4: independent=%b equivalent=%b\n"
    (List.for_all Connection.is_independent (Mi_digraph.connections h))
    (Equivalence.by_characterization h).equivalent;

  (* 4. The linear normal form of an independent connection. *)
  print_endline "\n4. Normal form f(x) = Bx + c_f, g(x) = Bx + c_g of an independent stage:";
  let c = Connection.random_independent rng ~width:4 in
  match Connection.linear_form c with
  | None -> assert false
  | Some (b, cf, cg) ->
      Format.printf "   B =@.%a@." Mineq_bitvec.Gf2_matrix.pp b;
      Printf.printf "   c_f = %s, c_g = %s, rank B = %d\n"
        (Mineq_bitvec.Bv.to_bit_string ~width:4 cf)
        (Mineq_bitvec.Bv.to_bit_string ~width:4 cg)
        (Mineq_bitvec.Gf2_matrix.rank b)
