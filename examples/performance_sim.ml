(* Operational consequence of topological equivalence: isomorphic
   networks are indistinguishable as packet switches.  The example
   sweeps the load/latency curve of three "different" classical
   networks (all Baseline-equivalent) and of a genuinely non-equivalent
   Banyan network for contrast.

   Run with: dune exec examples/performance_sim.exe *)

module Sim = Mineq_sim.Network_sim
open Mineq

let sweep name g rng =
  let rates = [ 0.2; 0.4; 0.6; 0.8; 1.0 ] in
  Printf.printf "%-26s" name;
  List.iter
    (fun rate ->
      let config = { Sim.default_config with injection_rate = rate; cycles = 1500 } in
      let s = Sim.run ~config rng g in
      Printf.printf " %5.3f" (Sim.throughput s))
    rates;
  print_newline ()

let () =
  let n = 5 in
  Printf.printf "Throughput (pkts/terminal/cycle) vs injection rate, n = %d, uniform traffic\n" n;
  Printf.printf "%-26s %5s %5s %5s %5s %5s\n" "network" "0.2" "0.4" "0.6" "0.8" "1.0";
  List.iter
    (fun (name, g) -> sweep name g (Mineq_engine.Seeds.state 7))
    [ ("omega", Classical.network Omega ~n);
      ("baseline", Baseline.network n);
      ("indirect-binary-cube", Classical.network Indirect_binary_cube ~n)
    ];

  (* A non-equivalent Banyan for contrast: same stage count, same
     degrees -- and (as expected for uniform traffic) a very similar
     curve, because saturation here is a property of the 2x2-switch
     fabric, not of the wiring.  Equivalence shows up in *which
     permutations* are admissible, not in average-case throughput. *)
  (match Counterexample.find_non_equivalent (Mineq_engine.Seeds.state 8) ~n:4 ~attempts:10_000
           ~require_buddy:true
   with
  | Some g ->
      Printf.printf "\nNon-equivalent Banyan (n=4) for contrast:\n";
      Printf.printf "%-26s %5s %5s %5s %5s %5s\n" "network" "0.2" "0.4" "0.6" "0.8" "1.0";
      sweep "non-equivalent banyan" g (Mineq_engine.Seeds.state 7);
      sweep "omega n=4" (Classical.network Omega ~n:4) (Mineq_engine.Seeds.state 7)
  | None -> ());

  (* Adversarial traffic separates networks that uniform traffic does
     not: bit-reversal on Omega vs Baseline. *)
  Printf.printf "\nPattern sensitivity at rate 0.9 (n = %d):\n" n;
  Printf.printf "%-26s %12s %12s %12s\n" "network" "uniform" "bit-reversal" "transpose";
  List.iter
    (fun (name, g) ->
      Printf.printf "%-26s" name;
      List.iter
        (fun pattern ->
          let config =
            { Sim.default_config with injection_rate = 0.9; cycles = 1500; pattern }
          in
          let s = Sim.run ~config (Mineq_engine.Seeds.state 9) g in
          Printf.printf " %12.3f" (Sim.throughput s))
        [ Mineq_sim.Traffic.uniform;
          Mineq_sim.Traffic.bit_reversal ~n;
          Mineq_sim.Traffic.transpose ~n
        ];
      print_newline ())
    [ ("omega", Classical.network Omega ~n);
      ("baseline", Baseline.network n);
      ("flip", Classical.network Flip ~n)
    ];

  (* Circuit-switched view: rounds needed to realize random
     permutations -- identical across the equivalence class. *)
  Printf.printf "\nAverage greedy rounds to realize a random permutation (200 samples):\n";
  List.iter
    (fun (name, g) ->
      Printf.printf "  %-26s %.2f\n" name
        (Mineq_sim.Circuit.average_rounds (Mineq_engine.Seeds.state 10) g ~samples:200))
    (Classical.all_networks ~n:4)
