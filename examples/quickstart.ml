(* Quickstart: build the Omega network, prove it Baseline-equivalent
   three different ways, and print the explicit isomorphism.

   Run with: dune exec examples/quickstart.exe *)

open Mineq

let () =
  let n = 4 in

  (* 1. Build a network.  The Omega network is n-1 perfect-shuffle
     stages; any list of link permutations works (Link_spec), and the
     six classical networks are predefined (Classical). *)
  let omega = Classical.network Omega ~n in
  Printf.printf "Omega network, %d stages, %d terminals:\n\n" n (Mi_digraph.inputs omega);
  print_string (Render.stage_table omega);

  (* 2. The paper's "easy" test: Banyan + independent connections
     (Theorem 3).  O(n 2^n). *)
  let v = Equivalence.by_independence omega in
  Printf.printf "\nTheorem 3 (independence): equivalent = %b\n  %s\n" v.equivalent v.detail;

  (* 3. The graph characterization of the companion paper [12]:
     Banyan + component counting (sound and complete). *)
  let v = Equivalence.by_characterization omega in
  Printf.printf "Characterization:         equivalent = %b\n  %s\n" v.equivalent v.detail;

  (* 4. Ground truth: explicit isomorphism construction. *)
  (match Iso_min.to_baseline omega with
  | None -> print_endline "no isomorphism (impossible here)"
  | Some mapping ->
      Printf.printf "Explicit isomorphism onto the Baseline (verified: %b):\n"
        (Iso_min.verify omega (Baseline.network n) mapping);
      Array.iteri
        (fun s stage_map ->
          Printf.printf "  stage %d: " (s + 1);
          Array.iteri (fun x y -> Printf.printf "%d->%d " x y) stage_map;
          print_newline ())
        mapping);

  (* 5. Bit-directed routing falls out of the PIPID structure. *)
  match Routing.route omega ~input:5 ~output:11 with
  | None -> assert false
  | Some p ->
      Printf.printf "\nroute 5 -> 11: cells %s, port word %d\n"
        (String.concat " -> " (Array.to_list (Array.map string_of_int p.Routing.cells)))
        (Routing.port_word p)
