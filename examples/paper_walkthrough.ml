(* A section-by-section walkthrough of Bermond & Fourneau's paper,
   with every definition and result executed as it is introduced.

   Run with: dune exec examples/paper_walkthrough.exe *)

open Mineq
module Perm = Mineq_perm.Perm
module Family = Mineq_perm.Pipid_family

let section title =
  Printf.printf "\n--- %s ---\n\n" title

let n = 4

let () =
  section "Section 2: the graph model";
  Printf.printf
    "An MI-digraph has n stages of N/2 = 2^(n-1) nodes; arcs only between\n\
     consecutive stages; degrees 2 except at the boundary.  Two MINs are\n\
     topologically equivalent iff their MI-digraphs are isomorphic.\n\n";
  let baseline = Baseline.network n in
  Printf.printf "The %d-stage Baseline (left-recursive construction, Figure 1):\n%s\n" n
    (Render.stage_table baseline);

  Printf.printf "Banyan property (unique input/output paths): %b\n"
    (Banyan.is_banyan baseline);
  Printf.printf
    "P(i,j): stages i..j have exactly 2^(n-1-(j-i)) components.  For the\n\
     Baseline: P(1,j) for all j = %b, P(i,n) for all i = %b.\n"
    (Properties.p_one_star baseline)
    (Properties.p_star_n baseline);
  Printf.printf
    "The characterization theorem [12]: Banyan + both P families =>\n\
     isomorphic to the Baseline.\n";

  section "Section 3: independent connections";
  Printf.printf
    "A connection is a pair (f, g) of child functions on Z2^(n-1).  It is\n\
     independent when every nonzero alpha has a beta with\n\
     f(x + alpha) = beta + f(x) and g(x + alpha) = beta + g(x).\n\n";
  let c = Mi_digraph.connection baseline 1 in
  Printf.printf "Baseline stage 1: independent = %b; witnesses per basis vector:\n"
    (Connection.is_independent c);
  List.iter
    (fun alpha ->
      match Connection.witness c alpha with
      | Some beta -> Printf.printf "  alpha = %d  ->  beta = %d\n" alpha beta
      | None -> Printf.printf "  alpha = %d  ->  (none)\n" alpha)
    (Mineq_bitvec.Bv.units ~width:(n - 1));
  Printf.printf
    "\nProposition 1: the reverse of an independent connection can be chosen\n\
     independent.  Reversing Baseline stage 1: independent = %b.\n"
    (match Connection.reverse_independent c with
    | Some r -> Connection.is_independent r
    | None -> false);
  Printf.printf
    "Lemma 2 (+ its dual): a Banyan network with independent connections\n\
     satisfies the P families.  Theorem 3: it is Baseline-equivalent.\n";

  section "Section 4: PIPID permutations";
  Printf.printf
    "A PIPID permutes link labels by permuting their index digits.  The\n\
     perfect shuffle sigma, sub-shuffles sigma_k, butterflies beta_k and the\n\
     bit reversal rho are all PIPID.  Each non-degenerate PIPID stage is an\n\
     independent connection with the routing bit at slot theta^-1(0) - 1:\n\n";
  List.iter
    (fun (name, theta) ->
      let conn = Pipid_net.connection ~n theta in
      Printf.printf "  %-10s independent=%b  slot=%s\n" name
        (Connection.is_independent conn)
        (match Pipid_net.routing_bit_slot ~n theta with
        | Some s -> string_of_int s
        | None -> "degenerate (Figure 5: double links)"))
    [ ("sigma", Family.perfect_shuffle ~width:n);
      ("sigma^-1", Family.inverse_shuffle ~width:n);
      ("beta_2", Family.butterfly ~width:n 2);
      ("rho", Family.bit_reversal ~width:n);
      ("identity", Perm.identity n)
    ];

  section "The main corollary";
  Printf.printf
    "All six classical networks are PIPID stacks, hence Banyan networks\n\
     with independent connections, hence Baseline-equivalent:\n\n";
  List.iter
    (fun (name, g) ->
      Printf.printf "  %-26s %s\n" name
        (if (Equivalence.by_independence g).equivalent then "equivalent (Theorem 3)"
         else "NOT equivalent"))
    (Classical.all_networks ~n);

  section "Conclusion (and where this library goes beyond)";
  Printf.printf
    "The paper closes by noting the graph characterization generalizes to\n\
     r x r cells.  This library carries the whole story there (radix-3\n\
     Omega equivalent to the radix-3 Baseline: %b), makes Theorem 3\n\
     constructive, and adds routing, simulation, fault analysis and the\n\
     Benes composition on top.  See EXPERIMENTS.md.\n"
    (Mineq_radix.Rnetwork.isomorphic
       (Mineq_radix.Rbuild.omega ~radix:3 3)
       (Mineq_radix.Rbuild.baseline ~radix:3 3))
