(* Bit-directed routing on PIPID networks (paper, Sections 1 and 4):
   "these PIPID are associated with a very simple bit directed
   routing".

   The demo shows:
   - the destination-tag table of the Baseline network (the port word
     literally spells the destination address);
   - path tracing through the Omega network;
   - conflict analysis of permutation traffic (which permutations a
     single pass can realize).

   Run with: dune exec examples/routing_demo.exe *)

open Mineq

let () =
  let n = 4 in
  let baseline = Baseline.network n in
  let omega = Classical.network Omega ~n in

  (* Destination-tag routing: the Baseline's port word IS the
     destination address. *)
  print_endline "Baseline destination tags (port word per output):";
  (match Routing.delta_schedule baseline with
  | None -> assert false
  | Some schedule ->
      Array.iteri
        (fun output word ->
          if output < 8 then
            Printf.printf "  output %2d: word %s\n" output
              (Mineq_bitvec.Bv.to_bit_string ~width:n word))
        schedule);

  (* Tracing a path: each stage consumes one bit of the tag. *)
  print_endline "\nPath 3 -> 12 through Omega:";
  (match Routing.route omega ~input:3 ~output:12 with
  | None -> assert false
  | Some p ->
      Array.iteri
        (fun s cell ->
          Printf.printf "  stage %d: cell %s%s\n" (s + 1)
            (Mineq_bitvec.Bv.to_bit_string ~width:(n - 1) cell)
            (if s < n then Printf.sprintf " (exit port %d)" p.Routing.ports.(s) else ""))
        p.Routing.cells);

  (* Permutation admissibility: a single pass realizes a permutation
     iff the N unique paths are pairwise link-disjoint. *)
  print_endline "\nPermutation admissibility on Omega (single pass):";
  let terminals = Mi_digraph.inputs omega in
  let describe name pairs =
    let r = Routing.link_loads omega pairs in
    Printf.printf "  %-24s max link load %d, %d conflicted links -> %s\n" name r.max_link_load
      r.conflicted_links
      (if Routing.is_admissible omega pairs then "passes in one round" else "needs multiple rounds")
  in
  describe "identity" (List.init terminals (fun i -> (i, i)));
  describe "reversal (i -> N-1-i)" (List.init terminals (fun i -> (i, terminals - 1 - i)));
  let rng = Mineq_engine.Seeds.state 2024 in
  let p = Mineq_perm.Perm.random rng terminals in
  describe "random permutation" (List.init terminals (fun i -> (i, Mineq_perm.Perm.apply p i)));

  (* Multi-round realization via the greedy circuit scheduler. *)
  print_endline "\nGreedy multi-round schedules (Omega, n = 4):";
  List.iter
    (fun (name, p) ->
      let rounds = Mineq_sim.Circuit.rounds_needed omega p in
      Printf.printf "  %-24s %d rounds\n" name rounds)
    [ ("identity", Mineq_perm.Perm.identity terminals);
      ("random", p);
      ( "bit reversal",
        Mineq_perm.Perm.of_fun ~size:terminals (fun x ->
            let rec go i acc =
              if i = n then acc else go (i + 1) ((acc lsl 1) lor ((x lsr i) land 1))
            in
            go 0 0) )
    ];
  Printf.printf "  %-24s %.2f rounds\n" "average (100 random)"
    (Mineq_sim.Circuit.average_rounds rng omega ~samples:100)
