(* Expansion planes recovering a blocked permutation.

   A single Banyan network has exactly one path per input/output
   pair, so most permutations block somewhere: two paths want the
   same link.  The classical remedy keeps the self-routing property
   and simply replicates the fabric — k parallel "expansion planes",
   each a copy of the same network, with every connection assigned
   greedily to the first plane whose path is free.

   The demo loads the Omega network from examples/specs/omega_n3.min
   (falling back to the built-in construction when run from another
   directory), shows bit reversal blocking on one plane — with the
   exact contested link from the typed Blocked result — and then
   routes the same permutation completely through a 2-plane ensemble.

   Run with: dune exec examples/plane_recovery.exe *)

module Route = Mineq_route

let n = 3
let terminals = 1 lsl n

let network () =
  match Mineq.Spec_io.load "examples/specs/omega_n3.min" with
  | Ok g ->
      print_endline "(network loaded from examples/specs/omega_n3.min)";
      g
  | Error _ -> Mineq.Classical.network Omega ~n

let bitrev i =
  let r = ref 0 in
  for b = 0 to n - 1 do
    if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (n - 1 - b))
  done;
  !r

let () =
  let g = network () in
  let router =
    match Route.Bit_follow.of_network g with
    | Some r -> r
    | None -> failwith "Omega is delta: destination-tag routing always exists"
  in
  let image = Array.init terminals bitrev in

  (* One plane: destination-tag setup until the first contested link. *)
  print_endline "bit reversal on a single Omega plane:";
  let plan = Route.Plan.create (Route.Bit_follow.fabric router) in
  Array.iteri
    (fun input output ->
      match Route.Bit_follow.route router plan ~input ~output with
      | Route.Bit_follow.Routed -> Printf.printf "  %d -> %d ok\n" input output
      | Route.Bit_follow.Blocked b ->
          Printf.printf "  %d -> %d BLOCKED at stage %d, cell %d, out-port %d\n" input
            output (b.Route.Bit_follow.stage + 1) b.Route.Bit_follow.cell
            b.Route.Bit_follow.port)
    image;

  (* Two planes: the blocked connections escape to the second copy. *)
  print_endline "\nsame permutation on a 2-plane ensemble:";
  let ens = Route.Planes.create router ~planes:2 in
  let routed = Route.Planes.connect_all ens image in
  Array.iteri
    (fun input output ->
      Printf.printf "  %d -> %d via plane %d\n" input output
        (Route.Planes.plane_of ens input))
    image;
  Printf.printf "routed %d/%d pairs; whole permutation realized: %b\n" routed terminals
    (Array.for_all
       (fun input ->
         Route.Plan.propagate
           (Route.Planes.plan ens (Route.Planes.plane_of ens input))
           input
         = image.(input))
       (Array.init terminals Fun.id))
