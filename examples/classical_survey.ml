(* The Wu-Feng survey, rederived: all six classical networks are
   pairwise topologically equivalent.  Wu and Feng proved this with
   six hand-built bijections; the paper under reproduction gets it in
   one stroke because each network is a stack of PIPID link
   permutations, hence Banyan-with-independent-connections, hence
   Baseline-equivalent (Theorem 3).

   Run with: dune exec examples/classical_survey.exe [n] *)

open Mineq

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5 in
  let nets = Classical.all_networks ~n in

  Printf.printf "Six classical networks at n = %d (%d terminals):\n\n" n (1 lsl n);
  Printf.printf "%-26s %-7s %-12s %-14s %-7s %-8s\n" "network" "banyan" "independent"
    "P-properties" "delta" "buddy";
  List.iter
    (fun (name, g) ->
      Printf.printf "%-26s %-7b %-12b %-14b %-7b %-8b\n" name (Banyan.is_banyan g)
        (List.for_all Connection.is_independent (Mi_digraph.connections g))
        (Properties.p_one_star g && Properties.p_star_n g)
        (Routing.is_delta g)
        (Properties.has_buddy_property g))
    nets;

  (* Every stage of every network is a recognizable PIPID stage;
     print the recovered index permutations (cycle notation). *)
  Printf.printf "\nRecovered index-digit permutations per gap:\n";
  List.iter
    (fun (name, g) ->
      Printf.printf "%-26s" name;
      for i = 1 to Mi_digraph.stages g - 1 do
        match Render.recognize_gap g i with
        | Some theta -> Format.printf " %a" Mineq_perm.Perm.pp_cycles theta
        | None -> print_string " ?"
      done;
      Format.print_newline ())
    nets;

  (* Pairwise equivalence witnessed by explicit isomorphisms. *)
  Printf.printf "\nPairwise explicit isomorphisms (stage-wise search):\n";
  List.iter
    (fun (name_i, gi) ->
      List.iter
        (fun (name_j, gj) ->
          if name_i < name_j then begin
            match Iso_min.find gi gj with
            | Some m when Iso_min.verify gi gj m ->
                Printf.printf "  %s ~ %s : verified\n" name_i name_j
            | Some _ -> Printf.printf "  %s ~ %s : FOUND BUT INVALID (bug!)\n" name_i name_j
            | None -> Printf.printf "  %s ~ %s : NOT ISOMORPHIC (bug!)\n" name_i name_j
          end)
        nets)
    nets
