(* Composing the equivalence class: the Benes network.

   Glue the Baseline to its reverse (middle stage shared) and the
   result realizes EVERY permutation with link-disjoint paths — the
   classic payoff of the Baseline/Reverse-Baseline theory the paper
   formalizes.  The demo also contrasts fault tolerance: a Banyan
   network dies with any link; the Benes merely degrades.

   Run with: dune exec examples/benes_demo.exe *)

open Mineq

let () =
  let n = 4 in
  let benes = Benes.network n in
  Printf.printf "Benes B(%d): %d stages of %d cells, %d terminals\n" n (Cascade.stages benes)
    (Cascade.cells_per_stage benes) (Cascade.terminals benes);
  Printf.printf "path diversity: %d paths between every terminal pair (Banyan: %b)\n\n"
    (Cascade.path_counts benes).(0).(0)
    (Cascade.is_banyan benes);

  (* Route a permutation no Banyan network can pass in one round. *)
  let terminals = Cascade.terminals benes in
  let identity = Mineq_perm.Perm.identity terminals in
  let omega = Classical.network Omega ~n in
  Printf.printf "identity permutation: admissible on Omega? %b; on Benes?\n"
    (Routing.is_admissible omega (List.init terminals (fun i -> (i, i))));
  let routes = Benes.route_permutation (Some benes) ~n identity in
  Printf.printf "  looping algorithm routes it link-disjoint: %b\n\n"
    (Cascade.link_disjoint benes routes);

  (* Show one route in full. *)
  (match routes with
  | r :: _ ->
      Printf.printf "route %d -> %d: cells %s\n\n" r.Cascade.input r.Cascade.output
        (String.concat " -> " (Array.to_list (Array.map string_of_int r.Cascade.cells)))
  | [] -> ());

  (* Rearrangeability over random permutations. *)
  let rng = Mineq_engine.Seeds.state 77 in
  let samples = 200 in
  Printf.printf "%d random permutations, all routed link-disjoint: %b\n\n" samples
    (Benes.rearrangeable_check rng ~n ~samples);

  (* Fault tolerance comparison. *)
  let baseline_cascade = Cascade.of_mi_digraph (Baseline.network n) in
  Printf.printf "single-link fault analysis:\n";
  List.iter
    (fun (name, c) ->
      let links = (Cascade.stages c - 1) * Cascade.cells_per_stage c * 2 in
      Printf.printf "  %-12s %3d/%3d critical links, single-fault tolerant: %b\n" name
        (Faults.critical_fault_count c)
        links
        (Faults.is_single_fault_tolerant c))
    [ ("baseline", baseline_cascade); ("benes", benes) ];

  (* What one dead link does to each. *)
  let fault = Faults.Link { gap = 2; cell = 1; port = 0 } in
  List.iter
    (fun (name, c) ->
      let i = Faults.impact c [ fault ] in
      Printf.printf "  %-12s after %s: %d pairs disconnected, %d degraded (of %d)\n" name
        (Format.asprintf "%a" Faults.pp_fault fault)
        i.disconnected_pairs i.degraded_pairs i.total_pairs)
    [ ("baseline", baseline_cascade); ("benes", benes) ]
