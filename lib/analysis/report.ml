module D = Diagnostics

let to_text (r : Lint.report) =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%d stages (width %d): %d symbolic gap(s), %d enumerated\n" r.stages r.width
    r.symbolic_gaps r.enumerated_gaps;
  add "banyan: %b, baseline-equivalent: %b\n" r.banyan r.equivalent;
  add "%d error(s), %d warning(s), %d info(s)\n" (Lint.errors r) (Lint.warnings r)
    (Lint.infos r);
  List.iter
    (fun (f : D.finding) ->
      add "\n%s %s%s\n  %s\n"
        (D.severity_name f.severity |> String.uppercase_ascii)
        f.code
        (match f.stage with Some s -> Printf.sprintf " (gap %d)" s | None -> "")
        f.message;
      Option.iter (add "  witness: %s\n") f.witness;
      Option.iter (add "  hint: %s\n") f.hint)
    r.findings;
  Buffer.contents buf

(* Hand-rolled JSON, same style as the bench artifact writers. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let json_opt_string = function None -> "null" | Some s -> json_string s

let json_opt_int = function None -> "null" | Some i -> string_of_int i

let finding_to_json (f : D.finding) =
  Printf.sprintf
    "{ \"code\": %s, \"severity\": %s, \"stage\": %s, \"message\": %s, \"witness\": %s, \"hint\": %s }"
    (json_string f.code)
    (json_string (D.severity_name f.severity))
    (json_opt_int f.stage) (json_string f.message) (json_opt_string f.witness)
    (json_opt_string f.hint)

let to_json (r : Lint.report) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"mineq-lint/1\",\n";
  add "  \"stages\": %d,\n" r.stages;
  add "  \"width\": %d,\n" r.width;
  add "  \"symbolic_gaps\": %d,\n" r.symbolic_gaps;
  add "  \"enumerated_gaps\": %d,\n" r.enumerated_gaps;
  add "  \"banyan\": %b,\n" r.banyan;
  add "  \"equivalent\": %b,\n" r.equivalent;
  add "  \"summary\": { \"errors\": %d, \"warnings\": %d, \"infos\": %d },\n" (Lint.errors r)
    (Lint.warnings r) (Lint.infos r);
  add "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then add ",";
      add "\n    %s" (finding_to_json f))
    r.findings;
  if r.findings <> [] then add "\n  ";
  add "]\n}\n";
  Buffer.contents buf

let error_to_json (e : Mineq.Spec_io.error) =
  Printf.sprintf
    "{\n  \"schema\": \"mineq-lint/1\",\n  \"parse_error\": { \"line\": %s, \"reason\": %s }\n}\n"
    (json_opt_int e.Mineq.Spec_io.line)
    (json_string e.Mineq.Spec_io.reason)
