(** Network-level symbolic deciders over an analyzed MI-digraph.

    {!analyze} classifies every gap once ({!Affine.classify}, or the
    closed form {!Affine.of_theta} for gaps declared [theta] in a
    spec file); the deciders then run entirely on the recovered
    matrix forms when every gap is independent — O(n^3)-ish
    rank/kernel computations — and fall back to the enumeration
    engines of [Mineq.Banyan] / [Mineq.Properties] otherwise.  Each
    verdict says which engine produced it. *)

module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix

type gap = {
  index : int;  (** 1-based gap index (between stages [index] and [index + 1]) *)
  conn : Mineq.Connection.t;
  cls : Affine.gap_class;
  declared_theta : Mineq_perm.Perm.t option;
      (** The spec-file [theta], when the gap came from a [gap theta]
          line (its form is then trusted from the closed form, not
          re-inferred). *)
}

type t

val analyze : ?declared:Mineq.Spec_io.gap list -> Mineq.Mi_digraph.t -> t
(** Classify every gap.  [declared] (parallel to the gaps, from
    {!Mineq.Spec_io.gaps_of_string}) routes [Theta] gaps through the
    closed form. *)

val network : t -> Mineq.Mi_digraph.t
val stages : t -> int
val width : t -> int
val gaps : t -> gap array

val forms : t -> Affine.form array option
(** Per-gap independent forms, when {e every} gap is independent. *)

val symbolic_gap_count : t -> int
(** Gaps with a recovered independent form. *)

(** How a verdict was reached: the symbolic engine on matrix forms,
    or enumeration fallback. *)
type engine = Symbolic | Enumerated

val engine_name : engine -> string

(** {1 Per-gap independence} *)

type independence =
  | Indep of Affine.form
  | Not_indep of {
      alpha : Bv.t;  (** a concrete refuting [alpha] (no witness [beta] exists) *)
      x : Bv.t;  (** a label where [f (x xor alpha) <> beta xor f x] (or the [g] twin) *)
      affine : bool;  (** whether both child maps were at least affine *)
    }

val independence : t -> int -> independence
(** [independence a i] for the 1-based gap [i].  The refutation is
    found symbolically for [Affine_split] gaps (a basis column where
    the two linear parts differ) and by the basis witness scan for
    [Opaque] gaps (some basis vector must fail — basis sufficiency). *)

(** {1 Double links} *)

val double_link : t -> int -> Bv.t option
(** A node [x] with [f x = g x] at the given gap, if any.  Symbolic
    where the forms allow: on an independent gap the [B x] terms
    cancel, so double links exist iff [delta = 0] (and then at every
    node); on an affine split the witness solves
    [(Bf xor Bg) x = cf xor cg].  Opaque gaps are scanned. *)

(** {1 Network properties} *)

val banyan : t -> engine * (unit, Mineq.Banyan.violation) result

val component_count : t -> lo:int -> hi:int -> engine * int

val p_ij : t -> lo:int -> hi:int -> engine * bool

val p_failures : t -> engine * (int * int * int * int) list
(** The failing windows [(lo, hi, found, expected)] among the
    characterization families [P(1,j)] and [P(i,n)] (deduplicated,
    ascending); empty means both families hold. *)

val equivalent : t -> engine * bool
(** Baseline-equivalence: Banyan + both [P] families (the sound and
    complete characterization; on all-independent networks the
    symbolic engine decides it in polynomial time — Theorem 3 plus
    the D-matrix Banyan check). *)
