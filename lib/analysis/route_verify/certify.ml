module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix
module Affine = Mineq_analysis.Affine
module Fabric = Mineq_route.Fabric
module Plan = Mineq_route.Plan
module Bit_follow = Mineq_route.Bit_follow

type traffic = { name : string; bits : int; map : Gf2.t; offset : Bv.t }

let identity ~bits = { name = "identity"; bits; map = Gf2.identity bits; offset = Bv.zero }

let complement ~bits =
  { name = "complement"; bits; map = Gf2.identity bits; offset = (1 lsl bits) - 1 }

let bit_reversal ~bits =
  { name = "bit-reversal";
    bits;
    map = Gf2.create ~rows:bits ~cols:bits (fun i j -> j = bits - 1 - i);
    offset = Bv.zero
  }

let perfect_shuffle ~bits =
  { name = "perfect-shuffle";
    bits;
    map = Gf2.create ~rows:bits ~cols:bits (fun i j -> j = (i + bits - 1) mod bits);
    offset = Bv.zero
  }

let transpose ~bits =
  if bits mod 2 <> 0 then invalid_arg "Certify.transpose: odd address width";
  { name = "transpose";
    bits;
    map = Gf2.create ~rows:bits ~cols:bits (fun i j -> j = (i + (bits / 2)) mod bits);
    offset = Bv.zero
  }

let bpc ?name ?(complement = 0) perm =
  let bits = Array.length perm in
  let seen = Array.make bits false in
  Array.iter
    (fun j ->
      if j < 0 || j >= bits || seen.(j) then invalid_arg "Certify.bpc: not a permutation";
      seen.(j) <- true)
    perm;
  let name = match name with Some n -> n | None -> "bpc" in
  { name;
    bits;
    map = Gf2.create ~rows:bits ~cols:bits (fun i j -> j = perm.(i));
    offset = complement land ((1 lsl bits) - 1)
  }

let classical_classes ~bits =
  let base = [ identity ~bits; complement ~bits ] in
  let rots =
    if bits >= 2 then
      [ bit_reversal ~bits; perfect_shuffle ~bits ]
      @ (if bits mod 2 = 0 then [ transpose ~bits ] else [])
    else []
  in
  base @ rots

type unsupported = Radix_not_two | Shape | Gap_not_affine of int | Schedule_not_affine

type collision = {
  gap : int;
  input_a : int;
  input_b : int;
  output_a : int;
  output_b : int;
}

type result = Free of Gf2.t array | Blocked of collision | Unsupported of unsupported

exception Unsup of unsupported

(* Echelon rows have pairwise distinct leading bits, so integer order
   follows leading-bit order and the least row is the least nonzero
   element of the whole span. *)
let min_kernel_vector ~cols m =
  let ech = Gf2.row_space_basis (Gf2.of_rows ~cols (Array.of_list (Gf2.kernel_basis m))) in
  match ech with [] -> assert false | h :: t -> List.fold_left min h t

let analyze router tr =
  let fab = Bit_follow.fabric router in
  match
    let cw = fab.Fabric.width in
    let nb = cw + 1 in
    if fab.Fabric.radix <> 2 then raise (Unsup Radix_not_two);
    if tr.bits <> nb then invalid_arg "Certify.analyze: traffic width mismatch";
    if fab.Fabric.stages <> nb then raise (Unsup Shape);
    (* Affine form of the schedule word o -> w(o); digit at stage k
       is bit (nb-1-k) of the word. *)
    let word o =
      let w = ref 0 in
      for s = 0 to nb - 1 do
        w := !w lor (Bit_follow.control router ~stage:s ~output:o lsl (nb - 1 - s))
      done;
      !w
    in
    let wm =
      match Affine.of_function ~width:nb word with
      | Some a -> a.Affine.m
      | None -> raise (Unsup Schedule_not_affine)
    in
    (* Independent-connection form of each gap: child of cell y via
       port d is B y xor c xor d*delta, with the linear part shared
       between the two ports. *)
    let gap_form k =
      let f0 = Affine.of_function ~width:cw (fun y -> fab.Fabric.child.(k).(2 * y)) in
      let f1 = Affine.of_function ~width:cw (fun y -> fab.Fabric.child.(k).((2 * y) + 1)) in
      match (f0, f1) with
      | Some a0, Some a1 when Gf2.equal a0.Affine.m a1.Affine.m ->
          (a0.Affine.m, Bv.xor a0.Affine.c a1.Affine.c)
      | _ -> raise (Unsup (Gap_not_affine k))
    in
    let a_t = Gf2.transpose tr.map in
    (* Cell label at stage 0 is the input address without its port
       bit: row i of L_0 reads address bit i+1. *)
    let l = ref (Gf2.create ~rows:cw ~cols:nb (fun i j -> j = i + 1)) in
    let mats = Array.make nb (Gf2.identity nb) in
    let refuted = ref None in
    let k = ref 0 in
    while !refuted = None && !k < nb do
      let s_k = Gf2.row wm (nb - 1 - !k) in
      let r_k = Gf2.apply a_t s_k in
      let m_k =
        Gf2.of_rows ~cols:nb (Array.append (Array.init cw (Gf2.row !l)) [| r_k |])
      in
      if not (Gf2.is_invertible m_k) then begin
        let d = min_kernel_vector ~cols:nb m_k in
        refuted :=
          Some
            { gap = !k;
              input_a = 0;
              input_b = d;
              output_a = tr.offset;
              output_b = Bv.xor (Gf2.apply tr.map d) tr.offset
            }
      end
      else begin
        mats.(!k) <- m_k;
        if !k < nb - 1 then begin
          let b, delta = gap_form !k in
          let outer =
            Gf2.create ~rows:cw ~cols:nb (fun i j -> Bv.bit delta i && Bv.bit r_k j)
          in
          l := Gf2.add (Gf2.mul b !l) outer
        end;
        incr k
      end
    done;
    match !refuted with Some c -> Blocked c | None -> Free mats
  with
  | result -> result
  | exception Unsup u -> Unsupported u

let confirm router c =
  let plan = Plan.create (Bit_follow.fabric router) in
  Bit_follow.try_route router plan ~input:c.input_a ~output:c.output_a
  && not (Bit_follow.try_route router plan ~input:c.input_b ~output:c.output_b)

let survey_classes router =
  let fab = Bit_follow.fabric router in
  let bits = fab.Fabric.width + 1 in
  List.map (fun tr -> (tr, analyze router tr)) (classical_classes ~bits)

let pp_result ppf = function
  | Free mats ->
      Format.fprintf ppf "blocking-free (certificate: %d invertible link matrices)"
        (Array.length mats)
  | Blocked c ->
      Format.fprintf ppf "blocked at gap %d: inputs %d and %d contend (outputs %d and %d)"
        c.gap c.input_a c.input_b c.output_a c.output_b
  | Unsupported Radix_not_two -> Format.fprintf ppf "unsupported: radix is not 2"
  | Unsupported Shape ->
      Format.fprintf ppf "unsupported: not a banyan shape (stages <> address bits)"
  | Unsupported (Gap_not_affine k) ->
      Format.fprintf ppf "unsupported: gap %d wiring has no affine form" k
  | Unsupported Schedule_not_affine ->
      Format.fprintf ppf "unsupported: delta schedule is not affine"
