(** The route lint: static verification verdicts for one network.

    Bundles the three verifiers of this library over a network
    spec — delta-schedule existence, {!Cdg} deadlock analysis
    (forward and recirculating), {!Certify} blocking certificates
    for the classical traffic classes, and a {!Plan_check}-audited
    routing smoke test — into one report with the familiar
    text/JSON renderers and 0/1/2 exit codes of
    {!Mineq_analysis.Spec_lint}.  Surfaced on the CLI as
    [mineq_cli lint --routes].

    Network-level findings use the [MINEQ-R1xx] codes (the
    [MINEQ-R0xx] plan-soundness codes of {!Plan_check} may also
    appear, raised by the smoke plan):

    {v
    MINEQ-R101  not-delta            W  no shared destination-tag
                                        schedule; routing verifiers
                                        cannot run
    MINEQ-R102  forward-cdg-cycle    E  the forward CDG has a cycle
                                        (a leveled fabric never does)
    MINEQ-R103  traffic-blocked      I  a classical traffic class has
                                        a blocked pair (witness)
    MINEQ-R104  certify-unavailable  I  fabric outside the affine
                                        certificate regime
    MINEQ-R110  forward-deadlock-free I forward CDG acyclic (Dally-
                                        Seitz: wormhole-safe)
    MINEQ-R111  recirc-cycle         I  recirculating configuration
                                        has a dependency cycle; hint:
                                        provision >= 2 virtual lanes
    MINEQ-R112  recirc-deadlock-free I  recirculating configuration
                                        acyclic even single-lane
    MINEQ-R113  traffic-free         I  a classical traffic class is
                                        certified blocking-free
    v} *)

type report = {
  stages : int;
  width : int;  (** cell-label digits, as in {!Mineq_route.Fabric} *)
  terminals : int;
  radix : int;
  delta : bool;  (** a shared destination-tag schedule exists *)
  cdg_links : int;  (** 0 when not delta *)
  cdg_edges : int;
  forward_free : bool option;  (** [None] when not delta *)
  recirc_free : bool option;
  routed_smoke : int;
      (** identity-permutation paths the smoke plan carried
          (of [terminals]); [-1] when not delta *)
  findings : Mineq_analysis.Diagnostics.finding list;  (** sorted, errors first *)
}

val run : Mineq.Mi_digraph.t -> report
(** Verify a built network: build its fabric and router, run both
    CDG configurations, survey the classical traffic classes, route
    the identity permutation and {!Plan_check} the resulting plan. *)

val run_router : Mineq_route.Bit_follow.t -> report
(** Same, from an already-built router (cascade fabrics included). *)

val errors : report -> int
val warnings : report -> int
val infos : report -> int

val clean : report -> bool
(** No errors and no warnings. *)

val exit_code : report -> int
(** [0] when {!clean}, [1] otherwise; parse failures are mapped to
    [2] by the CLI, as with {!Mineq_analysis.Spec_lint}. *)

val lint_string : string -> (report, Mineq.Spec_io.error) result
(** Parse a [.min] spec and {!run} it. *)

val lint_file : string -> (report, Mineq.Spec_io.error) result

val to_text : report -> string
(** Human rendering: summary header, then one block per finding. *)

val to_json : report -> string
(** Stable JSON (schema ["mineq-route-lint/1"]), findings rendered
    with {!Mineq_analysis.Report.finding_to_json}. *)
