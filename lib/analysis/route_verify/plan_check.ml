module Fabric = Mineq_route.Fabric
module Plan = Mineq_route.Plan
module Diagnostics = Mineq_analysis.Diagnostics

let finding ~code ~stage ~message ?witness ?hint () =
  { Diagnostics.code;
    severity = Diagnostics.Error;
    stage;
    message;
    witness;
    hint
  }

let check ?image plan =
  let fab = Plan.fabric plan in
  let stages = fab.Fabric.stages in
  let per = fab.Fabric.per in
  let r = fab.Fabric.radix in
  let fw = Plan.field_width r in
  let layout_bits = (2 * r) + (r * fw) in
  let findings = ref [] in
  let emit ~code ~stage ~message ?witness ?hint () =
    findings := finding ~code ~stage ~message ?witness ?hint () :: !findings
  in
  (match image with
  | Some img when Array.length img <> Fabric.terminals fab ->
      invalid_arg "Plan_check.check: image length mismatch"
  | _ -> ());
  let cell_ctx s x = Printf.sprintf "stage %d cell %d" (s + 1) x in
  (* Word-local invariants: R001-R004. *)
  for s = 0 to stages - 1 do
    for x = 0 to per - 1 do
      let w = Plan.state_word plan ~stage:s ~cell:x in
      let in_mask = w land ((1 lsl r) - 1) in
      let out_mask = (w lsr r) land ((1 lsl r) - 1) in
      if w lsr layout_bits <> 0 || w < 0 then
        emit ~code:"MINEQ-R001" ~stage:(Some (s + 1))
          ~message:(cell_ctx s x ^ ": state bits outside the cell layout")
          ~witness:(Printf.sprintf "word 0x%x, layout %d bits" w layout_bits)
          ~hint:"only Plan.claim/release may write state words" ();
      let derived_out = ref 0 in
      let dup = ref (-1) in
      for i = 0 to r - 1 do
        let field = (w lsr ((2 * r) + (i * fw))) land ((1 lsl fw) - 1) in
        if in_mask land (1 lsl i) = 0 then begin
          if field <> 0 then
            emit ~code:"MINEQ-R002" ~stage:(Some (s + 1))
              ~message:
                (Printf.sprintf "%s: unassigned input port %d has a stale field"
                   (cell_ctx s x) i)
              ~witness:(Printf.sprintf "field value %d" field)
              ~hint:"Plan.release must zero the assignment field" ()
        end
        else if field >= r then
          emit ~code:"MINEQ-R002" ~stage:(Some (s + 1))
            ~message:
              (Printf.sprintf "%s: input port %d assigned out-of-range port"
                 (cell_ctx s x) i)
            ~witness:(Printf.sprintf "field value %d, radix %d" field r)
            ()
        else begin
          if !derived_out land (1 lsl field) <> 0 then dup := field;
          derived_out := !derived_out lor (1 lsl field)
        end
      done;
      if !dup >= 0 then
        emit ~code:"MINEQ-R004" ~stage:(Some (s + 1))
          ~message:
            (Printf.sprintf "%s: two input ports assigned to output port %d" (cell_ctx s x)
               !dup)
          ~hint:"Plan.claim refuses Out_busy; this word was forged" ();
      if !dup < 0 && !derived_out <> out_mask then
        emit ~code:"MINEQ-R003" ~stage:(Some (s + 1))
          ~message:(cell_ctx s x ^ ": output occupancy disagrees with assignment fields")
          ~witness:
            (Printf.sprintf "mask 0x%x, fields give 0x%x" out_mask !derived_out)
          ()
    done
  done;
  (* Global invariants only make sense on locally well-formed words. *)
  if !findings = [] then begin
    (* R005: a union of complete paths claims once per stage. *)
    let live s =
      let n = ref 0 in
      for x = 0 to per - 1 do
        for i = 0 to r - 1 do
          if Plan.port_of plan ~stage:s ~cell:x ~in_port:i >= 0 then incr n
        done
      done;
      !n
    in
    let l0 = live 0 in
    for s = 1 to stages - 1 do
      let ls = live s in
      if ls <> l0 then
        emit ~code:"MINEQ-R005" ~stage:(Some (s + 1))
          ~message:
            (Printf.sprintf "stage %d carries %d assignments but stage 1 carries %d"
               (s + 1) ls l0)
          ~hint:"partial paths present: the plan is not a union of routes" ()
    done;
    (* R006: forward closure along the child tables. *)
    for s = 0 to stages - 2 do
      for x = 0 to per - 1 do
        for i = 0 to r - 1 do
          let j = Plan.port_of plan ~stage:s ~cell:x ~in_port:i in
          if j >= 0 then begin
            let a = (r * x) + j in
            let y = fab.Fabric.child.(s).(a) in
            let ip = fab.Fabric.in_port.(s).(a) in
            if Plan.port_of plan ~stage:(s + 1) ~cell:y ~in_port:ip < 0 then
              emit ~code:"MINEQ-R006" ~stage:(Some (s + 1))
                ~message:
                  (Printf.sprintf "%s out port %d: path dangles" (cell_ctx s x) j)
                ~witness:
                  (Printf.sprintf "lands on stage %d cell %d port %d, unassigned"
                     (s + 2) y ip)
                ()
          end
        done
      done
    done;
    (* R007: reverse closure — every interior assignment is driven by
       a claimed arc of the previous gap. *)
    for s = 1 to stages - 1 do
      let driven = Array.make (per * r) false in
      for x = 0 to per - 1 do
        for j = 0 to r - 1 do
          if Plan.out_taken plan ~stage:(s - 1) ~cell:x ~out_port:j then begin
            let a = (r * x) + j in
            driven.((r * fab.Fabric.child.(s - 1).(a)) + fab.Fabric.in_port.(s - 1).(a)) <-
              true
          end
        done
      done;
      for y = 0 to per - 1 do
        for ip = 0 to r - 1 do
          if Plan.port_of plan ~stage:s ~cell:y ~in_port:ip >= 0 && not (driven.((r * y) + ip))
          then
            emit ~code:"MINEQ-R007" ~stage:(Some (s + 1))
              ~message:
                (Printf.sprintf "%s input port %d: assignment no arc drives"
                   (cell_ctx s y) ip)
              ~hint:"claims must be made path-wise from the input terminal" ()
        done
      done
    done;
    (* R008/R009: end-to-end delivery. *)
    let n = Fabric.terminals fab in
    let hit = Array.make n (-1) in
    for i = 0 to n - 1 do
      let o = Plan.propagate plan i in
      if o >= 0 then begin
        if hit.(o) >= 0 then
          emit ~code:"MINEQ-R008" ~stage:None
            ~message:
              (Printf.sprintf "inputs %d and %d both reach output %d" hit.(o) i o)
            ();
        if hit.(o) < 0 then hit.(o) <- i
      end;
      match image with
      | Some img when img.(i) >= 0 && o <> img.(i) ->
          emit ~code:"MINEQ-R009" ~stage:None
            ~message:
              (Printf.sprintf "input %d reaches %s, declared image is %d" i
                 (if o < 0 then "no output" else string_of_int o)
                 img.(i))
            ()
      | _ -> ()
    done
  end;
  List.sort Diagnostics.compare_finding !findings

let is_sound ?image plan = check ?image plan = []
