(** Affine blocking certificates for destination-tag routing.

    On a radix-2 banyan fabric ([stages = log2 terminals]) with
    affine inter-stage wirings and an affine delta schedule, the link
    a path occupies at each gap is an {e affine function of the input
    address} once the traffic pattern is fixed to an affine class
    [o = A x xor a] (the BPC family: bit-permute-complement and
    every other GF(2)-affine pattern).  Two inputs collide at gap [k]
    iff their difference lies in the kernel of that gap's {e link
    matrix} [M_k] — the cell rows stacked over the port row —
    because affine offsets cancel in differences.  So the whole
    blocking question for a traffic class reduces to [stages] rank
    computations:

    - every [M_k] invertible: the class is {e blocking-free}, and
      the matrices are a checkable symbolic certificate;
    - some [M_k] singular: any nonzero kernel vector [d] yields the
      concrete blocked pair [(0, d)] — {!analyze} returns the
      minimal such [d] (echelon reduction of the kernel), and
      {!confirm} replays the pair through {!Mineq_route.Bit_follow}
      to check the refutation against the real router.

    The recurrence behind the matrices is the paper's
    independent-connection normal form, inferred per gap with
    {!Mineq_analysis.Affine.of_function}: cell maps evolve as
    [L_0 = drop-port-bit], [L_{k+1} = B_k L_k xor delta_k r_k^T],
    where [r_k] is the linear part of the stage-[k] control digit
    under the traffic class.  Fabrics outside the affine regime
    (odd radix, non-square shape, crooked wirings) are reported
    {!Unsupported}, never mis-certified. *)

module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix

(** An affine traffic class [x -> map x xor offset] on address
    vectors of [bits] bits. *)
type traffic = { name : string; bits : int; map : Gf2.t; offset : Bv.t }

val identity : bits:int -> traffic
val complement : bits:int -> traffic
(** Identity permutation; full bit-complement ([x -> x xor ones]). *)

val bit_reversal : bits:int -> traffic
(** Address-bit reversal — the FFT access pattern. *)

val perfect_shuffle : bits:int -> traffic
(** One left rotation of the address bits ([x -> 2x mod (n-1)]). *)

val transpose : bits:int -> traffic
(** Rotation by [bits/2] — matrix transposition of a square grid.
    Raises [Invalid_argument] when [bits] is odd. *)

val bpc : ?name:string -> ?complement:int -> int array -> traffic
(** [bpc perm] is the bit-permute-complement class: destination bit
    [i] is source bit [perm.(i)], xor bit [i] of [complement]
    (default 0).  Raises [Invalid_argument] unless [perm] is a
    permutation of [0 .. length - 1]. *)

val classical_classes : bits:int -> traffic list
(** The survey inventory: identity, complement, bit-reversal,
    perfect-shuffle, and transpose when [bits] is even. *)

(** Why a fabric falls outside the affine fast path. *)
type unsupported =
  | Radix_not_two  (** the certificate algebra is radix-2 only *)
  | Shape
      (** not a banyan: [stages <> log2 terminals] (e.g. Benes), or
          terminals not a power of two *)
  | Gap_not_affine of int
      (** gap index whose wiring has no shared-linear-part affine
          form — the fabric is not an independent-connection cascade
          there *)
  | Schedule_not_affine
      (** the delta schedule is not an affine function of the
          output address *)

(** A refuted class: inputs [input_a <> input_b] demand the same
    link at [gap] (0-based; gap [stages - 1] is the ejection link,
    where non-invertible traffic maps collide). *)
type collision = {
  gap : int;
  input_a : int;
  input_b : int;
  output_a : int;
  output_b : int;
}

type result =
  | Free of Gf2.t array
      (** blocking-free; the per-gap link matrices, each invertible
          — the symbolic certificate *)
  | Blocked of collision  (** minimal concrete refutation *)
  | Unsupported of unsupported

val analyze : Mineq_route.Bit_follow.t -> traffic -> result
(** Decide the traffic class against the router's fabric and
    schedule.  Cost is polynomial in [bits] plus the [O(terminals)]
    affine inferences — no path enumeration.  Raises
    [Invalid_argument] when [traffic.bits] does not match the
    fabric's terminal count. *)

val confirm : Mineq_route.Bit_follow.t -> collision -> bool
(** Replay the collision pair concretely: route
    [input_a -> output_a] in a fresh plan, then check
    [input_b -> output_b] is refused.  [true] means the symbolic
    refutation is real (test suites gate on this). *)

val survey_classes : Mineq_route.Bit_follow.t -> (traffic * result) list
(** {!analyze} every {!classical_classes} member — the fast path the
    CLI's [blocking --classes] and the route lint use. *)

val pp_result : Format.formatter -> result -> unit
