module Fabric = Mineq_route.Fabric
module Plan = Mineq_route.Plan
module Bit_follow = Mineq_route.Bit_follow
module Diagnostics = Mineq_analysis.Diagnostics
module Report = Mineq_analysis.Report

type report = {
  stages : int;
  width : int;
  terminals : int;
  radix : int;
  delta : bool;
  cdg_links : int;
  cdg_edges : int;
  forward_free : bool option;
  recirc_free : bool option;
  routed_smoke : int;
  findings : Diagnostics.finding list;
}

let finding ~code ~severity ?stage ~message ?witness ?hint () =
  { Diagnostics.code; severity; stage; message; witness; hint }

let cycle_witness cdg cycle =
  let buf = Buffer.create 96 in
  let shown = min (Array.length cycle) 6 in
  for i = 0 to shown - 1 do
    if i > 0 then Buffer.add_string buf " -> ";
    Buffer.add_string buf (Format.asprintf "%a" (Cdg.pp_link cdg) cycle.(i))
  done;
  if Array.length cycle > shown then
    Buffer.add_string buf (Printf.sprintf " -> ... (%d links)" (Array.length cycle));
  Buffer.contents buf

let run_router router =
  let fab = Bit_follow.fabric router in
  let n = Fabric.terminals fab in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  (* Forward channel-dependency graph: must certify acyclic. *)
  let fwd = Cdg.of_router router in
  let forward_free =
    match Cdg.verdict fwd with
    | Cdg.Deadlock_free ->
        emit
          (finding ~code:"MINEQ-R110" ~severity:Diagnostics.Info
             ~message:"forward CDG is acyclic: wormhole deadlock-free (Dally-Seitz)"
             ~witness:
               (Printf.sprintf "%d links, %d turns, %d SCCs" (Cdg.links fwd)
                  (Cdg.edge_count fwd) (Cdg.scc_count fwd))
             ());
        true
    | Cdg.Deadlock { cycle } ->
        emit
          (finding ~code:"MINEQ-R102" ~severity:Diagnostics.Error
             ~message:"forward CDG has a dependency cycle"
             ~witness:(cycle_witness fwd cycle)
             ~hint:"a leveled fabric cannot cycle; the tables are corrupt" ());
        false
  in
  (* Recirculating configuration: output t wired back to input t. *)
  let rc = Cdg.of_router ~recirculate:true router in
  let recirc_free =
    match Cdg.verdict rc with
    | Cdg.Deadlock_free ->
        emit
          (finding ~code:"MINEQ-R112" ~severity:Diagnostics.Info
             ~message:"recirculating configuration is deadlock-free even single-lane" ());
        true
    | Cdg.Deadlock { cycle } ->
        emit
          (finding ~code:"MINEQ-R111" ~severity:Diagnostics.Info
             ~message:"recirculating configuration has a dependency cycle"
             ~witness:(cycle_witness rc cycle)
             ~hint:
               "multi-pass traffic needs >= 2 virtual lanes or restricted injection"
             ());
        false
  in
  (* Affine blocking certificates for the classical traffic classes. *)
  (match Certify.survey_classes router with
  | (_, Certify.Unsupported u) :: _ ->
      emit
        (finding ~code:"MINEQ-R104" ~severity:Diagnostics.Info
           ~message:
             (Format.asprintf "blocking certificates unavailable: %a" Certify.pp_result
                (Certify.Unsupported u))
           ())
  | classes ->
      List.iter
        (fun ((tr : Certify.traffic), result) ->
          match result with
          | Certify.Free mats ->
              emit
                (finding ~code:"MINEQ-R113" ~severity:Diagnostics.Info
                   ~message:(Printf.sprintf "traffic class %s is blocking-free" tr.name)
                   ~witness:
                     (Printf.sprintf "certificate: %d invertible link matrices"
                        (Array.length mats))
                   ())
          | Certify.Blocked c ->
              emit
                (finding ~code:"MINEQ-R103" ~severity:Diagnostics.Info
                   ~message:(Printf.sprintf "traffic class %s blocks" tr.name)
                   ~witness:
                     (Printf.sprintf
                        "inputs %d and %d contend at gap %d (outputs %d and %d)"
                        c.Certify.input_a c.Certify.input_b c.Certify.gap
                        c.Certify.output_a c.Certify.output_b)
                   ())
          | Certify.Unsupported _ -> ())
        classes);
  (* Routing smoke test: identity permutation, plan audited word by
     word (blocked paths unwind, so the partial plan must stay sound). *)
  let plan = Plan.create fab in
  let image = Array.make n (-1) in
  let routed = ref 0 in
  for i = 0 to n - 1 do
    if Bit_follow.try_route router plan ~input:i ~output:i then begin
      image.(i) <- i;
      incr routed
    end
  done;
  List.iter emit (Plan_check.check ~image plan);
  { stages = fab.Fabric.stages;
    width = fab.Fabric.width;
    terminals = n;
    radix = fab.Fabric.radix;
    delta = true;
    cdg_links = Cdg.links fwd;
    cdg_edges = Cdg.edge_count fwd;
    forward_free = Some forward_free;
    recirc_free = Some recirc_free;
    routed_smoke = !routed;
    findings = List.sort Diagnostics.compare_finding !findings
  }

let run net =
  match Bit_follow.of_network net with
  | Some router -> run_router router
  | None ->
      let fab = Fabric.of_network net in
      { stages = fab.Fabric.stages;
        width = fab.Fabric.width;
        terminals = Fabric.terminals fab;
        radix = fab.Fabric.radix;
        delta = false;
        cdg_links = 0;
        cdg_edges = 0;
        forward_free = None;
        recirc_free = None;
        routed_smoke = -1;
        findings =
          [ finding ~code:"MINEQ-R101" ~severity:Diagnostics.Warning
              ~message:"no shared destination-tag schedule: the network is not delta"
              ~hint:"only delta networks admit static routing verification" ()
          ]
      }

let count sev r =
  List.length (List.filter (fun f -> f.Diagnostics.severity = sev) r.findings)

let errors = count Diagnostics.Error
let warnings = count Diagnostics.Warning
let infos = count Diagnostics.Info

let clean r = errors r = 0 && warnings r = 0

let exit_code r = if clean r then 0 else 1

let lint_string text =
  match Mineq.Spec_io.gaps_of_string text with
  | Error _ as e -> e
  | Ok (n, gaps) -> (
      match
        Mineq.Mi_digraph.create (List.map (Mineq.Spec_io.connection_of_gap ~n) gaps)
      with
      | net -> Ok (run net)
      | exception Invalid_argument m -> Error { Mineq.Spec_io.line = None; reason = m })

let lint_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> lint_string text
  | exception Sys_error m -> Error { Mineq.Spec_io.line = None; reason = m }

let verdict_string = function
  | None -> "n/a"
  | Some true -> "deadlock-free"
  | Some false -> "cyclic"

let to_text r =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%d stages (width %d, radix %d): %d terminals, delta: %b\n" r.stages r.width r.radix
    r.terminals r.delta;
  add "cdg: %d links, %d turns; forward: %s, recirculating: %s\n" r.cdg_links r.cdg_edges
    (verdict_string r.forward_free)
    (verdict_string r.recirc_free);
  if r.routed_smoke >= 0 then
    add "identity smoke plan: %d/%d paths routed\n" r.routed_smoke r.terminals;
  add "%d error(s), %d warning(s), %d info(s)\n" (errors r) (warnings r) (infos r);
  List.iter
    (fun (f : Diagnostics.finding) ->
      add "\n%s %s%s\n  %s\n"
        (Diagnostics.severity_name f.severity |> String.uppercase_ascii)
        f.code
        (match f.stage with Some s -> Printf.sprintf " (stage %d)" s | None -> "")
        f.message;
      Option.iter (add "  witness: %s\n") f.witness;
      Option.iter (add "  hint: %s\n") f.hint)
    r.findings;
  Buffer.contents buf

let json_opt_bool = function None -> "null" | Some b -> string_of_bool b

let to_json r =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"mineq-route-lint/1\",\n";
  add "  \"stages\": %d,\n" r.stages;
  add "  \"width\": %d,\n" r.width;
  add "  \"radix\": %d,\n" r.radix;
  add "  \"terminals\": %d,\n" r.terminals;
  add "  \"delta\": %b,\n" r.delta;
  add "  \"cdg\": { \"links\": %d, \"turns\": %d },\n" r.cdg_links r.cdg_edges;
  add "  \"forward_deadlock_free\": %s,\n" (json_opt_bool r.forward_free);
  add "  \"recirc_deadlock_free\": %s,\n" (json_opt_bool r.recirc_free);
  add "  \"routed_smoke\": %d,\n" r.routed_smoke;
  add "  \"summary\": { \"errors\": %d, \"warnings\": %d, \"infos\": %d },\n" (errors r)
    (warnings r) (infos r);
  add "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then add ",";
      add "\n    %s" (Report.finding_to_json f))
    r.findings;
  if r.findings <> [] then add "\n  ";
  add "]\n}\n";
  Buffer.contents buf
