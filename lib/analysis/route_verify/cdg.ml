module Fabric = Mineq_route.Fabric
module Bit_follow = Mineq_route.Bit_follow

(* Link ids are [((s * per) + x) * r + j]: stage-major, then cell,
   then out-port — the same flat layout as the fabric tables.  The
   successor relation is stored as one word per link: [succ_base]
   holds the id of the target cell's port-0 link at the next stage
   (or the wrap target for ejection links), [succ_mask] the set of
   admitted ports there, so enumerating turns is a shift and a mask
   test — no adjacency lists, nothing boxed. *)
type t = {
  stages : int;
  per : int;
  radix : int;
  links : int;
  recirculate : bool;
  succ_mask : int array;
  succ_base : int array;
  (* Tarjan scratch, preallocated so the pass allocates nothing *)
  index : int array;
  low : int array;
  comp : int array;
  onstack : int array;
  stack : int array;
  cs_v : int array;  (* explicit DFS call stack: node ... *)
  cs_j : int array;  (* ... and next successor port to scan *)
  mutable sccs : int;
  mutable cyclic : int;  (* a node inside some cycle, or -1 *)
}

let of_router ?(recirculate = false) router =
  let fab = Bit_follow.fabric router in
  let stages = fab.Fabric.stages in
  let per = fab.Fabric.per in
  let r = fab.Fabric.radix in
  let n = Fabric.terminals fab in
  let links = stages * per * r in
  let succ_mask = Array.make links 0 in
  let succ_base = Array.make links 0 in
  (* Geometry: which cell each link lands on.  Ejection link
     [(S-1, x, j)] carries output terminal [x * r + j]; under the
     identity wrap it re-enters as input terminal [x * r + j], i.e.
     at stage-0 cell [x] — the wrap preserves the cell label. *)
  for s = 0 to stages - 2 do
    for a = 0 to (per * r) - 1 do
      succ_base.(((s * per) * r) + a) <- (((s + 1) * per) + fab.Fabric.child.(s).(a)) * r
    done
  done;
  for x = 0 to per - 1 do
    for j = 0 to r - 1 do
      succ_base.(((((stages - 1) * per) + x) * r) + j) <- x * r
    done
  done;
  (* Ports any destination can demand at stage 0: the admitted turns
     out of a wrap (the re-entering worm has a fresh destination). *)
  let d0 = ref 0 in
  for o = 0 to n - 1 do
    d0 := !d0 lor (1 lsl Bit_follow.control router ~stage:0 ~output:o)
  done;
  (* Admitted turns: for each output, sweep the cell sets its tag
     walk can occupy.  R_0 = all cells (delta: any input reaches o);
     R_{s+1} = children of R_s under o's stage-s digit. *)
  let cur = Array.make per 0 in
  let nxt = Array.make per 0 in
  let stamp = Array.make per (-1) in
  let version = ref (-1) in
  for o = 0 to n - 1 do
    let count = ref per in
    for x = 0 to per - 1 do
      cur.(x) <- x
    done;
    for s = 0 to stages - 2 do
      let d = Bit_follow.control router ~stage:s ~output:o in
      let dn = Bit_follow.control router ~stage:(s + 1) ~output:o in
      incr version;
      let c2 = ref 0 in
      for i = 0 to !count - 1 do
        let x = cur.(i) in
        let v = (((s * per) + x) * r) + d in
        succ_mask.(v) <- succ_mask.(v) lor (1 lsl dn);
        let y = fab.Fabric.child.(s).((r * x) + d) in
        if stamp.(y) <> !version then begin
          stamp.(y) <- !version;
          nxt.(!c2) <- y;
          incr c2
        end
      done;
      Array.blit nxt 0 cur 0 !c2;
      count := !c2
    done;
    if recirculate then begin
      let d = Bit_follow.control router ~stage:(stages - 1) ~output:o in
      for i = 0 to !count - 1 do
        let v = ((((stages - 1) * per) + cur.(i)) * r) + d in
        succ_mask.(v) <- succ_mask.(v) lor !d0
      done
    end
  done;
  { stages;
    per;
    radix = r;
    links;
    recirculate;
    succ_mask;
    succ_base;
    index = Array.make links (-1);
    low = Array.make links 0;
    comp = Array.make links (-1);
    onstack = Array.make links 0;
    stack = Array.make links 0;
    cs_v = Array.make links 0;
    cs_j = Array.make links 0;
    sccs = 0;
    cyclic = -1
  }

let recirculating t = t.recirculate

let links t = t.links

let edge_count t =
  let e = ref 0 in
  for v = 0 to t.links - 1 do
    e := !e + Mineq_bitvec.Bv.popcount t.succ_mask.(v)
  done;
  !e

let describe t v =
  let pr = t.per * t.radix in
  (v / pr, (v / t.radix) mod t.per, v mod t.radix)

let iter_succ t v f =
  let m = t.succ_mask.(v) in
  for j = 0 to t.radix - 1 do
    if m land (1 lsl j) <> 0 then f (t.succ_base.(v) + j)
  done

(* Iterative Tarjan.  The DFS call stack lives in [cs_v]/[cs_j];
   each visit to the top frame advances its successor cursor by one,
   so the loop body is flat and the pass touches only the
   preallocated arrays (the int refs below stay unboxed). *)
let run_scc t =
  let v = t.links in
  Array.fill t.index 0 v (-1);
  Array.fill t.onstack 0 v 0;
  t.sccs <- 0;
  t.cyclic <- -1;
  let counter = ref 0 in
  let sp = ref 0 in
  let top = ref 0 in
  for root = 0 to v - 1 do
    if t.index.(root) < 0 then begin
      t.index.(root) <- !counter;
      t.low.(root) <- !counter;
      incr counter;
      t.stack.(!sp) <- root;
      incr sp;
      t.onstack.(root) <- 1;
      t.cs_v.(0) <- root;
      t.cs_j.(0) <- 0;
      top := 1;
      while !top > 0 do
        let f = !top - 1 in
        let u = t.cs_v.(f) in
        let j = t.cs_j.(f) in
        if j < t.radix then begin
          t.cs_j.(f) <- j + 1;
          if t.succ_mask.(u) land (1 lsl j) <> 0 then begin
            let w = t.succ_base.(u) + j in
            if w = u then t.cyclic <- u;
            if t.index.(w) < 0 then begin
              t.index.(w) <- !counter;
              t.low.(w) <- !counter;
              incr counter;
              t.stack.(!sp) <- w;
              incr sp;
              t.onstack.(w) <- 1;
              t.cs_v.(!top) <- w;
              t.cs_j.(!top) <- 0;
              incr top
            end
            else if t.onstack.(w) = 1 && t.index.(w) < t.low.(u) then t.low.(u) <- t.index.(w)
          end
        end
        else begin
          decr top;
          if !top > 0 then begin
            let p = t.cs_v.(!top - 1) in
            if t.low.(u) < t.low.(p) then t.low.(p) <- t.low.(u)
          end;
          if t.low.(u) = t.index.(u) then begin
            let size = ref 0 in
            let more = ref true in
            while !more do
              decr sp;
              let w = t.stack.(!sp) in
              t.onstack.(w) <- 0;
              t.comp.(w) <- t.sccs;
              incr size;
              if w = u then more := false
            done;
            t.sccs <- t.sccs + 1;
            if !size >= 2 then t.cyclic <- u
          end
        end
      done
    end
  done

let deadlock_free t =
  run_scc t;
  t.cyclic < 0

let scc_count t =
  run_scc t;
  t.sccs

type verdict = Deadlock_free | Deadlock of { cycle : int array }

let verdict t =
  if deadlock_free t then Deadlock_free
  else begin
    (* Walk successors inside the witness SCC until a link repeats:
       in a strongly connected component every node keeps an in-SCC
       successor, so the walk must close a cycle. *)
    let c = t.comp.(t.cyclic) in
    let path = Array.make (t.links + 1) (-1) in
    let pos = Array.make t.links (-1) in
    let len = ref 0 in
    let v = ref t.cyclic in
    let cycle = ref [||] in
    while Array.length !cycle = 0 do
      if pos.(!v) >= 0 then cycle := Array.sub path pos.(!v) (!len - pos.(!v))
      else begin
        pos.(!v) <- !len;
        path.(!len) <- !v;
        incr len;
        let nextv = ref (-1) in
        for j = 0 to t.radix - 1 do
          if !nextv < 0 && t.succ_mask.(!v) land (1 lsl j) <> 0 then begin
            let w = t.succ_base.(!v) + j in
            if t.comp.(w) = c then nextv := w
          end
        done;
        v := !nextv
      end
    done;
    Deadlock { cycle = !cycle }
  end

let pp_link t ppf v =
  let s, x, j = describe t v in
  Format.fprintf ppf "stage %d cell %d port %d" (s + 1) x j
