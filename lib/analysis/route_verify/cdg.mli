(** Channel-dependency-graph deadlock analysis of a routed fabric.

    The nodes of the CDG are the fabric's directed links — one per
    [(stage, cell, out-port)] triple, including the ejection links of
    the last stage — and its edges are the {e turns} the routing
    function admits: link [(s, x, j)] depends on link
    [(s+1, y, j')] exactly when some destination-tag walk can hold
    [(s, x, j)] while waiting for [(s+1, y, j')].  Turns are read off
    the {!Mineq_route.Bit_follow} delta schedule directly from the
    fabric's flat per-gap child tables: for every output [o] the
    construction sweeps the cells its tag walk can occupy stage by
    stage (starting from all stage-0 cells — the delta property says
    any input reaches [o]) and admits the turn from [o]'s stage-[s]
    digit onto its stage-[s+1] digit at every reachable cell.

    A wormhole router is deadlock-free iff this graph is acyclic
    (Dally–Seitz); {!deadlock_free} decides it with an iterative
    Tarjan SCC pass over preallocated int arrays — after {!of_router}
    the pass allocates nothing, which [BENCH_verify.json] gates at
    zero minor words.  A forward-only fabric is trivially leveled
    (every turn steps one stage right) so its CDG is provably
    acyclic; the pass certifies that rather than assuming it, and the
    interesting verdicts come from the {e recirculating}
    configuration ([~recirculate:true]): output terminal [t] wired
    back to input terminal [t] for multi-pass traffic, which adds
    last-stage-to-first-stage turns and — for any single-lane fabric
    with nontrivial stage-0 fan-out — a dependency cycle.  That
    verdict is the static gate the wormhole simulator consults: a
    cyclic configuration must provision multiple virtual lanes
    (Stergiou's multi-lane MINs) or restrict injection. *)

type t
(** A built CDG: flat successor tables plus the preallocated Tarjan
    scratch.  Single-threaded, like {!Mineq.Packed.scratch}. *)

val of_router : ?recirculate:bool -> Mineq_route.Bit_follow.t -> t
(** Build the CDG of the router's fabric under its delta schedule.
    [recirculate] (default [false]) wires output terminal [t] back to
    input terminal [t].  Construction allocates; the analysis passes
    below do not. *)

val recirculating : t -> bool

val links : t -> int
(** Node count: [stages * per * radix]. *)

val edge_count : t -> int
(** Admitted turns (recomputed on demand; allocation-free). *)

val describe : t -> int -> int * int * int
(** [(stage, cell, out_port)] of a link id, 0-based. *)

val iter_succ : t -> int -> (int -> unit) -> unit
(** Iterate the link ids a given link depends on (for agreement
    tests and witness validation). *)

val deadlock_free : t -> bool
(** The Tarjan pass: [true] iff no SCC has two nodes or a self-loop.
    Zero allocation. *)

val scc_count : t -> int
(** Number of strongly connected components (runs the same pass). *)

(** Outcome of {!verdict}: deadlock-free, or a concrete cycle — link
    ids in dependency order, each depending on the next and the last
    on the first. *)
type verdict = Deadlock_free | Deadlock of { cycle : int array }

val verdict : t -> verdict
(** {!deadlock_free}, plus a cycle witness extracted from a
    nontrivial SCC on failure (the witness array is the only
    allocation, and only on failure). *)

val pp_link : t -> Format.formatter -> int -> unit
(** Render a link id as [stage s cell c port p] (1-based stage, the
    diagnostics convention). *)
