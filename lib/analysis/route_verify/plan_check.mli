(** Plan-soundness lint: audit a switch-state program word by word.

    A {!Mineq_route.Plan} is sound when it is exactly a union of
    complete input-to-output paths: every state word well-formed
    (no stray bits, no stale assignment fields), occupancy masks
    agreeing with the assignment fields, every claimed arc continued
    at the next stage and driven from the previous one, and no two
    paths delivering to the same output terminal.  Routers maintain
    all of this by construction; this checker re-derives it from the
    raw words so tests, the CLI lint and future mutation of plan
    state have an independent referee.

    Findings use the stable [MINEQ-R0xx] codes (severity Error,
    1-based stages — the {!Mineq_analysis.Diagnostics} convention):

    {v
    MINEQ-R001  word-garbage         bits set above the cell layout
    MINEQ-R002  bad-assignment-field unassigned-port field nonzero, or
                                     assigned field out of range
    MINEQ-R003  out-mask-mismatch    output occupancy disagrees with
                                     the assignment fields
    MINEQ-R004  duplicate-out        two inputs assigned one out port
    MINEQ-R005  stage-count-skew     live assignments differ between
                                     stages (not a union of paths)
    MINEQ-R006  dangling-path        a claimed arc is unclaimed at the
                                     cell it lands on
    MINEQ-R007  orphan-path          an interior assignment no arc
                                     drives
    MINEQ-R008  output-collision     two inputs propagate to the same
                                     output terminal
    MINEQ-R009  realizes-mismatch    the plan disagrees with the
                                     declared image
    v} *)

val check : ?image:int array -> Mineq_route.Plan.t -> Mineq_analysis.Diagnostics.finding list
(** Every violated invariant, sorted with
    {!Mineq_analysis.Diagnostics.compare_finding}; [[]] iff the plan
    is sound.  [image] additionally checks {!Mineq_route.Plan.realizes}
    entry by entry ([-1] entries are don't-care).  Raises
    [Invalid_argument] when [image] has the wrong length. *)

val is_sound : ?image:int array -> Mineq_route.Plan.t -> bool
(** [check ?image plan = []]. *)
