(** The lint pass: run every decider over an analyzed network and
    collect structured {!Diagnostics.finding}s. *)

type report = {
  stages : int;
  width : int;
  symbolic_gaps : int;  (** gaps with a recovered independent form *)
  enumerated_gaps : int;  (** gaps the deciders must enumerate *)
  banyan : bool;
  equivalent : bool;  (** Baseline-equivalence by the characterization *)
  findings : Diagnostics.finding list;  (** sorted, errors first *)
}

val run : ?declared:Mineq.Spec_io.gap list -> Mineq.Mi_digraph.t -> report
(** Analyze and lint.  [declared] (from {!Mineq.Spec_io.gaps_of_string})
    lets declared [theta] gaps take the closed-form affine fast path
    and enables the degenerate-PIPID diagnostic (MINEQ-W002). *)

val errors : report -> int
val warnings : report -> int
val infos : report -> int

val clean : report -> bool
(** No errors and no warnings (info findings are fine). *)

val exit_code : report -> int
(** [0] when {!clean}, [1] otherwise.  (Parse failures never reach a
    report; {!Spec_lint} maps them to exit code [2].) *)
