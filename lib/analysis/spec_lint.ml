module Spec_io = Mineq.Spec_io

let lint_string text =
  match Spec_io.gaps_of_string text with
  | Error _ as e -> e
  | Ok (n, gaps) -> (
      match Mineq.Mi_digraph.create (List.map (Spec_io.connection_of_gap ~n) gaps) with
      | net -> Ok (Lint.run ~declared:gaps net)
      | exception Invalid_argument m -> Error { Spec_io.line = None; reason = m })

let lint_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> lint_string text
  | exception Sys_error m -> Error { Spec_io.line = None; reason = m }
