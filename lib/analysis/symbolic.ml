module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix
module Connection = Mineq.Connection
module Mi_digraph = Mineq.Mi_digraph
module Banyan = Mineq.Banyan
module Properties = Mineq.Properties

type gap = {
  index : int;
  conn : Connection.t;
  cls : Affine.gap_class;
  declared_theta : Mineq_perm.Perm.t option;
}

type t = { network : Mi_digraph.t; gaps : gap array }

let analyze ?declared net =
  let n = Mi_digraph.stages net in
  let conns = Array.of_list (Mi_digraph.connections net) in
  let declared =
    match declared with
    | Some l when List.length l = Array.length conns -> Array.of_list (List.map Option.some l)
    | _ -> Array.make (Array.length conns) None
  in
  let gaps =
    Array.mapi
      (fun i conn ->
        let declared_theta, cls =
          match declared.(i) with
          | Some (Mineq.Spec_io.Theta theta) ->
              (Some theta, Affine.Independent (Affine.of_theta ~n theta))
          | _ -> (None, Affine.classify conn)
        in
        { index = i + 1; conn; cls; declared_theta })
      conns
  in
  { network = net; gaps }

let network a = a.network
let stages a = Mi_digraph.stages a.network
let width a = Mi_digraph.width a.network
let gaps a = a.gaps

let forms a =
  let n = Array.length a.gaps in
  let out = Array.make n None in
  Array.iteri
    (fun i g -> match g.cls with Affine.Independent f -> out.(i) <- Some f | _ -> ())
    a.gaps;
  if Array.for_all Option.is_some out then Some (Array.map Option.get out) else None

let symbolic_gap_count a =
  Array.fold_left
    (fun acc g -> match g.cls with Affine.Independent _ -> acc + 1 | _ -> acc)
    0 a.gaps

type engine = Symbolic | Enumerated

let engine_name = function Symbolic -> "symbolic" | Enumerated -> "enumerated"

(* Per-gap independence ---------------------------------------------- *)

type independence =
  | Indep of Affine.form
  | Not_indep of { alpha : Bv.t; x : Bv.t; affine : bool }

(* The only candidate witness for [alpha] is pinned by [x = 0]:
   [beta = f alpha xor f 0].  If the [g] pin disagrees, [x = 0]
   already refutes any single [beta]; otherwise scan for a label
   where the shared candidate fails. *)
let refute_x conn alpha =
  let beta_f = Connection.f conn alpha lxor Connection.f conn 0 in
  let beta_g = Connection.g conn alpha lxor Connection.g conn 0 in
  if beta_f <> beta_g then 0
  else begin
    let found = ref 0 in
    (try
       Bv.iter_universe ~width:(Connection.width conn) ~f:(fun x ->
           if
             Connection.f conn (x lxor alpha) <> beta_f lxor Connection.f conn x
             || Connection.g conn (x lxor alpha) <> beta_g lxor Connection.g conn x
           then begin
             found := x;
             raise Exit
           end)
     with Exit -> ());
    !found
  end

let independence a i =
  let g = a.gaps.(i - 1) in
  match g.cls with
  | Affine.Independent f -> Indep f
  | Affine.Affine_split (af, ag) ->
      (* The linear parts differ in some column: that basis vector has
         two distinct constant difference maps, so no shared beta. *)
      let w = Connection.width g.conn in
      let rec find j =
        if j = w then assert false
        else if Gf2.column af.Affine.m j <> Gf2.column ag.Affine.m j then Bv.unit j
        else find (j + 1)
      in
      let alpha = find 0 in
      Not_indep { alpha; x = refute_x g.conn alpha; affine = true }
  | Affine.Opaque ->
      (* Basis sufficiency (the paper's easy characterization): a
         non-independent connection fails on some canonical basis
         vector. *)
      let w = Connection.width g.conn in
      let rec find j =
        if j = w then assert false
        else
          let alpha = Bv.unit j in
          if Option.is_none (Connection.witness g.conn alpha) then alpha else find (j + 1)
      in
      let alpha = find 0 in
      Not_indep { alpha; x = refute_x g.conn alpha; affine = false }

(* Double links ------------------------------------------------------ *)

let double_link a i =
  let g = a.gaps.(i - 1) in
  match g.cls with
  | Affine.Independent f -> if Affine.delta f = 0 then Some 0 else None
  | Affine.Affine_split (af, ag) ->
      Gf2.solve (Gf2.add af.Affine.m ag.Affine.m) (af.Affine.c lxor ag.Affine.c)
  | Affine.Opaque ->
      let found = ref None in
      (try
         Bv.iter_universe ~width:(Connection.width g.conn) ~f:(fun x ->
             let cf, cg = Connection.children g.conn x in
             if cf = cg then begin
               found := Some x;
               raise Exit
             end)
       with Exit -> ());
      !found

(* Network properties ------------------------------------------------ *)

let all_independent a = Array.for_all (fun g -> match g.cls with Affine.Independent _ -> true | _ -> false) a.gaps

let banyan a =
  if all_independent a then
    match Banyan.symbolic_check a.network with
    | Some r -> (Symbolic, r)
    | None -> (Enumerated, Banyan.check a.network)
  else (Enumerated, Banyan.check a.network)

let component_count a ~lo ~hi =
  match Properties.component_count_affine a.network ~lo ~hi with
  | Some c -> (Symbolic, c)
  | None -> (Enumerated, Properties.component_count a.network ~lo ~hi)

let p_ij a ~lo ~hi =
  let engine, found = component_count a ~lo ~hi in
  (engine, found = Properties.expected_components a.network ~lo ~hi)

let p_failures a =
  let n = stages a in
  let windows =
    List.sort_uniq compare
      (List.init n (fun j -> (1, j + 1)) @ List.init n (fun i -> (i + 1, n)))
  in
  let engine = ref Symbolic in
  let failures =
    List.filter_map
      (fun (lo, hi) ->
        let e, found = component_count a ~lo ~hi in
        if e = Enumerated then engine := Enumerated;
        let expected = Properties.expected_components a.network ~lo ~hi in
        if found = expected then None else Some (lo, hi, found, expected))
      windows
  in
  (!engine, failures)

let equivalent a =
  let eb, b = banyan a in
  if Result.is_error b then (eb, false)
  else
    let ep, fails = p_failures a in
    let engine = if eb = Symbolic && ep = Symbolic then Symbolic else Enumerated in
    (engine, fails = [])
