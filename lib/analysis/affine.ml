module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix
module Perm = Mineq_perm.Perm

type t = { m : Gf2.t; c : Bv.t }

let apply a x = Gf2.apply a.m x lxor a.c

let compose a b = { m = Gf2.mul a.m b.m; c = Gf2.apply a.m b.c lxor a.c }

let of_function ~width fn =
  let c = fn 0 in
  let m = Gf2.of_linear_map ~width (fun x -> fn x lxor c) in
  let ok = ref true in
  Bv.iter_universe ~width ~f:(fun x -> if fn x <> Gf2.apply m x lxor c then ok := false);
  if !ok then Some { m; c } else None

type form = { b : Gf2.t; cf : Bv.t; cg : Bv.t }

let delta f = f.cf lxor f.cg

let child_maps f = ({ m = f.b; c = f.cf }, { m = f.b; c = f.cg })

let beta_map f = f.b

type gap_class = Independent of form | Affine_split of t * t | Opaque

let classify conn =
  match Mineq.Connection.affine_pair conn with
  | Some ((bf, cf), (bg, cg)) ->
      if Gf2.equal bf bg then Independent { b = bf; cf; cg }
      else Affine_split ({ m = bf; c = cf }, { m = bg; c = cg })
  | None -> Opaque

let of_theta ~n theta =
  if Perm.size theta <> n then invalid_arg "Affine.of_theta: theta must have size n";
  let w = n - 1 in
  (* Child bit j is bit theta(j+1) of the link label (x << 1) lor
     port: bit i+1 of the link label is bit i of x, bit 0 is the
     port.  So row j of b has a single 1 at column theta(j+1) - 1,
     except when theta(j+1) = 0 — then the bit is the port itself:
     a zero row in b and bit j of cg. *)
  let b = Gf2.create ~rows:w ~cols:w (fun j i -> Perm.apply theta (j + 1) = i + 1) in
  let cg =
    let rec scan j acc =
      if j = w then acc
      else scan (j + 1) (if Perm.apply theta (j + 1) = 0 then Bv.set_bit acc j true else acc)
    in
    scan 0 0
  in
  { b; cf = 0; cg }

let is_degenerate f = delta f = 0

let pp_form ppf f =
  let w = Gf2.cols f.b in
  Format.fprintf ppf "@[<v>B =@,%a@,cf = %s, cg = %s@]" Gf2.pp f.b
    (Bv.to_bit_string ~width:w f.cf)
    (Bv.to_bit_string ~width:w f.cg)
