(** Rendering lint reports for humans and for machines. *)

val to_text : Lint.report -> string
(** Multi-line human report: summary header, then one block per
    finding with code, severity, witness, and hint. *)

val to_json : Lint.report -> string
(** Stable JSON document (schema ["mineq-lint/1"]):

    {v
    {
      "schema": "mineq-lint/1",
      "stages": 4,
      "width": 3,
      "symbolic_gaps": 3,
      "enumerated_gaps": 0,
      "banyan": true,
      "equivalent": true,
      "summary": { "errors": 0, "warnings": 0, "infos": 1 },
      "findings": [
        { "code": "MINEQ-I001", "severity": "info", "stage": null,
          "message": "...", "witness": null, "hint": null }
      ]
    }
    v} *)

val error_to_json : Mineq.Spec_io.error -> string
(** JSON for a parse failure (exit code 2):
    [{ "schema": "mineq-lint/1", "parse_error": { "line": ..., "reason": ... } }]. *)

(** {1 JSON building blocks}

    Shared by every report family ([mineq-lint/1],
    [mineq-route-lint/1]) so findings render identically
    everywhere. *)

val json_string : string -> string
(** Quote and escape a string as a JSON literal. *)

val finding_to_json : Diagnostics.finding -> string
(** One finding as a JSON object — the element shape of every
    [findings] array. *)
