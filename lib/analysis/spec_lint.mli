(** Lint spec files ([.min]) end to end: parse, build, analyze.

    Parse and build failures (malformed syntax, bad permutations,
    in-degree violations) surface as {!Mineq.Spec_io.error} — the CLI
    maps those to exit code 2, and {!Lint.exit_code} covers 0/1. *)

val lint_string : string -> (Lint.report, Mineq.Spec_io.error) result
(** Parse with {!Mineq.Spec_io.gaps_of_string} so declared [theta]
    gaps keep their symbolic form ({!Affine.of_theta} — no
    enumeration on the affine fast path), then lint. *)

val lint_file : string -> (Lint.report, Mineq.Spec_io.error) result
(** [lint_string] on the file contents; I/O errors become a
    [line = None] error. *)
