(** Affine maps over GF(2) and their inference from connections —
    the substrate of the symbolic analyzer.

    An affine map is [x -> M x xor c].  A connection [(f, g)] whose
    two child functions are affine {e with the same linear part} is
    exactly an independent connection (the paper's normal form
    [f x = B x xor f 0], [g x = B x xor g 0]); affine child functions
    with different linear parts, or non-affine child functions, refute
    independence.  {!classify} decides which case holds and carries
    the evidence either way. *)

module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix

type t = { m : Gf2.t; c : Bv.t }
(** The map [x -> m x xor c]. *)

val apply : t -> Bv.t -> Bv.t

val compose : t -> t -> t
(** [compose a b] is [a] after [b]: [x -> a.m (b.m x xor b.c) xor a.c]. *)

val of_function : width:int -> (Bv.t -> Bv.t) -> t option
(** Infer the affine form of a tabulatable function, verifying it
    pointwise over the whole universe (O(2^width)). *)

(** The paper's independent-connection normal form: a shared linear
    part [b] and the two offsets.  [delta] below is the port
    difference [cf xor cg]; [delta = 0] means every link is doubled. *)
type form = { b : Gf2.t; cf : Bv.t; cg : Bv.t }

val delta : form -> Bv.t

val child_maps : form -> t * t

val beta_map : form -> Gf2.t
(** The independence witness map [alpha -> beta]: it {e is} the
    shared linear part. *)

(** Outcome of analyzing one gap. *)
type gap_class =
  | Independent of form
      (** Both children affine, shared linear part — the gap is
          independent, with the full symbolic form recovered. *)
  | Affine_split of t * t
      (** Both children affine but with different linear parts — not
          independent; any basis vector on which the parts differ is
          a refuting [alpha]. *)
  | Opaque
      (** Some child function is not affine — not independent; the
          symbolic engine must fall back to enumeration. *)

val classify : Mineq.Connection.t -> gap_class
(** O(2^width) inference + verification via
    {!Mineq.Connection.affine_pair}. *)

val of_theta : n:int -> Mineq_perm.Perm.t -> form
(** Closed form for a declared PIPID stage (paper, Section 4): with
    [k = theta^-1 0], entry [(j, i)] of [b] is [theta(j+1) = i+1],
    [cf = 0] and [cg = e_{k-1}] (or [0] when [k = 0]: Figure 5's
    degenerate stage, [f = g]).  O(n^2), no enumeration — the truly
    symbolic route for [gap theta] spec lines.  Agreement with
    [classify (Pipid_net.connection ~n theta)] is test-enforced. *)

val is_degenerate : form -> bool
(** [delta = 0]: every node's two out-links are doubled. *)

val pp_form : Format.formatter -> form -> unit
