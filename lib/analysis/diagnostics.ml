module Bv = Mineq_bitvec.Bv
module Perm = Mineq_perm.Perm

type severity = Error | Warning | Info

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type finding = {
  code : string;
  severity : severity;
  stage : int option;
  message : string;
  witness : string option;
  hint : string option;
}

let compare_finding a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let stage_key = function None -> -1 | Some s -> s in
    let c = compare (stage_key a.stage) (stage_key b.stage) in
    if c <> 0 then c else compare a.code b.code

let bits ~width v = Bv.to_bit_string ~width v

let not_banyan ~width (v : Mineq.Banyan.violation) =
  {
    code = "MINEQ-E001";
    severity = Error;
    stage = None;
    message = "not Banyan: some input/output pair is not joined by exactly one path";
    witness =
      Some
        (Printf.sprintf "stage-1 node %s reaches stage-n node %s by %d path(s)"
           (bits ~width v.source) (bits ~width v.sink) v.paths);
    hint = Some "every gap of a Banyan network must realize a path-unique butterfly pattern";
  }

let p_violation code family ~lo ~hi ~found ~expected =
  {
    code;
    severity = Error;
    stage = None;
    message =
      Printf.sprintf "%s fails: (G)_{%d..%d} has %d connected component(s), expected %d" family
        lo hi found expected;
    witness = Some (Printf.sprintf "component count %d != 2^(n-1-(hi-lo)) = %d" found expected);
    hint = Some "the component-count properties P(1,j) and P(i,n) are necessary for Baseline-equivalence";
  }

let p1j_violation ~lo ~hi ~found ~expected =
  p_violation "MINEQ-E002" (Printf.sprintf "P(%d,%d)" lo hi) ~lo ~hi ~found ~expected

let pin_violation ~lo ~hi ~found ~expected =
  p_violation "MINEQ-E003" (Printf.sprintf "P(%d,%d)" lo hi) ~lo ~hi ~found ~expected

let double_link ~gap ~width x =
  {
    code = "MINEQ-W001";
    severity = Warning;
    stage = Some gap;
    message = Printf.sprintf "double link at gap %d: a node has both children equal" gap;
    witness = Some (Printf.sprintf "node %s satisfies f x = g x" (bits ~width x));
    hint = Some "a double link halves the reachable set; Banyan networks exclude them";
  }

let degenerate_pipid ~gap theta =
  {
    code = "MINEQ-W002";
    severity = Warning;
    stage = Some gap;
    message =
      Printf.sprintf "degenerate PIPID stage at gap %d: theta fixes digit 0, so f = g" gap;
    witness = Some (Format.asprintf "theta = %a sends 0 to 0 (Figure 5)" Perm.pp theta);
    hint = Some "use a permutation moving digit 0 so the port bit reaches the child label";
  }

let non_independent ~gap ~width ~alpha ~x =
  {
    code = "MINEQ-W003";
    severity = Warning;
    stage = Some gap;
    message = Printf.sprintf "gap %d is not independent: no witness map alpha -> beta" gap;
    witness =
      Some
        (Printf.sprintf "alpha = %s has no beta; candidate fails at x = %s" (bits ~width alpha)
           (bits ~width x));
    hint =
      Some
        "Theorem 3 needs every gap independent; rebuild the stage as B x xor c with a shared linear part";
  }

let non_affine ~gap =
  {
    code = "MINEQ-W004";
    severity = Warning;
    stage = Some gap;
    message =
      Printf.sprintf "gap %d has a non-affine child function; deciders fall back to enumeration"
        gap;
    witness = None;
    hint = Some "affine gaps let the analyzer use O(n^3) rank/kernel deciders";
  }

let equivalent_symbolic ~stages =
  {
    code = "MINEQ-I001";
    severity = Info;
    stage = None;
    message =
      Printf.sprintf "Baseline-equivalent (%d stages), decided symbolically via Theorem 3" stages;
    witness = None;
    hint = None;
  }

let equivalent_enumerated ~stages =
  {
    code = "MINEQ-I002";
    severity = Info;
    stage = None;
    message =
      Printf.sprintf "Baseline-equivalent (%d stages), decided by enumeration" stages;
    witness = None;
    hint = None;
  }
