module D = Diagnostics

type report = {
  stages : int;
  width : int;
  symbolic_gaps : int;
  enumerated_gaps : int;
  banyan : bool;
  equivalent : bool;
  findings : D.finding list;
}

let run ?declared net =
  let a = Symbolic.analyze ?declared net in
  let stages = Symbolic.stages a in
  let width = Symbolic.width a in
  let gaps = Symbolic.gaps a in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  Array.iter
    (fun (g : Symbolic.gap) ->
      (match Symbolic.independence a g.index with
      | Symbolic.Indep form ->
          (* A declared theta fixing digit 0 is the paper's Figure-5
             degeneracy: cg = 0, so f = g everywhere. *)
          (match g.declared_theta with
          | Some theta when Affine.is_degenerate form -> emit (D.degenerate_pipid ~gap:g.index theta)
          | _ -> ())
      | Symbolic.Not_indep { alpha; x; affine } ->
          emit (D.non_independent ~gap:g.index ~width ~alpha ~x);
          if not affine then emit (D.non_affine ~gap:g.index));
      match Symbolic.double_link a g.index with
      | Some x -> emit (D.double_link ~gap:g.index ~width x)
      | None -> ())
    gaps;
  let _, banyan_result = Symbolic.banyan a in
  (match banyan_result with
  | Ok () -> ()
  | Error v -> emit (D.not_banyan ~width v));
  let _, failures = Symbolic.p_failures a in
  List.iter
    (fun (lo, hi, found, expected) ->
      if lo = 1 then emit (D.p1j_violation ~lo ~hi ~found ~expected)
      else emit (D.pin_violation ~lo ~hi ~found ~expected))
    failures;
  let engine, equivalent = Symbolic.equivalent a in
  if equivalent then
    emit
      (match engine with
      | Symbolic.Symbolic -> D.equivalent_symbolic ~stages
      | Symbolic.Enumerated -> D.equivalent_enumerated ~stages);
  let symbolic_gaps = Symbolic.symbolic_gap_count a in
  {
    stages;
    width;
    symbolic_gaps;
    enumerated_gaps = Array.length gaps - symbolic_gaps;
    banyan = Result.is_ok banyan_result;
    equivalent;
    findings = List.sort D.compare_finding !findings;
  }

let count sev r =
  List.length (List.filter (fun (f : D.finding) -> f.D.severity = sev) r.findings)

let errors r = count D.Error r
let warnings r = count D.Warning r
let infos r = count D.Info r

let clean r = errors r = 0 && warnings r = 0

let exit_code r = if clean r then 0 else 1
