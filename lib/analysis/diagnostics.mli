(** Structured lint findings with stable codes.

    Every diagnostic the analyzer can emit has a stable code usable
    in scripts and CI greps:

    {v
    MINEQ-E001  not-banyan              some input/output pair has != 1 path
    MINEQ-E002  p1j-violation           P(1,j) component count wrong
    MINEQ-E003  pin-violation           P(i,n) component count wrong
    MINEQ-W001  double-link             a node has both children equal
    MINEQ-W002  degenerate-pipid-stage  declared theta sends 0 to 0 (Figure 5)
    MINEQ-W003  non-independent-stage   a gap has no shared witness map
    MINEQ-W004  non-affine-stage        a child function is not affine; the
                                        deciders fall back to enumeration
    MINEQ-I001  equivalent-symbolic     Baseline-equivalent, decided symbolically
    MINEQ-I002  equivalent-enumerated   Baseline-equivalent, decided by enumeration
    v}

    Errors refute Baseline-equivalence outright ([P(1,j)]/[P(i,n)]
    are necessary, Banyan-ness too); warnings flag structure that
    blocks the symbolic fast paths or the Theorem-3 sufficient
    condition; infos are positive verdicts.

    The routing verifier ([lib/analysis/route_verify/]) shares this
    finding type and extends the code space with three further
    families: [MINEQ-R0xx] plan-soundness errors ({!Mineq_route_verify.Plan_check}),
    [MINEQ-R1xx] route-lint verdicts ({!Mineq_route_verify.Route_lint})
    and [MINEQ-R2xx] CLI [--perm]/[--churn] parse findings ([bin/mineq_cli.ml]);
    the code tables live in those interfaces and in DESIGN.md
    ("Static verification layer"). *)

type severity = Error | Warning | Info

val severity_name : severity -> string

type finding = {
  code : string;  (** stable, e.g. ["MINEQ-W003"] *)
  severity : severity;
  stage : int option;
      (** 1-based gap index for per-gap findings, [None] for
          network-level ones *)
  message : string;
  witness : string option;  (** concrete counterexample, rendered *)
  hint : string option;  (** how to fix *)
}

val compare_finding : finding -> finding -> int
(** Severity (errors first), then stage, then code. *)

(** {1 Constructors} *)

val not_banyan : width:int -> Mineq.Banyan.violation -> finding
val p1j_violation : lo:int -> hi:int -> found:int -> expected:int -> finding
val pin_violation : lo:int -> hi:int -> found:int -> expected:int -> finding
val double_link : gap:int -> width:int -> Mineq_bitvec.Bv.t -> finding
val degenerate_pipid : gap:int -> Mineq_perm.Perm.t -> finding

val non_independent : gap:int -> width:int -> alpha:Mineq_bitvec.Bv.t -> x:Mineq_bitvec.Bv.t -> finding

val non_affine : gap:int -> finding
val equivalent_symbolic : stages:int -> finding
val equivalent_enumerated : stages:int -> finding
