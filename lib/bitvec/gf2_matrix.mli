(** Matrices over GF(2), used for the linear-algebra view of
    independent connections.

    A matrix with [rows] rows and [cols] columns maps vectors of width
    [cols] to vectors of width [rows] by [apply].  Rows are stored as
    bit vectors ({!Bv.t}); entry [(i, j)] is bit [j] of row [i]. *)

type t

val create : rows:int -> cols:int -> (int -> int -> bool) -> t
(** [create ~rows ~cols f] has entry [(i, j)] equal to [f i j]. *)

val of_rows : cols:int -> Bv.t array -> t
(** Build from row vectors.  Raises [Invalid_argument] if a row does
    not fit in [cols] bits. *)

val zero : rows:int -> cols:int -> t

val identity : int -> t
(** [identity n] is the [n x n] identity. *)

val rows : t -> int
val cols : t -> int

val row : t -> int -> Bv.t
(** [row m i] is row [i] as a bit vector. *)

val entry : t -> int -> int -> bool

val column : t -> int -> Bv.t
(** [column m j] is column [j] as a bit vector of width [rows m]. *)

val equal : t -> t -> bool

val apply : t -> Bv.t -> Bv.t
(** [apply m x] is the matrix-vector product [m * x]. *)

val mul : t -> t -> t
(** Matrix product.  [cols a] must equal [rows b]. *)

val add : t -> t -> t
(** Entry-wise xor. *)

val transpose : t -> t

val of_linear_map : width:int -> (Bv.t -> Bv.t) -> t
(** [of_linear_map ~width f] is the matrix of [f] restricted to the
    canonical basis.  [f] is only evaluated on basis vectors; use
    {!is_linear} first if [f]'s linearity is in doubt. *)

val is_linear : width:int -> (Bv.t -> Bv.t) -> bool
(** Exhaustively checks [f (x xor y) = f x xor f y] and [f 0 = 0]
    over the whole universe (cost [O(4^width)] pair checks reduced to
    [O(2^width)] by comparing against the matrix of [f]). *)

val rank : t -> int

val is_invertible : t -> bool

val inverse : t -> t option
(** [None] when the matrix is singular. *)

val kernel_basis : t -> Bv.t list
(** A basis of the null space [{x | m x = 0}]. *)

val solve : t -> Bv.t -> Bv.t option
(** [solve m b] is some [x] with [m x = b], or [None]. *)

val row_space_basis : t -> Bv.t list
(** A basis (in row-echelon order) of the span of the rows. *)

val random_invertible : Random.State.t -> int -> t
(** A uniformly-ish random invertible [n x n] matrix (rejection
    sampling on random matrices). *)

val pp : Format.formatter -> t -> unit
