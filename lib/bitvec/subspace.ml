type t = { width : int; basis : Bv.t list (* reduced echelon, leading bits descending *) }

let width s = s.width

(* Insert a vector into a reduced-echelon basis, keeping it reduced.
   The representation invariant: basis vectors have pairwise distinct
   leading (most significant) bits, listed in descending order, and
   each leading bit appears in no other basis vector. *)
let leading_bit v =
  if v = 0 then invalid_arg "Subspace.leading_bit: zero vector";
  let rec go i = if v lsr i = 1 then i else go (i + 1) in
  go 0

let reduce_against basis v =
  List.fold_left (fun v b -> if Bv.bit v (leading_bit b) then v lxor b else v) v basis

let insert basis v =
  let v = reduce_against basis v in
  if v = 0 then basis
  else begin
    let lv = leading_bit v in
    (* Reduce existing vectors against v, then insert in order. *)
    let basis = List.map (fun b -> if Bv.bit b lv then b lxor v else b) basis in
    let rec ins = function
      | [] -> [ v ]
      | b :: rest as l -> if leading_bit b > lv then b :: ins rest else v :: l
    in
    ins basis
  end

let zero ~width =
  if width < 0 || width > Bv.max_width then invalid_arg "Subspace.zero: bad width";
  { width; basis = [] }

let of_generators ~width gens =
  List.iter
    (fun v ->
      if not (Bv.is_valid ~width v) then invalid_arg "Subspace.of_generators: vector too wide")
    gens;
  { width; basis = List.fold_left insert [] gens }

let full ~width = of_generators ~width (Bv.units ~width)

let basis s = s.basis

let dim s = List.length s.basis

let cardinal s = 1 lsl dim s

let mem s v = reduce_against s.basis v = 0

let equal a b = a.width = b.width && a.basis = b.basis

let subset a b = a.width = b.width && List.for_all (mem b) a.basis

let add_vector s v =
  if not (Bv.is_valid ~width:s.width v) then invalid_arg "Subspace.add_vector: vector too wide";
  { s with basis = insert s.basis v }

let sum a b =
  if a.width <> b.width then invalid_arg "Subspace.sum: width mismatch";
  { a with basis = List.fold_left insert a.basis b.basis }

let elements s =
  let els =
    List.fold_left (fun acc b -> acc @ List.map (fun x -> x lxor b) acc) [ 0 ] s.basis
  in
  List.sort compare els

let intersection a b =
  if a.width <> b.width then invalid_arg "Subspace.intersection: width mismatch";
  (* Zassenhaus would be cleaner; subspaces here are tiny, so filter
     the smaller side's elements through the larger side. *)
  let small, large = if dim a <= dim b then (a, b) else (b, a) in
  of_generators ~width:a.width (List.filter (mem large) (elements small))

let complement_basis s =
  let rec grow acc cur = function
    | [] -> List.rev acc
    | e :: rest ->
        if mem cur e then grow acc cur rest
        else grow (e :: acc) (add_vector cur e) rest
  in
  grow [] s (Bv.units ~width:s.width)

let coset_of s v = reduce_against s.basis v

let same_coset s x y = mem s (x lxor y)

let is_translate s xs =
  match xs with
  | [] -> false
  | x0 :: rest ->
      let unique = List.sort_uniq compare xs in
      List.length unique = cardinal s
      && List.for_all (fun x -> same_coset s x0 x) rest

let preimage m s =
  if Gf2_matrix.rows m <> s.width then invalid_arg "Subspace.preimage: width mismatch";
  let width = Gf2_matrix.cols m in
  (* {x | m x in s} = span(particular solutions of a basis of
     (s meet Im m)  union  ker m). *)
  let image = of_generators ~width:s.width (List.init width (Gf2_matrix.column m)) in
  let hit = intersection s image in
  let particulars =
    List.map
      (fun v -> match Gf2_matrix.solve m v with Some x -> x | None -> assert false)
      hit.basis
  in
  of_generators ~width (particulars @ Gf2_matrix.kernel_basis m)

let translate_of_set ~width a b =
  ignore width;
  match (a, b) with
  | [], [] -> Some 0
  | [], _ | _, [] -> None
  | a0 :: _, b0 :: _ ->
      let v = a0 lxor b0 in
      let sa = List.sort compare (List.map (fun x -> x lxor v) a) in
      let sb = List.sort compare b in
      if sa = sb then Some v
      else begin
        (* The pairing of a0 may differ; try all offsets induced by b. *)
        let sa0 = List.sort compare a in
        let try_offset bv =
          let v = a0 lxor bv in
          let shifted = List.sort compare (List.map (fun x -> x lxor v) sa0) in
          if shifted = sb then Some v else None
        in
        List.find_map try_offset b
      end

let pp ppf s =
  Format.fprintf ppf "@[<h>span{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf v -> Bv.pp ~width:s.width ppf v))
    s.basis
