(** Linear subspaces of [Z2^w] and their cosets (translated sets).

    The paper's Lemma 2 and Proposition 1 argue with sets of node
    labels that are subspaces or translates of subspaces ("the
    [v]-translated set of [A]").  This module provides that
    vocabulary. *)

type t
(** A subspace, stored as a reduced row-echelon basis so that
    structural equality coincides with subspace equality. *)

val width : t -> int

val zero : width:int -> t
(** The trivial subspace [{0}]. *)

val full : width:int -> t
(** The whole space [Z2^width]. *)

val of_generators : width:int -> Bv.t list -> t
(** Span of the given vectors. *)

val basis : t -> Bv.t list
(** The canonical (echelon) basis, possibly empty. *)

val dim : t -> int

val cardinal : t -> int
(** [2^(dim s)]. *)

val mem : t -> Bv.t -> bool

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] holds when every element of [a] lies in [b]. *)

val add_vector : t -> Bv.t -> t
(** Span of the subspace and one more vector. *)

val sum : t -> t -> t
(** Smallest subspace containing both. *)

val intersection : t -> t -> t

val elements : t -> Bv.t list
(** All [2^dim] elements, ascending.  Intended for small subspaces. *)

val preimage : Gf2_matrix.t -> t -> t
(** [preimage m s] is the subspace [{x | m x in s}] (the rows of [m]
    must match [width s]; the result lives in [cols m] bits). *)

val complement_basis : t -> Bv.t list
(** Vectors extending [basis t] to a basis of the full space. *)

val coset_of : t -> Bv.t -> Bv.t
(** [coset_of s v] is the canonical representative of [v + s]
    (the minimum element of the coset), so two vectors are in the same
    translate of [s] iff their representatives are equal. *)

val same_coset : t -> Bv.t -> Bv.t -> bool

val is_translate : t -> Bv.t list -> bool
(** [is_translate s xs] holds when the set [xs] (no duplicates
    expected) is exactly one coset [v + s].  The paper's
    "translated set" check. *)

val translate_of_set : width:int -> Bv.t list -> Bv.t list -> Bv.t option
(** [translate_of_set ~width a b] is [Some v] when the set [b] equals
    [{x xor v | x in a}] for some (any) [v], [None] otherwise.  Used to
    check Lemma 2's claim that the buddy set [B_j] is a translate of
    [A_j]. *)

val pp : Format.formatter -> t -> unit
