(** Bit vectors of fixed width, i.e. elements of the group [Z2^w].

    A bit vector of width [w] is represented as a non-negative [int]
    whose bits [0 .. w-1] carry the coordinates; bit [i] of the
    integer is coordinate [x_i] in the paper's notation
    [(x_{w-1}, ..., x_1, x_0)].  The group operation is bitwise
    exclusive-or ([lxor]), written [+] in [Z2^w].

    Widths up to [Sys.int_size - 1] (i.e. 62 on 64-bit systems) are
    supported, far beyond what any multistage interconnection network
    experiment needs. *)

type t = int
(** A bit vector.  The width is carried by context, not by the value. *)

val max_width : int
(** Largest supported width. *)

val zero : t
(** The all-zeroes vector (group identity). *)

val is_valid : width:int -> t -> bool
(** [is_valid ~width x] holds when [x] only uses bits [0 .. width-1]. *)

val universe_size : width:int -> int
(** [universe_size ~width] is [2^width], the number of vectors. *)

val bit : t -> int -> bool
(** [bit x i] is coordinate [i] of [x]. *)

val set_bit : t -> int -> bool -> t
(** [set_bit x i b] is [x] with coordinate [i] set to [b]. *)

val unit : int -> t
(** [unit i] is the canonical basis vector [e_i] (only bit [i] set). *)

val units : width:int -> t list
(** [units ~width] is the canonical basis [e_0; ...; e_{width-1}]. *)

val xor : t -> t -> t
(** Group addition in [Z2^w]. *)

val dot : t -> t -> bool
(** [dot x y] is the GF(2) inner product [xor_i (x_i * y_i)]. *)

val popcount : t -> int
(** Number of set bits (branchless SWAR — constant time in the word
    width). *)

val parity : t -> bool
(** [parity x] is [popcount x] modulo 2. *)

val fold_universe : width:int -> init:'a -> f:('a -> t -> 'a) -> 'a
(** [fold_universe ~width ~init ~f] folds [f] over all [2^width]
    vectors in increasing integer order. *)

val iter_universe : width:int -> f:(t -> unit) -> unit
(** Iterate over all [2^width] vectors in increasing integer order. *)

val to_tuple_string : width:int -> t -> string
(** [(x_{w-1}, ..., x_0)] rendering used in the paper's figures,
    e.g. ["(0,1,1)"] for [3] at width 3. *)

val to_bit_string : width:int -> t -> string
(** Plain binary rendering, most significant coordinate first,
    e.g. ["011"] for [3] at width 3. *)

val of_bit_string : string -> t
(** Inverse of {!to_bit_string}.  Raises [Invalid_argument] on
    characters other than ['0'] and ['1']. *)

val of_bits : bool list -> t
(** [of_bits [x_{w-1}; ...; x_0]] builds a vector from coordinates
    listed most significant first (mirrors {!to_bit_string}). *)

val to_bits : width:int -> t -> bool list
(** Coordinates, most significant first. *)

val pp : width:int -> Format.formatter -> t -> unit
(** Pretty-printer using {!to_bit_string}. *)
