type t = { rows : Bv.t array; cols : int }

let check_row ~cols r =
  if not (Bv.is_valid ~width:cols r) then
    invalid_arg "Gf2_matrix: row does not fit in the column width"

let of_rows ~cols rows =
  Array.iter (check_row ~cols) rows;
  { rows = Array.copy rows; cols }

let create ~rows ~cols f =
  let mk i =
    let rec build j acc = if j < 0 then acc else build (j - 1) (Bv.set_bit acc j (f i j)) in
    build (cols - 1) 0
  in
  { rows = Array.init rows mk; cols }

let zero ~rows ~cols = { rows = Array.make rows 0; cols }

let identity n = { rows = Array.init n (fun i -> Bv.unit i); cols = n }

let rows m = Array.length m.rows
let cols m = m.cols
let row m i = m.rows.(i)
let entry m i j = Bv.bit m.rows.(i) j

let column m j =
  let r = rows m in
  let rec build i acc = if i = r then acc else build (i + 1) (Bv.set_bit acc i (entry m i j)) in
  build 0 0

let equal a b = a.cols = b.cols && a.rows = b.rows

let apply m x =
  let r = rows m in
  let rec build i acc =
    if i = r then acc else build (i + 1) (Bv.set_bit acc i (Bv.dot m.rows.(i) x))
  in
  build 0 0

let transpose m = create ~rows:m.cols ~cols:(rows m) (fun i j -> entry m j i)

let mul a b =
  if a.cols <> rows b then invalid_arg "Gf2_matrix.mul: dimension mismatch";
  let bt = transpose b in
  create ~rows:(rows a) ~cols:b.cols (fun i j -> Bv.dot a.rows.(i) bt.rows.(j))

let add a b =
  if a.cols <> b.cols || rows a <> rows b then
    invalid_arg "Gf2_matrix.add: dimension mismatch";
  { rows = Array.mapi (fun i r -> r lxor b.rows.(i)) a.rows; cols = a.cols }

let of_linear_map ~width f =
  (* Column [i] of the matrix is [f e_i]; build rows from columns. *)
  let images = Array.init width (fun i -> f (Bv.unit i)) in
  create ~rows:width ~cols:width (fun i j -> Bv.bit images.(j) i)

let is_linear ~width f =
  f 0 = 0
  &&
  let m = of_linear_map ~width f in
  let ok = ref true in
  Bv.iter_universe ~width ~f:(fun x -> if f x <> apply m x then ok := false);
  !ok

(* Gaussian elimination working on an array of rows, each row a bit
   vector of width [cols] (optionally extended with bookkeeping bits by
   the caller).  Returns the echelonized rows and the list of pivot
   columns, scanning columns from most significant to least. *)
let echelonize ~cols rows =
  let rows = Array.copy rows in
  let n = Array.length rows in
  let pivots = ref [] in
  let next = ref 0 in
  for j = cols - 1 downto 0 do
    if !next < n then begin
      (* Find a row at or below [!next] with bit [j] set. *)
      let k = ref (-1) in
      (try
         for i = !next to n - 1 do
           if Bv.bit rows.(i) j then begin
             k := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !k >= 0 then begin
        let tmp = rows.(!next) in
        rows.(!next) <- rows.(!k);
        rows.(!k) <- tmp;
        for i = 0 to n - 1 do
          if i <> !next && Bv.bit rows.(i) j then rows.(i) <- rows.(i) lxor rows.(!next)
        done;
        pivots := (j, !next) :: !pivots;
        incr next
      end
    end
  done;
  (rows, List.rev !pivots)

let rank m =
  let _, pivots = echelonize ~cols:m.cols m.rows in
  List.length pivots

let row_space_basis m =
  let rows, pivots = echelonize ~cols:m.cols m.rows in
  List.map (fun (_, i) -> rows.(i)) pivots

let is_invertible m = rows m = m.cols && rank m = m.cols

let inverse m =
  let n = rows m in
  if n <> m.cols then None
  else begin
    (* Augment each row with the identity in bits [cols .. 2*cols-1]. *)
    let aug = Array.mapi (fun i r -> r lor (Bv.unit (n + i))) m.rows in
    let ech, pivots = echelonize ~cols:n aug in
    if List.length pivots <> n then None
    else begin
      (* Row with pivot column [j] holds row [j] of the inverse in the
         high bits (after full reduction the low part is e_j). *)
      let inv = Array.make n 0 in
      List.iter (fun (j, i) -> inv.(j) <- ech.(i) lsr n) pivots;
      Some { rows = inv; cols = n }
    end
  end

let kernel_basis m =
  let n = m.cols in
  (* Echelonize the transpose-free way: work with columns by solving
     [m x = 0] via elimination on an augmented transpose.  Simpler:
     echelonize rows, then free columns parameterize the kernel. *)
  let ech, pivots = echelonize ~cols:n m.rows in
  let pivot_cols = List.map fst pivots in
  let is_pivot j = List.mem j pivot_cols in
  let free_cols = List.filter (fun j -> not (is_pivot j)) (List.init n (fun j -> j)) in
  let basis_for_free jf =
    (* x_{jf} = 1, other free vars 0; pivot variables determined by
       their echelon rows: row with pivot jp says x_{jp} = xor of the
       non-pivot entries of that row times the free assignment. *)
    let x = ref (Bv.unit jf) in
    List.iter
      (fun (jp, i) ->
        if Bv.bit ech.(i) jf then x := Bv.set_bit !x jp true)
      pivots;
    !x
  in
  List.map basis_for_free free_cols

let solve m b =
  let n = m.cols in
  let r = rows m in
  (* Augment rows with b as an extra low... use an extra high bit at
     position [n] carrying b_i. *)
  let aug = Array.mapi (fun i row -> row lor (if Bv.bit b i then Bv.unit n else 0)) m.rows in
  ignore r;
  let ech, pivots = echelonize ~cols:n aug in
  (* Inconsistent if some row is 0 on the low n bits but 1 on bit n. *)
  let inconsistent =
    Array.exists (fun row -> row land (Bv.universe_size ~width:n - 1) = 0 && Bv.bit row n) ech
  in
  if inconsistent then None
  else begin
    let x = ref 0 in
    List.iter (fun (jp, i) -> if Bv.bit ech.(i) n then x := Bv.set_bit !x jp true) pivots;
    Some !x
  end

let random_invertible rng n =
  let bound = Bv.universe_size ~width:n in
  let rec attempt () =
    let m = { rows = Array.init n (fun _ -> Random.State.int rng bound); cols = n } in
    if is_invertible m then m else attempt ()
  in
  attempt ()

let pp ppf m =
  let r = rows m in
  Format.pp_open_vbox ppf 0;
  for i = 0 to r - 1 do
    if i > 0 then Format.pp_print_cut ppf ();
    Format.pp_print_string ppf (Bv.to_bit_string ~width:m.cols m.rows.(i))
  done;
  Format.pp_close_box ppf ()
