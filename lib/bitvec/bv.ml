type t = int

let max_width = Sys.int_size - 1

let zero = 0

let is_valid ~width x =
  width >= 0 && width <= max_width && x >= 0 && x lsr width = 0

let universe_size ~width =
  if width < 0 || width > max_width then
    invalid_arg "Bv.universe_size: width out of range";
  1 lsl width

let bit x i = (x lsr i) land 1 = 1

let set_bit x i b = if b then x lor (1 lsl i) else x land lnot (1 lsl i)

let unit i = 1 lsl i

let units ~width = List.init width (fun i -> unit i)

let xor x y = x lxor y

(* Branchless SWAR popcount.  The masks are the usual 64-bit
   constants; written through [Int64.to_int] because the literals
   exceed OCaml's 63-bit int range (the truncation only drops bit 63,
   which a native int does not have).  [parity]/[dot] sit under every
   GF(2) matrix-vector product, so this is a hot serial kernel. *)
let m1 = Int64.to_int 0x5555555555555555L

let m2 = Int64.to_int 0x3333333333333333L

let m4 = Int64.to_int 0x0F0F0F0F0F0F0F0FL

let h01 = Int64.to_int 0x0101010101010101L

let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * h01) lsr 56

let parity x = popcount x land 1 = 1

let dot x y = parity (x land y)

let fold_universe ~width ~init ~f =
  let n = universe_size ~width in
  let rec go acc x = if x = n then acc else go (f acc x) (x + 1) in
  go init 0

let iter_universe ~width ~f =
  let n = universe_size ~width in
  for x = 0 to n - 1 do
    f x
  done

let to_bits ~width x = List.init width (fun i -> bit x (width - 1 - i))

let of_bits bits =
  List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0 bits

let to_bit_string ~width x =
  String.init width (fun i -> if bit x (width - 1 - i) then '1' else '0')

let of_bit_string s =
  String.fold_left
    (fun acc c ->
      match c with
      | '0' -> acc lsl 1
      | '1' -> (acc lsl 1) lor 1
      | _ -> invalid_arg "Bv.of_bit_string: expected '0' or '1'")
    0 s

let to_tuple_string ~width x =
  let bits = to_bits ~width x in
  "(" ^ String.concat "," (List.map (fun b -> if b then "1" else "0") bits) ^ ")"

let pp ~width ppf x = Format.pp_print_string ppf (to_bit_string ~width x)
