(** PIPID permutations: Permutations Induced by a Permutation on the
    Index Digits (paper, Section 4, following Lenfant & Tahé).

    Given [theta], a permutation of the digit indices [{0, ..., w-1}],
    the induced permutation [A] on [{0, ..., 2^w - 1}] is

    {[ A (x_{w-1}, ..., x_1, x_0) = (x_{theta(w-1)}, ..., x_{theta(1)}, x_{theta(0)}) ]}

    i.e. bit [j] of [A x] is bit [theta j] of [x]. *)

val induce : width:int -> Perm.t -> Perm.t
(** [induce ~width theta] is the PIPID permutation of
    [{0, ..., 2^width - 1}] induced by [theta] (a permutation of size
    [width]). *)

val apply_theta : width:int -> Perm.t -> Mineq_bitvec.Bv.t -> Mineq_bitvec.Bv.t
(** Apply the induced permutation to one value without tabulating all
    [2^width] images. *)

val recognize : width:int -> Perm.t -> Perm.t option
(** [recognize ~width p] recovers [theta] such that
    [induce ~width theta = p], or returns [None] when [p] is not a
    PIPID permutation.  Cost: [O(2^width)] verification after an
    [O(width)] candidate extraction. *)

val is_pipid : width:int -> Perm.t -> bool

val compose_law : width:int -> Perm.t -> Perm.t -> bool
(** Sanity law exposed for tests:
    [compose (induce t1) (induce t2) = induce (compose t2 t1)]
    (note the reversal: index permutations compose contravariantly). *)
