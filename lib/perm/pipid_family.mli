(** The classical PIPID generators used to define multistage
    interconnection networks (paper Section 4; Hockney & Jesshope;
    Wu & Feng).

    Each generator is given as the index-digit permutation [theta]
    (a {!Perm.t} of size [width]); apply {!Index_perm.induce} to get
    the permutation of the [2^width] link labels.

    Bit conventions: labels are [(x_{w-1}, ..., x_1, x_0)] with bit 0
    the least significant; [theta] acts as
    [bit j of image = bit (theta j) of argument]. *)

val perfect_shuffle : width:int -> Perm.t
(** The perfect shuffle [sigma]: circular left shift of the binary
    representation,
    [sigma (x_{w-1}, ..., x_0) = (x_{w-2}, ..., x_0, x_{w-1})]. *)

val inverse_shuffle : width:int -> Perm.t
(** [sigma^-1], circular right shift. *)

val sub_shuffle : width:int -> int -> Perm.t
(** [sub_shuffle ~width k] is the [k]-sub-shuffle [sigma_k]: the
    perfect shuffle applied to the low [k] digits, identity on digits
    [k .. w-1].  [sub_shuffle ~width width = perfect_shuffle ~width].
    Requires [1 <= k <= width]. *)

val inverse_sub_shuffle : width:int -> int -> Perm.t
(** [sigma_k^-1]. *)

val butterfly : width:int -> int -> Perm.t
(** [butterfly ~width k] is the [k]-butterfly [beta_k]: exchange of
    digits [k] and [0] (an involution).  Requires
    [1 <= k <= width - 1]; [beta_0] would be the identity. *)

val bit_reversal : width:int -> Perm.t
(** [rho]: digit [j] goes to digit [w-1-j]. *)

val identity : width:int -> Perm.t
(** The identity index permutation (induces the identity on links;
    note that as an inter-stage pattern it yields the degenerate
    double-link stage of the paper's Fig. 5). *)

val all_named : width:int -> (string * Perm.t) list
(** Every generator above at each admissible parameter, with
    human-readable names — used by tests, the CLI and the explorer
    example. *)
