let identity ~width = Perm.identity width

let sub_shuffle ~width k =
  if k < 1 || k > width then invalid_arg "Pipid_family.sub_shuffle: need 1 <= k <= width";
  (* Image bit j reads argument bit theta j.  Within the low k digits
     the image is a circular left shift: bit 0 of the image is bit
     k-1 of the argument, bit j (1 <= j < k) is bit j-1. *)
  Perm.of_fun ~size:width (fun j -> if j >= k then j else if j = 0 then k - 1 else j - 1)

let perfect_shuffle ~width = sub_shuffle ~width width

let inverse_sub_shuffle ~width k = Perm.inverse (sub_shuffle ~width k)

let inverse_shuffle ~width = inverse_sub_shuffle ~width width

let butterfly ~width k =
  if k < 1 || k > width - 1 then
    invalid_arg "Pipid_family.butterfly: need 1 <= k <= width - 1";
  Perm.transposition ~size:width 0 k

let bit_reversal ~width = Perm.of_fun ~size:width (fun j -> width - 1 - j)

let all_named ~width =
  let range lo hi f = List.init (hi - lo + 1) (fun i -> f (lo + i)) in
  [ ("identity", identity ~width);
    ("sigma", perfect_shuffle ~width);
    ("sigma^-1", inverse_shuffle ~width);
    ("rho", bit_reversal ~width)
  ]
  @ range 1 width (fun k -> (Printf.sprintf "sigma_%d" k, sub_shuffle ~width k))
  @ range 1 width (fun k -> (Printf.sprintf "sigma_%d^-1" k, inverse_sub_shuffle ~width k))
  @ range 1 (width - 1) (fun k -> (Printf.sprintf "beta_%d" k, butterfly ~width k))
