module Bv = Mineq_bitvec.Bv

let apply_theta ~width theta x =
  if Perm.size theta <> width then invalid_arg "Index_perm.apply_theta: size mismatch";
  let rec build j acc =
    if j = width then acc else build (j + 1) (Bv.set_bit acc j (Bv.bit x (Perm.apply theta j)))
  in
  build 0 0

let induce ~width theta =
  let n = Bv.universe_size ~width in
  Perm.of_fun ~size:n (fun x -> apply_theta ~width theta x)

let recognize ~width p =
  let n = Bv.universe_size ~width in
  if Perm.size p <> n then invalid_arg "Index_perm.recognize: size mismatch";
  if Perm.apply p 0 <> 0 then None
  else begin
    (* A maps e_i to e_{theta^-1 i}: bit j of (A e_i) is
       [theta j = i], which is set exactly at j = theta^-1 i. *)
    let log2 v =
      let rec go i = if v lsr i = 1 then Some i else if v lsr i = 0 then None else go (i + 1) in
      if v <= 0 then None else go 0
    in
    let theta_inv = Array.make width (-1) in
    let ok = ref true in
    for i = 0 to width - 1 do
      match log2 (Perm.apply p (Bv.unit i)) with
      | Some j when Perm.apply p (Bv.unit i) = Bv.unit j -> theta_inv.(i) <- j
      | _ -> ok := false
    done;
    if not !ok then None
    else
      match Perm.of_array theta_inv with
      | exception Invalid_argument _ -> None
      | ti ->
          let theta = Perm.inverse ti in
          if Perm.equal (induce ~width theta) p then Some theta else None
  end

let is_pipid ~width p = Option.is_some (recognize ~width p)

let compose_law ~width t1 t2 =
  Perm.equal
    (Perm.compose (induce ~width t1) (induce ~width t2))
    (induce ~width (Perm.compose t2 t1))
