type t = int array
(* The array is never mutated after construction and never exposed. *)

let size = Array.length

let validate img =
  let n = Array.length img in
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Perm.of_array: image out of range";
      if seen.(v) then invalid_arg "Perm.of_array: image repeated";
      seen.(v) <- true)
    img

let of_array img =
  validate img;
  Array.copy img

let of_fun ~size f =
  let img = Array.init size f in
  validate img;
  img

let identity n = Array.init n (fun i -> i)

let to_array p = Array.copy p

let apply p i = p.(i)

let compose p q =
  if size p <> size q then invalid_arg "Perm.compose: size mismatch";
  Array.map (fun v -> p.(v)) q

let inverse p =
  let inv = Array.make (size p) 0 in
  Array.iteri (fun i v -> inv.(v) <- i) p;
  inv

let equal = ( = )

let compare = Stdlib.compare

let is_identity p =
  let ok = ref true in
  Array.iteri (fun i v -> if i <> v then ok := false) p;
  !ok

let rec power p k =
  if k < 0 then power (inverse p) (-k)
  else if k = 0 then identity (size p)
  else begin
    let half = power p (k / 2) in
    let sq = compose half half in
    if k land 1 = 1 then compose p sq else sq
  end

let cycles p =
  let n = size p in
  let seen = Array.make n false in
  let out = ref [] in
  for i = 0 to n - 1 do
    if not seen.(i) then begin
      let rec collect j acc =
        if seen.(j) then List.rev acc
        else begin
          seen.(j) <- true;
          collect p.(j) (j :: acc)
        end
      in
      out := collect i [] :: !out
    end
  done;
  List.rev !out

let order p =
  let lcm a b =
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    a / gcd a b * b
  in
  List.fold_left (fun acc c -> lcm acc (List.length c)) 1 (cycles p)

let parity_odd p =
  let swaps = List.fold_left (fun acc c -> acc + List.length c - 1) 0 (cycles p) in
  swaps land 1 = 1

let fixed_points p =
  let out = ref [] in
  Array.iteri (fun i v -> if i = v then out := i :: !out) p;
  List.rev !out

let random rng n =
  let img = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = img.(i) in
    img.(i) <- img.(j);
    img.(j) <- tmp
  done;
  img

let transposition ~size:n a b =
  if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Perm.transposition: out of range";
  Array.init n (fun i -> if i = a then b else if i = b then a else i)

let rotation ~size:n k =
  let k = ((k mod n) + n) mod n in
  Array.init n (fun i -> (i + k) mod n)

let orbit p i =
  let rec go j acc = if j = i && acc <> [] then List.rev acc else go p.(j) (j :: acc) in
  go i []

let generate ?(limit = 1_000_000) ~size:n gens =
  List.iter
    (fun g -> if size g <> n then invalid_arg "Perm.generate: generator size mismatch")
    gens;
  let seen = Hashtbl.create 64 in
  let q = Queue.create () in
  let add p =
    if not (Hashtbl.mem seen p) then begin
      if Hashtbl.length seen >= limit then failwith "Perm.generate: group order limit exceeded";
      Hashtbl.add seen p ();
      Queue.add p q
    end
  in
  add (identity n);
  while not (Queue.is_empty q) do
    let p = Queue.pop q in
    List.iter (fun g -> add (compose g p)) gens
  done;
  Hashtbl.fold (fun p () acc -> p :: acc) seen [] |> List.sort compare

let group_order ?limit ~size gens = List.length (generate ?limit ~size gens)

let pp ppf p =
  Format.fprintf ppf "@[<h>[%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    (Array.to_list p)

let pp_cycles ppf p =
  List.iter
    (fun c ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           Format.pp_print_int)
        c)
    (cycles p)
