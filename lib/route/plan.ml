type t = {
  fab : Fabric.t;
  per : int;
  radix : int;
  fw : int;  (* bits per assignment field *)
  fmask : int;
  state : int array;  (* one word per cell, stage-major *)
  mutable live : int;
}

type claim = Claimed | In_busy | Out_busy

let field_width radix =
  let rec go bits top = if top >= radix then bits else go (bits + 1) (top * 2) in
  go 1 2

let create fab =
  let radix = fab.Fabric.radix in
  let fw = field_width radix in
  if (2 * radix) + (radix * fw) > Sys.int_size - 1 then
    invalid_arg "Plan.create: radix too large for one-word cell states";
  { fab;
    per = fab.Fabric.per;
    radix;
    fw;
    fmask = (1 lsl fw) - 1;
    state = Array.make (Fabric.cell_count fab) 0;
    live = 0
  }

let fabric t = t.fab

let reset t =
  Array.fill t.state 0 (Array.length t.state) 0;
  t.live <- 0

let[@inline] field_shift t in_port = (2 * t.radix) + (in_port * t.fw)

let claim t ~stage ~cell ~in_port ~out_port =
  let i = (stage * t.per) + cell in
  let w = t.state.(i) in
  if w land (1 lsl in_port) <> 0 then
    if (w lsr (field_shift t in_port)) land t.fmask = out_port then Claimed else In_busy
  else if w land (1 lsl (t.radix + out_port)) <> 0 then Out_busy
  else begin
    t.state.(i) <-
      w lor (1 lsl in_port) lor (1 lsl (t.radix + out_port))
      lor (out_port lsl (field_shift t in_port));
    t.live <- t.live + 1;
    Claimed
  end

let release t ~stage ~cell ~in_port =
  let i = (stage * t.per) + cell in
  let w = t.state.(i) in
  if w land (1 lsl in_port) <> 0 then begin
    let out_port = (w lsr (field_shift t in_port)) land t.fmask in
    t.state.(i) <-
      w
      land lnot ((1 lsl in_port) lor (1 lsl (t.radix + out_port))
                lor (t.fmask lsl (field_shift t in_port)));
    t.live <- t.live - 1
  end

let state_word t ~stage ~cell = t.state.((stage * t.per) + cell)

let snapshot t = Array.copy t.state

let port_of t ~stage ~cell ~in_port =
  let w = t.state.((stage * t.per) + cell) in
  if w land (1 lsl in_port) = 0 then -1 else (w lsr (field_shift t in_port)) land t.fmask

let out_taken t ~stage ~cell ~out_port =
  t.state.((stage * t.per) + cell) land (1 lsl (t.radix + out_port)) <> 0

let set_count t = t.live

let propagate t input =
  let last = t.fab.Fabric.stages - 1 in
  let rec go s cell in_port =
    let out = port_of t ~stage:s ~cell ~in_port in
    if out < 0 then -1
    else if s = last then (cell * t.radix) + out
    else
      let a = (t.radix * cell) + out in
      go (s + 1) t.fab.Fabric.child.(s).(a) t.fab.Fabric.in_port.(s).(a)
  in
  go 0 (input / t.radix) (input mod t.radix)

let realizes t image =
  let n = Fabric.terminals t.fab in
  if Array.length image <> n then false
  else begin
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      if image.(!i) >= 0 && propagate t !i <> image.(!i) then ok := false;
      incr i
    done;
    !ok
  end

let to_array t = Array.init (Fabric.terminals t.fab) (propagate t)

let fill_image t out =
  let n = Fabric.terminals t.fab in
  if Array.length out <> n then invalid_arg "Plan.fill_image: image size mismatch";
  for i = 0 to n - 1 do
    out.(i) <- propagate t i
  done
