type t = {
  router : Bit_follow.t;
  plans : Plan.t array;
  assign : int array;  (* input terminal -> plane, or -1 *)
  dest : int array;  (* input terminal -> connected output, or -1 *)
}

let create router ~planes =
  if planes < 1 then invalid_arg "Planes.create: need planes >= 1";
  let fab = Bit_follow.fabric router in
  { router;
    plans = Array.init planes (fun _ -> Plan.create fab);
    assign = Array.make (Fabric.terminals fab) (-1);
    dest = Array.make (Fabric.terminals fab) (-1)
  }

let router t = t.router

let plane_count t = Array.length t.plans

let plan t k = t.plans.(k)

let reset t =
  Array.iter Plan.reset t.plans;
  Array.fill t.assign 0 (Array.length t.assign) (-1);
  Array.fill t.dest 0 (Array.length t.dest) (-1)

let plane_of t input = t.assign.(input)

(* First-fit scan at module level: an inner [let rec] closure would
   allocate per connection attempt. *)
let rec first_fit t input output p =
  if p = Array.length t.plans then -1
  else if Bit_follow.try_route t.router t.plans.(p) ~input ~output then begin
    t.assign.(input) <- p;
    t.dest.(input) <- output;
    p
  end
  else first_fit t input output (p + 1)

let try_connect t ~input ~output =
  if t.assign.(input) >= 0 then
    if t.dest.(input) = output then t.assign.(input) else -1
  else first_fit t input output 0

let connect t ~input ~output =
  if t.assign.(input) >= 0 then
    if t.dest.(input) = output then Ok t.assign.(input)
    else
      Error
        { Bit_follow.input; output; stage = 0;
          cell = input / (Bit_follow.fabric t.router).Fabric.radix;
          port = input mod (Bit_follow.fabric t.router).Fabric.radix
        }
  else begin
    let k = Array.length t.plans in
    let rec go p =
      if p = k - 1 then
        match Bit_follow.route t.router t.plans.(p) ~input ~output with
        | Bit_follow.Routed ->
            t.assign.(input) <- p;
            t.dest.(input) <- output;
            Ok p
        | Bit_follow.Blocked b -> Error b
      else if Bit_follow.try_route t.router t.plans.(p) ~input ~output then begin
        t.assign.(input) <- p;
        t.dest.(input) <- output;
        Ok p
      end
      else go (p + 1)
    in
    go 0
  end

let rec connect_from t image input acc =
  if input = Array.length image then acc
  else
    let output = image.(input) in
    if output >= 0 && try_connect t ~input ~output >= 0 then
      connect_from t image (input + 1) (acc + 1)
    else connect_from t image (input + 1) acc

let connect_all t image = connect_from t image 0 0
