module Pool = Mineq_engine.Pool
module Seeds = Mineq_engine.Seeds
module Batch = Mineq_engine.Batch

type row = {
  name : string;
  n : int;
  planes : int;
  trials : int;
  full : int;
  pairs_routed : int;
  pairs_total : int;
}

let routed_fraction r = float_of_int r.pairs_routed /. float_of_int r.pairs_total

let full_fraction r = float_of_int r.full /. float_of_int r.trials

let shuffle st img =
  let n = Array.length img in
  for i = 0 to n - 1 do
    img.(i) <- i
  done;
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = img.(i) in
    img.(i) <- img.(j);
    img.(j) <- tmp
  done

let router_in pool ~root ~name ~n ~planes ~trials router =
  if trials < 1 then invalid_arg "Survey.router_in: need trials >= 1";
  let nt = Fabric.terminals (Bit_follow.fabric router) in
  let tallies =
    Pool.map_array pool
      (fun i ->
        let st = Seeds.derive ~root i in
        let img = Array.make nt 0 in
        shuffle st img;
        let ens = Planes.create router ~planes in
        let ok = Planes.connect_all ens img in
        ((if ok = nt then 1 else 0), ok))
      (Array.init trials (fun i -> i))
  in
  let full = Array.fold_left (fun acc (f, _) -> acc + f) 0 tallies in
  let routed = Array.fold_left (fun acc (_, r) -> acc + r) 0 tallies in
  { name;
    n;
    planes;
    trials;
    full;
    pairs_routed = routed;
    pairs_total = trials * nt
  }

let run_in pool ~seed ~n ~planes ~trials =
  Mineq.Classical.all_networks ~n
  |> List.mapi (fun idx (name, g) ->
         match Bit_follow.of_network g with
         | None -> None
         | Some router ->
             let root = Seeds.fold seed idx in
             Some (router_in pool ~root ~name ~n ~planes ~trials router))
  |> List.filter_map Fun.id

let run ?jobs ~seed ~n ~planes ~trials () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  Pool.run ~jobs (fun pool -> run_in pool ~seed ~n ~planes ~trials)

(* -- churn throughput model ------------------------------------- *)

type churn_row = {
  cn : int;
  ops : int;
  ctrials : int;
  connects : int;
  disconnects : int;
  moved_total : int;
  rearranged : int;
  moved_hist : int array;
  failures : int;
}

let hist_bins = 17

(* bin layout for Batch.tally: 0..16 moved-count histogram (16 is the
   17+ overflow), then connects, disconnects, moved total, rearranged
   connects, consistency failures *)
let churn_bins = hist_bins + 5

let moved_per_connect r =
  if r.connects = 0 then 0.0 else float_of_int r.moved_total /. float_of_int r.connects

let rearranged_fraction r =
  if r.connects = 0 then 0.0 else float_of_int r.rearranged /. float_of_int r.connects

let rec free_output st rr nt =
  let o = Random.State.int st nt in
  if Rearrange.input_of rr o < 0 then o else free_output st rr nt

let churn_trial ~n ~ops st bins =
  let rr = Rearrange.create n in
  let nt = Rearrange.terminals rr in
  for _ = 1 to ops do
    let i = Random.State.int st nt in
    if Rearrange.output_of rr i >= 0 then begin
      ignore (Rearrange.disconnect rr ~input:i);
      bins.(hist_bins + 1) <- bins.(hist_bins + 1) + 1
    end
    else begin
      (* an idle input means live < 2^n, so a free output exists and
         rejection sampling terminates *)
      let o = free_output st rr nt in
      (match Rearrange.connect rr ~input:i ~output:o with
      | Rearrange.Done -> ()
      | _ -> assert false);
      let mv = Rearrange.last_moved rr in
      bins.(min mv (hist_bins - 1)) <- bins.(min mv (hist_bins - 1)) + 1;
      bins.(hist_bins) <- bins.(hist_bins) + 1;
      bins.(hist_bins + 2) <- bins.(hist_bins + 2) + mv;
      if mv > 0 then bins.(hist_bins + 3) <- bins.(hist_bins + 3) + 1
    end
  done;
  if not (Rearrange.consistent rr) then bins.(hist_bins + 4) <- bins.(hist_bins + 4) + 1

let churn_in pool ~root ~n ~ops ~trials =
  if trials < 1 then invalid_arg "Survey.churn_in: need trials >= 1";
  if ops < 1 then invalid_arg "Survey.churn_in: need ops >= 1";
  let bins = Batch.tally_in pool ~root ~tasks:trials ~bins:churn_bins (churn_trial ~n ~ops) in
  { cn = n;
    ops;
    ctrials = trials;
    connects = bins.(hist_bins);
    disconnects = bins.(hist_bins + 1);
    moved_total = bins.(hist_bins + 2);
    rearranged = bins.(hist_bins + 3);
    moved_hist = Array.sub bins 0 hist_bins;
    failures = bins.(hist_bins + 4)
  }

let churn ?jobs ~seed ~n ~ops ~trials () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  Pool.run ~jobs (fun pool -> churn_in pool ~root:seed ~n ~ops ~trials)
