module Pool = Mineq_engine.Pool
module Seeds = Mineq_engine.Seeds

type row = {
  name : string;
  n : int;
  planes : int;
  trials : int;
  full : int;
  pairs_routed : int;
  pairs_total : int;
}

let routed_fraction r = float_of_int r.pairs_routed /. float_of_int r.pairs_total

let full_fraction r = float_of_int r.full /. float_of_int r.trials

let shuffle st img =
  let n = Array.length img in
  for i = 0 to n - 1 do
    img.(i) <- i
  done;
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = img.(i) in
    img.(i) <- img.(j);
    img.(j) <- tmp
  done

let router_in pool ~root ~name ~n ~planes ~trials router =
  if trials < 1 then invalid_arg "Survey.router_in: need trials >= 1";
  let nt = Fabric.terminals (Bit_follow.fabric router) in
  let tallies =
    Pool.map_array pool
      (fun i ->
        let st = Seeds.derive ~root i in
        let img = Array.make nt 0 in
        shuffle st img;
        let ens = Planes.create router ~planes in
        let ok = Planes.connect_all ens img in
        ((if ok = nt then 1 else 0), ok))
      (Array.init trials (fun i -> i))
  in
  let full = Array.fold_left (fun acc (f, _) -> acc + f) 0 tallies in
  let routed = Array.fold_left (fun acc (_, r) -> acc + r) 0 tallies in
  { name;
    n;
    planes;
    trials;
    full;
    pairs_routed = routed;
    pairs_total = trials * nt
  }

let run_in pool ~seed ~n ~planes ~trials =
  Mineq.Classical.all_networks ~n
  |> List.mapi (fun idx (name, g) ->
         match Bit_follow.of_network g with
         | None -> None
         | Some router ->
             let root = Seeds.fold seed idx in
             Some (router_in pool ~root ~name ~n ~planes ~trials router))
  |> List.filter_map Fun.id

let run ?jobs ~seed ~n ~planes ~trials () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  Pool.run ~jobs (fun pool -> run_in pool ~seed ~n ~planes ~trials)
