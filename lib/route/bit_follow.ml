type t = {
  fab : Fabric.t;
  ctrl : int array array;  (* ctrl.(s).(o): out-port at 0-based stage s *)
}

let of_fabric fab ~schedule =
  let n = Fabric.terminals fab in
  if Array.length schedule <> n then
    invalid_arg "Bit_follow.of_fabric: schedule size mismatch";
  let stages = fab.Fabric.stages in
  let r = fab.Fabric.radix in
  (* divisor for stage s is r^(stages - 1 - s): stage-1 digit most
     significant, last-stage digit least *)
  let ctrl =
    Array.init stages (fun s ->
        let d = ref 1 in
        for _ = 1 to stages - 1 - s do
          d := !d * r
        done;
        let div = !d in
        Array.init n (fun o -> schedule.(o) / div mod r))
  in
  { fab; ctrl }

let of_network g =
  match Mineq.Routing.delta_schedule g with
  | None -> None
  | Some schedule -> Some (of_fabric (Fabric.of_network g) ~schedule)

let of_rnetwork g =
  match Mineq_radix.Rrouting.delta_schedule g with
  | None -> None
  | Some schedule -> Some (of_fabric (Fabric.of_rnetwork g) ~schedule)

let fabric t = t.fab

let control t ~stage ~output = t.ctrl.(stage).(output)

type blocked = {
  input : int;
  output : int;
  stage : int;
  cell : int;
  port : int;
}

type outcome = Routed | Blocked of blocked

(* The walkers live at module level with explicit arguments: inner
   [let rec] closures would allocate per path attempt and break the
   zero-alloc contract of the setup hot path. *)

(* Re-walk the deterministic prefix [0, upto) releasing its claims. *)
let rec unwind_from t plan output upto s cell ip =
  if s < upto then begin
    Plan.release plan ~stage:s ~cell ~in_port:ip;
    let op = t.ctrl.(s).(output) in
    let a = (t.fab.Fabric.radix * cell) + op in
    unwind_from t plan output upto (s + 1) t.fab.Fabric.child.(s).(a)
      t.fab.Fabric.in_port.(s).(a)
  end

(* Forward walk.  Returns -1 on success, or the packed contested link
   [((stage * per) + cell) * radix + port] after unwinding. *)
let rec walk_from t plan input output s cell ip =
  let fab = t.fab in
  let r = fab.Fabric.radix in
  let op = t.ctrl.(s).(output) in
  match Plan.claim plan ~stage:s ~cell ~in_port:ip ~out_port:op with
  | Plan.In_busy ->
      unwind_from t plan output s 0 (input / r) (input mod r);
      (((s * fab.Fabric.per) + cell) * r) + ip
  | Plan.Out_busy ->
      unwind_from t plan output s 0 (input / r) (input mod r);
      (((s * fab.Fabric.per) + cell) * r) + op
  | Plan.Claimed ->
      if s = fab.Fabric.stages - 1 then -1
      else
        let a = (r * cell) + op in
        walk_from t plan input output (s + 1) fab.Fabric.child.(s).(a)
          fab.Fabric.in_port.(s).(a)

let walk t plan ~input ~output =
  let r = t.fab.Fabric.radix in
  walk_from t plan input output 0 (input / r) (input mod r)

let check t ~input ~output =
  let n = Fabric.terminals t.fab in
  if input < 0 || input >= n then invalid_arg "Bit_follow: input out of range";
  if output < 0 || output >= n then invalid_arg "Bit_follow: output out of range"

let try_route t plan ~input ~output =
  check t ~input ~output;
  walk t plan ~input ~output = -1

let route t plan ~input ~output =
  check t ~input ~output;
  let code = walk t plan ~input ~output in
  if code = -1 then Routed
  else
    let r = t.fab.Fabric.radix in
    let per = t.fab.Fabric.per in
    let port = code mod r in
    let sc = code / r in
    Blocked { input; output; stage = sc / per; cell = sc mod per; port }
