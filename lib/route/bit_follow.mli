(** Destination-tag ("bit-controlled") path setup on delta networks.

    On a delta network — every Baseline-equivalent network is one —
    the output terminal alone determines the port to take at each
    stage, independently of the input: the defining property of
    {!Mineq.Routing.delta_schedule}.  A router tabulates that
    schedule into a per-stage control table once; setting up a path
    is then a single forward walk claiming one {!Plan} assignment
    per stage.  No backtracking exists in this model: the first
    occupied link the walk meets blocks the whole path, which is why
    Banyan networks block and the {!Planes} ensembles exist.

    The walk is allocation-free.  A blocked {!try_route} unwinds its
    partial path (re-walking the deterministic prefix and releasing
    each claim) and leaves the plan {e bit-identical} to its pre-call
    state: every cell's state word — occupancy masks and assignment
    fields alike — compares equal to a {!Plan.snapshot} taken before
    the call.  This is an invariant, not a best effort: the unwind
    re-derives the exact prefix the forward walk claimed (the control
    digits are deterministic in the output), and [Plan.release]
    restores each word to what a never-claimed cell holds.  A qcheck
    gate in the test suite routes, blocks and compares plan words so
    the invariant cannot silently rot.  {!route} additionally reports
    the contested link, allocating only the {!type-blocked} record and
    only on failure.

    Each input terminal may carry at most one path per plan.
    Re-routing an identical [(input, output)] pair is a harmless
    no-op, but routing one input toward two different outputs in the
    same plan is a caller error with unspecified plan state. *)

type t

val of_network : Mineq.Mi_digraph.t -> t option
(** [None] when the network is not delta (has no shared schedule). *)

val of_rnetwork : Mineq_radix.Rnetwork.t -> t option
(** Radix-[r] variant, via {!Mineq_radix.Rrouting.delta_schedule}. *)

val of_fabric : Fabric.t -> schedule:int array -> t
(** Build from an explicit port-word schedule — [schedule.(o)] is
    the base-[radix] word whose most significant digit is the stage-1
    port toward output [o] (the {!Mineq.Routing.delta_schedule}
    convention).  Raises [Invalid_argument] on size mismatch. *)

val fabric : t -> Fabric.t

val control : t -> stage:int -> output:int -> int
(** The out-port toward [output] at 0-based [stage]: the tabulated
    digit of the schedule word. *)

(** The contested link of a blocked path: the walk, arriving at
    [cell] of 0-based [stage], needed output port [port] and found
    it carrying another path.  ([stage = 0] with an occupied {e
    input} port — the same input routed twice to different outputs —
    reports the input port instead.) *)
type blocked = {
  input : int;
  output : int;
  stage : int;
  cell : int;
  port : int;
}

type outcome = Routed | Blocked of blocked

val try_route : t -> Plan.t -> input:int -> output:int -> bool
(** Claim the path's switch assignments stage by stage.  On the
    first conflict, release the partial path and return [false];
    the plan is unchanged.  Never allocates. *)

val route : t -> Plan.t -> input:int -> output:int -> outcome
(** Like {!try_route}, but a failure identifies the contested
    link.  Allocates only the [Blocked] record, only on failure. *)
