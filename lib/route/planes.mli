(** Expansion planes: [k] parallel copies of one Banyan network.

    A single Banyan has exactly one path per input/output pair, so
    permutation traffic blocks; the classical remedy is to replicate
    the fabric into [k] parallel planes and let each connection pick
    a plane with capacity.  An ensemble shares one {!Bit_follow}
    router (the control tables are identical across planes) and
    keeps one {!Plan.t} of switch state per plane; {!try_connect}
    assigns greedily — first plane whose deterministic path is free
    wins — which keeps the hot path allocation-free and makes the
    outcome independent of everything but the order of connection
    attempts. *)

type t

val create : Bit_follow.t -> planes:int -> t
(** An ensemble of [planes >= 1] empty copies. *)

val router : t -> Bit_follow.t

val plane_count : t -> int

val plan : t -> int -> Plan.t
(** The switch state of one plane (0-based; live, not a copy). *)

val reset : t -> unit
(** Clear every plane and every assignment. *)

val plane_of : t -> int -> int
(** The plane carrying the given input terminal's path, or [-1]. *)

val try_connect : t -> input:int -> output:int -> int
(** First-fit: try the planes in order, claim the path on the first
    one that is free end to end, return its index ([-1] when every
    plane blocks).  An input already connected returns its existing
    plane when the output matches and [-1] otherwise.  Never
    allocates. *)

val connect : t -> input:int -> output:int -> (int, Bit_follow.blocked) result
(** Like {!try_connect} but, when every plane blocks, reports the
    contested link on the {e last} plane tried. *)

val connect_all : t -> int array -> int
(** [connect_all t image] greedily connects input [i] to
    [image.(i)] for ascending [i] (entries [< 0] are skipped) and
    returns how many connections succeeded.  Does not reset first. *)
