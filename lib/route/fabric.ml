module Mi_digraph = Mineq.Mi_digraph
module Connection = Mineq.Connection
module Cascade = Mineq.Cascade

type t = {
  stages : int;
  width : int;
  radix : int;
  per : int;
  child : int array array;
  in_port : int array array;
}

(* Input ports are numbered in the packed predecessor fill order:
   ascending source label, then ascending out-port.  The fill counter
   per child cell reproduces that order without touching p_pred, so
   the same derivation serves packed networks and cascades. *)
let in_ports_of_child ~per child =
  Array.map
    (fun gap_child ->
      let next = Array.make per 0 in
      Array.map
        (fun y ->
          let slot = next.(y) in
          next.(y) <- slot + 1;
          slot)
        gap_child)
    child

let make ~stages ~width ~radix ~per ~child =
  { stages; width; radix; per; child; in_port = in_ports_of_child ~per child }

let of_packed (p : Mi_digraph.packed) =
  make ~stages:p.p_stages ~width:p.p_width ~radix:p.p_radix ~per:p.p_per ~child:p.p_child

let of_network g = of_packed (Mi_digraph.packed g)

let of_rnetwork g = of_packed (Mineq_radix.Rnetwork.packed g)

let of_cascade c =
  let stages = Cascade.stages c in
  let width = Cascade.width c in
  let per = Cascade.cells_per_stage c in
  let child =
    Array.init (stages - 1) (fun k ->
        let conn = Cascade.connection c (k + 1) in
        Array.init (2 * per) (fun i ->
            let x = i / 2 in
            let cf, cg = Connection.children conn x in
            if i land 1 = 0 then cf else cg))
  in
  make ~stages ~width ~radix:2 ~per ~child

let terminals t = t.radix * t.per

let cell_count t = t.stages * t.per
