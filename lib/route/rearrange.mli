(** Incremental rearrangement routing on the Benes network B(n).

    {!Loop.route} compiles a whole permutation at once; this engine
    holds a {e live} circuit configuration and changes it one
    connection at a time.  {!connect} routes a new input/output pair
    into an already-set plan by Paull-style rearrangement: at each
    recursion level of the Benes the new pair needs a subnetwork
    (colour) that is free at both its input switch and its output
    switch, and when the two switches force {e different} colours the
    engine walks the alternating chain of existing connections
    through the output switch, flips every colour on it, and
    re-routes only those connections one level deeper.  The two
    chains can never meet (an alternating path between an input-side
    and an output-side endpoint has odd length, so its end colours
    are equal — the classic parity argument), which is why the walk
    terminates and the flip always frees the wanted colour.

    Everything the steady-churn hot path touches — per-level slot
    tables, colour words, chain worklists, the cell scratch of a
    path claim — is preallocated in {!t}, so {!connect} and
    {!disconnect} allocate {e zero} minor words
    ([bench/route_bench.exe] gates the churn rows at exactly 0.0).
    Cost per operation is [O(stages)] for the new pair itself plus
    [O(stages)] per connection actually moved, instead of the
    [O(terminals * stages)] of a full {!Loop.route} recompile.

    Partial configurations are first-class: any subset of inputs may
    be connected, and the invariant after every operation is that
    the plan realizes exactly the current partial image (idle inputs
    propagate nowhere).  Engines are single-threaded, like
    {!Loop.t}; parallel workers each hold their own. *)

type t

(** Outcome of {!connect}.  Constant constructors — returning one
    never allocates. *)
type status =
  | Done  (** the pair is connected (and the plan re-realizes) *)
  | Input_busy  (** the input already carries a connection *)
  | Output_busy  (** the output is already the target of another input *)

(** One batch operation for {!apply_moves}. *)
type move =
  | Connect of { input : int; output : int }
  | Disconnect of { input : int }

val create : int -> t
(** [create n] builds B(n), its fabric, an empty plan and all
    scratch.  [n >= 2]. *)

val of_loop : Loop.t -> t
(** An engine sharing the given router's fabric, so its {!plan} is
    also a valid target for {!Loop.route} — compile a permutation
    with the looping algorithm, {!rescan}, then churn
    incrementally. *)

val n : t -> int

val fabric : t -> Fabric.t

val terminals : t -> int
(** [2^n]. *)

val plan : t -> Plan.t
(** The engine's plan — a live view, not a copy.  Writing to it
    through anything but this engine (or {!Loop.route} followed by
    {!rescan}) desynchronizes the engine. *)

val live : t -> int
(** Number of connections currently held. *)

val output_of : t -> int -> int
(** The output the input is connected to, or [-1] when idle. *)

val input_of : t -> int -> int
(** The input connected to the output, or [-1] when free. *)

val image : t -> int array
(** Fresh copy of the current partial image ([-1] = idle input) —
    the array {!Plan.realizes} of {!plan} holds against. *)

val connect : t -> input:int -> output:int -> status
(** Route [input -> output] into the current configuration,
    rearranging existing connections as needed (never fails on a
    Benes: rearrangeability).  Allocation-free.  Raises
    [Invalid_argument] on out-of-range terminals. *)

val disconnect : t -> input:int -> bool
(** Tear down the input's connection: release its path and clear its
    slots at every level.  [false] when the input was idle.  Never
    rearranges, never allocates. *)

val apply_moves : t -> move array -> int
(** Apply a batch of operations.  The batch is first validated and
    {e netted} against a shadow of the current configuration
    (sequential semantics: each op must be legal in the state left
    by its predecessors — a connect may reuse an output freed
    earlier in the same batch), then applied as net effects only: a
    disconnect/re-connect of the same pair is skipped outright, all
    net disconnects run first to free capacity, and net connects run
    in ascending input order so pairs sharing an input switch
    coordinate colours without chain walks.  Returns the number of
    physical operations performed (at most, never more than, the
    batch length).  Raises [Invalid_argument] on the first invalid
    op, before touching the engine.  The final configuration — and
    hence {!Plan.to_array} of the plan — depends only on the
    batch's net effect, not on how a move list is chunked into
    [apply_moves] calls. *)

val rescan : t -> unit
(** Resynchronize the engine from its plan's switch words, after an
    external compiler (typically {!Loop.route} on {!plan}) rewrote
    them: every routed path is walked, its per-level colours are
    read back from the cells it occupies, and the slot tables are
    rebuilt.  Raises [Invalid_argument] when the plan is not a
    link-disjoint Benes routing (dangling mid-path assignment, two
    inputs delivered to one output). *)

val reset : t -> unit
(** Clear the configuration and the plan ([Array.fill]s only). *)

val consistent : t -> bool
(** Self-check: the plan realizes the current partial image, idle
    inputs have no stage-0 assignment, and the claim count is
    exactly [live * stages].  Allocation-free — the bench gates it
    after every measured op sequence. *)

(** {1 Churn statistics}

    Rearrangement work is observable: the survey and the bench
    report how much of the network a connection change actually
    touches. *)

val last_moved : t -> int
(** Connections re-routed (chain members, over all levels) by the
    most recent {!connect}.  [0] when the pair dropped in without
    disturbing anyone. *)

val moved_total : t -> int
(** Lifetime sum of {!last_moved} over all connects. *)

val connects : t -> int
(** Lifetime successful {!connect} count. *)

val disconnects : t -> int
(** Lifetime successful {!disconnect} count. *)
