(** The looping algorithm as a switch-state compiler for the Benes
    network B(n).

    {!Mineq.Benes.route_permutation} proves rearrangeability by
    producing route lists; this engine produces the thing a switch
    fabric actually consumes — a full {!Plan.t} switch-state program
    — and does it without allocating: the recursion of the looping
    algorithm is run iteratively over the {!Mineq.Benes.levels}
    structure with all working arrays preallocated in the router, so
    a [reset]-and-{!route} cycle touches only scratch that already
    exists.  [BENCH_route.json] gates this at zero minor words per
    routed permutation.

    Per level the algorithm 2-colours each block's terminals with
    {!Mineq.Benes.looping_colours}, records the block's entry/exit
    cells, and descends the half-size sub-permutations into the two
    sub-networks; a second pass converts each terminal's cell
    sequence into {!Plan.claim} calls.  The claims can never
    conflict — that is the rearrangeability theorem, which the test
    suite re-verifies via {!Plan.realizes} on every routed
    instance. *)

type t
(** A looping router for one B(n): the Benes fabric plus reusable
    scratch.  Routers are single-threaded; parallel workers must
    each hold their own (like {!Mineq.Packed.scratch}). *)

val create : int -> t
(** [create n] builds B(n) ({!Mineq.Benes.network}), its fabric and
    the scratch.  [n >= 2]. *)

val n : t -> int

val network : t -> Mineq.Cascade.t

val fabric : t -> Fabric.t

val terminals : t -> int
(** [2^n]. *)

val plan : t -> Plan.t
(** A fresh plan sized for this router's fabric. *)

val route : t -> Plan.t -> int array -> unit
(** [route t plan image] sets the switch states realizing input
    terminal [i] -> output terminal [image.(i)] on top of whatever
    [plan] already holds (callers normally {!Plan.reset} first).
    The image may be {e partial}: [-1] entries are idle inputs that
    get no path (their switches stay unset), and the live entries
    need only be injective — partial routing turns the looping
    chains into paths, which 2-colour just as well.  Raises
    [Invalid_argument] when a live entry repeats or falls outside
    [0 .. 2^n - 1], or the plan belongs to another fabric.
    Allocation-free on the success path. *)

val route_perm : t -> Plan.t -> Mineq_perm.Perm.t -> unit
(** Convenience wrapper over {!route} (copies the image array). *)
