module Benes = Mineq.Benes
module Cascade = Mineq.Cascade

type t = {
  n : int;
  net : Cascade.t;
  fab : Fabric.t;
  terminals : int;
  stages : int;
  levels : Benes.level array;
  (* descent scratch: the two ping-pong pairs hold the current level's
     sub-permutations and the original terminal each position carries *)
  perm_a : int array;
  perm_b : int array;
  orig_a : int array;
  orig_b : int array;
  partner : int array;  (* output-switch mate, local to the block *)
  colour : int array;
  seen : int array;
  stack : int array;  (* colouring worklist, entries [(local lsl 1) lor colour] *)
  mutable top : int;
  cells : int array;  (* terminal-major: cells.(t * stages + s) *)
  image : int array;
  mutable livec : int;  (* non-idle entries of the current image *)
}

let create n =
  if n < 2 then invalid_arg "Loop.create: need n >= 2";
  let net = Benes.network n in
  let fab = Fabric.of_cascade net in
  let terminals = 1 lsl n in
  let stages = (2 * n) - 1 in
  { n;
    net;
    fab;
    terminals;
    stages;
    levels = Array.of_list (Benes.levels ~n);
    perm_a = Array.make terminals 0;
    perm_b = Array.make terminals 0;
    orig_a = Array.make terminals 0;
    orig_b = Array.make terminals 0;
    partner = Array.make terminals 0;
    colour = Array.make terminals 0;
    seen = Array.make (terminals / 2) 0;
    stack = Array.make ((2 * terminals) + 4) 0;
    top = 0;
    cells = Array.make (terminals * stages) 0;
    image = Array.make terminals 0;
    livec = 0
  }

let n t = t.n

let network t = t.net

let fabric t = t.fab

let terminals t = t.terminals

let plan t = Plan.create t.fab

(* Pass-2 worker at module level: a [let rec] inside the terminal loop
   would allocate one closure per terminal and break the zero-alloc
   contract. *)
let rec claim_seq t plan t0 row s cur ip =
  if s = t.stages - 1 then begin
    match Plan.claim plan ~stage:s ~cell:cur ~in_port:ip ~out_port:(t.image.(t0) land 1) with
    | Plan.Claimed -> ()
    | _ -> failwith "Loop.route: switch conflict on Benes"
  end
  else begin
    let nxt = t.cells.(row + s + 1) in
    let a0 = 2 * cur in
    let j = if t.fab.Fabric.child.(s).(a0) = nxt then 0 else 1 in
    (match Plan.claim plan ~stage:s ~cell:cur ~in_port:ip ~out_port:j with
    | Plan.Claimed -> ()
    | _ -> failwith "Loop.route: switch conflict on Benes");
    claim_seq t plan t0 row (s + 1) nxt t.fab.Fabric.in_port.(s).(a0 + j)
  end

let route t plan image =
  if Plan.fabric plan != t.fab then
    invalid_arg "Loop.route: plan built for another fabric";
  let nt = t.terminals in
  if Array.length image <> nt then invalid_arg "Loop.route: image size mismatch";
  (* injectivity check over the live entries ([-1] marks an idle
     input), using [partner] as scratch *)
  Array.fill t.partner 0 nt (-1);
  t.livec <- 0;
  for i = 0 to nt - 1 do
    let p = image.(i) in
    if p < -1 || p >= nt then invalid_arg "Loop.route: image entry out of range";
    if p >= 0 then begin
      if t.partner.(p) >= 0 then invalid_arg "Loop.route: image is not a permutation";
      t.partner.(p) <- i;
      t.livec <- t.livec + 1
    end
  done;
  let total = t.livec = nt in
  Array.blit image 0 t.image 0 nt;
  Array.blit image 0 t.perm_a 0 nt;
  for i = 0 to nt - 1 do
    t.orig_a.(i) <- i
  done;
  let width = t.n - 1 in
  let stages = t.stages in
  for l = 0 to t.n - 2 do
    let lv = t.levels.(l) in
    let m = lv.Benes.block_terminals in
    let half = m / 2 in
    let left = lv.Benes.left_stage - 1 in
    let right = lv.Benes.right_stage - 1 in
    let even = l land 1 = 0 in
    let src_p = if even then t.perm_a else t.perm_b in
    let src_o = if even then t.orig_a else t.orig_b in
    let dst_p = if even then t.perm_b else t.perm_a in
    let dst_o = if even then t.orig_b else t.orig_a in
    for b = 0 to lv.Benes.blocks - 1 do
      let base = b * m in
      let cell_base = b lsl (width - l) in
      (* output-switch mates: the two positions whose images share an
         output cell must take different colours.  On a total image
         every position is paired, so [partner] is fully overwritten;
         a partial image leaves gaps that must read as unpaired. *)
      if not total then Array.fill t.partner base m (-1);
      Array.fill t.seen 0 half (-1);
      for tl = 0 to m - 1 do
        let pv = src_p.(base + tl) in
        if pv >= 0 then begin
          let osw = pv lsr 1 in
          let prev = t.seen.(osw) in
          if prev < 0 then t.seen.(osw) <- tl
          else begin
            t.partner.(base + tl) <- prev;
            t.partner.(base + prev) <- tl
          end
        end
      done;
      (* greedy alternating 2-colouring over the union of input-switch
         pairs (tl, tl lxor 1) and output-switch pairs: all cycles are
         even, so propagation never contradicts itself *)
      Array.fill t.colour base m (-1);
      for t0 = 0 to m - 1 do
        if src_p.(base + t0) >= 0 && t.colour.(base + t0) < 0 then begin
          t.stack.(0) <- t0 lsl 1;
          t.top <- 1;
          while t.top > 0 do
            t.top <- t.top - 1;
            let v = t.stack.(t.top) in
            let tl = v lsr 1 in
            let c = v land 1 in
            if t.colour.(base + tl) < 0 then begin
              t.colour.(base + tl) <- c;
              (* a partial image turns components into paths: push
                 only live input-switch mates and real partners *)
              if src_p.(base + (tl lxor 1)) >= 0 then begin
                t.stack.(t.top) <- ((tl lxor 1) lsl 1) lor (1 - c);
                t.top <- t.top + 1
              end;
              let pr = t.partner.(base + tl) in
              if pr >= 0 then begin
                t.stack.(t.top) <- (pr lsl 1) lor (1 - c);
                t.top <- t.top + 1
              end
            end
          done
        end
      done;
      (* record this level's entry/exit cells; colour [s] sends the
         position into sub-network [s] of the next level *)
      if not total then Array.fill dst_p base m (-1);
      for tl = 0 to m - 1 do
        let pv = src_p.(base + tl) in
        if pv >= 0 then begin
          let og = src_o.(base + tl) in
          let s = t.colour.(base + tl) in
          let row = og * stages in
          t.cells.(row + left) <- cell_base + (tl lsr 1);
          t.cells.(row + right) <- cell_base + (pv lsr 1);
          let sub = (((2 * b) + s) * half) + (tl lsr 1) in
          dst_p.(sub) <- pv lsr 1;
          dst_o.(sub) <- og
        end
      done
    done
  done;
  (* base level: each block is the single middle-stage cell it names *)
  let src_p = if (t.n - 1) land 1 = 0 then t.perm_a else t.perm_b in
  let src_o = if (t.n - 1) land 1 = 0 then t.orig_a else t.orig_b in
  let mid = t.n - 1 in
  for i = 0 to nt - 1 do
    if src_p.(i) >= 0 then t.cells.((src_o.(i) * stages) + mid) <- i lsr 1
  done;
  (* second pass: consecutive cells determine ports; the claims double
     as a link-disjointness check (they cannot fail on a Benes) *)
  for t0 = 0 to nt - 1 do
    if t.image.(t0) >= 0 then claim_seq t plan t0 (t0 * stages) 0 (t0 lsr 1) (t0 land 1)
  done

let route_perm t plan p = route t plan (Mineq_perm.Perm.to_array p)
