module Benes = Mineq.Benes

type t = {
  n : int;
  fab : Fabric.t;
  terminals : int;
  stages : int;
  depth : int;  (* n - 1 colouring levels above the middle stage *)
  plan : Plan.t;
  out_of : int array;  (* input -> output, -1 idle *)
  in_from : int array;  (* output -> input, -1 free *)
  colw : int array;  (* per input: bit l = subnetwork chosen at level l *)
  (* slot tables, level-major: level l is a row of [terminals] slots,
     block b owning [terminals lsr l] of them; each slot holds the
     input terminal of the connection occupying that local position,
     or -1.  Input slots key by [i lsr l], output slots by [o lsr l]. *)
  iocc : int array;
  oocc : int array;
  cells : int array;  (* one path's cell sequence, [stages] entries *)
  chain : int array array;  (* per level: alternating-chain worklist *)
  shadow_out : int array;  (* apply_moves validation state *)
  shadow_in : int array;
  touched : int array;
  tmark : int array;
  mutable stamp : int;
  mutable tcount : int;
  mutable tapplied : int;
  mutable live : int;
  mutable last_moved : int;
  mutable moved_total : int;
  mutable connects : int;
  mutable disconnects : int;
}

type status = Done | Input_busy | Output_busy

type move =
  | Connect of { input : int; output : int }
  | Disconnect of { input : int }

let make fab n =
  let terminals = 1 lsl n in
  let stages = (2 * n) - 1 in
  let depth = n - 1 in
  { n;
    fab;
    terminals;
    stages;
    depth;
    plan = Plan.create fab;
    out_of = Array.make terminals (-1);
    in_from = Array.make terminals (-1);
    colw = Array.make terminals 0;
    iocc = Array.make (depth * terminals) (-1);
    oocc = Array.make (depth * terminals) (-1);
    cells = Array.make stages 0;
    chain = Array.init depth (fun l -> Array.make (terminals lsr l) 0);
    shadow_out = Array.make terminals (-1);
    shadow_in = Array.make terminals (-1);
    touched = Array.make terminals 0;
    tmark = Array.make terminals 0;
    stamp = 0;
    tcount = 0;
    tapplied = 0;
    live = 0;
    last_moved = 0;
    moved_total = 0;
    connects = 0;
    disconnects = 0
  }

let create n =
  if n < 2 then invalid_arg "Rearrange.create: need n >= 2";
  make (Fabric.of_cascade (Benes.network n)) n

let of_loop loop = make (Loop.fabric loop) (Loop.n loop)

let n t = t.n

let fabric t = t.fab

let terminals t = t.terminals

let plan t = t.plan

let live t = t.live

let output_of t i = t.out_of.(i)

let input_of t o = t.in_from.(o)

let image t = Array.copy t.out_of

let last_moved t = t.last_moved

let moved_total t = t.moved_total

let connects t = t.connects

let disconnects t = t.disconnects

let[@inline] colour_bit t i l = (t.colw.(i) lsr l) land 1

let[@inline] set_colour_bit t i l c =
  t.colw.(i) <- (t.colw.(i) land lnot (1 lsl l)) lor (c lsl l)

(* All walkers below are module-level recursions with explicit
   arguments: a [let rec] inside a function body is a closure
   allocation, and the churn hot path is gated at 0 minor words. *)

(* Derive the path's cell sequence from the colour word: at level l in
   block b, the entry cell is [b lsl (depth - l) lor (i lsr (l + 1))],
   the exit cell the same with [o], and the middle cell is the full
   colour prefix itself. *)
let rec fill_cells t i o l b =
  if l < t.depth then begin
    let cb = b lsl (t.depth - l) in
    t.cells.(l) <- cb lor (i lsr (l + 1));
    t.cells.(t.stages - 1 - l) <- cb lor (o lsr (l + 1));
    fill_cells t i o (l + 1) ((2 * b) + colour_bit t i l)
  end
  else t.cells.(t.depth) <- b

let rec claim_seq t o s cur ip =
  if s = t.stages - 1 then begin
    match Plan.claim t.plan ~stage:s ~cell:cur ~in_port:ip ~out_port:(o land 1) with
    | Plan.Claimed -> ()
    | _ -> failwith "Rearrange: switch conflict on Benes"
  end
  else begin
    let nxt = t.cells.(s + 1) in
    let a0 = 2 * cur in
    let j = if t.fab.Fabric.child.(s).(a0) = nxt then 0 else 1 in
    (match Plan.claim t.plan ~stage:s ~cell:cur ~in_port:ip ~out_port:j with
    | Plan.Claimed -> ()
    | _ -> failwith "Rearrange: switch conflict on Benes");
    claim_seq t o (s + 1) nxt t.fab.Fabric.in_port.(s).(a0 + j)
  end

let claim_path t i o =
  fill_cells t i o 0 0;
  claim_seq t o 0 (i lsr 1) (i land 1)

let rec release_seq t s cur ip =
  Plan.release t.plan ~stage:s ~cell:cur ~in_port:ip;
  if s < t.stages - 1 then begin
    let nxt = t.cells.(s + 1) in
    let a0 = 2 * cur in
    let j = if t.fab.Fabric.child.(s).(a0) = nxt then 0 else 1 in
    release_seq t (s + 1) nxt t.fab.Fabric.in_port.(s).(a0 + j)
  end

let release_path t i o =
  fill_cells t i o 0 0;
  release_seq t 0 (i lsr 1) (i land 1)

let rec clear_occ t i o l b =
  if l < t.depth then begin
    let base = (l * t.terminals) + (b * (t.terminals lsr l)) in
    t.iocc.(base + (i lsr l)) <- -1;
    t.oocc.(base + (o lsr l)) <- -1;
    clear_occ t i o (l + 1) ((2 * b) + colour_bit t i l)
  end

(* The alternating chain through [y], entered via its output switch:
   hop to the mate at y's input switch, then to that connection's
   output-switch mate, and so on until a free slot ends the path.  The
   walk can neither cycle (the start switch has one occupied slot) nor
   reach the new pair's switches (their slots are still free). *)
let rec collect_chain t l base ch k y via_input =
  ch.(k) <- y;
  let nxt =
    if via_input then t.iocc.(base + ((y lsr l) lxor 1))
    else t.oocc.(base + ((t.out_of.(y) lsr l) lxor 1))
  in
  if nxt < 0 then k + 1 else collect_chain t l base ch (k + 1) nxt (not via_input)

(* Place connection i -> o at level l of block b: pick the colour both
   mates leave free, rearranging the output-side chain when the two
   mates force opposite colours, then descend.  [rearrange] is
   three-phase — release + clear every chain member, flip every
   colour, then reinsert + reclaim — because moving members one at a
   time would transiently collide two of them on one deeper slot. *)
let rec insert t l b i o =
  if l < t.depth then begin
    let base = (l * t.terminals) + (b * (t.terminals lsr l)) in
    let ipos = i lsr l in
    let opos = o lsr l in
    let im = t.iocc.(base + (ipos lxor 1)) in
    let om = t.oocc.(base + (opos lxor 1)) in
    let c =
      if im < 0 && om < 0 then ipos land 1
      else if im < 0 then 1 - colour_bit t om l
      else if om < 0 then 1 - colour_bit t im l
      else begin
        let fi = colour_bit t im l in
        let fo = colour_bit t om l in
        if fi = fo then 1 - fi
        else begin
          (* the chain from om alternates colours starting at fo and
             so never reaches im (whose colour is 1 - fo): flipping it
             frees fo at the output switch while im keeps fi *)
          rearrange t l b base om;
          1 - fi
        end
      end
    in
    t.iocc.(base + ipos) <- i;
    t.oocc.(base + opos) <- i;
    set_colour_bit t i l c;
    insert t (l + 1) ((2 * b) + c) i o
  end

and rearrange t l b base start =
  let ch = t.chain.(l) in
  let len = collect_chain t l base ch 0 start true in
  for k = 0 to len - 1 do
    let y = ch.(k) in
    let oy = t.out_of.(y) in
    release_path t y oy;
    clear_occ t y oy (l + 1) ((2 * b) + colour_bit t y l)
  done;
  for k = 0 to len - 1 do
    let y = ch.(k) in
    set_colour_bit t y l (1 - colour_bit t y l)
  done;
  for k = 0 to len - 1 do
    let y = ch.(k) in
    let oy = t.out_of.(y) in
    insert t (l + 1) ((2 * b) + colour_bit t y l) y oy;
    claim_path t y oy
  done;
  t.last_moved <- t.last_moved + len

let connect t ~input ~output =
  if input < 0 || input >= t.terminals || output < 0 || output >= t.terminals
  then invalid_arg "Rearrange.connect: terminal out of range";
  if t.out_of.(input) >= 0 then Input_busy
  else if t.in_from.(output) >= 0 then Output_busy
  else begin
    t.last_moved <- 0;
    t.out_of.(input) <- output;
    t.in_from.(output) <- input;
    insert t 0 0 input output;
    claim_path t input output;
    t.live <- t.live + 1;
    t.connects <- t.connects + 1;
    t.moved_total <- t.moved_total + t.last_moved;
    Done
  end

let disconnect t ~input =
  if input < 0 || input >= t.terminals then
    invalid_arg "Rearrange.disconnect: terminal out of range";
  let o = t.out_of.(input) in
  if o < 0 then false
  else begin
    release_path t input o;
    clear_occ t input o 0 0;
    t.out_of.(input) <- -1;
    t.in_from.(o) <- -1;
    t.live <- t.live - 1;
    t.disconnects <- t.disconnects + 1;
    true
  end

let rec sift a j v =
  if j >= 0 && a.(j) > v then begin
    a.(j + 1) <- a.(j);
    sift a (j - 1) v
  end
  else a.(j + 1) <- v

let sort_prefix a len =
  for k = 1 to len - 1 do
    sift a (k - 1) a.(k)
  done

let[@inline] mark_touched t input =
  if t.tmark.(input) <> t.stamp then begin
    t.tmark.(input) <- t.stamp;
    t.touched.(t.tcount) <- input;
    t.tcount <- t.tcount + 1
  end

let apply_moves t moves =
  let nt = t.terminals in
  Array.blit t.out_of 0 t.shadow_out 0 nt;
  Array.blit t.in_from 0 t.shadow_in 0 nt;
  t.stamp <- t.stamp + 1;
  t.tcount <- 0;
  (* validate the whole batch against the shadow first, so an invalid
     op raises before the engine mutates *)
  for k = 0 to Array.length moves - 1 do
    match moves.(k) with
    | Connect { input; output } ->
      if input < 0 || input >= nt || output < 0 || output >= nt then
        invalid_arg "Rearrange.apply_moves: terminal out of range";
      if t.shadow_out.(input) >= 0 then
        invalid_arg "Rearrange.apply_moves: connect on a busy input";
      if t.shadow_in.(output) >= 0 then
        invalid_arg "Rearrange.apply_moves: connect on a busy output";
      t.shadow_out.(input) <- output;
      t.shadow_in.(output) <- input;
      mark_touched t input
    | Disconnect { input } ->
      if input < 0 || input >= nt then
        invalid_arg "Rearrange.apply_moves: terminal out of range";
      let o = t.shadow_out.(input) in
      if o < 0 then invalid_arg "Rearrange.apply_moves: disconnect on an idle input";
      t.shadow_out.(input) <- -1;
      t.shadow_in.(o) <- -1;
      mark_touched t input
  done;
  (* net effect only: disconnect every touched input whose connection
     changes, then connect the new targets in ascending input order so
     pairs sharing an input switch agree on colours without chains *)
  t.tapplied <- 0;
  for k = 0 to t.tcount - 1 do
    let i = t.touched.(k) in
    let cur = t.out_of.(i) in
    if cur >= 0 && cur <> t.shadow_out.(i) then begin
      ignore (disconnect t ~input:i);
      t.tapplied <- t.tapplied + 1
    end
  done;
  sort_prefix t.touched t.tcount;
  for k = 0 to t.tcount - 1 do
    let i = t.touched.(k) in
    let d = t.shadow_out.(i) in
    if d >= 0 && t.out_of.(i) <> d then begin
      (match connect t ~input:i ~output:d with
      | Done -> ()
      | _ -> failwith "Rearrange.apply_moves: netted connect refused");
      t.tapplied <- t.tapplied + 1
    end
  done;
  t.tapplied

let rec scan_cells t s cur ip =
  let out = Plan.port_of t.plan ~stage:s ~cell:cur ~in_port:ip in
  if out < 0 then
    if s = 0 then -1
    else invalid_arg "Rearrange.rescan: dangling mid-path assignment"
  else begin
    t.cells.(s) <- cur;
    if s = t.stages - 1 then (2 * cur) + out
    else begin
      let a = (2 * cur) + out in
      scan_cells t (s + 1) t.fab.Fabric.child.(s).(a) t.fab.Fabric.in_port.(s).(a)
    end
  end

(* Read the colour bits back out of a scanned path and rebuild the
   slot tables, cross-checking every cell against the block-descent
   formula as we go. *)
let rec adopt t i o l b =
  if l < t.depth then begin
    let cb = b lsl (t.depth - l) in
    if
      t.cells.(l) <> cb lor (i lsr (l + 1))
      || t.cells.(t.stages - 1 - l) <> cb lor (o lsr (l + 1))
    then invalid_arg "Rearrange.rescan: path disagrees with the Benes recursion";
    let c = (t.cells.(l + 1) lsr (t.depth - 1 - l)) land 1 in
    set_colour_bit t i l c;
    let base = (l * t.terminals) + (b * (t.terminals lsr l)) in
    if t.iocc.(base + (i lsr l)) >= 0 || t.oocc.(base + (o lsr l)) >= 0 then
      invalid_arg "Rearrange.rescan: colliding paths";
    t.iocc.(base + (i lsr l)) <- i;
    t.oocc.(base + (o lsr l)) <- i;
    adopt t i o (l + 1) ((2 * b) + c)
  end
  else if t.cells.(t.depth) <> b then
    invalid_arg "Rearrange.rescan: path disagrees with the Benes recursion"

let rescan t =
  let nt = t.terminals in
  Array.fill t.out_of 0 nt (-1);
  Array.fill t.in_from 0 nt (-1);
  Array.fill t.iocc 0 (t.depth * nt) (-1);
  Array.fill t.oocc 0 (t.depth * nt) (-1);
  t.live <- 0;
  for i = 0 to nt - 1 do
    let o = scan_cells t 0 (i lsr 1) (i land 1) in
    if o >= 0 then begin
      if t.in_from.(o) >= 0 then
        invalid_arg "Rearrange.rescan: two inputs delivered to one output";
      t.out_of.(i) <- o;
      t.in_from.(o) <- i;
      adopt t i o 0 0;
      t.live <- t.live + 1
    end
  done;
  if Plan.set_count t.plan <> t.live * t.stages then
    invalid_arg "Rearrange.rescan: dangling mid-path assignment"

let reset t =
  let nt = t.terminals in
  Array.fill t.out_of 0 nt (-1);
  Array.fill t.in_from 0 nt (-1);
  Array.fill t.colw 0 nt 0;
  Array.fill t.iocc 0 (t.depth * nt) (-1);
  Array.fill t.oocc 0 (t.depth * nt) (-1);
  Plan.reset t.plan;
  t.live <- 0;
  t.last_moved <- 0;
  t.moved_total <- 0;
  t.connects <- 0;
  t.disconnects <- 0

let rec consistent_from t i =
  i >= t.terminals
  || (let o = t.out_of.(i) in
      (if o < 0 then Plan.port_of t.plan ~stage:0 ~cell:(i lsr 1) ~in_port:(i land 1) < 0
       else Plan.propagate t.plan i = o && t.in_from.(o) = i)
      && consistent_from t (i + 1))

let consistent t = Plan.set_count t.plan = t.live * t.stages && consistent_from t 0
