(** Mutable switch-state programs: one state word per cell.

    A plan assigns, cell by cell, input ports to output ports — the
    "switch settings" that turn a topology into a circuit.  The word
    for an [r x r] cell packs three things: an input-occupancy mask
    ([r] bits), an output-occupancy mask ([r] bits) and one
    [ceil(log2 r)]-bit field per input port holding its assigned
    output port.  Claiming, releasing and following an assignment
    are each a handful of bit operations on one array slot, and
    {!reset} is a single [Array.fill] — nothing on the routing hot
    path allocates, which is what the [*_minor_w] columns of
    [BENCH_route.json] gate at zero.

    Stages, cells and ports are 0-based throughout this module (the
    hot-path convention), unlike the 1-based paper stages of
    {!Mineq.Mi_digraph}. *)

type t

(** Outcome of {!claim}.  Constant constructors — returning one
    never allocates. *)
type claim =
  | Claimed  (** the pair was free (or already claimed identically) *)
  | In_busy  (** the input port is already assigned elsewhere *)
  | Out_busy  (** the output link is already carrying another path *)

val create : Fabric.t -> t
(** A fresh all-unset plan.  Raises [Invalid_argument] when the
    fabric's radix needs more state bits per cell than an [int]
    holds (radix above 8 on 64-bit). *)

val fabric : t -> Fabric.t

val reset : t -> unit
(** Clear every switch state ([Array.fill]; no allocation). *)

val claim : t -> stage:int -> cell:int -> in_port:int -> out_port:int -> claim
(** Try to assign [in_port -> out_port] at the given cell.
    Re-claiming an identical assignment is [Claimed] and changes
    nothing; a different assignment for a busy input port is
    [In_busy]; a free input port wanting an occupied output link is
    [Out_busy] — the contested link is exactly
    [(stage, cell, out_port)]. *)

val release : t -> stage:int -> cell:int -> in_port:int -> unit
(** Undo the input port's assignment, if any (used to unwind the
    partial path of a blocked route). *)

val field_width : int -> int
(** [field_width radix]: bits of one assigned-port field in a cell's
    state word — the layout constant a word-level checker (e.g.
    [Mineq_route_verify.Plan_check]) needs to audit raw states.  The
    word packs, low to high: [radix] input-occupancy bits, [radix]
    output-occupancy bits, then [radix] fields of [field_width radix]
    bits each. *)

val state_word : t -> stage:int -> cell:int -> int
(** The raw state word of one cell (read-only view; see
    {!field_width} for the layout).  Exposed for static checkers —
    routing code should use {!port_of}/{!out_taken}. *)

val snapshot : t -> int array
(** Fresh copy of every cell's state word, stage-major — the
    bit-identical-unwind witness: capturing a snapshot before a
    blocked {!Bit_follow.try_route} and comparing after must find
    equal arrays (qcheck-enforced). *)

val port_of : t -> stage:int -> cell:int -> in_port:int -> int
(** The assigned output port, or [-1] when unset. *)

val out_taken : t -> stage:int -> cell:int -> out_port:int -> bool
(** Whether the output link is occupied. *)

val set_count : t -> int
(** Number of live input-to-output assignments across all cells. *)

val propagate : t -> int -> int
(** [propagate t input]: follow the switch states from input
    terminal [input] to the output terminal they deliver it to, or
    [-1] if some cell on the way has no assignment for the arriving
    port.  Allocation-free. *)

val realizes : t -> int array -> bool
(** [realizes t image]: every input terminal [i] propagates to
    [image.(i)] — the plan implements the permutation (or partial
    map; [-1] entries of [image] mean "don't care").
    Allocation-free. *)

val to_array : t -> int array
(** Fresh array: [propagate] of every input terminal. *)

val fill_image : t -> int array -> unit
(** In-place {!to_array} into a caller-owned array of [terminals]
    length (checked) — the churn loops re-read plan images without
    allocating.  Idle inputs read back as [-1]. *)
