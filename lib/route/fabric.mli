(** Flat per-gap routing tables — the read-only substrate every
    router in this library walks.

    A fabric is the child tables of {!Mineq.Mi_digraph.packed} plus
    the inverse information a switch-state router needs and the
    packed record does not spell out: for every arc [(cell, out
    port)], the {e input-port index} it occupies at the cell it
    lands on.  Input ports are numbered in the predecessor fill
    order of the packed representation (ascending source label,
    then ascending out-port), the same order {!Mineq.Packed.parent}
    and the simulator use, so fabrics and packed kernels agree on
    which wire is which.

    Unlike [packed], a fabric also covers {e rectangular} cascades
    ({!of_cascade}) — the Benes network has [2n - 1] stages over
    [n - 1] label bits, which no MI-digraph (and hence no [packed])
    can represent.  All tables are plain int arrays; every per-route
    walk over them is allocation-free. *)

type t = private {
  stages : int;  (** [S >= 1] *)
  width : int;  (** label digits per cell *)
  radix : int;  (** [r]: ports per cell side *)
  per : int;  (** cells per stage, [r^width] *)
  child : int array array;
      (** [child.(k).(r * x + j)]: label of the port-[j] child of
          cell [x] across 0-based gap [k] ([S - 1] gaps) — the
          layout of [p_child]. *)
  in_port : int array array;
      (** [in_port.(k).(r * x + j)]: input-port index the arc
          [(x, j)] of gap [k] occupies at its child cell. *)
}

val of_packed : Mineq.Mi_digraph.packed -> t
(** Adopts the packed child tables (shared, not copied) and derives
    the input-port tables. *)

val of_network : Mineq.Mi_digraph.t -> t
(** [of_packed (Mi_digraph.packed g)]. *)

val of_rnetwork : Mineq_radix.Rnetwork.t -> t
(** The radix-[r] fabric, via {!Mineq_radix.Rnetwork.packed}. *)

val of_cascade : Mineq.Cascade.t -> t
(** Tabulates a rectangular cascade (e.g. {!Mineq.Benes.network})
    into the same layout; always [radix = 2]. *)

val terminals : t -> int
(** [radix * per]: terminal count on each boundary.  Terminal [i]
    attaches to cell [i / radix] on port [i mod radix], at stage 1
    going in and stage [S] going out — the {!Mineq.Routing}
    convention. *)

val cell_count : t -> int
(** [stages * per]: one switch state word per cell. *)
