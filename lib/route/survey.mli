(** Blocking-probability survey: random permutations through plane
    ensembles, across the classical inventory.

    For each delta network of the classical inventory at a given
    size, the survey draws random permutations, connects them
    greedily through a [k]-plane {!Planes} ensemble and tallies how
    many pairs (and how many whole permutations) get through — an
    empirical view of the blocking the Baseline-equivalence theory
    says all these networks share, and of how fast expansion planes
    buy it back.

    Runs are driven through {!Mineq_engine.Pool} with one
    {!Mineq_engine.Seeds.derive}d RNG per trial, so every tally is
    bit-identical across [--jobs] values and stealing schedules. *)

type row = {
  name : string;  (** classical network name *)
  n : int;
  planes : int;
  trials : int;
  full : int;  (** trials whose whole permutation connected *)
  pairs_routed : int;
  pairs_total : int;  (** [trials * 2^n] *)
}

val routed_fraction : row -> float
(** [pairs_routed / pairs_total]. *)

val full_fraction : row -> float
(** [full / trials]. *)

val router_in :
  Mineq_engine.Pool.t ->
  root:int ->
  name:string ->
  n:int ->
  planes:int ->
  trials:int ->
  Bit_follow.t ->
  row
(** Survey one router: trial [i] draws its permutation from
    [Seeds.derive ~root i], builds a fresh ensemble and connects
    greedily in ascending input order. *)

val run_in :
  Mineq_engine.Pool.t ->
  seed:int -> n:int -> planes:int -> trials:int -> row list
(** Every delta network of {!Mineq.Classical.all_networks} at size
    [n] (they all are, being Baseline-equivalent), each under its
    own seed root folded from [seed] and its inventory position. *)

val run :
  ?jobs:int -> seed:int -> n:int -> planes:int -> trials:int -> unit -> row list
(** {!run_in} under a bracketed pool ([jobs] defaults to
    {!Mineq_engine.Pool.default_jobs}); results do not depend on
    [jobs]. *)

(** {1 Churn throughput model}

    How much rearrangement does steady connection churn actually
    cause?  Each trial drives a fresh {!Rearrange} engine on B(n)
    through [ops] random operations — toggle a uniform input:
    disconnect it if live, otherwise connect it to a uniform free
    output — and tallies, per successful connect, how many existing
    connections the insertion had to move.  Trials run through
    {!Mineq_engine.Batch.tally}, so the tallies are bit-identical
    across [jobs]. *)

type churn_row = {
  cn : int;  (** B(n) size *)
  ops : int;  (** operations per trial *)
  ctrials : int;
  connects : int;
  disconnects : int;
  moved_total : int;  (** existing connections re-routed, summed *)
  rearranged : int;  (** connects that moved at least one connection *)
  moved_hist : int array;
      (** 17 bins: connects that moved exactly [k] connections for
          [k = 0..15], overflow ([>= 16]) in the last bin *)
  failures : int;  (** trials failing the end-of-trial {!Rearrange.consistent} *)
}

val moved_per_connect : churn_row -> float
(** [moved_total / connects] — the mean rearrangement bill. *)

val rearranged_fraction : churn_row -> float
(** [rearranged / connects]. *)

val churn_in :
  Mineq_engine.Pool.t -> root:int -> n:int -> ops:int -> trials:int -> churn_row
(** Trial [i] draws from [Seeds.derive ~root i].  Requires
    [ops >= 1] and [trials >= 1]. *)

val churn :
  ?jobs:int -> seed:int -> n:int -> ops:int -> trials:int -> unit -> churn_row
(** {!churn_in} under a bracketed pool; results do not depend on
    [jobs]. *)
