(** Work-stealing worker pool over OCaml 5 domains.

    A pool owns [jobs - 1] worker domains; the submitting domain is
    the remaining participant, so [jobs] is the true parallel width.
    [jobs = 1] spawns nothing and runs every batch inline, so a
    single code path serves both modes and sequential runs stay
    oracle-exact for the determinism tests.

    Work is batch-shaped: {!map_array} is the primitive.  A batch
    splits its index range into chunks owned contiguously by the
    participants; each participant drains its own block through an
    atomic cursor and then steals from the back of other blocks, with
    a compare-and-set claim per chunk making the race benign.  Results
    are written into a preallocated array at fixed indices and
    completion is one count-down latch per batch — no per-item
    futures, no shared queue lock.

    {e Determinism contract}: [map_array pool f xs] writes [f xs.(i)]
    to slot [i] regardless of which domain ran it, so results are
    bit-identical across [jobs] values and across stealing schedules.
    Exceptions are recorded per chunk and re-raised in chunk order
    (elements within a chunk run in order and stop at the first
    failure), so the surfaced exception is the same lowest-index
    failure a sequential run hits — also scheduling-independent.

    Tasks must not invoke the pool from inside a task body; drive the
    pool from the submitting thread only. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] (at least 1) — the default
    and the clamping bound for [jobs]. *)

val create : ?clamp:bool -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains.  Raises
    [Invalid_argument] when [jobs < 1].  With [clamp] (the default),
    [jobs] is capped at {!default_jobs} — oversubscribing domains
    only adds scheduler thrash (the pre-stealing engine lost 3-6x to
    it on a single core).  Pass [~clamp:false] to force the requested
    width (tests exercising real parallelism on small machines,
    oversubscription benches). *)

val jobs : t -> int
(** The effective parallel width (after clamping). *)

val map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** The batch primitive: [f] over every element, results at fixed
    indices.  [chunk] is the number of consecutive elements per task;
    it defaults adaptively to [max 1 (n / (jobs * 8))] — several
    chunks per participant so stragglers rebalance by stealing, while
    amortizing the per-chunk atomics.  Chunking never changes
    results, only granularity.  Raises [Invalid_argument] on
    [chunk < 1] or on a shut-down pool. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** List shim over {!map_array}; same guarantees, same order. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent. *)

val run : ?clamp:bool -> jobs:int -> (t -> 'a) -> 'a
(** Bracket: create, apply, always shut down. *)
