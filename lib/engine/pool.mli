(** Fixed-size worker pool over OCaml 5 domains.

    A pool owns [jobs] worker domains pulling thunks from a shared
    mutex/condition queue.  [jobs = 1] is the sequential fallback:
    no domains are spawned and every submitted task runs inline at
    submission time, so a single code path serves both modes and
    sequential runs stay oracle-exact for the determinism tests.

    Exceptions raised inside a task are captured with their backtrace
    and re-raised by {!await} in the submitter — so a parallel batch
    fails with the same exception (and at the same list position,
    since {!map_list} awaits in input order) as a sequential run.

    Tasks must not {!await} futures or {!submit} work from inside a
    task body: workers do not steal, so a worker blocked in [await]
    can deadlock the pool.  Drive the pool from the submitting
    thread only. *)

type t

type 'a future

val create : jobs:int -> t
(** [jobs] is clamped to at least 1; [jobs - 0] worker domains are
    spawned when [jobs > 1]. *)

val jobs : t -> int

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task ([jobs > 1]) or run it inline ([jobs = 1]).
    Raises [Invalid_argument] on a shut-down pool. *)

val await : 'a future -> 'a
(** Block until the task finished; re-raise its exception (with the
    original backtrace) if it failed. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Submit one task per run of [chunk] consecutive elements
    (default 1) and await them in input order, so the result order —
    and which exception surfaces first — never depends on
    scheduling.  Chunking only changes task granularity, never
    results: use it when per-element work is far below the ~10us
    task handoff cost. *)

val shutdown : t -> unit
(** Drain the queue, stop and join the workers.  Idempotent. *)

val run : jobs:int -> (t -> 'a) -> 'a
(** Bracket: create, apply, always shut down. *)
