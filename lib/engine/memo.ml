type 'a t = {
  table : (string, 'a) Hashtbl.t;
  m : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 64) () =
  { table = Hashtbl.create size; m = Mutex.create (); hits = 0; misses = 0 }

let key g = Digest.string (Mineq.Spec_io.to_string g)

let find_or_compute_key t k f =
  Mutex.lock t.m;
  match Hashtbl.find_opt t.table k with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.m;
      v
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.m;
      let v = f () in
      Mutex.lock t.m;
      if not (Hashtbl.mem t.table k) then Hashtbl.add t.table k v;
      Mutex.unlock t.m;
      v

let find_or_compute t g f = find_or_compute_key t (key g) (fun () -> f g)

let hits t = t.hits

let misses t = t.misses

let size t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.m;
  n

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then nan else float_of_int t.hits /. float_of_int total

let reset t =
  Mutex.lock t.m;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.m
