(* Structural keys ---------------------------------------------------

   The pre-sharding memo keyed on [Digest.string (Spec_io.to_string g)]
   — an MD5 of the rendered spec text, serializing the whole network
   on every probe.  The replacement key is the network itself under a
   cheap structural hash: per gap, per source label, the unordered
   child pair [(min (f x) (g x), max (f x) (g x))] folded through a
   multiply-xor mixer.  Using the unordered pair makes both hash and
   equality insensitive to the non-canonical [(f, g)] decomposition
   (swapping [f] and [g] is the same digraph), which is exactly the
   arc-multiset equality [Mi_digraph.equal] implements — but computed
   pointwise with no allocation.  Collisions are harmless: the
   hashtable falls back on [structural_equal].

   A second keying collapses entries further: the canonical
   Fingerprint identifies all isomorphic networks (up to WL hash
   collisions), so iso-invariant computations — every verdict that
   depends only on the isomorphism class — hit the cache across
   relabellings the structural key treats as distinct.  The keying is
   chosen at [create] time; the probing API is identical. *)

let structural_equal a b =
  let module M = Mineq.Mi_digraph in
  let module C = Mineq.Connection in
  M.width a = M.width b
  && M.stages a = M.stages b
  &&
  let per = M.nodes_per_stage a in
  let rec gaps i =
    i >= M.stages a
    ||
    let ca = M.connection a i and cb = M.connection b i in
    let rec labels x =
      x = per
      ||
      let afx = C.f ca x and agx = C.g ca x in
      let bfx = C.f cb x and bgx = C.g cb x in
      min afx agx = min bfx bgx
      && max afx agx = max bfx bgx
      && labels (x + 1)
    in
    labels 0 && gaps (i + 1)
  in
  gaps 1

(* Fits a 63-bit int literal; odd, so multiplication permutes. *)
let mult = 0x2545f4914f6cdd1d

let mix h k =
  let h = (h + k) * mult in
  h lxor (h lsr 29)

let structural_hash g =
  let module M = Mineq.Mi_digraph in
  let module C = Mineq.Connection in
  let per = M.nodes_per_stage g in
  let h = ref (mix (M.width g) (M.stages g)) in
  for i = 1 to M.stages g - 1 do
    let c = M.connection g i in
    for x = 0 to per - 1 do
      let fx = C.f c x and gx = C.g c x in
      let lo = if fx <= gx then fx else gx and hi = if fx <= gx then gx else fx in
      h := mix !h (lo lor (hi lsl 20))
    done
  done;
  (* Land in Hashtbl's expected non-negative range. *)
  !h land max_int

let digest_key g = Digest.string (Mineq.Spec_io.to_string g)

module H = Hashtbl.Make (struct
  type t = Mineq.Mi_digraph.t

  let equal = structural_equal

  let hash = structural_hash
end)

module FH = Hashtbl.Make (struct
  type t = Mineq.Fingerprint.t

  let equal = Mineq.Fingerprint.equal

  let hash = Mineq.Fingerprint.hash
end)

type keying = Structural | Fingerprint

let keying_name = function Structural -> "structural" | Fingerprint -> "fingerprint"

(* Lock striping: a probe touches one shard mutex chosen by the key
   hash, so concurrent workers probing different networks never
   contend.  Counters are per shard, mutated under the shard lock and
   summed on read. *)

type 'a table = S of 'a H.t | F of 'a FH.t

type 'a shard = { table : 'a table; m : Mutex.t; mutable hits : int; mutable misses : int }

let shard_count = 16 (* power of two: shard index is a mask of the hash *)

type 'a t = { keying : keying; shards : 'a shard array }

let create ?(size = 64) ?(keying = Structural) () =
  { keying;
    shards =
      Array.init shard_count (fun _ ->
          let cap = max 1 (size / shard_count) in
          let table = match keying with Structural -> S (H.create cap) | Fingerprint -> F (FH.create cap) in
          { table; m = Mutex.create (); hits = 0; misses = 0 })
  }

let keying t = t.keying

let key_hash t g =
  match t.keying with
  | Structural -> structural_hash g
  | Fingerprint -> Mineq.Fingerprint.hash (Mineq.Fingerprint.of_network g)

let shard t g = t.shards.(key_hash t g land (shard_count - 1))

let find_or_compute t g f =
  let s = shard t g in
  (* Probe under the shard lock; compute outside it.  A value may
     rarely be computed twice under contention — harmless,
     computations are deterministic — and the first store wins. *)
  match s.table with
  | S tbl -> (
      Mutex.lock s.m;
      match H.find_opt tbl g with
      | Some v ->
          s.hits <- s.hits + 1;
          Mutex.unlock s.m;
          v
      | None ->
          s.misses <- s.misses + 1;
          Mutex.unlock s.m;
          let v = f g in
          Mutex.lock s.m;
          if not (H.mem tbl g) then H.add tbl g v;
          Mutex.unlock s.m;
          v)
  | F tbl -> (
      (* [of_network] memoises on the record, so hash and probe share
         one refinement pass. *)
      let k = Mineq.Fingerprint.of_network g in
      Mutex.lock s.m;
      match FH.find_opt tbl k with
      | Some v ->
          s.hits <- s.hits + 1;
          Mutex.unlock s.m;
          v
      | None ->
          s.misses <- s.misses + 1;
          Mutex.unlock s.m;
          let v = f g in
          Mutex.lock s.m;
          if not (FH.mem tbl k) then FH.add tbl k v;
          Mutex.unlock s.m;
          v)

(* Export / import -------------------------------------------------

   The serving layer's snapshots need a point-in-time view of every
   entry.  Grabbing the shard locks one at a time would interleave
   with concurrent stores (an entry added to shard 3 while shard 7 is
   being copied appears or not depending on timing); [export] instead
   holds {e all} shard locks (acquired in index order, so two
   concurrent exports cannot deadlock) for the duration of the copy —
   a consistent cut, cheap because copying is proportional to the
   entry count, not the compute time behind it. *)

type 'a entry =
  | Skey of Mineq.Mi_digraph.t * 'a
  | Fkey of Mineq.Fingerprint.t * 'a

let export t =
  Array.iter (fun s -> Mutex.lock s.m) t.shards;
  let acc = ref [] in
  Array.iter
    (fun s ->
      match s.table with
      | S tbl -> H.iter (fun k v -> acc := Skey (k, v) :: !acc) tbl
      | F tbl -> FH.iter (fun k v -> acc := Fkey (k, v) :: !acc) tbl)
    t.shards;
  for i = Array.length t.shards - 1 downto 0 do
    Mutex.unlock t.shards.(i).m
  done;
  Array.of_list !acc

let fold f init t = Array.fold_left f init (export t)

let import t entries =
  let adopted = ref 0 in
  Array.iter
    (fun e ->
      match (e, t.keying) with
      | Skey (g, v), Structural -> (
          let s = t.shards.(structural_hash g land (shard_count - 1)) in
          Mutex.lock s.m;
          (match s.table with
          | S tbl -> if not (H.mem tbl g) then (H.add tbl g v; incr adopted)
          | F _ -> ());
          Mutex.unlock s.m)
      | Fkey (k, v), Fingerprint -> (
          let s = t.shards.(Mineq.Fingerprint.hash k land (shard_count - 1)) in
          Mutex.lock s.m;
          (match s.table with
          | F tbl -> if not (FH.mem tbl k) then (FH.add tbl k v; incr adopted)
          | S _ -> ());
          Mutex.unlock s.m)
      | Skey _, Fingerprint | Fkey _, Structural -> ())
    entries;
  !adopted

let sum_shards t f = Array.fold_left (fun acc s -> acc + f s) 0 t.shards

let hits t = sum_shards t (fun s -> s.hits)

let misses t = sum_shards t (fun s -> s.misses)

let table_length = function S tbl -> H.length tbl | F tbl -> FH.length tbl

let size t =
  sum_shards t (fun s ->
      Mutex.lock s.m;
      let n = table_length s.table in
      Mutex.unlock s.m;
      n)

let hit_rate t =
  let h = hits t and m = misses t in
  let total = h + m in
  if total = 0 then nan else float_of_int h /. float_of_int total

let reset t =
  Array.iter
    (fun s ->
      Mutex.lock s.m;
      (match s.table with S tbl -> H.reset tbl | F tbl -> FH.reset tbl);
      s.hits <- 0;
      s.misses <- 0;
      Mutex.unlock s.m)
    t.shards
