module Census = Mineq.Census

type survey_row = {
  name : string;
  banyan : bool;
  independent : bool;
  characterization : bool;
  delta : bool;
}

(* Chunk granularity is Pool.map_list's adaptive default: several
   chunks per participant, rebalanced by stealing. *)

let survey_in pool ~n =
  Pool.map_list pool
    (fun (name, g) ->
      { name;
        banyan = Mineq.Banyan.is_banyan g;
        independent = (Mineq.Equivalence.by_independence g).equivalent;
        characterization = (Mineq.Equivalence.by_characterization g).equivalent;
        delta = Mineq.Routing.is_delta g
      })
    (Mineq.Classical.all_networks ~n)

let survey ~jobs ~n = Pool.run ~jobs (fun pool -> survey_in pool ~n)

let pairwise_in pool ?memo nets =
  let verdict =
    match memo with
    | Some m -> fun g -> Memo.find_or_compute m g Mineq.Equivalence.by_characterization
    | None -> Mineq.Equivalence.by_characterization
  in
  let cells = List.concat_map (fun a -> List.map (fun b -> (a, b)) nets) nets in
  Pool.map_list pool
    (fun ((name_a, ga), (name_b, gb)) ->
      (name_a, name_b, (verdict ga).equivalent && (verdict gb).equivalent))
    cells

let pairwise ~jobs ?memo nets = Pool.run ~jobs (fun pool -> pairwise_in pool ?memo nets)

(* classify: a parallel refinement with output bit-identical to
   Census.classify.  Fingerprints prescreen (equal fingerprints are
   necessary for isomorphism — the same bucketing Census.classify
   uses serially), so items are first grouped by fingerprint; each
   group is then peeled one class per round: the group's first
   remaining item is the representative, every other remaining item
   is iso-checked against it in parallel, matches join the class in
   input order, the rest go to the next round.  Scanning
   representatives in rounds reproduces exactly the sequential
   first-match placement, and the final sort by first-member index
   erases the grouping order entirely. *)

let classify_group pool group =
  let rec rounds remaining acc =
    match remaining with
    | [] -> List.rev acc
    | ((i0, g0, t0) :: rest : (int * Mineq.Mi_digraph.t * 'a) list) ->
        let flags =
          Pool.map_list pool (fun (_, g, _) -> Option.is_some (Mineq.Iso_min.find g g0)) rest
        in
        let members, others =
          List.partition (fun (_, matched) -> matched) (List.combine rest flags)
        in
        let cls =
          (i0, g0, (i0, t0) :: List.map (fun ((i, _, t), _) -> (i, t)) members)
        in
        rounds (List.map fst others) (cls :: acc)
  in
  rounds group []

let classify_in pool tagged =
  match tagged with
  | [] -> []
  | _ ->
      let items = List.mapi (fun i (g, tag) -> (i, g, tag)) tagged in
      let signatures =
        Pool.map_list pool (fun (_, g, _) -> Mineq.Fingerprint.of_network g) items
      in
      let groups = Hashtbl.create 16 in
      let order = ref [] in
      List.iter2
        (fun item s ->
          match Hashtbl.find_opt groups s with
          | Some l -> l := item :: !l
          | None ->
              Hashtbl.add groups s (ref [ item ]);
              order := s :: !order)
        items signatures;
      let group_list = List.rev_map (fun s -> List.rev !(Hashtbl.find groups s)) !order in
      List.concat_map (fun group -> classify_group pool group) group_list
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
      |> List.map (fun (_, rep, members) ->
             { Census.representative = rep; members = List.map snd members })

let classify ~jobs tagged = Pool.run ~jobs (fun pool -> classify_in pool tagged)

let sample_census_in pool ~root ~n ~samples ~attempts =
  let draw_root = Seeds.fold root 0x5a17 in
  let draws =
    Pool.map_list pool
      (fun i ->
        let rng = Seeds.derive ~root:draw_root i in
        (i, Mineq.Counterexample.random_banyan rng ~n ~attempts))
      (List.init samples Fun.id)
  in
  let tagged = List.filter_map (fun (i, g) -> Option.map (fun g -> (g, i)) g) draws in
  classify_in pool tagged

let sample_census ~jobs ~root ~n ~samples ~attempts =
  Pool.run ~jobs (fun pool -> sample_census_in pool ~root ~n ~samples ~attempts)

(* Monte-Carlo chunking must be a function of the workload alone:
   sample counts per (fault count, chunk index) task feed the derived
   RNG streams, so if they depended on [jobs] the estimates would
   change with the worker count.  The chunk size therefore adapts to
   [samples] only — small sweeps split into enough chunks to keep
   every participant fed, large sweeps cap the per-task cost — and
   the weighted recombination runs in chunk order, so the estimate is
   scheduling-independent. *)
let mc_chunk ~samples = max 25 (min 200 (samples / 32))

let fault_survival_in pool ~root cascade ~faults ~samples =
  let mc_chunk = mc_chunk ~samples in
  let chunks k =
    let n_chunks = max 1 ((samples + mc_chunk - 1) / mc_chunk) in
    List.init n_chunks (fun j -> (k, j, min mc_chunk (samples - (j * mc_chunk))))
  in
  let tasks = List.concat_map chunks faults in
  let results =
    Pool.map_list pool
      (fun (k, j, m) ->
        let rng = Seeds.derive ~root:(Seeds.fold root k) j in
        (k, m, Mineq.Faults.survival_probability rng cascade ~faults:k ~samples:m))
      tasks
  in
  List.map
    (fun k ->
      let parts = List.filter (fun (k', _, _) -> k' = k) results in
      let total = List.fold_left (fun acc (_, m, _) -> acc + m) 0 parts in
      let weighted =
        List.fold_left (fun acc (_, m, p) -> acc +. (p *. float_of_int m)) 0.0 parts
      in
      (k, weighted /. float_of_int total))
    faults

let fault_survival ~jobs ~root cascade ~faults ~samples =
  Pool.run ~jobs (fun pool -> fault_survival_in pool ~root cascade ~faults ~samples)

(* Integer tallies: one derived RNG stream and one private bin array
   per task, summed elementwise in task order — counts are therefore
   a function of [root] and [tasks] alone, never of [jobs]. *)
let tally_in pool ~root ~tasks ~bins body =
  let parts =
    Pool.map_list pool
      (fun i ->
        let acc = Array.make bins 0 in
        body (Seeds.derive ~root i) acc;
        acc)
      (List.init tasks Fun.id)
  in
  let total = Array.make bins 0 in
  List.iter
    (fun part ->
      for k = 0 to bins - 1 do
        total.(k) <- total.(k) + part.(k)
      done)
    parts;
  total

let tally ~jobs ~root ~tasks ~bins body =
  Pool.run ~jobs (fun pool -> tally_in pool ~root ~tasks ~bins body)

let replicate_in pool ~root ~replications metric =
  Pool.map_list pool (fun i -> metric (Seeds.derive ~root i)) (List.init replications Fun.id)
  |> Mineq_sim.Summary.of_samples

let replicate ~jobs ~root ~replications metric =
  Pool.run ~jobs (fun pool -> replicate_in pool ~root ~replications metric)

let simulate_runs_in pool ~root ?config ~replications g =
  Pool.map_list pool
    (fun i -> Mineq_sim.Network_sim.run ?config (Seeds.derive ~root i) g)
    (List.init replications Fun.id)

let simulate_runs ~jobs ~root ?config ~replications g =
  Pool.run ~jobs (fun pool -> simulate_runs_in pool ~root ?config ~replications g)
