type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  c : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

let worker pool =
  let rec loop () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.c pool.m
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.m
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.m;
      task ();
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let pool =
    { jobs;
      queue = Queue.create ();
      m = Mutex.create ();
      c = Condition.create ();
      closed = false;
      workers = []
    }
  in
  if jobs > 1 then
    pool.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let fill fut v =
  Mutex.lock fut.fm;
  fut.state <- v;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let submit pool f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  let task () =
    match f () with
    | v -> fill fut (Done v)
    | exception e -> fill fut (Failed (e, Printexc.get_raw_backtrace ()))
  in
  if pool.jobs = 1 then task ()
  else begin
    Mutex.lock pool.m;
    if pool.closed then begin
      Mutex.unlock pool.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.push task pool.queue;
    Condition.signal pool.c;
    Mutex.unlock pool.m
  end;
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Pending ->
        Condition.wait fut.fc fut.fm;
        wait ()
    | Done v ->
        Mutex.unlock fut.fm;
        v
    | Failed (e, bt) ->
        Mutex.unlock fut.fm;
        Printexc.raise_with_backtrace e bt
  in
  wait ()

let chunks_of size xs =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec split acc = function
    | [] -> List.rev acc
    | xs ->
        let c, rest = take size [] xs in
        split (c :: acc) rest
  in
  split [] xs

let map_list ?(chunk = 1) pool f xs =
  if chunk <= 1 then begin
    let futures = List.map (fun x -> submit pool (fun () -> f x)) xs in
    List.map await futures
  end
  else begin
    let futures =
      List.map (fun c -> submit pool (fun () -> List.map f c)) (chunks_of chunk xs)
    in
    List.concat_map await futures
  end

let shutdown pool =
  Mutex.lock pool.m;
  pool.closed <- true;
  Condition.broadcast pool.c;
  Mutex.unlock pool.m;
  let workers = pool.workers in
  pool.workers <- [];
  List.iter Domain.join workers

let run ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
