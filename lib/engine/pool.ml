(* Work-stealing batch pool.

   A batch is an index range [0 .. nchunks-1] of chunk tasks over a
   preallocated result array.  Chunk ownership is split into one
   contiguous block per participant (the submitting domain is
   participant 0, the spawned workers are 1 .. jobs-1); every chunk
   carries an [Atomic] claim flag, so the owner walking its block
   front-to-back (fetch-and-add cursor) and thieves scanning victim
   blocks back-to-front can race freely — the CAS on the claim decides
   who runs the chunk, and results land at fixed indices either way.
   Completion is a single count-down latch per batch (an [Atomic]
   counter plus one mutex/condition pair), not a future per item.

   Between batches the workers sleep on the pool condition; publishing
   a batch bumps [epoch] and broadcasts.  Per-item cost is therefore a
   couple of atomic operations amortized over a chunk, with no
   allocation beyond the batch descriptor itself. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type batch = {
  run_chunk : int -> unit;  (* must not raise: exceptions are captured inside *)
  claims : int Atomic.t array;  (* 0 = free, 1 = claimed *)
  cursors : int Atomic.t array;  (* per participant: next index in its own block *)
  blocks : (int * int) array;  (* per participant: owned range [lo, hi) *)
  remaining : int Atomic.t;  (* count-down latch over chunks *)
  bm : Mutex.t;
  bc : Condition.t;
}

type t = {
  jobs : int;
  m : Mutex.t;
  c : Condition.t;
  mutable current : batch option;
  mutable epoch : int;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

let try_claim b i = Atomic.get b.claims.(i) = 0 && Atomic.compare_and_set b.claims.(i) 0 1

let finish_chunk b =
  if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
    (* Last chunk: wake the submitter blocked on the latch.  Taking the
       lock orders this domain's result writes before the submitter's
       reads and closes the lost-wakeup window. *)
    Mutex.lock b.bm;
    Condition.broadcast b.bc;
    Mutex.unlock b.bm
  end

(* Run batch chunks as participant [me]: drain the own block, then
   steal.  On return every chunk of the batch is claimed (the owner
   cursor sweep attempts each index of its block, and each steal sweep
   attempts every unclaimed index of a victim block), though chunks
   claimed by other participants may still be running. *)
let work b ~me =
  let parts = Array.length b.blocks in
  let _, own_hi = b.blocks.(me) in
  let rec own () =
    let i = Atomic.fetch_and_add b.cursors.(me) 1 in
    if i < own_hi then begin
      if try_claim b i then begin
        b.run_chunk i;
        finish_chunk b
      end;
      own ()
    end
  in
  own ();
  for d = 1 to parts - 1 do
    let v = (me + d) mod parts in
    let v_lo, v_hi = b.blocks.(v) in
    let i = ref (v_hi - 1) in
    (* Back-to-front keeps thieves off the cache lines the owner is
       working toward; the cursor read only prunes the scan. *)
    while !i >= v_lo && !i >= Atomic.get b.cursors.(v) do
      if try_claim b !i then begin
        b.run_chunk !i;
        finish_chunk b
      end;
      decr i
    done
  done

let worker pool ~me =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while pool.epoch = !seen && not pool.closed do
      Condition.wait pool.c pool.m
    done;
    if pool.closed then Mutex.unlock pool.m
    else begin
      seen := pool.epoch;
      let b = pool.current in
      Mutex.unlock pool.m;
      (match b with Some b -> work b ~me | None -> ());
      loop ()
    end
  in
  loop ()

let create ?(clamp = true) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let jobs = if clamp then min jobs (default_jobs ()) else jobs in
  let pool =
    { jobs;
      m = Mutex.create ();
      c = Condition.create ();
      current = None;
      epoch = 0;
      closed = false;
      workers = []
    }
  in
  if jobs > 1 then
    pool.workers <-
      List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker pool ~me:(i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.m;
  pool.closed <- true;
  Condition.broadcast pool.c;
  Mutex.unlock pool.m;
  let workers = pool.workers in
  pool.workers <- [];
  List.iter Domain.join workers

let run ?clamp ~jobs f =
  let pool = create ?clamp ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Aim for several chunks per participant so stragglers rebalance
   through stealing, while keeping chunks coarse enough to amortize
   the claim CAS and the latch decrement. *)
let adaptive_chunk ~jobs n = max 1 (n / (jobs * 8))

let map_array ?chunk pool f xs =
  (* Only the submitting thread mutates [closed], so the unlocked read
     is race-free; it makes the sequential and parallel paths reject a
     shut-down pool identically. *)
  if pool.closed then invalid_arg "Pool.map_array: pool is shut down";
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    (* Element 0 runs inline on the submitting domain: it seeds the
       result array without boxing every slot in an option, and a
       failure on the first element raises exactly as a sequential
       run would. *)
    let r0 = f xs.(0) in
    let results = Array.make n r0 in
    if pool.jobs = 1 || n = 1 then begin
      for i = 1 to n - 1 do
        results.(i) <- f xs.(i)
      done;
      results
    end
    else begin
      let m = n - 1 in
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Pool.map_array: chunk must be >= 1"
        | None -> adaptive_chunk ~jobs:pool.jobs m
      in
      let nchunks = (m + chunk - 1) / chunk in
      (* Exceptions are recorded per chunk and re-raised after the
         latch in chunk order: within a chunk elements run in order
         and stop at the first failure, so the surfaced exception is
         the lowest-index failure a sequential run would hit first —
         independent of scheduling. *)
      let exns = Array.make nchunks None in
      let run_chunk ci =
        let lo = 1 + (ci * chunk) and hi = min n (1 + ((ci + 1) * chunk)) in
        try
          for i = lo to hi - 1 do
            results.(i) <- f xs.(i)
          done
        with e -> exns.(ci) <- Some (e, Printexc.get_raw_backtrace ())
      in
      let parts = pool.jobs in
      let b =
        { run_chunk;
          claims = Array.init nchunks (fun _ -> Atomic.make 0);
          cursors = Array.init parts (fun p -> Atomic.make (p * nchunks / parts));
          blocks = Array.init parts (fun p -> (p * nchunks / parts, (p + 1) * nchunks / parts));
          remaining = Atomic.make nchunks;
          bm = Mutex.create ();
          bc = Condition.create ()
        }
      in
      Mutex.lock pool.m;
      if pool.closed then begin
        Mutex.unlock pool.m;
        invalid_arg "Pool.map_array: pool is shut down"
      end;
      pool.current <- Some b;
      pool.epoch <- pool.epoch + 1;
      Condition.broadcast pool.c;
      Mutex.unlock pool.m;
      work b ~me:0;
      Mutex.lock b.bm;
      while Atomic.get b.remaining > 0 do
        Condition.wait b.bc b.bm
      done;
      Mutex.unlock b.bm;
      Mutex.lock pool.m;
      pool.current <- None;
      Mutex.unlock pool.m;
      Array.iter
        (function Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
        exns;
      results
    end
  end

let map_list ?chunk pool f xs = Array.to_list (map_array ?chunk pool f (Array.of_list xs))
