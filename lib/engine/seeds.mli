(** Deterministic seed splitting for parallel batches.

    Every parallel task derives its [Random.State] from
    [(root seed, task index)] through a splitmix64-style mixer, so a
    batch's random draws depend only on the root seed and the task's
    position — never on how the scheduler interleaved the workers.
    Parallel results are therefore bit-identical to sequential runs
    of the same batch shape.

    Executables should take a single [--seed] and hand out
    per-purpose roots with {!fold} and per-task states with
    {!derive}, instead of scattering ad-hoc
    [Random.State.make [| ... |]] calls. *)

val fold : int -> int -> int
(** [fold root label] mixes a purpose label (an arbitrary constant, a
    fault count, a stage index ...) into a root seed, giving a new
    root for an independent stream family.  Deterministic;
    [fold root a <> fold root b] for [a <> b] except for
    astronomically unlikely 62-bit collisions. *)

val derive : root:int -> int -> Random.State.t
(** [derive ~root index] is the RNG state of task [index] of the
    stream family [root].  Distinct indices give decorrelated
    states; the same [(root, index)] always gives the same state. *)

val state : int -> Random.State.t
(** [state seed] is a top-level state for an executable's [--seed]
    ([derive ~root:seed 0]). *)
