(* Splitmix64 finalizer: full-avalanche mixing, so consecutive task
   indices land in unrelated regions of the seed space. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let golden = 0x9e3779b97f4a7c15L

let fold root label =
  let z =
    mix64 (Int64.add (Int64.of_int root) (Int64.mul golden (Int64.of_int label)))
  in
  (* Keep it positive and within a native int. *)
  Int64.to_int (Int64.logand z 0x3fffffffffffffffL)

let derive ~root index =
  let z0 =
    mix64 (Int64.add (Int64.of_int root) (Int64.mul golden (Int64.of_int (index + 1))))
  in
  let z1 = mix64 (Int64.add z0 golden) in
  let lo z = Int64.to_int (Int64.logand z 0x3fffffffL) in
  let hi z = Int64.to_int (Int64.logand (Int64.shift_right_logical z 30) 0x3fffffffL) in
  Random.State.make [| lo z0; hi z0; lo z1; hi z1 |]

let state seed = derive ~root:seed 0
