(** Streaming hash-bucketed isomorphism census.

    Generates a spec stream from a root seed, fingerprints it through
    the work-stealing pool in bounded-memory chunks, and buckets by
    {!Mineq.Fingerprint} so the {!Mineq.Iso_min} search only runs
    within colliding buckets.  Memory is O(classes + chunk size)
    regardless of how many specs stream through, and every count in
    the {!summary} is invariant under [--jobs] (chunking depends on
    the spec count alone; specs are generated from per-index derived
    RNG streams; merging runs in index order). *)

type generator =
  | Random_links  (** uniformly random link permutations per gap *)
  | Pipid  (** random index-digit permutations per gap (PIPID) *)
  | Affine  (** random independent (affine) connections per gap *)

val all_generators : generator list

val generator_name : generator -> string

val generator_of_string : string -> generator option
(** Inverse of {!generator_name}; [None] on unknown names. *)

type class_row = {
  representative : Mineq.Mi_digraph.t;
  first_index : int;  (** spec index of the first member seen *)
  count : int;
  baseline : bool;  (** is this the Baseline's class? *)
}

type summary = {
  generator : generator;
  n : int;
  specs : int;
  classes : class_row list;  (** first-appearance order *)
  buckets : int;  (** distinct fingerprints seen *)
  collisions : int;
      (** classes beyond one per bucket — fingerprint collisions the
          within-bucket search resolved *)
}

val run_in : Pool.t -> root:int -> n:int -> specs:int -> generator:generator -> summary
(** Stream [specs] networks of [n] stages from [generator] through an
    existing pool.  Raises [Invalid_argument] for [n < 2] or a
    negative spec count. *)

val run : jobs:int -> root:int -> n:int -> specs:int -> generator:generator -> summary
(** Bracketed {!run_in} on a fresh pool. *)
