(* Streaming hash-bucketed census.

   Specs flow through the pool in bounded-memory chunks: each chunk
   generates its networks from per-index derived RNG streams,
   fingerprints them in parallel, and is then merged serially — in
   index order — into the running bucket table.  Only one chunk of
   networks plus one representative per discovered class is ever
   live, so the memory profile is O(classes + chunk) however many
   specs stream through.

   Jobs-invariance: the chunk size is a function of the spec count
   alone, every network is generated from [Seeds.derive ~root index]
   (so the stream of specs is fixed by the root seed), the pool
   writes results at fixed indices, and the merge walks chunks and
   indices in order.  Nothing about bucket iteration order reaches
   the output: classes are reported in first appearance order of
   their first member. *)

module Fp = Mineq.Fingerprint

type generator = Random_links | Pipid | Affine

let all_generators = [ Random_links; Pipid; Affine ]

let generator_name = function
  | Random_links -> "random"
  | Pipid -> "pipid"
  | Affine -> "affine"

let generator_of_string = function
  | "random" -> Some Random_links
  | "pipid" -> Some Pipid
  | "affine" -> Some Affine
  | _ -> None

let generate gen rng ~n =
  match gen with
  | Random_links -> Mineq.Link_spec.random_network rng ~n
  | Pipid -> Mineq.Link_spec.random_pipid_network rng ~n
  | Affine ->
      Mineq.Mi_digraph.create
        (List.init (n - 1) (fun _ -> Mineq.Connection.random_independent rng ~width:(n - 1)))

type class_row = {
  representative : Mineq.Mi_digraph.t;
  first_index : int;
  count : int;
  baseline : bool;
}

type summary = {
  generator : generator;
  n : int;
  specs : int;
  classes : class_row list;  (** first-appearance order *)
  buckets : int;  (** distinct fingerprints seen *)
  collisions : int;  (** classes beyond one per bucket, resolved by Iso_min *)
}

(* Bounded chunks: a function of the workload only (never of [jobs]),
   so the generated stream and the merge order are identical at any
   parallel width; small enough to bound live networks, large enough
   to amortize the batch latch. *)
let chunk_for ~specs = max 64 (min 4096 (specs / 32))

type cls = { rep : Mineq.Mi_digraph.t; first : int; mutable members : int }

let run_in pool ~root ~n ~specs ~generator =
  if n < 2 then invalid_arg "Stream_census.run_in: need n >= 2";
  if specs < 0 then invalid_arg "Stream_census.run_in: negative spec count";
  let chunk = chunk_for ~specs in
  let buckets : (Fp.t, cls list ref) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let nclasses = ref 0 in
  let nchunks = (specs + chunk - 1) / chunk in
  for c = 0 to nchunks - 1 do
    let base = c * chunk in
    let m = min chunk (specs - base) in
    let items =
      Pool.map_array pool
        (fun i ->
          let idx = base + i in
          let g = generate generator (Seeds.derive ~root idx) ~n in
          (idx, g, Fp.of_network g))
        (Array.init m Fun.id)
    in
    Array.iter
      (fun (idx, g, fp) ->
        let bucket =
          match Hashtbl.find_opt buckets fp with
          | Some b -> b
          | None ->
              let b = ref [] in
              Hashtbl.add buckets fp b;
              b
        in
        let rec place = function
          | [] ->
              let c = { rep = g; first = idx; members = 1 } in
              bucket := !bucket @ [ c ];
              incr nclasses;
              order := c :: !order
          | c :: rest ->
              if Option.is_some (Mineq.Iso_min.find g c.rep) then c.members <- c.members + 1
              else place rest
        in
        place !bucket)
      items
  done;
  let classes =
    List.rev_map
      (fun c ->
        { representative = c.rep;
          first_index = c.first;
          count = c.members;
          baseline = (Mineq.Equivalence.by_characterization c.rep).equivalent
        })
      !order
  in
  { generator;
    n;
    specs;
    classes;
    buckets = Hashtbl.length buckets;
    collisions = !nclasses - Hashtbl.length buckets
  }

let run ~jobs ~root ~n ~specs ~generator =
  Pool.run ~jobs (fun pool -> run_in pool ~root ~n ~specs ~generator)
