(** Parallel batch drivers for the repo's four hot workloads:
    property/equivalence surveys, isomorphism-class censuses
    (experiment X15), Monte-Carlo fault sweeps (X9/X16) and
    simulator replications (X3/X11).

    Every driver comes in two forms: a [~jobs] wrapper that brackets
    a fresh {!Pool.t} (workers spawned and joined around the call —
    convenient for one-shot CLI use), and a [_in] variant taking an
    existing pool, for callers that amortize the ~ms domain-spawn
    cost over many batches (the benches, long-lived processes).

    All randomness is derived per task index through {!Seeds.derive}
    and all reductions run in a fixed order, so

    {e results are bit-identical across [jobs] values} —

    the qcheck suite enforces this, and {!classify} is additionally
    bit-identical to the sequential {!Mineq.Census.classify}. *)

type survey_row = {
  name : string;
  banyan : bool;
  independent : bool;  (** Theorem-3 decider verdict *)
  characterization : bool;  (** [12] characterization verdict *)
  delta : bool;
}

val survey : jobs:int -> n:int -> survey_row list
(** The classical-network property survey (CLI [survey]), one task
    per network. *)

val survey_in : Pool.t -> n:int -> survey_row list

val pairwise :
  jobs:int ->
  ?memo:Mineq.Equivalence.verdict Memo.t ->
  (string * Mineq.Mi_digraph.t) list ->
  (string * string * bool) list
(** The C1-shaped pairwise equivalence table: every ordered pair,
    equivalent iff both members pass the characterization.  With
    [memo], the two verdict probes per cell hit the shared cache
    after the first row — [2k^2] probes collapse to [k] computations
    for [k] networks. *)

val pairwise_in :
  Pool.t ->
  ?memo:Mineq.Equivalence.verdict Memo.t ->
  (string * Mineq.Mi_digraph.t) list ->
  (string * string * bool) list

val classify :
  jobs:int -> (Mineq.Mi_digraph.t * 'a) list -> 'a Mineq.Census.classified list
(** Parallel {!Mineq.Census.classify}: signatures are computed in
    parallel, signature groups are refined by rounds of parallel
    isomorphism checks against the round's representative.  Output
    (class order, representatives, member order) is bit-identical to
    the sequential function. *)

val classify_in :
  Pool.t -> (Mineq.Mi_digraph.t * 'a) list -> 'a Mineq.Census.classified list

val sample_census :
  jobs:int ->
  root:int ->
  n:int ->
  samples:int ->
  attempts:int ->
  int Mineq.Census.classified list
(** Parallel analogue of {!Mineq.Census.sample_banyan_census}: draw
    [samples] random Banyans (draw [i] from [Seeds.derive] at index
    [i], each within [attempts] rejection attempts) and classify
    them.  Member tags are draw indices, so a failed draw skips its
    index.  Identical for every [jobs] at fixed [root]. *)

val sample_census_in :
  Pool.t ->
  root:int ->
  n:int ->
  samples:int ->
  attempts:int ->
  int Mineq.Census.classified list

val fault_survival :
  jobs:int ->
  root:int ->
  Mineq.Cascade.t ->
  faults:int list ->
  samples:int ->
  (int * float) list
(** Monte-Carlo survival probability per fault count
    ({!Mineq.Faults.survival_probability}).  Samples are split into
    chunks whose size adapts to [samples] alone (never to [jobs] —
    chunk shape feeds the derived RNG streams) with
    per-[(fault count, chunk)] seeds, recombined in chunk order, so
    the estimate is independent of [jobs]. *)

val fault_survival_in :
  Pool.t -> root:int -> Mineq.Cascade.t -> faults:int list -> samples:int -> (int * float) list

val tally :
  jobs:int ->
  root:int ->
  tasks:int ->
  bins:int ->
  (Random.State.t -> int array -> unit) ->
  int array
(** Integer histogram reduction: task [i] gets [Seeds.derive ~root i]
    and a private zeroed array of [bins] counters to bump; the
    per-task arrays are summed elementwise in task order.  The churn
    survey's aggregation — a function of [root] and [tasks] alone,
    bit-identical across [jobs]. *)

val tally_in :
  Pool.t -> root:int -> tasks:int -> bins:int -> (Random.State.t -> int array -> unit) -> int array

val replicate :
  jobs:int -> root:int -> replications:int -> (Random.State.t -> float) -> Mineq_sim.Summary.t
(** Run a seeded metric once per replication (replication [i] gets
    [Seeds.derive ~root i]) and summarize in replication order. *)

val replicate_in :
  Pool.t -> root:int -> replications:int -> (Random.State.t -> float) -> Mineq_sim.Summary.t

val simulate_runs :
  jobs:int ->
  root:int ->
  ?config:Mineq_sim.Network_sim.config ->
  replications:int ->
  Mineq.Mi_digraph.t ->
  Mineq_sim.Network_sim.stats list
(** [replications] independent simulator runs of the network,
    replication [i] seeded by [Seeds.derive ~root i]; stats in
    replication order. *)

val simulate_runs_in :
  Pool.t ->
  root:int ->
  ?config:Mineq_sim.Network_sim.config ->
  replications:int ->
  Mineq.Mi_digraph.t ->
  Mineq_sim.Network_sim.stats list
