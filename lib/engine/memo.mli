(** Memo cache for per-network analysis results, sharded for parallel
    probes.

    Two keyings are available, chosen at {!create}:

    - {!Structural} (the default): a cheap multiply-xor hash over the
      unordered child pair of every node (no serialization, no MD5)
      with full structural equality on bucket collisions, so two
      networks share an entry exactly when they are the same labelled
      digraph ({!Mineq.Mi_digraph.equal} — insensitive to the
      non-canonical [(f, g)] decomposition, but not to isomorphism).
    - {!Fingerprint}: keys on the canonical {!Mineq.Fingerprint}, so
      all isomorphic networks share one entry and a relabelled probe
      hits the cache the structural keying would miss.  {b Only sound
      for iso-invariant computations} (verdicts depending only on the
      isomorphism class, like [Equivalence.by_characterization]'s
      [equivalent]/[banyan] fields): a WL fingerprint collision —
      never observed in the soundness suite but not impossible —
      silently merges two classes' entries, and any cached value that
      mentions labels would be wrong for other members of the class.

    The cache is domain-safe and lock-striped across {!shard_count}
    shards selected by the key hash: workers probing different
    networks take different locks and never contend.  The compute
    function runs outside the lock, so a value may rarely be computed
    twice under contention — harmless because computations are
    deterministic — and the first store wins.

    Hit/miss counters are exposed for the benches (summed over
    shards). *)

type 'a t

type keying = Structural | Fingerprint

val keying_name : keying -> string

val shard_count : int
(** Number of lock stripes (a power of two). *)

val create : ?size:int -> ?keying:keying -> unit -> 'a t
(** [keying] defaults to {!Structural}. *)

val keying : 'a t -> keying

val structural_hash : Mineq.Mi_digraph.t -> int
(** The shard/bucket hash: folds [width], [stages] and every gap's
    unordered child pairs.  Equal networks (in the sense of
    {!structural_equal}) hash equally. *)

val structural_equal : Mineq.Mi_digraph.t -> Mineq.Mi_digraph.t -> bool
(** Pointwise arc-multiset equality — the same relation as
    {!Mineq.Mi_digraph.equal}, computed without allocation. *)

val digest_key : Mineq.Mi_digraph.t -> string
(** The previous key: MD5 of the canonical spec text.  Kept for the
    agreement tests and external tooling; not used by the cache. *)

val find_or_compute : 'a t -> Mineq.Mi_digraph.t -> (Mineq.Mi_digraph.t -> 'a) -> 'a
(** Cached value for the network, computing (and storing) on miss. *)

val hits : 'a t -> int

val misses : 'a t -> int

val size : 'a t -> int
(** Stored entries. *)

val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; [nan] before any probe. *)

val reset : 'a t -> unit
(** Drop all entries and zero the counters. *)

(** {1 Export / import}

    A point-in-time view of the cache for the serving layer's disk
    snapshots ([Mineq_serve.Snapshot]).  Entries carry their key in
    the keying the cache was created with. *)

type 'a entry =
  | Skey of Mineq.Mi_digraph.t * 'a  (** a {!Structural} entry *)
  | Fkey of Mineq.Fingerprint.t * 'a  (** a {!Fingerprint} entry *)

val export : 'a t -> 'a entry array
(** Every stored entry, copied under {e all} shard locks at once
    (acquired in index order) — a consistent cut: an entry either
    predates the export and appears, or postdates it and doesn't,
    never a mix that depends on shard visit order.  Entry order is
    unspecified. *)

val fold : ('acc -> 'a entry -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold over {!export}'s consistent cut. *)

val import : 'a t -> 'a entry array -> int
(** Adopt entries whose key kind matches the cache's keying, skipping
    keys already present (resident entries win) and entries of the
    other kind.  Returns the number adopted.  Neither hits nor misses
    are counted. *)
