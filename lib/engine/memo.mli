(** Memo cache for per-network analysis results.

    Networks are keyed by the digest of their canonical textual spec
    ({!Mineq.Spec_io.to_string}), so two structurally equal
    MI-digraphs share an entry regardless of how they were built.
    (The key is exact identity, not isomorphism class — verdicts and
    certificates are only reused for the very same network; use
    {!Mineq.Census.signature} when an isomorphism-invariant prescreen
    is wanted.)

    The cache is domain-safe: batch workers share one cache under a
    mutex.  The compute function runs outside the lock, so a value
    may rarely be computed twice under contention — harmless because
    computations are deterministic — and the first store wins.

    Hit/miss counters are exposed for the benches. *)

type 'a t

val create : ?size:int -> unit -> 'a t

val key : Mineq.Mi_digraph.t -> string
(** Digest of the canonical spec text. *)

val find_or_compute : 'a t -> Mineq.Mi_digraph.t -> (Mineq.Mi_digraph.t -> 'a) -> 'a
(** Cached value for the network, computing (and storing) on miss. *)

val find_or_compute_key : 'a t -> string -> (unit -> 'a) -> 'a
(** Same, for callers that already hold a key (avoids re-serializing
    the network on every probe). *)

val hits : 'a t -> int

val misses : 'a t -> int

val size : 'a t -> int
(** Stored entries. *)

val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; [nan] before any probe. *)

val reset : 'a t -> unit
(** Drop all entries and zero the counters. *)
