(** Digit-directed routing through radix-[r] MI-digraphs, mirroring
    [Mineq.Routing]: the [r^n] terminals attach [r] per boundary cell
    (input [i] enters cell [i / r] on port [i mod r]). *)

type path = {
  input : int;
  output : int;
  cells : int array;  (** visited cell per stage *)
  ports : int array;  (** out-port per stage, then the exit port *)
}

val route : Rnetwork.t -> input:int -> output:int -> path option
(** The unique path, [None] if unreachable; raises [Failure] when
    several paths exist (non-Banyan). *)

val port_word : Rnetwork.t -> path -> int
(** Port choices packed base-[r], first stage most significant. *)

val is_delta : Rnetwork.t -> bool
(** The port word to each output is source-independent
    (digit-directed routing). *)

val delta_schedule : Rnetwork.t -> int array option
