(** Constructions of radix-[r] networks: the recursive Baseline, link
    permutations, and PIPID stages over base-[r] digits.

    Every entry point taking [~radix] raises [Invalid_argument] with
    a function-named message when [radix < 2], before any other
    computation — a radix below 2 cannot label an [r x r] cell and
    would otherwise surface as a deep context failure or as silently
    wrong arithmetic. *)

val baseline : radix:int -> int -> Rnetwork.t
(** [baseline ~radix n] is the [n]-stage radix-[r] Baseline by the
    left-recursive construction: stage-1 cells [r*i .. r*i + r-1] all
    connect to cell [i] of each of the [r] subnetworks. *)

val connection_of_link_perm : radix:int -> n:int -> Mineq_perm.Perm.t -> Rconnection.t
(** Cell [x] drives out-links [r*x .. r*x + r-1]; after the
    permutation of the [r^n] link labels, link [z] enters cell
    [z / r]. *)

val network : radix:int -> n:int -> Mineq_perm.Perm.t list -> Rnetwork.t

val pipid_connection : radix:int -> n:int -> Mineq_perm.Perm.t -> Rconnection.t
(** The stage induced by the index-digit permutation [theta] (size
    [n]) on base-[r] digit labels; independent for every [theta]
    (generalizing Section 4), degenerate multi-links iff
    [theta 0 = 0]. *)

val is_degenerate : n:int -> Mineq_perm.Perm.t -> bool

val omega : radix:int -> int -> Rnetwork.t
(** Radix-[r] Omega: the base-[r] perfect shuffle (circular digit
    rotation) at every gap. *)

val flip : radix:int -> int -> Rnetwork.t
(** Inverse digit rotation at every gap (the reverse of Omega). *)

val cube : radix:int -> int -> Rnetwork.t
(** Indirect [r]-ary [n]-cube: digit transposition [(0 i)] at gap
    [i]. *)

val modified_data_manipulator : radix:int -> int -> Rnetwork.t
(** Digit transposition [(0, n-i)] at gap [i] (reverse of the cube). *)

val baseline_by_subshuffles : radix:int -> int -> Rnetwork.t
(** The Wu–Feng definition at radix [r]: inverse sub-rotation of the
    low [n-i+1] digits at gap [i]; equal (label-for-label) to
    {!baseline} — tested. *)

val reverse_baseline : radix:int -> int -> Rnetwork.t
(** Sub-rotation of the low [i+1] digits at gap [i]. *)

val all_networks : radix:int -> n:int -> (string * Rnetwork.t) list
(** The six classical constructions at radix [r] — the paper's main
    corollary generalized (experiment X6). *)

val random_pipid_network : Random.State.t -> radix:int -> n:int -> Rnetwork.t

val random_network : Random.State.t -> radix:int -> n:int -> Rnetwork.t
(** Random valid stages (not PIPID). *)
