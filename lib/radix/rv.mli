(** Digit vectors: elements of the group [(Z_r)^m] for an arbitrary
    radix [r >= 2].

    The paper's closing note: "the results obtained here apply only to
    networks built with 2 x 2 switching cells, whereas our graph
    characterization has been generalized to arbitrary size of cells."
    This library carries the whole development to [r x r] cells; the
    binary case ([r = 2]) coincides with [Mineq_bitvec.Bv] (tested).

    A vector of [m] digits is packed into a non-negative [int] in base
    [r]: digit [i] has positional weight [r^i].  The group operation
    is digit-wise addition modulo [r] (for [r = 2] this is xor). *)

type ctx
(** Radix/width context (precomputed powers). *)

val context : radix:int -> width:int -> ctx
(** Raises [Invalid_argument] unless [radix >= 2], [width >= 0] and
    [radix^width] fits in an [int]. *)

val radix : ctx -> int
val width : ctx -> int

val universe_size : ctx -> int
(** [radix^width]. *)

val is_valid : ctx -> int -> bool

val digit : ctx -> int -> int -> int
(** [digit ctx x i] is digit [i] of [x]. *)

val set_digit : ctx -> int -> int -> int -> int
(** [set_digit ctx x i d]. *)

val unit : ctx -> int -> int
(** [unit ctx i] has digit [i] equal to 1, others 0. *)

val scale_unit : ctx -> int -> int -> int
(** [scale_unit ctx i d] has digit [i] equal to [d]. *)

val add : ctx -> int -> int -> int
(** Digit-wise addition mod [r]. *)

val neg : ctx -> int -> int

val sub : ctx -> int -> int -> int

val of_digits : ctx -> int list -> int
(** Most significant digit first (mirrors {!to_digits}). *)

val to_digits : ctx -> int -> int list

val to_string : ctx -> int -> string
(** Digits separated by [.] when [r > 10], concatenated otherwise,
    most significant first. *)

val iter_universe : ctx -> (int -> unit) -> unit

val fold_universe : ctx -> init:'a -> f:('a -> int -> 'a) -> 'a

val generators : ctx -> int list
(** The canonical generators [e_0, ..., e_{m-1}] of [(Z_r)^m]. *)
