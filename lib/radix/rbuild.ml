module Perm = Mineq_perm.Perm

(* Every public entry point taking [~radix] validates it up front with
   a function-named message, instead of letting an r < 2 surface as a
   deep [Rv.context] failure (or, for r < 0, as silently nonsensical
   arithmetic before the context is ever built).  Mirrors the binary
   library's [single_stage] width validation. *)
let check_radix name radix =
  if radix < 2 then invalid_arg (Printf.sprintf "Rbuild.%s: radix must be >= 2" name)

let rec baseline ~radix n =
  check_radix "baseline" radix;
  if n < 2 then invalid_arg "Rbuild.baseline: need n >= 2";
  let ctx = Rv.context ~radix ~width:(n - 1) in
  let top_weight = Rv.universe_size ctx / radix in
  let first = Rconnection.make ctx (fun j x -> (x / radix) + (j * top_weight)) in
  if n = 2 then Rnetwork.create [ first ]
  else begin
    let sub = baseline ~radix (n - 1) in
    let lift c =
      Rconnection.make ctx (fun j y ->
          let top = y / top_weight and rest = y mod top_weight in
          (top * top_weight) + Rconnection.child c j rest)
    in
    Rnetwork.create (first :: List.map lift (Rnetwork.connections sub))
  end

let connection_of_link_perm ~radix ~n p =
  check_radix "connection_of_link_perm" radix;
  let link_count = int_of_float (float_of_int radix ** float_of_int n +. 0.5) in
  if Perm.size p <> link_count then
    invalid_arg "Rbuild.connection_of_link_perm: permutation size must be radix^n";
  let ctx = Rv.context ~radix ~width:(n - 1) in
  Rconnection.make ctx (fun j x -> Perm.apply p ((radix * x) + j) / radix)

let network ~radix ~n perms =
  if List.length perms <> n - 1 then
    invalid_arg "Rbuild.network: need exactly n - 1 link permutations";
  Rnetwork.create (List.map (connection_of_link_perm ~radix ~n) perms)

let is_degenerate ~n theta =
  if Perm.size theta <> n then invalid_arg "Rbuild.is_degenerate: theta size";
  Perm.apply theta 0 = 0

let pipid_connection ~radix ~n theta =
  check_radix "pipid_connection" radix;
  if Perm.size theta <> n then invalid_arg "Rbuild.pipid_connection: theta size";
  let link_ctx = Rv.context ~radix ~width:n in
  let cell_ctx = Rv.context ~radix ~width:(n - 1) in
  Rconnection.make cell_ctx (fun j x ->
      let y = (x * radix) + j in
      let rec build d acc =
        if d = n then acc
        else build (d + 1) (Rv.set_digit link_ctx acc d (Rv.digit link_ctx y (Perm.apply theta d)))
      in
      build 0 0 / radix)

(* The index-digit permutations are radix-independent: the same theta
   acts on binary bits or base-r digits. *)
let stack ~radix ~n gap_theta =
  check_radix "stack" radix;
  if n < 2 then invalid_arg "Rbuild: need n >= 2";
  Rnetwork.create
    (List.init (n - 1) (fun k -> pipid_connection ~radix ~n (gap_theta (k + 1))))

let omega ~radix n =
  let sigma = Mineq_perm.Pipid_family.perfect_shuffle ~width:n in
  stack ~radix ~n (fun _ -> sigma)

let flip ~radix n =
  let sigma_inv = Mineq_perm.Pipid_family.inverse_shuffle ~width:n in
  stack ~radix ~n (fun _ -> sigma_inv)

let cube ~radix n = stack ~radix ~n (fun i -> Mineq_perm.Pipid_family.butterfly ~width:n i)

let modified_data_manipulator ~radix n =
  stack ~radix ~n (fun i -> Mineq_perm.Pipid_family.butterfly ~width:n (n - i))

let baseline_by_subshuffles ~radix n =
  stack ~radix ~n (fun i -> Mineq_perm.Pipid_family.inverse_sub_shuffle ~width:n (n - i + 1))

let reverse_baseline ~radix n =
  stack ~radix ~n (fun i -> Mineq_perm.Pipid_family.sub_shuffle ~width:n (i + 1))

let all_networks ~radix ~n =
  [ ("omega", omega ~radix n);
    ("flip", flip ~radix n);
    ("cube", cube ~radix n);
    ("modified-data-manipulator", modified_data_manipulator ~radix n);
    ("baseline", baseline_by_subshuffles ~radix n);
    ("reverse-baseline", reverse_baseline ~radix n)
  ]

let random_pipid_network rng ~radix ~n =
  Rnetwork.create
    (List.init (n - 1) (fun _ -> pipid_connection ~radix ~n (Perm.random rng n)))

let random_network rng ~radix ~n =
  check_radix "random_network" radix;
  let ctx = Rv.context ~radix ~width:(n - 1) in
  Rnetwork.create (List.init (n - 1) (fun _ -> Rconnection.random_any rng ctx))
