type t = { ctx : Rv.ctx; children : int array array (* children.(j).(x) = h_j x *) }

let ctx c = c.ctx

let radix c = Rv.radix c.ctx

let half c = Rv.universe_size c.ctx

let make ctx child =
  let r = Rv.radix ctx in
  let n = Rv.universe_size ctx in
  let children =
    Array.init r (fun j ->
        Array.init n (fun x ->
            let y = child j x in
            if not (Rv.is_valid ctx y) then invalid_arg "Rconnection.make: image out of range";
            y))
  in
  { ctx; children }

let child c j x = c.children.(j).(x)

let children c x = List.init (radix c) (fun j -> c.children.(j).(x))

let parents c y =
  let out = ref [] in
  for x = half c - 1 downto 0 do
    Array.iter (fun tbl -> if tbl.(x) = y then out := x :: !out) c.children
  done;
  !out

let in_degrees c =
  let deg = Array.make (half c) 0 in
  Array.iter (fun tbl -> Array.iter (fun y -> deg.(y) <- deg.(y) + 1) tbl) c.children;
  deg

let is_mi_stage c =
  let r = radix c in
  Array.for_all (fun d -> d = r) (in_degrees c)

let witness c alpha =
  if alpha = 0 then invalid_arg "Rconnection.witness: alpha must be non-zero";
  let ctx = c.ctx in
  let beta = Rv.sub ctx c.children.(0).(alpha) c.children.(0).(0) in
  let n = half c in
  let check_fn tbl =
    let rec go x =
      x = n || (tbl.(Rv.add ctx x alpha) = Rv.add ctx beta tbl.(x) && go (x + 1))
    in
    go 0
  in
  if Array.for_all check_fn c.children then Some beta else None

let is_independent c =
  List.for_all (fun e -> Option.is_some (witness c e)) (Rv.generators c.ctx)

let is_independent_definitional c =
  let n = half c in
  let rec go alpha = alpha = n || (Option.is_some (witness c alpha) && go (alpha + 1)) in
  go 1

let additive_form c =
  let gens = Rv.generators c.ctx in
  let images = List.map (fun e -> witness c e) gens in
  if List.for_all Option.is_some images then
    Some
      ( Array.of_list (List.map Option.get images),
        Array.map (fun tbl -> tbl.(0)) c.children )
  else None

let reverse_any c =
  let r = radix c in
  let n = half c in
  let rev = Array.init r (fun _ -> Array.make n (-1)) in
  let fill = Array.make n 0 in
  for x = 0 to n - 1 do
    Array.iter
      (fun tbl ->
        let y = tbl.(x) in
        if fill.(y) >= r then invalid_arg "Rconnection.reverse_any: in-degree above radix";
        rev.(fill.(y)).(y) <- x;
        fill.(y) <- fill.(y) + 1)
      c.children
  done;
  if Array.exists (fun f -> f < r) fill then
    invalid_arg "Rconnection.reverse_any: in-degree below radix";
  { ctx = c.ctx; children = rev }

let random_any rng ctx =
  let r = Rv.radix ctx in
  let n = Rv.universe_size ctx in
  let slots = Mineq_perm.Perm.random rng (r * n) in
  make ctx (fun j x -> Mineq_perm.Perm.apply slots ((r * x) + j) / r)

let to_arcs c =
  List.concat
    (List.init (half c) (fun x -> List.map (fun y -> (x, y)) (children c x)))

let arc_multiset c = List.sort compare (to_arcs c)

let equal_graph a b = Rv.universe_size a.ctx = Rv.universe_size b.ctx && radix a = radix b && arc_multiset a = arc_multiset b
