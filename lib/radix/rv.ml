type ctx = { radix : int; width : int; pow : int array }
(* pow.(i) = radix^i, with one extra entry pow.(width) = universe. *)

let context ~radix ~width =
  if radix < 2 then invalid_arg "Rv.context: radix must be >= 2";
  if width < 0 then invalid_arg "Rv.context: width must be >= 0";
  let pow = Array.make (width + 1) 1 in
  for i = 1 to width do
    if pow.(i - 1) > max_int / radix then invalid_arg "Rv.context: radix^width overflows";
    pow.(i) <- pow.(i - 1) * radix
  done;
  { radix; width; pow }

let radix c = c.radix
let width c = c.width
let universe_size c = c.pow.(c.width)

let is_valid c x = x >= 0 && x < universe_size c

let digit c x i = x / c.pow.(i) mod c.radix

let set_digit c x i d =
  if d < 0 || d >= c.radix then invalid_arg "Rv.set_digit: digit out of range";
  x + ((d - digit c x i) * c.pow.(i))

let unit c i = c.pow.(i)

let scale_unit c i d =
  if d < 0 || d >= c.radix then invalid_arg "Rv.scale_unit: digit out of range";
  d * c.pow.(i)

let add c x y =
  let rec go i acc =
    if i = c.width then acc
    else go (i + 1) (acc + (((digit c x i + digit c y i) mod c.radix) * c.pow.(i)))
  in
  go 0 0

let neg c x =
  let rec go i acc =
    if i = c.width then acc
    else go (i + 1) (acc + ((c.radix - digit c x i) mod c.radix * c.pow.(i)))
  in
  go 0 0

let sub c x y = add c x (neg c y)

let to_digits c x = List.init c.width (fun i -> digit c x (c.width - 1 - i))

let of_digits c ds =
  if List.length ds <> c.width then invalid_arg "Rv.of_digits: wrong digit count";
  List.fold_left
    (fun acc d ->
      if d < 0 || d >= c.radix then invalid_arg "Rv.of_digits: digit out of range";
      (acc * c.radix) + d)
    0 ds

let to_string c x =
  let ds = to_digits c x in
  if c.radix <= 10 then String.concat "" (List.map string_of_int ds)
  else String.concat "." (List.map string_of_int ds)

let iter_universe c f =
  for x = 0 to universe_size c - 1 do
    f x
  done

let fold_universe c ~init ~f =
  let n = universe_size c in
  let rec go acc x = if x = n then acc else go (f acc x) (x + 1) in
  go init 0

let generators c = List.init c.width (fun i -> unit c i)
