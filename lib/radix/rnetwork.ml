module Digraph = Mineq_graph.Digraph
module Traverse = Mineq_graph.Traverse

type t = { ctx : Rv.ctx; conns : Rconnection.t array }

let create conns =
  match conns with
  | [] -> invalid_arg "Rnetwork.create: empty connection list"
  | c0 :: rest ->
      let ctx = Rconnection.ctx c0 in
      List.iter
        (fun c ->
          if
            Rv.radix (Rconnection.ctx c) <> Rv.radix ctx
            || Rv.width (Rconnection.ctx c) <> Rv.width ctx
          then invalid_arg "Rnetwork.create: context mismatch")
        rest;
      if Rv.width ctx <> List.length conns then
        invalid_arg "Rnetwork.create: need digit width = stage count - 1";
      List.iter
        (fun c ->
          if not (Rconnection.is_mi_stage c) then
            invalid_arg "Rnetwork.create: a connection violates the in-degree requirement")
        conns;
      { ctx; conns = Array.of_list conns }

let stages g = Array.length g.conns + 1

let ctx g = g.ctx

let radix g = Rv.radix g.ctx

let cells_per_stage g = Rv.universe_size g.ctx

let terminals g = radix g * cells_per_stage g

let connection g i =
  if i < 1 || i > Array.length g.conns then invalid_arg "Rnetwork.connection: bad gap";
  g.conns.(i - 1)

let connections g = Array.to_list g.conns

let reverse g =
  let rev = Array.map Rconnection.reverse_any g.conns in
  let m = Array.length rev in
  { g with conns = Array.init m (fun i -> rev.(m - 1 - i)) }

let subgraph g ~lo ~hi =
  let n = stages g in
  if lo < 1 || hi > n || lo > hi then invalid_arg "Rnetwork.subgraph: bad stage range";
  let per = cells_per_stage g in
  let arcs =
    List.concat
      (List.init (hi - lo) (fun k ->
           let gap = lo + k in
           let base_src = (gap - lo) * per and base_dst = (gap + 1 - lo) * per in
           List.map
             (fun (x, y) -> (base_src + x, base_dst + y))
             (Rconnection.to_arcs g.conns.(gap - 1))))
  in
  Digraph.create ~vertices:((hi - lo + 1) * per) arcs

let to_digraph g = subgraph g ~lo:1 ~hi:(stages g)

let equal a b =
  stages a = stages b
  && radix a = radix b
  && Array.for_all2 Rconnection.equal_graph a.conns b.conns

let is_banyan g =
  let per = cells_per_stage g in
  let n = stages g in
  let ok = ref true in
  for u = 0 to per - 1 do
    if !ok then begin
      let ways = Array.make per 0 in
      ways.(u) <- 1;
      let cur = ref ways in
      for gap = 1 to n - 1 do
        let c = connection g gap in
        let next = Array.make per 0 in
        Array.iteri
          (fun x w ->
            if w > 0 then
              List.iter (fun y -> next.(y) <- next.(y) + w) (Rconnection.children c x))
          !cur;
        cur := next
      done;
      if not (Array.for_all (fun w -> w = 1) !cur) then ok := false
    end
  done;
  !ok

let expected_components g ~lo ~hi =
  let n = stages g in
  if lo < 1 || hi > n || lo > hi then invalid_arg "Rnetwork: bad stage range";
  let rec pow acc k = if k = 0 then acc else pow (acc * radix g) (k - 1) in
  pow 1 (n - 1 - (hi - lo))

let component_count g ~lo ~hi = Traverse.component_count (subgraph g ~lo ~hi)

let p_ij g ~lo ~hi = component_count g ~lo ~hi = expected_components g ~lo ~hi

let p_one_star g =
  let n = stages g in
  let rec go j = j > n || (p_ij g ~lo:1 ~hi:j && go (j + 1)) in
  go 1

let p_star_n g =
  let n = stages g in
  let rec go i = i > n || (p_ij g ~lo:i ~hi:n && go (i + 1)) in
  go 1

let by_characterization g = is_banyan g && p_one_star g && p_star_n g

let by_independence g =
  is_banyan g && List.for_all Rconnection.is_independent (connections g)

let isomorphic ?limit a b =
  stages a = stages b
  && radix a = radix b
  && Mineq_graph.Iso.are_isomorphic ?limit (to_digraph a) (to_digraph b)
