module Digraph = Mineq_graph.Digraph
module Traverse = Mineq_graph.Traverse
module Mi_digraph = Mineq.Mi_digraph
module Packed = Mineq.Packed

type t = {
  ctx : Rv.ctx;
  conns : Rconnection.t array;
  mutable packed_cache : Mi_digraph.packed option;
}

let make ctx conns = { ctx; conns; packed_cache = None }

let create conns =
  match conns with
  | [] -> invalid_arg "Rnetwork.create: empty connection list"
  | c0 :: rest ->
      let ctx = Rconnection.ctx c0 in
      if Rv.radix ctx < 2 then invalid_arg "Rnetwork.create: radix must be >= 2";
      List.iter
        (fun c ->
          if
            Rv.radix (Rconnection.ctx c) <> Rv.radix ctx
            || Rv.width (Rconnection.ctx c) <> Rv.width ctx
          then invalid_arg "Rnetwork.create: context mismatch")
        rest;
      if Rv.width ctx <> List.length conns then
        invalid_arg "Rnetwork.create: need digit width = stage count - 1";
      List.iter
        (fun c ->
          if not (Rconnection.is_mi_stage c) then
            invalid_arg "Rnetwork.create: a connection violates the in-degree requirement")
        conns;
      make ctx (Array.of_list conns)

let stages g = Array.length g.conns + 1

let ctx g = g.ctx

let radix g = Rv.radix g.ctx

let cells_per_stage g = Rv.universe_size g.ctx

let terminals g = radix g * cells_per_stage g

let connection g i =
  if i < 1 || i > Array.length g.conns then invalid_arg "Rnetwork.connection: bad gap";
  g.conns.(i - 1)

let connections g = Array.to_list g.conns

let reverse g =
  let rev = Array.map Rconnection.reverse_any g.conns in
  let m = Array.length rev in
  (* A fresh record, never [{ g with _ }]: the packed cache describes
     the original wiring and must not be inherited. *)
  make g.ctx (Array.init m (fun i -> rev.(m - 1 - i)))

(* Packing ---------------------------------------------------------- *)

(* The stride-r compilation shared with the binary library: the same
   Mi_digraph.packed record (per-gap digit-word child tables, stride-r
   CSR) so every Packed kernel — flat-DSU census, two-row path-count
   DP, downstream tables — runs on radix networks unchanged.  Built on
   first use, cached on the record; the benign write race under
   Domains is safe because packing is deterministic. *)
let packed g =
  match g.packed_cache with
  | Some p -> p
  | None ->
      let p =
        Mi_digraph.pack_tables ~stages:(stages g) ~radix:(radix g) ~width:(Rv.width g.ctx)
          ~child:(fun ~gap ~port x -> Rconnection.child g.conns.(gap - 1) port x)
      in
      g.packed_cache <- Some p;
      p

let subgraph g ~lo ~hi =
  let n = stages g in
  if lo < 1 || hi > n || lo > hi then invalid_arg "Rnetwork.subgraph: bad stage range";
  let per = cells_per_stage g in
  let arcs =
    List.concat
      (List.init (hi - lo) (fun k ->
           let gap = lo + k in
           let base_src = (gap - lo) * per and base_dst = (gap + 1 - lo) * per in
           List.map
             (fun (x, y) -> (base_src + x, base_dst + y))
             (Rconnection.to_arcs g.conns.(gap - 1))))
  in
  Digraph.create ~vertices:((hi - lo + 1) * per) arcs

let to_digraph g = subgraph g ~lo:1 ~hi:(stages g)

let equal a b =
  stages a = stages b
  && radix a = radix b
  && Array.for_all2 Rconnection.equal_graph a.conns b.conns

(* Deciders --------------------------------------------------------- *)

(* Banyan: the packed path-count DP (two reusable rows, no per-gap
   array churn).  The boxed closure pipeline survives as
   [is_banyan_list] — the bench baseline and the qcheck agreement
   oracle. *)
let is_banyan g = Option.is_none (Packed.first_violation (packed g))

let is_banyan_list g =
  let per = cells_per_stage g in
  let n = stages g in
  let ok = ref true in
  for u = 0 to per - 1 do
    if !ok then begin
      let ways = Array.make per 0 in
      ways.(u) <- 1;
      let cur = ref ways in
      for gap = 1 to n - 1 do
        let c = connection g gap in
        let next = Array.make per 0 in
        Array.iteri
          (fun x w ->
            if w > 0 then
              List.iter (fun y -> next.(y) <- next.(y) + w) (Rconnection.children c x))
          !cur;
        cur := next
      done;
      if not (Array.for_all (fun w -> w = 1) !cur) then ok := false
    end
  done;
  !ok

let path_count_matrix g = Packed.path_count_matrix (packed g)

let expected_components g ~lo ~hi =
  let n = stages g in
  if lo < 1 || hi > n || lo > hi then invalid_arg "Rnetwork: bad stage range";
  let rec pow acc k = if k = 0 then acc else pow (acc * radix g) (k - 1) in
  pow 1 (n - 1 - (hi - lo))

(* Census: flat union-find over the packed child tables; the old
   materialize-subgraph + BFS pipeline survives as
   [component_count_subgraph]. *)
let component_count g ~lo ~hi = Packed.component_count (packed g) ~lo ~hi

let component_count_subgraph g ~lo ~hi = Traverse.component_count (subgraph g ~lo ~hi)

let p_ij g ~lo ~hi = component_count g ~lo ~hi = expected_components g ~lo ~hi

let p_one_star g =
  let n = stages g in
  let rec go j = j > n || (p_ij g ~lo:1 ~hi:j && go (j + 1)) in
  go 1

let p_star_n g =
  let n = stages g in
  let rec go i = i > n || (p_ij g ~lo:i ~hi:n && go (i + 1)) in
  go 1

let by_characterization g =
  (* Banyan by the packed DP, then both P families by the flat-DSU
     census with one shared scratch — one packed compilation serves
     every window. *)
  is_banyan g
  &&
  let p = packed g in
  let n = stages g in
  let scratch = Packed.scratch p in
  let window_ok ~lo ~hi =
    Packed.component_count ~scratch p ~lo ~hi = expected_components g ~lo ~hi
  in
  let rec prefixes j = j > n || (window_ok ~lo:1 ~hi:j && prefixes (j + 1)) in
  let rec suffixes i = i > n || (window_ok ~lo:i ~hi:n && suffixes (i + 1)) in
  prefixes 1 && suffixes 1

let by_characterization_list g =
  (* The pre-packed pipeline end to end: boxed-row Banyan DP and
     subgraph-BFS censuses.  Bench baseline and agreement oracle. *)
  let n = stages g in
  is_banyan_list g
  && List.for_all
       (fun j ->
         component_count_subgraph g ~lo:1 ~hi:j = expected_components g ~lo:1 ~hi:j)
       (List.init n (fun j -> j + 1))
  && List.for_all
       (fun i ->
         component_count_subgraph g ~lo:i ~hi:n = expected_components g ~lo:i ~hi:n)
       (List.init n (fun i -> i + 1))

let by_independence g =
  is_banyan g && List.for_all Rconnection.is_independent (connections g)

let isomorphic ?limit a b =
  stages a = stages b
  && radix a = radix b
  && Mineq_graph.Iso.are_isomorphic ?limit (to_digraph a) (to_digraph b)
