(** MI-digraphs with [r x r] cells: [n] stages of [r^(n-1)] cells,
    with the Banyan property, the [P(i,j)] component properties
    (expected count [r^(n-1-(j-i))]) and the equivalence deciders,
    all generalized from the binary development.

    The paper proves Theorem 3 only for [r = 2] and notes the graph
    characterization generalizes; whether {e independence} still
    implies Baseline-equivalence at higher radix is exactly what
    experiment X6 tests (spoiler: every sampled instance agrees). *)

type t

val create : Rconnection.t list -> t
(** [n-1] connections over the same context, each a valid MI stage;
    the digit width must be [n - 1]. *)

val stages : t -> int

val ctx : t -> Rv.ctx

val radix : t -> int

val cells_per_stage : t -> int

val terminals : t -> int
(** [r^n]. *)

val connection : t -> int -> Rconnection.t
(** 1-based gap index. *)

val connections : t -> Rconnection.t list

val reverse : t -> t

val to_digraph : t -> Mineq_graph.Digraph.t

val subgraph : t -> lo:int -> hi:int -> Mineq_graph.Digraph.t

val equal : t -> t -> bool

(** {1 Properties} *)

val is_banyan : t -> bool

val expected_components : t -> lo:int -> hi:int -> int

val component_count : t -> lo:int -> hi:int -> int

val p_ij : t -> lo:int -> hi:int -> bool

val p_one_star : t -> bool

val p_star_n : t -> bool

(** {1 Equivalence with the radix-r Baseline} *)

val by_characterization : t -> bool
(** Banyan + both [P] families (the generalized [12] theorem). *)

val by_independence : t -> bool
(** Banyan + every connection independent — the radix-r {e analogue}
    of Theorem 3 (conjectured; validated experimentally, X6). *)

val isomorphic : ?limit:int -> t -> t -> bool
(** Ground truth: generic digraph isomorphism between two radix
    networks (small sizes only).  [Rbuild.baseline] provides the
    canonical comparison target. *)
