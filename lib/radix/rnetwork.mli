(** MI-digraphs with [r x r] cells: [n] stages of [r^(n-1)] cells,
    with the Banyan property, the [P(i,j)] component properties
    (expected count [r^(n-1-(j-i))]) and the equivalence deciders,
    all generalized from the binary development.

    The paper proves Theorem 3 only for [r = 2] and notes the graph
    characterization generalizes; whether {e independence} still
    implies Baseline-equivalence at higher radix is exactly what
    experiment X6 tests (spoiler: every sampled instance agrees).

    The deciders run on the same packed CSR compilation as the binary
    library ({!Mi_digraph.packed} at stride [r], kernels in
    {!Mineq.Packed}): Banyan by the two-row path-count DP, the
    censuses by the flat union-find — no boxed child lists, no
    subgraph materialization.  The pre-packed boxed pipeline survives
    as [is_banyan_list] / [component_count_subgraph] /
    [by_characterization_list]: the benchmark baselines and the
    qcheck agreement oracles. *)

module Mi_digraph := Mineq.Mi_digraph

type t

val create : Rconnection.t list -> t
(** [n-1] connections over the same context, each a valid MI stage;
    the digit width must be [n - 1].  Raises [Invalid_argument] on an
    empty list, a context mismatch, a radix below 2, a width not
    matching the stage count, or a connection violating the in-degree
    requirement. *)

val stages : t -> int

val ctx : t -> Rv.ctx

val radix : t -> int

val cells_per_stage : t -> int

val terminals : t -> int
(** [r^n]. *)

val connection : t -> int -> Rconnection.t
(** 1-based gap index. *)

val connections : t -> Rconnection.t list

val reverse : t -> t

val packed : t -> Mi_digraph.packed
(** The stride-[r] packed compilation ({!Mi_digraph.pack_tables}):
    dense stage-major ids, per-gap digit-word child tables, CSR
    adjacency.  Built on first use and cached on the record; safe
    under parallel domains (packing is deterministic and
    idempotent).  Every {!Mineq.Packed} kernel accepts the result. *)

val to_digraph : t -> Mineq_graph.Digraph.t

val subgraph : t -> lo:int -> hi:int -> Mineq_graph.Digraph.t

val equal : t -> t -> bool

(** {1 Properties} *)

val is_banyan : t -> bool
(** Packed path-count DP ({!Mineq.Packed.first_violation}). *)

val is_banyan_list : t -> bool
(** The boxed-closure DP the packed kernel replaced (fresh row per
    gap, child lists per cell) — bench baseline and agreement
    oracle. *)

val path_count_matrix : t -> int array array
(** [m.(u).(v)]: number of stage-1-[u] to stage-n-[v] cell paths, by
    the packed DP. *)

val expected_components : t -> lo:int -> hi:int -> int

val component_count : t -> lo:int -> hi:int -> int
(** Flat union-find over the packed child tables
    ({!Mineq.Packed.component_count}). *)

val component_count_subgraph : t -> lo:int -> hi:int -> int
(** The materialize-subgraph + BFS census the packed kernel replaced
    — bench baseline and agreement oracle. *)

val p_ij : t -> lo:int -> hi:int -> bool

val p_one_star : t -> bool

val p_star_n : t -> bool

(** {1 Equivalence with the radix-r Baseline} *)

val by_characterization : t -> bool
(** Banyan + both [P] families (the generalized [12] theorem), on the
    packed kernels with one shared scratch. *)

val by_characterization_list : t -> bool
(** The same characterization over the boxed pipeline — bench
    baseline and agreement oracle. *)

val by_independence : t -> bool
(** Banyan + every connection independent — the radix-r {e analogue}
    of Theorem 3 (conjectured; validated experimentally, X6). *)

val isomorphic : ?limit:int -> t -> t -> bool
(** Ground truth: generic digraph isomorphism between two radix
    networks (small sizes only).  [Rbuild.baseline] provides the
    canonical comparison target. *)
