type path = { input : int; output : int; cells : int array; ports : int array }

let check_terminal g t name =
  if t < 0 || t >= Rnetwork.terminals g then invalid_arg ("Rrouting: bad " ^ name)

let route g ~input ~output =
  check_terminal g input "input";
  check_terminal g output "output";
  let r = Rnetwork.radix g in
  let n = Rnetwork.stages g in
  let per = Rnetwork.cells_per_stage g in
  let src = input / r and dst = output / r in
  let reach = Array.init n (fun _ -> Array.make per false) in
  reach.(n - 1).(dst) <- true;
  for s = n - 2 downto 0 do
    let c = Rnetwork.connection g (s + 1) in
    for x = 0 to per - 1 do
      reach.(s).(x) <- List.exists (fun y -> reach.(s + 1).(y)) (Rconnection.children c x)
    done
  done;
  if not reach.(0).(src) then None
  else begin
    let cells = Array.make n src in
    let ports = Array.make n 0 in
    let cur = ref src in
    for s = 0 to n - 2 do
      let c = Rnetwork.connection g (s + 1) in
      let onward =
        List.filteri (fun _ y -> reach.(s + 1).(y)) (Rconnection.children c !cur)
      in
      (match onward with
      | [ _ ] ->
          let rec find_port j =
            if reach.(s + 1).(Rconnection.child c j !cur) then j else find_port (j + 1)
          in
          let port = find_port 0 in
          ports.(s) <- port;
          cur := Rconnection.child c port !cur
      | [] -> assert false
      | _ -> failwith "Rrouting.route: multiple paths (network is not Banyan)");
      cells.(s + 1) <- !cur
    done;
    ports.(n - 1) <- output mod r;
    Some { input; output; cells; ports }
  end

let port_word g p =
  let r = Rnetwork.radix g in
  Array.fold_left (fun acc d -> (acc * r) + d) 0 p.ports

let delta_schedule g =
  let terminals = Rnetwork.terminals g in
  let schedule = Array.make terminals (-1) in
  let ok = ref true in
  (try
     for input = 0 to terminals - 1 do
       for output = 0 to terminals - 1 do
         match route g ~input ~output with
         | None -> raise Exit
         | Some p ->
             let w = port_word g p in
             if schedule.(output) < 0 then schedule.(output) <- w
             else if schedule.(output) <> w then raise Exit
       done
     done
   with
  | Exit -> ok := false
  | Failure _ -> ok := false);
  if !ok then Some schedule else None

let is_delta g = Option.is_some (delta_schedule g)
