module Packed = Mineq.Packed

type path = { input : int; output : int; cells : int array; ports : int array }

let check_terminal g t name =
  if t < 0 || t >= Rnetwork.terminals g then invalid_arg ("Rrouting: bad " ^ name)

(* Backward reachability + forward walk over the packed child tables:
   the reach table is one flat byte row per network (no per-stage bool
   arrays, no boxed child lists), and each forward step scans the [r]
   ports of the current cell straight off the stride-r table. *)
let route g ~input ~output =
  check_terminal g input "input";
  check_terminal g output "output";
  let r = Rnetwork.radix g in
  let n = Rnetwork.stages g in
  let per = Rnetwork.cells_per_stage g in
  let p = Rnetwork.packed g in
  let src = input / r and dst = output / r in
  (* reach.(s * per + x): cell x of 0-based stage s reaches dst. *)
  let reach = Bytes.make (n * per) '\000' in
  Bytes.unsafe_set reach (((n - 1) * per) + dst) '\001';
  for s = n - 2 downto 0 do
    let base = (s + 1) * per in
    for x = 0 to per - 1 do
      let rec any j =
        j < r
        && (Bytes.unsafe_get reach (base + Packed.child p ~gap:(s + 1) ~port:j x) <> '\000'
           || any (j + 1))
      in
      if any 0 then Bytes.unsafe_set reach ((s * per) + x) '\001'
    done
  done;
  if Bytes.get reach src = '\000' then None
  else begin
    let cells = Array.make n src in
    let ports = Array.make n 0 in
    let cur = ref src in
    for s = 0 to n - 2 do
      let base = (s + 1) * per in
      let onward = ref 0 and port = ref (-1) in
      for j = 0 to r - 1 do
        if Bytes.get reach (base + Packed.child p ~gap:(s + 1) ~port:j !cur) <> '\000'
        then begin
          incr onward;
          if !port < 0 then port := j
        end
      done;
      if !onward > 1 then failwith "Rrouting.route: multiple paths (network is not Banyan)";
      assert (!port >= 0);
      ports.(s) <- !port;
      cur := Packed.child p ~gap:(s + 1) ~port:!port !cur;
      cells.(s + 1) <- !cur
    done;
    ports.(n - 1) <- output mod r;
    Some { input; output; cells; ports }
  end

let port_word g p =
  let r = Rnetwork.radix g in
  Array.fold_left (fun acc d -> (acc * r) + d) 0 p.ports

let delta_schedule g =
  let terminals = Rnetwork.terminals g in
  let schedule = Array.make terminals (-1) in
  let ok = ref true in
  (try
     for input = 0 to terminals - 1 do
       for output = 0 to terminals - 1 do
         match route g ~input ~output with
         | None -> raise Exit
         | Some p ->
             let w = port_word g p in
             if schedule.(output) < 0 then schedule.(output) <- w
             else if schedule.(output) <> w then raise Exit
       done
     done
   with
  | Exit -> ok := false
  | Failure _ -> ok := false);
  if !ok then Some schedule else None

let is_delta g = Option.is_some (delta_schedule g)
