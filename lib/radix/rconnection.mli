(** Inter-stage connections for [r x r] switching cells: an [r]-tuple
    of child functions [h_0, ..., h_{r-1}] on [(Z_r)^m]-labelled
    cells, generalizing the paper's pair [(f, g)].

    Independence generalizes verbatim with xor replaced by the group
    operation of [(Z_r)^m]:

    {[ forall alpha <> 0, exists beta, forall x, forall j,
       h_j (x + alpha) = beta + h_j x ]}

    The witness is unique and additive in [alpha], so checking the [m]
    canonical generators suffices — the "easy" check survives the
    generalization. *)

type t

val ctx : t -> Rv.ctx

val radix : t -> int

val half : t -> int
(** Cells per stage: [r^m]. *)

val make : Rv.ctx -> (int -> int -> int) -> t
(** [make ctx child] tabulates [child j x] for
    [j in 0..r-1], [x in 0..r^m-1]. *)

val child : t -> int -> int -> int
(** [child c j x] is [h_j x]. *)

val children : t -> int -> int list
(** All [r] children in port order (duplicates = multi-links). *)

val parents : t -> int -> int list
(** With multiplicity. *)

val is_mi_stage : t -> bool
(** Every next-stage cell has in-degree exactly [r]. *)

val witness : t -> int -> int option
(** The unique [beta] for a non-zero [alpha], if any. *)

val is_independent : t -> bool
(** Generator-only check, [O(m r^m)] verifications. *)

val is_independent_definitional : t -> bool
(** All non-zero [alpha]; the oracle for tests. *)

val additive_form : t -> (int array * int array) option
(** [(images, offsets)] with [images.(i) = beta (e_i)] and
    [offsets.(j) = h_j 0], such that
    [h_j x = B x + offsets.(j)] where [B] is the additive map sending
    [e_i] to [images.(i)]; present iff independent. *)

val reverse_any : t -> t
(** Parents split arbitrarily into [r] reverse child functions;
    raises [Invalid_argument] if the stage violates in-degree [r]. *)

val random_any : Random.State.t -> Rv.ctx -> t
(** Uniformly random valid stage (random assignment of the [r * r^m]
    outlet slots to inlet slots). *)

val to_arcs : t -> (int * int) list

val equal_graph : t -> t -> bool
