(** The daemon: a Unix-domain-socket front end over {!Service}.

    One thread runs a [select] event loop (accept, frame reassembly,
    response writes, write-behind snapshot ticks); admitted requests
    queue — bounded — and drain in batches through the work-stealing
    {!Mineq_engine.Pool}, so a burst of probes from many connections
    is evaluated across every core while framing stays single-
    threaded and allocation-light.

    {b Overload: shed, not stall.}  When the pending queue holds
    [queue_cap] requests, further admissions are answered immediately
    with [MINEQ-S005] and dropped — the client learns within one
    round trip instead of watching its deadline burn in a queue the
    server cannot drain in time.  The same policy covers the two
    resources the queue cap cannot see: client sockets are
    non-blocking with per-connection write buffers drained via
    select's write set, and a peer that stops reading is closed once
    its buffer passes [max_out_buf] (a blocking write there would
    wedge the event loop for every client); at [max_conns] concurrent
    connections the listen socket is no longer polled, so new clients
    wait in the kernel backlog instead of pushing fd numbers past
    [select]'s [FD_SETSIZE] ceiling.

    {b Deadlines.}  Every request is stamped on arrival; when a
    worker picks it up past its deadline (the server default, lowered
    by the request's own ["deadline_ms"]) it is answered with
    [MINEQ-S004] without evaluation.  Deadlines are checked at
    dispatch, not mid-compute: verdict kernels are microseconds to
    milliseconds, so admission control is where lateness happens.

    {b Warm restarts.}  With [snapshot_path] set, the verdict caches
    are loaded on boot (stale or torn files boot an empty cache with
    a warning — never a crash) and written behind every
    [snapshot_every_s] seconds when dirty, plus once at shutdown, via
    {!Snapshot}'s atomic temp-file + rename. *)

type config = {
  socket_path : string;
  jobs : int;  (** pool width for batch evaluation *)
  queue_cap : int;  (** pending-request bound; above it, shed *)
  batch_max : int;  (** max requests per pool dispatch *)
  deadline_ms : float;  (** default per-request deadline *)
  max_frame : int;  (** request frame size bound (MINEQ-S006) *)
  max_conns : int;
      (** concurrent-connection cap; past it, accepts pause (keep
          below [FD_SETSIZE], 1024 on Linux) *)
  max_out_buf : int;
      (** per-connection pending-response bound; a peer that stops
          reading is closed once its buffer passes it *)
  snapshot_path : string option;
  snapshot_every_s : float;  (** write-behind period *)
  handle_signals : bool;
      (** install SIGTERM/SIGINT handlers for graceful shutdown (off
          when embedded in tests) *)
}

val default_config : socket_path:string -> config
(** [jobs = Pool.default_jobs ()], [queue_cap = 256],
    [batch_max = 64], [deadline_ms = 2000.], [max_frame] 1 MiB,
    [max_conns = 512], [max_out_buf] 4 MiB, no snapshot,
    [snapshot_every_s = 5.], signals handled. *)

val run : ?on_ready:(unit -> unit) -> config -> Service.t -> unit
(** Bind, listen and serve until a [shutdown] request or (when
    [handle_signals]) SIGTERM/SIGINT.  A stale socket file at
    [socket_path] is replaced.  [on_ready] fires once the socket is
    listening, before the first accept — the hook tests use to start
    their client.  On exit: final snapshot (if dirty), metrics dump
    to stderr, socket unlinked, pool shut down. *)

(** {1 Client helpers}

    The scripted-session building blocks the CLI's [--call] mode, the
    bench and the tests share. *)

val connect : ?retries:int -> path:string -> unit -> (Unix.file_descr, string) result
(** Connect to the daemon's socket, retrying [retries] times at 50 ms
    (default 0: one attempt) for just-booted daemons. *)

val call : ?max_frame:int -> Unix.file_descr -> Proto.json -> (Proto.json, string) result
(** One request frame out, one response frame back, parsed.
    [max_frame] bounds the {e response} and defaults to 64 MiB —
    well above the request-side default, since lint reports on large
    inline specs can outgrow 1 MiB. *)
