(** Service counters: per-op request counts and latency percentiles,
    overload/deadline/error tallies.

    Latencies are kept in a bounded per-op reservoir (the most recent
    {!reservoir_size} samples, a ring); percentiles are computed over
    the resident window on demand.  All operations take one mutex —
    recording is a few stores, far off the request hot path's compute
    cost. *)

type t

val reservoir_size : int
(** Samples retained per op (4096). *)

val create : unit -> t

val record : t -> op:string -> us:float -> unit
(** One served request for [op] taking [us] microseconds
    (queue wait + compute + response write). *)

val incr_shed : t -> unit
(** A request shed by backpressure (MINEQ-S005). *)

val incr_deadline : t -> unit
(** A request expired before evaluation (MINEQ-S004). *)

val incr_error : t -> unit
(** A malformed or rejected request (MINEQ-S001/S002/S003/S006). *)

val incr_batches : t -> unit
(** One pool dispatch of a request batch. *)

val requests : t -> int
(** Total {!record}ed requests, all ops. *)

val shed : t -> int

val deadline_expired : t -> int

val errors : t -> int

val batches : t -> int

val count : t -> op:string -> int

val percentile_us : t -> op:string -> p:float -> float
(** [p] in [0, 1] over the op's resident window; [nan] when the op
    has no samples. *)

val to_json : t -> Proto.json
(** {v
    { "requests": 120, "shed": 2, "deadline_expired": 0, "errors": 1,
      "batches": 17,
      "ops": { "equiv": { "count": 100, "mean_us": 12.0,
                          "p50_us": 9.1, "p99_us": 40.2 }, ... } }
    v} *)

val dump : t -> string
(** Human-readable multi-line rendering (the shutdown report). *)
