(* JSON ------------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* %.17g round-trips every float; trim the common integral case. *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> Buffer.add_string buf (Mineq_analysis.Report.json_string s)
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          render buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Mineq_analysis.Report.json_string k);
          Buffer.add_char buf ':';
          render buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

(* Recursive-descent parser.  Positions are tracked for error
   messages; the grammar is full JSON with the usual escapes
   (\uXXXX decoded to UTF-8). *)

exception Parse_fail of string

let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_fail m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C at offset %d, found %C" c !pos c'
    | None -> fail "expected %C at offset %d, found end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal at offset %d" !pos
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape at offset %d" !pos;
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = s.[!pos] in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit %C in \\u escape at offset %d" c !pos
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' -> add_utf8 buf (hex4 ())
              | c -> fail "bad escape \\%C at offset %d" c !pos);
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_int = ref true in
    if peek () = Some '-' then advance ();
    while
      match peek () with
      | Some ('0' .. '9') -> true
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
          is_int := false;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_int then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Out of native range: fall back to float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number %S at offset %d" text start)
    else
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S at offset %d" text start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected %C at offset %d" c !pos
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after JSON value at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_fail m -> Error m

let member k = function
  | Obj fields -> ( match List.assoc_opt k fields with Some v -> v | None -> Null)
  | _ -> Null

let to_int ?default v =
  match v with Int i -> Some i | Null -> default | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

(* Framing ----------------------------------------------------------- *)

let max_frame_default = 1 lsl 20

let frame_payload_max = 0xffff_ffff

type frame_error = Closed | Oversized of int

let rec write_all fd buf off len =
  if len > 0 then begin
    let written =
      try Unix.write fd buf off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + written) (len - written)
  end

let frame payload =
  let len = String.length payload in
  if len > frame_payload_max then
    invalid_arg
      (Printf.sprintf "Proto.frame: %d-byte payload does not fit the 4-byte length header"
         len);
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 buf 4 len;
  Bytes.unsafe_to_string buf

let write_frame fd payload =
  let b = Bytes.unsafe_of_string (frame payload) in
  write_all fd b 0 (Bytes.length b)

let read_exact fd buf off len =
  let rec go off len =
    if len = 0 then true
    else
      let n =
        try Unix.read fd buf off len with Unix.Unix_error (Unix.EINTR, _, _) -> -1
      in
      if n < 0 then go off len else if n = 0 then false else go (off + n) (len - n)
  in
  go off len

let read_frame ?(max_frame = max_frame_default) fd =
  let header = Bytes.create 4 in
  if not (read_exact fd header 0 4) then Error Closed
  else begin
    let len =
      (Char.code (Bytes.get header 0) lsl 24)
      lor (Char.code (Bytes.get header 1) lsl 16)
      lor (Char.code (Bytes.get header 2) lsl 8)
      lor Char.code (Bytes.get header 3)
    in
    if len > max_frame then Error (Oversized len)
    else begin
      let payload = Bytes.create len in
      if read_exact fd payload 0 len then Ok (Bytes.unsafe_to_string payload)
      else Error Closed
    end
  end

(* Requests ---------------------------------------------------------- *)

type request = {
  id : json;
  op : string;
  network : string option;
  spec : string option;
  n : int;
  method_ : string option;
  deadline_ms : float option;
}

let n_limit = 16

let request_of_json v =
  match v with
  | Obj _ -> (
      match member "op" v with
      | Str op -> (
          let str_field name =
            match member name v with
            | Str s -> Ok (Some s)
            | Null -> Ok None
            | _ -> Error (Printf.sprintf "field %S must be a string" name)
          in
          match (str_field "network", str_field "spec", str_field "method") with
          | Error m, _, _ | _, Error m, _ | _, _, Error m -> Error m
          | Ok network, Ok spec, Ok method_ -> (
              match to_int ~default:4 (member "n" v) with
              | None -> Error "field \"n\" must be an integer"
              | Some n when n < 2 || n > n_limit ->
                  Error
                    (Printf.sprintf "field \"n\" must be between 2 and %d, got %d" n_limit
                       n)
              | Some n -> (
                  match (member "deadline_ms" v, to_float (member "deadline_ms" v)) with
                  | Null, _ ->
                      Ok
                        { id = member "id" v; op; network; spec; n; method_;
                          deadline_ms = None
                        }
                  | _, Some d ->
                      Ok
                        { id = member "id" v; op; network; spec; n; method_;
                          deadline_ms = Some d
                        }
                  | _, None -> Error "field \"deadline_ms\" must be a number")))
      | Null -> Error "request lacks an \"op\" field"
      | _ -> Error "field \"op\" must be a string")
  | _ -> Error "request must be a JSON object"

let request_to_json r =
  let fields = [ ("op", Str r.op) ] in
  let fields = if r.id = Null then fields else ("id", r.id) :: fields in
  let fields =
    match r.network with Some s -> ("network", Str s) :: fields | None -> fields
  in
  let fields = match r.spec with Some s -> ("spec", Str s) :: fields | None -> fields in
  let fields = ("n", Int r.n) :: fields in
  let fields =
    match r.method_ with Some s -> ("method", Str s) :: fields | None -> fields
  in
  let fields =
    match r.deadline_ms with Some d -> ("deadline_ms", Float d) :: fields | None -> fields
  in
  Obj (List.rev fields)

(* Responses --------------------------------------------------------- *)

let ok_response ~id fields = Obj (("ok", Bool true) :: ("id", id) :: fields)

let error_response ~id ~code ~message =
  Obj
    [ ("ok", Bool false);
      ("id", id);
      ("error", Obj [ ("code", Str code); ("message", Str message) ])
    ]

let response_ok v = match member "ok" v with Bool b -> b | _ -> false

let error_code v = to_string_opt (member "code" (member "error" v))

(* Cached verdict payloads ------------------------------------------- *)

type verdict = { equivalent : bool; banyan : bool; detail : string }

type lint_cached = { report : json; errors : int; warnings : int; infos : int }

type blocking_cached = { delta : bool; rows : (string * string) list }
