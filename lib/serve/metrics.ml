let reservoir_size = 4096

type op_stats = {
  mutable count : int;
  mutable sum_us : float;
  window : float array;  (* ring of the last [reservoir_size] latencies *)
  mutable filled : int;
  mutable next : int;
}

type t = {
  m : Mutex.t;
  ops : (string, op_stats) Hashtbl.t;
  mutable shed : int;
  mutable deadline_expired : int;
  mutable errors : int;
  mutable batches : int;
}

let create () =
  { m = Mutex.create ();
    ops = Hashtbl.create 8;
    shed = 0;
    deadline_expired = 0;
    errors = 0;
    batches = 0
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let op_stats t op =
  match Hashtbl.find_opt t.ops op with
  | Some s -> s
  | None ->
      let s =
        { count = 0; sum_us = 0.0; window = Array.make reservoir_size 0.0; filled = 0;
          next = 0
        }
      in
      Hashtbl.add t.ops op s;
      s

let record t ~op ~us =
  locked t (fun () ->
      let s = op_stats t op in
      s.count <- s.count + 1;
      s.sum_us <- s.sum_us +. us;
      s.window.(s.next) <- us;
      s.next <- (s.next + 1) mod reservoir_size;
      if s.filled < reservoir_size then s.filled <- s.filled + 1)

let incr_shed t = locked t (fun () -> t.shed <- t.shed + 1)

let incr_deadline t = locked t (fun () -> t.deadline_expired <- t.deadline_expired + 1)

let incr_error t = locked t (fun () -> t.errors <- t.errors + 1)

let incr_batches t = locked t (fun () -> t.batches <- t.batches + 1)

let requests t =
  locked t (fun () -> Hashtbl.fold (fun _ s acc -> acc + s.count) t.ops 0)

let shed t = locked t (fun () -> t.shed)

let deadline_expired t = locked t (fun () -> t.deadline_expired)

let errors t = locked t (fun () -> t.errors)

let batches t = locked t (fun () -> t.batches)

let count t ~op =
  locked t (fun () ->
      match Hashtbl.find_opt t.ops op with Some s -> s.count | None -> 0)

(* Percentile over a sorted copy of the resident window: nearest-rank
   on p * (n - 1), the convention the benches use. *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) rank))

let window_copy s = Array.sub s.window 0 s.filled

let percentile_us t ~op ~p =
  locked t (fun () ->
      match Hashtbl.find_opt t.ops op with
      | None -> nan
      | Some s ->
          let w = window_copy s in
          Array.sort compare w;
          percentile_sorted w p)

let op_rows t =
  locked t (fun () ->
      Hashtbl.fold
        (fun op s acc ->
          let w = window_copy s in
          Array.sort compare w;
          ( op,
            s.count,
            (if s.count = 0 then nan else s.sum_us /. float_of_int s.count),
            percentile_sorted w 0.5,
            percentile_sorted w 0.99 )
          :: acc)
        t.ops []
      |> List.sort compare)

let json_float f : Proto.json = if Float.is_nan f then Null else Float f

let to_json t : Proto.json =
  let rows = op_rows t in
  Obj
    [ ("requests", Int (List.fold_left (fun acc (_, c, _, _, _) -> acc + c) 0 rows));
      ("shed", Int (shed t));
      ("deadline_expired", Int (deadline_expired t));
      ("errors", Int (errors t));
      ("batches", Int (batches t));
      ( "ops",
        Obj
          (List.map
             (fun (op, count, mean, p50, p99) ->
               ( op,
                 Proto.Obj
                   [ ("count", Proto.Int count);
                     ("mean_us", json_float mean);
                     ("p50_us", json_float p50);
                     ("p99_us", json_float p99)
                   ] ))
             rows) )
    ]

let dump t =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "requests %d  shed %d  deadline-expired %d  errors %d  batches %d\n" (requests t)
    (shed t) (deadline_expired t) (errors t) (batches t);
  List.iter
    (fun (op, count, mean, p50, p99) ->
      add "  %-10s %8d reqs  mean %8.1f us  p50 %8.1f us  p99 %8.1f us\n" op count mean
        p50 p99)
    (op_rows t);
  Buffer.contents buf
