(** Wire protocol of the [mineq serve] daemon.

    One request, one response, both a single {e frame}: a 4-byte
    big-endian payload length followed by that many bytes of UTF-8
    JSON.  Frames are independent — a client may pipeline several
    requests on one connection and reads responses back in request
    order.

    Requests are JSON objects:

    {v
    { "op": "equiv", "network": "omega", "n": 4,
      "id": 7, "deadline_ms": 250 }
    v}

    - ["op"] (required): ["ping"], ["equiv"], ["banyan"], ["lint"],
      ["blocking"], ["stats"] or ["shutdown"].
    - ["network"]: a network specification in the CLI's syntax
      (classical name, [random:SEED], [pipid:SEED], [buddy:SEED]), or
      ["spec"]: inline spec-file text ({!Mineq.Spec_io.of_string}).
      Exactly the verdict ops need one of the two.
    - ["n"]: stage count for named networks (default 4).  Bounded to
      [2 <= n <= n_limit] at parse time, so a request can neither
      reach constructors that require [n >= 2] nor ask the server to
      materialize an absurdly large network.
    - ["method"]: equivalence decider for ["equiv"]
      ([characterization], [independence], [isomorphism]; default
      [characterization] — the only one served from the warm
      fingerprint cache).
    - ["id"]: any JSON value, echoed verbatim in the response.
    - ["deadline_ms"]: per-request deadline; the effective deadline is
      the minimum of this and the server's configured one.

    Responses carry ["ok": true] plus op-specific fields, or
    ["ok": false] with an ["error"] object holding a [MINEQ-S0xx]
    code:

    - [MINEQ-S001] — malformed frame payload (not valid JSON, or not
      a request object).
    - [MINEQ-S002] — unknown ["op"].
    - [MINEQ-S003] — bad ["network"]/["spec"] (unparseable, or both
      or neither given).
    - [MINEQ-S004] — deadline exceeded before the request reached a
      worker (the request was {e not} evaluated).
    - [MINEQ-S005] — overloaded: the bounded accept queue is full and
      the request was shed without evaluation.  Retry later.
    - [MINEQ-S006] — frame longer than the server's limit; the
      connection is closed after the error, since the stream can no
      longer be framed.
    - [MINEQ-S007] — internal error: evaluation raised instead of
      producing a verdict.  The daemon answers and keeps serving; the
      exception never escapes the request. *)

(** {1 JSON} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact rendering; strings escaped as in
    {!Mineq_analysis.Report.json_string}. *)

val json_of_string : string -> (json, string) result
(** Recursive-descent parser for the full JSON grammar (objects,
    arrays, strings with escapes, numbers, booleans, null).  Numbers
    without fraction or exponent parse as {!Int}. *)

val member : string -> json -> json
(** Field of an object, {!Null} when absent or not an object. *)

val to_int : ?default:int -> json -> int option

val to_float : json -> float option
(** Accepts both {!Int} and {!Float}. *)

val to_string_opt : json -> string option

(** {1 Framing} *)

val max_frame_default : int
(** 1 MiB. *)

val frame_payload_max : int
(** [2^32 - 1], the largest payload the 4-byte length header can
    describe. *)

type frame_error =
  | Closed  (** EOF before a full frame *)
  | Oversized of int  (** declared length exceeded the limit *)

val frame : string -> string
(** The on-wire bytes of one frame: 4-byte big-endian length prefix +
    payload.  Raises [Invalid_argument] when the payload exceeds
    {!frame_payload_max} — a larger frame would silently truncate the
    header and desynchronize the stream. *)

val write_frame : Unix.file_descr -> string -> unit
(** [frame] written out, handling short writes.  Raises
    [Invalid_argument] as {!frame} does. *)

val read_frame : ?max_frame:int -> Unix.file_descr -> (string, frame_error) result
(** Blocking read of one frame.  On {!Oversized} the descriptor is
    left mid-frame — callers must close it. *)

(** {1 Requests} *)

type request = {
  id : json;  (** echoed; [Null] when absent *)
  op : string;
  network : string option;
  spec : string option;
  n : int;
  method_ : string option;
  deadline_ms : float option;
}

val n_limit : int
(** Largest ["n"] {!request_of_json} admits (16); the lower bound is
    2.  Named-network constructors require [n >= 2], and an unbounded
    [n] would let one request allocate a [2^n]-terminal network. *)

val request_of_json : json -> (request, string) result
(** Validates shape only (op present and a string, fields well-typed,
    ["n"] within [2 .. n_limit]); op/spec semantics are the
    service's. *)

val request_to_json : request -> json
(** Inverse of {!request_of_json} up to field defaulting — the
    client-side builder. *)

(** {1 Responses} *)

val ok_response : id:json -> (string * json) list -> json

val error_response : id:json -> code:string -> message:string -> json

val response_ok : json -> bool
(** The ["ok"] field, [false] when missing. *)

val error_code : json -> string option
(** ["error"."code"] of a failure response. *)

(** {1 Cached verdict payloads}

    The value types the service's warm {!Mineq_engine.Memo} caches
    store and {!Snapshot} persists — plain data, no closures, so
    [Marshal] round-trips them. *)

type verdict = { equivalent : bool; banyan : bool; detail : string }
(** Equivalence verdict (iso-invariant fields of
    {!Mineq.Equivalence.by_characterization} — [detail] is the
    representative's rendering and may mention that network's
    labels). *)

type lint_cached = { report : json; errors : int; warnings : int; infos : int }
(** A structural lint report, pre-parsed for embedding. *)

type blocking_cached = { delta : bool; rows : (string * string) list }
(** Affine blocking certificates per classical traffic class
    ([class name, verdict rendering]); [delta = false] means the
    network has no destination-tag router and [rows] is empty. *)
