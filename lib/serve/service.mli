(** The warm compute core behind the daemon: resident packed
    networks, sharded verdict caches and metrics, independent of any
    socket.

    Three {!Mineq_engine.Memo} caches hold verdicts:

    - [equiv] is {e fingerprint-keyed}: the cached
      [equivalent]/[banyan] fields depend only on the isomorphism
      class, so a relabelled probe of a known network is a warm hit.
      Only the default [characterization] decider is served from this
      cache; explicit [independence]/[isomorphism] requests compute
      fresh (their verdicts and details are label-sensitive).
    - [lint] and [blocking] are {e structural}: findings carry
      stage/label witnesses, sound only for the identical digraph.

    Parsed networks (and their packed CSR forms, built lazily on
    first use and cached in the record) are resident in a spec-keyed
    table, so repeat queries skip parsing and packing entirely.

    {!handle} is safe to call from multiple pool workers at once: the
    caches are lock-striped, the network table has its own mutex, and
    metric updates are mutexed. *)

type t

val create : unit -> t

val metrics : t -> Metrics.t

val handle : t -> Proto.request -> Proto.json
(** Evaluate one request to its response.  Framing, queueing,
    deadlines and shedding are the server's job — by the time a
    request reaches [handle] it has already been admitted.

    [handle] never raises: an exception escaping evaluation (a kernel
    [Invalid_argument], [Out_of_memory] on a pathological request)
    becomes a [MINEQ-S007] internal-error response, so one bad
    request cannot crash a pool worker or the daemon. *)

val network_of_spec : t -> spec:string -> n:int -> (Mineq.Mi_digraph.t, string) result
(** Resolve a named-network specification (classical name,
    [random:SEED], [pipid:SEED], [buddy:SEED]) against the resident
    table, parsing and caching on first sight. *)

(** {1 Cache statistics and snapshots} *)

val cache_sizes : t -> int * int * int
(** [(equiv, lint, blocking)] entry counts. *)

val hit_rate : t -> float
(** Pooled hit rate across the three caches; [nan] before any
    probe. *)

val to_payload : t -> Snapshot.payload
(** Consistent export of all three caches. *)

val adopt : t -> Snapshot.payload -> int
(** Import a loaded snapshot into the caches (resident entries win);
    returns the number of entries adopted and records it for
    {!handle}'s [stats] op. *)

val snapshot_note : t -> string
(** Boot provenance shown in [stats]: what {!adopt} or
    {!note_snapshot_error} recorded, or ["cold"] initially. *)

val note_snapshot_error : t -> string -> unit
