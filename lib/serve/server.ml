module Pool = Mineq_engine.Pool

type config = {
  socket_path : string;
  jobs : int;
  queue_cap : int;
  batch_max : int;
  deadline_ms : float;
  max_frame : int;
  max_conns : int;
  max_out_buf : int;
  snapshot_path : string option;
  snapshot_every_s : float;
  handle_signals : bool;
}

let default_config ~socket_path =
  { socket_path;
    jobs = Pool.default_jobs ();
    queue_cap = 256;
    batch_max = 64;
    deadline_ms = 2000.0;
    max_frame = Proto.max_frame_default;
    max_conns = 512;
    max_out_buf = 4 lsl 20;
    snapshot_path = None;
    snapshot_every_s = 5.0;
    handle_signals = true
  }

(* Connections -------------------------------------------------------

   Each connection owns a reassembly buffer: reads append raw bytes,
   and complete frames (4-byte length known and satisfied) peel off
   the front.  Frames are small (requests are one-line JSON), so the
   copy-the-remainder splice is cheap and keeps the state machine
   trivial.

   The outbound side mirrors it: client sockets are non-blocking, and
   whatever the kernel will not take immediately parks in [out] and
   drains through select's write set.  A peer that stops reading
   therefore stalls only its own buffer — never the event loop — and
   is closed once [out] passes [max_out_buf]. *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* inbound frame reassembly *)
  out : Buffer.t;  (* outbound bytes the kernel has not yet accepted *)
  mutable alive : bool;
}

type pending = { conn : conn; req : Proto.request; arrival : float }

type evaluated = { p : pending; response : string; expired : bool }

let close_conn conns c =
  if c.alive then begin
    c.alive <- false;
    Hashtbl.remove conns c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* Push as much of [c.out] as the socket will take without blocking. *)
let flush_out conns c =
  if c.alive && Buffer.length c.out > 0 then begin
    let s = Buffer.contents c.out in
    let len = String.length s in
    let off = ref 0 in
    let blocked = ref false in
    (try
       while (not !blocked) && !off < len do
         match Unix.write_substring c.fd s !off (len - !off) with
         | 0 -> blocked := true
         | written -> off := !off + written
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
             blocked := true
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       done
     with Unix.Unix_error _ -> close_conn conns c);
    if c.alive then begin
      Buffer.clear c.out;
      if !off < len then Buffer.add_substring c.out s !off (len - !off)
    end
  end

let send ~max_out_buf conns c payload =
  if c.alive then
    match Proto.frame payload with
    | exception Invalid_argument _ ->
        (* A response beyond the 4-byte length header cannot be
           framed; hang up rather than desynchronize the stream. *)
        close_conn conns c
    | bytes ->
        Buffer.add_string c.out bytes;
        flush_out conns c;
        (* Slow-reader shed: a peer that keeps requesting but never
           reads cannot pin unbounded response bytes in the server. *)
        if c.alive && Buffer.length c.out > max_out_buf then close_conn conns c

(* [Some (payload)] when a complete frame heads the buffer;
   [Error len] when the declared length exceeds the limit. *)
let peel_frame ~max_frame buf =
  let have = Buffer.length buf in
  if have < 4 then Ok None
  else begin
    let b i = Char.code (Buffer.nth buf i) in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > max_frame then Error len
    else if have < 4 + len then Ok None
    else begin
      let payload = Buffer.sub buf 4 len in
      let rest = Buffer.sub buf (4 + len) (have - 4 - len) in
      Buffer.clear buf;
      Buffer.add_string buf rest;
      Ok (Some payload)
    end
  end

(* The event loop ----------------------------------------------------- *)

let now () = Unix.gettimeofday ()

let run ?(on_ready = fun () -> ()) config service =
  let metrics = Service.metrics service in
  let stop = ref false in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if config.handle_signals then begin
    let handler = Sys.Signal_handle (fun _ -> stop := true) in
    Sys.set_signal Sys.sigterm handler;
    Sys.set_signal Sys.sigint handler
  end;

  (* Boot-time snapshot load: every failure mode is a warning and an
     empty cache, never a crash. *)
  (match config.snapshot_path with
  | None -> ()
  | Some path -> (
      match Snapshot.load ~path with
      | Ok payload ->
          let adopted = Service.adopt service payload in
          Printf.eprintf "mineq serve: snapshot %s: loaded %d entries\n%!" path adopted
      | Error Snapshot.Missing -> Service.note_snapshot_error service "no snapshot file"
      | Error e ->
          let m = Snapshot.error_to_string e in
          Service.note_snapshot_error service m;
          Printf.eprintf "mineq serve: warning: %s (%s); booting cold\n%!" m path));

  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;

  let pool = Pool.create ~jobs:config.jobs () in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let queue : pending Queue.t = Queue.create () in
  let read_buf = Bytes.create 65536 in

  let send c payload = send ~max_out_buf:config.max_out_buf conns c payload in
  let send_json c v = send c (Proto.json_to_string v) in

  let cache_total () =
    let e, l, b = Service.cache_sizes service in
    e + l + b
  in
  let last_save = ref (now ()) in
  let saved_total = ref (cache_total ()) in
  let save_snapshot ~reason =
    match config.snapshot_path with
    | None -> ()
    | Some path -> (
        let total = cache_total () in
        if total <> !saved_total then
          match Snapshot.save ~path (Service.to_payload service) with
          | () ->
              saved_total := total;
              Printf.eprintf "mineq serve: snapshot %s: saved %d entries (%s)\n%!" path
                total reason
          | exception Sys_error m ->
              Printf.eprintf "mineq serve: warning: snapshot save failed: %s\n%!" m)
  in

  let admit c req =
    if String.equal req.Proto.op "shutdown" then begin
      (* Never queued and never shed: the stop request must get
         through precisely when the server is drowning.  Pending
         admitted work still drains before the loop exits. *)
      send_json c (Service.handle service req);
      stop := true
    end
    else if Queue.length queue >= config.queue_cap then begin
      Metrics.incr_shed metrics;
      send_json c
        (Proto.error_response ~id:req.Proto.id ~code:"MINEQ-S005"
           ~message:
             (Printf.sprintf "overloaded: %d requests pending, retry later"
                (Queue.length queue)))
    end
    else Queue.add { conn = c; req; arrival = now () } queue
  in

  let on_frame c payload =
    match Proto.json_of_string payload with
    | Error m ->
        Metrics.incr_error metrics;
        send_json c
          (Proto.error_response ~id:Proto.Null ~code:"MINEQ-S001"
             ~message:("malformed frame payload: " ^ m))
    | Ok v -> (
        match Proto.request_of_json v with
        | Error m ->
            Metrics.incr_error metrics;
            send_json c
              (Proto.error_response ~id:(Proto.member "id" v) ~code:"MINEQ-S001"
                 ~message:m)
        | Ok req -> admit c req)
  in

  let drain_frames c =
    let rec go () =
      if c.alive then
        match peel_frame ~max_frame:config.max_frame c.buf with
        | Ok None -> ()
        | Ok (Some payload) ->
            on_frame c payload;
            go ()
        | Error len ->
            (* The stream can no longer be framed: answer and close. *)
            Metrics.incr_error metrics;
            send_json c
              (Proto.error_response ~id:Proto.Null ~code:"MINEQ-S006"
                 ~message:
                   (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len
                      config.max_frame));
            close_conn conns c
    in
    go ()
  in

  let on_readable c =
    match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> close_conn conns c
    | n ->
        Buffer.add_subbytes c.buf read_buf 0 n;
        drain_frames c
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
    | exception Unix.Unix_error _ -> close_conn conns c
  in

  let evaluate (p : pending) =
    let deadline =
      match p.req.Proto.deadline_ms with
      | Some d -> Float.min d config.deadline_ms
      | None -> config.deadline_ms
    in
    let waited_ms = (now () -. p.arrival) *. 1000.0 in
    if waited_ms > deadline then
      { p;
        expired = true;
        response =
          Proto.json_to_string
            (Proto.error_response ~id:p.req.Proto.id ~code:"MINEQ-S004"
               ~message:
                 (Printf.sprintf "deadline of %.0f ms exceeded after %.1f ms queued"
                    deadline waited_ms))
      }
    else
      { p; expired = false; response = Proto.json_to_string (Service.handle service p.req) }
  in

  let dispatch () =
    while not (Queue.is_empty queue) do
      let batch =
        Array.init
          (min config.batch_max (Queue.length queue))
          (fun _ -> Queue.take queue)
      in
      Metrics.incr_batches metrics;
      let results = Pool.map_array pool evaluate batch in
      let finish = now () in
      Array.iter
        (fun r ->
          send r.p.conn r.response;
          if r.expired then Metrics.incr_deadline metrics
          else
            Metrics.record metrics ~op:r.p.req.Proto.op
              ~us:((finish -. r.p.arrival) *. 1e6))
        results
    done
  in

  on_ready ();
  while not !stop do
    let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    (* At the connection cap, stop polling the listen socket: new
       clients wait in the kernel backlog instead of pushing fd
       numbers toward FD_SETSIZE, where select itself would fail. *)
    let rfds =
      if Hashtbl.length conns < config.max_conns then listen_fd :: conn_fds
      else conn_fds
    in
    let wfds =
      Hashtbl.fold
        (fun fd c acc -> if Buffer.length c.out > 0 then fd :: acc else acc)
        conns []
    in
    (match Unix.select rfds wfds [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready_r, ready_w, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> flush_out conns c
            | None -> ())
          ready_w;
        List.iter
          (fun fd ->
            if fd = listen_fd then begin
              match Unix.accept listen_fd with
              | client, _ ->
                  Unix.set_nonblock client;
                  Hashtbl.replace conns client
                    { fd = client; buf = Buffer.create 256; out = Buffer.create 256;
                      alive = true
                    }
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Hashtbl.find_opt conns fd with
              | Some c -> on_readable c
              | None -> ())
          ready_r);
    dispatch ();
    if now () -. !last_save >= config.snapshot_every_s then begin
      save_snapshot ~reason:"write-behind";
      last_save := now ()
    end
  done;

  (* Best-effort drain of buffered responses (the shutdown ack,
     answers to late pipelined requests), bounded so a peer that
     never reads cannot hold up exit. *)
  let drain_until = now () +. 1.0 in
  let rec drain_outbound () =
    let pending =
      Hashtbl.fold
        (fun fd c acc -> if c.alive && Buffer.length c.out > 0 then fd :: acc else acc)
        conns []
    in
    if pending <> [] && now () < drain_until then begin
      (match Unix.select [] pending [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | _, writable, _ ->
          List.iter
            (fun fd ->
              match Hashtbl.find_opt conns fd with
              | Some c -> flush_out conns c
              | None -> ())
            writable);
      drain_outbound ()
    end
  in
  drain_outbound ();

  save_snapshot ~reason:"shutdown";
  prerr_string (Metrics.dump metrics);
  flush stderr;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  Pool.shutdown pool

(* Client helpers ----------------------------------------------------- *)

let connect ?(retries = 0) ~path () =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if attempt < retries then begin
          ignore (Unix.select [] [] [] 0.05);
          go (attempt + 1)
        end
        else Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))
  in
  go 0

let call ?(max_frame = 64 * Proto.max_frame_default) fd request =
  Proto.write_frame fd (Proto.json_to_string request);
  match Proto.read_frame ~max_frame fd with
  | Ok payload -> Proto.json_of_string payload
  | Error Proto.Closed -> Error "connection closed before a full response frame"
  | Error (Proto.Oversized n) -> Error (Printf.sprintf "oversized response frame (%d bytes)" n)
