(** Disk persistence for the service's warm verdict caches.

    A snapshot file is:

    {v
    "MINEQSNAP"            9 bytes   magic
    version                4 bytes   big-endian
    payload length         8 bytes   big-endian
    MD5(payload)          16 bytes
    payload                          Marshal of {!payload}
    v}

    The payload is the {!Mineq_engine.Memo.export} of each cache —
    plain data (networks are int-array records, fingerprints are two
    ints), so [Marshal] round-trips it without closures.  Writes go to
    [path ^ ".tmp"] and rename into place, so a crash mid-write leaves
    the previous snapshot intact: write-behind is durable at the
    granularity of the last completed save.

    Loading verifies magic, version and checksum {e before}
    unmarshalling; any mismatch is a typed {!error}, never an
    exception — the daemon boots with an empty cache and a warning
    instead of crashing on a stale or torn file.

    {b Trust.}  The checksum guards against {e accidental}
    corruption, not tampering: anyone who can write the file can
    also write a matching digest, and [Marshal.from_string] on
    crafted bytes is memory-unsafe.  The snapshot path must therefore
    be private to the daemon — {!save} creates it [0o600], and it
    should live in a directory other users cannot write. *)

type payload = {
  equiv : Proto.verdict Mineq_engine.Memo.entry array;
  lint : Proto.lint_cached Mineq_engine.Memo.entry array;
  blocking : Proto.blocking_cached Mineq_engine.Memo.entry array;
}

val empty : payload

val entry_count : payload -> int

val version : int
(** Bumped whenever {!payload} (or anything it references) changes
    shape; older files are rejected with {!Stale_version} rather than
    unmarshalled into the wrong layout. *)

type error =
  | Missing  (** no file at the path *)
  | Bad_magic  (** not a snapshot file *)
  | Stale_version of int  (** written by a different payload layout *)
  | Truncated  (** shorter than its header claims *)
  | Bad_checksum  (** payload bytes do not match the stored MD5 *)
  | Io of string  (** open/read failure *)

val error_to_string : error -> string

exception Injected_crash
(** Raised by {!save} when [crash_after] is set — the write-behind
    durability tests' stand-in for a kill arriving mid-write. *)

val save : ?version:int -> ?crash_after:int -> path:string -> payload -> unit
(** Atomic save: temp file (created [0o600]) + rename.  [version]
    overrides the header version (tests of stale-version rejection).
    [crash_after n] stops after writing [n] bytes of the temp file
    and raises {!Injected_crash} without renaming — the file at
    [path] is untouched. *)

val load : path:string -> (payload, error) result
(** Unmarshals only after magic, version and checksum pass; the file
    must come from a trusted {!save} (see the trust note above). *)
