module Memo = Mineq_engine.Memo

type payload = {
  equiv : Proto.verdict Memo.entry array;
  lint : Proto.lint_cached Memo.entry array;
  blocking : Proto.blocking_cached Memo.entry array;
}

let empty = { equiv = [||]; lint = [||]; blocking = [||] }

let entry_count p =
  Array.length p.equiv + Array.length p.lint + Array.length p.blocking

let magic = "MINEQSNAP"

let version = 1

type error =
  | Missing
  | Bad_magic
  | Stale_version of int
  | Truncated
  | Bad_checksum
  | Io of string

let error_to_string = function
  | Missing -> "no snapshot file"
  | Bad_magic -> "not a mineq snapshot file (bad magic)"
  | Stale_version v ->
      Printf.sprintf "snapshot version %d does not match this binary's %d" v version
  | Truncated -> "snapshot file is shorter than its header claims"
  | Bad_checksum -> "snapshot payload fails its checksum"
  | Io m -> Printf.sprintf "snapshot I/O failure: %s" m

exception Injected_crash

let put_be bytes off width v =
  for i = 0 to width - 1 do
    Bytes.set bytes (off + i) (Char.chr ((v lsr (8 * (width - 1 - i))) land 0xff))
  done

let get_be s off width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let header_len = 9 + 4 + 8 + 16

let save ?(version = version) ?crash_after ~path payload =
  let body = Marshal.to_string payload [] in
  let digest = Digest.string body in
  let total = header_len + String.length body in
  let buf = Bytes.create total in
  Bytes.blit_string magic 0 buf 0 9;
  put_be buf 9 4 version;
  put_be buf 13 8 (String.length body);
  Bytes.blit_string digest 0 buf 21 16;
  Bytes.blit_string body 0 buf header_len (String.length body);
  let tmp = path ^ ".tmp" in
  (* 0o600: the payload is Marshal data, and [load] trusts it once
     the checksum matches — nobody else should be able to write (or
     read) the file.  See the mli's trust note. *)
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o600 tmp in
  (match crash_after with
  | Some n when n < total ->
      (* Simulated kill: flush a prefix and abandon the temp file
         without renaming — the snapshot at [path] must survive. *)
      output_bytes oc (Bytes.sub buf 0 (max 0 n));
      close_out oc;
      raise Injected_crash
  | _ -> ());
  output_bytes oc buf;
  close_out oc;
  Sys.rename tmp path

let load ~path =
  if not (Sys.file_exists path) then Error Missing
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let size = in_channel_length ic in
          if size < header_len then
            if size >= 9 then begin
              let m = really_input_string ic 9 in
              if m <> magic then Error Bad_magic else Error Truncated
            end
            else Error Bad_magic
          else begin
            let header = really_input_string ic header_len in
            if String.sub header 0 9 <> magic then Error Bad_magic
            else begin
              let v = get_be header 9 4 in
              if v <> version then Error (Stale_version v)
              else begin
                let body_len = get_be header 13 8 in
                let digest = String.sub header 21 16 in
                if body_len < 0 || size - header_len < body_len then Error Truncated
                else begin
                  let body = really_input_string ic body_len in
                  if Digest.string body <> digest then Error Bad_checksum
                  else Ok (Marshal.from_string body 0 : payload)
                end
              end
            end
          end)
    with
    | result -> result
    | exception Sys_error m -> Error (Io m)
    | exception End_of_file -> Error Truncated
    | exception Failure m -> Error (Io m)
    | exception Invalid_argument m -> Error (Io m)
