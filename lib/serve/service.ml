module Memo = Mineq_engine.Memo
module Seeds = Mineq_engine.Seeds
open Mineq
open Proto

type t = {
  equiv : Proto.verdict Memo.t;
  lint : Proto.lint_cached Memo.t;
  blocking : Proto.blocking_cached Memo.t;
  metrics : Metrics.t;
  networks : (string, Mi_digraph.t) Hashtbl.t;
  networks_m : Mutex.t;
  mutable note : string;
  note_m : Mutex.t;
}

let create () =
  { equiv = Memo.create ~keying:Memo.Fingerprint ();
    lint = Memo.create ();
    blocking = Memo.create ();
    metrics = Metrics.create ();
    networks = Hashtbl.create 64;
    networks_m = Mutex.create ();
    note = "cold";
    note_m = Mutex.create ()
  }

let metrics t = t.metrics

let snapshot_note t =
  Mutex.lock t.note_m;
  let n = t.note in
  Mutex.unlock t.note_m;
  n

let set_note t n =
  Mutex.lock t.note_m;
  t.note <- n;
  Mutex.unlock t.note_m

let note_snapshot_error t m = set_note t (Printf.sprintf "load failed: %s" m)

(* Network resolution ------------------------------------------------

   The same specification grammar as the CLI's NETWORK argument, plus
   inline spec text.  Parse results (with their lazily packed CSR
   forms) stay resident, so only a spec's first appearance pays
   construction. *)

let parse_named spec ~n =
  match Classical.of_name spec with
  | Some kind -> Ok (Classical.network kind ~n)
  | None -> (
      let seeded name build = function
        | Some s -> Ok (build (Seeds.state s) ~n)
        | None -> Error (Printf.sprintf "%s:SEED needs an integer seed" name)
      in
      match String.split_on_char ':' spec with
      | [ "random"; seed ] -> seeded "random" Link_spec.random_network (int_of_string_opt seed)
      | [ "pipid"; seed ] ->
          seeded "pipid" Link_spec.random_pipid_network (int_of_string_opt seed)
      | [ "buddy"; seed ] ->
          seeded "buddy" Counterexample.random_buddy_network (int_of_string_opt seed)
      | _ ->
          Error
            (Printf.sprintf
               "unknown network %S (expected a classical name, random:SEED, pipid:SEED or \
                buddy:SEED)"
               spec))

let resident t key build =
  Mutex.lock t.networks_m;
  match Hashtbl.find_opt t.networks key with
  | Some g ->
      Mutex.unlock t.networks_m;
      Ok g
  | None -> (
      Mutex.unlock t.networks_m;
      (* Build outside the lock: parsing is pure and deterministic, so
         a racing duplicate build is harmless and the first insert
         wins. *)
      match build () with
      | Error _ as e -> e
      | Ok g ->
          Mutex.lock t.networks_m;
          let g =
            match Hashtbl.find_opt t.networks key with
            | Some g0 -> g0
            | None ->
                Hashtbl.add t.networks key g;
                g
          in
          Mutex.unlock t.networks_m;
          Ok g)

let network_of_spec t ~spec ~n =
  resident t (Printf.sprintf "%s@%d" spec n) (fun () -> parse_named spec ~n)

let network_of_inline t text =
  resident t ("inline:" ^ Digest.string text) (fun () ->
      match Spec_io.of_string text with
      | Ok g -> Ok g
      | Error e -> Error (Spec_io.error_to_string e))

let resolve t (r : Proto.request) =
  match (r.network, r.spec) with
  | Some spec, None -> network_of_spec t ~spec ~n:r.n
  | None, Some text -> network_of_inline t text
  | Some _, Some _ -> Error "give either \"network\" or \"spec\", not both"
  | None, None -> Error "request needs a \"network\" name or inline \"spec\" text"

(* Verdict computation ------------------------------------------------ *)

let verdict_of g : Proto.verdict =
  let v = Equivalence.by_characterization g in
  { equivalent = v.Equivalence.equivalent; banyan = v.Equivalence.banyan;
    detail = v.Equivalence.detail
  }

let cached_verdict t g = Memo.find_or_compute t.equiv g verdict_of

let lint_of g : Proto.lint_cached =
  let module A = Mineq_analysis in
  let report = A.Lint.run g in
  let parsed =
    match Proto.json_of_string (A.Report.to_json report) with
    | Ok v -> v
    | Error _ -> Proto.Null (* unreachable: Report emits valid JSON *)
  in
  { report = parsed; errors = A.Lint.errors report; warnings = A.Lint.warnings report;
    infos = A.Lint.infos report
  }

let blocking_of g : Proto.blocking_cached =
  let module V = Mineq_route_verify in
  match Mineq_route.Bit_follow.of_network g with
  | None -> { delta = false; rows = [] }
  | Some router ->
      { delta = true;
        rows =
          List.map
            (fun ((tr : V.Certify.traffic), result) ->
              (tr.V.Certify.name, Format.asprintf "%a" V.Certify.pp_result result))
            (V.Certify.survey_classes router)
      }

(* Request evaluation ------------------------------------------------- *)

let bad_request ~id message =
  Proto.error_response ~id ~code:"MINEQ-S003" ~message

let with_network t r f =
  match resolve t r with
  | Error m -> bad_request ~id:r.Proto.id m
  | Ok g -> f g

let handle_equiv t (r : Proto.request) =
  with_network t r (fun g ->
      let respond name (v : Proto.verdict) =
        Proto.ok_response ~id:r.id
          [ ("op", Str "equiv");
            ("method", Str name);
            ("equivalent", Bool v.equivalent);
            ("banyan", Bool v.banyan);
            ("detail", Str v.detail)
          ]
      in
      match Option.value r.method_ ~default:"characterization" with
      | "characterization" -> respond "characterization" (cached_verdict t g)
      | ("independence" | "isomorphism") as name ->
          (* Label-sensitive deciders: computed fresh, never cached
             under the fingerprint keying (see the mli). *)
          let m =
            if String.equal name "independence" then Equivalence.Independence
            else Equivalence.Isomorphism
          in
          let v = Equivalence.decide m g in
          respond name
            { equivalent = v.Equivalence.equivalent; banyan = v.Equivalence.banyan;
              detail = v.Equivalence.detail
            }
      | other -> bad_request ~id:r.id (Printf.sprintf "unknown method %S" other))

let handle_banyan t (r : Proto.request) =
  with_network t r (fun g ->
      let v = cached_verdict t g in
      Proto.ok_response ~id:r.id [ ("op", Str "banyan"); ("banyan", Bool v.banyan) ])

let handle_lint t (r : Proto.request) =
  with_network t r (fun g ->
      let l = Memo.find_or_compute t.lint g lint_of in
      Proto.ok_response ~id:r.id
        [ ("op", Str "lint");
          ("errors", Int l.errors);
          ("warnings", Int l.warnings);
          ("infos", Int l.infos);
          ("exit_code", Int (if l.errors = 0 && l.warnings = 0 then 0 else 1));
          ("report", l.report)
        ])

let handle_blocking t (r : Proto.request) =
  with_network t r (fun g ->
      let b = Memo.find_or_compute t.blocking g blocking_of in
      Proto.ok_response ~id:r.id
        [ ("op", Str "blocking");
          ("delta", Bool b.delta);
          ( "classes",
            Arr
              (List.map
                 (fun (name, verdict) ->
                   Proto.Obj [ ("class", Proto.Str name); ("verdict", Proto.Str verdict) ])
                 b.rows) )
        ])

let cache_sizes t = (Memo.size t.equiv, Memo.size t.lint, Memo.size t.blocking)

let pooled_rate hits misses =
  let total = hits + misses in
  if total = 0 then nan else float_of_int hits /. float_of_int total

let hit_rate t =
  pooled_rate
    (Memo.hits t.equiv + Memo.hits t.lint + Memo.hits t.blocking)
    (Memo.misses t.equiv + Memo.misses t.lint + Memo.misses t.blocking)

let cache_json name memo : string * Proto.json =
  ( name,
    Proto.Obj
      [ ("keying", Proto.Str (Memo.keying_name (Memo.keying memo)));
        ("size", Proto.Int (Memo.size memo));
        ("hits", Proto.Int (Memo.hits memo));
        ("misses", Proto.Int (Memo.misses memo));
        ( "hit_rate",
          let r = Memo.hit_rate memo in
          if Float.is_nan r then Proto.Null else Proto.Float r )
      ] )

let handle_stats t (r : Proto.request) =
  Proto.ok_response ~id:r.id
    [ ("op", Str "stats");
      ("metrics", Metrics.to_json t.metrics);
      ( "caches",
        Obj
          [ cache_json "equiv" t.equiv;
            cache_json "lint" t.lint;
            cache_json "blocking" t.blocking
          ] );
      ( "hit_rate",
        let rate = hit_rate t in
        if Float.is_nan rate then Null else Float rate );
      ("resident_networks", Int (Hashtbl.length t.networks));
      ("snapshot", Str (snapshot_note t))
    ]

let dispatch_op t (r : Proto.request) =
  match r.op with
  | "ping" -> Proto.ok_response ~id:r.id [ ("op", Str "ping"); ("pong", Bool true) ]
  | "equiv" -> handle_equiv t r
  | "banyan" -> handle_banyan t r
  | "lint" -> handle_lint t r
  | "blocking" -> handle_blocking t r
  | "stats" -> handle_stats t r
  | "shutdown" ->
      Proto.ok_response ~id:r.id [ ("op", Str "shutdown"); ("stopping", Bool true) ]
  | other ->
      Proto.error_response ~id:r.id ~code:"MINEQ-S002"
        ~message:(Printf.sprintf "unknown op %S" other)

(* The exception barrier.  Kernels below validate with
   [Invalid_argument]/[Failure], and a pathological request can
   exhaust memory; any of those escaping here would cross the pool
   back onto the event loop and take the whole daemon down with it.
   One bad request costs one [MINEQ-S007] response, nothing more. *)
let handle t (r : Proto.request) =
  match dispatch_op t r with
  | response -> response
  | exception e ->
      let detail =
        match e with
        | Invalid_argument m | Failure m -> m
        | Out_of_memory -> "out of memory"
        | Stack_overflow -> "stack overflow"
        | e -> Printexc.to_string e
      in
      Proto.error_response ~id:r.id ~code:"MINEQ-S007"
        ~message:("internal error: " ^ detail)

(* Snapshots ---------------------------------------------------------- *)

let to_payload t : Snapshot.payload =
  { equiv = Memo.export t.equiv;
    lint = Memo.export t.lint;
    blocking = Memo.export t.blocking
  }

let adopt t (p : Snapshot.payload) =
  let adopted =
    Memo.import t.equiv p.equiv + Memo.import t.lint p.lint
    + Memo.import t.blocking p.blocking
  in
  set_note t (Printf.sprintf "loaded %d entries" adopted);
  adopted
