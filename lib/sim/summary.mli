(** Streaming summary statistics (Welford) and fixed-width histograms
    for simulation experiments: run a metric over many seeds, report
    mean, standard deviation and confidence half-width without storing
    the samples. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float

val max_value : t -> float

val half_width_95 : t -> float
(** Normal-approximation 95% confidence half-width,
    [1.96 * stddev / sqrt count]; [nan] with fewer than two samples. *)

val of_samples : float list -> t

val pp : Format.formatter -> t -> unit
(** ["mean ± hw (n=..)"]. *)

(** {1 Histograms} *)

module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  (** Uniform buckets on [lo, hi); out-of-range samples land in the
      first/last bucket. *)

  val add : h -> float -> unit

  val counts : h -> int array

  val total : h -> int

  val quantile : h -> float -> float
  (** Approximate quantile (bucket midpoint), [q in [0, 1]].  [nan]
      when empty. *)

  val pp : Format.formatter -> h -> unit
  (** One line per non-empty bucket with a crude bar. *)
end

(** {1 Replicated simulation runs} *)

val replicate :
  ?derive:(int -> Random.State.t) -> seeds:int list -> (Random.State.t -> float) -> t
(** Run a seeded metric once per seed and summarize.  [derive] maps
    a seed to its state ([Random.State.make [| seed |]] by default);
    batch callers plug in [Mineq_engine.Seeds.derive] so replication
    streams match the parallel engine's ([Mineq_engine.Batch.replicate]
    is the parallel, engine-seeded version of this function). *)
