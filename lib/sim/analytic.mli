(** Patel's analytic throughput model for unbuffered MINs
    (J.H. Patel, "Performance of processor-memory interconnections
    for multiprocessors", IEEE ToC 1981).

    Under uniform random traffic, if each of a cell's two output
    links is requested independently with probability [p/2] when its
    inputs carry requests with probability [p], the acceptance
    recurrence per stage of 2x2 crossbars is

    {[ p_{i+1} = 1 - (1 - p_i / 2)^2 ]}

    and the network's normalized throughput after [n] stages is
    [p_n / p_0 * offered].  The model is memoryless: a blocked packet
    vanishes.  The capacity-1 drop-on-full simulator retains
    arbitration losers for one retry, so it runs slightly {e above}
    this model — experiment X14 measures the gap (2–20% over
    n = 2..7). *)

val stage_recurrence : float -> float
(** One application of the recurrence. *)

val acceptance : n:int -> offered:float -> float
(** Probability that a packet injected at rate [offered] survives all
    [n] stages. *)

val throughput : n:int -> offered:float -> float
(** Delivered packets per terminal per cycle: [offered * acceptance].
    Requires [0 <= offered <= 1]. *)

val saturation : n:int -> float
(** [throughput ~n ~offered:1.0] — the classical asymptotic
    [~ 4 / (n + 3)] behaviour. *)
