let stage_recurrence p =
  let miss = 1.0 -. (p /. 2.0) in
  1.0 -. (miss *. miss)

let acceptance ~n ~offered =
  if offered < 0.0 || offered > 1.0 then invalid_arg "Analytic.acceptance: offered in [0,1]";
  let rec go i p = if i = n then p else go (i + 1) (stage_recurrence p) in
  if offered = 0.0 then 1.0 else go 0 offered /. offered

let throughput ~n ~offered = offered *. acceptance ~n ~offered

let saturation ~n = throughput ~n ~offered:1.0
