module Mi_digraph = Mineq.Mi_digraph
module Routing = Mineq.Routing
module Perm = Mineq_perm.Perm

type schedule = { rounds : (int * int) list list; round_count : int }

let path_links g (input, output) =
  match Routing.route g ~input ~output with
  | None -> failwith "Circuit: unroutable input/output pair"
  | Some p ->
      let n = Mi_digraph.stages g in
      let per = Mi_digraph.nodes_per_stage g in
      List.init n (fun s -> (((s * per) + p.cells.(s)) * 2) + p.ports.(s))

let greedy_schedule g pairs =
  let links = List.map (fun pair -> (pair, path_links g pair)) pairs in
  let n_links = Mi_digraph.stages g * Mi_digraph.nodes_per_stage g * 2 in
  let rec rounds acc pending =
    match pending with
    | [] -> List.rev acc
    | _ ->
        let used = Array.make n_links false in
        let taken, left =
          List.fold_left
            (fun (taken, left) ((_, ls) as item) ->
              if List.exists (fun l -> used.(l)) ls then (taken, item :: left)
              else begin
                List.iter (fun l -> used.(l) <- true) ls;
                (item :: taken, left)
              end)
            ([], []) pending
        in
        assert (taken <> []);
        rounds (List.rev_map fst taken :: acc) (List.rev left)
  in
  let rounds = rounds [] links in
  { rounds; round_count = List.length rounds }

let rounds_needed g p =
  let terminals = Mi_digraph.inputs g in
  if Perm.size p <> terminals then invalid_arg "Circuit.rounds_needed: permutation size";
  let pairs = List.init terminals (fun i -> (i, Perm.apply p i)) in
  (greedy_schedule g pairs).round_count

let average_rounds rng g ~samples =
  let terminals = Mi_digraph.inputs g in
  let total = ref 0 in
  for _ = 1 to samples do
    total := !total + rounds_needed g (Perm.random rng terminals)
  done;
  float_of_int !total /. float_of_int samples

let identity_is_admissible g =
  rounds_needed g (Perm.identity (Mi_digraph.inputs g)) = 1
