(** Cycle-accurate packet simulation of an MI-digraph operated as a
    packet-switched MIN with 2x2 buffered crossbar switches.

    Model (standard input-queued MIN simulator):
    - each cell has one FIFO per input link, of [buffer_capacity]
      packets;
    - each cycle, every cell forwards the head packet of each input
      FIFO toward its requested out-port; when both heads request the
      same port, a per-cell round-robin arbiter picks one and the
      other stalls;
    - a forwarded packet needs a free slot in the downstream FIFO
      (credit-based backpressure) unless [drop_on_full] is set, in
      which case it is dropped instead of stalling;
    - stages are processed last-to-first within a cycle, so a slot
      freed this cycle is usable this cycle (unit pipeline latency);
    - injection: each terminal independently injects with probability
      [injection_rate] per cycle, destination drawn from [pattern];
      a full first-stage FIFO refuses the injection (counted, so
      offered vs accepted load is visible).

    Routing uses each packet's unique Banyan path, precomputed per
    (source cell, destination): on delta networks this coincides with
    destination-tag routing. *)

type config = {
  buffer_capacity : int;  (** >= 1 *)
  injection_rate : float;  (** [0, 1] per terminal per cycle *)
  pattern : Traffic.t;
  warmup : int;  (** cycles before statistics start *)
  cycles : int;  (** measured cycles *)
  drop_on_full : bool;  (** drop instead of backpressure stall *)
}

val default_config : config
(** capacity 4, rate 0.5, uniform, 200 warmup, 1000 measured,
    backpressure. *)

type stats = {
  offered : int;  (** injection attempts during measurement *)
  refused : int;  (** injections refused at a full source FIFO *)
  injected : int;
  delivered : int;
  dropped : int;
  latency_sum : int;
  latency_max : int;
  measured_cycles : int;
  terminals : int;
}

val throughput : stats -> float
(** Delivered packets per terminal per cycle. *)

val mean_latency : stats -> float
(** Mean delivery latency in cycles ([nan] if nothing delivered). *)

val run : ?config:config -> Random.State.t -> Mineq.Mi_digraph.t -> stats
(** Simulate.  Raises [Failure] if the network is not Banyan (packets
    would not have unique paths). *)

val saturation_sweep :
  ?config:config ->
  Random.State.t ->
  Mineq.Mi_digraph.t ->
  rates:float list ->
  (float * float * float) list
(** [(rate, throughput, mean latency)] per injection rate — the
    classic load/latency curve. *)
