module Mi_digraph = Mineq.Mi_digraph
module Routing = Mineq.Routing

type config = {
  buffer_capacity : int;
  injection_rate : float;
  pattern : Traffic.t;
  warmup : int;
  cycles : int;
  drop_on_full : bool;
}

let default_config =
  { buffer_capacity = 4;
    injection_rate = 0.5;
    pattern = Traffic.uniform;
    warmup = 200;
    cycles = 1000;
    drop_on_full = false
  }

type stats = {
  offered : int;
  refused : int;
  injected : int;
  delivered : int;
  dropped : int;
  latency_sum : int;
  latency_max : int;
  measured_cycles : int;
  terminals : int;
}

let throughput s =
  float_of_int s.delivered /. float_of_int (s.measured_cycles * s.terminals)

let mean_latency s =
  if s.delivered = 0 then nan else float_of_int s.latency_sum /. float_of_int s.delivered

type packet = { dst : int; word : int; born : int }

(* Port words for every (source cell, destination terminal): the
   packet's full routing decision string, stage-1 choice in the most
   significant bit. *)
let routing_words g =
  let per = Mi_digraph.nodes_per_stage g in
  Array.init per (fun cell ->
      let paths = Routing.route_all_from g ~input:(2 * cell) in
      Array.map
        (function
          | Some p -> Routing.port_word p
          | None -> failwith "Network_sim: network is not Banyan (missing path)")
        paths)

(* Input-port index at the downstream cell for each (stage, cell,
   out-port): which of the child's two FIFOs this link feeds.  Flat
   packed tables (Packed.downstream): entry [r * cell + out_port]
   encodes [child * r + in_port], which for this simulator's binary
   networks (r = 2) is [(child lsl 1) lor in_port] — so the
   per-packet hop in the cycle loop is two int reads and a shift, no
   tuple boxing. *)
let downstream_ports g = Mineq.Packed.downstream (Mi_digraph.packed g)

let run ?(config = default_config) rng g =
  if config.buffer_capacity < 1 then invalid_arg "Network_sim.run: capacity must be >= 1";
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  let terminals = Mi_digraph.inputs g in
  let words = routing_words g in
  let down = downstream_ports g in
  (* queues.(s).(x).(p): FIFO of the p-th input of cell x at stage s. *)
  let queues = Array.init n (fun _ -> Array.init per (fun _ -> [| Queue.create (); Queue.create () |])) in
  let arbiter = Array.init n (fun _ -> Array.make per 0) in
  let stats =
    ref
      { offered = 0;
        refused = 0;
        injected = 0;
        delivered = 0;
        dropped = 0;
        latency_sum = 0;
        latency_max = 0;
        measured_cycles = config.cycles;
        terminals
      }
  in
  let measuring cycle = cycle >= config.warmup in
  let out_port pkt stage = (pkt.word lsr (n - 1 - stage)) land 1 in
  let deliver cycle pkt =
    if measuring cycle then begin
      let s = !stats in
      let latency = cycle - pkt.born + 1 in
      stats :=
        { s with
          delivered = s.delivered + 1;
          latency_sum = s.latency_sum + latency;
          latency_max = max s.latency_max latency
        }
    end
  in
  let drop cycle =
    if measuring cycle then stats := { !stats with dropped = !stats.dropped + 1 }
  in
  let step cycle =
    (* Last stage first so that space freed downstream is visible
       upstream within the same cycle. *)
    for s = n - 1 downto 0 do
      for x = 0 to per - 1 do
        let q = queues.(s).(x) in
        let head p = if Queue.is_empty q.(p) then None else Some (Queue.peek q.(p)) in
        let wants p = Option.map (fun pkt -> out_port pkt s) (head p) in
        let first = arbiter.(s).(x) in
        let order = [ first; 1 - first ] in
        let granted = [| false; false |] in
        let port_taken = [| false; false |] in
        List.iter
          (fun p ->
            match wants p with
            | None -> ()
            | Some port ->
                if not port_taken.(port) then begin
                  granted.(p) <- true;
                  port_taken.(port) <- true
                end)
          order;
        (* Move granted heads. *)
        List.iter
          (fun p ->
            if granted.(p) then begin
              let pkt = Queue.peek q.(p) in
              let port = out_port pkt s in
              if s = n - 1 then begin
                ignore (Queue.pop q.(p));
                deliver cycle pkt
              end
              else begin
                let packed_hop = down.(s).((2 * x) + port) in
                let y = packed_hop lsr 1 and in_port = packed_hop land 1 in
                let target = queues.(s + 1).(y).(in_port) in
                if Queue.length target < config.buffer_capacity then begin
                  ignore (Queue.pop q.(p));
                  Queue.add pkt target
                end
                else if config.drop_on_full then begin
                  ignore (Queue.pop q.(p));
                  drop cycle
                end
                (* else: stall in place *)
              end
            end)
          order;
        (* Rotate priority when there was any contention. *)
        if granted.(first) || granted.(1 - first) then arbiter.(s).(x) <- 1 - first
      done
    done;
    (* Injection. *)
    for t = 0 to terminals - 1 do
      if Random.State.float rng 1.0 < config.injection_rate then begin
        if measuring cycle then stats := { !stats with offered = !stats.offered + 1 };
        let dst = Traffic.draw config.pattern rng ~terminals ~src:t in
        let cell = t / 2 and port = t land 1 in
        let q = queues.(0).(cell).(port) in
        if Queue.length q < config.buffer_capacity then begin
          Queue.add { dst; word = words.(cell).(dst); born = cycle } q;
          if measuring cycle then stats := { !stats with injected = !stats.injected + 1 }
        end
        else if measuring cycle then stats := { !stats with refused = !stats.refused + 1 }
      end
    done
  in
  for cycle = 0 to config.warmup + config.cycles - 1 do
    step cycle
  done;
  !stats

let saturation_sweep ?(config = default_config) rng g ~rates =
  List.map
    (fun rate ->
      let s = run ~config:{ config with injection_rate = rate } rng g in
      (rate, throughput s, mean_latency s))
    rates
