(** Circuit-switched analysis: routing whole permutations as
    simultaneous link-disjoint paths (the operating mode of the
    array-processor alignment networks the classical MINs were
    designed for — Lawrie's Omega aligning data for an array
    processor, Batcher's Flip in STARAN).

    A permutation is {e admissible} when all [N] paths are pairwise
    link-disjoint; an inadmissible permutation is realized in several
    passes. *)

type schedule = {
  rounds : (int * int) list list;
      (** each round: the (input, output) pairs routed together *)
  round_count : int;
}

val greedy_schedule : Mineq.Mi_digraph.t -> (int * int) list -> schedule
(** First-fit decreasing-free greedy: scan the pending pairs in
    order, accept a pair into the current round when its unique path
    shares no link with the paths already accepted; repeat until all
    pairs are placed.  Raises [Failure] on unroutable pairs. *)

val rounds_needed : Mineq.Mi_digraph.t -> Mineq_perm.Perm.t -> int
(** Rounds of {!greedy_schedule} for a full permutation. *)

val average_rounds :
  Random.State.t -> Mineq.Mi_digraph.t -> samples:int -> float
(** Mean rounds over uniformly random permutations. *)

val identity_is_admissible : Mineq.Mi_digraph.t -> bool
(** Does the identity permutation pass in one round?  Always [false]
    on a Banyan MI-digraph under this straight terminal wiring: inputs
    [2i] and [2i+1] share their first-stage cell and target outputs
    sharing a last-stage cell, so their unique paths coincide on every
    inter-stage link.  (The classical "Omega passes the identity"
    statements assume the shuffled input wiring, which the MI-digraph
    abstraction deliberately drops.)  Kept as a sanity check of the
    conflict analysis. *)
