type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t = if t.n = 0 then nan else t.min_v

let max_value t = if t.n = 0 then nan else t.max_v

let half_width_95 t =
  if t.n < 2 then nan else 1.96 *. stddev t /. sqrt (float_of_int t.n)

let of_samples xs =
  let t = create () in
  List.iter (add t) xs;
  t

let pp ppf t =
  if t.n = 0 then Format.pp_print_string ppf "(no samples)"
  else if t.n = 1 then Format.fprintf ppf "%.4f (n=1)" t.mean
  else Format.fprintf ppf "%.4f ± %.4f (n=%d)" t.mean (half_width_95 t) t.n

module Histogram = struct
  type h = { lo : float; hi : float; buckets : int array; mutable total : int }

  let create ~lo ~hi ~buckets =
    if buckets < 1 || not (lo < hi) then invalid_arg "Histogram.create: bad shape";
    { lo; hi; buckets = Array.make buckets 0; total = 0 }

  let bucket_of h x =
    let k = Array.length h.buckets in
    let raw = int_of_float (float_of_int k *. ((x -. h.lo) /. (h.hi -. h.lo))) in
    max 0 (min (k - 1) raw)

  let add h x =
    h.buckets.(bucket_of h x) <- h.buckets.(bucket_of h x) + 1;
    h.total <- h.total + 1

  let counts h = Array.copy h.buckets

  let total h = h.total

  let bucket_mid h i =
    let k = float_of_int (Array.length h.buckets) in
    h.lo +. ((float_of_int i +. 0.5) /. k *. (h.hi -. h.lo))

  let quantile h q =
    if h.total = 0 then nan
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target = q *. float_of_int h.total in
      let rec find i acc =
        if i = Array.length h.buckets - 1 then bucket_mid h i
        else begin
          let acc = acc + h.buckets.(i) in
          if float_of_int acc >= target then bucket_mid h i else find (i + 1) acc
        end
      in
      find 0 0
    end

  let pp ppf h =
    let widest = Array.fold_left max 1 h.buckets in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          let bar = String.make (max 1 (c * 40 / widest)) '#' in
          Format.fprintf ppf "[%8.2f, %8.2f) %6d %s@."
            (h.lo +. (float_of_int i /. float_of_int (Array.length h.buckets) *. (h.hi -. h.lo)))
            (h.lo
            +. (float_of_int (i + 1) /. float_of_int (Array.length h.buckets) *. (h.hi -. h.lo)))
            c bar
        end)
      h.buckets
end

let default_derive seed = Random.State.make [| seed |]

let replicate ?(derive = default_derive) ~seeds metric =
  of_samples (List.map (fun seed -> metric (derive seed)) seeds)
