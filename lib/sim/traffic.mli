(** Traffic patterns for the MIN simulator.

    A pattern maps an injecting input terminal to a destination
    terminal, possibly randomly.  All randomness flows through the
    caller-provided [Random.State.t] so experiments are exactly
    reproducible. *)

type t

val uniform : t
(** Destination uniform over all terminals. *)

val permutation : Mineq_perm.Perm.t -> t
(** Fixed destination per source. *)

val hotspot : fraction:float -> target:int -> t
(** With probability [fraction] the destination is [target],
    otherwise uniform.  Models a contended memory module. *)

val bit_reversal : n:int -> t
(** Destination = bit-reversed source (the classic adversarial
    pattern for shuffle-based networks). *)

val transpose : n:int -> t
(** Destination = source rotated by [n/2] bits (matrix transpose). *)

val name : t -> string

val draw : t -> Random.State.t -> terminals:int -> src:int -> int
(** The destination of a packet injected at [src]. *)
