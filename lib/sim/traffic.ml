module Perm = Mineq_perm.Perm

type t =
  | Uniform
  | Permutation of Perm.t
  | Hotspot of { fraction : float; target : int }
  | Bit_reversal of int
  | Transpose of int

let uniform = Uniform

let permutation p = Permutation p

let hotspot ~fraction ~target =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Traffic.hotspot: bad fraction";
  Hotspot { fraction; target }

let bit_reversal ~n = Bit_reversal n

let transpose ~n = Transpose n

let name = function
  | Uniform -> "uniform"
  | Permutation _ -> "permutation"
  | Hotspot { fraction; target } -> Printf.sprintf "hotspot(%.2f@%d)" fraction target
  | Bit_reversal _ -> "bit-reversal"
  | Transpose _ -> "transpose"

let reverse_bits ~n x =
  let rec go i acc = if i = n then acc else go (i + 1) ((acc lsl 1) lor ((x lsr i) land 1)) in
  go 0 0

let rotate_bits ~n ~by x =
  let by = by mod n in
  ((x lsl by) lor (x lsr (n - by))) land ((1 lsl n) - 1)

let draw t rng ~terminals ~src =
  match t with
  | Uniform -> Random.State.int rng terminals
  | Permutation p -> Perm.apply p src
  | Hotspot { fraction; target } ->
      if Random.State.float rng 1.0 < fraction then target else Random.State.int rng terminals
  | Bit_reversal n -> reverse_bits ~n src
  | Transpose n -> rotate_bits ~n ~by:(n / 2) src
