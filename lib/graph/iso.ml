(* Colour refinement: colours are dense ints; a refinement round maps
   each vertex to the signature (colour, sorted succ colours, sorted
   pred colours) and re-densifies.  Stops when the number of colours
   stops growing. *)

let refine_colours g =
  let n = Digraph.vertices g in
  let initial v = (Digraph.in_degree g v, Digraph.out_degree g v) in
  let densify sigs =
    let tbl = Hashtbl.create 16 in
    let next = ref 0 in
    Array.map
      (fun s ->
        match Hashtbl.find_opt tbl s with
        | Some c -> c
        | None ->
            let c = !next in
            incr next;
            Hashtbl.add tbl s c;
            c)
      sigs
  in
  let cur = ref (densify (Array.init n (fun v -> (initial v, [], [])))) in
  let classes colours = Array.fold_left (fun acc c -> max acc (c + 1)) 0 colours in
  let rec loop () =
    let c = !cur in
    let sig_of v =
      let outs = List.sort compare (List.map (fun w -> c.(w)) (Digraph.succ g v)) in
      let ins = List.sort compare (List.map (fun w -> c.(w)) (Digraph.pred g v)) in
      ((c.(v), 0), outs, ins)
    in
    let next = densify (Array.init n sig_of) in
    if classes next > classes c then begin
      cur := next;
      loop ()
    end
  in
  loop ();
  !cur

let colour_histogram g =
  let colours = refine_colours g in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun c -> Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    colours;
  Hashtbl.fold (fun c k acc -> (c, k) :: acc) tbl [] |> List.sort compare

(* Align colourings of two graphs: refine the disjoint union so colour
   ids are comparable across the graphs. *)
let joint_colours g1 g2 =
  let n1 = Digraph.vertices g1 and n2 = Digraph.vertices g2 in
  let arcs =
    Digraph.arcs g1 @ List.map (fun (u, v) -> (u + n1, v + n1)) (Digraph.arcs g2)
  in
  let union = Digraph.create ~vertices:(n1 + n2) arcs in
  let colours = refine_colours union in
  (Array.sub colours 0 n1, Array.sub colours n1 n2)

exception Node_limit

let search ~limit ~on_solution g1 g2 =
  let n = Digraph.vertices g1 in
  if n <> Digraph.vertices g2 || Digraph.arc_count g1 <> Digraph.arc_count g2 then ()
  else begin
    let c1, c2 = joint_colours g1 g2 in
    let hist colours =
      let tbl = Hashtbl.create 16 in
      Array.iter
        (fun c -> Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
        colours;
      Hashtbl.fold (fun c k acc -> (c, k) :: acc) tbl [] |> List.sort compare
    in
    if hist c1 <> hist c2 then ()
    else begin
      let mapping = Array.make n (-1) in
      let inverse = Array.make n (-1) in
      let used = Array.make n false in
      let nodes = ref 0 in
      (* Order vertices of g1: prefer vertices adjacent to already
         ordered ones, tie-break by rarest colour class. *)
      let class_size = Hashtbl.create 16 in
      Array.iter
        (fun c ->
          Hashtbl.replace class_size c
            (1 + Option.value ~default:0 (Hashtbl.find_opt class_size c)))
        c1;
      let order = Array.make n (-1) in
      let placed = Array.make n false in
      let adjacency_bonus = Array.make n 0 in
      for i = 0 to n - 1 do
        let best = ref (-1) in
        let best_key = ref (max_int, max_int) in
        for v = 0 to n - 1 do
          if not placed.(v) then begin
            let key = (-adjacency_bonus.(v), Hashtbl.find class_size c1.(v)) in
            if key < !best_key then begin
              best_key := key;
              best := v
            end
          end
        done;
        let v = !best in
        order.(i) <- v;
        placed.(v) <- true;
        List.iter
          (fun w -> adjacency_bonus.(w) <- adjacency_bonus.(w) + 1)
          (Digraph.succ g1 v @ Digraph.pred g1 v)
      done;
      let compatible u v =
        (* Both directions of the check are needed: u's arcs into the
           mapped region must exist at v, and v's arcs into the mapped
           region must exist at u (otherwise v could have extra arcs to
           already-mapped vertices that u lacks). *)
        c1.(u) = c2.(v)
        && Digraph.out_degree g1 u = Digraph.out_degree g2 v
        && Digraph.in_degree g1 u = Digraph.in_degree g2 v
        (* Self-loops must be checked here: u is not yet in the
           mapping, so the neighbour scans below skip the u -> u arc. *)
        && Digraph.arc_multiplicity g1 u u = Digraph.arc_multiplicity g2 v v
        && List.for_all
             (fun w ->
               mapping.(w) < 0
               || Digraph.arc_multiplicity g1 u w = Digraph.arc_multiplicity g2 v mapping.(w))
             (Digraph.succ g1 u)
        && List.for_all
             (fun w ->
               mapping.(w) < 0
               || Digraph.arc_multiplicity g1 w u = Digraph.arc_multiplicity g2 mapping.(w) v)
             (Digraph.pred g1 u)
        && List.for_all
             (fun w' ->
               inverse.(w') < 0
               || Digraph.arc_multiplicity g2 v w' = Digraph.arc_multiplicity g1 u inverse.(w'))
             (Digraph.succ g2 v)
        && List.for_all
             (fun w' ->
               inverse.(w') < 0
               || Digraph.arc_multiplicity g2 w' v = Digraph.arc_multiplicity g1 inverse.(w') u)
             (Digraph.pred g2 v)
      in
      let rec go i =
        incr nodes;
        if limit > 0 && !nodes > limit then raise Node_limit;
        if i = n then on_solution (Array.copy mapping)
        else begin
          let u = order.(i) in
          for v = 0 to n - 1 do
            if (not used.(v)) && compatible u v then begin
              mapping.(u) <- v;
              inverse.(v) <- u;
              used.(v) <- true;
              go (i + 1);
              mapping.(u) <- -1;
              inverse.(v) <- -1;
              used.(v) <- false
            end
          done
        end
      in
      go 0
    end
  end

exception Found of int array

let is_isomorphism g1 g2 m =
  let n = Digraph.vertices g1 in
  n = Digraph.vertices g2
  && Array.length m = n
  && (let seen = Array.make n false in
      Array.for_all
        (fun v ->
          if v < 0 || v >= n || seen.(v) then false
          else begin
            seen.(v) <- true;
            true
          end)
        m)
  && Digraph.arc_count g1 = Digraph.arc_count g2
  && List.for_all
       (fun (u, v) ->
         Digraph.arc_multiplicity g1 u v = Digraph.arc_multiplicity g2 m.(u) m.(v))
       (Digraph.arcs g1)

let find_isomorphism ?(limit = 0) g1 g2 =
  match search ~limit ~on_solution:(fun m -> raise (Found m)) g1 g2 with
  | () -> None
  | exception Found m ->
      assert (is_isomorphism g1 g2 m);
      Some m
  | exception Node_limit -> failwith "iso: node limit exceeded"

let are_isomorphic ?limit g1 g2 = Option.is_some (find_isomorphism ?limit g1 g2)

let count_automorphisms ?(limit = 0) g =
  let count = ref 0 in
  (match search ~limit ~on_solution:(fun _ -> incr count) g g with
  | () -> ()
  | exception Node_limit -> failwith "iso: node limit exceeded");
  !count
