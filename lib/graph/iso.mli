(** Generic digraph isomorphism by colour refinement plus backtracking.

    This is the "ground truth" (and deliberately expensive) decider
    the paper's characterizations are benchmarked against: it makes no
    use of stage structure, labels, or independence. *)

val refine_colours : Digraph.t -> int array
(** Stable colouring under 1-dimensional Weisfeiler–Leman refinement:
    initial colour = (in-degree, out-degree); repeatedly split classes
    by the multiset of successor and predecessor colours until stable.
    Isomorphic vertices always share a colour (the converse may fail). *)

val colour_histogram : Digraph.t -> (int * int) list
(** [(colour, class size)] pairs of the stable colouring, sorted —
    a cheap isomorphism invariant. *)

val find_isomorphism : ?limit:int -> Digraph.t -> Digraph.t -> int array option
(** [find_isomorphism g1 g2] is [Some m] with [m] a bijection such
    that [u -> v] is an arc of [g1] with multiplicity [k] iff
    [m.(u) -> m.(v)] has multiplicity [k] in [g2]; [None] if no
    isomorphism exists.  [limit] bounds the number of backtracking
    nodes explored (default unlimited); raises [Failure "iso: node
    limit exceeded"] when hit, so callers can distinguish "no" from
    "gave up". *)

val are_isomorphic : ?limit:int -> Digraph.t -> Digraph.t -> bool

val is_isomorphism : Digraph.t -> Digraph.t -> int array -> bool
(** Certificate check: verifies a claimed mapping preserves vertex
    count and every arc multiplicity in both directions. *)

val count_automorphisms : ?limit:int -> Digraph.t -> int
(** Number of automorphisms (backtracking enumeration; intended for
    small graphs and the test suite). *)
