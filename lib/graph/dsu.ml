type t = { parent : int array; size : int array; mutable sets : int }

let create n =
  if n < 0 then invalid_arg "Dsu.create: negative size";
  { parent = Array.init n (fun i -> i); size = Array.make n 1; sets = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    (* Path halving. *)
    t.parent.(x) <- t.parent.(p);
    find t t.parent.(x)
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let big, small = if t.size.(ra) >= t.size.(rb) then (ra, rb) else (rb, ra) in
    t.parent.(small) <- big;
    t.size.(big) <- t.size.(big) + t.size.(small);
    t.sets <- t.sets - 1;
    true
  end

let same t a b = find t a = find t b

let set_count t = t.sets

let set_size t x = t.size.(find t x)

let components_of_digraph g =
  (* Consume the adjacency arrays directly ([Digraph.iter_arcs]): the
     arc-list variant allocated a cons cell and a tuple per arc, which
     dominated the union-find work on the worker hot path. *)
  let t = create (Digraph.vertices g) in
  Digraph.iter_arcs g (fun u v -> ignore (union t u v));
  t
