(** Disjoint-set union (union-find) with path halving and union by
    size — the alternative engine for connected-component counting
    (the [P(i,j)] checks), benchmarked against BFS in the x1 ablation
    and cross-validated by the test suite. *)

type t

val create : int -> t
(** [create n] has elements [0 .. n-1], each its own set. *)

val find : t -> int -> int
(** Canonical representative (with path compression). *)

val union : t -> int -> int -> bool
(** Merge the two sets; [false] when already together. *)

val same : t -> int -> int -> bool

val set_count : t -> int
(** Number of disjoint sets. *)

val set_size : t -> int -> int
(** Size of the set containing an element. *)

val components_of_digraph : Digraph.t -> t
(** Union across every arc (ignoring orientation): the sets are the
    connected components of the underlying undirected graph. *)
