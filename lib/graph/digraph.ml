type t = { succ : int array array; pred : int array array }

let compute_pred succ =
  let n = Array.length succ in
  let deg = Array.make n 0 in
  Array.iter (fun outs -> Array.iter (fun v -> deg.(v) <- deg.(v) + 1) outs) succ;
  let pred = Array.map (fun d -> Array.make d 0) deg in
  let fill = Array.make n 0 in
  Array.iteri
    (fun u outs ->
      Array.iter
        (fun v ->
          pred.(v).(fill.(v)) <- u;
          fill.(v) <- fill.(v) + 1)
        outs)
    succ;
  pred

let of_succ succ =
  let n = Array.length succ in
  Array.iter
    (Array.iter (fun v ->
         if v < 0 || v >= n then invalid_arg "Digraph.of_succ: vertex out of range"))
    succ;
  let succ = Array.map Array.copy succ in
  { succ; pred = compute_pred succ }

let create ~vertices arcs =
  if vertices < 0 then invalid_arg "Digraph.create: negative vertex count";
  let deg = Array.make vertices 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= vertices || v < 0 || v >= vertices then
        invalid_arg "Digraph.create: arc endpoint out of range";
      deg.(u) <- deg.(u) + 1)
    arcs;
  let succ = Array.map (fun d -> Array.make d 0) deg in
  let fill = Array.make vertices 0 in
  List.iter
    (fun (u, v) ->
      succ.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1)
    arcs;
  { succ; pred = compute_pred succ }

let vertices g = Array.length g.succ

let arc_count g = Array.fold_left (fun acc outs -> acc + Array.length outs) 0 g.succ

let succ g u = Array.to_list g.succ.(u)

let pred g u = Array.to_list g.pred.(u)

let iter_succ g u f = Array.iter f g.succ.(u)

let iter_pred g u f = Array.iter f g.pred.(u)

let iter_arcs g f = Array.iteri (fun u outs -> Array.iter (fun v -> f u v) outs) g.succ

let out_degree g u = Array.length g.succ.(u)

let in_degree g u = Array.length g.pred.(u)

let arcs g =
  let out = ref [] in
  for u = vertices g - 1 downto 0 do
    let outs = g.succ.(u) in
    for i = Array.length outs - 1 downto 0 do
      out := (u, outs.(i)) :: !out
    done
  done;
  !out

let arc_multiplicity g u v =
  Array.fold_left (fun acc w -> if w = v then acc + 1 else acc) 0 g.succ.(u)

let has_arc g u v = arc_multiplicity g u v > 0

let reverse g = { succ = Array.map Array.copy g.pred; pred = Array.map Array.copy g.succ }

let map_vertices g f =
  let n = vertices g in
  let img = Array.init n f in
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then invalid_arg "Digraph.map_vertices: not a bijection";
      seen.(v) <- true)
    img;
  let succ = Array.make n [||] in
  Array.iteri (fun u outs -> succ.(img.(u)) <- Array.map (fun v -> img.(v)) outs) g.succ;
  { succ; pred = compute_pred succ }

let sorted_succ g u =
  let a = Array.copy g.succ.(u) in
  Array.sort Stdlib.compare a;
  a

let equal a b =
  vertices a = vertices b
  &&
  let n = vertices a in
  let rec go u = u = n || (sorted_succ a u = sorted_succ b u && go (u + 1)) in
  go 0

let union a b =
  if vertices a <> vertices b then invalid_arg "Digraph.union: vertex count mismatch";
  let succ = Array.mapi (fun u outs -> Array.append outs b.succ.(u)) a.succ in
  { succ; pred = compute_pred succ }

let induced g vs =
  let back = Array.of_list vs in
  let m = Array.length back in
  let fwd = Hashtbl.create m in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem fwd v then invalid_arg "Digraph.induced: duplicate vertex";
      Hashtbl.add fwd v i)
    back;
  let succ =
    Array.init m (fun i ->
        let outs = g.succ.(back.(i)) in
        let kept = Array.to_list outs |> List.filter_map (Hashtbl.find_opt fwd) in
        Array.of_list kept)
  in
  ({ succ; pred = compute_pred succ }, back)

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph on %d vertices:@," (vertices g);
  Array.iteri
    (fun u outs ->
      Format.fprintf ppf "  %d -> [%a]@," u
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           Format.pp_print_int)
        (Array.to_list outs))
    g.succ;
  Format.fprintf ppf "@]"
