(* Traversal kernels.  These run inside the parallel engine's worker
   loops (the P(i,j) component counts especially), so they avoid the
   per-visit allocations of a naive BFS: frontiers are flat int-array
   queues (every vertex enters at most once, so length n suffices)
   and neighbours are consumed through [Digraph.iter_succ]/[iter_pred]
   instead of materialized lists. *)

let bfs ~directed g source =
  let n = Digraph.vertices g in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  let push_from d v =
    if dist.(v) < 0 then begin
      dist.(v) <- d + 1;
      queue.(!tail) <- v;
      incr tail
    end
  in
  dist.(source) <- 0;
  queue.(!tail) <- source;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let d = dist.(u) in
    Digraph.iter_succ g u (push_from d);
    if not directed then Digraph.iter_pred g u (push_from d)
  done;
  dist

let bfs_distances g source = bfs ~directed:true g source

let bfs_undirected_distances g source = bfs ~directed:false g source

let connected_components g =
  let n = Digraph.vertices g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let queue = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let id = !count in
      incr count;
      comp.(v) <- id;
      let head = ref 0 and tail = ref 0 in
      queue.(!tail) <- v;
      incr tail;
      let visit w =
        if comp.(w) < 0 then begin
          comp.(w) <- id;
          queue.(!tail) <- w;
          incr tail
        end
      in
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        Digraph.iter_succ g u visit;
        Digraph.iter_pred g u visit
      done
    end
  done;
  (comp, !count)

let component_count g = snd (connected_components g)

let component_members g =
  let comp, count = connected_components g in
  let members = Array.make count [] in
  for v = Digraph.vertices g - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  members

let reachable_from g source =
  let dist = bfs_distances g source in
  Array.map (fun d -> d >= 0) dist

let topological_order g =
  let n = Digraph.vertices g in
  let indeg = Array.init n (fun v -> Digraph.in_degree g v) in
  let order = Array.make n 0 in
  let filled = ref 0 in
  Array.iteri
    (fun v d ->
      if d = 0 then begin
        order.(!filled) <- v;
        incr filled
      end)
    indeg;
  (* [order] doubles as the queue: vertices between the scan cursor
     and [filled] are the ready frontier. *)
  let head = ref 0 in
  while !head < !filled do
    let u = order.(!head) in
    incr head;
    Digraph.iter_succ g u (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then begin
          order.(!filled) <- v;
          incr filled
        end)
  done;
  if !filled = n then Some order else None

let is_acyclic g = Option.is_some (topological_order g)

let count_paths_matrix g ~sources ~sinks =
  match topological_order g with
  | None -> invalid_arg "Traverse.count_paths_matrix: digraph has a cycle"
  | Some order ->
      let n = Digraph.vertices g in
      let sources = Array.of_list sources in
      let sinks = Array.of_list sinks in
      let result = Array.make_matrix (Array.length sources) (Array.length sinks) 0 in
      (* One backward DP per sink column would be |sinks| passes; do a
         forward DP per source instead (same cost) so parallel arcs
         accumulate naturally. *)
      let ways = Array.make n 0 in
      Array.iteri
        (fun i s ->
          Array.fill ways 0 n 0;
          ways.(s) <- 1;
          Array.iter
            (fun u ->
              let wu = ways.(u) in
              if wu > 0 then Digraph.iter_succ g u (fun v -> ways.(v) <- ways.(v) + wu))
            order;
          Array.iteri (fun j t -> result.(i).(j) <- ways.(t)) sinks)
        sources;
      result

let count_paths g u v =
  match count_paths_matrix g ~sources:[ u ] ~sinks:[ v ] with
  | [| [| c |] |] -> c
  | _ -> assert false
