let bfs ~neighbours n source =
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(source) <- 0;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      (neighbours u)
  done;
  dist

let bfs_distances g source = bfs ~neighbours:(Digraph.succ g) (Digraph.vertices g) source

let bfs_undirected_distances g source =
  let neighbours u = Digraph.succ g u @ Digraph.pred g u in
  bfs ~neighbours (Digraph.vertices g) source

let connected_components g =
  let n = Digraph.vertices g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let id = !count in
      incr count;
      comp.(v) <- id;
      Queue.add v q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun w ->
            if comp.(w) < 0 then begin
              comp.(w) <- id;
              Queue.add w q
            end)
          (Digraph.succ g u @ Digraph.pred g u)
      done
    end
  done;
  (comp, !count)

let component_count g = snd (connected_components g)

let component_members g =
  let comp, count = connected_components g in
  let members = Array.make count [] in
  for v = Digraph.vertices g - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  members

let reachable_from g source =
  let dist = bfs_distances g source in
  Array.map (fun d -> d >= 0) dist

let topological_order g =
  let n = Digraph.vertices g in
  let indeg = Array.init n (fun v -> Digraph.in_degree g v) in
  let q = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v q) indeg;
  let order = Array.make n 0 in
  let filled = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order.(!filled) <- u;
    incr filled;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v q)
      (Digraph.succ g u)
  done;
  if !filled = n then Some order else None

let is_acyclic g = Option.is_some (topological_order g)

let count_paths_matrix g ~sources ~sinks =
  match topological_order g with
  | None -> invalid_arg "Traverse.count_paths_matrix: digraph has a cycle"
  | Some order ->
      let n = Digraph.vertices g in
      let sources = Array.of_list sources in
      let sinks = Array.of_list sinks in
      let result = Array.make_matrix (Array.length sources) (Array.length sinks) 0 in
      (* One backward DP per sink column would be |sinks| passes; do a
         forward DP per source instead (same cost) so parallel arcs
         accumulate naturally. *)
      Array.iteri
        (fun i s ->
          let ways = Array.make n 0 in
          ways.(s) <- 1;
          Array.iter
            (fun u ->
              if ways.(u) > 0 then
                List.iter (fun v -> ways.(v) <- ways.(v) + ways.(u)) (Digraph.succ g u))
            order;
          Array.iteri (fun j t -> result.(i).(j) <- ways.(t)) sinks)
        sources;
      result

let count_paths g u v =
  match count_paths_matrix g ~sources:[ u ] ~sinks:[ v ] with
  | [| [| c |] |] -> c
  | _ -> assert false
