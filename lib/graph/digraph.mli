(** Finite directed graphs with vertices [0 .. n-1].

    Parallel arcs are preserved (the paper's Fig. 5 stage produces
    double links, and in/out-degree counts must see both). *)

type t

val create : vertices:int -> (int * int) list -> t
(** [create ~vertices arcs] builds a digraph.  Raises
    [Invalid_argument] on endpoints outside [0 .. vertices-1].
    Duplicate arcs are kept. *)

val of_succ : int array array -> t
(** Build from successor lists: [succ.(u)] is the array of arc heads
    out of [u].  The arrays are copied. *)

val vertices : t -> int

val arc_count : t -> int

val succ : t -> int -> int list
(** Successors of a vertex, one entry per arc, in insertion order. *)

val pred : t -> int -> int list

val iter_succ : t -> int -> (int -> unit) -> unit
(** [iter_succ g u f] applies [f] to every arc head out of [u], in
    insertion order, without materializing a list — the hot-path
    variant of {!succ} for traversal kernels. *)

val iter_pred : t -> int -> (int -> unit) -> unit

val iter_arcs : t -> (int -> int -> unit) -> unit
(** [iter_arcs g f] applies [f u v] to every arc, grouped by tail —
    the allocation-free variant of {!arcs}. *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val arcs : t -> (int * int) list
(** Every arc, grouped by tail. *)

val has_arc : t -> int -> int -> bool

val arc_multiplicity : t -> int -> int -> int

val reverse : t -> t
(** All arcs flipped: the paper's reverse network [G^-1]. *)

val map_vertices : t -> (int -> int) -> t
(** [map_vertices g f] relabels vertices through the bijection [f]
    (raises [Invalid_argument] if [f] is not a bijection on
    [0 .. n-1]). *)

val equal : t -> t -> bool
(** Same vertex count and same arc multiset. *)

val union : t -> t -> t
(** Same vertex set required; arcs concatenated. *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the sub-digraph induced by the vertex list [vs]
    (in the given order) together with the map from new indices back
    to original vertices. *)

val pp : Format.formatter -> t -> unit
