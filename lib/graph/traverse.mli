(** Traversals: BFS, connected components of the underlying undirected
    graph, and path counting on acyclic digraphs.

    Connected components are the workhorse of the paper's [P(i,j)]
    properties ("the connected components of an MI-digraph are those of
    the undirected underlying graph"). *)

val bfs_distances : Digraph.t -> int -> int array
(** Directed BFS from a source; unreachable vertices get [-1]. *)

val bfs_undirected_distances : Digraph.t -> int -> int array
(** BFS ignoring arc orientation. *)

val connected_components : Digraph.t -> int array * int
(** [(comp, count)] where [comp.(v)] is the component id of [v]
    (ids are [0 .. count-1], numbered by smallest contained vertex)
    in the {e undirected underlying graph}. *)

val component_count : Digraph.t -> int

val component_members : Digraph.t -> int list array
(** Vertices of each component, ascending. *)

val reachable_from : Digraph.t -> int -> bool array
(** Directed reachability (includes the source). *)

val topological_order : Digraph.t -> int array option
(** A topological order of the vertices, or [None] if the digraph has
    a directed cycle. *)

val is_acyclic : Digraph.t -> bool

val count_paths_matrix : Digraph.t -> sources:int list -> sinks:int list -> int array array
(** [count_paths_matrix g ~sources ~sinks] returns [m] with
    [m.(i).(j)] the number of directed paths from [List.nth sources i]
    to [List.nth sinks j].  Parallel arcs count as distinct paths.
    Raises [Invalid_argument] on cyclic digraphs (path counts would be
    infinite). *)

val count_paths : Digraph.t -> int -> int -> int
(** Number of directed paths between two vertices of an acyclic
    digraph. *)
