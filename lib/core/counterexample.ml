module Perm = Mineq_perm.Perm

let retry ~attempts make check =
  let rec go k =
    if k = 0 then None
    else begin
      let x = make () in
      if check x then Some x else go (k - 1)
    end
  in
  go attempts

let random_banyan rng ~n ~attempts =
  retry ~attempts (fun () -> Link_spec.random_network rng ~n) Banyan.is_banyan

(* A stage with both buddy properties: pair the nodes of each side at
   random and connect source pairs to target pairs through a random
   bijection; both nodes of a source pair get both nodes of the target
   pair as children. *)
let random_buddy_stage rng ~width =
  let per = 1 lsl width in
  let src = Perm.to_array (Perm.random rng per) in
  let dst = Perm.to_array (Perm.random rng per) in
  let f = Array.make per 0 and g = Array.make per 0 in
  for p = 0 to (per / 2) - 1 do
    let u1 = src.(2 * p) and u2 = src.((2 * p) + 1) in
    let v1 = dst.(2 * p) and v2 = dst.((2 * p) + 1) in
    f.(u1) <- v1;
    g.(u1) <- v2;
    f.(u2) <- v1;
    g.(u2) <- v2
  done;
  Connection.of_arrays ~width f g

let random_buddy_network rng ~n =
  Mi_digraph.create (List.init (n - 1) (fun _ -> random_buddy_stage rng ~width:(n - 1)))

let random_buddy_banyan rng ~n ~attempts =
  retry ~attempts (fun () -> random_buddy_network rng ~n) Banyan.is_banyan

let find_non_equivalent rng ~n ~attempts ~require_buddy =
  let make () =
    if require_buddy then random_buddy_network rng ~n else Link_spec.random_network rng ~n
  in
  let check g = Banyan.is_banyan g && not (Equivalence.by_characterization g).equivalent in
  retry ~attempts make check

let relabelled_equivalent rng g =
  let per = Mi_digraph.nodes_per_stage g in
  let n = Mi_digraph.stages g in
  let maps = Array.init n (fun _ -> Perm.random rng per) in
  Mi_digraph.relabel g (fun ~stage x -> Perm.apply maps.(stage - 1) x)
