(** Canonical 128-bit structural fingerprints for MI-digraphs.

    A fingerprint is computed by iterated Weisfeiler-Leman-style
    colour refinement over the packed CSR representation
    ({!Mi_digraph.packed}), seeded with the per-node component sizes
    of every stage window — the paper's [P(i,j)] substrate — because
    stage-biregularity makes plain degree-based refinement vacuous on
    these graphs.  The result is invariant under the stage-respecting
    isomorphisms {!Iso_min} decides:

    - {e sound as a negative}: different fingerprints prove the
      networks are not isomorphic;
    - {e not complete}: equal fingerprints do not prove isomorphism —
      callers must fall back to {!Iso_min.find} within colliding
      buckets.

    With a reused {!scratch} the refinement allocates nothing, so a
    census can fingerprint millions of networks with a flat memory
    profile. *)

type t = private { fa : int; fb : int }
(** Two 63-bit halves of the structural hash. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int
(** Non-negative hash mixing both halves, suitable for [Hashtbl]
    sharding. *)

val to_hex : t -> string
(** 32-character lowercase hex rendering, [fa] then [fb]. *)

val pp : Format.formatter -> t -> unit

(** {1 Scratch buffers} *)

type scratch
(** Preallocated refinement state for one network {e shape}
    (stages, nodes per stage, radix).  Reusable across every network
    of that shape; not thread-safe — use one per domain. *)

val scratch_for : Mi_digraph.packed -> scratch
(** Buffers sized for networks shaped like the argument. *)

(** {1 Fingerprinting} *)

val into : scratch -> Mi_digraph.packed -> unit
(** Run the refinement, leaving the hash halves in the scratch
    (read them with {!result}).  Allocates nothing — the
    entry point the census bench holds to 0.0 minor words per
    network.  Raises [Invalid_argument] when the scratch was built
    for a different shape. *)

val result : scratch -> t
(** The fingerprint left by the last {!into} on this scratch. *)

val of_packed : ?scratch:scratch -> Mi_digraph.packed -> t
(** Fingerprint of a packed network.  With [?scratch] (shape must
    match or [Invalid_argument] is raised) the computation performs no
    allocation beyond the returned record. *)

val of_network : ?scratch:scratch -> Mi_digraph.t -> t
(** Like {!of_packed} via {!Mi_digraph.packed}, memoised in the
    network record's fingerprint cache slot (same benign-race
    contract as the packed cache: concurrent computes agree). *)

val colour_classes : ?scratch:scratch -> Mi_digraph.packed -> int
(** Number of stable colour classes the refinement reaches — a
    diagnostic for how discriminating the refinement is on a given
    network (upper-bounded by the node count). *)
