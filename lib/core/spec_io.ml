module Perm = Mineq_perm.Perm

type error = { line : int option; reason : string }

let error_to_string e =
  match e.line with
  | Some l -> Printf.sprintf "line %d: %s" l e.reason
  | None -> e.reason

let errorf ?line fmt = Printf.ksprintf (fun reason -> { line; reason }) fmt

type gap = Theta of Perm.t | Raw of Connection.t

let connection_of_gap ~n = function
  | Theta theta -> Pipid_net.connection ~n theta
  | Raw c -> c

let to_string g =
  let n = Mi_digraph.stages g in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "mineq-spec 1\n";
  Buffer.add_string buf (Printf.sprintf "stages %d\n" n);
  for i = 1 to n - 1 do
    match Render.recognize_gap g i with
    | Some theta ->
        Buffer.add_string buf "gap theta";
        Array.iter
          (fun v -> Buffer.add_string buf (" " ^ string_of_int v))
          (Perm.to_array theta);
        Buffer.add_char buf '\n'
    | None ->
        let c = Mi_digraph.connection g i in
        Buffer.add_string buf "gap raw";
        for x = 0 to Connection.half c - 1 do
          Buffer.add_string buf (" " ^ string_of_int (Connection.f c x))
        done;
        Buffer.add_string buf " |";
        for x = 0 to Connection.half c - 1 do
          Buffer.add_string buf (" " ^ string_of_int (Connection.g c x))
        done;
        Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let gaps_of_string text =
  let lines = String.split_on_char '\n' text in
  let err line reason = Error { line = Some line; reason } in
  let strip l = match String.index_opt l '#' with Some i -> String.sub l 0 i | None -> l in
  let tokens l = String.split_on_char ' ' (strip l) |> List.filter (fun t -> t <> "") in
  let parse_ints line ts =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | t :: rest -> (
          match int_of_string_opt t with
          | Some v -> go (v :: acc) rest
          | None -> err line (Printf.sprintf "expected integer, got %S" t))
    in
    go [] ts
  in
  let rec scan lineno lines state =
    match lines with
    | [] -> (
        match state with
        | `Gaps (n, gaps) ->
            let gaps = List.rev gaps in
            if List.length gaps <> n - 1 then
              Error
                (errorf "expected %d gap lines for %d stages, found %d" (n - 1) n
                   (List.length gaps))
            else Ok (n, gaps)
        | _ -> Error { line = None; reason = "truncated spec" })
    | line :: rest -> (
        match (tokens line, state) with
        | [], state -> scan (lineno + 1) rest state
        | [ "mineq-spec"; "1" ], `Start -> scan (lineno + 1) rest `Header
        | _, `Start -> err lineno "expected header: mineq-spec 1"
        | [ "stages"; sn ], `Header -> (
            match int_of_string_opt sn with
            | Some n when n >= 2 -> scan (lineno + 1) rest (`Gaps (n, []))
            | _ -> err lineno "stages needs an integer >= 2")
        | _, `Header -> err lineno "expected: stages <n>"
        | "gap" :: "theta" :: ts, `Gaps (n, gaps) -> (
            match parse_ints lineno ts with
            | Error _ as e -> e
            | Ok img -> (
                if List.length img <> n then err lineno "theta needs n images"
                else
                  match Perm.of_array (Array.of_list img) with
                  | exception Invalid_argument m -> err lineno m
                  | theta -> scan (lineno + 1) rest (`Gaps (n, Theta theta :: gaps))))
        | "gap" :: "raw" :: ts, `Gaps (n, gaps) -> (
            let half = 1 lsl (n - 1) in
            let rec split_bar acc = function
              | [] -> None
              | "|" :: rest -> Some (List.rev acc, rest)
              | t :: rest -> split_bar (t :: acc) rest
            in
            match split_bar [] ts with
            | None -> err lineno "raw gap needs a | separator"
            | Some (fs, gs) -> (
                match (parse_ints lineno fs, parse_ints lineno gs) with
                | Ok fs, Ok gs -> (
                    if List.length fs <> half || List.length gs <> half then
                      err lineno (Printf.sprintf "raw gap needs %d f and %d g images" half half)
                    else
                      match
                        Connection.of_arrays ~width:(n - 1) (Array.of_list fs)
                          (Array.of_list gs)
                      with
                      | exception Invalid_argument m -> err lineno m
                      | c -> scan (lineno + 1) rest (`Gaps (n, Raw c :: gaps)))
                | (Error _ as e), _ | _, (Error _ as e) -> e))
        | _, `Gaps _ -> err lineno "expected a gap line")
  in
  scan 1 lines `Start

let of_string text =
  match gaps_of_string text with
  | Error _ as e -> e
  | Ok (n, gaps) -> (
      match Mi_digraph.create (List.map (connection_of_gap ~n) gaps) with
      | g -> Ok g
      | exception Invalid_argument m -> Error { line = None; reason = m })

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error m -> Error { line = None; reason = m }
