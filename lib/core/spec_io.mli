(** Textual network specifications: save and reload MI-digraphs.

    Format (line oriented, [#] comments, blank lines ignored):

    {v
    mineq-spec 1
    stages 4
    gap theta 3 0 1 2
    gap raw 0 0 1 1 2 2 3 3 | 4 4 5 5 6 6 7 7
    ...
    v}

    One [gap] line per inter-stage connection, in order.  [theta]
    gives an index-digit permutation (the images of digits
    [0 .. n-1]); [raw] gives the [f] images and then the [g] images
    of every node label.  {!to_string} emits [theta] lines whenever
    the gap is a recognizable PIPID stage. *)

type error = {
  line : int option;
      (** 1-based line number of the offending line; [None] for
          whole-file problems (truncation, missing gap lines, I/O). *)
  reason : string;
}
(** Typed parse error.  {!error_to_string} renders the conventional
    ["line N: reason"] form. *)

val error_to_string : error -> string

val errorf : ?line:int -> ('a, unit, string, error) format4 -> 'a
(** Build an {!error} with a formatted reason. *)

(** A gap as written in the spec file, before tabulation: [Theta]
    stages are symbolic (an index-digit permutation) and can be
    analyzed without enumerating node labels. *)
type gap = Theta of Mineq_perm.Perm.t | Raw of Connection.t

val connection_of_gap : n:int -> gap -> Connection.t
(** Tabulate a gap ([Theta] via {!Pipid_net.connection}). *)

val to_string : Mi_digraph.t -> string

val gaps_of_string : string -> (int * gap list, error) result
(** Parse down to the declared gaps: [(stages, gaps)] with one gap
    per inter-stage connection.  Validates syntax, permutation and
    image-range well-formedness, and the gap count — but {e not} the
    MI in-degree requirement (see {!of_string}). *)

val of_string : string -> (Mi_digraph.t, error) result
(** {!gaps_of_string} followed by {!Mi_digraph.create}; a connection
    violating the in-degree-2 requirement surfaces as an [error] with
    [line = None]. *)

val save : string -> Mi_digraph.t -> unit
(** Write to a file path. *)

val load : string -> (Mi_digraph.t, error) result
