(** Textual network specifications: save and reload MI-digraphs.

    Format (line oriented, [#] comments, blank lines ignored):

    {v
    mineq-spec 1
    stages 4
    gap theta 3 0 1 2
    gap raw 0 0 1 1 2 2 3 3 | 4 4 5 5 6 6 7 7
    ...
    v}

    One [gap] line per inter-stage connection, in order.  [theta]
    gives an index-digit permutation (the images of digits
    [0 .. n-1]); [raw] gives the [f] images and then the [g] images
    of every node label.  {!to_string} emits [theta] lines whenever
    the gap is a recognizable PIPID stage. *)

val to_string : Mi_digraph.t -> string

val of_string : string -> (Mi_digraph.t, string) result
(** Parse; the error carries a line number and reason. *)

val save : string -> Mi_digraph.t -> unit
(** Write to a file path. *)

val load : string -> (Mi_digraph.t, string) result
