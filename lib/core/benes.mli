(** The Benes rearrangeable network and the looping routing algorithm.

    The Benes network B(n) is the [n]-stage Baseline followed by its
    mirror image sharing the middle stage: [2n - 1] stages of
    [2^(n-1)] cells.  It is the classic payoff of the
    Baseline-equivalence theory: glue any Baseline-equivalent network
    to its reverse and the result realizes {e every} permutation of
    its [2^n] terminals with link-disjoint paths (rearrangeability),
    routes found by the looping algorithm.

    This module is an extension beyond the reproduced paper (which
    studies single Banyan-class networks); it demonstrates the
    library's constructions composing. *)

val network : int -> Cascade.t
(** [network n] is B(n): [Baseline.network n] concatenated with its
    reverse, middle stage shared.  [n >= 1]. *)

val route_permutation : Cascade.t option -> n:int -> Mineq_perm.Perm.t -> Cascade.route list
(** [route_permutation cascade ~n p] runs the looping algorithm and
    returns one route per terminal, [input i -> output (p i)].  The
    optional prebuilt cascade (from {!network}) is only used to avoid
    rebuilding; pass [None] to let the function build it.  The routes
    are guaranteed link-disjoint and valid on [network n] — the
    rearrangeability theorem, which the test suite re-verifies
    instance by instance. *)

val rearrangeable_check : Random.State.t -> n:int -> samples:int -> bool
(** Routes [samples] random permutations and checks link-disjoint
    validity of every schedule. *)
