(** The Benes rearrangeable network and the looping routing algorithm.

    The Benes network B(n) is the [n]-stage Baseline followed by its
    mirror image sharing the middle stage: [2n - 1] stages of
    [2^(n-1)] cells.  It is the classic payoff of the
    Baseline-equivalence theory: glue any Baseline-equivalent network
    to its reverse and the result realizes {e every} permutation of
    its [2^n] terminals with link-disjoint paths (rearrangeability),
    routes found by the looping algorithm.

    This module is an extension beyond the reproduced paper (which
    studies single Banyan-class networks); it demonstrates the
    library's constructions composing. *)

val network : int -> Cascade.t
(** [network n] is B(n): [Baseline.network n] concatenated with its
    reverse, middle stage shared.  [n >= 1]. *)

(** {1 Recursive structure}

    What the looping algorithm actually recurses on: B(n) minus its
    outer stage pair is two independent copies of B(n-1) (the upper
    and lower halves), and so on down to the single middle stage.
    [lib/route]'s iterative looping engine consumes this description
    instead of re-deriving the stage arithmetic. *)

type level = {
  depth : int;  (** recursion depth, [0 .. n-2] *)
  left_stage : int;  (** 1-based stage of the blocks' entry cells *)
  right_stage : int;  (** 1-based stage of the blocks' exit cells, [2n - 1 - depth] *)
  blocks : int;  (** [2^depth] independent sub-networks at this depth *)
  block_terminals : int;  (** [2^(n - depth)] terminals feeding each block *)
  select_bit : int;
      (** cell-label bit (within the enclosing block) that separates
          the upper sub-network ([0]) from the lower ([1]) one level
          down; the out-port taken at [left_stage] sets it *)
}

val levels : n:int -> level list
(** The [n - 1] levels of B(n), outermost first: a block of depth [d]
    spans stages [d+1 .. 2n-1-d] and consists of the cells sharing
    their top [d] label bits.  Below the last level sit the
    [2^(n-1)] single middle-stage cells.  [n >= 2]. *)

val looping_colours : terminals:int -> int array -> int array
(** One step of the looping algorithm: given a permutation of
    [terminals] terminal ids (as an image array), 2-colour the
    terminals so that the two terminals sharing an input switch
    ([t lxor 1]) get different colours and so do terminals whose
    images share an output switch.  Colour [s] sends the terminal
    into sub-network [s].  The union of the two pairings is a
    disjoint union of even cycles, so the greedy alternating
    propagation used here never contradicts itself. *)

val route_permutation : Cascade.t option -> n:int -> Mineq_perm.Perm.t -> Cascade.route list
(** [route_permutation cascade ~n p] runs the looping algorithm and
    returns one route per terminal, [input i -> output (p i)].  The
    optional prebuilt cascade (from {!network}) is only used to avoid
    rebuilding; pass [None] to let the function build it.  The routes
    are guaranteed link-disjoint and valid on [network n] — the
    rearrangeability theorem, which the test suite re-verifies
    instance by instance. *)

val rearrangeable_check : Random.State.t -> n:int -> samples:int -> bool
(** Routes [samples] random permutations and checks link-disjoint
    validity of every schedule. *)
