type mapping = int array array

(* BFS order over the undirected MI-digraph (packed dense ids, flat
   int-array queue) so that — except for component roots — every node
   appears after one of its neighbours, which lets the backtracking
   search below prune on already-mapped neighbours immediately. *)
let bfs_order (p : Mi_digraph.packed) =
  let per = p.p_per in
  let n = p.p_stages in
  let total = n * per in
  let order = Array.make total 0 in
  let seen = Array.make total false in
  let filled = ref 0 in
  let head = ref 0 in
  let push id =
    if not seen.(id) then begin
      seen.(id) <- true;
      order.(!filled) <- id;
      incr filled
    end
  in
  for root = 0 to total - 1 do
    if not seen.(root) then begin
      push root;
      while !head < !filled do
        let id = order.(!head) in
        incr head;
        let s = id / per in
        if s < n - 1 then begin
          push p.p_succ.(2 * id);
          push p.p_succ.((2 * id) + 1)
        end;
        if s > 0 then begin
          push p.p_pred.(2 * (id - per));
          push p.p_pred.((2 * (id - per)) + 1)
        end
      done
    end
  done;
  order

let arc_mult_children c x y =
  let cf, cg = Connection.children c x in
  (if cf = y then 1 else 0) + if cg = y then 1 else 0

(* Backtracking search for stage-respecting isomorphisms from [a]
   onto [b]; calls [on_solution] with each complete mapping (the
   callback may raise to stop early).

   Runs entirely over the packed child tables and predecessor slots:
   the per-node candidate narrowing of the old implementation (lists
   of (stage, label) tuples, intersected and sorted per search node)
   is subsumed by [compatible] — any label passing the arc-
   multiplicity checks against a mapped neighbour's image is
   necessarily adjacent to that image — so the explored tree is
   unchanged while the hot path allocates nothing. *)
let search ~limit ~on_solution a b =
  let pa = Mi_digraph.packed a in
  let pb = Mi_digraph.packed b in
  let n = pa.p_stages in
  let per = pa.p_per in
  if n <> pb.p_stages || per <> pb.p_per then ()
  else begin
    let order = bfs_order pa in
    let map = Array.init n (fun _ -> Array.make per (-1)) in
    let used = Array.init n (fun _ -> Array.make per false) in
    (* Arc multiplicity x -> y in an interleaved binary child table
       (p_radix = 2: the packing of any Mi_digraph). *)
    let mult ch x y =
      (if ch.(2 * x) = y then 1 else 0) + if ch.((2 * x) + 1) = y then 1 else 0
    in
    (* Consistency of x -> y at 0-based stage s against already-mapped
       neighbours: arc multiplicities must match in both gaps. *)
    let compatible s x y =
      let check_outgoing () =
        let cha = pa.p_child.(s) in
        let chb = pb.p_child.(s) in
        let check t =
          let mt = map.(s + 1).(t) in
          mt < 0 || mult cha x t = mult chb y mt
        in
        check cha.(2 * x) && check cha.((2 * x) + 1)
      in
      let check_incoming () =
        let cha = pa.p_child.(s - 1) in
        let chb = pb.p_child.(s - 1) in
        let base = 2 * (((s - 1) * per) + x) in
        let check dense_parent =
          let pl = dense_parent mod per in
          let mp = map.(s - 1).(pl) in
          mp < 0 || mult cha pl x = mult chb mp y
        in
        check pa.p_pred.(base) && check pa.p_pred.(base + 1)
      in
      (s >= n - 1 || check_outgoing ()) && (s = 0 || check_incoming ())
    in
    let nodes_explored = ref 0 in
    let total = n * per in
    let rec go i =
      incr nodes_explored;
      if limit > 0 && !nodes_explored > limit then failwith "iso_min: node limit exceeded";
      if i = total then on_solution map
      else begin
        let id = order.(i) in
        let s = id / per and x = id mod per in
        for y = 0 to per - 1 do
          if (not used.(s).(y)) && compatible s x y then begin
            map.(s).(x) <- y;
            used.(s).(y) <- true;
            go (i + 1);
            map.(s).(x) <- -1;
            used.(s).(y) <- false
          end
        done
      end
    in
    go 0
  end

exception Found of mapping

let find ?(limit = 0) a b =
  match search ~limit ~on_solution:(fun m -> raise (Found (Array.map Array.copy m))) a b with
  | () -> None
  | exception Found m -> Some m

let to_baseline ?limit g = find ?limit g (Baseline.network (Mi_digraph.stages g))

let verify a b m =
  let n = Mi_digraph.stages a in
  let per = Mi_digraph.nodes_per_stage a in
  let stage_bijection stage_map =
    Array.length stage_map = per
    &&
    let seen = Array.make per false in
    Array.for_all
      (fun y ->
        y >= 0 && y < per
        &&
        if seen.(y) then false
        else begin
          seen.(y) <- true;
          true
        end)
      stage_map
  in
  n = Mi_digraph.stages b
  && per = Mi_digraph.nodes_per_stage b
  && Array.length m = n
  && Array.for_all stage_bijection m
  && List.for_all
       (fun gap ->
         let c_a = Mi_digraph.connection a gap and c_b = Mi_digraph.connection b gap in
         let rec ok x =
           x = per
           || (let cf, cg = Connection.children c_a x in
               List.for_all
                 (fun y ->
                   arc_mult_children c_a x y
                   = arc_mult_children c_b m.(gap - 1).(x) m.(gap).(y))
                 (List.sort_uniq compare [ cf; cg ])
              && ok (x + 1))
         in
         ok 0)
       (List.init (n - 1) (fun i -> i + 1))

let apply g m = Mi_digraph.relabel g (fun ~stage x -> m.(stage - 1).(x))

let automorphism_count ?(limit = 0) g =
  let count = ref 0 in
  search ~limit ~on_solution:(fun _ -> incr count) g g;
  !count
