type mapping = int array array

(* Undirected neighbour lists with stage structure: for node (s, x)
   (stages 0-based here) the list of (s', x') over both gap
   directions, with multiplicity. *)
let neighbour_table g =
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  let tbl = Array.init n (fun _ -> Array.make per []) in
  List.iteri
    (fun gap0 c ->
      for x = 0 to per - 1 do
        let cf, cg = Connection.children c x in
        tbl.(gap0).(x) <- (gap0 + 1, cf) :: (gap0 + 1, cg) :: tbl.(gap0).(x);
        tbl.(gap0 + 1).(cf) <- (gap0, x) :: tbl.(gap0 + 1).(cf);
        tbl.(gap0 + 1).(cg) <- (gap0, x) :: tbl.(gap0 + 1).(cg)
      done)
    (Mi_digraph.connections g);
  tbl

(* BFS order over the undirected MI-digraph so that (except for
   component roots) every node appears after one of its neighbours. *)
let bfs_order tbl n per =
  let order = Array.make (n * per) (0, 0) in
  let seen = Array.init n (fun _ -> Array.make per false) in
  let filled = ref 0 in
  let q = Queue.create () in
  let push (s, x) =
    if not seen.(s).(x) then begin
      seen.(s).(x) <- true;
      Queue.add (s, x) q
    end
  in
  for s = 0 to n - 1 do
    for x = 0 to per - 1 do
      if not seen.(s).(x) then begin
        push (s, x);
        while not (Queue.is_empty q) do
          let cs, cx = Queue.pop q in
          order.(!filled) <- (cs, cx);
          incr filled;
          List.iter push tbl.(cs).(cx)
        done
      end
    done
  done;
  order

let arc_mult_children c x y =
  let cf, cg = Connection.children c x in
  (if cf = y then 1 else 0) + if cg = y then 1 else 0

(* Backtracking search for stage-respecting isomorphisms from [a]
   onto [b]; calls [on_solution] with each complete mapping (the
   callback may raise to stop early). *)
let search ~limit ~on_solution a b =
  let n = Mi_digraph.stages a in
  let per = Mi_digraph.nodes_per_stage a in
  if n <> Mi_digraph.stages b || per <> Mi_digraph.nodes_per_stage b then ()
  else begin
    let tbl_a = neighbour_table a in
    let tbl_b = neighbour_table b in
    let order = bfs_order tbl_a n per in
    let map = Array.init n (fun _ -> Array.make per (-1)) in
    let used = Array.init n (fun _ -> Array.make per false) in
    (* Consistency of x -> y at 0-based stage s against already-mapped
       neighbours: arc multiplicities must match in both gaps. *)
    let compatible s x y =
      let check_outgoing () =
        let c_a = Mi_digraph.connection a (s + 1) in
        let c_b = Mi_digraph.connection b (s + 1) in
        let cf, cg = Connection.children c_a x in
        List.for_all
          (fun t ->
            let mt = map.(s + 1).(t) in
            mt < 0 || arc_mult_children c_a x t = arc_mult_children c_b y mt)
          [ cf; cg ]
      in
      let check_incoming () =
        let c_a = Mi_digraph.connection a s in
        let c_b = Mi_digraph.connection b s in
        List.for_all
          (fun p ->
            let mp = map.(s - 1).(p) in
            mp < 0 || arc_mult_children c_a p x = arc_mult_children c_b mp y)
          (Connection.parents c_a x)
      in
      (s >= n - 1 || check_outgoing ()) && (s = 0 || check_incoming ())
    in
    let candidates s x =
      (* Images proposed by mapped neighbours; if none, all labels. *)
      let from_neighbours =
        List.filter_map
          (fun (s', x') ->
            let m = map.(s').(x') in
            if m < 0 then None
            else
              Some
                (List.filter_map
                   (fun (t, y) -> if t = s then Some y else None)
                   tbl_b.(s').(m)))
          tbl_a.(s).(x)
      in
      match from_neighbours with
      | [] -> List.init per (fun y -> y)
      | first :: rest ->
          List.sort_uniq compare
            (List.filter (fun y -> List.for_all (List.mem y) rest) first)
    in
    let nodes_explored = ref 0 in
    let total = n * per in
    let rec go i =
      incr nodes_explored;
      if limit > 0 && !nodes_explored > limit then failwith "iso_min: node limit exceeded";
      if i = total then on_solution map
      else begin
        let s, x = order.(i) in
        List.iter
          (fun y ->
            if (not used.(s).(y)) && compatible s x y then begin
              map.(s).(x) <- y;
              used.(s).(y) <- true;
              go (i + 1);
              map.(s).(x) <- -1;
              used.(s).(y) <- false
            end)
          (candidates s x)
      end
    in
    go 0
  end

exception Found of mapping

let find ?(limit = 0) a b =
  match search ~limit ~on_solution:(fun m -> raise (Found (Array.map Array.copy m))) a b with
  | () -> None
  | exception Found m -> Some m

let to_baseline ?limit g = find ?limit g (Baseline.network (Mi_digraph.stages g))

let verify a b m =
  let n = Mi_digraph.stages a in
  let per = Mi_digraph.nodes_per_stage a in
  let stage_bijection stage_map =
    Array.length stage_map = per
    &&
    let seen = Array.make per false in
    Array.for_all
      (fun y ->
        y >= 0 && y < per
        &&
        if seen.(y) then false
        else begin
          seen.(y) <- true;
          true
        end)
      stage_map
  in
  n = Mi_digraph.stages b
  && per = Mi_digraph.nodes_per_stage b
  && Array.length m = n
  && Array.for_all stage_bijection m
  && List.for_all
       (fun gap ->
         let c_a = Mi_digraph.connection a gap and c_b = Mi_digraph.connection b gap in
         let rec ok x =
           x = per
           || (let cf, cg = Connection.children c_a x in
               List.for_all
                 (fun y ->
                   arc_mult_children c_a x y
                   = arc_mult_children c_b m.(gap - 1).(x) m.(gap).(y))
                 (List.sort_uniq compare [ cf; cg ])
              && ok (x + 1))
         in
         ok 0)
       (List.init (n - 1) (fun i -> i + 1))

let apply g m = Mi_digraph.relabel g (fun ~stage x -> m.(stage - 1).(x))

let automorphism_count ?(limit = 0) g =
  let count = ref 0 in
  search ~limit ~on_solution:(fun _ -> incr count) g g;
  !count
