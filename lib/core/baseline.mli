(** The Baseline network (paper, Section 2, Figure 1), built by its
    left-recursive definition: the subnetwork between stages 2 and [n]
    consists of two [(n-1)]-stage Baseline networks laid out as the
    upper and lower halves, and stage-1 nodes [2i] and [2i+1] are both
    connected to the [i]-th node of each subnetwork. *)

val network : int -> Mi_digraph.t
(** [network n] is the [n]-stage Baseline MI-digraph, [n >= 1]. *)

val reverse : int -> Mi_digraph.t
(** The Reverse Baseline MI-digraph ([G^-1] with stages renumbered). *)

val stage_connection : n:int -> int -> Connection.t
(** [stage_connection ~n i] is the closed form of the Baseline
    connection between stages [i] and [i+1]: with [w = n - 1] label
    bits, the low [w - i + 1] bits of the child are the node's low
    bits rotated right with the routing bit injected at position
    [w - i]:
    [f x] keeps bits [w-1 .. w-i+1], then [0], then bits
    [w-i .. 1] of [x]; [g x] likewise with [1].  Equals the recursive
    construction (tested). *)

val is_baseline : Mi_digraph.t -> bool
(** Label-exact equality with [network n] (not isomorphism). *)
