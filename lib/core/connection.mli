(** Inter-stage connections [(f, g)] and the paper's independence
    property (Section 3).

    A connection between two stages of [2^width] nodes is a pair of
    functions [f, g] on node labels (elements of [Z2^width]); the
    children of node [x] are [f x] and [g x].  The connection is
    {e independent} when

    {[ forall alpha <> 0, exists beta,
       forall x, f (x xor alpha) = beta xor f x
              /\ g (x xor alpha) = beta xor g x ]}

    Key consequences implemented here:
    - the witness [beta] is unique for each [alpha], and
      [alpha -> beta] is linear; hence checking the [width] canonical
      basis vectors suffices ({!is_independent} is [O(width * 2^width)]
      — the paper's "easy" characterization);
    - every independent connection has the normal form
      [f x = B x xor f 0], [g x = B x xor g 0] with a shared linear
      [B] ({!linear_form});
    - a valid (in-degree-2) independent connection has [B] either
      invertible, or of corank 1 with [f 0 xor g 0] outside the image
      of [B] (the two cases in the proof of Proposition 1);
    - the reverse of an independent connection can be chosen
      independent (Proposition 1, {!reverse_independent}). *)

module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix

type t
(** Immutable connection over a given width. *)

val width : t -> int
(** Number of label bits; the stage has [2^width] nodes. *)

val half : t -> int
(** [2^width], the number of nodes per stage. *)

val make : width:int -> f:(Bv.t -> Bv.t) -> g:(Bv.t -> Bv.t) -> t
(** Tabulates [f] and [g].  Images must fit in [width] bits. *)

val of_arrays : width:int -> int array -> int array -> t
(** Arrays of length [2^width] holding the images of [f] and [g]. *)

val f : t -> Bv.t -> Bv.t
val g : t -> Bv.t -> Bv.t

val children : t -> Bv.t -> Bv.t * Bv.t
(** [(f x, g x)] — equal components encode a double link. *)

val parents : t -> Bv.t -> Bv.t list
(** Labels [x] with [f x = y] or [g x = y], with multiplicity
    (a parent connected by both [f] and [g] appears twice). *)

val swap : t -> t
(** Exchange the roles of [f] and [g] (an inessential choice: the
    MI-digraph is unchanged). *)

val equal_graph : t -> t -> bool
(** Same arc multiset (i.e. equal up to swapping [f]/[g] pointwise). *)

val is_mi_stage : t -> bool
(** Every node of the next stage has in-degree exactly 2 (counting
    double links twice) — the MI-digraph degree requirement. *)

val in_degrees : t -> int array

(** {1 Independence} *)

val witness : t -> Bv.t -> Bv.t option
(** [witness c alpha] is the unique [beta] making the independence
    equations hold for this [alpha] (checked over all [x]), if any.
    [alpha] must be non-zero. *)

val is_independent : t -> bool
(** Basis-only check ([O(width * 2^width)]).  Equivalent to
    {!is_independent_definitional}; the equivalence is what makes the
    characterization "easy" and is enforced by the test suite. *)

val is_independent_definitional : t -> bool
(** The definition verbatim: every non-zero [alpha] has a witness.
    [O(4^width)]; used as the oracle in tests and benchmarks. *)

val beta_map : t -> Gf2.t option
(** The linear map [alpha -> beta] as a matrix, when independent. *)

val linear_form : t -> (Gf2.t * Bv.t * Bv.t) option
(** [(B, c_f, c_g)] with [f x = B x xor c_f] and [g x = B x xor c_g],
    when independent ([B] is {!beta_map}, [c_f = f 0], [c_g = g 0]). *)

val of_linear : width:int -> Gf2.t -> cf:Bv.t -> cg:Bv.t -> t
(** Build the connection [f x = B x xor cf], [g x = B x xor cg].
    Always independent; {!is_mi_stage} iff [B] is invertible or has
    corank 1 with [cf xor cg] outside its image. *)

(** {1 Affine inference (static-analysis substrate)} *)

val affine_pair : t -> ((Gf2.t * Bv.t) * (Gf2.t * Bv.t)) option
(** [affine_pair c] is [Some ((Bf, cf), (Bg, cg))] when both child
    functions are affine over GF(2) — [f x = Bf x xor cf] and
    [g x = Bg x xor cg] — and [None] otherwise.  Verified pointwise
    in O(2^width) integer operations (constant work per label via the
    lowest-set-bit recurrence), strictly cheaper than the
    O(width * 2^width) basis witness scan of {!is_independent}.

    The connection is independent iff [affine_pair] succeeds with
    [Bf = Bg] (the shared linear part of {!linear_form}); an affine
    pair with [Bf <> Bg], or a non-affine child function, refutes
    independence. *)

val is_independent_fast : t -> bool
(** Affine-inference fast path for {!is_independent}: same verdict
    (qcheck-enforced), one O(2^width) pass.  This is the decider the
    analysis-backed fast paths in {!Equivalence} use. *)

val independent_split : t -> t option
(** Independence depends on the chosen [(f, g)] decomposition: the
    same arc multiset can carry both independent and non-independent
    splits (reversing an independent stage with an arbitrary parent
    split is the canonical offender).  [independent_split c] decides
    whether the {e graph} of [c] admits any independent decomposition
    and returns one if so: the candidate linear part is pinned down by
    the children of [0] and of the basis vectors (at most a handful of
    combinations), then verified pointwise.  [O(width * 2^width)]
    overall. *)

val random_independent : Random.State.t -> width:int -> t
(** A random independent connection that is a valid MI stage; flips a
    coin between the invertible-[B] and corank-1 cases. *)

val random_any : Random.State.t -> width:int -> t
(** A uniformly random valid MI stage (almost surely {e not}
    independent for [width >= 3]): a random 2-regular bipartite
    multigraph realized as a random permutation of arc slots. *)

(** {1 Reversal (Proposition 1)} *)

val reverse_any : t -> t
(** Some connection describing the reversed stage: each node [y]'s two
    parents split first-seen-first between the reverse [f] and [g].
    Valid for any MI stage.  Pleasant consequence of the scan order
    (tested, see [test_connection]): on an {e independent} input the
    resulting split is again independent — picking the smaller parent
    of each pair clears the top bit in which the parents differ, a
    linear projection, so the split stays affine; in the corank-1 case
    this coincides with Proposition 1's subspace construction. *)

val reverse_independent : t -> t option
(** Proposition 1's construction: an {e independent} connection for
    the reversed stage.  [None] when the input is not independent or
    not a valid MI stage.  Case 1 of the proof ([f], [g] bijections)
    returns [(f^-1, g^-1)]; case 2 splits parents along the subspace
    [A] spanned by a basis-completion of the kernel generator. *)

val to_arcs : t -> (int * int) list
(** Arc list [(x, child)], two per node, in label order. *)

val pp : Format.formatter -> t -> unit
