(** Constructive isomorphism between MI-digraphs.

    The paper's Theorem 3 proves existence of an isomorphism onto the
    Baseline; this module actually produces one — a per-stage
    bijection of node labels — via backtracking that exploits the
    stage structure (BFS ordering, candidates derived from already-
    mapped neighbours), which is far faster than the generic
    {!Mineq_graph.Iso} search it is benchmarked against (ablation
    X1). *)

type mapping = int array array
(** [mapping.(s).(x)] is the image label (stage [s+1], 0-based array)
    of node [x] of stage [s+1]. *)

val find : ?limit:int -> Mi_digraph.t -> Mi_digraph.t -> mapping option
(** An isomorphism from the first MI-digraph onto the second, or
    [None].  [limit] bounds backtracking nodes (0 = unlimited);
    raises [Failure] when exceeded. *)

val to_baseline : ?limit:int -> Mi_digraph.t -> mapping option
(** Isomorphism onto [Baseline.network n]. *)

val verify : Mi_digraph.t -> Mi_digraph.t -> mapping -> bool
(** Certificate check: every stage map is a bijection and every arc
    multiplicity is preserved in both directions. *)

val apply : Mi_digraph.t -> mapping -> Mi_digraph.t
(** Relabel the first network through the mapping; [verify g h m]
    implies [Mi_digraph.equal (apply g m) h]. *)

val automorphism_count : ?limit:int -> Mi_digraph.t -> int
(** Number of stage-respecting automorphisms (enumeration; small
    [n] only).  The Baseline on [n] stages has [2^(2^(n-1) - 1) *
    ...] — experimentally interesting; see the test suite. *)
