type 'a classified = { representative : Mi_digraph.t; members : 'a list }

let signature g =
  let buf = Buffer.create 128 in
  List.iter
    (fun (lo, hi, found, _) -> Buffer.add_string buf (Printf.sprintf "c%d.%d=%d;" lo hi found))
    (Properties.full_matrix g);
  for i = 1 to Mi_digraph.stages g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "b%d=%b%b;" i
         (Properties.output_buddy_stage g i)
         (Properties.input_buddy_stage g i))
  done;
  (* Path-count rows, each sorted, the rows sorted: invariant under
     relabelling of either boundary stage. *)
  let rows =
    Array.to_list (Banyan.path_count_matrix g)
    |> List.map (fun row -> List.sort compare (Array.to_list row))
    |> List.sort compare
  in
  List.iter
    (fun row -> Buffer.add_string buf (String.concat "," (List.map string_of_int row) ^ ";"))
    rows;
  Buffer.contents buf

let classify tagged =
  let classes = ref [] in
  List.iter
    (fun (g, tag) ->
      let sg = signature g in
      let rec place = function
        | [] -> classes := !classes @ [ ref (g, sg, [ tag ]) ]
        | cls :: rest ->
            let rep, s, tags = !cls in
            if s = sg && Option.is_some (Iso_min.find g rep) then cls := (rep, s, tag :: tags)
            else place rest
      in
      place !classes)
    tagged;
  List.map
    (fun cls ->
      let rep, _, tags = !cls in
      { representative = rep; members = List.rev tags })
    !classes

let class_count gs = List.length (classify (List.map (fun g -> (g, ())) gs))

let contains_baseline cls =
  (Equivalence.by_characterization cls.representative).equivalent

let sample_banyan_census rng ~n ~samples ~attempts =
  let rec draw k acc =
    if k = 0 then List.rev acc
    else
      match Counterexample.random_banyan rng ~n ~attempts with
      | None -> List.rev acc
      | Some g -> draw (k - 1) ((g, samples - k) :: acc)
  in
  classify (draw samples [])
