type 'a classified = { representative : Mi_digraph.t; members : 'a list }

let signature g =
  let buf = Buffer.create 128 in
  List.iter
    (fun (lo, hi, found, _) -> Buffer.add_string buf (Printf.sprintf "c%d.%d=%d;" lo hi found))
    (Properties.full_matrix g);
  for i = 1 to Mi_digraph.stages g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "b%d=%b%b;" i
         (Properties.output_buddy_stage g i)
         (Properties.input_buddy_stage g i))
  done;
  (* Path-count rows, each sorted, the rows sorted: invariant under
     relabelling of either boundary stage. *)
  let rows =
    Array.to_list (Banyan.path_count_matrix g)
    |> List.map (fun row -> List.sort compare (Array.to_list row))
    |> List.sort compare
  in
  List.iter
    (fun row -> Buffer.add_string buf (String.concat "," (List.map string_of_int row) ^ ";"))
    rows;
  Buffer.contents buf

(* Bucketed classification.  The key is any isomorphism invariant
   (equal keys necessary for isomorphism): networks shard into
   key-buckets first and Iso_min runs only within a bucket, so the
   expensive refutation searches between networks the key already
   separates never happen.  Class identity and order are key-agnostic:
   classes are reported in first-appearance order of their first
   member and members stay in input order, so any sound key — the
   fingerprint, the legacy signature, or a constant — produces the
   identical classified list, only at different cost.  Buckets scan in
   insertion order, which keeps the within-bucket representative
   choice deterministic too. *)

type 'a cls = { rep : Mi_digraph.t; mutable tags : 'a list }

let classify_keyed ~key tagged =
  let order = ref [] in
  let buckets = Hashtbl.create 64 in
  List.iter
    (fun (g, tag) ->
      let k = key g in
      let bucket =
        match Hashtbl.find_opt buckets k with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.add buckets k b;
            b
      in
      let rec place = function
        | [] ->
            let c = { rep = g; tags = [ tag ] } in
            bucket := !bucket @ [ c ];
            order := c :: !order
        | c :: rest ->
            if Option.is_some (Iso_min.find g c.rep) then c.tags <- tag :: c.tags
            else place rest
      in
      place !bucket)
    tagged;
  List.rev_map (fun c -> { representative = c.rep; members = List.rev c.tags }) !order

let classify tagged = classify_keyed ~key:Fingerprint.of_network tagged

let classify_pairwise tagged = classify_keyed ~key:(fun _ -> 0) tagged

let bucket_stats tagged =
  let keys = Hashtbl.create 64 in
  List.iter
    (fun (g, _) ->
      let k = Fingerprint.of_network g in
      match Hashtbl.find_opt keys k with
      | Some n -> Hashtbl.replace keys k (n + 1)
      | None -> Hashtbl.add keys k 1)
    tagged;
  let buckets = Hashtbl.length keys in
  let classes = List.length (classify tagged) in
  (buckets, classes)

let class_count gs = List.length (classify (List.map (fun g -> (g, ())) gs))

let contains_baseline cls =
  (Equivalence.by_characterization cls.representative).equivalent

let sample_banyan_census rng ~n ~samples ~attempts =
  let rec draw k acc =
    if k = 0 then List.rev acc
    else
      match Counterexample.random_banyan rng ~n ~attempts with
      | None -> List.rev acc
      | Some g -> draw (k - 1) ((g, samples - k) :: acc)
  in
  classify (draw samples [])
