(** The six "classical" networks whose equivalence Wu and Feng proved
    by hand and which the paper derives in one stroke: each is a stack
    of PIPID link permutations, hence (being Banyan) Baseline-
    equivalent by Theorem 3.

    Stage conventions (link permutation between stages [i] and
    [i+1], [1 <= i <= n-1], on [2^n] link labels):
    - {b Omega} (Lawrie): perfect shuffle [sigma] at every gap.
    - {b Flip} (Batcher): inverse shuffle [sigma^-1] at every gap.
    - {b Indirect binary n-cube} (Pease): butterfly [beta_i] at gap
      [i].
    - {b Modified data manipulator} (Feng): butterfly [beta_(n-i)] at
      gap [i].
    - {b Baseline} (Wu–Feng): inverse sub-shuffle [sigma_(n-i+1)^-1]
      at gap [i]; identical (label-for-label) to the recursive
      construction in {!Baseline.network}.
    - {b Reverse Baseline}: sub-shuffle [sigma_(i+1)] at gap [i];
      identical to [Mi_digraph.reverse (Baseline.network n)]. *)

type kind =
  | Omega
  | Flip
  | Indirect_binary_cube
  | Modified_data_manipulator
  | Baseline_net
  | Reverse_baseline_net

val all_kinds : kind list

val name : kind -> string

val of_name : string -> kind option
(** Case-insensitive; accepts the names printed by {!name} as well as
    short aliases ("omega", "flip", "cube", "mdm", "baseline",
    "reverse-baseline"). *)

val thetas : kind -> n:int -> Mineq_perm.Perm.t list
(** The index-digit permutation at each of the [n-1] gaps. *)

val network : kind -> n:int -> Mi_digraph.t

val all_networks : n:int -> (string * Mi_digraph.t) list
