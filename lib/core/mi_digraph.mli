(** Multistage interconnection digraphs (paper, Section 2).

    An MI-digraph with [n] stages has [n * 2^(n-1)] nodes partitioned
    into stages [1 .. n] of [2^(n-1)] nodes each, with arcs only from
    stage [i] to stage [i+1]; every node has out-degree 2 (except
    stage [n]) and in-degree 2 (except stage 1).  Nodes are labelled
    by [(n-1)]-bit strings within their stage.

    Internally the adjacency is stored as one {!Connection.t} per
    inter-stage gap — the decomposition [(f, g)] the paper introduces
    ("such a decomposition ... exists as the outdegree of a node is
    always two").  The decomposition is not canonical (swapping [f]
    and [g] anywhere yields the same digraph); graph-level operations
    are insensitive to it. *)

type t

val stages : t -> int
(** The number of stages, [n >= 1]. *)

val width : t -> int
(** Label bits per node: [n - 1]. *)

val nodes_per_stage : t -> int
(** [2^(n-1)]. *)

val total_nodes : t -> int

val inputs : t -> int
(** [N = 2^n], the number of network inputs (and outputs). *)

val create : Connection.t list -> t
(** [create conns] builds the [n]-stage MI-digraph whose gap
    [i -> i+1] is [List.nth conns (i-1)].  Raises [Invalid_argument]
    if the list is empty... use {!single_stage} for [n = 1] — or if
    widths disagree or any connection violates the in-degree-2
    requirement. *)

val single_stage : width:int -> t
(** The degenerate 1-stage MI-digraph with [2^width] isolated nodes
    (only meaningful for recursion base cases when [width = 0]). *)

val connection : t -> int -> Connection.t
(** [connection g i] is the connection between stages [i] and [i+1],
    [1 <= i <= n-1] (stages are 1-based as in the paper). *)

val connections : t -> Connection.t list

val children : t -> stage:int -> Mineq_bitvec.Bv.t -> Mineq_bitvec.Bv.t * Mineq_bitvec.Bv.t
(** Children in the next stage of a node at [stage < n]. *)

val parents : t -> stage:int -> Mineq_bitvec.Bv.t -> Mineq_bitvec.Bv.t list
(** Parents in the previous stage of a node at [stage > 1]. *)

val reverse : t -> t
(** The MI-digraph of the reverse network [G^-1]: arcs flipped and
    stages renumbered so stage 1 of the result is stage [n] of the
    argument. *)

val node_id : t -> stage:int -> Mineq_bitvec.Bv.t -> int
(** Flat vertex id used by {!to_digraph}: stage-major, label-minor. *)

val node_of_id : t -> int -> int * Mineq_bitvec.Bv.t
(** Inverse of {!node_id}: [(stage, label)]. *)

val to_digraph : t -> Mineq_graph.Digraph.t
(** The flat digraph over all [n * 2^(n-1)] nodes. *)

val subgraph : t -> lo:int -> hi:int -> Mineq_graph.Digraph.t
(** [(G)_{lo..hi}]: the sub-digraph on stages [lo .. hi] inclusive
    (1-based, [1 <= lo <= hi <= n]), as a flat digraph whose vertex
    ids are [(stage - lo) * 2^(n-1) + label]. *)

val equal : t -> t -> bool
(** Same stage count and identical arc multisets at every gap
    (i.e. label-preserving equality, not mere isomorphism). *)

val relabel : t -> (stage:int -> Mineq_bitvec.Bv.t -> Mineq_bitvec.Bv.t) -> t
(** Apply a bijection to the node labels of every stage (checked).
    Produces an isomorphic MI-digraph; used to manufacture equivalent
    networks whose connections are no longer independent. *)

val map_gaps : t -> (int -> Connection.t -> Connection.t) -> t
(** Rebuild with transformed connections (1-based gap index). *)

val is_valid : t -> bool
(** Re-checks the degree invariants (always true for values built by
    {!create}). *)

val pp : Format.formatter -> t -> unit
