(** Multistage interconnection digraphs (paper, Section 2).

    An MI-digraph with [n] stages has [n * 2^(n-1)] nodes partitioned
    into stages [1 .. n] of [2^(n-1)] nodes each, with arcs only from
    stage [i] to stage [i+1]; every node has out-degree 2 (except
    stage [n]) and in-degree 2 (except stage 1).  Nodes are labelled
    by [(n-1)]-bit strings within their stage.

    Internally the adjacency is stored as one {!Connection.t} per
    inter-stage gap — the decomposition [(f, g)] the paper introduces
    ("such a decomposition ... exists as the outdegree of a node is
    always two").  The decomposition is not canonical (swapping [f]
    and [g] anywhere yields the same digraph); graph-level operations
    are insensitive to it. *)

type t

type packed = private {
  p_stages : int;  (** [n] *)
  p_width : int;  (** [n - 1] label digits *)
  p_radix : int;  (** digits run over [0 .. p_radix - 1]; [2] here *)
  p_per : int;  (** [r^(n-1)] nodes per stage *)
  p_child : int array array;
      (** Per-gap child tables on stage labels, interleaved by port:
          [p_child.(k).(r * x + j)] is the [h_j]-child label of label
          [x] across gap [k+1] (0-based gap arrays, 1-based paper
          gaps).  For [r = 2], port 0 is the [f]-child and port 1 the
          [g]-child. *)
  p_succ : int array;
      (** Children in dense node ids, CSR with implicit stride-[r]
          offsets (out-degree is uniformly [r]): node [id] of stages
          [1 .. n-1] has children [p_succ.(r * id + j)] for
          [j in 0 .. r-1] (port order).  Length [r (n-1) r^(n-1)]. *)
  p_pred : int array;
      (** Parents in dense node ids: node [id] of stages [2 .. n] has
          parents [p_pred.(r * (id - per) + j)] for [j in 0 .. r-1],
          filled in deterministic order (ascending source label,
          ascending out-port — for [r = 2]: [f]-arc before [g]-arc) —
          the order that numbers a cell's input ports in the
          simulator. *)
}
(** One-shot flat-array compilation of a whole network: dense
    stage-major node ids [(stage - 1) * r^(n-1) + label], per-gap
    digit-word child tables, and stride-[r] CSR
    successor/predecessor adjacency.  The record is radix-generic so
    the same kernels ({!Packed}) serve this module's binary networks
    ([r = 2], obtained via {!packed}) and the [r x r] networks of
    [lib/radix] (obtained via {!pack_tables}).  Read-only (enforced
    by [private]). *)

val packed : t -> packed
(** The packed compilation of the network (always [p_radix = 2]),
    built on first use and cached on the record (so
    reverse/relabel/map_gaps results, being new records, repack
    independently).  Safe to call from parallel engine workers:
    packing is deterministic and idempotent. *)

val fingerprint_cache : t -> (int * int) option
(** The cached structural-fingerprint halves, if [Fingerprint] has
    already computed them for this record.  The slot lives on the
    network record (like the packed cache) so derived records —
    reverse, relabel, map_gaps results — fingerprint independently;
    only [Fingerprint] interprets the two ints. *)

val set_fingerprint_cache : t -> int * int -> unit
(** Store the fingerprint halves.  Benign race under Domains: the
    computation is deterministic, so concurrent writers agree. *)

val pack_tables :
  stages:int -> radix:int -> width:int -> child:(gap:int -> port:int -> int -> int) -> packed
(** General packed constructor for radix-[r] stage networks:
    [child ~gap ~port x] is the label of the [port]-child of cell [x]
    across the 1-based [gap].  Tabulates the child functions, builds
    the stride-[r] CSR adjacency and validates the result.  Raises
    [Invalid_argument] when [radix < 2], [width < 0],
    [stages <> width + 1] (for [stages > 1]; a 1-stage network may
    pair any width with its zero gaps), [radix^width] overflows, a
    child label falls outside [0 .. r^width - 1], or some cell's
    in-degree exceeds [radix] (each gap carries exactly
    [r · r^width] arcs, so no excess means in-degree exactly [radix]
    everywhere). *)

val stages : t -> int
(** The number of stages, [n >= 1]. *)

val width : t -> int
(** Label bits per node: [n - 1]. *)

val nodes_per_stage : t -> int
(** [2^(n-1)]. *)

val total_nodes : t -> int

val inputs : t -> int
(** [N = 2^n], the number of network inputs (and outputs). *)

val create : Connection.t list -> t
(** [create conns] builds the [n]-stage MI-digraph whose gap
    [i -> i+1] is [List.nth conns (i-1)].  Raises [Invalid_argument]
    when the list is empty (the degenerate 1-stage network has no
    connections — build it with {!single_stage} instead), when widths
    disagree, when the width does not match the stage count, or when
    any connection violates the in-degree-2 requirement.  The
    [Invalid_argument] message of the empty case names
    [single_stage] explicitly. *)

val single_stage : width:int -> t
(** The degenerate 1-stage MI-digraph with [2^width] isolated nodes
    (only meaningful for recursion base cases when [width = 0]).
    Raises [Invalid_argument] on a negative width; [~width:0] is the
    smallest valid instance (one node, no arcs). *)

val connection : t -> int -> Connection.t
(** [connection g i] is the connection between stages [i] and [i+1],
    [1 <= i <= n-1] (stages are 1-based as in the paper). *)

val connections : t -> Connection.t list

val children : t -> stage:int -> Mineq_bitvec.Bv.t -> Mineq_bitvec.Bv.t * Mineq_bitvec.Bv.t
(** Children in the next stage of a node at [stage < n]. *)

val parents : t -> stage:int -> Mineq_bitvec.Bv.t -> Mineq_bitvec.Bv.t list
(** Parents in the previous stage of a node at [stage > 1]. *)

val reverse : t -> t
(** The MI-digraph of the reverse network [G^-1]: arcs flipped and
    stages renumbered so stage 1 of the result is stage [n] of the
    argument. *)

val node_id : t -> stage:int -> Mineq_bitvec.Bv.t -> int
(** Flat vertex id used by {!to_digraph}: stage-major, label-minor. *)

val node_of_id : t -> int -> int * Mineq_bitvec.Bv.t
(** Inverse of {!node_id}: [(stage, label)]. *)

val to_digraph : t -> Mineq_graph.Digraph.t
(** The flat digraph over all [n * 2^(n-1)] nodes. *)

val subgraph : t -> lo:int -> hi:int -> Mineq_graph.Digraph.t
(** [(G)_{lo..hi}]: the sub-digraph on stages [lo .. hi] inclusive
    (1-based, [1 <= lo <= hi <= n]), as a flat digraph whose vertex
    ids are [(stage - lo) * 2^(n-1) + label]. *)

val equal : t -> t -> bool
(** Same stage count and identical arc multisets at every gap
    (i.e. label-preserving equality, not mere isomorphism). *)

val relabel : t -> (stage:int -> Mineq_bitvec.Bv.t -> Mineq_bitvec.Bv.t) -> t
(** Apply a bijection to the node labels of every stage (checked).
    Produces an isomorphic MI-digraph; used to manufacture equivalent
    networks whose connections are no longer independent. *)

val map_gaps : t -> (int -> Connection.t -> Connection.t) -> t
(** Rebuild with transformed connections (1-based gap index). *)

val is_valid : t -> bool
(** Re-checks the degree invariants (always true for values built by
    {!create}). *)

val pp : Format.formatter -> t -> unit
