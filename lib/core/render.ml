module Bv = Mineq_bitvec.Bv

let bit_string ~width x = if width = 0 then "0" else Bv.to_bit_string ~width x

let stage_table g =
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  let w = Mi_digraph.width g in
  let buf = Buffer.create 1024 in
  let cell_width = (3 * max w 1) + 6 in
  for s = 1 to n do
    Buffer.add_string buf (Printf.sprintf "%-*s" cell_width (Printf.sprintf "stage %d" s))
  done;
  Buffer.add_char buf '\n';
  for x = 0 to per - 1 do
    for s = 1 to n do
      let text =
        if s < n then begin
          let cf, cg = Mi_digraph.children g ~stage:s x in
          Printf.sprintf "%s->%s,%s" (bit_string ~width:w x) (bit_string ~width:w cf)
            (bit_string ~width:w cg)
        end
        else bit_string ~width:w x
      in
      Buffer.add_string buf (Printf.sprintf "%-*s" cell_width text)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let gap_matrix g i =
  let per = Mi_digraph.nodes_per_stage g in
  let w = Mi_digraph.width g in
  let c = Mi_digraph.connection g i in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "gap %d -> %d (rows: stage %d, cols: stage %d)\n" i (i + 1) i (i + 1));
  for x = 0 to per - 1 do
    Buffer.add_string buf (bit_string ~width:w x);
    Buffer.add_char buf ' ';
    let cf, cg = Connection.children c x in
    for y = 0 to per - 1 do
      let m = (if cf = y then 1 else 0) + if cg = y then 1 else 0 in
      Buffer.add_char buf (match m with 0 -> '.' | 1 -> '#' | _ -> '2')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let wiring_diagram g =
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  let w = Mi_digraph.width g in
  let buf = Buffer.create 4096 in
  for s = 1 to n do
    Buffer.add_string buf (Printf.sprintf "stage %d:\n" s);
    for x = 0 to per - 1 do
      Buffer.add_string buf (Printf.sprintf "  [%s]\n" (bit_string ~width:w x))
    done;
    if s < n then begin
      Buffer.add_string buf "  links:\n";
      for x = 0 to per - 1 do
        let cf, cg = Mi_digraph.children g ~stage:s x in
        Buffer.add_string buf
          (Printf.sprintf "    %s:0 -> %s   %s:1 -> %s\n" (bit_string ~width:w x)
             (bit_string ~width:w cf) (bit_string ~width:w x) (bit_string ~width:w cg))
      done
    end
  done;
  Buffer.contents buf

(* Recover the index permutation of a gap when the connection is a
   PIPID stage.  From the closed form: bit j of (f x xor f 0) is bit
   (theta (j+1) - 1) of x, so the linear part's columns identify
   theta on 1 .. n-1; the slot where f 0 and g 0 differ (if any) is
   theta^-1 0, and the one unused digit value belongs to theta 0. *)
let recognize_gap g i =
  let n = Mi_digraph.stages g in
  let w = Mi_digraph.width g in
  let c = Mi_digraph.connection g i in
  match Connection.linear_form c with
  | None -> None
  | Some (_, cf0, cg0) ->
      let diff = cf0 lxor cg0 in
      let theta = Array.make n (-1) in
      let consistent = ref true in
      (if diff = 0 then theta.(0) <- 0
       else if Bv.popcount diff = 1 then begin
         let slot = ref 0 in
         for j = 0 to w - 1 do
           if Bv.bit diff j then slot := j
         done;
         theta.(!slot + 1) <- 0
       end
       else consistent := false);
      if !consistent then begin
        let f0 = Connection.f c 0 in
        for i_bit = 0 to w - 1 do
          let fx = Connection.f c (Bv.unit i_bit) lxor f0 in
          for j = 0 to w - 1 do
            if Bv.bit fx j then
              if theta.(j + 1) < 0 then theta.(j + 1) <- i_bit + 1 else consistent := false
          done
        done
      end;
      if not !consistent then None
      else begin
        (* Exactly one digit value should remain for the one unset
           position (theta 0, or a position whose source bit was
           dropped). *)
        let used = Array.make n false in
        Array.iter (fun v -> if v >= 0 then used.(v) <- true) theta;
        let missing = ref [] in
        for v = n - 1 downto 0 do
          if not used.(v) then missing := v :: !missing
        done;
        let unset = ref [] in
        Array.iteri (fun j v -> if v < 0 then unset := j :: !unset) theta;
        match (!unset, !missing) with
        | [ j ], [ v ] -> (
            theta.(j) <- v;
            match Mineq_perm.Perm.of_array theta with
            | exception Invalid_argument _ -> None
            | t ->
                if Connection.equal_graph c (Pipid_net.connection ~n t) then Some t else None)
        | [], [] -> (
            match Mineq_perm.Perm.of_array theta with
            | exception Invalid_argument _ -> None
            | t ->
                if Connection.equal_graph c (Pipid_net.connection ~n t) then Some t else None)
        | _ -> None
      end

let network_summary g =
  let n = Mi_digraph.stages g in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "MI-digraph: %d stages, %d nodes/stage, %d terminals\n" n
       (Mi_digraph.nodes_per_stage g) (Mi_digraph.inputs g));
  Buffer.add_string buf (Printf.sprintf "Banyan: %b\n" (Banyan.is_banyan g));
  for i = 1 to n - 1 do
    let c = Mi_digraph.connection g i in
    let pipid =
      match recognize_gap g i with
      | Some theta -> Format.asprintf "PIPID theta = %a" Mineq_perm.Perm.pp_cycles theta
      | None -> "not PIPID"
    in
    Buffer.add_string buf
      (Printf.sprintf "gap %d: independent=%b  out-buddy=%b  in-buddy=%b  %s\n" i
         (Connection.is_independent c)
         (Properties.output_buddy_stage g i)
         (Properties.input_buddy_stage g i)
         pipid)
  done;
  Buffer.contents buf

let to_dot ?(name = "mineq") g =
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  let w = Mi_digraph.width g in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n  node [shape=box];\n" name);
  for s = 1 to n do
    Buffer.add_string buf "  { rank=same;";
    for x = 0 to per - 1 do
      Buffer.add_string buf (Printf.sprintf " s%d_%d;" s x)
    done;
    Buffer.add_string buf " }\n";
    for x = 0 to per - 1 do
      Buffer.add_string buf
        (Printf.sprintf "  s%d_%d [label=\"%s\"];\n" s x (bit_string ~width:w x))
    done
  done;
  for s = 1 to n - 1 do
    for x = 0 to per - 1 do
      let cf, cg = Mi_digraph.children g ~stage:s x in
      Buffer.add_string buf (Printf.sprintf "  s%d_%d -> s%d_%d;\n" s x (s + 1) cf);
      Buffer.add_string buf (Printf.sprintf "  s%d_%d -> s%d_%d;\n" s x (s + 1) cg)
    done
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let labels_figure ~width =
  let buf = Buffer.create 256 in
  Bv.iter_universe ~width ~f:(fun x ->
      Buffer.add_string buf (Bv.to_tuple_string ~width x);
      Buffer.add_char buf '\n');
  Buffer.contents buf
