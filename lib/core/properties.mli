(** The paper's component-counting properties [P(i,j)], [P(1,each j)],
    [P(each i,n)] (Section 2), the buddy properties of Agrawal used for
    contrast, and the component structure examined by Lemma 2.

    [P(i,j)] holds when the sub-digraph on stages [i..j] has exactly
    [2^(n-1-(j-i))] connected components (components of the undirected
    underlying graph).  The characterization theorem of [12]: a Banyan
    MI-digraph satisfying [P(1,each j)] and [P(each i,n)] is isomorphic to the
    Baseline MI-digraph. *)

val expected_components : Mi_digraph.t -> lo:int -> hi:int -> int
(** [2^(n-1-(hi-lo))]. *)

val component_count : Mi_digraph.t -> lo:int -> hi:int -> int
(** Number of connected components of [(G)_{lo..hi}], by flat
    union-find over the packed child tables
    ({!Packed.component_count}) — no arc materialization. *)

val component_count_subgraph : Mi_digraph.t -> lo:int -> hi:int -> int
(** The historical pipeline — materialize the window as a
    [Digraph] and BFS it — kept as the benchmarking baseline and
    cross-check oracle; always agrees with {!component_count}
    (qcheck-enforced). *)

val component_count_dsu : Mi_digraph.t -> lo:int -> hi:int -> int
(** Union-find directly on the boxed connections, skipping digraph
    construction (the pre-packed engine, see the
    [x1_p_properties_*] benches); always agrees with
    {!component_count} (qcheck-enforced). *)

val component_count_affine : Mi_digraph.t -> lo:int -> hi:int -> int option
(** Symbolic count for windows whose every gap is independent
    (children [B x xor cf, B x xor cg]): the stage-[lo] slice of each
    component is a coset of the subspace reached by the downward
    recursion [S_hi = 0], [S_j = B_j^-1(span(S_{j+1} + {delta_j}))],
    so the count is [2^(width - dim S_lo)] — O((hi-lo) poly(width))
    rank/kernel computations, no traversal.  [None] when some gap in
    the window is not independent; always agrees with
    {!component_count} when defined (qcheck-enforced). *)

val p_ij : Mi_digraph.t -> lo:int -> hi:int -> bool
(** The [P(lo, hi)] property.  Decided by {!component_count_affine}
    when the window supports it, by {!component_count} otherwise. *)

val p_one_star : Mi_digraph.t -> bool
(** [P(1, j)] for every [j in 1..n]. *)

val p_star_n : Mi_digraph.t -> bool
(** [P(i, n)] for every [i in 1..n]. *)

val full_matrix : Mi_digraph.t -> (int * int * int * int) list
(** Diagnostic: [(lo, hi, found, expected)] for every [lo <= hi]. *)

val satisfies_all : Mi_digraph.t -> bool
(** [P(i,j)] for {e every} pair — strictly stronger than the
    theorem's hypotheses; holds for the Baseline (experimentally
    interesting: the theorem only needs the two families). *)

(** {1 Buddy properties (Agrawal [8])}

    Two nodes are (output) buddies when they have the same two
    children.  The stage has the output-buddy property when the
    children sets of its nodes are pairwise equal or disjoint, and
    the input-buddy property symmetrically for parents.  Agrawal's
    Theorem 1 claimed these suffice for equivalence; [10] showed they
    do not — our counterexample search regenerates that gap. *)

val output_buddy_stage : Mi_digraph.t -> int -> bool
(** [output_buddy_stage g i] checks the gap [i -> i+1],
    [1 <= i <= n-1]. *)

val input_buddy_stage : Mi_digraph.t -> int -> bool

val has_buddy_property : Mi_digraph.t -> bool
(** Both buddy properties at every gap. *)

(** {1 Lemma 2 component structure (Figure 3)} *)

type component_profile = {
  lo : int;
  hi : int;
  components : Mineq_bitvec.Bv.t list array array;
      (** [components.(c).(s)] = labels of component [c]'s nodes in
          stage [lo + s], ascending. *)
}

val component_profile : Mi_digraph.t -> lo:int -> hi:int -> component_profile
(** The stage-by-stage membership of every component of
    [(G)_{lo..hi}] — the objects [A_j] in Lemma 2's proof. *)

val lemma2_translate_structure : Mi_digraph.t -> bool
(** Verifies the inductive invariant inside Lemma 2's proof on an
    {e independent-connection} Banyan digraph: for every suffix window
    [(G)_{j..n}] and every component [A] of it, the set of buddies
    [B_j] of [A]'s stage-[j] slice is a translated set of that slice
    (and the component intersects each stage in [2^(n-hi... )]
    equally-sized slices).  Returns [false] on any violation; on
    digraphs without independent connections the invariant may
    legitimately fail. *)
