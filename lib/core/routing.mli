(** Paths and routing through MI-digraphs.

    The [N = 2^n] inputs attach two-per-node to stage 1 (input [i]
    enters cell [i / 2] on port [i mod 2]) and likewise the outputs
    leave stage [n].  On a Banyan network the input-output path is
    unique; PIPID-built networks additionally support "very simple bit
    directed routing" (paper, Sections 1 and 4): at each stage the
    out-port is a fixed digit of the destination — the delta property
    of Kruskal and Snir.  This module finds paths, extracts the
    port words, decides the delta/bidelta properties, and analyses
    link conflicts of permutation traffic (used by [Mineq_sim]). *)

type path = {
  input : int;  (** terminal id, [0 .. 2^n - 1] *)
  output : int;
  cells : int array;  (** visited cell label at each stage, length [n] *)
  ports : int array;  (** out-port chosen at stages [1 .. n-1], then the output port *)
}

val route : Mi_digraph.t -> input:int -> output:int -> path option
(** The unique input-to-output path, or [None] if there is no path.
    Raises [Failure] if there are several (non-Banyan). *)

val route_all_from : Mi_digraph.t -> input:int -> path option array
(** Paths to every output (index = output id), sharing one backward
    reachability sweep per output.  [O(n 2^n)] per call. *)

val port_word : path -> int
(** The port choices packed into an integer, stage-1 choice as the
    {e most} significant bit and the output port as bit 0 — on a delta
    network this is a function of [output] only. *)

val is_delta : Mi_digraph.t -> bool
(** Every output is reached by the same port word from every input. *)

val is_bidelta : Mi_digraph.t -> bool
(** Delta in both directions (Kruskal–Snir): [is_delta] of the
    network and of its reverse. *)

val delta_schedule : Mi_digraph.t -> int array option
(** When delta: for each output, the shared port word. *)

val destination_tag_table : Mi_digraph.t -> int array array option
(** When delta: [t.(s).(o)] is the port to take at stage [s+1]
    (0-based array over the [n] hops including the exit) to reach
    output [o] — the "bit-directed" control table. *)

(** {1 Permutation traffic analysis} *)

type conflict_report = {
  max_link_load : int;
  conflicted_links : int;  (** links carrying more than one path *)
  paths_routed : int;
}

val link_loads : Mi_digraph.t -> (int * int) list -> conflict_report
(** [(input, output)] pairs, each routed on its unique path; loads
    counted on every inter-stage link and on the output links.
    Non-routable pairs are ignored (and not counted in
    [paths_routed]). *)

val is_admissible : Mi_digraph.t -> (int * int) list -> bool
(** The pairs can be routed simultaneously without sharing any link
    ([max_link_load <= 1]). *)

val admissible_fraction :
  Random.State.t -> Mi_digraph.t -> samples:int -> float
(** Monte-Carlo estimate of the fraction of full permutations that
    are admissible (a classic MIN figure of merit; Omega passes
    exactly [2^...] of them — see the experiments). *)
