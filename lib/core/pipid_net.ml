module Bv = Mineq_bitvec.Bv
module Perm = Mineq_perm.Perm

let check_theta ~n theta =
  if Perm.size theta <> n then invalid_arg "Pipid_net: theta must be a permutation of size n"

let k_of ~n theta =
  check_theta ~n theta;
  Perm.apply (Perm.inverse theta) 0

let is_degenerate ~n theta = k_of ~n theta = 0

let routing_bit_slot ~n theta =
  let k = k_of ~n theta in
  if k = 0 then None else Some (k - 1)

(* Child of node [x] through port [b]: bit [j] of the child is bit
   [theta (j+1)] of the link label [(x << 1) lor b]. *)
let child ~n theta b x =
  let y = (x lsl 1) lor b in
  let rec build j acc =
    if j = n - 1 then acc
    else build (j + 1) (Bv.set_bit acc j (Bv.bit y (Perm.apply theta (j + 1))))
  in
  build 0 0

let connection ~n theta =
  check_theta ~n theta;
  Connection.make ~width:(n - 1) ~f:(child ~n theta 0) ~g:(child ~n theta 1)

let beta ~n theta alpha =
  check_theta ~n theta;
  child ~n theta 0 alpha

(* The induced permutation applied to a full n-bit link label. *)
let link_image ~n theta y =
  let rec build j acc =
    if j = n then acc else build (j + 1) (Bv.set_bit acc j (Bv.bit y (Perm.apply theta j)))
  in
  build 0 0

let affine_connection ~n theta ~offset =
  check_theta ~n theta;
  if not (Bv.is_valid ~width:n offset) then
    invalid_arg "Pipid_net.affine_connection: offset out of range";
  (* The permuted link label is [A y xor offset]; the receiving cell
     is that label shifted right (the dropped low bit only selects the
     in-port, which the digraph does not record). *)
  let via b x = (link_image ~n theta ((x lsl 1) lor b) lxor offset) lsr 1 in
  Connection.make ~width:(n - 1) ~f:(via 0) ~g:(via 1)
