module Perm = Mineq_perm.Perm

let network n =
  if n < 2 then invalid_arg "Benes.network: need n >= 2";
  Cascade.concat
    (Cascade.of_mi_digraph (Baseline.network n))
    (Cascade.of_mi_digraph (Baseline.reverse n))

(* The recursive structure the looping algorithm descends: at depth d
   the network splits into 2^d independent sub-Benes blocks living
   between the mirrored stages d+1 and 2n-1-d, a block's cells sharing
   their top d label bits, the next bit down (select_bit) telling the
   upper from the lower sub-network. *)
type level = {
  depth : int;
  left_stage : int;
  right_stage : int;
  blocks : int;
  block_terminals : int;
  select_bit : int;
}

let levels ~n =
  if n < 2 then invalid_arg "Benes.levels: need n >= 2";
  List.init (n - 1) (fun d ->
      { depth = d;
        left_stage = d + 1;
        right_stage = (2 * n) - 1 - d;
        blocks = 1 lsl d;
        block_terminals = 1 lsl (n - d);
        select_bit = n - 2 - d
      })

(* Looping 2-colouring: terminals sharing an input switch must use
   different subnetworks, and so must terminals whose images share an
   output switch.  The union of the two pairings is a disjoint union
   of even cycles, so greedy alternating propagation never
   contradicts itself. *)
let looping_colours ~terminals perm =
  let out_partner = Array.make terminals (-1) in
  let seen = Array.make (terminals / 2) (-1) in
  for t = 0 to terminals - 1 do
    let osw = perm.(t) / 2 in
    if seen.(osw) < 0 then seen.(osw) <- t
    else begin
      out_partner.(t) <- seen.(osw);
      out_partner.(seen.(osw)) <- t
    end
  done;
  let colour = Array.make terminals (-1) in
  let stack = Stack.create () in
  for t0 = 0 to terminals - 1 do
    if colour.(t0) < 0 then begin
      Stack.push (t0, 0) stack;
      while not (Stack.is_empty stack) do
        let t, c = Stack.pop stack in
        if colour.(t) < 0 then begin
          colour.(t) <- c;
          Stack.push (t lxor 1, 1 - c) stack;
          Stack.push (out_partner.(t), 1 - c) stack
        end
        else assert (colour.(t) = c)
      done
    end
  done;
  colour

(* Cell sequence per terminal, by the recursive Benes structure:
   enter switch t/2, descend into subnetwork s(t) (whose cells carry
   s(t) as their top label bit), recurse on the induced half-size
   permutation of switch indices, exit at switch (perm t)/2. *)
let rec route_cells n perm =
  let terminals = 1 lsl n in
  if Array.length perm <> terminals then invalid_arg "Benes.route_cells: permutation size";
  if n = 1 then Array.init 2 (fun _ -> [| 0 |])
  else begin
    let colour = looping_colours ~terminals perm in
    let half = terminals / 2 in
    let sub_perm = Array.init 2 (fun _ -> Array.make half (-1)) in
    for t = 0 to terminals - 1 do
      sub_perm.(colour.(t)).(t / 2) <- perm.(t) / 2
    done;
    let sub_cells = Array.map (route_cells (n - 1)) sub_perm in
    let top = 1 lsl (n - 2) in
    Array.init terminals (fun t ->
        let s = colour.(t) in
        let inner = Array.map (fun c -> (s * top) lor c) sub_cells.(s).(t / 2) in
        Array.concat [ [| t / 2 |]; inner; [| perm.(t) / 2 |] ])
  end

let route_permutation _cascade ~n p =
  let terminals = 1 lsl n in
  if Perm.size p <> terminals then invalid_arg "Benes.route_permutation: permutation size";
  let perm = Perm.to_array p in
  let cells = route_cells n perm in
  List.init terminals (fun t ->
      { Cascade.input = t; output = perm.(t); cells = cells.(t) })

let rearrangeable_check rng ~n ~samples =
  let net = network n in
  let terminals = 1 lsl n in
  let rec go k =
    k = 0
    ||
    let p = Perm.random rng terminals in
    let routes = route_permutation (Some net) ~n p in
    Cascade.link_disjoint net routes && go (k - 1)
  in
  go samples
