module Family = Mineq_perm.Pipid_family

type kind =
  | Omega
  | Flip
  | Indirect_binary_cube
  | Modified_data_manipulator
  | Baseline_net
  | Reverse_baseline_net

let all_kinds =
  [ Omega;
    Flip;
    Indirect_binary_cube;
    Modified_data_manipulator;
    Baseline_net;
    Reverse_baseline_net
  ]

let name = function
  | Omega -> "omega"
  | Flip -> "flip"
  | Indirect_binary_cube -> "indirect-binary-cube"
  | Modified_data_manipulator -> "modified-data-manipulator"
  | Baseline_net -> "baseline"
  | Reverse_baseline_net -> "reverse-baseline"

let of_name s =
  match String.lowercase_ascii s with
  | "omega" -> Some Omega
  | "flip" -> Some Flip
  | "indirect-binary-cube" | "cube" | "ibc" -> Some Indirect_binary_cube
  | "modified-data-manipulator" | "mdm" -> Some Modified_data_manipulator
  | "baseline" -> Some Baseline_net
  | "reverse-baseline" | "rbaseline" -> Some Reverse_baseline_net
  | _ -> None

let thetas kind ~n =
  if n < 2 then invalid_arg "Classical.thetas: need n >= 2";
  let gaps = n - 1 in
  let gap i =
    (* i ranges over 1 .. n-1. *)
    match kind with
    | Omega -> Family.perfect_shuffle ~width:n
    | Flip -> Family.inverse_shuffle ~width:n
    | Indirect_binary_cube -> Family.butterfly ~width:n i
    | Modified_data_manipulator -> Family.butterfly ~width:n (n - i)
    | Baseline_net -> Family.inverse_sub_shuffle ~width:n (n - i + 1)
    | Reverse_baseline_net -> Family.sub_shuffle ~width:n (i + 1)
  in
  List.init gaps (fun k -> gap (k + 1))

let network kind ~n = Link_spec.network_of_thetas ~n (thetas kind ~n)

let all_networks ~n = List.map (fun k -> (name k, network k ~n)) all_kinds
