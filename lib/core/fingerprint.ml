(* Canonical structural fingerprints: iterated Weisfeiler-Leman-style
   colour refinement over the packed CSR arrays, reduced to a 128-bit
   hash that is invariant under the stage-respecting isomorphisms
   Iso_min decides.

   Plain WL is useless on MI-digraphs: every non-boundary node has
   exactly [r] successors and [r] predecessors, so with the stage as
   the initial colour a vertex-refinement round learns nothing — the
   whole inventory at a given shape would share one fingerprint.  The
   degeneracy is broken by seeding the refinement with the paper's own
   substrate: for every stage window [lo .. hi], a flat union-find
   over the child tables labels each node with the {e size} of its
   component in that window (component sizes are preserved by any
   relabelling, so the seed is canonical), and the per-window
   component counts — the P(i,j) census — are folded into the hash as
   well.  On top of that seed the WL rounds do real work: a node's
   round signature combines its colour with the {e sorted} colour
   multisets of its [r] children and [r] parents (sorted, because an
   isomorphism may swap the non-canonical f/g port decomposition), and
   colours are re-compressed each round by sorted-signature rank — a
   canonical numbering, unlike first-touch order, which would leak
   labels.  Refinement only splits classes, so the colour count is
   non-decreasing and the loop stops at the first round that creates
   no new class; every round's (signature, multiplicity) histogram is
   folded into two independently mixed 63-bit accumulators.

   Equal fingerprints are necessary, not sufficient, for isomorphism:
   the census and equivalence fast paths treat a fingerprint mismatch
   as a proof of non-isomorphism and fall back to the Iso_min search
   only within colliding buckets.

   The whole pass runs on preallocated int arrays (the {!scratch}):
   with a reused scratch, {!run} allocates nothing — module-level
   helpers instead of closures, local [ref]s only where the compiler
   unboxes them — which the census bench gates at 0.0 minor words per
   network. *)

type t = { fa : int; fb : int }

let equal a b = a.fa = b.fa && a.fb = b.fb

let compare a b =
  let c = Int.compare a.fa b.fa in
  if c <> 0 then c else Int.compare a.fb b.fb

(* Fits a 63-bit int literal; odd, so multiplication permutes. *)
let mult_a = 0x2545f4914f6cdd1d

let mult_b = 0x1e3779b97f4a7c15

let mix_a h k =
  let h = (h + k) * mult_a in
  h lxor (h lsr 29)

let mix_b h k =
  let h = (h lxor k) * mult_b in
  h lxor (h lsr 31)

let hash t = mix_a t.fa t.fb land max_int

let to_hex t = Printf.sprintf "%016x%016x" (t.fa land max_int) (t.fb land max_int)

type scratch = {
  s_total : int;
  s_radix : int;
  parent : int array;  (* DSU parent over dense ids, per window *)
  size : int array;  (* DSU component sizes *)
  colour : int array;  (* current colour per node *)
  next_colour : int array;  (* colour being assigned this round *)
  sigs : int array;  (* per-node signature hash of the round *)
  sorted : int array;  (* signature sort buffer for rank compression *)
  nbr : int array;  (* r neighbour colours, sorted in place *)
  mutable acc_a : int;  (* the two fingerprint halves being folded *)
  mutable acc_b : int;
}

let scratch_for (p : Mi_digraph.packed) =
  let total = p.p_stages * p.p_per in
  let n = max 1 total in
  { s_total = total;
    s_radix = p.p_radix;
    parent = Array.make n 0;
    size = Array.make n 0;
    colour = Array.make n 0;
    next_colour = Array.make n 0;
    sigs = Array.make n 0;
    sorted = Array.make n 0;
    nbr = Array.make p.p_radix 0;
    acc_a = 0;
    acc_b = 0
  }

(* Module-level helpers: the hot path must not construct closures. *)

let rec dsu_find parent x =
  let p = parent.(x) in
  if p = x then x
  else begin
    parent.(x) <- parent.(p);
    dsu_find parent parent.(x)
  end

(* Insertion sort of the first [k] slots — [k = r] is tiny. *)
let sort_small a k =
  for i = 1 to k - 1 do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

(* In-place heapsort of [a.(0 .. len-1)].  [Array.sort] would do, but
   its stdlib implementation allocates (closures over the comparator
   and a [Bottom] exception per trickle), and this sort sits inside
   the zero-allocation contract.  Module-level helpers, int refs only
   — the compiler eliminates non-escaping refs. *)
let sift_down (a : int array) root len =
  let r = ref root in
  let live = ref true in
  while !live do
    let child = (2 * !r) + 1 in
    if child >= len then live := false
    else begin
      let child = if child + 1 < len && a.(child) < a.(child + 1) then child + 1 else child in
      if a.(!r) < a.(child) then begin
        let t = a.(!r) in
        a.(!r) <- a.(child);
        a.(child) <- t;
        r := child
      end
      else live := false
    end
  done

let heap_sort a len =
  for i = (len / 2) - 1 downto 0 do
    sift_down a i len
  done;
  for i = len - 1 downto 1 do
    let t = a.(0) in
    a.(0) <- a.(i);
    a.(i) <- t;
    sift_down a 0 i
  done

(* Rank of [v] in [sorted.(0 .. k-1)] (strictly increasing, [v]
   present). *)
let rank_of sorted k v =
  let lo = ref 0 and hi = ref (k - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if sorted.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

(* Fold the (value, multiplicity) histogram of [s.sigs] into the
   accumulators, assign each node's new colour as the sorted rank of
   its signature, and return the number of distinct colours. *)
let compress_round s total =
  Array.blit s.sigs 0 s.sorted 0 total;
  heap_sort s.sorted total;
  let sorted = s.sorted in
  (* Histogram fold over runs, then in-place dedupe to a strictly
     increasing prefix for the rank lookup. *)
  let i = ref 0 in
  while !i < total do
    let v = sorted.(!i) in
    let j = ref !i in
    while !j < total && sorted.(!j) = v do
      incr j
    done;
    s.acc_a <- mix_a (mix_a s.acc_a v) (!j - !i);
    s.acc_b <- mix_b (mix_b s.acc_b v) (!j - !i);
    i := !j
  done;
  let k = ref 1 in
  for i = 1 to total - 1 do
    if sorted.(i) <> sorted.(!k - 1) then begin
      sorted.(!k) <- sorted.(i);
      incr k
    end
  done;
  let k = !k in
  let sigs = s.sigs and next = s.next_colour in
  for id = 0 to total - 1 do
    next.(id) <- rank_of sorted k sigs.(id)
  done;
  k

(* Seed signatures: stage, then for every non-trivial stage window the
   size of the node's component (windows in fixed (lo, hi) order, so
   the fold is canonical); window component counts go straight into
   the accumulators — the P(i, j) census is part of the hash even
   where the per-node sizes happen to agree. *)
let seed_windows s (p : Mi_digraph.packed) =
  let per = p.p_per in
  let n = p.p_stages in
  let r = p.p_radix in
  let total = n * per in
  let sigs = s.sigs in
  for id = 0 to total - 1 do
    sigs.(id) <- mix_a 0x5eed (id / per)
  done;
  let parent = s.parent and size = s.size in
  for lo = 1 to n do
    for hi = lo + 1 to n do
      let base = (lo - 1) * per in
      let stop = hi * per in
      for id = base to stop - 1 do
        parent.(id) <- id;
        size.(id) <- 1
      done;
      let count = ref (stop - base) in
      for gap = lo to hi - 1 do
        let ch = p.p_child.(gap - 1) in
        let src = (gap - 1) * per in
        let dst = gap * per in
        for x = 0 to per - 1 do
          for j = 0 to r - 1 do
            let ra = dsu_find parent (src + x) in
            let rb = dsu_find parent (dst + ch.((r * x) + j)) in
            if ra <> rb then begin
              let big, small = if size.(ra) >= size.(rb) then (ra, rb) else (rb, ra) in
              parent.(small) <- big;
              size.(big) <- size.(big) + size.(small);
              decr count
            end
          done
        done
      done;
      s.acc_a <- mix_a s.acc_a !count;
      s.acc_b <- mix_b s.acc_b !count;
      for id = base to stop - 1 do
        sigs.(id) <- mix_a sigs.(id) size.(dsu_find parent id)
      done
    done
  done

(* One WL round: node signature = own colour, then the sorted colours
   of its [r] children, a separator, the sorted colours of its [r]
   parents.  Boundary stages fold fixed sentinels so "no children"
   cannot alias a colour multiset. *)
let wl_round s (p : Mi_digraph.packed) =
  let per = p.p_per in
  let n = p.p_stages in
  let r = p.p_radix in
  let total = n * per in
  let colour = s.colour and sigs = s.sigs and nbr = s.nbr in
  let succ = p.p_succ and pred = p.p_pred in
  for id = 0 to total - 1 do
    let stage = id / per in
    let h = ref (mix_a 0x2c01 colour.(id)) in
    if stage < n - 1 then begin
      for j = 0 to r - 1 do
        nbr.(j) <- colour.(succ.((r * id) + j))
      done;
      sort_small nbr r;
      for j = 0 to r - 1 do
        h := mix_a !h nbr.(j)
      done
    end
    else h := mix_a !h 0x7eef;
    h := mix_a !h 0x51ab;
    if stage > 0 then begin
      let base = r * (id - per) in
      for j = 0 to r - 1 do
        nbr.(j) <- colour.(pred.(base + j))
      done;
      sort_small nbr r;
      for j = 0 to r - 1 do
        h := mix_a !h nbr.(j)
      done
    end
    else h := mix_a !h 0x3007;
    sigs.(id) <- !h
  done

let into s (p : Mi_digraph.packed) =
  let total = p.p_stages * p.p_per in
  if s.s_total <> total || s.s_radix <> p.p_radix then
    invalid_arg "Fingerprint.run: scratch was built for a different network shape";
  s.acc_a <- mix_a (mix_a (mix_a 0x6d696e p.p_stages) p.p_width) p.p_radix;
  s.acc_b <- mix_b (mix_b (mix_b 0x6571 p.p_stages) p.p_width) p.p_radix;
  seed_windows s p;
  let ncol = ref (compress_round s total) in
  Array.blit s.next_colour 0 s.colour 0 total;
  let stable = ref false in
  while not !stable do
    wl_round s p;
    let k = compress_round s total in
    Array.blit s.next_colour 0 s.colour 0 total;
    if k = !ncol then stable := true else ncol := k
  done

let result s = { fa = s.acc_a; fb = s.acc_b }

let of_packed ?scratch p =
  let s = match scratch with Some s -> s | None -> scratch_for p in
  into s p;
  result s

let of_network ?scratch g =
  match Mi_digraph.fingerprint_cache g with
  | Some (fa, fb) -> { fa; fb }
  | None ->
      let t = of_packed ?scratch (Mi_digraph.packed g) in
      Mi_digraph.set_fingerprint_cache g (t.fa, t.fb);
      t

let colour_classes ?scratch p =
  let s = match scratch with Some s -> s | None -> scratch_for p in
  into s p;
  let k = ref 0 in
  Array.iter (fun c -> if c + 1 > !k then k := c + 1) s.colour;
  !k

let pp ppf t = Format.pp_print_string ppf (to_hex t)
