(** Section 4 of the paper: the connection induced by a PIPID link
    permutation, in closed form, with its independence witness.

    Let [theta] (size [n]) be the index-digit permutation of the
    stage and [k = theta^-1 0].  If [k = 0] the two out-links of
    every cell land on the same next-stage cell: double links, and
    the network cannot be Banyan (Figure 5).  Otherwise the children
    of node [x] are

    {[ f x = (x_theta(n-1), ..., x_theta(k+1), 0, x_theta(k-1), ..., x_theta(1))
       g x = (x_theta(n-1), ..., x_theta(k+1), 1, x_theta(k-1), ..., x_theta(1)) ]}

    and the connection is independent with witness
    [beta alpha = (alpha_theta(n-1), ..., 0, ..., alpha_theta(1))]
    (the [f]-image of [alpha]). *)

val routing_bit_slot : n:int -> Mineq_perm.Perm.t -> int option
(** [Some (k - 1)]: the node-label bit position of the child that
    carries the chosen out-port ([k = theta^-1 0]); [None] when
    [k = 0] (degenerate double-link stage).  This slot is what makes
    bit-directed routing work. *)

val is_degenerate : n:int -> Mineq_perm.Perm.t -> bool
(** [theta^-1 0 = 0]: Figure 5's stage. *)

val connection : n:int -> Mineq_perm.Perm.t -> Connection.t
(** The closed-form connection above (also valid in the degenerate
    case, where [f = g]).  Agrees with
    [Link_spec.connection_of_link_perm ~n (Index_perm.induce theta)]
    — enforced by the test suite. *)

val beta : n:int -> Mineq_perm.Perm.t -> Mineq_bitvec.Bv.t -> Mineq_bitvec.Bv.t
(** The paper's explicit independence witness for a given [alpha]. *)

(** {1 Beyond PIPID: affine link permutations}

    The independence property is strictly wider than PIPID: any
    {e affine} link permutation [y -> A y xor offset] with [A] a PIPID
    permutation also induces an independent connection (the witness
    picks up no dependence on the offset, since
    [(u xor v) / 2 = u/2 xor v/2] for the dropped low bit).  Networks
    mixing shuffles with "exchange"-style fixed xors therefore fall
    under Theorem 3 as well — an extension the paper's framework
    yields for free. *)

val affine_connection :
  n:int -> Mineq_perm.Perm.t -> offset:Mineq_bitvec.Bv.t -> Connection.t
(** The connection of the link permutation
    [y -> (induced theta) y xor offset].  Independent for every
    [theta] and [offset]; Banyan-compatible iff
    [theta^-1 0 <> 0] (the offset never creates double links on its
    own). *)
