module Bv = Mineq_bitvec.Bv
module Digraph = Mineq_graph.Digraph

(* Packed representation: the whole network compiled once into flat
   int arrays so the enumeration deciders (component census, Banyan
   path counting, isomorphism refinement, per-packet routing) run with
   no per-arc allocation.  The record is radix-generic: stages of
   [r^(n-1)] cells whose labels are [(n-1)]-digit words in base [r]
   ([r = 2] for this module's own networks, arbitrary [r >= 2] for
   lib/radix).  Node ids are dense and stage-major:
   [id = (stage - 1) * r^(n-1) + label].

   The successor/predecessor adjacency is CSR with {e implicit}
   offsets: every non-boundary node has out-degree and in-degree
   exactly [r] (enforced by {!create} / {!pack_tables}), so the offset
   array of a general CSR degenerates to the constant stride [r] and
   only the target arrays are stored.  [p_succ] holds, for each node
   of stages [1 .. n-1], its [r] children as dense ids in port order
   (for [r = 2]: the [f]-child first); [p_pred] holds, for each node
   of stages [2 .. n], its [r] parents as dense ids, in deterministic
   fill order (ascending source label, ascending out-port — for
   [r = 2]: [f] before [g]) — the same order the simulator uses to
   number a cell's input ports.  [p_child] is the per-gap child table
   on stage labels, interleaved by port: [p_child.(k).(r * x + j)] is
   the [h_j]-child of label [x] across gap [k+1], for kernels that
   work stage-relative. *)
type packed = {
  p_stages : int;
  p_width : int;
  p_radix : int;
  p_per : int;
  p_child : int array array;
  p_succ : int array;
  p_pred : int array;
}

type t = {
  width : int;
  conns : Connection.t array;
  mutable packed_cache : packed option;
  mutable fp_cache : (int * int) option;
}

let make ~width conns = { width; conns; packed_cache = None; fp_cache = None }

let stages g = Array.length g.conns + 1

let width g = g.width

let nodes_per_stage g = Bv.universe_size ~width:g.width

let total_nodes g = stages g * nodes_per_stage g

let inputs g = 2 * nodes_per_stage g

let single_stage ~width =
  if width < 0 then invalid_arg "Mi_digraph.single_stage: negative width";
  make ~width [||]

let create conns =
  match conns with
  | [] -> invalid_arg "Mi_digraph.create: empty connection list (use single_stage)"
  | c0 :: rest ->
      let w = Connection.width c0 in
      List.iter
        (fun c ->
          if Connection.width c <> w then invalid_arg "Mi_digraph.create: width mismatch")
        rest;
      (* The paper requires stage count n and 2^(n-1) nodes per stage:
         with k connections we get n = k + 1 stages, so the width must
         be n - 1 = k... no: the width is a free parameter of the node
         labelling; the MI-digraph definition ties them.  Enforce it. *)
      let n = List.length conns + 1 in
      if w <> n - 1 then
        invalid_arg
          (Printf.sprintf
             "Mi_digraph.create: %d connections need width %d (2^(n-1) nodes per stage), got \
              %d"
             (n - 1) (n - 1) w);
      List.iter
        (fun c ->
          if not (Connection.is_mi_stage c) then
            invalid_arg "Mi_digraph.create: a connection violates the in-degree-2 requirement")
        conns;
      make ~width:w (Array.of_list conns)

let connection g i =
  if i < 1 || i > Array.length g.conns then invalid_arg "Mi_digraph.connection: bad gap index";
  g.conns.(i - 1)

let connections g = Array.to_list g.conns

let children g ~stage x =
  if stage < 1 || stage >= stages g then invalid_arg "Mi_digraph.children: bad stage";
  Connection.children g.conns.(stage - 1) x

let parents g ~stage x =
  if stage <= 1 || stage > stages g then invalid_arg "Mi_digraph.parents: bad stage";
  Connection.parents g.conns.(stage - 2) x

let reverse g =
  if Array.length g.conns = 0 then g
  else begin
    let rev = Array.map Connection.reverse_any g.conns in
    let m = Array.length rev in
    make ~width:g.width (Array.init m (fun i -> rev.(m - 1 - i)))
  end

let node_id g ~stage x = ((stage - 1) * nodes_per_stage g) + x

let node_of_id g id =
  let per = nodes_per_stage g in
  ((id / per) + 1, id mod per)

(* Packing ---------------------------------------------------------- *)

let pack_tables ~stages:n ~radix ~width ~child =
  if radix < 2 then invalid_arg "Mi_digraph.pack_tables: radix must be >= 2";
  if width < 0 then invalid_arg "Mi_digraph.pack_tables: negative width";
  if n < 1 then invalid_arg "Mi_digraph.pack_tables: need stages >= 1";
  if n > 1 && n <> width + 1 then
    invalid_arg "Mi_digraph.pack_tables: need stages = width + 1";
  let per = ref 1 in
  for _ = 1 to width do
    if !per > max_int / radix then invalid_arg "Mi_digraph.pack_tables: radix^width overflows";
    per := !per * radix
  done;
  let per = !per in
  let gaps = n - 1 in
  let p_child =
    Array.init gaps (fun k ->
        Array.init (radix * per) (fun i ->
            let x = i / radix and j = i mod radix in
            let y = child ~gap:(k + 1) ~port:j x in
            if y < 0 || y >= per then
              invalid_arg "Mi_digraph.pack_tables: child label out of range";
            y))
  in
  let p_succ = Array.make (radix * gaps * per) 0 in
  let p_pred = Array.make (radix * gaps * per) 0 in
  let fill = Array.make per 0 in
  for k = 0 to gaps - 1 do
    let ch = p_child.(k) in
    let base_src = k * per in
    let base_dst = (k + 1) * per in
    Array.fill fill 0 per 0;
    for x = 0 to per - 1 do
      for j = 0 to radix - 1 do
        let c = ch.((radix * x) + j) in
        p_succ.((radix * (base_src + x)) + j) <- base_dst + c;
        (* Predecessor slots of the stage-(k+2) node [c] live at
           [radix * (k * per + label)]: each gap has exactly
           [radix * per] arcs, so no cell exceeding in-degree [radix]
           means every cell hits it exactly — the slots are always
           filled, ascending source label and out-port per source. *)
        let slot = fill.(c) in
        if slot >= radix then
          invalid_arg "Mi_digraph.pack_tables: a cell exceeds in-degree radix";
        p_pred.((radix * ((k * per) + c)) + slot) <- base_src + x;
        fill.(c) <- slot + 1
      done
    done
  done;
  { p_stages = n; p_width = width; p_radix = radix; p_per = per; p_child; p_succ; p_pred }

let build_packed g =
  pack_tables ~stages:(stages g) ~radix:2 ~width:g.width
    ~child:(fun ~gap ~port x ->
      let c = g.conns.(gap - 1) in
      if port = 0 then Connection.f c x else Connection.g c x)

let packed g =
  match g.packed_cache with
  | Some p -> p
  | None ->
      let p = build_packed g in
      (* Benign race under Domains: packing is deterministic, so
         concurrent builders store equal values and either wins. *)
      g.packed_cache <- Some p;
      p

(* Fingerprint cache slot.  The slot lives here (rather than in
   Fingerprint's own table) so it dies with the record, but this
   module never computes fingerprints — Fingerprint owns the halves'
   meaning.  Same benign race as [packed_cache]: the computation is
   deterministic, so concurrent writers store equal pairs. *)

let fingerprint_cache g = g.fp_cache

let set_fingerprint_cache g fp = g.fp_cache <- Some fp

let subgraph g ~lo ~hi =
  let n = stages g in
  if lo < 1 || hi > n || lo > hi then invalid_arg "Mi_digraph.subgraph: bad stage range";
  let p = packed g in
  let per = p.p_per in
  let window = hi - lo + 1 in
  (* Build the successor arrays directly from the packed child tables
     (no intermediate arc list). *)
  let succ =
    Array.init (window * per) (fun v ->
        let s = v / per in
        if s = window - 1 then [||]
        else begin
          let x = v mod per in
          let ch = p.p_child.(lo + s - 1) in
          let base = (s + 1) * per in
          let r = p.p_radix in
          Array.init r (fun j -> base + ch.((r * x) + j))
        end)
  in
  Digraph.of_succ succ

let to_digraph g = subgraph g ~lo:1 ~hi:(stages g)

let equal a b =
  stages a = stages b
  && width a = width b
  && Array.for_all2 Connection.equal_graph a.conns b.conns

let relabel g rename =
  let per = nodes_per_stage g in
  let n = stages g in
  let maps =
    Array.init n (fun s ->
        let stage = s + 1 in
        let img = Array.init per (fun x -> rename ~stage x) in
        let seen = Array.make per false in
        Array.iter
          (fun v ->
            if v < 0 || v >= per || seen.(v) then
              invalid_arg "Mi_digraph.relabel: not a bijection on a stage";
            seen.(v) <- true)
          img;
        img)
  in
  let inv =
    Array.map
      (fun img ->
        let inv = Array.make per 0 in
        Array.iteri (fun i v -> inv.(v) <- i) img;
        inv)
      maps
  in
  let conns =
    Array.mapi
      (fun k c ->
        (* Gap k joins stage k+1 (index k) to stage k+2 (index k+1):
           new_f(y) = map_{k+1}(f(inv_k(y))). *)
        Connection.make ~width:g.width
          ~f:(fun y -> maps.(k + 1).(Connection.f c inv.(k).(y)))
          ~g:(fun y -> maps.(k + 1).(Connection.g c inv.(k).(y))))
      g.conns
  in
  make ~width:g.width conns

let map_gaps g f = create (List.mapi (fun i c -> f (i + 1) c) (Array.to_list g.conns))

let is_valid g =
  (width g = stages g - 1 || Array.length g.conns = 0)
  && Array.for_all Connection.is_mi_stage g.conns

let pp ppf g =
  Format.fprintf ppf "@[<v>MI-digraph: %d stages, %d nodes per stage@," (stages g)
    (nodes_per_stage g);
  Array.iteri
    (fun i c -> Format.fprintf ppf "gap %d -> %d:@,  %a@," (i + 1) (i + 2) Connection.pp c)
    g.conns;
  Format.fprintf ppf "@]"
