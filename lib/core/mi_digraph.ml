module Bv = Mineq_bitvec.Bv
module Digraph = Mineq_graph.Digraph

type t = { width : int; conns : Connection.t array }

let stages g = Array.length g.conns + 1

let width g = g.width

let nodes_per_stage g = Bv.universe_size ~width:g.width

let total_nodes g = stages g * nodes_per_stage g

let inputs g = 2 * nodes_per_stage g

let single_stage ~width =
  if width < 0 then invalid_arg "Mi_digraph.single_stage: negative width";
  { width; conns = [||] }

let create conns =
  match conns with
  | [] -> invalid_arg "Mi_digraph.create: empty connection list (use single_stage)"
  | c0 :: rest ->
      let w = Connection.width c0 in
      List.iter
        (fun c ->
          if Connection.width c <> w then invalid_arg "Mi_digraph.create: width mismatch")
        rest;
      (* The paper requires stage count n and 2^(n-1) nodes per stage:
         with k connections we get n = k + 1 stages, so the width must
         be n - 1 = k... no: the width is a free parameter of the node
         labelling; the MI-digraph definition ties them.  Enforce it. *)
      let n = List.length conns + 1 in
      if w <> n - 1 then
        invalid_arg
          (Printf.sprintf
             "Mi_digraph.create: %d connections need width %d (2^(n-1) nodes per stage), got \
              %d"
             (n - 1) (n - 1) w);
      List.iter
        (fun c ->
          if not (Connection.is_mi_stage c) then
            invalid_arg "Mi_digraph.create: a connection violates the in-degree-2 requirement")
        conns;
      { width = w; conns = Array.of_list conns }

let connection g i =
  if i < 1 || i > Array.length g.conns then invalid_arg "Mi_digraph.connection: bad gap index";
  g.conns.(i - 1)

let connections g = Array.to_list g.conns

let children g ~stage x =
  if stage < 1 || stage >= stages g then invalid_arg "Mi_digraph.children: bad stage";
  Connection.children g.conns.(stage - 1) x

let parents g ~stage x =
  if stage <= 1 || stage > stages g then invalid_arg "Mi_digraph.parents: bad stage";
  Connection.parents g.conns.(stage - 2) x

let reverse g =
  if Array.length g.conns = 0 then g
  else begin
    let rev = Array.map Connection.reverse_any g.conns in
    let m = Array.length rev in
    { g with conns = Array.init m (fun i -> rev.(m - 1 - i)) }
  end

let node_id g ~stage x = ((stage - 1) * nodes_per_stage g) + x

let node_of_id g id =
  let per = nodes_per_stage g in
  ((id / per) + 1, id mod per)

let gap_arcs g ~gap ~lo =
  (* Arcs of the connection at [gap] (1-based), with flat ids relative
     to a window starting at stage [lo]. *)
  let per = nodes_per_stage g in
  let base_src = (gap - lo) * per in
  let base_dst = (gap + 1 - lo) * per in
  List.map
    (fun (x, y) -> (base_src + x, base_dst + y))
    (Connection.to_arcs g.conns.(gap - 1))

let subgraph g ~lo ~hi =
  let n = stages g in
  if lo < 1 || hi > n || lo > hi then invalid_arg "Mi_digraph.subgraph: bad stage range";
  let per = nodes_per_stage g in
  let arcs =
    List.concat (List.init (hi - lo) (fun k -> gap_arcs g ~gap:(lo + k) ~lo))
  in
  Digraph.create ~vertices:((hi - lo + 1) * per) arcs

let to_digraph g = subgraph g ~lo:1 ~hi:(stages g)

let equal a b =
  stages a = stages b
  && width a = width b
  && Array.for_all2 Connection.equal_graph a.conns b.conns

let relabel g rename =
  let per = nodes_per_stage g in
  let n = stages g in
  let maps =
    Array.init n (fun s ->
        let stage = s + 1 in
        let img = Array.init per (fun x -> rename ~stage x) in
        let seen = Array.make per false in
        Array.iter
          (fun v ->
            if v < 0 || v >= per || seen.(v) then
              invalid_arg "Mi_digraph.relabel: not a bijection on a stage";
            seen.(v) <- true)
          img;
        img)
  in
  let inv =
    Array.map
      (fun img ->
        let inv = Array.make per 0 in
        Array.iteri (fun i v -> inv.(v) <- i) img;
        inv)
      maps
  in
  let conns =
    Array.mapi
      (fun k c ->
        (* Gap k joins stage k+1 (index k) to stage k+2 (index k+1):
           new_f(y) = map_{k+1}(f(inv_k(y))). *)
        Connection.make ~width:g.width
          ~f:(fun y -> maps.(k + 1).(Connection.f c inv.(k).(y)))
          ~g:(fun y -> maps.(k + 1).(Connection.g c inv.(k).(y))))
      g.conns
  in
  { g with conns }

let map_gaps g f = create (List.mapi (fun i c -> f (i + 1) c) (Array.to_list g.conns))

let is_valid g =
  (width g = stages g - 1 || Array.length g.conns = 0)
  && Array.for_all Connection.is_mi_stage g.conns

let pp ppf g =
  Format.fprintf ppf "@[<v>MI-digraph: %d stages, %d nodes per stage@," (stages g)
    (nodes_per_stage g);
  Array.iteri
    (fun i c -> Format.fprintf ppf "gap %d -> %d:@,  %a@," (i + 1) (i + 2) Connection.pp c)
    g.conns;
  Format.fprintf ppf "@]"
