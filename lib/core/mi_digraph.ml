module Bv = Mineq_bitvec.Bv
module Digraph = Mineq_graph.Digraph

(* Packed representation: the whole network compiled once into flat
   int arrays so the enumeration deciders (component census, Banyan
   path counting, isomorphism refinement, per-packet routing) run with
   no per-arc allocation.  Node ids are dense and stage-major:
   [id = (stage - 1) * 2^(n-1) + label].

   The successor/predecessor adjacency is CSR with {e implicit}
   offsets: every non-boundary node has out-degree and in-degree
   exactly 2 (enforced by {!create}), so the offset array of a general
   CSR degenerates to the constant stride 2 and only the target arrays
   are stored.  [p_succ] holds, for each node of stages [1 .. n-1],
   its two children as dense ids (the [f]-child first); [p_pred]
   holds, for each node of stages [2 .. n], its two parents as dense
   ids, in deterministic fill order (ascending source label, [f]
   before [g]) — the same order the simulator uses to number a cell's
   input ports.  [p_f]/[p_g] are the per-gap child tables on stage
   labels ([p_f.(k).(x)] is the [f]-child of label [x] across gap
   [k+1]), for kernels that work stage-relative. *)
type packed = {
  p_stages : int;
  p_width : int;
  p_per : int;
  p_f : int array array;
  p_g : int array array;
  p_succ : int array;
  p_pred : int array;
}

type t = { width : int; conns : Connection.t array; mutable packed_cache : packed option }

let make ~width conns = { width; conns; packed_cache = None }

let stages g = Array.length g.conns + 1

let width g = g.width

let nodes_per_stage g = Bv.universe_size ~width:g.width

let total_nodes g = stages g * nodes_per_stage g

let inputs g = 2 * nodes_per_stage g

let single_stage ~width =
  if width < 0 then invalid_arg "Mi_digraph.single_stage: negative width";
  make ~width [||]

let create conns =
  match conns with
  | [] -> invalid_arg "Mi_digraph.create: empty connection list (use single_stage)"
  | c0 :: rest ->
      let w = Connection.width c0 in
      List.iter
        (fun c ->
          if Connection.width c <> w then invalid_arg "Mi_digraph.create: width mismatch")
        rest;
      (* The paper requires stage count n and 2^(n-1) nodes per stage:
         with k connections we get n = k + 1 stages, so the width must
         be n - 1 = k... no: the width is a free parameter of the node
         labelling; the MI-digraph definition ties them.  Enforce it. *)
      let n = List.length conns + 1 in
      if w <> n - 1 then
        invalid_arg
          (Printf.sprintf
             "Mi_digraph.create: %d connections need width %d (2^(n-1) nodes per stage), got \
              %d"
             (n - 1) (n - 1) w);
      List.iter
        (fun c ->
          if not (Connection.is_mi_stage c) then
            invalid_arg "Mi_digraph.create: a connection violates the in-degree-2 requirement")
        conns;
      make ~width:w (Array.of_list conns)

let connection g i =
  if i < 1 || i > Array.length g.conns then invalid_arg "Mi_digraph.connection: bad gap index";
  g.conns.(i - 1)

let connections g = Array.to_list g.conns

let children g ~stage x =
  if stage < 1 || stage >= stages g then invalid_arg "Mi_digraph.children: bad stage";
  Connection.children g.conns.(stage - 1) x

let parents g ~stage x =
  if stage <= 1 || stage > stages g then invalid_arg "Mi_digraph.parents: bad stage";
  Connection.parents g.conns.(stage - 2) x

let reverse g =
  if Array.length g.conns = 0 then g
  else begin
    let rev = Array.map Connection.reverse_any g.conns in
    let m = Array.length rev in
    make ~width:g.width (Array.init m (fun i -> rev.(m - 1 - i)))
  end

let node_id g ~stage x = ((stage - 1) * nodes_per_stage g) + x

let node_of_id g id =
  let per = nodes_per_stage g in
  ((id / per) + 1, id mod per)

(* Packing ---------------------------------------------------------- *)

let build_packed g =
  let per = nodes_per_stage g in
  let n = stages g in
  let gaps = n - 1 in
  let p_f = Array.init gaps (fun k -> Array.init per (Connection.f g.conns.(k))) in
  let p_g = Array.init gaps (fun k -> Array.init per (Connection.g g.conns.(k))) in
  let p_succ = Array.make (2 * gaps * per) 0 in
  let p_pred = Array.make (2 * gaps * per) 0 in
  let fill = Array.make per 0 in
  for k = 0 to gaps - 1 do
    let fk = p_f.(k) and gk = p_g.(k) in
    let base_src = k * per in
    let base_dst = (k + 1) * per in
    Array.fill fill 0 per 0;
    for x = 0 to per - 1 do
      let cf = fk.(x) and cg = gk.(x) in
      p_succ.(2 * (base_src + x)) <- base_dst + cf;
      p_succ.((2 * (base_src + x)) + 1) <- base_dst + cg;
      (* Predecessor slots of the stage-(k+2) node [cf]/[cg] live at
         [2 * (k * per + label)]: in-degree is exactly 2, so the two
         slots are always filled, f-arc before g-arc per source. *)
      p_pred.(2 * ((k * per) + cf) + fill.(cf)) <- base_src + x;
      fill.(cf) <- fill.(cf) + 1;
      p_pred.(2 * ((k * per) + cg) + fill.(cg)) <- base_src + x;
      fill.(cg) <- fill.(cg) + 1
    done
  done;
  { p_stages = n; p_width = g.width; p_per = per; p_f; p_g; p_succ; p_pred }

let packed g =
  match g.packed_cache with
  | Some p -> p
  | None ->
      let p = build_packed g in
      (* Benign race under Domains: packing is deterministic, so
         concurrent builders store equal values and either wins. *)
      g.packed_cache <- Some p;
      p

let subgraph g ~lo ~hi =
  let n = stages g in
  if lo < 1 || hi > n || lo > hi then invalid_arg "Mi_digraph.subgraph: bad stage range";
  let p = packed g in
  let per = p.p_per in
  let window = hi - lo + 1 in
  (* Build the successor arrays directly from the packed child tables
     (no intermediate arc list). *)
  let succ =
    Array.init (window * per) (fun v ->
        let s = v / per in
        if s = window - 1 then [||]
        else begin
          let x = v mod per in
          let k = lo + s - 1 in
          let base = (s + 1) * per in
          [| base + p.p_f.(k).(x); base + p.p_g.(k).(x) |]
        end)
  in
  Digraph.of_succ succ

let to_digraph g = subgraph g ~lo:1 ~hi:(stages g)

let equal a b =
  stages a = stages b
  && width a = width b
  && Array.for_all2 Connection.equal_graph a.conns b.conns

let relabel g rename =
  let per = nodes_per_stage g in
  let n = stages g in
  let maps =
    Array.init n (fun s ->
        let stage = s + 1 in
        let img = Array.init per (fun x -> rename ~stage x) in
        let seen = Array.make per false in
        Array.iter
          (fun v ->
            if v < 0 || v >= per || seen.(v) then
              invalid_arg "Mi_digraph.relabel: not a bijection on a stage";
            seen.(v) <- true)
          img;
        img)
  in
  let inv =
    Array.map
      (fun img ->
        let inv = Array.make per 0 in
        Array.iteri (fun i v -> inv.(v) <- i) img;
        inv)
      maps
  in
  let conns =
    Array.mapi
      (fun k c ->
        (* Gap k joins stage k+1 (index k) to stage k+2 (index k+1):
           new_f(y) = map_{k+1}(f(inv_k(y))). *)
        Connection.make ~width:g.width
          ~f:(fun y -> maps.(k + 1).(Connection.f c inv.(k).(y)))
          ~g:(fun y -> maps.(k + 1).(Connection.g c inv.(k).(y))))
      g.conns
  in
  make ~width:g.width conns

let map_gaps g f = create (List.mapi (fun i c -> f (i + 1) c) (Array.to_list g.conns))

let is_valid g =
  (width g = stages g - 1 || Array.length g.conns = 0)
  && Array.for_all Connection.is_mi_stage g.conns

let pp ppf g =
  Format.fprintf ppf "@[<v>MI-digraph: %d stages, %d nodes per stage@," (stages g)
    (nodes_per_stage g);
  Array.iteri
    (fun i c -> Format.fprintf ppf "gap %d -> %d:@,  %a@," (i + 1) (i + 2) Connection.pp c)
    g.conns;
  Format.fprintf ppf "@]"
