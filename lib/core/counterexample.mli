(** Negative instances: Banyan MI-digraphs that are {e not}
    Baseline-equivalent, including ones satisfying Agrawal's buddy
    properties (the gap shown by [10] that motivates the paper's
    stronger machinery — experiment X2). *)

val random_banyan : Random.State.t -> n:int -> attempts:int -> Mi_digraph.t option
(** Rejection-sample uniformly random link-permutation networks until
    one is Banyan. *)

val random_buddy_banyan : Random.State.t -> n:int -> attempts:int -> Mi_digraph.t option
(** Rejection-sample networks whose every stage has both buddy
    properties by construction (random node pairings joined
    pair-to-pair), until one is Banyan. *)

val random_buddy_network : Random.State.t -> n:int -> Mi_digraph.t
(** One buddy-by-construction network (not necessarily Banyan). *)

val find_non_equivalent :
  Random.State.t -> n:int -> attempts:int -> require_buddy:bool -> Mi_digraph.t option
(** Search for a Banyan network that fails the Baseline
    characterization; with [require_buddy] the instance additionally
    satisfies both buddy properties everywhere, exhibiting the
    insufficiency of Agrawal's Theorem 1. *)

val relabelled_equivalent : Random.State.t -> Mi_digraph.t -> Mi_digraph.t
(** Randomly relabel every stage: the result is isomorphic to the
    input (hence exactly as Baseline-equivalent), but its connections
    are almost surely no longer independent — the instance behind
    experiment X5 (independence is sufficient, not necessary). *)
