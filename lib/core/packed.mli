(** Zero-allocation enumeration kernels over the packed network
    representation.

    {!Mi_digraph.packed} compiles a network once into flat int arrays
    (dense stage-major node ids, per-gap digit-word child tables,
    stride-[r] CSR adjacency); this module provides the enumeration
    deciders that run on them: the flat-DSU component census behind
    [P(i,j)], the Banyan path-count DP, and the simulator's downstream
    routing tables.  None of the kernels allocates per arc; with an
    explicit {!scratch} they allocate nothing at all per query, which
    is what lets a census over every stage window — or a parallel
    worker sweeping many networks — run allocation-free after setup.

    Every kernel is radix-generic: the same code serves the binary
    networks of {!Mi_digraph} ([p_radix = 2], via {!of_network}) and
    the [r x r] networks of [lib/radix] (packed via
    {!Mi_digraph.pack_tables}).  The binary case is a specialized
    fast path — inner loops unrolled over the two ports — so [r = 2]
    pays nothing for the generalization.

    The symbolic deciders of [lib/analysis] remain the fast path when
    every gap is affine; these kernels replace the {e enumeration
    fallbacks} (and the old list-materializing pipeline:
    [Mi_digraph.subgraph] via boxed arc lists + BFS). *)

type t = Mi_digraph.packed

val of_network : Mi_digraph.t -> t
(** Same as {!Mi_digraph.packed}: built on first use, cached on the
    network record. *)

val stages : t -> int

val width : t -> int
(** Label digits per node. *)

val radix : t -> int
(** [r]: ports per cell side; 2 for packings of {!Mi_digraph}. *)

val nodes_per_stage : t -> int

val total_nodes : t -> int

val node_id : t -> stage:int -> int -> int
(** Dense id of [(stage, label)] (stage 1-based, as in the paper). *)

val node_of_id : t -> int -> int * int
(** Inverse of {!node_id}: [(stage, label)]. *)

val child : t -> gap:int -> port:int -> int -> int
(** [child p ~gap ~port x]: the [h_port]-child label of label [x]
    across the 1-based [gap], [port in 0 .. r-1]. *)

val child_f : t -> gap:int -> int -> int
(** [child_f p ~gap x]: the [f]-child ([port = 0]) of label [x]
    across the 1-based [gap] — binary port naming, meaningful for
    [radix p = 2]. *)

val child_g : t -> gap:int -> int -> int
(** Likewise for [g] ([port = 1]). *)

val parent : t -> gap:int -> port:int -> int -> int
(** [parent p ~gap ~port y]: the [port]-th parent label of label [y]
    across [gap], in deterministic port-fill order (in-degree is
    exactly [r], so all [r] slots exist; they coincide only on
    multi-links). *)

val parent_a : t -> gap:int -> int -> int
(** [parent_a p ~gap y]/[parent_b p ~gap y]: parent slots 0 and 1 —
    the two parents of a binary packing. *)

val parent_b : t -> gap:int -> int -> int

type scratch
(** Reusable working memory for the kernels, sized for one network:
    a flat DSU over dense node ids plus two stage-wide DP rows.
    Sequential queries may share one scratch; parallel workers must
    each hold their own. *)

val scratch : t -> scratch

val component_count : ?scratch:scratch -> t -> lo:int -> hi:int -> int
(** Connected components of the sub-digraph on stages [lo .. hi]
    (underlying undirected graph), by flat union-find over the child
    tables.  With [?scratch], allocation-free. *)

val component_labels : ?scratch:scratch -> t -> lo:int -> hi:int -> int array * int
(** [(comp, count)]: window-relative component labels
    ([comp.((stage - lo) * per + label)]), components numbered by
    their minimal member in dense-id order (the numbering the
    ascending-vertex BFS used). *)

val first_violation : ?scratch:scratch -> t -> (int * int * int) option
(** Banyan check by forward path-count DP: [Some (source, sink,
    paths)] for the first stage-1/stage-n pair (ascending source,
    then sink) whose path count differs from 1, [None] when the
    network is Banyan.  With [?scratch], allocation-free. *)

val path_count_matrix : t -> int array array
(** [m.(u).(v)]: number of stage-1-[u] to stage-n-[v] paths.  Fresh
    matrix; the DP itself reuses two rows. *)

val downstream : t -> int array array
(** Per-gap flat routing tables for the packet simulator: entry
    [r * cell + out_port] of table [gap - 1] encodes the downstream
    cell and its input-port index as [cell * r + in_port] (for
    [r = 2], the historic [(cell lsl 1) lor in_port]).  Port
    numbering follows the predecessor fill order of
    {!Mi_digraph.packed}. *)
