module Iso = Mineq_graph.Iso

type method_ = Independence | Characterization | Isomorphism

let all_methods = [ Independence; Characterization; Isomorphism ]

let method_name = function
  | Independence -> "independence"
  | Characterization -> "characterization"
  | Isomorphism -> "isomorphism"

type verdict = { equivalent : bool; banyan : bool; detail : string }

let not_banyan v =
  { equivalent = false;
    banyan = false;
    detail = Format.asprintf "not Banyan: %a" Banyan.pp_violation v
  }

(* Symbolic-first Banyan: the O(n^3) D-matrix check when every gap is
   independent, the path-count enumeration otherwise. *)
let banyan_result g =
  match Banyan.symbolic_check g with Some r -> r | None -> Banyan.check g

let by_independence g =
  match banyan_result g with
  | Error v -> not_banyan v
  | Ok () ->
      let bad = ref None in
      List.iteri
        (fun i c ->
          if !bad = None && not (Connection.is_independent_fast c) then bad := Some (i + 1))
        (Mi_digraph.connections g);
      (match !bad with
      | Some gap ->
          { equivalent = false;
            banyan = true;
            detail =
              Printf.sprintf
                "connection at gap %d is not independent (Theorem 3 does not apply; the \
                 network may still be equivalent)"
                gap
          }
      | None ->
          { equivalent = true;
            banyan = true;
            detail = "Banyan with independent connections at every gap (Theorem 3)"
          })

let by_independence_any_split g =
  match banyan_result g with
  | Error v -> not_banyan v
  | Ok () ->
      let bad = ref None in
      List.iteri
        (fun i c ->
          if !bad = None && Option.is_none (Connection.independent_split c) then
            bad := Some (i + 1))
        (Mi_digraph.connections g);
      (match !bad with
      | Some gap ->
          { equivalent = false;
            banyan = true;
            detail =
              Printf.sprintf
                "gap %d admits no independent decomposition (Theorem 3 does not apply; the \
                 network may still be equivalent)"
                gap
          }
      | None ->
          { equivalent = true;
            banyan = true;
            detail =
              "Banyan; every gap admits an independent decomposition (Theorem 3, canonical \
               split)"
          })

let by_characterization g =
  match banyan_result g with
  | Error v -> not_banyan v
  | Ok () ->
      let n = Mi_digraph.stages g in
      let fail lo hi =
        { equivalent = false;
          banyan = true;
          detail =
            Printf.sprintf "P(%d,%d) fails: %d components, expected %d" lo hi
              (Properties.component_count g ~lo ~hi)
              (Properties.expected_components g ~lo ~hi)
        }
      in
      let rec check_prefixes j =
        if j > n then None
        else if not (Properties.p_ij g ~lo:1 ~hi:j) then Some (1, j)
        else check_prefixes (j + 1)
      in
      let rec check_suffixes i =
        if i > n then None
        else if not (Properties.p_ij g ~lo:i ~hi:n) then Some (i, n)
        else check_suffixes (i + 1)
      in
      (match check_prefixes 1 with
      | Some (lo, hi) -> fail lo hi
      | None -> (
          match check_suffixes 1 with
          | Some (lo, hi) -> fail lo hi
          | None ->
              { equivalent = true;
                banyan = true;
                detail = "Banyan satisfying P(1,j) for all j and P(i,n) for all i"
              }))

let equivalent_enum g =
  (* Enumeration-only characterization over the packed kernels: Banyan
     by the path-count DP, then both P families by the flat-DSU
     census with one shared scratch — the affine fast paths are never
     consulted.  This is the production enumeration fallback in
     isolation; the qcheck agreement gate holds it against the
     symbolic verdict and the legacy list pipeline. *)
  let n = Mi_digraph.stages g in
  Result.is_ok (Banyan.check g)
  &&
  let p = Mi_digraph.packed g in
  let scratch = Packed.scratch p in
  let window_ok ~lo ~hi =
    Packed.component_count ~scratch p ~lo ~hi = Properties.expected_components g ~lo ~hi
  in
  let rec prefixes j = j > n || (window_ok ~lo:1 ~hi:j && prefixes (j + 1)) in
  let rec suffixes i = i > n || (window_ok ~lo:i ~hi:n && suffixes (i + 1)) in
  prefixes 1 && suffixes 1

(* Fingerprint pre-filter.  On MI-digraphs any digraph isomorphism is
   automatically stage-respecting (stage 1 is the in-degree-0 set and
   arcs advance the stage by one, so stages are determined by the arc
   structure), hence the Fingerprint invariant applies to the general
   digraph searches below too: unequal fingerprints prove no
   isomorphism exists, and the exhaustive search — whose refutations
   are its most expensive outcomes — only runs on equal ones. *)
let fingerprint_distinct a b =
  not (Fingerprint.equal (Fingerprint.of_network a) (Fingerprint.of_network b))

let by_isomorphism ?limit g =
  let base = Baseline.network (Mi_digraph.stages g) in
  if fingerprint_distinct g base then
    { equivalent = false;
      banyan = Banyan.is_banyan g;
      detail = "structural fingerprint differs from the Baseline MI-digraph (no isomorphism)"
    }
  else
  match
    Iso.find_isomorphism ?limit (Mi_digraph.to_digraph g) (Mi_digraph.to_digraph base)
  with
  | Some _ ->
      { equivalent = true;
        banyan = Banyan.is_banyan g;
        detail = "explicit digraph isomorphism onto the Baseline MI-digraph found"
      }
  | None ->
      { equivalent = false;
        banyan = Banyan.is_banyan g;
        detail = "no digraph isomorphism onto the Baseline MI-digraph exists"
      }

let decide ?limit m g =
  match m with
  | Independence -> by_independence g
  | Characterization -> by_characterization g
  | Isomorphism -> by_isomorphism ?limit g

let equivalent_networks ?limit m a b =
  match m with
  | Isomorphism ->
      (not (fingerprint_distinct a b))
      && Iso.are_isomorphic ?limit (Mi_digraph.to_digraph a) (Mi_digraph.to_digraph b)
  | _ -> (decide ?limit m a).equivalent && (decide ?limit m b).equivalent
