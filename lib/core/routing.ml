type path = { input : int; output : int; cells : int array; ports : int array }

let check_terminal g t name =
  if t < 0 || t >= Mi_digraph.inputs g then invalid_arg ("Routing: bad " ^ name)

let route g ~input ~output =
  check_terminal g input "input";
  check_terminal g output "output";
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  let src = input / 2 and dst = output / 2 in
  (* Backward reachability of dst from every (stage, cell). *)
  let reach = Array.init n (fun _ -> Array.make per false) in
  reach.(n - 1).(dst) <- true;
  for s = n - 2 downto 0 do
    let c = Mi_digraph.connection g (s + 1) in
    for x = 0 to per - 1 do
      let cf, cg = Connection.children c x in
      reach.(s).(x) <- reach.(s + 1).(cf) || reach.(s + 1).(cg)
    done
  done;
  if not reach.(0).(src) then None
  else begin
    let cells = Array.make n src in
    let ports = Array.make n 0 in
    let cur = ref src in
    for s = 0 to n - 2 do
      let c = Mi_digraph.connection g (s + 1) in
      let cf, cg = Connection.children c !cur in
      (* Count arcs (with multiplicity) leading onward to dst. *)
      let via_f = reach.(s + 1).(cf) and via_g = reach.(s + 1).(cg) in
      (match (via_f, via_g) with
      | true, true -> failwith "Routing.route: multiple paths (network is not Banyan)"
      | true, false ->
          ports.(s) <- 0;
          cur := cf
      | false, true ->
          ports.(s) <- 1;
          cur := cg
      | false, false -> assert false);
      cells.(s + 1) <- !cur
    done;
    ports.(n - 1) <- output land 1;
    Some { input; output; cells; ports }
  end

let route_all_from g ~input =
  check_terminal g input "input";
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  let src = input / 2 in
  let found : (int array * int array) option array = Array.make per None in
  let duplicate = ref false in
  (* Enumerate all 2^(n-1) port-choice words from the source cell. *)
  let cells = Array.make n src in
  let ports = Array.make n 0 in
  let rec explore s cur =
    if s = n - 1 then begin
      match found.(cur) with
      | Some _ -> duplicate := true
      | None -> found.(cur) <- Some (Array.copy cells, Array.copy ports)
    end
    else begin
      let c = Mi_digraph.connection g (s + 1) in
      let cf, cg = Connection.children c cur in
      ports.(s) <- 0;
      cells.(s + 1) <- cf;
      explore (s + 1) cf;
      ports.(s) <- 1;
      cells.(s + 1) <- cg;
      explore (s + 1) cg
    end
  in
  explore 0 src;
  if !duplicate then failwith "Routing.route_all_from: multiple paths (network is not Banyan)";
  Array.init (2 * per) (fun output ->
      match found.(output / 2) with
      | None -> None
      | Some (cells, ports) ->
          let ports = Array.copy ports in
          ports.(n - 1) <- output land 1;
          Some { input; output; cells = Array.copy cells; ports })

let port_word p =
  Array.fold_left (fun acc b -> (acc lsl 1) lor b) 0 p.ports

let delta_schedule g =
  let inputs = Mi_digraph.inputs g in
  let schedule = Array.make inputs (-1) in
  let ok = ref true in
  (try
     for input = 0 to inputs - 1 do
       let paths = route_all_from g ~input in
       Array.iteri
         (fun output p ->
           match p with
           | None -> ok := false
           | Some p ->
               let w = port_word p in
               if schedule.(output) < 0 then schedule.(output) <- w
               else if schedule.(output) <> w then ok := false)
         paths;
       if not !ok then raise Exit
     done
   with
  | Exit -> ()
  | Failure _ -> ok := false);
  if !ok then Some schedule else None

let is_delta g = Option.is_some (delta_schedule g)

let is_bidelta g = is_delta g && is_delta (Mi_digraph.reverse g)

let destination_tag_table g =
  match delta_schedule g with
  | None -> None
  | Some schedule ->
      let n = Mi_digraph.stages g in
      let table =
        Array.init n (fun s ->
            Array.map (fun w -> (w lsr (n - 1 - s)) land 1) schedule)
      in
      Some table

type conflict_report = { max_link_load : int; conflicted_links : int; paths_routed : int }

let link_loads g pairs =
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  let loads = Array.make (n * per * 2) 0 in
  let link_id s cell port = (((s * per) + cell) * 2) + port in
  let routed = ref 0 in
  List.iter
    (fun (input, output) ->
      match route g ~input ~output with
      | None -> ()
      | Some p ->
          incr routed;
          Array.iteri
            (fun s port ->
              let id = link_id s p.cells.(s) port in
              loads.(id) <- loads.(id) + 1)
            p.ports)
    pairs;
  let max_load = Array.fold_left max 0 loads in
  let conflicted = Array.fold_left (fun acc l -> if l > 1 then acc + 1 else acc) 0 loads in
  { max_link_load = max_load; conflicted_links = conflicted; paths_routed = !routed }

let is_admissible g pairs =
  let r = link_loads g pairs in
  r.paths_routed = List.length pairs && r.max_link_load <= 1

let admissible_fraction rng g ~samples =
  let n_terms = Mi_digraph.inputs g in
  let hits = ref 0 in
  for _ = 1 to samples do
    let p = Mineq_perm.Perm.random rng n_terms in
    let pairs = List.init n_terms (fun i -> (i, Mineq_perm.Perm.apply p i)) in
    if is_admissible g pairs then incr hits
  done;
  float_of_int !hits /. float_of_int samples
