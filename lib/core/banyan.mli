(** The Banyan property (paper, Section 2): between any input and any
    output there is exactly one path.

    Inputs and outputs attach to the first and last stages (two per
    node) and play no role in the digraph, so the property reduces to:
    for every node [u] of stage 1 and every node [v] of stage [n],
    there is exactly one directed path from [u] to [v]. *)

type violation = {
  source : Mineq_bitvec.Bv.t;  (** stage-1 node label *)
  sink : Mineq_bitvec.Bv.t;  (** stage-n node label *)
  paths : int;  (** the offending path count ([0] or [>= 2]) *)
}

val path_count_matrix : Mi_digraph.t -> int array array
(** [m.(u).(v)] = number of stage-1-node-[u] to stage-n-node-[v]
    paths.  Parallel arcs (double links) count separately. *)

val is_banyan : Mi_digraph.t -> bool

val check : Mi_digraph.t -> (unit, violation) result
(** Like {!is_banyan} but produces the first violation found (row
    major). *)

val pp_violation : Format.formatter -> violation -> unit
