(** The Banyan property (paper, Section 2): between any input and any
    output there is exactly one path.

    Inputs and outputs attach to the first and last stages (two per
    node) and play no role in the digraph, so the property reduces to:
    for every node [u] of stage 1 and every node [v] of stage [n],
    there is exactly one directed path from [u] to [v]. *)

type violation = {
  source : Mineq_bitvec.Bv.t;  (** stage-1 node label *)
  sink : Mineq_bitvec.Bv.t;  (** stage-n node label *)
  paths : int;  (** the offending path count ([0] or [>= 2]) *)
}

val path_count_matrix : Mi_digraph.t -> int array array
(** [m.(u).(v)] = number of stage-1-node-[u] to stage-n-node-[v]
    paths.  Parallel arcs (double links) count separately.  Computed
    over the packed child tables ({!Packed.path_count_matrix}). *)

val is_banyan : Mi_digraph.t -> bool
(** Tries {!symbolic_check} first and falls back to the path-count
    enumeration when some gap is not independent. *)

val check : Mi_digraph.t -> (unit, violation) result
(** Like {!is_banyan} but produces the first violation found (row
    major), always by path-count enumeration — the packed DP of
    {!Packed.first_violation}. *)

val path_count_matrix_list : Mi_digraph.t -> int array array
(** The historical DP (fresh row per source per gap, boxed child
    tuples), kept as the benchmarking baseline; always agrees with
    {!path_count_matrix} (qcheck-enforced). *)

val check_list : Mi_digraph.t -> (unit, violation) result
(** {!check} over {!path_count_matrix_list}: the list-era baseline
    for the packed-vs-list bench rows. *)

val symbolic_check : Mi_digraph.t -> (unit, violation) result option
(** O(n^3) decision for networks whose every gap is independent
    (affine with a shared linear part [B_j]): the port word
    [p in {0,1}^(n-1)] reaches stage-n node
    [M u xor base xor D p], so the digraph is Banyan iff the GF(2)
    matrix [D] — column [j] is [B_{n-1}..B_{j+1}(cf_j xor cg_j)] — is
    invertible.  [None] when some gap is not independent (no symbolic
    verdict; use {!check}).  A [Some (Error _)] violation carries a
    concrete zero-path source/sink witness (not necessarily the
    row-major first one {!check} reports).  Agreement with {!check}
    is qcheck-enforced. *)

val pp_violation : Format.formatter -> violation -> unit
