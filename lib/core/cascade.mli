(** Rectangular stage cascades: like {!Mi_digraph} but without the
    square constraint (an MI-digraph must have exactly [width + 1]
    stages; a cascade may have any number of gaps over a fixed stage
    width).

    The motivating instance is the Benes network ({!Benes}): the
    [n]-stage Baseline followed by its mirror — [2n - 1] stages of
    [2^(n-1)] cells, which no MI-digraph can represent.  Cascades
    also let one study what happens to the Banyan property as stages
    accumulate (extra-stage networks trade the unique path for fault
    tolerance). *)

type t

val create : Connection.t list -> t
(** Non-empty, equal widths, every connection a valid MI stage. *)

val of_mi_digraph : Mi_digraph.t -> t

val to_mi_digraph : t -> Mi_digraph.t option
(** [Some] exactly when the cascade is square
    ([stages = width + 1]). *)

val stages : t -> int

val width : t -> int

val cells_per_stage : t -> int

val terminals : t -> int

val connection : t -> int -> Connection.t
(** 1-based gap index. *)

val connections : t -> Connection.t list

val concat : t -> t -> t
(** Output stage of the first glued to the input stage of the second
    (the shared stage is counted once); widths must agree. *)

val reverse : t -> t

val path_counts : t -> int array array
(** [counts.(u).(v)] = directed paths from stage-1 cell [u] to
    last-stage cell [v]. *)

val is_banyan : t -> bool
(** Unique paths — typically {e false} for cascades with more than
    [width + 1] stages (extra stages add path diversity). *)

val to_digraph : t -> Mineq_graph.Digraph.t

(** {1 Path checking} *)

type route = { input : int; output : int; cells : int array }
(** A terminal-to-terminal route as the visited cell per stage. *)

val route_is_valid : t -> route -> bool
(** Endpoints attach correctly and every hop is an arc. *)

val link_disjoint : t -> route list -> bool
(** No two routes share an inter-stage arc slot or an output link.
    Routes on the same (from, to) cell pair conflict (all cascades
    built here are simple at each gap); terminal attachment links are
    implicitly disjoint per terminal. *)
