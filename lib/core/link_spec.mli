(** Networks defined by permutations on the links (paper, Section 4,
    Figure 4).

    An [n]-stage MIN on [N = 2^n] terminals is specified by the
    [n - 1] permutations of the [N] link labels applied between
    consecutive stages.  Cell [x] of a stage drives out-links [2x]
    and [2x + 1]; after the permutation, link [z] enters cell
    [z / 2] of the next stage ("the [n-1] first bits of a link label
    are exactly the binary representation of the label of the incident
    node"). *)

val connection_of_link_perm : n:int -> Mineq_perm.Perm.t -> Connection.t
(** [connection_of_link_perm ~n p] is the node-level connection
    induced by the link permutation [p] (of size [2^n]):
    [f x = p (2x) / 2] and [g x = p (2x + 1) / 2].  Always a valid MI
    stage (in-degree 2). *)

val network : n:int -> Mineq_perm.Perm.t list -> Mi_digraph.t
(** Build the MI-digraph from [n - 1] link permutations.  Input and
    output wirings are irrelevant to the MI-digraph and therefore not
    taken. *)

val network_of_thetas : n:int -> Mineq_perm.Perm.t list -> Mi_digraph.t
(** Convenience: each stage given as an index-digit permutation
    [theta] (size [n]); the link permutation is the induced PIPID. *)

val random_network : Random.State.t -> n:int -> Mi_digraph.t
(** Uniformly random link permutations at every gap — generally
    neither Banyan nor buddy nor independent; raw material for the
    counterexample search. *)

val random_pipid_network : Random.State.t -> n:int -> Mi_digraph.t
(** Uniformly random index-digit permutation at every gap.  Always
    independent connections; not necessarily Banyan — a stage with
    [theta^-1 0 = 0] always breaks the Banyan property (Figure 5),
    and stage combinations can too (e.g. two identical butterfly
    stages create parallel paths). *)
