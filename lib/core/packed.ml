(* Zero-allocation enumeration kernels over the packed network
   representation (Mi_digraph.packed).  These are the hot loops behind
   the P(i,j) component census, the Banyan path-count fallback and the
   simulator's routing tables: everything runs on flat int arrays —
   no boxed child lists, no per-query hashtables, no per-arc tuples —
   and the per-query working memory can be supplied as a reusable
   scratch so a census over many stage windows allocates nothing after
   the first query.

   The kernels are radix-generic (stride-r child tables, r parents per
   cell); the binary case keeps a specialized fast path whose inner
   loops are unrolled over the two ports, so the r = 2 deciders pay
   nothing for the generalization. *)

type t = Mi_digraph.packed

let of_network = Mi_digraph.packed

let stages (p : t) = p.p_stages

let width (p : t) = p.p_width

let radix (p : t) = p.p_radix

let nodes_per_stage (p : t) = p.p_per

let total_nodes (p : t) = p.p_stages * p.p_per

let node_id (p : t) ~stage x = ((stage - 1) * p.p_per) + x

let node_of_id (p : t) id = ((id / p.p_per) + 1, id mod p.p_per)

let child (p : t) ~gap ~port x = p.p_child.(gap - 1).((p.p_radix * x) + port)

(* Binary port names: the [f]-child is port 0, the [g]-child port 1
   (only meaningful for [p_radix = 2], the Mi_digraph case). *)
let child_f (p : t) ~gap x = p.p_child.(gap - 1).(p.p_radix * x)

let child_g (p : t) ~gap x = p.p_child.(gap - 1).((p.p_radix * x) + 1)

(* The parents (as stage labels) of label [y] across [gap], in
   port-fill order.  In-degree is exactly [r], so all slots exist. *)
let parent (p : t) ~gap ~port y =
  p.p_pred.((p.p_radix * (((gap - 1) * p.p_per) + y)) + port) mod p.p_per

let parent_a (p : t) ~gap y = parent p ~gap ~port:0 y

let parent_b (p : t) ~gap y = parent p ~gap ~port:1 y

(* Scratch ---------------------------------------------------------- *)

(* All working arrays any kernel needs, sized once for the network:
   a flat DSU (parent + size) over dense node ids and two stage-wide
   int rows for the path-count DP.  One scratch serves any number of
   sequential queries; parallel workers each make their own. *)
type scratch = {
  parent : int array;
  size : int array;
  row_a : int array;
  row_b : int array;
}

let scratch (p : t) =
  let total = total_nodes p in
  { parent = Array.make (max 1 total) 0;
    size = Array.make (max 1 total) 0;
    row_a = Array.make (max 1 p.p_per) 0;
    row_b = Array.make (max 1 p.p_per) 0
  }

let check_window (p : t) ~lo ~hi =
  if lo < 1 || hi > p.p_stages || lo > hi then invalid_arg "Packed: bad stage range"

(* Component census ------------------------------------------------- *)

(* Flat union-find restricted to the dense-id range of stages
   [lo .. hi]: path-halving find, union by size, component count
   maintained by decrement.  Replaces the materialize-subgraph +
   BFS pipeline (List.concat over boxed arcs, a fresh Digraph, a
   fresh queue) with a single pass over the child tables.  [union_gaps]
   is shared by the count and labelling kernels; the binary fast path
   unrolls the two ports. *)
let union_gaps (p : t) ~lo ~hi union =
  let per = p.p_per in
  let r = p.p_radix in
  for gap = lo to hi - 1 do
    let ch = p.p_child.(gap - 1) in
    let src = (gap - 1) * per in
    let dst = gap * per in
    if r = 2 then
      for x = 0 to per - 1 do
        union (src + x) (dst + ch.(2 * x));
        union (src + x) (dst + ch.((2 * x) + 1))
      done
    else
      for x = 0 to per - 1 do
        let base = r * x in
        for j = 0 to r - 1 do
          union (src + x) (dst + ch.(base + j))
        done
      done
  done

let component_count ?scratch:s (p : t) ~lo ~hi =
  check_window p ~lo ~hi;
  let s = match s with Some s -> s | None -> scratch p in
  let per = p.p_per in
  let base = (lo - 1) * per in
  let stop = hi * per in
  let parent = s.parent and size = s.size in
  for id = base to stop - 1 do
    parent.(id) <- id;
    size.(id) <- 1
  done;
  let rec find x =
    let px = parent.(x) in
    if px = x then x
    else begin
      parent.(x) <- parent.(px);
      find parent.(x)
    end
  in
  let count = ref (stop - base) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then begin
      let big, small = if size.(ra) >= size.(rb) then (ra, rb) else (rb, ra) in
      parent.(small) <- big;
      size.(big) <- size.(big) + size.(small);
      decr count
    end
  in
  union_gaps p ~lo ~hi union;
  !count

(* Component labels over a window, BFS-free: run the same DSU, then
   densify roots to [0 .. count-1] in first-touch order (ascending
   dense id — the same numbering the old subgraph BFS produced,
   because both scan vertices in ascending order).  [comp] is indexed
   window-relative: [comp.((stage - lo) * per + label)]. *)
let component_labels ?scratch:s (p : t) ~lo ~hi =
  check_window p ~lo ~hi;
  let s = match s with Some s -> s | None -> scratch p in
  let per = p.p_per in
  let base = (lo - 1) * per in
  let stop = hi * per in
  let parent = s.parent and size = s.size in
  for id = base to stop - 1 do
    parent.(id) <- id;
    size.(id) <- 1
  done;
  let rec find x =
    let px = parent.(x) in
    if px = x then x
    else begin
      parent.(x) <- parent.(px);
      find parent.(x)
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then begin
      let big, small = if size.(ra) >= size.(rb) then (ra, rb) else (rb, ra) in
      parent.(small) <- big;
      size.(big) <- size.(big) + size.(small)
    end
  in
  union_gaps p ~lo ~hi union;
  (* Densify: number components by their minimal member (ascending-id
     first touch), the same numbering the old ascending-vertex BFS
     produced. *)
  let window = stop - base in
  let comp = Array.make window (-1) in
  let count = ref 0 in
  for id = base to stop - 1 do
    let root = find id in
    if comp.(root - base) < 0 then begin
      comp.(root - base) <- !count;
      incr count
    end
  done;
  for id = base to stop - 1 do
    comp.(id - base) <- comp.(find id - base)
  done;
  (comp, !count)

(* Banyan path counting --------------------------------------------- *)

(* Per-source forward DP through the child tables with two reusable
   stage rows: [first_violation] scans sources (then sinks) in
   ascending order and reports the first (u, v, paths <> 1), matching
   the enumeration order of the historical matrix scan.  The old DP
   allocated a fresh row per source per gap (O(n r^n) arrays per
   check); this allocates nothing beyond the scratch.  One gap's
   advance, binary fast path unrolled: *)
let dp_advance (p : t) k cur next =
  let per = p.p_per in
  let r = p.p_radix in
  let ch = p.p_child.(k) in
  Array.fill next 0 per 0;
  if r = 2 then
    for x = 0 to per - 1 do
      let w = cur.(x) in
      if w > 0 then begin
        let a = ch.(2 * x) and b = ch.((2 * x) + 1) in
        next.(a) <- next.(a) + w;
        next.(b) <- next.(b) + w
      end
    done
  else
    for x = 0 to per - 1 do
      let w = cur.(x) in
      if w > 0 then begin
        let base = r * x in
        for j = 0 to r - 1 do
          let y = ch.(base + j) in
          next.(y) <- next.(y) + w
        done
      end
    done

let first_violation ?scratch:s (p : t) =
  let per = p.p_per in
  let n = p.p_stages in
  let s = match s with Some s -> s | None -> scratch p in
  let rec scan_sources u =
    if u = per then None
    else begin
      let cur = ref s.row_a and next = ref s.row_b in
      Array.fill !cur 0 per 0;
      !cur.(u) <- 1;
      for k = 0 to n - 2 do
        dp_advance p k !cur !next;
        let t = !cur in
        cur := !next;
        next := t
      done;
      let final = !cur in
      let rec scan_sinks v =
        if v = per then scan_sources (u + 1)
        else if final.(v) <> 1 then Some (u, v, final.(v))
        else scan_sinks (v + 1)
      in
      scan_sinks 0
    end
  in
  scan_sources 0

let path_count_matrix (p : t) =
  let per = p.p_per in
  let n = p.p_stages in
  let s = scratch p in
  Array.init per (fun u ->
      let cur = ref s.row_a and next = ref s.row_b in
      Array.fill !cur 0 per 0;
      !cur.(u) <- 1;
      for k = 0 to n - 2 do
        dp_advance p k !cur !next;
        let t = !cur in
        cur := !next;
        next := t
      done;
      Array.copy !cur)

(* Simulator routing tables ----------------------------------------- *)

(* For gap [k+1], a flat table indexed by [r * cell + out_port] whose
   entry encodes the downstream cell and the input-port index it
   enters on as [cell * r + in_port] (for [r = 2] this is the historic
   [(cell lsl 1) lor in_port]).  Port numbering follows the
   deterministic p_pred fill order (ascending source, ascending
   out-port), so it agrees with {!Mi_digraph.packed}'s predecessor
   slots. *)
let downstream (p : t) =
  let per = p.p_per in
  let r = p.p_radix in
  Array.init
    (p.p_stages - 1)
    (fun k ->
      let ch = p.p_child.(k) in
      let fill = Array.make per 0 in
      let table = Array.make (r * per) 0 in
      for x = 0 to per - 1 do
        for j = 0 to r - 1 do
          let c = ch.((r * x) + j) in
          let slot = fill.(c) in
          fill.(c) <- slot + 1;
          table.((r * x) + j) <- (c * r) + slot
        done
      done;
      table)
