(* Zero-allocation enumeration kernels over the packed network
   representation (Mi_digraph.packed).  These are the hot loops behind
   the P(i,j) component census, the Banyan path-count fallback and the
   simulator's routing tables: everything runs on flat int arrays —
   no Bv.t lists, no per-query hashtables, no per-arc tuples — and the
   per-query working memory can be supplied as a reusable scratch so a
   census over many stage windows allocates nothing after the first
   query. *)

type t = Mi_digraph.packed

let of_network = Mi_digraph.packed

let stages (p : t) = p.p_stages

let width (p : t) = p.p_width

let nodes_per_stage (p : t) = p.p_per

let total_nodes (p : t) = p.p_stages * p.p_per

let node_id (p : t) ~stage x = ((stage - 1) * p.p_per) + x

let node_of_id (p : t) id = ((id / p.p_per) + 1, id mod p.p_per)

let child_f (p : t) ~gap x = p.p_f.(gap - 1).(x)

let child_g (p : t) ~gap x = p.p_g.(gap - 1).(x)

(* The two parents (as stage labels) of label [y] across [gap], in
   port-fill order.  In-degree is exactly 2, so both always exist. *)
let parent_a (p : t) ~gap y = p.p_pred.(2 * (((gap - 1) * p.p_per) + y)) mod p.p_per

let parent_b (p : t) ~gap y = p.p_pred.((2 * (((gap - 1) * p.p_per) + y)) + 1) mod p.p_per

(* Scratch ---------------------------------------------------------- *)

(* All working arrays any kernel needs, sized once for the network:
   a flat DSU (parent + size) over dense node ids and two stage-wide
   int rows for the path-count DP.  One scratch serves any number of
   sequential queries; parallel workers each make their own. *)
type scratch = {
  parent : int array;
  size : int array;
  row_a : int array;
  row_b : int array;
}

let scratch (p : t) =
  let total = total_nodes p in
  { parent = Array.make (max 1 total) 0;
    size = Array.make (max 1 total) 0;
    row_a = Array.make p.p_per 0;
    row_b = Array.make p.p_per 0
  }

let check_window (p : t) ~lo ~hi =
  if lo < 1 || hi > p.p_stages || lo > hi then invalid_arg "Packed: bad stage range"

(* Component census ------------------------------------------------- *)

(* Flat union-find restricted to the dense-id range of stages
   [lo .. hi]: path-halving find, union by size, component count
   maintained by decrement.  Replaces the materialize-subgraph +
   BFS pipeline (List.concat over boxed arcs, a fresh Digraph, a
   fresh queue) with a single pass over the child tables. *)
let component_count ?scratch:s (p : t) ~lo ~hi =
  check_window p ~lo ~hi;
  let s = match s with Some s -> s | None -> scratch p in
  let per = p.p_per in
  let base = (lo - 1) * per in
  let stop = hi * per in
  let parent = s.parent and size = s.size in
  for id = base to stop - 1 do
    parent.(id) <- id;
    size.(id) <- 1
  done;
  let rec find x =
    let px = parent.(x) in
    if px = x then x
    else begin
      parent.(x) <- parent.(px);
      find parent.(x)
    end
  in
  let count = ref (stop - base) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then begin
      let big, small = if size.(ra) >= size.(rb) then (ra, rb) else (rb, ra) in
      parent.(small) <- big;
      size.(big) <- size.(big) + size.(small);
      decr count
    end
  in
  for gap = lo to hi - 1 do
    let fk = p.p_f.(gap - 1) and gk = p.p_g.(gap - 1) in
    let src = (gap - 1) * per in
    let dst = gap * per in
    for x = 0 to per - 1 do
      union (src + x) (dst + fk.(x));
      union (src + x) (dst + gk.(x))
    done
  done;
  !count

(* Component labels over a window, BFS-free: run the same DSU, then
   densify roots to [0 .. count-1] in first-touch order (ascending
   dense id — the same numbering the old subgraph BFS produced,
   because both scan vertices in ascending order).  [comp] is indexed
   window-relative: [comp.((stage - lo) * per + label)]. *)
let component_labels ?scratch:s (p : t) ~lo ~hi =
  check_window p ~lo ~hi;
  let s = match s with Some s -> s | None -> scratch p in
  let per = p.p_per in
  let base = (lo - 1) * per in
  let stop = hi * per in
  let parent = s.parent and size = s.size in
  for id = base to stop - 1 do
    parent.(id) <- id;
    size.(id) <- 1
  done;
  let rec find x =
    let px = parent.(x) in
    if px = x then x
    else begin
      parent.(x) <- parent.(px);
      find parent.(x)
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then begin
      let big, small = if size.(ra) >= size.(rb) then (ra, rb) else (rb, ra) in
      parent.(small) <- big;
      size.(big) <- size.(big) + size.(small)
    end
  in
  for gap = lo to hi - 1 do
    let fk = p.p_f.(gap - 1) and gk = p.p_g.(gap - 1) in
    let src = (gap - 1) * per in
    let dst = gap * per in
    for x = 0 to per - 1 do
      union (src + x) (dst + fk.(x));
      union (src + x) (dst + gk.(x))
    done
  done;
  (* Densify: number components by their minimal member (ascending-id
     first touch), the same numbering the old ascending-vertex BFS
     produced. *)
  let window = stop - base in
  let comp = Array.make window (-1) in
  let count = ref 0 in
  for id = base to stop - 1 do
    let root = find id in
    if comp.(root - base) < 0 then begin
      comp.(root - base) <- !count;
      incr count
    end
  done;
  for id = base to stop - 1 do
    comp.(id - base) <- comp.(find id - base)
  done;
  (comp, !count)

(* Banyan path counting --------------------------------------------- *)

(* Per-source forward DP through the child tables with two reusable
   stage rows: [first_violation] scans sources (then sinks) in
   ascending order and reports the first (u, v, paths <> 1), matching
   the enumeration order of the historical matrix scan.  The old DP
   allocated a fresh row per source per gap (O(n 2^n) arrays per
   check); this allocates nothing beyond the scratch. *)

let first_violation ?scratch:s (p : t) =
  let per = p.p_per in
  let n = p.p_stages in
  let s = match s with Some s -> s | None -> scratch p in
  let rec scan_sources u =
    if u = per then None
    else begin
      let cur = ref s.row_a and next = ref s.row_b in
      Array.fill !cur 0 per 0;
      !cur.(u) <- 1;
      for k = 0 to n - 2 do
        let fk = p.p_f.(k) and gk = p.p_g.(k) in
        let c = !cur and nx = !next in
        Array.fill nx 0 per 0;
        for x = 0 to per - 1 do
          let w = c.(x) in
          if w > 0 then begin
            nx.(fk.(x)) <- nx.(fk.(x)) + w;
            nx.(gk.(x)) <- nx.(gk.(x)) + w
          end
        done;
        let t = !cur in
        cur := !next;
        next := t
      done;
      let final = !cur in
      let rec scan_sinks v =
        if v = per then scan_sources (u + 1)
        else if final.(v) <> 1 then Some (u, v, final.(v))
        else scan_sinks (v + 1)
      in
      scan_sinks 0
    end
  in
  scan_sources 0

let path_count_matrix (p : t) =
  let per = p.p_per in
  let n = p.p_stages in
  let s = scratch p in
  Array.init per (fun u ->
      let cur = ref s.row_a and next = ref s.row_b in
      Array.fill !cur 0 per 0;
      !cur.(u) <- 1;
      for k = 0 to n - 2 do
        let fk = p.p_f.(k) and gk = p.p_g.(k) in
        let c = !cur and nx = !next in
        Array.fill nx 0 per 0;
        for x = 0 to per - 1 do
          let w = c.(x) in
          if w > 0 then begin
            nx.(fk.(x)) <- nx.(fk.(x)) + w;
            nx.(gk.(x)) <- nx.(gk.(x)) + w
          end
        done;
        let t = !cur in
        cur := !next;
        next := t
      done;
      Array.copy !cur)

(* Simulator routing tables ----------------------------------------- *)

(* For gap [k+1], a flat table indexed by [2 * cell + out_port] whose
   entry encodes the downstream cell and the input-port index it
   enters on as [(cell lsl 1) lor in_port].  Port numbering follows
   the deterministic p_pred fill order (ascending source, f before g),
   so it agrees with {!Mi_digraph.packed}'s predecessor slots. *)
let downstream (p : t) =
  let per = p.p_per in
  Array.init
    (p.p_stages - 1)
    (fun k ->
      let fk = p.p_f.(k) and gk = p.p_g.(k) in
      let fill = Array.make per 0 in
      let table = Array.make (2 * per) 0 in
      for x = 0 to per - 1 do
        let cf = fk.(x) and cg = gk.(x) in
        let pf = fill.(cf) in
        fill.(cf) <- pf + 1;
        let pg = fill.(cg) in
        fill.(cg) <- pg + 1;
        table.(2 * x) <- (cf lsl 1) lor pf;
        table.((2 * x) + 1) <- (cg lsl 1) lor pg
      done;
      table)
