(** Which permutations can a network realize in one pass?

    A global {e switch setting} assigns each 2x2 cell one of two
    states (bar or cross); the composition of all stages then maps
    every input terminal to a distinct output terminal, i.e. realizes
    a permutation.  An [n]-stage MIN has [2^(n 2^(n-1))] settings but
    at most [N!] permutations, and the realizable set is a tiny,
    structured subset — the functional fingerprint the classical
    papers (Lawrie, Parker) studied.

    The realizable {e count} is invariant under topological
    equivalence (an MI-digraph isomorphism induces a terminal
    relabelling conjugating the realizable sets).  On Banyan networks
    the count is always the full [2^(n 2^(n-1))]: every switch
    carries exactly two of the unique paths, so the realized
    permutation pins down the whole setting — injectivity of
    settings onto permutations is a Banyan signature, and non-Banyan
    networks collapse settings (experiment X8).

    Exact enumeration is exponential in the switch count; use
    {!count_exact} only for [n <= 3] (4096 settings) and
    {!estimate} beyond. *)

val permutation_of_setting : Mi_digraph.t -> bool array array -> Mineq_perm.Perm.t
(** [permutation_of_setting g setting] with [setting.(s).(c)] the
    state of cell [c] at 0-based stage [s] ([false] = bar: terminal
    port in = port out; [true] = cross). *)

val count_exact : Mi_digraph.t -> int
(** Number of distinct permutations over all settings.  Cost
    [O(2^(n 2^(n-1)) * N)] — n = 2 or 3 only. *)

val realizable_exact : Mi_digraph.t -> Mineq_perm.Perm.t list
(** The realizable set itself, sorted (same cost caveat). *)

val estimate : Random.State.t -> Mi_digraph.t -> samples:int -> int
(** Distinct permutations seen over random settings — a lower bound
    that converges quickly because settings map onto permutations
    uniformly-ish. *)

val realizes : Mi_digraph.t -> Mineq_perm.Perm.t -> bool
(** Is the given terminal permutation realizable in one pass?
    Equivalent to admissibility of its path set
    ({!Routing.is_admissible}), computed that way. *)
