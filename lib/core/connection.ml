module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix
module Subspace = Mineq_bitvec.Subspace

type t = { width : int; f : int array; g : int array }

let width c = c.width

let half c = Array.length c.f

let of_arrays ~width f g =
  let n = Bv.universe_size ~width in
  if Array.length f <> n || Array.length g <> n then
    invalid_arg "Connection.of_arrays: arrays must have length 2^width";
  let check v =
    if not (Bv.is_valid ~width v) then invalid_arg "Connection.of_arrays: image out of range"
  in
  Array.iter check f;
  Array.iter check g;
  { width; f = Array.copy f; g = Array.copy g }

let make ~width ~f ~g =
  let n = Bv.universe_size ~width in
  of_arrays ~width (Array.init n f) (Array.init n g)

let f c x = c.f.(x)

let g c x = c.g.(x)

let children c x = (c.f.(x), c.g.(x))

let parents c y =
  let out = ref [] in
  for x = half c - 1 downto 0 do
    if c.g.(x) = y then out := x :: !out;
    if c.f.(x) = y then out := x :: !out
  done;
  !out

let swap c = { c with f = c.g; g = c.f }

let arc_multiset c =
  let arcs = ref [] in
  for x = half c - 1 downto 0 do
    arcs := (x, c.f.(x)) :: (x, c.g.(x)) :: !arcs
  done;
  List.sort compare !arcs

let equal_graph a b = a.width = b.width && arc_multiset a = arc_multiset b

let in_degrees c =
  let deg = Array.make (half c) 0 in
  Array.iter (fun y -> deg.(y) <- deg.(y) + 1) c.f;
  Array.iter (fun y -> deg.(y) <- deg.(y) + 1) c.g;
  deg

let is_mi_stage c = Array.for_all (fun d -> d = 2) (in_degrees c)

(* Independence ---------------------------------------------------- *)

let witness c alpha =
  if alpha = 0 then invalid_arg "Connection.witness: alpha must be non-zero";
  let beta = c.f.(alpha) lxor c.f.(0) in
  let n = half c in
  let rec ok x =
    x = n
    || (c.f.(x lxor alpha) = beta lxor c.f.(x)
        && c.g.(x lxor alpha) = beta lxor c.g.(x)
        && ok (x + 1))
  in
  if ok 0 then Some beta else None

let is_independent c =
  (* Witnesses compose: if beta_1, beta_2 witness alpha_1, alpha_2 then
     beta_1 xor beta_2 witnesses alpha_1 xor alpha_2.  Hence checking
     the canonical basis suffices. *)
  let rec go i = i = c.width || (Option.is_some (witness c (Bv.unit i)) && go (i + 1)) in
  go 0

let is_independent_definitional c =
  let n = half c in
  let rec go alpha = alpha = n || (Option.is_some (witness c alpha) && go (alpha + 1)) in
  go 1

let beta_map c =
  let betas = Array.make c.width 0 in
  let rec collect i =
    if i = c.width then true
    else
      match witness c (Bv.unit i) with
      | Some beta ->
          betas.(i) <- beta;
          collect (i + 1)
      | None -> false
  in
  if collect 0 then
    Some (Gf2.create ~rows:c.width ~cols:c.width (fun r j -> Bv.bit betas.(j) r))
  else None

let linear_form c =
  match beta_map c with
  | None -> None
  | Some b -> Some (b, c.f.(0), c.g.(0))

let of_linear ~width b ~cf ~cg =
  if Gf2.rows b <> width || Gf2.cols b <> width then
    invalid_arg "Connection.of_linear: matrix must be width x width";
  make ~width ~f:(fun x -> Gf2.apply b x lxor cf) ~g:(fun x -> Gf2.apply b x lxor cg)

let independent_split c =
  (* An independent split has f x = B x xor cf, g x = B x xor cg with
     B linear.  {cf, cg} must be the children of 0, and column i of B
     must map the pair {B e_i xor cf, B e_i xor cg} onto the children
     of e_i, which pins B e_i up to xor by delta = cf xor cg.  All
     those choices (and the cf/cg orientation) describe the {e same}
     unordered decomposition — {B'x xor cf, B'x xor cg} is unchanged
     when B' = B xor delta u^T — so one candidate verified pointwise
     decides the question in O(width * 2^width). *)
  let w = c.width in
  if w = 0 then if is_independent c then Some c else None
  else begin
    let child_pair x = (c.f.(x), c.g.(x)) in
    let cf, cg = child_pair 0 in
    let delta = cf lxor cg in
    let columns = Array.init w (fun i -> fst (child_pair (Bv.unit i)) lxor cf) in
    (* Necessary condition: each basis pair has the same offset. *)
    let offsets_ok =
      Array.for_all
        (fun i ->
          let a, b = child_pair (Bv.unit i) in
          a lxor b = delta)
        (Array.init w (fun i -> i))
    in
    if not offsets_ok then None
    else begin
      let apply_b x =
        let rec go i acc =
          if i = w then acc else go (i + 1) (if Bv.bit x i then acc lxor columns.(i) else acc)
        in
        go 0 0
      in
      let n = half c in
      let rec verify x =
        x = n
        ||
        let bx = apply_b x in
        let a, b = child_pair x in
        ((bx lxor cf = a && bx lxor cg = b) || (bx lxor cf = b && bx lxor cg = a))
        && verify (x + 1)
      in
      if verify 0 then begin
        let split = make ~width:w ~f:(fun x -> apply_b x lxor cf) ~g:(fun x -> apply_b x lxor cg) in
        assert (equal_graph split c);
        assert (is_independent split);
        Some split
      end
      else None
    end
  end

(* Affine inference (the static-analysis substrate) ---------------- *)

let affine_map_of_array ~width arr =
  (* [arr] is affine iff [arr x = M x xor arr 0] for the linear map
     [M] probed on the canonical basis.  Verified in one pass using
     the lowest set bit: writing [x = rest xor lsb] (with
     [rest = x land (x - 1)]),
     [M x xor c = (M rest xor c) xor (M lsb xor c) xor c], so it
     suffices that [arr x = arr rest xor arr lsb xor arr 0] for every
     [x] with at least two set bits — O(1) integer work per label,
     O(2^width) overall (cheaper than the O(width 2^width) basis
     witness scan). *)
  let c = arr.(0) in
  let n = Array.length arr in
  let rec verify x =
    x = n
    ||
    let rest = x land (x - 1) in
    (rest = 0 || arr.(x) = arr.(rest) lxor arr.(x land -x) lxor c) && verify (x + 1)
  in
  if verify 1 then
    Some (Gf2.create ~rows:width ~cols:width (fun r j -> Bv.bit (arr.(Bv.unit j) lxor c) r), c)
  else None

let affine_pair c =
  match
    (affine_map_of_array ~width:c.width c.f, affine_map_of_array ~width:c.width c.g)
  with
  | Some ff, Some gg -> Some (ff, gg)
  | _ -> None

let is_independent_fast c =
  (* Independence <=> f and g affine with the same linear part: the
     normal form [f x = B x xor f 0, g x = B x xor g 0] in one
     direction, and [beta = B alpha] witnessing every alpha in the
     other. *)
  match affine_pair c with
  | Some ((bf, _), (bg, _)) -> Gf2.equal bf bg
  | None -> false

let random_independent rng ~width =
  if width = 0 then of_arrays ~width [| 0 |] [| 0 |]
  else if Random.State.bool rng then begin
    (* Invertible case: any offsets are valid. *)
    let b = Gf2.random_invertible rng width in
    let bound = Bv.universe_size ~width in
    of_linear ~width b ~cf:(Random.State.int rng bound) ~cg:(Random.State.int rng bound)
  end
  else begin
    (* Corank-1 case: build B with a prescribed kernel vector by
       composing a rank width-1 projector pattern with random
       invertibles, then pick cg outside Im(B) xor cf. *)
    let p = Gf2.create ~rows:width ~cols:width (fun i j -> i = j && i < width - 1) in
    let u = Gf2.random_invertible rng width and v = Gf2.random_invertible rng width in
    let b = Gf2.mul u (Gf2.mul p v) in
    let image = Subspace.of_generators ~width (List.init width (fun j -> Gf2.column b j)) in
    let bound = Bv.universe_size ~width in
    let cf = Random.State.int rng bound in
    let rec pick_cg () =
      let cg = Random.State.int rng bound in
      if Subspace.mem image (cf lxor cg) then pick_cg () else cg
    in
    of_linear ~width b ~cf ~cg:(pick_cg ())
  end

let random_any rng ~width =
  (* Arc slots: each next-stage node exposes two inlet slots; a random
     permutation assigns the 2 * 2^width outlet slots (2 per node) to
     inlet slots, giving a uniformly random 2-in 2-out stage. *)
  let n = Bv.universe_size ~width in
  let slots = Mineq_perm.Perm.random rng (2 * n) in
  make ~width
    ~f:(fun x -> Mineq_perm.Perm.apply slots (2 * x) / 2)
    ~g:(fun x -> Mineq_perm.Perm.apply slots ((2 * x) + 1) / 2)

(* Reversal (Proposition 1) ---------------------------------------- *)

let reverse_any c =
  let n = half c in
  let phi = Array.make n (-1) and psi = Array.make n (-1) in
  for x = n - 1 downto 0 do
    let record y =
      if phi.(y) < 0 then phi.(y) <- x
      else if psi.(y) < 0 then psi.(y) <- x
      else invalid_arg "Connection.reverse_any: a node has in-degree > 2"
    in
    record c.f.(x);
    record c.g.(x)
  done;
  if Array.exists (fun v -> v < 0) phi || Array.exists (fun v -> v < 0) psi then
    invalid_arg "Connection.reverse_any: a node has in-degree < 2";
  { width = c.width; f = phi; g = psi }

let reverse_independent c =
  if not (is_mi_stage c) then None
  else
    match linear_form c with
    | None -> None
    | Some (b, _cf, _cg) ->
        if Gf2.is_invertible b then begin
          (* Case 1: f and g are bijections; invert them pointwise. *)
          let n = half c in
          let phi = Array.make n 0 and psi = Array.make n 0 in
          for x = n - 1 downto 0 do
            phi.(c.f.(x)) <- x;
            psi.(c.g.(x)) <- x
          done;
          Some { width = c.width; f = phi; g = psi }
        end
        else begin
          (* Case 2: ker B = {0, a1}; let A be the span of a completion
             of {a1} to a basis.  Each node y of the next stage has
             parents {x0, x0 xor a1}, exactly one of which lies in A:
             phi picks the A-parent, psi the other. *)
          match Gf2.kernel_basis b with
          | [ a1 ] ->
              let ker = Subspace.of_generators ~width:c.width [ a1 ] in
              let completion = Subspace.complement_basis ker in
              let a = Subspace.of_generators ~width:c.width completion in
              let n = half c in
              let phi = Array.make n (-1) and psi = Array.make n (-1) in
              for x = n - 1 downto 0 do
                let record y = if Subspace.mem a x then phi.(y) <- x else psi.(y) <- x in
                record c.f.(x);
                record c.g.(x)
              done;
              if Array.exists (fun v -> v < 0) phi || Array.exists (fun v -> v < 0) psi then
                None
              else Some { width = c.width; f = phi; g = psi }
          | _ ->
              (* Rank below width - 1 cannot be a valid MI stage. *)
              None
        end

let to_arcs c =
  List.concat (List.init (half c) (fun x -> [ (x, c.f.(x)); (x, c.g.(x)) ]))

let pp ppf c =
  Format.fprintf ppf "@[<v>connection (width %d):@," c.width;
  for x = 0 to half c - 1 do
    Format.fprintf ppf "  %s -> %s, %s@,"
      (Bv.to_bit_string ~width:c.width x)
      (Bv.to_bit_string ~width:c.width c.f.(x))
      (Bv.to_bit_string ~width:c.width c.g.(x))
  done;
  Format.fprintf ppf "@]"
