module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix
module Subspace = Mineq_bitvec.Subspace
module Traverse = Mineq_graph.Traverse

let expected_components g ~lo ~hi =
  let n = Mi_digraph.stages g in
  if lo < 1 || hi > n || lo > hi then invalid_arg "Properties: bad stage range";
  1 lsl (n - 1 - (hi - lo))

(* Enumeration census: flat union-find over the packed child tables
   (Packed.component_count).  The old pipeline — materialize the
   window as a Digraph (List.concat over boxed arcs) and BFS it —
   survives only as [component_count_subgraph], kept as the
   benchmarking baseline and cross-check oracle. *)

let component_count g ~lo ~hi = Packed.component_count (Mi_digraph.packed g) ~lo ~hi

let component_count_subgraph g ~lo ~hi =
  Traverse.component_count (Mi_digraph.subgraph g ~lo ~hi)

let component_count_dsu g ~lo ~hi =
  let n = Mi_digraph.stages g in
  if lo < 1 || hi > n || lo > hi then invalid_arg "Properties: bad stage range";
  let per = Mi_digraph.nodes_per_stage g in
  let dsu = Mineq_graph.Dsu.create ((hi - lo + 1) * per) in
  for gap = lo to hi - 1 do
    let c = Mi_digraph.connection g gap in
    let base = (gap - lo) * per in
    for x = 0 to per - 1 do
      let cf, cg = Connection.children c x in
      ignore (Mineq_graph.Dsu.union dsu (base + x) (base + per + cf));
      ignore (Mineq_graph.Dsu.union dsu (base + x) (base + per + cg))
    done
  done;
  Mineq_graph.Dsu.set_count dsu

(* Symbolic fast path.  On independent gaps — children
   [B x xor cf, B x xor cg] — the stage-lo slice of any component of
   [(G)_{lo..hi}] is a coset of a subspace [S_lo] obtained by the
   downward recursion

     S_hi = {0},   S_j = B_j^{-1}( span(S_{j+1} + {delta_j}) )

   ([delta_j = cf_j xor cg_j]): two stage-j nodes land in one
   component iff their difference maps under [B_j] into the merged
   space one gap later (sharing a child exactly, sharing it modulo
   [S_{j+1}], or through the other port, [delta_j] away) — and chains
   of such steps span.  Every component meets stage lo (in-degree 2
   everywhere inside the window), so the component count is
   [2^(width - dim S_lo)], computed in O((hi-lo) poly(width)) instead
   of traversing the [2^width]-node window. *)

let shared_form c =
  match Connection.affine_pair c with
  | Some ((bf, cf), (bg, cg)) when Gf2.equal bf bg -> Some (bf, cf lxor cg)
  | _ -> None

let component_count_affine g ~lo ~hi =
  let n = Mi_digraph.stages g in
  if lo < 1 || hi > n || lo > hi then invalid_arg "Properties: bad stage range";
  let width = Mi_digraph.width g in
  let rec forms acc j =
    if j < lo then Some acc
    else
      match shared_form (Mi_digraph.connection g j) with
      | None -> None
      | Some f -> forms (f :: acc) (j - 1)
  in
  (* [forms] collects gaps lo..hi-1 in ascending order; the reversed
     fold walks hi-1 down to lo, the recursion order. *)
  match forms [] (hi - 1) with
  | None -> None
  | Some forms ->
      let s =
        List.fold_left
          (fun s (b, delta) -> Subspace.preimage b (Subspace.add_vector s delta))
          (Subspace.zero ~width)
          (List.rev forms)
      in
      Some (1 lsl (width - Subspace.dim s))

let p_ij g ~lo ~hi =
  match component_count_affine g ~lo ~hi with
  | Some found -> found = expected_components g ~lo ~hi
  | None -> component_count g ~lo ~hi = expected_components g ~lo ~hi

let p_one_star g =
  let n = Mi_digraph.stages g in
  let rec go j = j > n || (p_ij g ~lo:1 ~hi:j && go (j + 1)) in
  go 1

let p_star_n g =
  let n = Mi_digraph.stages g in
  let rec go i = i > n || (p_ij g ~lo:i ~hi:n && go (i + 1)) in
  go 1

let full_matrix g =
  (* One packed compilation and one scratch serve all O(n^2) windows:
     after the first row this allocates only the result list. *)
  let n = Mi_digraph.stages g in
  let p = Mi_digraph.packed g in
  let scratch = Packed.scratch p in
  List.concat
    (List.init n (fun l ->
         let lo = l + 1 in
         List.init
           (n - lo + 1)
           (fun k ->
             let hi = lo + k in
             (lo, hi, Packed.component_count ~scratch p ~lo ~hi, expected_components g ~lo ~hi))))

let satisfies_all g = List.for_all (fun (_, _, found, want) -> found = want) (full_matrix g)

(* Buddy properties ------------------------------------------------- *)

(* Over the packed tables: parents come from the predecessor slots
   (always exactly two) and children from the per-gap child arrays, so
   neither check allocates. *)

let output_buddy_stage g i =
  let p = Mi_digraph.packed g in
  let per = Packed.nodes_per_stage p in
  (* Nodes sharing a child must have identical children sets. *)
  let unordered_children x =
    let a = Packed.child_f p ~gap:i x and b = Packed.child_g p ~gap:i x in
    if a <= b then (a, b) else (b, a)
  in
  let rec go y =
    y = per
    || (let x1 = Packed.parent_a p ~gap:i y and x2 = Packed.parent_b p ~gap:i y in
        unordered_children x1 = unordered_children x2)
       && go (y + 1)
  in
  go 0

let input_buddy_stage g i =
  let p = Mi_digraph.packed g in
  let per = Packed.nodes_per_stage p in
  let unordered_parents y =
    let a = Packed.parent_a p ~gap:i y and b = Packed.parent_b p ~gap:i y in
    if a <= b then (a, b) else (b, a)
  in
  let rec go x =
    x = per
    || (let cf = Packed.child_f p ~gap:i x and cg = Packed.child_g p ~gap:i x in
        unordered_parents cf = unordered_parents cg)
       && go (x + 1)
  in
  go 0

let has_buddy_property g =
  let n = Mi_digraph.stages g in
  let rec go i = i >= n || (output_buddy_stage g i && input_buddy_stage g i && go (i + 1)) in
  go 1

(* Lemma 2 component structure -------------------------------------- *)

type component_profile = {
  lo : int;
  hi : int;
  components : Bv.t list array array;
}

let component_profile g ~lo ~hi =
  let p = Mi_digraph.packed g in
  let comp, count = Packed.component_labels p ~lo ~hi in
  let per = Mi_digraph.nodes_per_stage g in
  let stages = hi - lo + 1 in
  let components = Array.init count (fun _ -> Array.make stages []) in
  for v = (stages * per) - 1 downto 0 do
    let s = v / per and x = v mod per in
    components.(comp.(v)).(s) <- x :: components.(comp.(v)).(s)
  done;
  { lo; hi; components }

let buddies_of_slice c slice =
  (* For each parent of a slice node, the parent's other child. *)
  let in_slice = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace in_slice x ()) slice;
  let out = ref [] in
  List.iter
    (fun y ->
      List.iter
        (fun p ->
          let cf, cg = Connection.children c p in
          let other = if cf = y then cg else cf in
          (* A parent joined to y by a double link contributes y
             itself; membership filtering below handles it. *)
          if not (Hashtbl.mem in_slice other) then out := other :: !out)
        (Connection.parents c y))
    slice;
  List.sort_uniq compare !out

let lemma2_translate_structure g =
  let n = Mi_digraph.stages g in
  let width = Mi_digraph.width g in
  let ok = ref true in
  for j = 2 to n do
    if !ok then begin
      let profile = component_profile g ~lo:j ~hi:n in
      let expected_slice = 1 lsl (n - j) in
      Array.iter
        (fun stages_slices ->
          Array.iter
            (fun slice -> if List.length slice <> expected_slice then ok := false)
            stages_slices;
          if !ok then begin
            let a_j = stages_slices.(0) in
            let c = Mi_digraph.connection g (j - 1) in
            let b_j = buddies_of_slice c a_j in
            if List.length b_j <> List.length a_j then ok := false
            else if
              Option.is_none (Subspace.translate_of_set ~width a_j b_j)
            then ok := false
          end)
        profile.components
    end
  done;
  !ok
