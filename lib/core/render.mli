(** ASCII renderings of MI-digraphs — the programmatic counterpart of
    the paper's hand-drawn Figures 1, 2, 4 and 5. *)

val stage_table : Mi_digraph.t -> string
(** One line per node and stage: label, then the two children, e.g.
    {v
    stage 1        stage 2        stage 3
    000 -> 000,100 000 -> 000,010 000 -> 000,001
    ...
    v} *)

val gap_matrix : Mi_digraph.t -> int -> string
(** Adjacency pattern of one gap as a matrix of [.], [#] (arc) and
    [2] (double link); rows = current stage, columns = next stage. *)

val wiring_diagram : Mi_digraph.t -> string
(** A drawing in the style of Figure 1: stages as columns of boxed
    cells, links listed between them.  Cells show their binary
    label; each link line reads [label:port -> label]. *)

val recognize_gap : Mi_digraph.t -> int -> Mineq_perm.Perm.t option
(** Recover the index-digit permutation [theta] of a gap when the
    connection is a PIPID stage (inverse of {!Pipid_net.connection},
    up to the immaterial [f]/[g] choice). *)

val network_summary : Mi_digraph.t -> string
(** Header plus, for each gap, the recognized PIPID index permutation
    (via {!Mineq_perm.Index_perm.recognize} against the gap's
    link-level behaviour) when the connection's linear form reveals
    one, the independence verdict, and buddy flags. *)

val labels_figure : width:int -> string
(** Figure 2: the label column [(x_{w}, ..., x_1)] of one stage. *)

val to_dot : ?name:string -> Mi_digraph.t -> string
(** Graphviz rendering: stages as ranked columns, cells labelled with
    their binary strings — paste into [dot -Tsvg] for a faithful
    Figure-1-style drawing. *)
