module Perm = Mineq_perm.Perm
module Index_perm = Mineq_perm.Index_perm

let connection_of_link_perm ~n p =
  if Perm.size p <> 1 lsl n then
    invalid_arg "Link_spec.connection_of_link_perm: permutation size must be 2^n";
  Connection.make ~width:(n - 1)
    ~f:(fun x -> Perm.apply p (2 * x) / 2)
    ~g:(fun x -> Perm.apply p ((2 * x) + 1) / 2)

let network ~n perms =
  if List.length perms <> n - 1 then
    invalid_arg "Link_spec.network: need exactly n - 1 link permutations";
  Mi_digraph.create (List.map (connection_of_link_perm ~n) perms)

let network_of_thetas ~n thetas =
  network ~n (List.map (fun theta -> Index_perm.induce ~width:n theta) thetas)

let random_network rng ~n =
  network ~n (List.init (n - 1) (fun _ -> Perm.random rng (1 lsl n)))

let random_pipid_network rng ~n =
  network_of_thetas ~n (List.init (n - 1) (fun _ -> Perm.random rng n))
