module Bv = Mineq_bitvec.Bv
module Gf2 = Mineq_bitvec.Gf2_matrix
module Subspace = Mineq_bitvec.Subspace

type violation = { source : Bv.t; sink : Bv.t; paths : int }

(* Enumeration path counting runs on the packed child tables
   (Packed.first_violation / Packed.path_count_matrix): a per-source
   forward DP over two reusable rows, against the historical
   implementation that allocated a fresh row per source per gap plus
   a tuple per visited node.  The old DP survives as
   [path_count_matrix_list]/[check_list], the benchmarking baseline. *)

let path_count_matrix g = Packed.path_count_matrix (Mi_digraph.packed g)

let check g =
  match Packed.first_violation (Mi_digraph.packed g) with
  | None -> Ok ()
  | Some (source, sink, paths) -> Error { source; sink; paths }

let path_count_matrix_list g =
  let per = Mi_digraph.nodes_per_stage g in
  let n = Mi_digraph.stages g in
  (* Forward DP over stages: start with the identity on stage 1 and
     push counts through each connection. *)
  let counts = Array.init per (fun u -> Array.init per (fun v -> if u = v then 1 else 0)) in
  for gap = 1 to n - 1 do
    let c = Mi_digraph.connection g gap in
    Array.iteri
      (fun u row ->
        let next = Array.make per 0 in
        Array.iteri
          (fun x ways ->
            if ways > 0 then begin
              let cf, cg = Connection.children c x in
              next.(cf) <- next.(cf) + ways;
              next.(cg) <- next.(cg) + ways
            end)
          row;
        counts.(u) <- next)
      counts
  done;
  counts

let check_list g =
  let m = path_count_matrix_list g in
  let per = Mi_digraph.nodes_per_stage g in
  let rec scan u v =
    if u = per then Ok ()
    else if v = per then scan (u + 1) 0
    else if m.(u).(v) <> 1 then Error { source = u; sink = v; paths = m.(u).(v) }
    else scan u (v + 1)
  in
  scan 0 0

(* Symbolic fast path.  When gap j is independent — children
   [B_j x xor cf_j] and [B_j x xor cg_j] — the stage-n position of a
   path from stage-1 node [u] with port word [p in {0,1}^(n-1)] is

     M u  xor  base  xor  sum_j p_j d_j

   with [M = B_{n-1}...B_1], [base = sum_j B_{n-1}..B_{j+1} cf_j] and
   [d_j = B_{n-1}..B_{j+1} (cf_j xor cg_j)].  The number of u -> v
   paths is the number of solutions of [D p = v xor M u xor base], so
   the digraph is Banyan iff the (n-1) x (n-1) matrix
   [D = [d_1 .. d_{n-1}]] is invertible — an O(n^3) rank computation
   replacing the O(n 4^n) path-count DP. *)

let shared_form c =
  match Connection.affine_pair c with
  | Some ((bf, cf), (bg, cg)) when Gf2.equal bf bg -> Some (bf, cf, cg)
  | _ -> None

let symbolic_check g =
  let n = Mi_digraph.stages g in
  let width = Mi_digraph.width g in
  let rec forms acc = function
    | [] -> Some (List.rev acc)
    | c :: rest -> (
        match shared_form c with None -> None | Some f -> forms (f :: acc) rest)
  in
  match forms [] (Mi_digraph.connections g) with
  | None -> None
  | Some forms ->
      (* Walk gaps n-1 down to 1, accumulating P = B_{n-1}..B_{j+1}. *)
      let d = Array.make (max 1 (n - 1)) 0 in
      let base = ref 0 in
      let p = ref (Gf2.identity width) in
      List.iteri
        (fun i (b, cf, cg) ->
          let j = n - 1 - i in
          d.(j - 1) <- Gf2.apply !p (cf lxor cg);
          base := !base lxor Gf2.apply !p cf;
          p := Gf2.mul !p b)
        (List.rev forms);
      let dmat = Gf2.create ~rows:width ~cols:width (fun r j -> Bv.bit d.(j) r) in
      if Gf2.is_invertible dmat then Some (Ok ())
      else begin
        (* Concrete witness: a sink v with zero paths from source 0.
           D is square and singular, so its column space is proper;
           any vector outside it, shifted by [base], is unreachable. *)
        let image =
          Subspace.of_generators ~width (List.init width (fun j -> Gf2.column dmat j))
        in
        let outside =
          match Subspace.complement_basis image with
          | v :: _ -> v
          | [] -> assert false
        in
        Some (Error { source = 0; sink = outside lxor !base; paths = 0 })
      end

let is_banyan g =
  match symbolic_check g with Some r -> Result.is_ok r | None -> Result.is_ok (check g)

let pp_violation ppf v =
  Format.fprintf ppf "stage-1 node %d reaches stage-n node %d by %d paths (expected 1)"
    v.source v.sink v.paths
