module Bv = Mineq_bitvec.Bv

type violation = { source : Bv.t; sink : Bv.t; paths : int }

let path_count_matrix g =
  let per = Mi_digraph.nodes_per_stage g in
  let n = Mi_digraph.stages g in
  (* Forward DP over stages: start with the identity on stage 1 and
     push counts through each connection. *)
  let counts = Array.init per (fun u -> Array.init per (fun v -> if u = v then 1 else 0)) in
  for gap = 1 to n - 1 do
    let c = Mi_digraph.connection g gap in
    Array.iteri
      (fun u row ->
        let next = Array.make per 0 in
        Array.iteri
          (fun x ways ->
            if ways > 0 then begin
              let cf, cg = Connection.children c x in
              next.(cf) <- next.(cf) + ways;
              next.(cg) <- next.(cg) + ways
            end)
          row;
        counts.(u) <- next)
      counts
  done;
  counts

let check g =
  let m = path_count_matrix g in
  let per = Mi_digraph.nodes_per_stage g in
  let rec scan u v =
    if u = per then Ok ()
    else if v = per then scan (u + 1) 0
    else if m.(u).(v) <> 1 then Error { source = u; sink = v; paths = m.(u).(v) }
    else scan u (v + 1)
  in
  scan 0 0

let is_banyan g = Result.is_ok (check g)

let pp_violation ppf v =
  Format.fprintf ppf "stage-1 node %d reaches stage-n node %d by %d paths (expected 1)"
    v.source v.sink v.paths
