(** Deciding Baseline-equivalence three ways.

    - {!by_independence} is the paper's Theorem 3: Banyan + every
      connection independent.  It is {e sufficient but not necessary}:
      relabelling the nodes of an equivalent network destroys
      independence without changing the isomorphism class (see
      experiment X5).
    - {!by_characterization} is the graph-theoretical
      characterization of [12] (the theorem quoted in Section 2):
      Banyan + [P(1,j)] for all [j] + [P(i,n)] for all [i].
      Sound and complete.
    - {!by_isomorphism} is the ground truth: an explicit isomorphism
      search against the Baseline MI-digraph.  Sound, complete, and
      expensive — it exists to validate the other two.

    All three agree on independent-connection networks; the test
    suite and experiment T1/T3 enforce this. *)

type method_ = Independence | Characterization | Isomorphism

val all_methods : method_ list

val method_name : method_ -> string

type verdict = {
  equivalent : bool;
  banyan : bool;  (** false forces [equivalent = false] *)
  detail : string;  (** human-readable reason *)
}

val by_independence : Mi_digraph.t -> verdict
(** Uses the analysis-backed fast paths: affine inference for the
    per-gap independence test ({!Connection.is_independent_fast}) and
    the symbolic D-matrix Banyan check when it applies
    ({!Banyan.symbolic_check} via {!Banyan.is_banyan}); falls back to
    enumeration on non-independent gaps. *)

val by_independence_any_split : Mi_digraph.t -> verdict
(** Like {!by_independence} but insensitive to the stored [(f, g)]
    decomposition: each gap is first re-split canonically
    ({!Connection.independent_split}), so a network whose arc
    structure admits independent connections passes even when its
    stored split is unlucky (e.g. after {!Mi_digraph.reverse}, whose
    arbitrary parent split usually destroys stored independence).
    Still only sufficient: relabelled networks whose graphs admit no
    independent decomposition at some gap must fall back to the
    characterization. *)

val by_characterization : Mi_digraph.t -> verdict

val by_isomorphism : ?limit:int -> Mi_digraph.t -> verdict
(** Prefiltered by {!Fingerprint}: a fingerprint mismatch against the
    Baseline is a sound immediate negative (on MI-digraphs every
    digraph isomorphism is stage-respecting), so the exhaustive
    search only runs on fingerprint-equal pairs — refutations, its
    most expensive outcomes, are mostly decided without search. *)

val equivalent_enum : Mi_digraph.t -> bool
(** Enumeration-only characterization verdict (Banyan by the packed
    path-count DP, both [P] families by the packed flat-DSU census),
    bypassing every affine/symbolic fast path.  Always agrees with
    {!by_characterization}'s [equivalent] field (qcheck-enforced);
    exists as the isolated enumeration engine for benchmarking and
    agreement gates. *)

val decide : ?limit:int -> method_ -> Mi_digraph.t -> verdict

val equivalent_networks : ?limit:int -> method_ -> Mi_digraph.t -> Mi_digraph.t -> bool
(** Both equivalent to Baseline (equivalence is transitive through
    the Baseline class); for the [Isomorphism] method this tests the
    two digraphs against each other directly. *)
