(** Isomorphism-class census of MI-digraphs.

    The paper proves every independent-connection Banyan falls into
    {e one} class (the Baseline's).  The census machinery measures
    how many classes the rest of the Banyan universe occupies
    (experiment X15): sampling at [n = 3] finds a handful of classes,
    of which exactly one is the Baseline's. *)

type 'a classified = {
  representative : Mi_digraph.t;
  members : 'a list;  (** the tags of the instances in this class *)
}

val signature : Mi_digraph.t -> string
(** A cheap isomorphism invariant: the [P(i,j)] component-count
    matrix, the buddy flags per gap, and the sorted path-count
    profile.  Equal signatures are necessary (not sufficient) for
    isomorphism; {!classify} uses it to prescreen before running the
    search. *)

val classify : (Mi_digraph.t * 'a) list -> 'a classified list
(** Group tagged networks by MI-digraph isomorphism ({!Iso_min});
    classes ordered by first appearance.  Each instance is compared
    against one representative per class, after a {!signature}
    prescreen. *)

val class_count : Mi_digraph.t list -> int

val contains_baseline : 'a classified -> bool
(** Is this the Baseline's class? *)

val sample_banyan_census :
  Random.State.t -> n:int -> samples:int -> attempts:int -> int classified list
(** Draw up to [samples] random Banyan networks (each within
    [attempts] rejection attempts), classify them, and tag each member
    with its sample index.  The Baseline class is almost always
    present; the remainder estimates the diversity of non-equivalent
    Banyans. *)
