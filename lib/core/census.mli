(** Isomorphism-class census of MI-digraphs.

    The paper proves every independent-connection Banyan falls into
    {e one} class (the Baseline's).  The census machinery measures
    how many classes the rest of the Banyan universe occupies
    (experiment X15): sampling at [n = 3] finds a handful of classes,
    of which exactly one is the Baseline's.

    Classification is hash-bucketed: networks shard by their
    {!Fingerprint} (any two isomorphic networks share one), and the
    {!Iso_min} search runs only within a bucket.  The classified
    output is identical to exhaustive pairwise refinement — the
    fingerprint only prunes comparisons it has already refuted — so
    {!classify_pairwise} exists purely as the quadratic baseline the
    census bench measures the bucketing against. *)

type 'a classified = {
  representative : Mi_digraph.t;
  members : 'a list;  (** the tags of the instances in this class *)
}

val signature : Mi_digraph.t -> string
(** The legacy cheap isomorphism invariant: the [P(i,j)]
    component-count matrix, the buddy flags per gap, and the sorted
    path-count profile.  Equal signatures are necessary (not
    sufficient) for isomorphism.  Superseded as a prescreen by
    {!Fingerprint} (strictly more discriminating in practice and
    allocation-free per network); kept for the agreement tests and as
    an alternative {!classify_keyed} key. *)

val classify_keyed : key:(Mi_digraph.t -> 'k) -> (Mi_digraph.t * 'a) list -> 'a classified list
(** Group tagged networks by MI-digraph isomorphism ({!Iso_min}),
    bucketing by [key] first — [key] must be an isomorphism invariant
    (isomorphic networks map to equal keys, where equality is
    structural as used by [Hashtbl]); the search then runs only
    within a bucket.  Classes are ordered by first appearance in the
    input and members stay in input order, so the result is
    independent of the key used (the key only changes cost). *)

val classify : (Mi_digraph.t * 'a) list -> 'a classified list
(** {!classify_keyed} with the {!Fingerprint} key — the production
    census path. *)

val classify_pairwise : (Mi_digraph.t * 'a) list -> 'a classified list
(** {!classify_keyed} with a constant key: every network lands in one
    bucket, so each one runs the {!Iso_min} search against every
    already-found class until a match — the quadratic pre-fingerprint
    behaviour.  Kept as the bench baseline and as the deliberate
    worst-case collision path for the soundness tests. *)

val bucket_stats : (Mi_digraph.t * 'a) list -> int * int
(** [(buckets, classes)] for the fingerprint keying of the input:
    [buckets] distinct fingerprints against [classes] true iso
    classes.  Every class maps to one fingerprint, so
    [classes >= buckets] always; [classes - buckets > 0] counts
    fingerprint collisions (distinct classes sharing a bucket, each
    resolved by the within-bucket {!Iso_min} fallback).  The census
    bench reports the rate. *)

val class_count : Mi_digraph.t list -> int

val contains_baseline : 'a classified -> bool
(** Is this the Baseline's class? *)

val sample_banyan_census :
  Random.State.t -> n:int -> samples:int -> attempts:int -> int classified list
(** Draw up to [samples] random Banyan networks (each within
    [attempts] rejection attempts), classify them, and tag each member
    with its sample index.  The Baseline class is almost always
    present; the remainder estimates the diversity of non-equivalent
    Banyans. *)
