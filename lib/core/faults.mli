(** Fault analysis: what breaks when a link or a switching cell dies.

    A Banyan network has {e zero} fault tolerance by definition —
    the input/output path is unique, so any link fault disconnects
    exactly the terminal pairs routed over it ([2^(s-1) * 2^(n-s-1)]
    input/output cell pairs for a stage-[s] link, amplified by the
    two terminals per boundary cell).  Multipath cascades (e.g. the
    Benes network) survive faults.  This module quantifies both. *)

type fault =
  | Link of { gap : int; cell : int; port : int }
      (** The out-link [port] (0 = the [f]-link, 1 = the [g]-link) of
          [cell] at 1-based [gap]. *)
  | Cell of { stage : int; cell : int }
      (** A whole switching cell: all its in- and out-links die. *)

val pp_fault : Format.formatter -> fault -> unit

type impact = {
  disconnected_pairs : int;
      (** (source cell, sink cell) pairs with no surviving path;
          terminal pairs are these times four. *)
  degraded_pairs : int;
      (** Pairs still connected but with fewer paths than before. *)
  total_pairs : int;  (** All (source cell, sink cell) pairs. *)
}

val impact : Cascade.t -> fault list -> impact
(** Path-count comparison with and without the faults. *)

val single_link_impacts : Cascade.t -> (fault * impact) list
(** Every single-link fault and its impact, in stage order. *)

val is_single_fault_tolerant : Cascade.t -> bool
(** No single link fault disconnects any terminal pair.  False for
    every Banyan MI-digraph; true for the Benes network. *)

val critical_fault_count : Cascade.t -> int
(** Number of single-link faults that disconnect at least one pair. *)

val survival_probability :
  Random.State.t -> Cascade.t -> faults:int -> samples:int -> float
(** Monte-Carlo estimate of the probability that [faults] random
    distinct link failures leave every terminal pair connected. *)

val route_around : Cascade.t -> fault list -> input:int -> output:int -> Cascade.route option
(** A terminal-to-terminal route avoiding the faults (any surviving
    path, found by backward reachability), or [None] when the faults
    disconnect the pair.  On multipath cascades (Benes, extra-stage
    networks) this is the fault-recovery primitive. *)
