module Perm = Mineq_perm.Perm

(* In-port of the downstream cell for each (0-based gap, cell,
   out-port): which of the child's two in-slots this link feeds
   (same bookkeeping as the packet simulator). *)
let downstream_ports g =
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  Array.init (n - 1) (fun gap0 ->
      let c = Mi_digraph.connection g (gap0 + 1) in
      let filled = Array.make per 0 in
      let table = Array.make per [||] in
      for x = 0 to per - 1 do
        let cf, cg = Connection.children c x in
        let take y =
          let slot = filled.(y) in
          filled.(y) <- slot + 1;
          slot
        in
        let pf = take cf in
        let pg = take cg in
        table.(x) <- [| (cf, pf); (cg, pg) |]
      done;
      table)

let permutation_of_setting g setting =
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  if Array.length setting <> n || Array.exists (fun row -> Array.length row <> per) setting
  then invalid_arg "Realizable.permutation_of_setting: setting shape";
  let down = downstream_ports g in
  let terminals = 2 * per in
  Perm.of_fun ~size:terminals (fun t ->
      let cell = ref (t / 2) and in_port = ref (t land 1) in
      for s = 0 to n - 1 do
        let out_port = if setting.(s).(!cell) then 1 - !in_port else !in_port in
        if s < n - 1 then begin
          let y, slot = down.(s).(!cell).(out_port) in
          cell := y;
          in_port := slot
        end
        else begin
          cell := (2 * !cell) + out_port;
          in_port := 0
        end
      done;
      !cell)

let all_settings g f =
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  let switches = n * per in
  if switches > 20 then invalid_arg "Realizable: too many switches for exact enumeration";
  let setting = Array.make_matrix n per false in
  for code = 0 to (1 lsl switches) - 1 do
    for s = 0 to n - 1 do
      for c = 0 to per - 1 do
        setting.(s).(c) <- (code lsr ((s * per) + c)) land 1 = 1
      done
    done;
    f setting
  done

let realizable_exact g =
  let seen = Hashtbl.create 1024 in
  all_settings g (fun setting ->
      let p = permutation_of_setting g setting in
      let key = Perm.to_array p in
      if not (Hashtbl.mem seen key) then Hashtbl.add seen key p);
  Hashtbl.fold (fun _ p acc -> p :: acc) seen [] |> List.sort Perm.compare

let count_exact g =
  let seen = Hashtbl.create 1024 in
  all_settings g (fun setting ->
      Hashtbl.replace seen (Perm.to_array (permutation_of_setting g setting)) ());
  Hashtbl.length seen

let estimate rng g ~samples =
  let n = Mi_digraph.stages g in
  let per = Mi_digraph.nodes_per_stage g in
  let seen = Hashtbl.create 1024 in
  for _ = 1 to samples do
    let setting =
      Array.init n (fun _ -> Array.init per (fun _ -> Random.State.bool rng))
    in
    Hashtbl.replace seen (Perm.to_array (permutation_of_setting g setting)) ()
  done;
  Hashtbl.length seen

let realizes g p =
  let terminals = Mi_digraph.inputs g in
  if Perm.size p <> terminals then invalid_arg "Realizable.realizes: permutation size";
  Routing.is_admissible g (List.init terminals (fun i -> (i, Perm.apply p i)))
