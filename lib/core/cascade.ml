type t = { width : int; conns : Connection.t array }

let create conns =
  match conns with
  | [] -> invalid_arg "Cascade.create: empty connection list"
  | c0 :: rest ->
      let w = Connection.width c0 in
      List.iter
        (fun c ->
          if Connection.width c <> w then invalid_arg "Cascade.create: width mismatch")
        rest;
      List.iter
        (fun c ->
          if not (Connection.is_mi_stage c) then
            invalid_arg "Cascade.create: a connection violates the in-degree-2 requirement")
        conns;
      { width = w; conns = Array.of_list conns }

let of_mi_digraph g = create (Mi_digraph.connections g)

let stages c = Array.length c.conns + 1

let width c = c.width

let cells_per_stage c = 1 lsl c.width

let terminals c = 2 * cells_per_stage c

let to_mi_digraph c =
  if stages c = c.width + 1 then Some (Mi_digraph.create (Array.to_list c.conns)) else None

let connection c i =
  if i < 1 || i > Array.length c.conns then invalid_arg "Cascade.connection: bad gap index";
  c.conns.(i - 1)

let connections c = Array.to_list c.conns

let concat a b =
  if a.width <> b.width then invalid_arg "Cascade.concat: width mismatch";
  { a with conns = Array.append a.conns b.conns }

let reverse c =
  let rev = Array.map Connection.reverse_any c.conns in
  let m = Array.length rev in
  { c with conns = Array.init m (fun i -> rev.(m - 1 - i)) }

let path_counts c =
  let per = cells_per_stage c in
  Array.init per (fun u ->
      let ways = Array.make per 0 in
      ways.(u) <- 1;
      Array.fold_left
        (fun cur conn ->
          let next = Array.make per 0 in
          Array.iteri
            (fun x w ->
              if w > 0 then begin
                let cf, cg = Connection.children conn x in
                next.(cf) <- next.(cf) + w;
                next.(cg) <- next.(cg) + w
              end)
            cur;
          next)
        ways c.conns)

let is_banyan c =
  Array.for_all (fun row -> Array.for_all (fun w -> w = 1) row) (path_counts c)

let to_digraph c =
  let per = cells_per_stage c in
  let arcs =
    List.concat
      (List.mapi
         (fun gap0 conn ->
           List.map
             (fun (x, y) -> ((gap0 * per) + x, ((gap0 + 1) * per) + y))
             (Connection.to_arcs conn))
         (Array.to_list c.conns))
  in
  Mineq_graph.Digraph.create ~vertices:(stages c * per) arcs

type route = { input : int; output : int; cells : int array }

let route_is_valid c r =
  let n = stages c in
  Array.length r.cells = n
  && r.input >= 0
  && r.input < terminals c
  && r.output >= 0
  && r.output < terminals c
  && r.cells.(0) = r.input / 2
  && r.cells.(n - 1) = r.output / 2
  && (let rec hops s =
        s >= n - 1
        || (let cf, cg = Connection.children c.conns.(s) r.cells.(s) in
            (r.cells.(s + 1) = cf || r.cells.(s + 1) = cg) && hops (s + 1))
      in
      hops 0)

let link_disjoint c routes =
  let usage = Hashtbl.create 64 in
  let book key capacity =
    let used = Option.value ~default:0 (Hashtbl.find_opt usage key) in
    if used >= capacity then false
    else begin
      Hashtbl.replace usage key (used + 1);
      true
    end
  in
  let n = stages c in
  let per = cells_per_stage c in
  List.for_all
    (fun r ->
      route_is_valid c r
      && (let rec hops s =
            s >= n - 1
            ||
            let conn = c.conns.(s) in
            let cf, cg = Connection.children conn r.cells.(s) in
            let capacity =
              (if cf = r.cells.(s + 1) then 1 else 0) + if cg = r.cells.(s + 1) then 1 else 0
            in
            book (s, (r.cells.(s) * per) + r.cells.(s + 1)) capacity && hops (s + 1)
          in
          hops 0)
      && book (n - 1, r.output) 1)
    routes
