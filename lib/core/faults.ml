type fault =
  | Link of { gap : int; cell : int; port : int }
  | Cell of { stage : int; cell : int }

let pp_fault ppf = function
  | Link { gap; cell; port } -> Format.fprintf ppf "link(gap %d, cell %d, port %d)" gap cell port
  | Cell { stage; cell } -> Format.fprintf ppf "cell(stage %d, cell %d)" stage cell

type impact = { disconnected_pairs : int; degraded_pairs : int; total_pairs : int }

let validate_fault c = function
  | Link { gap; cell; port } ->
      if gap < 1 || gap >= Cascade.stages c then invalid_arg "Faults: bad gap";
      if cell < 0 || cell >= Cascade.cells_per_stage c then invalid_arg "Faults: bad cell";
      if port < 0 || port > 1 then invalid_arg "Faults: bad port"
  | Cell { stage; cell } ->
      if stage < 1 || stage > Cascade.stages c then invalid_arg "Faults: bad stage";
      if cell < 0 || cell >= Cascade.cells_per_stage c then invalid_arg "Faults: bad cell"

let path_counts_with c faults =
  List.iter (validate_fault c) faults;
  let n = Cascade.stages c in
  let per = Cascade.cells_per_stage c in
  let dead_cell = Array.make_matrix n per false in
  let dead_link = Hashtbl.create 8 in
  List.iter
    (fun f ->
      match f with
      | Cell { stage; cell } -> dead_cell.(stage - 1).(cell) <- true
      | Link { gap; cell; port } -> Hashtbl.replace dead_link (gap - 1, cell, port) ())
    faults;
  Array.init per (fun u ->
      let ways = Array.make per 0 in
      if not dead_cell.(0).(u) then ways.(u) <- 1;
      let cur = ref ways in
      for gap0 = 0 to n - 2 do
        let conn = Cascade.connection c (gap0 + 1) in
        let next = Array.make per 0 in
        Array.iteri
          (fun x w ->
            if w > 0 && not dead_cell.(gap0).(x) then begin
              let step port y =
                if
                  (not (Hashtbl.mem dead_link (gap0, x, port)))
                  && not dead_cell.(gap0 + 1).(y)
                then next.(y) <- next.(y) + w
              in
              let cf, cg = Connection.children conn x in
              step 0 cf;
              step 1 cg
            end)
          !cur;
        cur := next
      done;
      !cur)

let impact c faults =
  let before = Cascade.path_counts c in
  let after = path_counts_with c faults in
  let per = Cascade.cells_per_stage c in
  let disconnected = ref 0 and degraded = ref 0 in
  for u = 0 to per - 1 do
    for v = 0 to per - 1 do
      if before.(u).(v) > 0 then begin
        if after.(u).(v) = 0 then incr disconnected
        else if after.(u).(v) < before.(u).(v) then incr degraded
      end
    done
  done;
  { disconnected_pairs = !disconnected; degraded_pairs = !degraded; total_pairs = per * per }

let single_link_impacts c =
  let per = Cascade.cells_per_stage c in
  List.concat
    (List.init
       (Cascade.stages c - 1)
       (fun gap0 ->
         List.concat
           (List.init per (fun cell ->
                List.init 2 (fun port ->
                    let f = Link { gap = gap0 + 1; cell; port } in
                    (f, impact c [ f ]))))))

let is_single_fault_tolerant c =
  List.for_all (fun (_, i) -> i.disconnected_pairs = 0) (single_link_impacts c)

let critical_fault_count c =
  List.length
    (List.filter (fun (_, i) -> i.disconnected_pairs > 0) (single_link_impacts c))

let survival_probability rng c ~faults ~samples =
  let gaps = Cascade.stages c - 1 in
  let per = Cascade.cells_per_stage c in
  let n_links = gaps * per * 2 in
  if faults < 0 || faults > n_links then invalid_arg "Faults.survival_probability: fault count";
  let link_of_id id =
    Link { gap = (id / (per * 2)) + 1; cell = id / 2 mod per; port = id land 1 }
  in
  let survived = ref 0 in
  for _ = 1 to samples do
    (* Sample [faults] distinct link ids. *)
    let chosen = Hashtbl.create faults in
    while Hashtbl.length chosen < faults do
      Hashtbl.replace chosen (Random.State.int rng n_links) ()
    done;
    let fs = Hashtbl.fold (fun id () acc -> link_of_id id :: acc) chosen [] in
    if (impact c fs).disconnected_pairs = 0 then incr survived
  done;
  float_of_int !survived /. float_of_int samples

let route_around c faults ~input ~output =
  List.iter (validate_fault c) faults;
  let n = Cascade.stages c in
  let per = Cascade.cells_per_stage c in
  if input < 0 || input >= Cascade.terminals c then invalid_arg "Faults.route_around: input";
  if output < 0 || output >= Cascade.terminals c then invalid_arg "Faults.route_around: output";
  let dead_cell = Array.make_matrix n per false in
  let dead_link = Hashtbl.create 8 in
  List.iter
    (fun f ->
      match f with
      | Cell { stage; cell } -> dead_cell.(stage - 1).(cell) <- true
      | Link { gap; cell; port } -> Hashtbl.replace dead_link (gap - 1, cell, port) ())
    faults;
  let src = input / 2 and dst = output / 2 in
  (* Backward reachability of dst under the faults. *)
  let reach = Array.make_matrix n per false in
  reach.(n - 1).(dst) <- not dead_cell.(n - 1).(dst);
  for s = n - 2 downto 0 do
    let conn = Cascade.connection c (s + 1) in
    for x = 0 to per - 1 do
      if not dead_cell.(s).(x) then begin
        let cf, cg = Connection.children conn x in
        reach.(s).(x) <-
          (reach.(s + 1).(cf) && not (Hashtbl.mem dead_link (s, x, 0)))
          || (reach.(s + 1).(cg) && not (Hashtbl.mem dead_link (s, x, 1)))
      end
    done
  done;
  if not reach.(0).(src) then None
  else begin
    let cells = Array.make n src in
    let cur = ref src in
    for s = 0 to n - 2 do
      let conn = Cascade.connection c (s + 1) in
      let cf, cg = Connection.children conn !cur in
      let via_f = reach.(s + 1).(cf) && not (Hashtbl.mem dead_link (s, !cur, 0)) in
      cur := (if via_f then cf else cg);
      cells.(s + 1) <- !cur
    done;
    Some { Cascade.input; output; cells }
  end
