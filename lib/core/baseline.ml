
let stage_connection ~n i =
  if n < 2 || i < 1 || i > n - 1 then invalid_arg "Baseline.stage_connection: bad stage";
  let w = n - 1 in
  let k = n - i in
  (* Child label: bits [k .. w-1] of x unchanged, routing bit at
     position [k-1], bits [0 .. k-2] are bits [1 .. k-1] of x. *)
  let child b x =
    let high = x land lnot ((1 lsl k) - 1) in
    let low = (x land ((1 lsl k) - 1)) lsr 1 in
    high lor (b lsl (k - 1)) lor low
  in
  Connection.make ~width:w ~f:(child 0) ~g:(child 1)

let rec network n =
  if n < 1 then invalid_arg "Baseline.network: need n >= 1"
  else if n = 1 then Mi_digraph.single_stage ~width:0
  else begin
    let w = n - 1 in
    let msb = 1 lsl (w - 1) in
    let first = stage_connection ~n 1 in
    let sub = network (n - 1) in
    let lift c =
      (* Run the (n-1)-stage connection independently on each half:
         the most significant bit selects the subnetwork and is
         preserved. *)
      Connection.make ~width:w
        ~f:(fun y -> y land msb lor Connection.f c (y land (msb - 1)))
        ~g:(fun y -> y land msb lor Connection.g c (y land (msb - 1)))
    in
    Mi_digraph.create (first :: List.map lift (Mi_digraph.connections sub))
  end

let reverse n = Mi_digraph.reverse (network n)

let is_baseline g = Mi_digraph.equal g (network (Mi_digraph.stages g))
