(* Static-verification bench artifact: channel-dependency-graph
   construction and SCC-pass throughput, affine blocking-certificate
   decision rate and plan-soundness audit rate, written to
   BENCH_verify.json.

   The Tarjan SCC pass is the one hot path here contracted to
   allocate nothing after construction: its rows carry a
   [scc_minor_w] column and the process exits 1 when any of them is
   above zero.  A second gate cross-checks the verdicts themselves —
   every forward CDG must certify deadlock-free and every
   single-lane recirculating configuration must cycle; a wrong
   verdict is a bug, not a statistic.

   Run with --smoke for a tiny-budget crash/format check;
   MINEQ_BENCH_QUOTA=<seconds> scales the repetition budgets. *)

module Bit_follow = Mineq_route.Bit_follow
module Plan = Mineq_route.Plan
module Cdg = Mineq_route_verify.Cdg
module Certify = Mineq_route_verify.Certify
module Plan_check = Mineq_route_verify.Plan_check

let smoke = Bench_util.smoke_requested ()

let router_at n =
  Option.get (Bit_follow.of_network (Mineq.Classical.network Omega ~n))

type build_row = {
  c_n : int;
  c_links : int;
  c_turns : int;
  c_us : float;
}

let build_row ~n ~reps =
  let router = router_at n in
  let op () = Cdg.of_router ~recirculate:true router in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  let cdg = op () in
  Printf.printf "cdg_build_n%-2d    %8.1f us/build   %10.0f builds/s\n%!" n us (1e6 /. us);
  { c_n = n; c_links = Cdg.links cdg; c_turns = Cdg.edge_count cdg; c_us = us }

type scc_row = {
  s_n : int;
  s_recirc : bool;
  s_links : int;
  s_free : bool;
  s_us : float;
  s_minor_w : float;
}

let scc_row ~n ~recirculate ~reps =
  let router = router_at n in
  let cdg = Cdg.of_router ~recirculate router in
  let free = ref true in
  let op () = free := Cdg.deadlock_free cdg in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  let minor_w = Bench_util.minor_words_per_op ~reps op in
  Printf.printf "%-16s %8.1f us/pass    %10.0f passes/s   minor %.1f w\n%!"
    (Printf.sprintf "scc_n%d%s" n (if recirculate then "_recirc" else ""))
    us (1e6 /. us) minor_w;
  { s_n = n;
    s_recirc = recirculate;
    s_links = Cdg.links cdg;
    s_free = !free;
    s_us = us;
    s_minor_w = minor_w
  }

type cert_row = {
  t_n : int;
  t_class : string;
  t_free : bool;
  t_us : float;
}

let cert_row ~n ~reps =
  let router = router_at n in
  let tr = Certify.bit_reversal ~bits:n in
  let free = ref false in
  let op () =
    free := (match Certify.analyze router tr with Certify.Free _ -> true | _ -> false)
  in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  Printf.printf "certify_n%-2d      %8.1f us/decision %9.0f decisions/s\n%!" n us (1e6 /. us);
  { t_n = n; t_class = tr.Certify.name; t_free = !free; t_us = us }

type audit_row = {
  a_n : int;
  a_paths : int;
  a_us : float;
}

let audit_row ~n ~reps =
  let router = router_at n in
  let fab = Bit_follow.fabric router in
  let plan = Plan.create fab in
  let terminals = 1 lsl n in
  let paths = ref 0 in
  for i = 0 to terminals - 1 do
    if Bit_follow.try_route router plan ~input:i ~output:i then incr paths
  done;
  let sound = ref false in
  let op () = sound := Plan_check.is_sound plan in
  let reps = Bench_util.scaled_reps ~reps in
  let us = Bench_util.time_us ~reps op in
  Printf.printf "plan_audit_n%-2d   %8.1f us/audit    %10.0f audits/s   sound %b\n%!" n us
    (1e6 /. us) !sound;
  if not !sound then failwith "plan audit gate: a routed plan audited unsound";
  { a_n = n; a_paths = !paths; a_us = us }

let () =
  Printf.printf "verify bench%s\n%!" (if smoke then " (smoke)" else "");
  (* explicit lets: list literals evaluate right to left, which would
     reverse the printed progress *)
  let c4 = build_row ~n:4 ~reps:2000 in
  let c6 = build_row ~n:6 ~reps:500 in
  let c8 = build_row ~n:8 ~reps:100 in
  let c10 = build_row ~n:10 ~reps:20 in
  let builds = [ c4; c6; c8; c10 ] in
  let s6f = scc_row ~n:6 ~recirculate:false ~reps:4000 in
  let s6r = scc_row ~n:6 ~recirculate:true ~reps:4000 in
  let s8r = scc_row ~n:8 ~recirculate:true ~reps:1000 in
  let s10r = scc_row ~n:10 ~recirculate:true ~reps:200 in
  let sccs = [ s6f; s6r; s8r; s10r ] in
  let t6 = cert_row ~n:6 ~reps:400 in
  let t8 = cert_row ~n:8 ~reps:100 in
  let t10 = cert_row ~n:10 ~reps:20 in
  let certs = [ t6; t8; t10 ] in
  let a8 = audit_row ~n:8 ~reps:400 in
  let audits = [ a8 ] in
  let zero_alloc = List.for_all (fun r -> r.s_minor_w <= 0.0) sccs in
  (* verdict gate: forward free, single-lane recirculation cyclic *)
  let verdicts_ok =
    List.for_all (fun r -> if r.s_recirc then not r.s_free else r.s_free) sccs
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string buf "  \"cdg_build\": [\n";
  let last = List.length builds - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"links\": %d, \"turns\": %d, \"us_per_build\": %.2f, \
            \"builds_per_sec\": %.0f}%s\n"
           r.c_n r.c_links r.c_turns r.c_us (1e6 /. r.c_us)
           (if i = last then "" else ",")))
    builds;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"scc\": [\n";
  let last = List.length sccs - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"recirculate\": %b, \"links\": %d, \"deadlock_free\": %b, \
            \"us_per_pass\": %.2f, \"scc_minor_w\": %.1f}%s\n"
           r.s_n r.s_recirc r.s_links r.s_free r.s_us r.s_minor_w
           (if i = last then "" else ",")))
    sccs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"certify\": [\n";
  let last = List.length certs - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"class\": %S, \"blocking_free\": %b, \"us_per_decision\": \
            %.2f, \"decisions_per_sec\": %.0f}%s\n"
           r.t_n r.t_class r.t_free r.t_us (1e6 /. r.t_us)
           (if i = last then "" else ",")))
    certs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"plan_audit\": [\n";
  let last = List.length audits - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"n\": %d, \"paths\": %d, \"us_per_audit\": %.2f, \"audits_per_sec\": \
            %.0f}%s\n"
           r.a_n r.a_paths r.a_us (1e6 /. r.a_us)
           (if i = last then "" else ",")))
    audits;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"gates\": {\"scc_zero_alloc\": %b, \"verdicts_ok\": %b}\n" zero_alloc
       verdicts_ok);
  Buffer.add_string buf "}\n";
  let path = Bench_util.output_path ~default:"BENCH_verify.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  if not verdicts_ok then begin
    Printf.eprintf "FAIL: a CDG verdict disagrees with the leveled/recirculating theory\n%!";
    exit 1
  end;
  if not zero_alloc then begin
    Printf.eprintf "FAIL: the SCC pass allocates (see scc_minor_w)\n%!";
    exit 1
  end
