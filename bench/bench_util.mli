(** Shared measurement helpers for the bench executables. *)

val smoke_requested : unit -> bool
(** [true] when [--smoke] appears in [Sys.argv]: the bench should run
    a tiny iteration budget (CI crash/format check, not a
    measurement). *)

val output_path : default:string -> string
(** First [.json]-suffixed positional argument, or [default]: where
    the JSON artifact goes.  Restricting to [.json] names keeps
    option values (e.g. the [200] of [--trials 200]) from being
    mistaken for the destination. *)

val quota : default:float -> float
(** [MINEQ_BENCH_QUOTA] in seconds when set and positive, else
    [default] — the same budget knob the bechamel grid honours. *)

val scaled_reps : reps:int -> int
(** The repetition budget after scaling: [1] under [--smoke],
    [reps] under the full default quota, proportionally fewer (at
    least 1) when [MINEQ_BENCH_QUOTA] shrinks the budget below the
    0.5 s default. *)

val time_us : reps:int -> (unit -> 'a) -> float
(** Mean microseconds per call over [reps] calls, best of three
    batches (damps scheduler noise on shared runners). *)

val time_ms : (unit -> 'a) -> 'a * float
(** [(result, milliseconds)] of a single call, best of three runs;
    the result is from the first run. *)

val minor_words_per_op : reps:int -> (unit -> 'a) -> float
(** Minor-heap words allocated per call, averaged over [reps] calls
    after one unbilled warmup call (so one-time lazy setup, e.g.
    packing a network, is excluded). *)
