(** Shared measurement helpers for the bench executables. *)

val smoke_requested : unit -> bool
(** [true] when [--smoke] appears in [Sys.argv]: the bench should run
    a tiny iteration budget (CI crash/format check, not a
    measurement). *)

val output_path : default:string -> string
(** First non-flag command-line argument, or [default]: where the
    JSON artifact goes. *)

val time_us : reps:int -> (unit -> 'a) -> float
(** Mean microseconds per call over [reps] calls, best of three
    batches (damps scheduler noise on shared runners). *)

val time_ms : (unit -> 'a) -> 'a * float
(** [(result, milliseconds)] of a single call, best of three runs;
    the result is from the first run. *)

val minor_words_per_op : reps:int -> (unit -> 'a) -> float
(** Minor-heap words allocated per call, averaged over [reps] calls
    after one unbilled warmup call (so one-time lazy setup, e.g.
    packing a network, is excluded). *)
