(* Analysis bench artifact: the symbolic deciders of lib/analysis
   against the enumeration engines they replace, across network sizes,
   written to the machine-readable BENCH_analysis.json.

   Three decider families per size n:
   - per-gap independence: affine inference (O(2^w)) vs the basis
     witness scan (O(w 2^w)) vs the definitional oracle (O(4^w));
   - Banyan-ness: the D-matrix rank check (O(n^3)) vs the path-count
     DP (O(n 4^(n-1)));
   - full Baseline-equivalence: the analyzer's symbolic verdict vs an
     enumeration-only characterization (BFS component counts).

   The artifact records the crossover: the smallest measured n from
   which the symbolic independence decider stays ahead. *)

module A = Mineq_analysis
module Symbolic = A.Symbolic
module Connection = Mineq.Connection
module Banyan = Mineq.Banyan
module Properties = Mineq.Properties
module Mi_digraph = Mineq.Mi_digraph

let rng seed = Random.State.make [| seed; 0xa0a; 0x1145 |]

let time_us ~reps f =
  (* Best of three batches, to damp scheduler noise. *)
  let batch () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    let t1 = Unix.gettimeofday () in
    (t1 -. t0) *. 1e6 /. float_of_int reps
  in
  let m1 = batch () in
  let m2 = batch () in
  let m3 = batch () in
  List.fold_left min m1 [ m2; m3 ]

type row = {
  n : int;
  indep_fast_us : float;
  indep_basis_us : float;
  indep_definitional_us : float;
  banyan_symbolic_us : float;
  banyan_enum_us : float;
  equiv_symbolic_us : float;
  equiv_enum_us : float;
}

(* Enumeration-only equivalence: the graph characterization with BFS
   component counts, bypassing the affine fast paths the production
   deciders now take. *)
let equivalent_enum g =
  let n = Mi_digraph.stages g in
  Result.is_ok (Banyan.check g)
  && List.for_all
       (fun j ->
         Properties.component_count g ~lo:1 ~hi:j = Properties.expected_components g ~lo:1 ~hi:j)
       (List.init n (fun j -> j + 1))
  && List.for_all
       (fun i ->
         Properties.component_count g ~lo:i ~hi:n = Properties.expected_components g ~lo:i ~hi:n)
       (List.init n (fun i -> i + 1))

let measure n =
  let reps = if n >= 9 then 5 else 50 in
  let g = Mineq.Classical.network Omega ~n in
  let conn = Connection.random_independent (rng n) ~width:(n - 1) in
  let row =
    {
      n;
      indep_fast_us = time_us ~reps (fun () -> Connection.is_independent_fast conn);
      indep_basis_us = time_us ~reps (fun () -> Connection.is_independent conn);
      indep_definitional_us =
        time_us ~reps:(max 3 (reps / 10)) (fun () -> Connection.is_independent_definitional conn);
      banyan_symbolic_us = time_us ~reps (fun () -> Banyan.symbolic_check g);
      banyan_enum_us = time_us ~reps (fun () -> Banyan.check g);
      equiv_symbolic_us = time_us ~reps (fun () -> Symbolic.equivalent (Symbolic.analyze g));
      equiv_enum_us = time_us ~reps (fun () -> equivalent_enum g);
    }
  in
  Printf.printf
    "n=%-2d indep fast/basis/def %8.1f /%8.1f /%10.1f us   banyan sym/enum %8.1f /%10.1f us   \
     equiv sym/enum %8.1f /%10.1f us\n%!"
    n row.indep_fast_us row.indep_basis_us row.indep_definitional_us row.banyan_symbolic_us
    row.banyan_enum_us row.equiv_symbolic_us row.equiv_enum_us;
  row

let () =
  let sizes = [ 4; 6; 8; 10 ] in
  let rows = List.map measure sizes in
  let crossover =
    (* Smallest measured n from which the affine decider stays ahead
       of the basis scan for every larger size too. *)
    let rec scan = function
      | [] -> None
      | r :: rest ->
          if List.for_all (fun r' -> r'.indep_fast_us < r'.indep_basis_us) (r :: rest) then
            Some r.n
          else scan rest
    in
    scan rows
  in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"ocaml\": %S,\n" Sys.ocaml_version;
  add "  \"network\": \"omega\",\n";
  add "  \"independence_crossover_n\": %s,\n"
    (match crossover with Some n -> string_of_int n | None -> "null");
  add "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"n\": %d, \"indep_fast_us\": %.2f, \"indep_basis_us\": %.2f, \
         \"indep_definitional_us\": %.2f, \"banyan_symbolic_us\": %.2f, \"banyan_enum_us\": \
         %.2f, \"equiv_symbolic_us\": %.2f, \"equiv_enum_us\": %.2f}%s\n"
        r.n r.indep_fast_us r.indep_basis_us r.indep_definitional_us r.banyan_symbolic_us
        r.banyan_enum_us r.equiv_symbolic_us r.equiv_enum_us
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ]\n}\n";
  let path = match Sys.argv with [| _; p |] -> p | _ -> "BENCH_analysis.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path
