(* Analysis bench artifact: the symbolic deciders of lib/analysis
   against the enumeration engines they replace, and the packed
   enumeration kernels against the list-era pipeline they replace,
   across network sizes — written to the machine-readable
   BENCH_analysis.json.

   Four decider families per size n:
   - per-gap independence: affine inference (O(2^w)) vs the basis
     witness scan (O(w 2^w)) vs the definitional oracle (O(4^w));
   - Banyan-ness: the D-matrix rank check (O(n^3)) vs the packed
     path-count DP vs the historical boxed-row DP;
   - full Baseline-equivalence: the analyzer's symbolic verdict vs the
     packed enumeration characterization (flat-DSU census) vs the
     list-era pipeline (subgraph materialization + BFS);
   - single-window component census: packed flat DSU vs subgraph BFS.

   Enumeration rows also record minor-heap words allocated per call —
   the packed kernels' figure is the cost of the verdict wrappers
   only; the census and DP themselves run allocation-free against a
   scratch.

   A fifth family covers the radix generalization: for r in {2, 4, 8}
   the radix-r Omega's Banyan check, component census and
   characterization run both on the stride-r packed kernels and on
   the boxed closure pipeline they replaced (Rconnection child lists,
   subgraph materialization + BFS), with the same *_minor_w
   allocation columns.  The boxed path-count DP is O(n r^n * r^n), so
   the Banyan/equivalence columns are measured only while the stage
   width stays tractable (null beyond); the census columns cover
   every listed size.

   The artifact records three summary facts: the smallest measured n
   from which the symbolic independence decider stays ahead, the
   worst packed-vs-list enumeration speedup over n >= 8 (expected and
   asserted >= 3x by the perf gate in CI docs), and the worst radix
   packed-vs-boxed speedup over n >= 6 (gated >= 2x).

   The bench is entirely serial, so a 1-core container degrades
   nothing; "cores" is recorded for provenance and "degraded" is
   always false — the field exists so the CI bench-multicore job can
   apply one uniform gate to every artifact it publishes.

   Run with --smoke for a tiny-budget crash/format check. *)

module A = Mineq_analysis
module Symbolic = A.Symbolic
module Connection = Mineq.Connection
module Banyan = Mineq.Banyan
module Properties = Mineq.Properties
module Equivalence = Mineq.Equivalence
module Mi_digraph = Mineq.Mi_digraph

let rng seed = Random.State.make [| seed; 0xa0a; 0x1145 |]
let time_us = Bench_util.time_us
let minor_words = Bench_util.minor_words_per_op

type row = {
  n : int;
  indep_fast_us : float;
  indep_basis_us : float;
  indep_definitional_us : float;
  banyan_symbolic_us : float;
  banyan_enum_us : float;
  banyan_list_us : float;
  banyan_enum_minor_w : float;
  banyan_list_minor_w : float;
  equiv_symbolic_us : float;
  equiv_enum_us : float;
  equiv_list_us : float;
  equiv_enum_minor_w : float;
  equiv_list_minor_w : float;
  comp_packed_us : float;
  comp_subgraph_us : float;
}

(* List-era equivalence: the graph characterization with the boxed-row
   Banyan DP and subgraph-materializing BFS component counts — the
   pipeline the packed kernels replaced. *)
let equivalent_list g =
  let n = Mi_digraph.stages g in
  Result.is_ok (Banyan.check_list g)
  && List.for_all
       (fun j ->
         Properties.component_count_subgraph g ~lo:1 ~hi:j
         = Properties.expected_components g ~lo:1 ~hi:j)
       (List.init n (fun j -> j + 1))
  && List.for_all
       (fun i ->
         Properties.component_count_subgraph g ~lo:i ~hi:n
         = Properties.expected_components g ~lo:i ~hi:n)
       (List.init n (fun i -> i + 1))

let measure ~smoke n =
  let reps = if smoke then 2 else if n >= 9 then 5 else 50 in
  let g = Mineq.Classical.network Omega ~n in
  let conn = Connection.random_independent (rng n) ~width:(n - 1) in
  let half = max 1 (n / 2) in
  let row =
    {
      n;
      indep_fast_us = time_us ~reps (fun () -> Connection.is_independent_fast conn);
      indep_basis_us = time_us ~reps (fun () -> Connection.is_independent conn);
      indep_definitional_us =
        time_us ~reps:(max 2 (reps / 10)) (fun () -> Connection.is_independent_definitional conn);
      banyan_symbolic_us = time_us ~reps (fun () -> Banyan.symbolic_check g);
      banyan_enum_us = time_us ~reps (fun () -> Banyan.check g);
      banyan_list_us = time_us ~reps (fun () -> Banyan.check_list g);
      banyan_enum_minor_w = minor_words ~reps (fun () -> Banyan.check g);
      banyan_list_minor_w = minor_words ~reps (fun () -> Banyan.check_list g);
      equiv_symbolic_us = time_us ~reps (fun () -> Symbolic.equivalent (Symbolic.analyze g));
      equiv_enum_us = time_us ~reps (fun () -> Equivalence.equivalent_enum g);
      equiv_list_us = time_us ~reps (fun () -> equivalent_list g);
      equiv_enum_minor_w = minor_words ~reps (fun () -> Equivalence.equivalent_enum g);
      equiv_list_minor_w = minor_words ~reps (fun () -> equivalent_list g);
      comp_packed_us =
        time_us ~reps (fun () -> Properties.component_count g ~lo:1 ~hi:half);
      comp_subgraph_us =
        time_us ~reps (fun () -> Properties.component_count_subgraph g ~lo:1 ~hi:half);
    }
  in
  Printf.printf
    "n=%-2d indep fast/basis/def %8.1f /%8.1f /%10.1f us   banyan sym/packed/list %8.1f \
     /%9.1f /%9.1f us   equiv sym/packed/list %8.1f /%9.1f /%9.1f us   minor_w \
     packed/list %9.0f /%9.0f\n%!"
    n row.indep_fast_us row.indep_basis_us row.indep_definitional_us row.banyan_symbolic_us
    row.banyan_enum_us row.banyan_list_us row.equiv_symbolic_us row.equiv_enum_us
    row.equiv_list_us row.equiv_enum_minor_w row.equiv_list_minor_w;
  row

(* Radix rows: stride-r packed kernels vs the boxed closure pipeline
   on the radix-r Omega. *)

module Rn = Mineq_radix.Rnetwork
module Rb = Mineq_radix.Rbuild

type radix_row = {
  r_radix : int;
  r_n : int;
  r_cells : int;
  r_banyan_packed_us : float option;
  r_banyan_boxed_us : float option;
  r_banyan_packed_minor_w : float option;
  r_banyan_boxed_minor_w : float option;
  r_census_packed_us : float;
  r_census_boxed_us : float;
  r_census_packed_minor_w : float;
  r_census_boxed_minor_w : float;
  r_equiv_packed_us : float option;
  r_equiv_boxed_us : float option;
}

(* The per-source DP (packed or boxed) is O(n r^(n-1)) per source,
   O(n r^2(n-1)) per check: past ~2k cells per stage the boxed row
   would dominate the whole bench run, so Banyan/equivalence columns
   stop there and the rows carry null.  The census is near-linear in
   the window and is measured at every listed size. *)
let dp_tractable per = per <= 2048

let measure_radix ~smoke (radix, n) =
  let g = Rb.omega ~radix n in
  let per = Rn.cells_per_stage g in
  let reps =
    if smoke then 2
    else if per >= 8192 then 2
    else if per >= 512 then 5
    else 50
  in
  let half = max 1 (n / 2) in
  let dp = dp_tractable per in
  let opt f = if dp then Some (f ()) else None in
  let row =
    {
      r_radix = radix;
      r_n = n;
      r_cells = per;
      r_banyan_packed_us = opt (fun () -> time_us ~reps (fun () -> Rn.is_banyan g));
      r_banyan_boxed_us = opt (fun () -> time_us ~reps (fun () -> Rn.is_banyan_list g));
      r_banyan_packed_minor_w =
        opt (fun () -> minor_words ~reps (fun () -> Rn.is_banyan g));
      r_banyan_boxed_minor_w =
        opt (fun () -> minor_words ~reps (fun () -> Rn.is_banyan_list g));
      r_census_packed_us =
        time_us ~reps (fun () -> Rn.component_count g ~lo:1 ~hi:half);
      r_census_boxed_us =
        time_us ~reps (fun () -> Rn.component_count_subgraph g ~lo:1 ~hi:half);
      r_census_packed_minor_w =
        minor_words ~reps (fun () -> Rn.component_count g ~lo:1 ~hi:half);
      r_census_boxed_minor_w =
        minor_words ~reps (fun () -> Rn.component_count_subgraph g ~lo:1 ~hi:half);
      r_equiv_packed_us = opt (fun () -> time_us ~reps (fun () -> Rn.by_characterization g));
      r_equiv_boxed_us =
        opt (fun () -> time_us ~reps (fun () -> Rn.by_characterization_list g));
    }
  in
  let show = function Some v -> Printf.sprintf "%9.1f" v | None -> "        -" in
  Printf.printf
    "r=%d n=%-2d (%6d cells)  banyan packed/boxed %s /%s us   census packed/boxed %9.1f \
     /%9.1f us   equiv packed/boxed %s /%s us\n%!"
    radix n per (show row.r_banyan_packed_us) (show row.r_banyan_boxed_us)
    row.r_census_packed_us row.r_census_boxed_us (show row.r_equiv_packed_us)
    (show row.r_equiv_boxed_us);
  row

let () =
  let smoke = Bench_util.smoke_requested () in
  let sizes = if smoke then [ 4; 5 ] else [ 4; 6; 8; 10 ] in
  let radix_sizes =
    if smoke then [ (2, 3); (4, 2) ]
    else [ (2, 4); (2, 6); (2, 8); (4, 3); (4, 4); (4, 6); (8, 3); (8, 4); (8, 6) ]
  in
  let rows = List.map (measure ~smoke) sizes in
  let radix_rows = List.map (measure_radix ~smoke) radix_sizes in
  let crossover =
    (* Smallest measured n from which the affine decider stays ahead
       of the basis scan for every larger size too. *)
    let rec scan = function
      | [] -> None
      | r :: rest ->
          if List.for_all (fun r' -> r'.indep_fast_us < r'.indep_basis_us) (r :: rest) then
            Some r.n
          else scan rest
    in
    scan rows
  in
  let packed_speedup =
    (* Worst list/packed enumeration ratio over the large sizes: the
       perf-gate figure (expected >= 3x at n >= 8). *)
    let large = List.filter (fun r -> r.n >= 8) rows in
    List.fold_left
      (fun acc r ->
        let s = min (r.banyan_list_us /. r.banyan_enum_us) (r.equiv_list_us /. r.equiv_enum_us) in
        match acc with None -> Some s | Some a -> Some (min a s))
      None large
  in
  (match packed_speedup with
  | Some s -> Printf.printf "packed vs list enumeration speedup (worst, n>=8): %.2fx\n%!" s
  | None -> ());
  let radix_speedup =
    (* Worst boxed/packed ratio over the radix rows at n >= 6, across
       every column measured on both sides (gated >= 2x). *)
    let large = List.filter (fun r -> r.r_n >= 6) radix_rows in
    List.fold_left
      (fun acc r ->
        let ratios =
          (r.r_census_boxed_us /. r.r_census_packed_us)
          ::
          (match (r.r_banyan_packed_us, r.r_banyan_boxed_us) with
          | Some p, Some b -> [ b /. p ]
          | _ -> [])
          @
          match (r.r_equiv_packed_us, r.r_equiv_boxed_us) with
          | Some p, Some b -> [ b /. p ]
          | _ -> []
        in
        List.fold_left
          (fun acc s -> match acc with None -> Some s | Some a -> Some (min a s))
          acc ratios)
      None large
  in
  (match radix_speedup with
  | Some s -> Printf.printf "radix packed vs boxed speedup (worst, n>=6): %.2fx\n%!" s
  | None -> ());
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"ocaml\": %S,\n" Sys.ocaml_version;
  add "  \"network\": \"omega\",\n";
  add "  \"smoke\": %b,\n" smoke;
  (* The bench is entirely serial; cores is provenance and degraded is
     the uniform gate field the CI artifact check reads. *)
  add "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  add "  \"degraded\": false,\n";
  add "  \"independence_crossover_n\": %s,\n"
    (match crossover with Some n -> string_of_int n | None -> "null");
  add "  \"packed_vs_list_min_speedup_n8plus\": %s,\n"
    (match packed_speedup with Some s -> Printf.sprintf "%.2f" s | None -> "null");
  add "  \"radix_packed_vs_boxed_min_speedup_n6plus\": %s,\n"
    (match radix_speedup with Some s -> Printf.sprintf "%.2f" s | None -> "null");
  add "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"n\": %d, \"indep_fast_us\": %.2f, \"indep_basis_us\": %.2f, \
         \"indep_definitional_us\": %.2f, \"banyan_symbolic_us\": %.2f, \"banyan_enum_us\": \
         %.2f, \"banyan_list_us\": %.2f, \"banyan_enum_minor_w\": %.1f, \
         \"banyan_list_minor_w\": %.1f, \"equiv_symbolic_us\": %.2f, \"equiv_enum_us\": \
         %.2f, \"equiv_list_us\": %.2f, \"equiv_enum_minor_w\": %.1f, \
         \"equiv_list_minor_w\": %.1f, \"comp_packed_us\": %.2f, \"comp_subgraph_us\": \
         %.2f}%s\n"
        r.n r.indep_fast_us r.indep_basis_us r.indep_definitional_us r.banyan_symbolic_us
        r.banyan_enum_us r.banyan_list_us r.banyan_enum_minor_w r.banyan_list_minor_w
        r.equiv_symbolic_us r.equiv_enum_us r.equiv_list_us r.equiv_enum_minor_w
        r.equiv_list_minor_w r.comp_packed_us r.comp_subgraph_us
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ],\n";
  add "  \"radix_rows\": [\n";
  let jopt fmt = function Some v -> Printf.sprintf fmt v | None -> "null" in
  List.iteri
    (fun i r ->
      add
        "    {\"radix\": %d, \"n\": %d, \"cells_per_stage\": %d, \"banyan_packed_us\": %s, \
         \"banyan_boxed_us\": %s, \"banyan_packed_minor_w\": %s, \"banyan_boxed_minor_w\": \
         %s, \"census_packed_us\": %.2f, \"census_boxed_us\": %.2f, \
         \"census_packed_minor_w\": %.1f, \"census_boxed_minor_w\": %.1f, \
         \"equiv_packed_us\": %s, \"equiv_boxed_us\": %s}%s\n"
        r.r_radix r.r_n r.r_cells
        (jopt "%.2f" r.r_banyan_packed_us)
        (jopt "%.2f" r.r_banyan_boxed_us)
        (jopt "%.1f" r.r_banyan_packed_minor_w)
        (jopt "%.1f" r.r_banyan_boxed_minor_w)
        r.r_census_packed_us r.r_census_boxed_us r.r_census_packed_minor_w
        r.r_census_boxed_minor_w
        (jopt "%.2f" r.r_equiv_packed_us)
        (jopt "%.2f" r.r_equiv_boxed_us)
        (if i = List.length radix_rows - 1 then "" else ","))
    radix_rows;
  add "  ]\n}\n";
  let path = Bench_util.output_path ~default:"BENCH_analysis.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path
