(* Benchmark harness: one Bechamel test per experiment of DESIGN.md's
   index (the paper has no measurement tables, so the "tables" are the
   costs of the constructions and deciders the paper reasons about,
   plus the derived experiments X1-X5).

   Output: one line per bench with the OLS-estimated time per run and
   the goodness of fit.  Deterministic inputs throughout (seeded
   RNG). *)

open Bechamel
open Toolkit

let rng seed = Random.State.make [| seed; 0xbe; 0xca |]

(* Prebuilt inputs (construction cost is not part of the measured
   closures unless the bench is about construction). *)

let omega n = Mineq.Classical.network Omega ~n
let omega8 = omega 8
let omega6 = omega 6
let omega5 = omega 5
let omega4 = omega 4
let baseline6 = Mineq.Baseline.network 6
let baseline4 = Mineq.Baseline.network 4

let degenerate8 =
  (* A network with one Figure-5 stage: the Banyan check must reject. *)
  let n = 8 in
  let shuffle = Mineq_perm.Pipid_family.perfect_shuffle ~width:n in
  Mineq.Link_spec.network_of_thetas ~n
    (Mineq_perm.Perm.identity n :: List.init (n - 2) (fun _ -> shuffle))

let independent_conn_w10 = Mineq.Connection.random_independent (rng 1) ~width:10
let theta16 = Mineq_perm.Perm.random (rng 2) 16
let pipid_conn_n10 = Mineq.Pipid_net.connection ~n:10 (Mineq_perm.Perm.random (rng 3) 10)
let relabelled6 = Mineq.Counterexample.relabelled_equivalent (rng 4) omega6

let perm_pairs n g =
  let terminals = Mineq.Mi_digraph.inputs g in
  let p = Mineq_perm.Perm.random (rng (5 + n)) terminals in
  List.init terminals (fun i -> (i, Mineq_perm.Perm.apply p i))

let pairs6 = perm_pairs 6 omega6

let sim_config = { Mineq_sim.Network_sim.default_config with warmup = 100; cycles = 500 }

let stage f = Staged.stage (fun () -> ignore (Sys.opaque_identity (f ())))

(* Extension experiments: radix generalization (X6), Benes looping
   (X7), realizable enumeration (X8), fault sweep (X9). *)
let radix3_omega = Mineq_radix.Rbuild.omega ~radix:3 3
let benes5 = Mineq.Benes.network 5
let benes_perm = Mineq_perm.Perm.random (rng 6) 32
let omega3 = Mineq.Classical.network Omega ~n:3
let baseline_cascade6 = Mineq.Cascade.of_mi_digraph baseline6

let extension_tests =
  [ Test.make ~name:"x6_radix3_independence_n3"
      (stage (fun () -> Mineq_radix.Rnetwork.by_independence radix3_omega));
    Test.make ~name:"x6_radix3_characterization_n3"
      (stage (fun () -> Mineq_radix.Rnetwork.by_characterization radix3_omega));
    Test.make ~name:"x7_benes_looping_n5"
      (stage (fun () -> Mineq.Benes.route_permutation (Some benes5) ~n:5 benes_perm));
    Test.make ~name:"x8_realizable_exact_n3"
      (stage (fun () -> Mineq.Realizable.count_exact omega3));
    Test.make ~name:"x9_fault_sweep_n6"
      (stage (fun () -> Mineq.Faults.critical_fault_count baseline_cascade6))
  ]

(* Engine (mineq_engine): the same X15/X16/X3 workloads through the
   serial oracle and the batch drivers on a warm 4-domain pool (pool
   spawn is excluded — a long-lived service pays it once).  On a
   single-core host the parallel rows only show the coordination
   overhead; the speedup appears with the cores. *)

let pool4 =
  (* clamp:false — the rows are labelled jobs4, so keep four domains
     even when the host recommends fewer (the overhead is then the
     thing being measured). *)
  let pool = Mineq_engine.Pool.create ~clamp:false ~jobs:4 () in
  at_exit (fun () -> Mineq_engine.Pool.shutdown pool);
  pool

let census_inputs =
  List.filter_map
    (fun i ->
      Option.map
        (fun g -> (g, i))
        (Mineq.Counterexample.random_banyan (Mineq_engine.Seeds.derive ~root:99 i) ~n:3
           ~attempts:300))
    (List.init 120 Fun.id)

let baseline_cascade5 = Mineq.Cascade.of_mi_digraph (Mineq.Baseline.network 5)

let memo_nets = Mineq.Classical.all_networks ~n:5

let engine_tests =
  [ Test.make ~name:"engine_census_classify_serial_n3"
      (stage (fun () -> Mineq.Census.classify census_inputs));
    Test.make ~name:"engine_census_classify_jobs4_n3"
      (stage (fun () -> Mineq_engine.Batch.classify_in pool4 census_inputs));
    Test.make ~name:"engine_fault_survival_serial_n5"
      (stage (fun () ->
           Mineq_engine.Batch.fault_survival ~jobs:1 ~root:7 baseline_cascade5
             ~faults:[ 1; 2; 4 ] ~samples:300));
    Test.make ~name:"engine_fault_survival_jobs4_n5"
      (stage (fun () ->
           Mineq_engine.Batch.fault_survival_in pool4 ~root:7 baseline_cascade5
             ~faults:[ 1; 2; 4 ] ~samples:300));
    Test.make ~name:"engine_sim_replicate_serial_n5"
      (stage (fun () ->
           Mineq_engine.Batch.simulate_runs ~jobs:1 ~root:8 ~config:sim_config
             ~replications:6 omega5));
    Test.make ~name:"engine_sim_replicate_jobs4_n5"
      (stage (fun () ->
           Mineq_engine.Batch.simulate_runs_in pool4 ~root:8 ~config:sim_config
             ~replications:6 omega5));
    Test.make ~name:"engine_pairwise_memo_n5"
      (stage (fun () ->
           let memo = Mineq_engine.Memo.create () in
           Mineq_engine.Batch.pairwise ~jobs:1 ~memo memo_nets));
    Test.make ~name:"engine_pairwise_nomemo_n5"
      (stage (fun () -> Mineq_engine.Batch.pairwise ~jobs:1 memo_nets))
  ]

(* A1: the symbolic analyzer (lib/analysis) against the enumeration
   deciders it fast-paths. *)

let analysis_tests =
  [ Test.make ~name:"a1_affine_inference_w10"
      (stage (fun () -> Mineq.Connection.is_independent_fast independent_conn_w10));
    Test.make ~name:"a1_basis_independence_w10"
      (stage (fun () -> Mineq.Connection.is_independent independent_conn_w10));
    Test.make ~name:"a1_banyan_symbolic_n8"
      (stage (fun () -> Mineq.Banyan.symbolic_check omega8));
    Test.make ~name:"a1_banyan_enumerated_n8" (stage (fun () -> Mineq.Banyan.check omega8));
    Test.make ~name:"a1_lint_omega_n8"
      (stage (fun () -> Mineq_analysis.Lint.run omega8));
    Test.make ~name:"a1_equiv_symbolic_n8"
      (stage (fun () ->
           Mineq_analysis.Symbolic.equivalent (Mineq_analysis.Symbolic.analyze omega8)))
  ]

let tests =
  [ (* F1: Figure 1 -- building the Baseline network. *)
    Test.make ~name:"f1_build_baseline_n10" (stage (fun () -> Mineq.Baseline.network 10));
    Test.make ~name:"f1_render_baseline_n4" (stage (fun () -> Mineq.Render.stage_table baseline4));
    (* F3: Lemma 2's component structure. *)
    Test.make ~name:"f3_component_profile_n6"
      (stage (fun () -> Mineq.Properties.component_profile baseline6 ~lo:2 ~hi:6));
    Test.make ~name:"f3_lemma2_structure_n6"
      (stage (fun () -> Mineq.Properties.lemma2_translate_structure omega6));
    (* F5: the degenerate stage is rejected by the Banyan check. *)
    Test.make ~name:"f5_reject_degenerate_n8" (stage (fun () -> Mineq.Banyan.is_banyan degenerate8));
    (* T1: the graph characterization of [12]. *)
    Test.make ~name:"t1_banyan_check_n8" (stage (fun () -> Mineq.Banyan.is_banyan omega8));
    Test.make ~name:"t1_p_properties_n8"
      (stage (fun () -> Mineq.Properties.p_one_star omega8 && Mineq.Properties.p_star_n omega8));
    Test.make ~name:"t1_p_properties_dsu_n8"
      (stage (fun () ->
           (* The same property families with the union-find engine. *)
           let n = Mineq.Mi_digraph.stages omega8 in
           let ok = ref true in
           for j = 1 to n do
             if
               Mineq.Properties.component_count_dsu omega8 ~lo:1 ~hi:j
               <> Mineq.Properties.expected_components omega8 ~lo:1 ~hi:j
             then ok := false;
             if
               Mineq.Properties.component_count_dsu omega8 ~lo:j ~hi:n
               <> Mineq.Properties.expected_components omega8 ~lo:j ~hi:n
             then ok := false
           done;
           !ok));
    (* P1: Proposition 1's reverse construction. *)
    Test.make ~name:"p1_reverse_independent_w10"
      (stage (fun () -> Mineq.Connection.reverse_independent independent_conn_w10));
    (* L2: the property Lemma 2 concludes. *)
    Test.make ~name:"l2_p_star_n_n8" (stage (fun () -> Mineq.Properties.p_star_n omega8));
    (* S4: PIPID machinery. *)
    Test.make ~name:"s4_pipid_connection_n16"
      (stage (fun () -> Mineq.Pipid_net.connection ~n:16 theta16));
    Test.make ~name:"s4_independence_check_w9"
      (stage (fun () -> Mineq.Connection.is_independent pipid_conn_n10));
    Test.make ~name:"s4_independence_definitional_w9"
      (stage (fun () -> Mineq.Connection.is_independent_definitional pipid_conn_n10));
    Test.make ~name:"s4_independent_split_w9"
      (stage (fun () -> Mineq.Connection.independent_split pipid_conn_n10));
    (* C1: the classical-network survey (build + decide, all six). *)
    Test.make ~name:"c1_classical_survey_n6"
      (stage (fun () ->
           List.for_all
             (fun (_, g) -> (Mineq.Equivalence.by_independence g).equivalent)
             (Mineq.Classical.all_networks ~n:6)));
    (* X1: decider ablation at fixed size. *)
    Test.make ~name:"x1_decider_independence_n6"
      (stage (fun () -> Mineq.Equivalence.by_independence omega6));
    Test.make ~name:"x1_decider_characterization_n6"
      (stage (fun () -> Mineq.Equivalence.by_characterization omega6));
    Test.make ~name:"x1_decider_iso_stagewise_n6"
      (stage (fun () -> Mineq.Iso_min.to_baseline omega6));
    Test.make ~name:"x1_decider_iso_generic_n4"
      (stage (fun () -> Mineq.Equivalence.by_isomorphism omega4));
    (* X5: independence is sufficient-only -- on a relabelled network
       it answers "not via this theorem" while the characterization
       still proves equivalence. *)
    Test.make ~name:"x5_relabelled_independence_n6"
      (stage (fun () -> Mineq.Equivalence.by_independence relabelled6));
    Test.make ~name:"x5_relabelled_characterization_n6"
      (stage (fun () -> Mineq.Equivalence.by_characterization relabelled6));
    (* X2: counterexample search (fixed 200-attempt budget). *)
    Test.make ~name:"x2_buddy_counterexample_n4"
      (stage (fun () ->
           Mineq.Counterexample.find_non_equivalent (rng 42) ~n:4 ~attempts:200
             ~require_buddy:true));
    (* X3: packet simulation. *)
    Test.make ~name:"x3_sim_500cycles_n5"
      (stage (fun () -> Mineq_sim.Network_sim.run ~config:sim_config (rng 43) omega5));
    (* X4: routing. *)
    Test.make ~name:"x4_delta_schedule_n6" (stage (fun () -> Mineq.Routing.delta_schedule omega6));
    Test.make ~name:"x4_route_permutation_n6"
      (stage (fun () -> Mineq.Routing.link_loads omega6 pairs6));
    Test.make ~name:"x4_greedy_schedule_n6"
      (stage (fun () -> Mineq_sim.Circuit.greedy_schedule omega6 pairs6))
  ]
  @ analysis_tests @ extension_tests @ engine_tests

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  (* MINEQ_BENCH_QUOTA=<seconds> shrinks the per-test budget; the CI
     smoke job sets 0.02 so the full grid still runs but only as a
     crash check, not a measurement. *)
  let quota =
    match Option.bind (Sys.getenv_opt "MINEQ_BENCH_QUOTA") float_of_string_opt with
    | Some q when q > 0.0 -> q
    | _ -> 0.5
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"mineq" tests) in
  Analyze.all ols Instance.monotonic_clock raw

let pp_time ppf ns =
  if Float.is_nan ns then Format.fprintf ppf "%11s" "n/a"
  else if ns < 1_000.0 then Format.fprintf ppf "%8.1f ns" ns
  else if ns < 1_000_000.0 then Format.fprintf ppf "%8.2f us" (ns /. 1_000.0)
  else if ns < 1_000_000_000.0 then Format.fprintf ppf "%8.2f ms" (ns /. 1_000_000.0)
  else Format.fprintf ppf "%8.2f s " (ns /. 1_000_000_000.0)

let () =
  let results = benchmark () in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let time = match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, time, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  Format.printf "%-44s %11s %8s@." "benchmark" "time/run" "r^2";
  Format.printf "%s@." (String.make 66 '-');
  List.iter
    (fun (name, time, r2) -> Format.printf "%-44s %a %8.4f@." name pp_time time r2)
    rows;
  Format.printf "@.%d benchmarks.@." (List.length rows)
